GO ?= go

.PHONY: build test race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Full pre-merge gate: vet + build + race-enabled tests + a short pass of
# the allocation benchmarks guarding the lookup hot path.
verify:
	./scripts/verify.sh
