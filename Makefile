GO ?= go

.PHONY: build vet test race bench bench-compare verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Regenerate the benchmark snapshots and diff them against the committed
# BENCH_lookup.json / BENCH_serve.json; fails on >20% timing regressions.
bench-compare:
	./scripts/bench_compare.sh

# Full pre-merge gate: vet + build + race-enabled tests + a short pass of
# the allocation and serving benchmarks guarding the lookup hot path.
verify:
	./scripts/verify.sh
