package emblookup_test

// The allocation guard for the observability subsystem: metrics recording
// and nil-trace span plumbing must not cost the hot path a single
// allocation. These are the same budgets BenchmarkLookupAllocs reports and
// cmd/benchkg snapshots into BENCH_lookup.json — asserted here as a test so
// `make verify` (and plain `go test`) fails loudly if instrumentation ever
// leaks an allocation into the query path.

import (
	"testing"

	"emblookup/internal/obs"
)

// Allocation budgets of the end-to-end query path with metrics enabled:
// Lookup = result slice + its candidate backing + two query-normalization
// scratch strings; Embed = the returned vector + normalization scratch.
const (
	maxLookupAllocs = 4
	maxEmbedAllocs  = 3
)

func TestLookupAllocsWithMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard trains a model; skipped in -short")
	}
	_, m, _ := model(t)
	obs.Default().SetEnabled(true)

	// Warm the scratch pools and lazily-built index state so steady-state
	// allocation is what gets measured.
	for i := 0; i < 8; i++ {
		m.Lookup("Bramonia Ridge", 10)
		m.Embed("Bramonia Ridge")
		m.LookupTrace(nil, "Bramonia Ridge", 10)
	}

	if n := testing.AllocsPerRun(200, func() {
		m.Lookup("Bramonia Ridge", 10)
	}); n > maxLookupAllocs {
		t.Errorf("Lookup with metrics enabled: %.1f allocs/op, budget %d", n, maxLookupAllocs)
	}
	if n := testing.AllocsPerRun(200, func() {
		m.Embed("Bramonia Ridge")
	}); n > maxEmbedAllocs {
		t.Errorf("Embed with metrics enabled: %.1f allocs/op, budget %d", n, maxEmbedAllocs)
	}
	// A nil trace must be completely free: same budget as the untraced call.
	if n := testing.AllocsPerRun(200, func() {
		m.LookupTrace(nil, "Bramonia Ridge", 10)
	}); n > maxLookupAllocs {
		t.Errorf("LookupTrace(nil) with metrics enabled: %.1f allocs/op, budget %d", n, maxLookupAllocs)
	}

	// The fast-scan path shares the budget: its extra state (uint8 LUT,
	// fused pair tables) lives in the same pooled scratch.
	fs, err := m.WithFastScan()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		fs.Lookup("Bramonia Ridge", 10)
	}
	if n := testing.AllocsPerRun(200, func() {
		fs.Lookup("Bramonia Ridge", 10)
	}); n > maxLookupAllocs {
		t.Errorf("fast-scan Lookup with metrics enabled: %.1f allocs/op, budget %d", n, maxLookupAllocs)
	}
}
