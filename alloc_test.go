package emblookup_test

// The allocation guard for the observability subsystem: metrics recording
// and nil-trace span plumbing must not cost the hot path a single
// allocation. These are the same budgets BenchmarkLookupAllocs reports and
// cmd/benchkg snapshots into BENCH_lookup.json — asserted here as a test so
// `make verify` (and plain `go test`) fails loudly if instrumentation ever
// leaks an allocation into the query path.

import (
	"context"
	"path/filepath"
	"testing"

	"emblookup/internal/artifact"
	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/ngram"
	"emblookup/internal/obs"
	"emblookup/internal/tenant"
)

// Allocation budgets of the end-to-end query path with metrics enabled:
// Lookup = result slice + its candidate backing + two query-normalization
// scratch strings; Embed = the returned vector + normalization scratch.
const (
	maxLookupAllocs = 4
	maxEmbedAllocs  = 3
)

// Attach budgets for the zero-copy v4 path: LoadFile on an mmap'd artifact
// allocates model scaffolding (encoder, section views, and the
// known-mention view — a binary-searched window onto the sorted on-disk
// section, no per-mention set rebuild) — a count that depends on the
// architecture, never on how many entities the index holds.
const (
	maxAttachAllocs  = 512 // measured 215 for a PQ model, any entity count
	attachAllocSlack = 16
)

// epochAllocSlack bounds how much the total allocation count of one
// ngram.Model.Train call may grow when the epoch count quadruples — the
// reused trainScratch means extra epochs of the loop itself are free.
const epochAllocSlack = 8

func TestLookupAllocsWithMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard trains a model; skipped in -short")
	}
	_, m, _ := model(t)
	obs.Default().SetEnabled(true)

	// Warm the scratch pools and lazily-built index state so steady-state
	// allocation is what gets measured.
	for i := 0; i < 8; i++ {
		m.Lookup("Bramonia Ridge", 10)
		m.Embed("Bramonia Ridge")
		m.LookupTrace(nil, "Bramonia Ridge", 10)
	}

	if n := testing.AllocsPerRun(200, func() {
		m.Lookup("Bramonia Ridge", 10)
	}); n > maxLookupAllocs {
		t.Errorf("Lookup with metrics enabled: %.1f allocs/op, budget %d", n, maxLookupAllocs)
	}
	if n := testing.AllocsPerRun(200, func() {
		m.Embed("Bramonia Ridge")
	}); n > maxEmbedAllocs {
		t.Errorf("Embed with metrics enabled: %.1f allocs/op, budget %d", n, maxEmbedAllocs)
	}
	// A nil trace must be completely free: same budget as the untraced call.
	if n := testing.AllocsPerRun(200, func() {
		m.LookupTrace(nil, "Bramonia Ridge", 10)
	}); n > maxLookupAllocs {
		t.Errorf("LookupTrace(nil) with metrics enabled: %.1f allocs/op, budget %d", n, maxLookupAllocs)
	}

	// The fast-scan path shares the budget: its extra state (uint8 LUT,
	// fused pair tables) lives in the same pooled scratch.
	fs, err := m.WithFastScan()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		fs.Lookup("Bramonia Ridge", 10)
	}
	if n := testing.AllocsPerRun(200, func() {
		fs.Lookup("Bramonia Ridge", 10)
	}); n > maxLookupAllocs {
		t.Errorf("fast-scan Lookup with metrics enabled: %.1f allocs/op, budget %d", n, maxLookupAllocs)
	}
}

// TestTenantAdmissionAllocs guards the multi-tenant admission gate: the
// uncontended Acquire/Release pair is allocation-free, so routing a lookup
// through a tenant costs at most one allocation over the single-tenant
// budget (the per-request deadline context, paid only when a deadline is
// actually set — the bare admission wrap here must stay within
// maxLookupAllocs + 1).
func TestTenantAdmissionAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard trains a model; skipped in -short")
	}
	_, m, _ := model(t)
	obs.Default().SetEnabled(true)

	adm := tenant.NewAdmission("alloc-guard", tenant.Limits{RatePerSec: 1e9, MaxConcurrent: 64})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := adm.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		m.Lookup("Bramonia Ridge", 10)
		adm.Release()
	}

	if n := testing.AllocsPerRun(200, func() {
		if err := adm.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		adm.Release()
	}); n > 0 {
		t.Errorf("uncontended Acquire/Release: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := adm.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		m.Lookup("Bramonia Ridge", 10)
		adm.Release()
	}); n > maxLookupAllocs+1 {
		t.Errorf("admitted lookup: %.1f allocs/op, budget %d (single-tenant %d + 1 admission)",
			n, maxLookupAllocs+1, maxLookupAllocs)
	}
}

// TestNgramEpochLoopAllocFree guards the reused per-step training scratch
// of the semantic phase: once feature extraction is memoized (first epoch)
// every further epoch of the sequential loop runs out of one trainScratch,
// so the total allocation count of a Train call is independent of the
// epoch count.
func TestNgramEpochLoopAllocFree(t *testing.T) {
	m := ngram.NewModel(32, 1<<12, 7)
	pairs := []ngram.Pair{
		{Label: "alpha station", Synonym: "alpha stn"},
		{Label: "borel ridge", Synonym: "borel mountain ridge"},
		{Label: "cassiopeia relay", Synonym: "cassiopeia relay node"},
		{Label: "delta works", Synonym: "deltaworks"},
		{Label: "erebus gate", Synonym: "gate of erebus"},
		{Label: "fornax hub", Synonym: "fornax central hub"},
	}
	negatives := make([]string, 0, len(pairs))
	for _, p := range pairs {
		negatives = append(negatives, p.Label)
	}
	cfgAt := func(epochs int) ngram.TrainConfig {
		cfg := ngram.DefaultTrainConfig()
		cfg.Epochs = epochs
		return cfg
	}
	// One warm-up run registers the mentions in the model's known set so
	// both measurements see identical model state.
	m.Train(pairs, negatives, cfgAt(1))
	a1 := testing.AllocsPerRun(10, func() { m.Train(pairs, negatives, cfgAt(1)) })
	a4 := testing.AllocsPerRun(10, func() { m.Train(pairs, negatives, cfgAt(4)) })
	t.Logf("ngram Train allocs: %.1f at 1 epoch, %.1f at 4 epochs", a1, a4)
	if diff := a4 - a1; diff > epochAllocSlack {
		t.Errorf("epoch loop allocates: %.1f allocs at 1 epoch vs %.1f at 4 (slack %d)", a1, a4, epochAllocSlack)
	}
}

// TestAttachAllocsSizeIndependent guards the zero-copy promise of the v4
// artifact format (DESIGN.md §12): attaching a model by mmap allocates a
// fixed number of objects, not O(model size) — the payloads stay in the
// page cache. A 300-entity and a 2000-entity model must attach with nearly
// the same allocation count, and both under a fixed budget.
func TestAttachAllocsSizeIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("attach guard trains a model; skipped in -short")
	}
	if !artifact.Supported() {
		t.Skip("this host does not write v4 artifacts")
	}
	gBig, mBig, _ := model(t)

	gSmall, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
	cfg := core.FastConfig()
	cfg.Epochs = 2
	mSmall, err := core.Train(gSmall, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	bigPath := filepath.Join(dir, "big.v4")
	smallPath := filepath.Join(dir, "small.v4")
	if err := mBig.SaveFileWithIndex(bigPath); err != nil {
		t.Fatal(err)
	}
	if err := mSmall.SaveFileWithIndex(smallPath); err != nil {
		t.Fatal(err)
	}

	attach := func(path string, g *kg.Graph) float64 {
		return testing.AllocsPerRun(10, func() {
			lm, err := core.LoadFile(path, g)
			if err != nil {
				t.Fatal(err)
			}
			lm.Close()
		})
	}
	smallN := attach(smallPath, gSmall)
	bigN := attach(bigPath, gBig)
	t.Logf("attach allocs: %.0f (300 entities), %.0f (2000 entities)", smallN, bigN)
	if smallN > maxAttachAllocs || bigN > maxAttachAllocs {
		t.Errorf("attach allocs %.0f/%.0f exceed budget %d", smallN, bigN, maxAttachAllocs)
	}
	if diff := bigN - smallN; diff > attachAllocSlack || diff < -attachAllocSlack {
		t.Errorf("attach allocations scale with model size: %.0f allocs at 300 entities vs %.0f at 2000 (slack %d)",
			smallN, bigN, attachAllocSlack)
	}
}
