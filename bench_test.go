package emblookup_test

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment — each iteration produces the full report)
// plus micro-benchmarks for the operations whose costs the paper's speedup
// claims rest on: embedding inference, compressed and exact lookup, bulk
// batching, and the baseline services.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one table at a larger scale with the CLI instead:
//
//	go run ./cmd/experiments -run table2 -entities 4000

import (
	"io"
	"sync"
	"testing"

	"emblookup/internal/baselines"
	"emblookup/internal/core"
	"emblookup/internal/experiments"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/quant"
	"emblookup/internal/tabular"
)

// ---- shared fixtures -------------------------------------------------

var (
	envOnce  sync.Once
	benchEnv *experiments.Env

	modelOnce  sync.Once
	benchGraph *kg.Graph
	benchModel *core.EmbLookup // compressed
	benchNC    *core.EmbLookup // uncompressed
)

// env lazily builds the shared experiment environment at bench scale.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		o := experiments.TestOptions()
		o.Entities = 500
		o.WikidataTables = 20
		o.DBPediaTables = 10
		o.ToughTableCount = 2
		o.AliasVariants = 1
		e, err := experiments.NewEnv(o)
		if err != nil {
			panic(err)
		}
		benchEnv = e
	})
	return benchEnv
}

// model lazily trains one EmbLookup over a 2000-entity graph for the
// micro-benchmarks and the allocation-guard test.
func model(b testing.TB) (*kg.Graph, *core.EmbLookup, *core.EmbLookup) {
	b.Helper()
	modelOnce.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 2000))
		cfg := core.FastConfig()
		cfg.Epochs = 4
		m, err := core.Train(g, cfg)
		if err != nil {
			panic(err)
		}
		nc, err := m.WithCompression(false)
		if err != nil {
			panic(err)
		}
		benchGraph, benchModel, benchNC = g, m, nc
	})
	return benchGraph, benchModel, benchNC
}

// ---- one benchmark per paper table/figure ----------------------------

func benchExperiment(b *testing.B, id string) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		rep.Render(io.Discard)
	}
}

func BenchmarkTableI(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTableIII(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTableIV(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTableV(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTableVI(b *testing.B)   { benchExperiment(b, "table6") }
func BenchmarkTableVII(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTableVIII(b *testing.B) { benchExperiment(b, "table8") }
func BenchmarkFigure3(b *testing.B)   { benchExperiment(b, "figure3") }
func BenchmarkFigure4(b *testing.B)   { benchExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B)   { benchExperiment(b, "figure5") }
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// ---- micro-benchmarks: the operations behind the speedup claims ------

func BenchmarkEmbed(b *testing.B) {
	_, m, _ := model(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Embed("Bramonia Ridge")
	}
}

func BenchmarkLookupPQ(b *testing.B) {
	_, m, _ := model(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup("Bramonia Ridge", 10)
	}
}

func BenchmarkLookupFlat(b *testing.B) {
	_, _, nc := model(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc.Lookup("Bramonia Ridge", 10)
	}
}

func BenchmarkBulkLookup(b *testing.B) {
	g, m, _ := model(b)
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = g.Entities[i%len(g.Entities)].Label
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BulkLookup(queries, 10, 0)
	}
}

func benchBaseline(b *testing.B, build func(*lookup.Corpus) lookup.Service) {
	g, _, _ := model(b)
	svc := build(lookup.CorpusFromGraph(g, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Lookup("Bramonia Ridge", 10)
	}
}

func BenchmarkBaselineExact(b *testing.B) {
	benchBaseline(b, func(c *lookup.Corpus) lookup.Service { return baselines.NewExact(c) })
}

func BenchmarkBaselineElastic(b *testing.B) {
	benchBaseline(b, func(c *lookup.Corpus) lookup.Service { return baselines.NewElastic(c) })
}

func BenchmarkBaselineFuzzyWuzzy(b *testing.B) {
	benchBaseline(b, func(c *lookup.Corpus) lookup.Service { return baselines.NewFuzzyWuzzy(c) })
}

func BenchmarkBaselineLevenshtein(b *testing.B) {
	benchBaseline(b, func(c *lookup.Corpus) lookup.Service { return baselines.NewLevenshteinScan(c) })
}

func BenchmarkBaselineQGram(b *testing.B) {
	benchBaseline(b, func(c *lookup.Corpus) lookup.Service { return baselines.NewQGram(c) })
}

func BenchmarkBaselineLSH(b *testing.B) {
	benchBaseline(b, func(c *lookup.Corpus) lookup.Service { return baselines.NewLSH(c) })
}

// BenchmarkPQSearch measures the steady-state compressed search path. With
// pooled scratch (ADC table, top-k heap, block distance strip all reused)
// the only allocation left is the returned result slice; run with -benchmem
// to verify ≤2 allocs/op.
func BenchmarkPQSearch(b *testing.B) {
	data := mathx.NewMatrix(10000, 64)
	data.FillRandn(mathx.NewRNG(3), 1)
	ix, err := index.NewPQ(data, quant.PQConfig{M: 8, Ks: 64, Iters: 5, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	q := data.Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}

// BenchmarkFastScan pits the two compressed-scan kernels against each other
// on identical data at identical bytes per code (M=8 × 8-bit vs 2M=16 ×
// 4-bit): the plain float32-LUT ADC scan vs the block-interleaved fast-scan
// with a uint8-quantized table and exact re-rank (DESIGN.md §11). Run under
// `make verify` and diffed by `make bench-compare`; the fast-scan row is the
// ≥2× single-core throughput gate of BENCH_lookup.json in kernel-only form.
func BenchmarkFastScan(b *testing.B) {
	data := mathx.NewMatrix(20000, 64)
	data.FillRandn(mathx.NewRNG(9), 1)
	cfg := quant.PQConfig{M: 8, Ks: 64, Iters: 5, Seed: 10}
	pq, err := index.NewPQ(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := index.NewFastScan(data, quant.Config4(cfg))
	if err != nil {
		b.Fatal(err)
	}
	q := data.Row(0)
	b.Run("pq", func(b *testing.B) {
		var s index.Scratch
		var dst []index.Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = pq.SearchAppendWith(&s, q, 10, dst)
		}
	})
	b.Run("fastscan", func(b *testing.B) {
		var s index.Scratch
		var dst []index.Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = fs.SearchAppendWith(&s, q, 10, dst)
		}
	})
}

// BenchmarkLookupAllocs records the allocation profile of the end-to-end
// query path (the numbers cmd/benchkg -bench-lookup snapshots into
// BENCH_lookup.json). Sub-benchmarks cover the single-query wrappers and
// the bulk mode whose workers own scratch for the whole batch.
func BenchmarkLookupAllocs(b *testing.B) {
	g, m, nc := model(b)
	b.Run("embed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Embed("Bramonia Ridge")
		}
	})
	b.Run("pq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lookup("Bramonia Ridge", 10)
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nc.Lookup("Bramonia Ridge", 10)
		}
	})
	b.Run("bulk", func(b *testing.B) {
		queries := make([]string, 256)
		for i := range queries {
			queries[i] = g.Entities[i%len(g.Entities)].Label
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.BulkLookup(queries, 10, 0)
		}
	})
}

func BenchmarkPQEncode(b *testing.B) {
	data := mathx.NewMatrix(1000, 64)
	data.FillRandn(mathx.NewRNG(1), 1)
	pq, err := quant.TrainPQ(data, quant.PQConfig{M: 8, Ks: 64, Iters: 8, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	code := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pq.EncodeInto(data.Row(i%data.Rows), code)
	}
}

func BenchmarkPQADCScan(b *testing.B) {
	data := mathx.NewMatrix(10000, 64)
	data.FillRandn(mathx.NewRNG(3), 1)
	pq, err := quant.TrainPQ(data, quant.PQConfig{M: 8, Ks: 64, Iters: 5, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	codes := make([][]byte, data.Rows)
	for i := range codes {
		codes[i] = pq.Encode(data.Row(i))
	}
	q := data.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := pq.ADCTable(q)
		var best float32 = 1e30
		for _, c := range codes {
			if d := pq.ADCDistance(table, c); d < best {
				best = d
			}
		}
	}
}

// BenchmarkPQBuild measures full PQ index construction — codebook training
// plus row encoding — with one worker vs all cores: the parallel-build path
// cmd/benchkg -bench-build snapshots into BENCH_build.json.
func BenchmarkPQBuild(b *testing.B) {
	data := mathx.NewMatrix(5000, 64)
	data.FillRandn(mathx.NewRNG(5), 1)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := quant.PQConfig{M: 8, Ks: 64, Iters: 5, Seed: 6, Workers: bc.workers}
				if _, err := index.NewPQ(data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIVFBuild is the same comparison for the inverted-file index:
// coarse k-means, residual computation, and per-list encoding all fan out.
func BenchmarkIVFBuild(b *testing.B) {
	data := mathx.NewMatrix(5000, 64)
	data.FillRandn(mathx.NewRNG(7), 1)
	pqCfg := quant.PQConfig{M: 8, Ks: 64, Iters: 5, Seed: 8}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := index.DefaultIVFConfig(data.Rows)
				cfg.PQ = &pqCfg
				cfg.Workers = bc.workers
				if _, err := index.NewIVF(data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTrain(b *testing.B) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
	cfg := core.FastConfig()
	cfg.Epochs = 2
	cfg.TripletsPerEntity = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEpoch compares the two combiner/semantic training modes at
// a fixed small scale: the deterministic sequential path vs hogwild at
// 1/2/4 workers (DESIGN.md §13). On a single-core machine the hw variants
// measure goroutine overhead, not speedup — `make bench-compare` does not
// gate them there.
func BenchmarkTrainEpoch(b *testing.B) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
	base := core.FastConfig()
	base.Epochs = 2
	base.TripletsPerEntity = 8
	for _, bc := range []struct {
		name    string
		hogwild bool
		workers int
	}{{"det", false, 0}, {"hw1", true, 1}, {"hw2", true, 2}, {"hw4", true, 4}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := base
			cfg.Hogwild = bc.hogwild
			cfg.Workers = bc.workers
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngest measures the streaming-ingest loop end to end: enqueue a
// new entity, then the worker embeds it and appends to the dynamic delta
// index. The final Flush keeps the apply cost inside the timed region.
func BenchmarkIngest(b *testing.B) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
	cfg := core.FastConfig()
	cfg.Epochs = 2
	cfg.TripletsPerEntity = 8
	m, err := core.Train(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	dyn := m.WithDynamicIndex(1 << 30)
	in, err := dyn.NewIngestor(1024)
	if err != nil {
		b.Fatal(err)
	}
	defer in.Close()
	labels := make([]string, 512)
	for i := range labels {
		labels[i] = "ingest bench entity " + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := in.Enqueue(core.IngestItem{NewEntity: true, Label: labels[i%len(labels)]}); err != nil {
			b.Fatal(err)
		}
	}
	in.Flush()
}

func BenchmarkNoiseInjection(b *testing.B) {
	g, s := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 500))
	ds := tabular.GenerateDataset(g, s, tabular.DefaultDatasetConfig(tabular.STWikidata, 20))
	in := tabular.NewInjector(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Apply(ds)
	}
}
