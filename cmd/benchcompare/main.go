// Command benchcompare diffs two benchmark snapshots (the schema written by
// `benchkg -bench-lookup` / `-bench-serve`) metric by metric and fails when
// a timing metric regresses beyond the threshold. `make bench-compare`
// regenerates fresh snapshots and runs this against the committed ones, so
// hot-path slowdowns surface as a red target rather than a silent drift.
//
// Usage:
//
//	benchcompare [-threshold 0.20] old.json new.json
//
// Exit status 1 when any timing metric (ns/us units) in new.json exceeds
// its old.json value by more than the threshold fraction. Non-timing
// metrics (qps, hit rates, allocation counts) are reported but never fail
// the run — throughput is environment-sensitive and allocations are guarded
// separately by the allocation benchmarks in `make verify`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

type benchEnv struct {
	GoVersion  string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Entities   int    `json:"entities"`
}

type benchResult struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type benchSnapshot struct {
	Env     benchEnv      `json:"env"`
	Results []benchResult `json:"results"`
}

func load(path string) (benchSnapshot, error) {
	var s benchSnapshot
	buf, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(buf, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// timingMetric reports whether a metric measures time (lower is better and
// a large increase is a regression).
func timingMetric(name string) bool {
	return strings.HasSuffix(name, "ns_per_op") ||
		strings.HasSuffix(name, "ns_per_query") ||
		strings.HasSuffix(name, "_us")
}

// parallelMetric reports whether a metric times a multi-worker code path
// (parallel build phases, hogwild training at hwN workers). On a
// single-core machine those timings measure goroutine oversubscription,
// not the code, so they are reported but never gated there.
func parallelMetric(name string) bool {
	return name == "par_us" ||
		(strings.HasPrefix(name, "hw") && strings.HasSuffix(name, "_us"))
}

func main() {
	log.SetFlags(0)
	threshold := flag.Float64("threshold", 0.20, "regression threshold as a fraction (0.20 = +20%)")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: benchcompare [-threshold 0.20] old.json new.json")
	}
	oldSnap, err := load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	newSnap, err := load(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}

	if oldSnap.Env != newSnap.Env {
		fmt.Printf("note: environments differ (old %+v, new %+v) — deltas may reflect the machine, not the code\n",
			oldSnap.Env, newSnap.Env)
	}
	singleCore := oldSnap.Env.NumCPU <= 1 || newSnap.Env.NumCPU <= 1
	if singleCore {
		fmt.Println("note: single-core environment — parallel-path timings (par_us, hw*_us) reported without gating")
	}

	oldByName := make(map[string]map[string]float64, len(oldSnap.Results))
	for _, r := range oldSnap.Results {
		oldByName[r.Name] = r.Metrics
	}

	regressions := 0
	for _, r := range newSnap.Results {
		old, ok := oldByName[r.Name]
		if !ok {
			fmt.Printf("%-24s (new result, no baseline)\n", r.Name)
			continue
		}
		for metric, nv := range r.Metrics {
			ov, ok := old[metric]
			if !ok || ov == 0 {
				continue
			}
			delta := (nv - ov) / ov
			mark := ""
			if timingMetric(metric) && delta > *threshold {
				if singleCore && parallelMetric(metric) {
					mark = "  (not gated: single core)"
				} else {
					mark = "  REGRESSION"
					regressions++
				}
			}
			fmt.Printf("%-24s %-18s %12.1f -> %12.1f  %+6.1f%%%s\n",
				r.Name, metric, ov, nv, 100*delta, mark)
		}
	}
	if regressions > 0 {
		log.Fatalf("benchcompare: %d timing metric(s) regressed beyond %.0f%%", regressions, 100**threshold)
	}
	fmt.Println("benchcompare: OK")
}
