package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// bestOfUs runs fn n times and returns the fastest wall-clock in
// microseconds — the usual best-of-N guard against scheduler noise for
// phase-level (not per-op) timings.
func bestOfUs(n int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Microseconds())
}

// benchBuild trains a small model and snapshots the cold-start profile into
// a JSON file: per-phase construction timings (embedding, k-means, PQ
// training, row encoding) sequential vs parallel, and the artifact path
// (serialize, then load) against the rebuild path. Phase rows carry
// seq_us/par_us so cmd/benchcompare gates them as timings; the speedup
// ratios ride along informationally.
func benchBuild(path string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}

	labels := make([]string, len(g.Entities))
	for i := range g.Entities {
		labels[i] = g.Entities[i].Label
	}
	snap := benchSnapshot{Env: captureEnv(entities)}
	add := func(name string, metrics map[string]float64) {
		snap.Results = append(snap.Results, benchResult{Name: name, Metrics: metrics})
	}

	// Phase 1: embedding every entity (always parallel in buildIndex).
	var data *mathx.Matrix
	embedUs := bestOfUs(3, func() { data = m.EmbeddingMatrix(labels, 0) })
	add("embed_entities", map[string]float64{"par_us": embedUs})

	// Phase 2: the coarse k-means at the IVF default list count.
	kmCfg := quant.KMeansConfig{K: index.DefaultIVFConfig(data.Rows).NList, MaxIters: 10, Seed: seed}
	kmSeq := bestOfUs(3, func() {
		c := kmCfg
		c.Workers = 1
		quant.KMeans(data, c)
	})
	kmPar := bestOfUs(3, func() {
		c := kmCfg
		c.Workers = 0
		quant.KMeans(data, c)
	})
	add("kmeans_coarse", map[string]float64{"seq_us": kmSeq, "par_us": kmPar, "speedup": kmSeq / kmPar})

	// Phase 3: PQ codebook training (M concurrent sub-problems).
	pqCfg := m.Config().PQ
	tpSeq := bestOfUs(3, func() {
		c := pqCfg
		c.Workers = 1
		if _, err := quant.TrainPQ(data, c); err != nil {
			panic(err)
		}
	})
	tpPar := bestOfUs(3, func() {
		c := pqCfg
		c.Workers = 0
		if _, err := quant.TrainPQ(data, c); err != nil {
			panic(err)
		}
	})
	add("train_pq", map[string]float64{"seq_us": tpSeq, "par_us": tpPar, "speedup": tpSeq / tpPar})

	// Phase 4: full index construction, training plus row encoding.
	bpSeq := bestOfUs(3, func() {
		c := pqCfg
		c.Workers = 1
		if _, err := index.NewPQ(data, c); err != nil {
			panic(err)
		}
	})
	bpPar := bestOfUs(3, func() {
		c := pqCfg
		c.Workers = 0
		if _, err := index.NewPQ(data, c); err != nil {
			panic(err)
		}
	})
	add("build_pq", map[string]float64{"seq_us": bpSeq, "par_us": bpPar, "speedup": bpSeq / bpPar})

	ivfCfg := index.DefaultIVFConfig(data.Rows)
	ivfCfg.PQ = &pqCfg
	biSeq := bestOfUs(3, func() {
		c := ivfCfg
		c.Workers = 1
		if _, err := index.NewIVF(data, c); err != nil {
			panic(err)
		}
	})
	biPar := bestOfUs(3, func() {
		c := ivfCfg
		c.Workers = 0
		if _, err := index.NewIVF(data, c); err != nil {
			panic(err)
		}
	})
	add("build_ivf_pq", map[string]float64{"seq_us": biSeq, "par_us": biPar, "speedup": biSeq / biPar})

	// Phase 5: cold start — attach the saved artifact vs rebuild from
	// weights. This is the headline number: the load path re-runs none of
	// the phases above.
	dir, err := os.MkdirTemp("", "benchbuild")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	withIx := filepath.Join(dir, "with_index.bin")
	weights := filepath.Join(dir, "weights.bin")
	serializeUs := bestOfUs(3, func() {
		if err := m.SaveFileWithIndex(withIx); err != nil {
			panic(err)
		}
	})
	if err := m.SaveFile(weights); err != nil {
		return err
	}
	loadUs := bestOfUs(3, func() {
		if _, err := core.LoadFile(withIx, g); err != nil {
			panic(err)
		}
	})
	rebuildUs := bestOfUs(3, func() {
		if _, err := core.LoadFile(weights, g); err != nil {
			panic(err)
		}
	})
	add("cold_start", map[string]float64{
		"serialize_us":       serializeUs,
		"load_us":            loadUs,
		"rebuild_us":         rebuildUs,
		"cold_start_speedup": rebuildUs / loadUs,
	})

	return writeSnapshot(path, snap)
}
