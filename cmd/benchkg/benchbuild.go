package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/obs"
	"emblookup/internal/quant"
)

// bestOfUs runs fn n times and returns the fastest wall-clock in
// microseconds — the usual best-of-N guard against scheduler noise for
// phase-level (not per-op) timings.
func bestOfUs(n int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Microseconds())
}

// benchBuild trains a small model and snapshots the cold-start profile into
// a JSON file: per-phase construction timings (embedding, k-means, PQ
// training, row encoding) sequential vs parallel, and the artifact path
// (serialize, then load) against the rebuild path. Phase rows carry
// seq_us/par_us so cmd/benchcompare gates them as timings; the speedup
// ratios ride along informationally.
func benchBuild(path string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	// Past laptop scale, training on the full graph is not what a build
	// measures: train the encoder on a small donor graph once and grow the
	// index over the big graph under fixed weights (the same regime as
	// -bench-scale), with the k-means stages bounded by a training sample.
	// Phase repetitions drop to one — each phase runs for seconds at 100k.
	reps, trainSample := 3, 0
	trainEntities := entities
	if entities > 5000 {
		reps, trainSample = 1, 20000
		trainEntities = 2000
	}
	tCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, trainEntities)
	tCfg.Seed = seed
	tg, _ := kg.Generate(tCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	cfg.PQ.TrainSample = trainSample
	var detSt core.TrainStats
	m, err := core.Train(tg, cfg, core.WithTrainStats(&detSt))
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	if trainEntities != entities {
		dir, err := os.MkdirTemp("", "benchbuild-donor")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		weights := filepath.Join(dir, "weights.bin")
		if err := m.SaveFile(weights); err != nil {
			return err
		}
		if m, err = core.LoadFile(weights, g); err != nil {
			return fmt.Errorf("rebuilding index at %d entities: %w", entities, err)
		}
	}

	labels := make([]string, len(g.Entities))
	for i := range g.Entities {
		labels[i] = g.Entities[i].Label
	}
	snap := benchSnapshot{Env: captureEnv(entities)}
	add := func(name string, metrics map[string]float64) {
		snap.Results = append(snap.Results, benchResult{Name: name, Metrics: metrics})
	}

	// Phase 0: training, deterministic vs hogwild at 1/2/4 workers. One run
	// per mode — each is seconds of wall clock — with per-phase durations
	// taken from core.TrainStats instead of re-timing the call. The env
	// block records NumCPU/GOMAXPROCS, so a single-core snapshot is
	// self-describing (and benchcompare skips gating hw*_us there).
	trainSem := map[string]float64{"det_us": float64(detSt.SemanticDur.Microseconds())}
	trainComb := map[string]float64{"det_us": float64(detSt.CombinerDur.Microseconds())}
	for _, w := range []int{1, 2, 4} {
		hwCfg := cfg
		hwCfg.Hogwild = true
		hwCfg.Workers = w
		var st core.TrainStats
		if _, err := core.Train(tg, hwCfg, core.WithTrainStats(&st)); err != nil {
			return fmt.Errorf("hogwild training (%d workers): %w", w, err)
		}
		key := fmt.Sprintf("hw%d_us", w)
		trainSem[key] = float64(st.SemanticDur.Microseconds())
		trainComb[key] = float64(st.CombinerDur.Microseconds())
	}
	add("train_semantic", trainSem)
	add("train_combiner", trainComb)

	// Phase 1: embedding every entity (always parallel in buildIndex).
	var data *mathx.Matrix
	embedUs := bestOfUs(reps, func() { data = m.EmbeddingMatrix(labels, 0) })
	add("embed_entities", map[string]float64{"par_us": embedUs})

	// Phase 2: the coarse k-means at the IVF default list count.
	kmCfg := quant.KMeansConfig{K: index.DefaultIVFConfig(data.Rows).NList, MaxIters: 10, Seed: seed, TrainSample: trainSample}
	kmSeq := bestOfUs(reps, func() {
		c := kmCfg
		c.Workers = 1
		quant.KMeans(data, c)
	})
	kmPar := bestOfUs(reps, func() {
		c := kmCfg
		c.Workers = 0
		quant.KMeans(data, c)
	})
	add("kmeans_coarse", map[string]float64{"seq_us": kmSeq, "par_us": kmPar, "speedup": kmSeq / kmPar})

	// Phase 3: PQ codebook training (M concurrent sub-problems).
	pqCfg := m.Config().PQ
	tpSeq := bestOfUs(reps, func() {
		c := pqCfg
		c.Workers = 1
		if _, err := quant.TrainPQ(data, c); err != nil {
			panic(err)
		}
	})
	tpPar := bestOfUs(reps, func() {
		c := pqCfg
		c.Workers = 0
		if _, err := quant.TrainPQ(data, c); err != nil {
			panic(err)
		}
	})
	add("train_pq", map[string]float64{"seq_us": tpSeq, "par_us": tpPar, "speedup": tpSeq / tpPar})

	// Phase 4: full index construction, training plus row encoding.
	bpSeq := bestOfUs(reps, func() {
		c := pqCfg
		c.Workers = 1
		if _, err := index.NewPQ(data, c); err != nil {
			panic(err)
		}
	})
	bpPar := bestOfUs(reps, func() {
		c := pqCfg
		c.Workers = 0
		if _, err := index.NewPQ(data, c); err != nil {
			panic(err)
		}
	})
	add("build_pq", map[string]float64{"seq_us": bpSeq, "par_us": bpPar, "speedup": bpSeq / bpPar})

	ivfCfg := index.DefaultIVFConfig(data.Rows)
	ivfCfg.PQ = &pqCfg
	ivfCfg.TrainSample = trainSample
	biSeq := bestOfUs(reps, func() {
		c := ivfCfg
		c.Workers = 1
		if _, err := index.NewIVF(data, c); err != nil {
			panic(err)
		}
	})
	biPar := bestOfUs(reps, func() {
		c := ivfCfg
		c.Workers = 0
		if _, err := index.NewIVF(data, c); err != nil {
			panic(err)
		}
	})
	add("build_ivf_pq", map[string]float64{"seq_us": biSeq, "par_us": biPar, "speedup": biSeq / biPar})

	// Phase 5: cold start — attach the saved artifact vs rebuild from
	// weights. This is the headline number: the load path re-runs none of
	// the phases above.
	dir, err := os.MkdirTemp("", "benchbuild")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	withIx := filepath.Join(dir, "with_index.bin")
	weights := filepath.Join(dir, "weights.bin")
	serializeUs := bestOfUs(reps, func() {
		if err := m.SaveFileWithIndex(withIx); err != nil {
			panic(err)
		}
	})
	if err := m.SaveFile(weights); err != nil {
		return err
	}
	loadUs := bestOfUs(reps, func() {
		if _, err := core.LoadFile(withIx, g); err != nil {
			panic(err)
		}
	})
	rebuildUs := bestOfUs(reps, func() {
		if _, err := core.LoadFile(weights, g); err != nil {
			panic(err)
		}
	})
	add("cold_start", map[string]float64{
		"serialize_us":       serializeUs,
		"load_us":            loadUs,
		"rebuild_us":         rebuildUs,
		"cold_start_speedup": rebuildUs / loadUs,
	})

	// Phase 6: streaming ingest — burst new entities into a dynamic clone
	// and snapshot the enqueue→visible lag distribution from the obs
	// histogram. Lag metrics are nanoseconds on purpose: benchcompare gates
	// only *_us / ns_per_op timings, and single-item queue lag is scheduler
	// noise, not a regression signal.
	dyn := m.WithDynamicIndex(0)
	ing, err := dyn.NewIngestor(256)
	if err != nil {
		return err
	}
	const ingestN = 64
	for i := 0; i < ingestN; i++ {
		if err := ing.Enqueue(core.IngestItem{NewEntity: true, Label: fmt.Sprintf("benchbuild ingest entity %03d", i)}); err != nil {
			return err
		}
	}
	ing.Flush()
	ist := ing.Stats()
	ing.Close()
	lag := obs.Default().Histogram("emblookup_ingest_lag_seconds").Snapshot()
	add("obs_ingest", map[string]float64{
		"applied":    float64(ist.Applied),
		"failed":     float64(ist.Failed),
		"lag_p50_ns": float64(lag.Quantile(0.50)),
		"lag_p99_ns": float64(lag.Quantile(0.99)),
	})

	return writeSnapshot(path, snap)
}
