package main

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"emblookup/internal/cluster"
	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/obs"
)

// benchCluster measures the partitioned serving path (internal/cluster):
// routed lookup latency over in-process clusters of 1, 2, and 4 nodes, then
// a straggler scenario — one node stalls on every first attempt — with and
// without hedged requests. The summary's hedging_win is the p99 ratio of
// the two straggler runs: how much tail latency the hedge buys back.
func benchCluster(path string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}

	rng := mathx.NewRNG(seed + 1)
	mix := make([]string, 512)
	for i := range mix {
		mix[i] = g.Entities[rng.Zipf(len(g.Entities), zipfSkew)].Label
	}

	snap := benchSnapshot{Env: captureEnv(entities)}
	add := func(name string, metrics map[string]float64) {
		snap.Results = append(snap.Results, benchResult{Name: name, Metrics: metrics})
	}

	// routed runs ops sequential router lookups and reports ns/op, p50, p99.
	routed := func(l *cluster.Local, ops int) (nsPerOp, p50us, p99us float64) {
		lats := make([]time.Duration, ops)
		start := time.Now()
		for i := 0; i < ops; i++ {
			t0 := time.Now()
			l.Router.Lookup(mix[i%len(mix)], 10)
			lats[i] = time.Since(t0)
		}
		total := time.Since(start)
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return float64(total.Nanoseconds()) / float64(ops),
			float64(percentile(lats, 0.50).Microseconds()),
			float64(percentile(lats, 0.99).Microseconds())
	}

	// Healthy clusters: scatter-gather cost as P grows, hedging idle. Each
	// run gets its own metrics registry; the widest cluster's registry view
	// (routed latency histogram + scatter totals) lands in the snapshot.
	for _, p := range []int{1, 2, 4} {
		reg := obs.New()
		l, err := cluster.StartLocal(m, p, cluster.LocalOptions{
			Router: cluster.RouterOptions{HedgeAfter: -1, Registry: reg},
		})
		if err != nil {
			return fmt.Errorf("cluster P=%d: %w", p, err)
		}
		l.Router.Lookup(mix[0], 10) // warm connections
		ns, p50, p99 := routed(l, 256)
		if p == 4 {
			lat := reg.Histogram("emblookup_cluster_lookup_seconds").Summary()
			tot := l.Router.Stats().Totals
			add("obs_cluster_4node", map[string]float64{
				"lookups":       float64(lat.Count),
				"p50_us":        lat.P50Us,
				"p95_us":        lat.P95Us,
				"node_requests": float64(tot.Requests),
				"node_failures": float64(tot.Failures),
			})
		}
		l.Close()
		add(fmt.Sprintf("cluster_%dnode", p), map[string]float64{
			"nodes": float64(p), "ns_per_op": ns, "p50_us": p50, "p99_us": p99,
		})
	}

	// Straggler scenario: node 0 stalls injectedDelay on every first attempt
	// of a search (odd request numbers); a duplicate sails through. Without
	// hedging every lookup eats the stall; with a short hedge delay the
	// duplicate wins and the tail collapses.
	const injectedDelay = 40 * time.Millisecond
	const ops = 64
	straggler := func(hedgeAfter time.Duration) (float64, float64, float64, cluster.RouterStats, error) {
		var reqs atomic.Int64
		opts := cluster.LocalOptions{
			Router: cluster.RouterOptions{HedgeAfter: hedgeAfter, Registry: obs.New()},
			Wrap: func(i int, h http.Handler) http.Handler {
				return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if i == 0 && r.URL.Path == "/partition/search" && reqs.Add(1)%2 == 1 {
						time.Sleep(injectedDelay)
					}
					h.ServeHTTP(w, r)
				})
			},
		}
		l, err := cluster.StartLocal(m, 2, opts)
		if err != nil {
			return 0, 0, 0, cluster.RouterStats{}, err
		}
		defer l.Close()
		ns, p50, p99 := routed(l, ops)
		return ns, p50, p99, l.Router.Stats(), nil
	}

	ns, p50, p99NoHedge, _, err := straggler(-1)
	if err != nil {
		return fmt.Errorf("straggler (no hedge): %w", err)
	}
	add("straggler_nohedge", map[string]float64{"ns_per_op": ns, "p50_us": p50, "p99_us": p99NoHedge})

	ns, p50, p99Hedged, hst, err := straggler(5 * time.Millisecond)
	if err != nil {
		return fmt.Errorf("straggler (hedged): %w", err)
	}
	add("straggler_hedged", map[string]float64{
		"ns_per_op": ns, "p50_us": p50, "p99_us": p99Hedged,
		"hedge_wins": float64(hst.Nodes[0].HedgeWins),
		"hedges":     float64(hst.Totals.Hedges),
		"retries":    float64(hst.Totals.Retries),
	})

	add("summary", map[string]float64{
		"hedging_win":       p99NoHedge / p99Hedged,
		"injected_delay_ms": float64(injectedDelay.Milliseconds()),
		"ops_per_scenario":  ops,
	})
	return writeSnapshot(path, snap)
}
