package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"emblookup/internal/core"
	"emblookup/internal/kg"
)

// benchResult is one row of the BENCH_lookup.json snapshot.
type benchResult struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
}

// benchLookup trains a small model and snapshots the allocation profile of
// the query hot path into a JSON file, so allocation regressions show up in
// diffs rather than only under `go test -bench -benchmem`.
func benchLookup(path string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	nc, err := m.WithCompression(false)
	if err != nil {
		return fmt.Errorf("decompressing: %w", err)
	}

	query := g.Entities[0].Label
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = g.Entities[i%len(g.Entities)].Label
	}

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"embed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Embed(query)
			}
		}},
		{"lookup_pq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Lookup(query, 10)
			}
		}},
		{"lookup_flat", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nc.Lookup(query, 10)
			}
		}},
		{"bulk_lookup_256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.BulkLookup(queries, 10, 0)
			}
		}},
	}

	var results []benchResult
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.fn(b)
		})
		res := benchResult{
			Name:     c.name,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
		results = append(results, res)
		fmt.Printf("%-16s %12.0f ns/op %8d allocs/op %10d B/op\n",
			res.Name, res.NsPerOp, res.AllocsOp, res.BytesOp)
	}

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
