package main

import (
	"fmt"
	"testing"

	"emblookup/internal/core"
	"emblookup/internal/kg"
)

// benchLookup trains a small model and snapshots the allocation profile of
// the query hot path into a JSON file, so allocation regressions show up in
// diffs rather than only under `go test -bench -benchmem`.
func benchLookup(path string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	nc, err := m.WithCompression(false)
	if err != nil {
		return fmt.Errorf("decompressing: %w", err)
	}

	query := g.Entities[0].Label
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = g.Entities[i%len(g.Entities)].Label
	}

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"embed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Embed(query)
			}
		}},
		{"lookup_pq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Lookup(query, 10)
			}
		}},
		{"lookup_flat", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nc.Lookup(query, 10)
			}
		}},
		{"bulk_lookup_256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.BulkLookup(queries, 10, 0)
			}
		}},
	}

	snap := benchSnapshot{Env: captureEnv(entities)}
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.fn(b)
		})
		snap.Results = append(snap.Results, benchResult{
			Name: c.name,
			Metrics: map[string]float64{
				"ns_per_op":     float64(r.T.Nanoseconds()) / float64(r.N),
				"allocs_per_op": float64(r.AllocsPerOp()),
				"bytes_per_op":  float64(r.AllocedBytesPerOp()),
			},
		})
	}
	return writeSnapshot(path, snap)
}
