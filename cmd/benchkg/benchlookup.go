package main

import (
	"fmt"
	"testing"

	"emblookup/internal/core"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// recallVs measures recall@1 and recall@10 of a lookup variant against a
// ground-truth model (the uncompressed flat index) over a fixed query set:
// recall@k is the mean fraction of the truth's top-k entity ids the variant's
// top-k retains.
func recallVs(variant, truth *core.EmbLookup, queries []string) (r1, r10 float64) {
	for _, q := range queries {
		want := truth.Lookup(q, 10)
		got := variant.Lookup(q, 10)
		if len(want) == 0 {
			continue
		}
		ids := make(map[kg.EntityID]bool, len(got))
		for _, c := range got {
			ids[c.ID] = true
		}
		if len(got) > 0 && got[0].ID == want[0].ID {
			r1++
		}
		hit := 0
		for _, c := range want {
			if ids[c.ID] {
				hit++
			}
		}
		r10 += float64(hit) / float64(len(want))
	}
	n := float64(len(queries))
	return r1 / n, r10 / n
}

// benchLookup trains a small model and snapshots the latency, allocation,
// and recall profile of the query hot path into a JSON file, so regressions
// show up in diffs rather than only under `go test -bench -benchmem`.
//
// Rows: embed and lookup_* measure the end-to-end path (embedding included);
// scan_* isolate the index-scan kernels on a 20k-row synthetic index with a
// reused scratch — the loop the fast-scan layout accelerates. Every compressed
// variant carries recall@1/recall@10 against the flat ground truth (metric
// keys without a timing suffix, so bench-compare treats them as
// informational).
func benchLookup(path string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	nc, err := m.WithCompression(false)
	if err != nil {
		return fmt.Errorf("decompressing: %w", err)
	}
	fs, err := m.WithFastScan()
	if err != nil {
		return fmt.Errorf("fast-scan sibling: %w", err)
	}

	query := g.Entities[0].Label
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = g.Entities[i%len(g.Entities)].Label
	}
	recallQueries := queries[:min(len(queries), len(g.Entities))]

	// The scan_* rows isolate the compressed-scan kernels at serving scale:
	// a 20k-row index (10× the model fixture) so the scan dominates fixed
	// per-query costs and the throughput ratio is stable run to run. Both
	// kernels index the same synthetic vectors at equal bytes per code.
	const scanRows = 20000
	scanData := mathx.NewMatrix(scanRows, m.Config().Dim)
	scanData.FillRandn(mathx.NewRNG(seed+1), 1)
	scanCfg := m.Config().PQ
	scanPQ, err := index.NewPQ(scanData, scanCfg)
	if err != nil {
		return fmt.Errorf("scan PQ index: %w", err)
	}
	scanFS, err := index.NewFastScan(scanData, quant.Config4(scanCfg))
	if err != nil {
		return fmt.Errorf("scan fast-scan index: %w", err)
	}
	scanQ := scanData.Row(0)

	r1PQ, r10PQ := recallVs(m, nc, recallQueries)
	r1FS, r10FS := recallVs(fs, nc, recallQueries)

	cases := []struct {
		name  string
		extra map[string]float64
		fn    func(b *testing.B)
	}{
		{"embed", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Embed(query)
			}
		}},
		{"lookup_pq", map[string]float64{"recall_at_1": r1PQ, "recall_at_10": r10PQ}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Lookup(query, 10)
			}
		}},
		{"lookup_fastscan", map[string]float64{"recall_at_1": r1FS, "recall_at_10": r10FS}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs.Lookup(query, 10)
			}
		}},
		{"lookup_flat", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nc.Lookup(query, 10)
			}
		}},
		{"scan_pq", map[string]float64{"rows": scanRows}, func(b *testing.B) {
			var s index.Scratch
			var dst []index.Result
			for i := 0; i < b.N; i++ {
				dst = scanPQ.SearchAppendWith(&s, scanQ, 10, dst)
			}
		}},
		{"scan_fastscan", map[string]float64{"rows": scanRows}, func(b *testing.B) {
			var s index.Scratch
			var dst []index.Result
			for i := 0; i < b.N; i++ {
				dst = scanFS.SearchAppendWith(&s, scanQ, 10, dst)
			}
		}},
		{"bulk_lookup_256", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.BulkLookup(queries, 10, 0)
			}
		}},
		{"bulk_lookup_fastscan_256", nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs.BulkLookup(queries, 10, 0)
			}
		}},
	}

	snap := benchSnapshot{Env: captureEnv(entities)}
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.fn(b)
		})
		metrics := map[string]float64{
			"ns_per_op":     float64(r.T.Nanoseconds()) / float64(r.N),
			"allocs_per_op": float64(r.AllocsPerOp()),
			"bytes_per_op":  float64(r.AllocedBytesPerOp()),
		}
		for k, v := range c.extra {
			metrics[k] = v
		}
		snap.Results = append(snap.Results, benchResult{Name: c.name, Metrics: metrics})
	}
	return writeSnapshot(path, snap)
}
