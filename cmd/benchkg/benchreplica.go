package main

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emblookup/internal/cluster"
	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/obs"
	"emblookup/internal/replica"
)

// benchReplica measures the replicated control plane (internal/replica)
// through three scenarios:
//
//  1. A degraded replica — one replica of partition 0 stalls on every
//     search. With a replica pair the hedge escapes to the *other* replica
//     (and the EWMA score steers subsequent primaries away); with one
//     replica per partition the PR-4 duplicate-send lands on the same
//     stalled node and eats the stall every time. The summary's
//     replica_hedge_win is the p99 ratio of the two runs.
//  2. Failover — kill one replica of a pair mid-serve and measure the
//     latency the crash makes visible before the health machinery settles
//     on the survivor (plus the partial count, which must stay zero).
//  3. Rebalance under load — a live 2→3 partition re-split under
//     concurrent traffic, recording dropped/partial counts (expected
//     zero) and the wall-clock duration of the move.
func benchReplica(path string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}

	rng := mathx.NewRNG(seed + 1)
	mix := make([]string, 512)
	for i := range mix {
		mix[i] = g.Entities[rng.Zipf(len(g.Entities), zipfSkew)].Label
	}

	snap := benchSnapshot{Env: captureEnv(entities)}
	add := func(name string, metrics map[string]float64) {
		snap.Results = append(snap.Results, benchResult{Name: name, Metrics: metrics})
	}

	// routed runs ops sequential router lookups and reports ns/op, p50,
	// p99, max, and how many answers degraded to partial.
	routed := func(c *replica.Cluster, ops int) (nsPerOp, p50us, p99us, maxus, partials float64) {
		lats := make([]time.Duration, ops)
		start := time.Now()
		for i := 0; i < ops; i++ {
			t0 := time.Now()
			if r := c.Router.Lookup(mix[i%len(mix)], 10); r.Partial {
				partials++
			}
			lats[i] = time.Since(t0)
		}
		total := time.Since(start)
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return float64(total.Nanoseconds()) / float64(ops),
			float64(percentile(lats, 0.50).Microseconds()),
			float64(percentile(lats, 0.99).Microseconds()),
			float64(lats[len(lats)-1].Microseconds()),
			partials
	}

	// Scenario 1: replica 0 of partition 0 stalls injectedDelay on every
	// search request — a node degraded by GC, load, or a bad disk, not a
	// dead one. Retrying or duplicating to the same node cannot help;
	// only a *distinct* replica can.
	const injectedDelay = 40 * time.Millisecond
	const ops = 64
	stallWrap := func(p, j int, h http.Handler) http.Handler {
		if p != 0 || j != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/partition/search" {
				time.Sleep(injectedDelay)
			}
			h.ServeHTTP(w, r)
		})
	}
	degraded := func(replicas int) (float64, float64, float64, cluster.RouterStats, error) {
		c, err := replica.Start(m, 2, replica.Options{
			Replicas: replicas,
			Router:   cluster.RouterOptions{HedgeAfter: 5 * time.Millisecond, Registry: obs.New()},
			Wrap:     stallWrap,
		})
		if err != nil {
			return 0, 0, 0, cluster.RouterStats{}, err
		}
		defer c.Close()
		ns, p50, p99, _, _ := routed(c, ops)
		return ns, p50, p99, c.Router.Stats(), nil
	}

	ns, p50, p99Dup, _, err := degraded(1)
	if err != nil {
		return fmt.Errorf("degraded (duplicate-send): %w", err)
	}
	add("degraded_duplicate_send", map[string]float64{
		"ns_per_op": ns, "p50_us": p50, "p99_us": p99Dup,
	})

	ns, p50, p99Hedged, hst, err := degraded(2)
	if err != nil {
		return fmt.Errorf("degraded (replica hedge): %w", err)
	}
	add("degraded_replica_hedged", map[string]float64{
		"ns_per_op":  ns, "p50_us": p50, "p99_us": p99Hedged,
		"hedges":     float64(hst.Totals.Hedges),
		"hedge_wins": float64(hst.Totals.HedgeWins),
	})

	// Scenario 2: a clean 2x2 cluster loses one replica mid-serve. The
	// first lookup that picks the dead node pays the failover (connection
	// refused + retry to the survivor); nothing may degrade to partial.
	fo, err := replica.Start(m, 2, replica.Options{
		Replicas: 2,
		Router: cluster.RouterOptions{
			HedgeAfter:    -1,
			FailThreshold: 1,
			ProbeInterval: 50 * time.Millisecond,
			Registry:      obs.New(),
		},
	})
	if err != nil {
		return fmt.Errorf("failover cluster: %w", err)
	}
	routed(fo, 16) // warm every replica's EWMA and connections
	// Kill the replica of partition 0 the router currently prefers (the
	// one the warmup requests settled on): killing the idle standby would
	// measure nothing, since traffic never touches it.
	victim := 0
	if st := fo.Router.Stats(); st.Nodes[1].Requests > st.Nodes[0].Requests {
		victim = 1
	}
	fo.KillReplica(0, victim)
	ns, p50, p99, maxUs, partials := routed(fo, ops)
	fst := fo.Router.Stats()
	fo.Close()
	add("failover", map[string]float64{
		"ns_per_op": ns, "p50_us": p50, "p99_us": p99, "max_us": maxUs,
		"partials":           partials,
		"healthy_after":      float64(fst.Healthy),
		"health_transitions": float64(fst.Totals.HealthTransitions),
	})

	// Scenario 3: a live 2→3 re-split under concurrent traffic. Queries
	// keep flowing while artifacts are re-cut, fresh nodes boot, and the
	// map flips; the drain protocol means zero dropped and zero partial.
	rb, err := replica.Start(m, 2, replica.Options{
		Replicas: 2,
		Router:   cluster.RouterOptions{HedgeAfter: -1, Registry: obs.New()},
	})
	if err != nil {
		return fmt.Errorf("rebalance cluster: %w", err)
	}
	var rbOps, rbPartials, rbDropped atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := rb.Router.Lookup(mix[(w*131+i)%len(mix)], 10)
				rbOps.Add(1)
				if r.Partial {
					rbPartials.Add(1)
				}
				if len(r.Candidates) == 0 {
					rbDropped.Add(1)
				}
			}
		}(w)
	}
	rbStart := time.Now()
	rbErr := rb.Rebalance(3)
	rbMs := float64(time.Since(rbStart).Milliseconds())
	close(stop)
	wg.Wait()
	rb.Close()
	if rbErr != nil {
		return fmt.Errorf("rebalance under load: %w", rbErr)
	}
	add("rebalance_under_load", map[string]float64{
		"rebalance_ms": rbMs,
		"ops":          float64(rbOps.Load()),
		"partials":     float64(rbPartials.Load()),
		"dropped":      float64(rbDropped.Load()),
	})

	add("summary", map[string]float64{
		"replica_hedge_win": p99Dup / p99Hedged,
		"injected_delay_ms": float64(injectedDelay.Milliseconds()),
		"ops_per_scenario":  ops,
	})
	return writeSnapshot(path, snap)
}
