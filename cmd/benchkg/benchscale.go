package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/index"
	"emblookup/internal/kg"
)

// benchScale is the million-entity benchmark: for each entity count it
// measures what the v4 zero-copy artifact format (DESIGN.md §12) buys at
// that scale — cold attach time and resident memory against the gob
// format, recall@1/@10 against exact flat search, the served lookup
// latency distribution, and the IVF nprobe recall/latency trade-off.
//
// The model weights are trained once on a small donor graph; each scale
// then rebuilds only the index over its own graph (embedding every entity
// and clustering with a bounded training sample), which is how a real
// deployment grows a corpus under a fixed encoder. Cold attach runs in a
// fresh subprocess per measurement so the page cache state and heap are
// those of a genuinely cold process.
const (
	donorEntities    = 2000
	scaleTrainSample = 20000 // rows the coarse k-means / PQ train on at scale
	scaleQueries     = 200   // labels per recall measurement
	scaleLatencyOps  = 1000  // lookups per latency distribution
)

func parseScales(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad scale %q (want a positive entity count)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scales given")
	}
	sort.Ints(out)
	return out, nil
}

// donorModel trains the fixed encoder every scale shares. IVF-PQ with a
// bounded training sample is the only configuration that stays buildable
// and serveable at a million entities.
func donorModel(seed uint64) (*core.EmbLookup, error) {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, donorEntities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)
	cfg := core.FastConfig()
	cfg.Epochs = 4
	cfg.IVF = true
	cfg.IVFNProbe = 16
	cfg.PQ.TrainSample = scaleTrainSample
	return core.Train(g, cfg)
}

func benchScale(path, scalesCSV string, seed uint64) error {
	scales, err := parseScales(scalesCSV)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolving own binary for cold-attach subprocesses: %w", err)
	}
	dir, err := os.MkdirTemp("", "benchscale")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Printf("training donor model (%d entities)\n", donorEntities)
	donor, err := donorModel(seed)
	if err != nil {
		return fmt.Errorf("training donor model: %w", err)
	}
	weights := filepath.Join(dir, "weights.v4")
	if err := donor.SaveFile(weights); err != nil {
		return err
	}

	snap := benchSnapshot{Env: captureEnv(scales[len(scales)-1])}
	for _, n := range scales {
		if err := benchScaleOne(&snap, weights, n, seed, dir, exe); err != nil {
			return fmt.Errorf("scale %d: %w", n, err)
		}
	}
	return writeSnapshot(path, snap)
}

func benchScaleOne(snap *benchSnapshot, weights string, n int, seed uint64, dir, exe string) error {
	tag := func(s string) string { return fmt.Sprintf("scale_%d/%s", n, s) }
	add := func(name string, metrics map[string]float64) {
		snap.Results = append(snap.Results, benchResult{Name: name, Metrics: metrics})
	}

	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, n)
	gCfg.Seed = seed
	genStart := time.Now()
	g, _ := kg.Generate(gCfg)
	genUs := float64(time.Since(genStart).Microseconds())
	fmt.Printf("scale %d: graph generated (%.1fs)\n", n, time.Since(genStart).Seconds())

	// Rebuild the index over this graph under the donor's weights: embeds
	// every entity and clusters with the bounded training sample. This is
	// the cost the zero-copy attach avoids.
	buildStart := time.Now()
	m, err := core.LoadFile(weights, g)
	if err != nil {
		return fmt.Errorf("rebuilding index: %w", err)
	}
	buildUs := float64(time.Since(buildStart).Microseconds())
	fmt.Printf("scale %d: index rebuilt (%.1fs)\n", n, time.Since(buildStart).Seconds())

	v4Path := filepath.Join(dir, fmt.Sprintf("scale_%d.v4", n))
	gobPath := filepath.Join(dir, fmt.Sprintf("scale_%d.gob", n))
	if err := m.SaveFileWithIndex(v4Path); err != nil {
		return err
	}
	if err := m.SaveFileGob(gobPath, true); err != nil {
		return err
	}
	v4MB, gobMB := fileMB(v4Path), fileMB(gobPath)
	m.Close()

	// Cold attach: each measurement is a fresh process that regenerates the
	// graph, then times exactly one LoadFile and one first lookup. The v4
	// attach is so fast that scheduler noise dominates a single sample, so
	// it gets the most repetitions; a gob decode at 1M runs for tens of
	// seconds, so past 200k one suffices.
	v4Reps, reps := 5, 3
	if n > 200_000 {
		v4Reps, reps = 3, 1
	}
	v4Probe, err := coldAttach(exe, v4Path, n, seed, v4Reps)
	if err != nil {
		return fmt.Errorf("v4 cold attach: %w", err)
	}
	gobProbe, err := coldAttach(exe, gobPath, n, seed, reps)
	if err != nil {
		return fmt.Errorf("gob cold attach: %w", err)
	}
	add(tag("cold_attach"), map[string]float64{
		"v4_attach_us":       v4Probe.AttachUs,
		"gob_attach_us":      gobProbe.AttachUs,
		"attach_speedup":     gobProbe.AttachUs / v4Probe.AttachUs,
		"v4_first_lookup_us": v4Probe.FirstLookupUs,
		"v4_rss_delta_kb":    v4Probe.RSSAfterKB - v4Probe.RSSBeforeKB,
		"gob_rss_delta_kb":   gobProbe.RSSAfterKB - gobProbe.RSSBeforeKB,
		"v4_file_mb":         v4MB,
		"gob_file_mb":        gobMB,
	})
	add(tag("build"), map[string]float64{
		"gen_us":     genUs,
		"rebuild_us": buildUs,
	})

	// Everything below is served from the mmap-attached artifact — the
	// deployment configuration the numbers should describe.
	served, err := core.LoadFile(v4Path, g)
	if err != nil {
		return err
	}
	defer served.Close()

	// Ground truth: exact flat search over the full embedding matrix, row i
	// holding entity i (FastConfig does not index aliases).
	nq := scaleQueries
	if nq > n {
		nq = n
	}
	queries := make([]string, nq)
	for i := range queries {
		queries[i] = g.Entities[(i*(n/nq))%n].Label
	}
	labels := make([]string, len(g.Entities))
	for i := range g.Entities {
		labels[i] = g.Entities[i].Label
	}
	embStart := time.Now()
	data := served.EmbeddingMatrix(labels, 0)
	embUs := float64(time.Since(embStart).Microseconds())
	fmt.Printf("scale %d: ground-truth embeddings (%.1fs)\n", n, time.Since(embStart).Seconds())
	flat := index.NewFlat(data)
	truth := make([][]int32, nq)
	for i, q := range queries {
		rs := flat.Search(served.Embed(q), 10)
		ids := make([]int32, len(rs))
		for j, r := range rs {
			ids[j] = r.ID
		}
		truth[i] = ids
	}

	r1, r10 := recallAgainst(served, queries, truth)
	add(tag("recall"), map[string]float64{"recall_at_1": r1, "recall_at_10": r10})
	add(tag("embed"), map[string]float64{"all_entities_us": embUs})

	// Lookup latency distribution through the full model path.
	durs := make([]time.Duration, scaleLatencyOps)
	for i := range durs {
		q := queries[i%nq]
		start := time.Now()
		served.Lookup(q, 10)
		durs[i] = time.Since(start)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	add(tag("lookup"), map[string]float64{
		"p50_us": float64(durs[len(durs)/2].Microseconds()),
		"p99_us": float64(durs[len(durs)*99/100].Microseconds()),
	})

	// The nprobe sweep: recall and mean latency as the probe width grows.
	if ivf := unwrapIVF(served.Index()); ivf != nil {
		orig := ivf.NProbe()
		for _, np := range []int{1, 2, 4, 8, 16, 32} {
			ivf.SetNProbe(np)
			if ivf.NProbe() != np {
				break // clamped: fewer lists than np
			}
			r1, r10 := recallAgainst(served, queries, truth)
			start := time.Now()
			for _, q := range queries {
				served.Lookup(q, 10)
			}
			mean := float64(time.Since(start).Microseconds()) / float64(len(queries))
			add(tag(fmt.Sprintf("nprobe_%d", np)), map[string]float64{
				"recall_at_1":  r1,
				"recall_at_10": r10,
				"mean_us":      mean,
			})
		}
		ivf.SetNProbe(orig)

		// The re-rank sweep (Config.Rerank): decide the final top-k by
		// exact distances over the ADC shortlist, re-reading raw vectors —
		// the recall the quantized scan gives up at scale, bought back at
		// the cost of k×factor exact distances per probe. The flat
		// ground-truth matrix doubles as the re-rank vectors.
		if ivf.Quantizer() != nil {
			for _, f := range []int{2, 4, 8} {
				if err := ivf.SetRerank(f, data); err != nil {
					return err
				}
				r1, r10 := recallAgainst(served, queries, truth)
				start := time.Now()
				for _, q := range queries {
					served.Lookup(q, 10)
				}
				mean := float64(time.Since(start).Microseconds()) / float64(len(queries))
				add(tag(fmt.Sprintf("rerank_%d", f)), map[string]float64{
					"recall_at_1":  r1,
					"recall_at_10": r10,
					"mean_us":      mean,
				})
			}
			if err := ivf.SetRerank(0, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// recallAgainst scores the served model's top-10 against exact flat truth:
// recall@1 is rank-1 agreement, recall@10 the top-10 overlap fraction.
func recallAgainst(m *core.EmbLookup, queries []string, truth [][]int32) (r1, r10 float64) {
	for i, q := range queries {
		got := m.Lookup(q, 10)
		if len(got) > 0 && len(truth[i]) > 0 && int32(got[0].ID) == truth[i][0] {
			r1++
		}
		want := make(map[int32]bool, len(truth[i]))
		for _, id := range truth[i] {
			want[id] = true
		}
		hits := 0
		for _, c := range got {
			if want[int32(c.ID)] {
				hits++
			}
		}
		if len(truth[i]) > 0 {
			r10 += float64(hits) / float64(len(truth[i]))
		}
	}
	n := float64(len(queries))
	return r1 / n, r10 / n
}

func unwrapIVF(ix index.Index) *index.IVF {
	if sh, ok := ix.(*index.Sharded); ok {
		ix = sh.Inner()
	}
	ivf, _ := ix.(*index.IVF)
	return ivf
}

func fileMB(path string) float64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return float64(fi.Size()) / (1 << 20)
}

// ---- cold-attach subprocess protocol ---------------------------------

// attachProbe is the JSON one measurement subprocess prints on stdout.
type attachProbe struct {
	AttachUs      float64 `json:"attach_us"`
	FirstLookupUs float64 `json:"first_lookup_us"`
	RSSBeforeKB   float64 `json:"rss_before_kb"`
	RSSAfterKB    float64 `json:"rss_after_kb"`
}

// coldAttach re-execs this binary with the hidden -scale-attach flag reps
// times and keeps the fastest attach (RSS from the same run).
func coldAttach(exe, artifact string, entities int, seed uint64, reps int) (attachProbe, error) {
	var best attachProbe
	for i := 0; i < reps; i++ {
		cmd := exec.Command(exe,
			"-scale-attach", artifact,
			"-entities", strconv.Itoa(entities),
			"-seed", strconv.FormatUint(seed, 10))
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return best, fmt.Errorf("subprocess: %v: %s", err, ee.Stderr)
			}
			return best, err
		}
		var p attachProbe
		if err := json.Unmarshal(out, &p); err != nil {
			return best, fmt.Errorf("subprocess output %q: %w", out, err)
		}
		if i == 0 || p.AttachUs < best.AttachUs {
			best = p
		}
	}
	return best, nil
}

// scaleAttachMain is the subprocess side: regenerate the graph (excluded
// from the timing), then measure one cold LoadFile, one first lookup, and
// resident memory before and after.
func scaleAttachMain(artifact string, entities int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	before := rssKB()
	start := time.Now()
	m, err := core.LoadFile(artifact, g)
	if err != nil {
		return err
	}
	attach := time.Since(start)
	start = time.Now()
	m.Lookup(g.Entities[0].Label, 10)
	first := time.Since(start)
	after := rssKB()

	probe := attachProbe{
		AttachUs:      float64(attach.Microseconds()),
		FirstLookupUs: float64(first.Microseconds()),
		RSSBeforeKB:   before,
		RSSAfterKB:    after,
	}
	return json.NewEncoder(os.Stdout).Encode(probe)
}

// rssKB reads VmRSS from /proc/self/status; 0 where /proc is absent.
func rssKB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			kb, _ := strconv.ParseFloat(fields[1], 64)
			return kb
		}
	}
	return 0
}
