package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/obs"
	"emblookup/internal/serve"
)

// zipfSkew is the popularity exponent of the synthetic query mix — table
// annotation and entity-linking traffic repeat head entities far more often
// than tail ones, which is exactly the regime the mention cache targets.
const zipfSkew = 1.07

// percentile returns the p-quantile (0..1) of sorted latency samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// benchServe measures the serving substrate end to end — direct lookups,
// cache hit and miss paths, and C concurrent clients driving a Zipf-skewed
// query mix through the coalescer — and writes the snapshot to path.
//
// The summary row carries the two guarantees the substrate is built around:
// cache_hit_speedup (miss cost / hit cost, expected ≫ 10) and
// coalesced_vs_bulk (per-query cost of coalesced concurrent serving over a
// hand-batched BulkLookup of the same queries, expected ≤ 1.3).
func benchServe(path string, entities, clients int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}

	// Zipf-skewed workload: entity i is queried with probability ∝ 1/i^s.
	const totalOps = 2048
	rng := mathx.NewRNG(seed + 1)
	mix := make([]string, totalOps)
	for i := range mix {
		mix[i] = g.Entities[rng.Zipf(len(g.Entities), zipfSkew)].Label
	}

	snap := benchSnapshot{Env: captureEnv(entities)}
	add := func(name string, metrics map[string]float64) {
		snap.Results = append(snap.Results, benchResult{Name: name, Metrics: metrics})
	}

	// Sequential latency of one path over the mix: ns/op, p50, p99.
	seqLat := func(ops int, fn func(q string)) (nsPerOp, p50us, p99us float64) {
		lats := make([]time.Duration, ops)
		start := time.Now()
		for i := 0; i < ops; i++ {
			t0 := time.Now()
			fn(mix[i%len(mix)])
			lats[i] = time.Since(t0)
		}
		total := time.Since(start)
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return float64(total.Nanoseconds()) / float64(ops),
			float64(percentile(lats, 0.50).Microseconds()),
			float64(percentile(lats, 0.99).Microseconds())
	}

	// Baseline: the model called directly, no serving substrate.
	ns, p50, p99 := seqLat(512, func(q string) { m.Lookup(q, 10) })
	add("lookup_direct", map[string]float64{"ns_per_op": ns, "p50_us": p50, "p99_us": p99})
	directNs := ns

	// Cache-miss path: sharded scan, no cache, no coalescer.
	svMiss, err := serve.New(m, serve.Options{MaxBatch: -1, CacheSize: -1})
	if err != nil {
		return fmt.Errorf("serve (miss): %w", err)
	}
	missNs, p50, p99 := seqLat(512, func(q string) { svMiss.Lookup(q, 10) })
	add("serve_cache_miss", map[string]float64{"ns_per_op": missNs, "p50_us": p50, "p99_us": p99})

	// Cache-hit path: warm every mention in the mix first.
	svHit, err := serve.New(m, serve.Options{Shards: 1, MaxBatch: -1, CacheSize: 8192})
	if err != nil {
		return fmt.Errorf("serve (hit): %w", err)
	}
	for _, q := range mix {
		svHit.Lookup(q, 10)
	}
	hitNs, p50, p99 := seqLat(8192, func(q string) { svHit.Lookup(q, 10) })
	add("serve_cache_hit", map[string]float64{"ns_per_op": hitNs, "p50_us": p50, "p99_us": p99})

	// Hybrid re-rank (?hybrid=1): the embedding top-k re-ordered by exact
	// string similarity against the entity labels. Measured over the warm
	// cache so the delta vs serve_cache_hit isolates the re-rank itself.
	hybNs, p50, p99 := seqLat(8192, func(q string) {
		serve.HybridRerank(q, svHit.Lookup(q, 10), g.Label)
	})
	add("serve_hybrid_rerank", map[string]float64{
		"ns_per_op": hybNs, "p50_us": p50, "p99_us": p99,
		"rerank_overhead_ns": hybNs - hitNs,
	})

	// Concurrent serving: C clients, full substrate (cache + coalescer +
	// sharded scans), each client drawing its own Zipf stream.
	concurrent := func(sv *serve.Serve) (qps, p50us, p99us float64, wall time.Duration) {
		perClient := totalOps / clients
		latCh := make(chan []time.Duration, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := mathx.NewRNG(seed + 100 + uint64(c))
				lats := make([]time.Duration, perClient)
				for i := 0; i < perClient; i++ {
					q := g.Entities[r.Zipf(len(g.Entities), zipfSkew)].Label
					t0 := time.Now()
					sv.Lookup(q, 10)
					lats[i] = time.Since(t0)
				}
				latCh <- lats
			}(c)
		}
		wg.Wait()
		wall = time.Since(start)
		close(latCh)
		var all []time.Duration
		for lats := range latCh {
			all = append(all, lats...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		ops := clients * perClient
		return float64(ops) / wall.Seconds(),
			float64(percentile(all, 0.50).Microseconds()),
			float64(percentile(all, 0.99).Microseconds()),
			wall
	}

	regFull := obs.New()
	svFull, err := serve.New(m, serve.Options{MaxBatch: clients, CacheSize: 4096, Registry: regFull})
	if err != nil {
		return fmt.Errorf("serve (full): %w", err)
	}
	qps, p50, p99, _ := concurrent(svFull)
	st := svFull.Stats()
	svFull.Close()
	add("serve_concurrent", map[string]float64{
		"clients":        float64(clients),
		"qps":            qps,
		"p50_us":         p50,
		"p99_us":         p99,
		"cache_hit_rate": st.Cache.HitRate(),
	})

	// The same phase as the metrics registry saw it: the serve-side latency
	// histogram (log-bucketed, so quantiles are within ~6% of exact) plus the
	// pull-time cache collectors. Diffing this row against the externally
	// measured serve_concurrent row guards the instrumentation itself.
	obsLat := regFull.Histogram("emblookup_serve_lookup_seconds").Summary()
	add("obs_serve_concurrent", map[string]float64{
		"lookups":      float64(obsLat.Count),
		"p50_us":       obsLat.P50Us,
		"p95_us":       obsLat.P95Us,
		"cache_hits":   float64(st.Cache.Hits),
		"cache_misses": float64(st.Cache.Misses),
	})

	// Coalesced serving without the cache: every query reaches the model, so
	// the per-query wall cost isolates what micro-batching itself delivers.
	regCo := obs.New()
	svCo, err := serve.New(m, serve.Options{MaxBatch: clients, CacheSize: -1, Registry: regCo})
	if err != nil {
		return fmt.Errorf("serve (coalesced): %w", err)
	}
	coQps, p50, p99, coWall := concurrent(svCo)
	coSt := svCo.Stats()
	svCo.Close()
	coNsPerQuery := float64(coWall.Nanoseconds()) / float64(totalOps/clients*clients)
	add("serve_coalesced", map[string]float64{
		"qps":            coQps,
		"p50_us":         p50,
		"p99_us":         p99,
		"ns_per_query":   coNsPerQuery,
		"avg_batch_size": coSt.Coalescer.AvgBatchSize,
	})

	// Coalescer internals from its registry histograms: the batch-size
	// distribution and how long requests sat in the coalescing window.
	coBatch := regCo.Histogram("emblookup_coalescer_batch_size").Snapshot()
	coWait := regCo.Histogram("emblookup_coalescer_wait_seconds").Summary()
	obsCo := map[string]float64{
		"batches":     float64(coBatch.Total),
		"batch_p50":   float64(coBatch.Quantile(0.50)),
		"wait_p50_us": coWait.P50Us,
		"wait_p95_us": coWait.P95Us,
	}
	if coBatch.Total > 0 {
		obsCo["batch_mean"] = float64(coBatch.Sum) / float64(coBatch.Total)
	}
	add("obs_coalescer", obsCo)

	// Per-stage lookup latency as recorded by the core instrumentation over
	// the whole run — the decomposition /metrics serves in production.
	def := obs.Default()
	stages := map[string]float64{}
	for _, stage := range []string{"embed", "search", "merge"} {
		s := def.Histogram(obs.Labels("emblookup_lookup_stage_seconds", "stage", stage)).Summary()
		stages[stage+"_p50_us"] = s.P50Us
		stages[stage+"_p95_us"] = s.P95Us
		stages[stage+"_count"] = float64(s.Count)
	}
	add("obs_lookup_stages", stages)

	// The hand-batched ceiling: the same number of Zipf queries in one
	// pre-formed BulkLookup call — no windowing, no per-request channels.
	bulkQueries := make([]string, totalOps/clients*clients)
	br := mathx.NewRNG(seed + 500)
	for i := range bulkQueries {
		bulkQueries[i] = g.Entities[br.Zipf(len(g.Entities), zipfSkew)].Label
	}
	start := time.Now()
	m.BulkLookup(bulkQueries, 10, 0)
	bulkWall := time.Since(start)
	bulkNsPerQuery := float64(bulkWall.Nanoseconds()) / float64(len(bulkQueries))
	add("bulk_hand_batched", map[string]float64{"ns_per_query": bulkNsPerQuery})

	add("summary", map[string]float64{
		"cache_hit_speedup":   missNs / hitNs,
		"direct_over_hit":     directNs / hitNs,
		"coalesced_vs_bulk":   coNsPerQuery / bulkNsPerQuery,
		"concurrent_clients":  float64(clients),
		"total_ops_per_phase": float64(totalOps),
	})
	return writeSnapshot(path, snap)
}
