package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/server"
	"emblookup/internal/tenant"
)

// benchTenant measures multi-tenant serving (DESIGN.md §15) over real HTTP
// on a loopback listener: three tenants attached to the same saved
// artifacts, one of them driven abusively.
//
// Three phases feed the snapshot:
//
//   - isolated: one well-behaved tenant alone on the box — the baseline p99
//   - mixed: clients-many concurrent clients, most of them hammering the
//     abusive tenant past its rate limit, the rest running the same
//     well-behaved Zipf mix as the baseline. The guarantee under test:
//     admission throttles the abuser (throttle_rate ≫ 0) while the
//     well-behaved tenant's p99 stays within 1.3× its isolated baseline
//   - shed curve: offered load swept far past one small tenant's capacity;
//     goodput (successful qps) must stay flat past saturation instead of
//     collapsing, with the excess shed as fast 429s
func benchTenant(path string, entities, clients int, seed uint64) error {
	gCfg := kg.DefaultGeneratorConfig(kg.WikidataProfile, entities)
	gCfg.Seed = seed
	g, _ := kg.Generate(gCfg)

	cfg := core.FastConfig()
	cfg.Epochs = 4
	m, err := core.Train(g, cfg)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}

	// One set of artifacts on disk; every tenant attaches the same files
	// zero-copy, so the bench isolates the serving layers, not training.
	dir, err := os.MkdirTemp("", "benchtenant")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	graphPath := filepath.Join(dir, "graph.bin")
	modelPath := filepath.Join(dir, "model.bin")
	if err := g.SaveFile(graphPath); err != nil {
		return err
	}
	if err := m.SaveFileWithIndex(modelPath); err != nil {
		return err
	}

	// The abuser's rate cap is far below what its clients will offer; the
	// shed tenant's cap is what the shed-curve sweep saturates.
	const abuserRate = 100
	const shedRate = 2000
	tcfg := tenant.Config{Tenants: []tenant.TenantConfig{
		{Name: "alpha", Graph: graphPath, Model: modelPath, Preload: true,
			Limits: tenant.Limits{RatePerSec: 1_000_000, MaxConcurrent: 64}},
		{Name: "abuser", Graph: graphPath, Model: modelPath, Preload: true,
			Limits: tenant.Limits{RatePerSec: abuserRate, MaxConcurrent: 4, QueueDepth: 8}},
		{Name: "small", Graph: graphPath, Model: modelPath, Preload: true,
			Limits: tenant.Limits{RatePerSec: shedRate, Burst: 100, MaxConcurrent: 4, QueueDepth: 8}},
	}}
	reg, err := tenant.NewRegistry(tcfg, nil)
	if err != nil {
		return fmt.Errorf("tenant registry: %w", err)
	}
	defer reg.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.NewTenantServer(reg).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * clients,
		MaxIdleConnsPerHost: 4 * clients,
	}}
	get := func(url string) (int, error) {
		resp, err := client.Get(url)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	snap := benchSnapshot{Env: captureEnv(entities)}
	add := func(name string, metrics map[string]float64) {
		snap.Results = append(snap.Results, benchResult{Name: name, Metrics: metrics})
	}

	// drive runs nClients closed-loop clients against one tenant, opsEach
	// requests each (paced by pace between sends; 0 = tight loop), and
	// reports wall time, per-status counts, and the sorted latencies of the
	// 200s.
	type driven struct {
		wall time.Duration
		oks  []time.Duration // sorted success latencies
		code map[int]int
	}
	drive := func(name string, nClients, opsEach int, pace time.Duration, seedOff uint64) (driven, error) {
		var mu sync.Mutex
		out := driven{code: map[int]int{}}
		var wg sync.WaitGroup
		errCh := make(chan error, nClients)
		start := time.Now()
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := mathx.NewRNG(seed + seedOff + uint64(c))
				lats := make([]time.Duration, 0, opsEach)
				codes := map[int]int{}
				for i := 0; i < opsEach; i++ {
					q := g.Entities[rng.Zipf(len(g.Entities), zipfSkew)].Label
					t0 := time.Now()
					code, err := get(base + "/t/" + name + "/lookup?k=10&q=" + url.QueryEscape(q))
					if err != nil {
						errCh <- err
						return
					}
					codes[code]++
					if code == http.StatusOK {
						lats = append(lats, time.Since(t0))
					}
					if pace > 0 {
						time.Sleep(pace)
					}
				}
				mu.Lock()
				out.oks = append(out.oks, lats...)
				for k, v := range codes {
					out.code[k] += v
				}
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		out.wall = time.Since(start)
		close(errCh)
		if err := <-errCh; err != nil {
			return out, err
		}
		sort.Slice(out.oks, func(a, b int) bool { return out.oks[a] < out.oks[b] })
		return out, nil
	}

	// medianP99 repeats a drive and takes the median of the per-run p99s —
	// on a few thousand samples the 99th percentile is a handful of tail
	// observations, and a single GC pause or scheduler hiccup moves it by
	// tens of percent. The ratio under test compares medians of medians.
	medianP99 := func(runs int, f func(i int) (driven, error)) (float64, driven, error) {
		p99s := make([]float64, 0, runs)
		var last driven
		for i := 0; i < runs; i++ {
			d, err := f(i)
			if err != nil {
				return 0, last, err
			}
			p99s = append(p99s, float64(percentile(d.oks, 0.99).Microseconds()))
			last = d
		}
		sort.Float64s(p99s)
		return p99s[len(p99s)/2], last, nil
	}

	// The well-behaved tenant runs paced — an open-ish load well inside its
	// limits, the way a healthy tenant actually behaves — rather than a
	// closed loop that saturates the box all by itself and turns the
	// baseline p99 into pure self-queueing.
	const wellPace = 2 * time.Millisecond
	const wellOps = 1024

	// Warm the caches so the isolated and mixed phases compare steady states.
	if _, err := drive("alpha", 2, 64, 0, 10); err != nil {
		return err
	}

	// Phase 1 — isolated baseline: a quarter of the clients, well within
	// alpha's limits, nothing else running.
	wellClients := max(1, clients/4)
	isoP99, iso, err := medianP99(3, func(i int) (driven, error) {
		return drive("alpha", wellClients, wellOps, wellPace, 100+uint64(i)*7)
	})
	if err != nil {
		return err
	}
	add("tenant_isolated", map[string]float64{
		"clients": float64(wellClients),
		"qps":     float64(len(iso.oks)) / iso.wall.Seconds(),
		"p50_us":  float64(percentile(iso.oks, 0.50).Microseconds()),
		"p99_us":  isoP99,
	})

	// Phase 2 — mixed: the remaining clients hammer the abuser tenant with
	// several times more offered load than its token bucket admits, running
	// continuously while the same well-behaved drives as the baseline
	// repeat. The abusive clients pace at 5ms between attempts — loopback
	// has no network RTT, so an unpaced 429 loop degenerates into a
	// CPU-burn contest no real WAN client could mount; paced, the offered
	// load still exceeds the admitted rate by ~20×.
	abuseClients := max(1, clients-wellClients)
	stopAbuse := make(chan struct{})
	var abuseWG sync.WaitGroup
	var abuseAdmitted, abuseThrottled atomic.Int64
	abuseStart := time.Now()
	for c := 0; c < abuseClients; c++ {
		abuseWG.Add(1)
		go func(c int) {
			defer abuseWG.Done()
			rng := mathx.NewRNG(seed + 200 + uint64(c))
			for {
				select {
				case <-stopAbuse:
					return
				default:
				}
				q := g.Entities[rng.Zipf(len(g.Entities), zipfSkew)].Label
				code, err := get(base + "/t/abuser/lookup?k=10&q=" + url.QueryEscape(q))
				if err != nil {
					return
				}
				switch code {
				case http.StatusOK:
					abuseAdmitted.Add(1)
				case http.StatusTooManyRequests:
					abuseThrottled.Add(1)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(c)
	}
	time.Sleep(200 * time.Millisecond) // abusers at steady state before measuring
	wellP99, well, err := medianP99(3, func(i int) (driven, error) {
		return drive("alpha", wellClients, wellOps, wellPace, 100+uint64(i)*7)
	})
	close(stopAbuse)
	abuseWG.Wait()
	abuseWall := time.Since(abuseStart)
	if err != nil {
		return err
	}
	abuseAttempts := abuseAdmitted.Load() + abuseThrottled.Load()
	throttled := abuseThrottled.Load()
	add("tenant_mixed", map[string]float64{
		"well_clients":        float64(wellClients),
		"abuse_clients":       float64(abuseClients),
		"well_qps":            float64(len(well.oks)) / well.wall.Seconds(),
		"well_p99_us":         wellP99,
		"well_p99_ratio":      wellP99 / isoP99,
		"abuse_attempts":      float64(abuseAttempts),
		"abuse_throttled":     float64(throttled),
		"abuse_throttle_rate": float64(throttled) / float64(abuseAttempts),
		"abuse_admitted_qps":  float64(abuseAdmitted.Load()) / abuseWall.Seconds(),
	})

	// Phase 3 — shed curve: sweep offered load past the small tenant's
	// rate cap. Offered qps keeps climbing with the client count; goodput
	// (200s/sec) must plateau at the cap while the excess is shed as cheap
	// 429s — the adaptive-LIFO guarantee that overload costs latency for
	// the shed requests only, not throughput for the admitted ones. Total
	// attempts per level are held constant so every level runs a comparable
	// wall-clock window — long enough that the token bucket's startup burst
	// is noise, not signal. Only genuinely saturated levels (most of the
	// offered load shed) enter the flatness check; the knee of the curve is
	// transitional by definition.
	const shedAttempts = 32 * 1024
	var goodputs []float64
	for _, n := range []int{2, 4, 8, 16, 32} {
		opsEach := shedAttempts / n
		d, err := drive("small", n, opsEach, 0, 300+uint64(n))
		if err != nil {
			return err
		}
		attempts := n * opsEach
		offered := float64(attempts) / d.wall.Seconds()
		goodput := float64(d.code[http.StatusOK]) / d.wall.Seconds()
		shedRateF := float64(d.code[http.StatusTooManyRequests]) / float64(attempts)
		if shedRateF > 0.5 {
			goodputs = append(goodputs, goodput)
		}
		add(fmt.Sprintf("tenant_shed_%02dclients", n), map[string]float64{
			"clients":     float64(n),
			"offered_qps": offered,
			"goodput_qps": goodput,
			"shed_rate":   shedRateF,
		})
	}
	flat := 1.0
	if len(goodputs) > 1 {
		lo, hi := goodputs[0], goodputs[0]
		for _, gp := range goodputs[1:] {
			lo, hi = minF(lo, gp), maxF(hi, gp)
		}
		flat = hi / lo
	}

	// Per-tenant admission counters as the registry saw them — the same
	// numbers /t/{tenant}/stats serves.
	if t, ok := reg.Tenant("abuser"); ok {
		st := t.Stats()
		add("obs_abuser_admission", map[string]float64{
			"admitted":     float64(st.Admission.Admitted),
			"rate_limited": float64(st.Admission.RateLimited),
			"shed":         float64(st.Admission.Shed),
		})
	}

	add("summary", map[string]float64{
		"wellbehaved_p99_ratio": wellP99 / isoP99,
		"abuse_throttle_rate":   float64(throttled) / float64(abuseAttempts),
		"goodput_flat_ratio":    flat,
		"clients":               float64(clients),
	})
	return writeSnapshot(path, snap)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
