// Command benchkg generates and inspects the synthetic benchmark datasets:
// the knowledge graphs and the SemTab-style annotated table collections of
// Table I, with optional noise injection and alias substitution.
//
// Usage:
//
//	benchkg -entities 2000 -dataset st-wikidata -tables 40 [-noise 0.1] [-aliases] [-dump 2]
//
// With -bench-lookup it instead trains a small model and writes a JSON
// snapshot of the lookup hot path's timing and allocation profile:
//
//	benchkg -bench-lookup BENCH_lookup.json [-entities 2000]
//
// With -bench-serve it measures the serving substrate (internal/serve):
// C concurrent clients drive a Zipf-skewed query mix through the sharded
// index, the query coalescer, and the mention cache, and the snapshot
// records throughput, tail latency, and cache hit rate:
//
//	benchkg -bench-serve BENCH_serve.json [-entities 2000] [-clients 16]
//
// With -bench-build it measures index construction and cold start: the
// per-phase build timings (embedding, k-means, PQ training, row encoding)
// sequential vs parallel, plus loading a saved index artifact against
// rebuilding the index from weights:
//
//	benchkg -bench-build BENCH_build.json [-entities 2000]
//
// With -bench-cluster it measures the partitioned serving path
// (internal/cluster): routed lookup latency over 1/2/4 in-process nodes,
// plus a straggler scenario with and without hedged requests:
//
//	benchkg -bench-cluster BENCH_cluster.json [-entities 2000]
//
// With -bench-replica it measures the replicated control plane
// (internal/replica): tail latency under a degraded replica with
// distinct-replica hedging vs the single-replica duplicate-send, the
// latency a replica crash makes visible before failover settles, and a
// live 2→3 rebalance under concurrent traffic:
//
//	benchkg -bench-replica BENCH_replica.json [-entities 2000]
//
// With -bench-scale it measures what the zero-copy v4 artifact format buys
// as the corpus grows: per entity count, cold attach time and resident
// memory (v4 mmap vs gob decode, each in a fresh subprocess), recall@1/@10
// against exact flat search, lookup latency percentiles, and the IVF
// nprobe recall/latency sweep:
//
//	benchkg -bench-scale BENCH_scale.json [-scales 10000,100000,1000000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"emblookup/internal/kg"
	"emblookup/internal/tabular"
)

func main() {
	log.SetFlags(0)
	entities := flag.Int("entities", 2000, "entities per knowledge graph")
	dataset := flag.String("dataset", "st-wikidata", "st-wikidata|st-dbpedia|tough-tables")
	tables := flag.Int("tables", 40, "table count")
	noise := flag.Float64("noise", 0, "fraction of entity cells to corrupt")
	aliases := flag.Bool("aliases", false, "substitute cells with aliases (semantic-lookup variant)")
	dump := flag.Int("dump", 0, "print the first N tables")
	csvDir := flag.String("csv", "", "write every table as a CSV file into this directory")
	seed := flag.Uint64("seed", 42, "seed")
	benchPath := flag.String("bench-lookup", "", "train a model and write a lookup benchmark snapshot to this JSON file")
	benchServePath := flag.String("bench-serve", "", "train a model and write a serving benchmark snapshot to this JSON file")
	benchBuildPath := flag.String("bench-build", "", "train a model and write an index-construction benchmark snapshot to this JSON file")
	benchClusterPath := flag.String("bench-cluster", "", "train a model and write a cluster serving benchmark snapshot to this JSON file")
	benchReplicaPath := flag.String("bench-replica", "", "train a model and write a replicated-cluster benchmark snapshot (hedging, failover, rebalance) to this JSON file")
	benchScalePath := flag.String("bench-scale", "", "write the scaling benchmark snapshot (cold attach, RSS, recall, latency per entity count) to this JSON file")
	benchTenantPath := flag.String("bench-tenant", "", "train a model and write a multi-tenant serving benchmark snapshot (admission throttling, isolation, shed curve) to this JSON file")
	scales := flag.String("scales", "10000,100000", "comma-separated entity counts for -bench-scale")
	scaleAttach := flag.String("scale-attach", "", "internal: cold-attach the given artifact once and print a JSON probe (used by -bench-scale subprocesses)")
	clients := flag.Int("clients", 16, "concurrent clients for -bench-serve")
	flag.Parse()

	if *scaleAttach != "" {
		if err := scaleAttachMain(*scaleAttach, *entities, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchScalePath != "" {
		if err := benchScale(*benchScalePath, *scales, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchPath != "" {
		if err := benchLookup(*benchPath, *entities, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchServePath != "" {
		if err := benchServe(*benchServePath, *entities, *clients, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchBuildPath != "" {
		if err := benchBuild(*benchBuildPath, *entities, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchClusterPath != "" {
		if err := benchCluster(*benchClusterPath, *entities, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchReplicaPath != "" {
		if err := benchReplica(*benchReplicaPath, *entities, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchTenantPath != "" {
		if err := benchTenant(*benchTenantPath, *entities, *clients, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	profile := kg.WikidataProfile
	dsProfile := tabular.STWikidata
	switch *dataset {
	case "st-wikidata":
	case "st-dbpedia":
		profile, dsProfile = kg.DBPediaProfile, tabular.STDBPedia
	case "tough-tables":
		dsProfile = tabular.ToughTables
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	gCfg := kg.DefaultGeneratorConfig(profile, *entities)
	gCfg.Seed = *seed
	g, schema := kg.Generate(gCfg)
	fmt.Println(g.Stats())

	dCfg := tabular.DefaultDatasetConfig(dsProfile, *tables)
	dCfg.Seed = *seed + 1
	ds := tabular.GenerateDataset(g, schema, dCfg)
	if *noise > 0 {
		in := tabular.NewInjector(*seed + 2)
		in.Fraction = *noise
		ds = in.Apply(ds)
	}
	if *aliases {
		ds = tabular.SubstituteAliases(ds, *seed+3)
	}
	fmt.Printf("%s: %s\n", ds.Name, ds.ComputeStats())

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *csvDir, err)
		}
		for _, tb := range ds.Tables {
			f, err := os.Create(filepath.Join(*csvDir, tb.Name+".csv"))
			if err != nil {
				log.Fatalf("creating table file: %v", err)
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				log.Fatalf("writing %s: %v", tb.Name, err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("closing %s: %v", tb.Name, err)
			}
		}
		fmt.Printf("wrote %d CSV tables to %s\n", len(ds.Tables), *csvDir)
	}

	for i := 0; i < *dump && i < len(ds.Tables); i++ {
		tb := ds.Tables[i]
		fmt.Printf("\n== %s (%dx%d) ==\n", tb.Name, tb.NumRows(), tb.NumCols())
		var hdr []string
		for _, c := range tb.Cols {
			hdr = append(hdr, c.Name)
		}
		fmt.Println(strings.Join(hdr, " | "))
		for r, row := range tb.Rows {
			if r >= 8 {
				fmt.Println("...")
				break
			}
			var cells []string
			for _, c := range row {
				mark := ""
				if c.IsEntity() {
					mark = fmt.Sprintf(" [%d]", c.Truth)
				}
				cells = append(cells, c.Text+mark)
			}
			fmt.Println(strings.Join(cells, " | "))
		}
	}
}
