package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// benchEnv records the machine and build context a snapshot was taken on,
// so a diff between two snapshots can tell a code regression from an
// environment change (different core count, Go release, or corpus size).
type benchEnv struct {
	GoVersion  string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Entities   int    `json:"entities"`
}

func captureEnv(entities int) benchEnv {
	return benchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Entities:   entities,
	}
}

// benchResult is one named measurement: a flat metric map so lookup rows
// (ns_per_op, allocs_per_op) and serving rows (qps, p50_us, cache_hit_rate)
// share one schema that cmd/benchcompare can diff metric-by-metric.
type benchResult struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// benchSnapshot is the on-disk layout of BENCH_lookup.json and
// BENCH_serve.json.
type benchSnapshot struct {
	Env     benchEnv      `json:"env"`
	Results []benchResult `json:"results"`
}

// writeSnapshot saves the snapshot and echoes each row to stdout with
// metrics in stable (sorted) order.
func writeSnapshot(path string, snap benchSnapshot) error {
	for _, r := range snap.Results {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("%-24s", r.Name)
		for _, k := range keys {
			fmt.Printf("  %s=%.1f", k, r.Metrics[k])
		}
		fmt.Println()
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
