package main

import (
	"context"
	"flag"
	"log"
	"strings"
	"time"

	"emblookup/internal/cluster"
	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/obs"
	"emblookup/internal/replica"
	"emblookup/internal/server"
)

// newSlowLog builds the serving commands' slow-query log from the
// -slowlog-ms flag (0 or negative disables it).
func newSlowLog(ms int) *obs.SlowLog {
	if ms <= 0 {
		return nil
	}
	return obs.NewSlowLog(time.Duration(ms)*time.Millisecond, 0)
}

// cmdClusterPart splits a trained model into P partition artifacts, each a
// full model file whose index covers only that partition's rows (written via
// the PR-3 index-artifact path, so node cold starts stay IO-bound), plus a
// manifest recording the row bounds.
func cmdClusterPart(args []string) {
	fs := flag.NewFlagSet("cluster-part", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	modelPath := fs.String("model", "model.bin", "model file")
	dir := fs.String("out", "cluster", "output directory for node artifacts + manifest")
	p := fs.Int("p", 2, "partition count")
	fs.Parse(args)

	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	model, err := core.LoadFile(*modelPath, g)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	start := time.Now()
	man, err := cluster.SavePartitions(*dir, model, *p)
	if err != nil {
		log.Fatalf("partitioning: %v", err)
	}
	log.Printf("wrote %d partitions of %d rows to %s in %v",
		man.Partitions, man.TotalRows, *dir, time.Since(start).Round(time.Millisecond))
	for i := 0; i < man.Partitions; i++ {
		log.Printf("  node %d: rows [%d, %d)", i, man.Bounds[i], man.Bounds[i+1])
	}
}

// cmdClusterNode serves one partition: it loads only its slice of the index
// and exposes the standard single-node API plus the partition-scoped batch
// endpoint the router scatters to.
func cmdClusterNode(args []string) {
	fs := flag.NewFlagSet("cluster-node", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	dir := fs.String("dir", "cluster", "partition directory from `emblookup cluster-part`")
	part := fs.Int("part", 0, "partition id to serve")
	addr := fs.String("addr", ":8081", "listen address")
	metricsOn := fs.Bool("metrics", true, "record metrics and expose them at GET /metrics (false disables all recording)")
	slowMs := fs.Int("slowlog-ms", 100, "log queries slower than this many ms at GET /debug/slowlog (0 disables)")
	fs.Parse(args)

	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	model, man, err := cluster.LoadNodeModel(*dir, *part, g)
	if err != nil {
		log.Fatalf("loading partition model: %v", err)
	}
	info := server.PartitionInfo{
		ID:    *part,
		Count: man.Partitions,
		RowLo: man.Bounds[*part],
		RowHi: man.Bounds[*part+1],
	}
	obs.Default().SetEnabled(*metricsOn)
	opts := []server.Option{server.WithPartition(info)}
	if *metricsOn {
		opts = append(opts, server.WithMetrics(nil))
	}
	if sl := newSlowLog(*slowMs); sl != nil {
		opts = append(opts, server.WithSlowLog(sl))
	}
	h := server.New(g, model, opts...).Handler()
	log.Printf("serving partition %d/%d (rows [%d, %d)) on %s",
		info.ID, info.Count, info.RowLo, info.RowHi, *addr)
	log.Fatal(server.NewHTTPServer(*addr, h).ListenAndServe())
}

// cmdClusterRoute runs the coordinator: it embeds each query once locally
// and scatter-gathers exact top-k over the partition nodes, with hedged
// requests and failure-aware degradation. With -nodes the assignment is
// static (one replica per partition, fixed for the process lifetime); with
// -map-url the router fetches the versioned cluster map from a replica
// coordinator and keeps polling it, following epoch bumps — replica sets,
// rolling restarts, and rebalances — live.
func cmdClusterRoute(args []string) {
	fs := flag.NewFlagSet("cluster-route", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	modelPath := fs.String("model", "model.bin", "model file (embedder weights; index unused)")
	nodes := fs.String("nodes", "", "comma-separated node base URLs in partition order (static single-replica assignment)")
	mapURL := fs.String("map-url", "", "coordinator map endpoint (e.g. http://coord:9090/cluster/map); polled for epoch bumps")
	poll := fs.Duration("poll", 0, "map poll interval with -map-url (0 = default 1s)")
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", 0, "per-request node timeout (0 = default 2s)")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge a straggling node request after this delay (0 = default 50ms, negative disables)")
	metricsOn := fs.Bool("metrics", true, "record metrics and expose them at GET /metrics (false disables all recording)")
	slowMs := fs.Int("slowlog-ms", 100, "log routed queries slower than this many ms at GET /debug/slowlog (0 disables)")
	fs.Parse(args)

	if (*nodes == "") == (*mapURL == "") {
		log.Fatal("cluster-route: exactly one of -nodes or -map-url is required")
	}
	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	model, err := core.LoadFile(*modelPath, g)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	obs.Default().SetEnabled(*metricsOn)
	ropts := cluster.RouterOptions{
		Timeout:    *timeout,
		HedgeAfter: *hedgeAfter,
	}
	var rt *cluster.Router
	if *mapURL != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		m, err := replica.FetchMap(ctx, nil, *mapURL)
		cancel()
		if err != nil {
			log.Fatalf("fetching cluster map: %v", err)
		}
		rt, err = cluster.NewRouterWithMap(model, m, ropts)
		if err != nil {
			log.Fatalf("router: %v", err)
		}
		poller := replica.StartPoller(rt, *mapURL, *poll)
		defer poller.Close()
		interval := *poll
		if interval <= 0 {
			interval = time.Second
		}
		log.Printf("cluster map epoch %d from %s (polling every %v)", m.Epoch, *mapURL, interval)
	} else {
		urls := strings.Split(*nodes, ",")
		rt, err = cluster.NewRouter(model, urls, ropts)
		if err != nil {
			log.Fatalf("router: %v", err)
		}
	}
	defer rt.Close()
	if *metricsOn {
		rt.Metrics = obs.Default()
	}
	rt.SlowLog = newSlowLog(*slowMs)
	log.Printf("routing over %d partitions on %s", rt.Partitions(), *addr)
	log.Fatal(server.NewHTTPServer(*addr, rt.Handler()).ListenAndServe())
}

// serveCluster is `emblookup serve -cluster N`: an in-process demo cluster —
// N partition nodes on loopback listeners plus the router serving the public
// address. Same code path as a real multi-machine deployment, minus the
// machines. With -replicas R > 1 it runs the replicated control plane
// instead: R replicas per partition, a coordinator gossiping the versioned
// cluster map, and routed ingest fanning to the owning partition's
// replicas.
func serveCluster(g *kg.Graph, model *core.EmbLookup, addr string, n, replicas int, metricsOn bool, sl *obs.SlowLog) {
	if replicas > 1 {
		c, err := replica.Start(model, n, replica.Options{Replicas: replicas})
		if err != nil {
			log.Fatalf("starting in-process replicated cluster: %v", err)
		}
		defer c.Close()
		if metricsOn {
			c.Router.Metrics = obs.Default()
		}
		c.Router.SlowLog = sl
		for p := 0; p < n; p++ {
			for j := 0; j < replicas; j++ {
				log.Printf("  node %d/%d: rows [%d, %d) at %s",
					p, j, c.Manifest.Bounds[p], c.Manifest.Bounds[p+1], c.NodeURL(p, j))
			}
		}
		log.Printf("cluster map at %s (epoch %d)", c.MapURL, c.Coord.Epoch())
		log.Printf("routing over %d in-process partitions x %d replicas on %s (graph: %s, %d entities)",
			n, replicas, addr, g.Name, len(g.Entities))
		log.Fatal(server.NewHTTPServer(addr, c.Router.Handler()).ListenAndServe())
	}
	l, err := cluster.StartLocal(model, n, cluster.LocalOptions{})
	if err != nil {
		log.Fatalf("starting in-process cluster: %v", err)
	}
	defer l.Close()
	if metricsOn {
		l.Router.Metrics = obs.Default()
	}
	l.Router.SlowLog = sl
	for i, u := range l.URLs {
		log.Printf("  node %d: rows [%d, %d) at %s",
			i, l.Manifest.Bounds[i], l.Manifest.Bounds[i+1], u)
	}
	log.Printf("routing over %d in-process partitions on %s (graph: %s, %d entities)",
		n, addr, g.Name, len(g.Entities))
	log.Fatal(server.NewHTTPServer(addr, l.Router.Handler()).ListenAndServe())
}
