// Command emblookup is the end-to-end CLI for the library: generate a
// synthetic knowledge graph, train an EmbLookup model over it, and run
// lookups against the trained index.
//
// Usage:
//
//	emblookup gen   -entities 2000 -profile wikidata -out graph.bin
//	emblookup train -graph graph.bin -out model.bin [-epochs 6] [-dim 64] [-save-index=false]
//	emblookup query -graph graph.bin -model model.bin -k 10 "Germany" "Germoney" ...
//	emblookup bulk  -graph graph.bin -model model.bin -in queries.txt -k 10
//	emblookup serve -graph graph.bin -model model.bin -addr :8080
//	emblookup stats -graph graph.bin
//
// Model files written with the index artifact (the train default) make cold
// starts IO-bound: load attaches the saved index instead of re-embedding
// the graph and retraining the quantizer. `emblookup index` manages the
// artifact after the fact:
//
//	emblookup index save -graph graph.bin -model model.bin -out model.bin
//	emblookup index load -graph graph.bin -model model.bin
//
// Cluster serving (DESIGN.md §9) splits the index across partition nodes and
// scatter-gathers exact top-k through a router; `serve -cluster N` runs the
// whole thing in one process for a local demo:
//
//	emblookup serve -graph graph.bin -model model.bin -cluster 4
//	emblookup cluster-part  -graph graph.bin -model model.bin -out cluster/ -p 4
//	emblookup cluster-node  -graph graph.bin -dir cluster/ -part 0 -addr :8081
//	emblookup cluster-route -graph graph.bin -model model.bin -nodes http://localhost:8081,... -addr :8080
//
// Replicated serving (DESIGN.md §14) adds replica sets, a versioned cluster
// map, and routed ingest; `serve -cluster P -replicas R` runs it in-process,
// and a router can follow a coordinator's map live via -map-url:
//
//	emblookup serve -graph graph.bin -model model.bin -cluster 2 -replicas 2
//	emblookup cluster-route -graph graph.bin -model model.bin -map-url http://coord:9090/cluster/map -addr :8080
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/obs"
	"emblookup/internal/serve"
	"emblookup/internal/server"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "train":
		cmdTrain(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "bulk":
		cmdBulk(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "index":
		cmdIndex(os.Args[2:])
	case "cluster-part":
		cmdClusterPart(os.Args[2:])
	case "cluster-node":
		cmdClusterNode(os.Args[2:])
	case "cluster-route":
		cmdClusterRoute(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: emblookup <gen|train|query|bulk|serve|stats|index|cluster-part|cluster-node|cluster-route> [flags]")
	os.Exit(2)
}

// cmdIndex manages the index artifact of a saved model.
//
//	index save  — load a model (rebuilding its index if the file has no
//	              artifact) and rewrite it with the index embedded
//	index load  — load a model and report where its index came from and how
//	              long the attach took, without serving anything
func cmdIndex(args []string) {
	if len(args) < 1 {
		log.Fatal("usage: emblookup index <save|load> [flags]")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("index "+sub, flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	modelPath := fs.String("model", "model.bin", "model file")
	out := fs.String("out", "", "output path for `index save` (default: overwrite -model)")
	fs.Parse(args)

	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	start := time.Now()
	model, err := core.LoadFile(*modelPath, g)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	prov := model.IndexProvenance()
	log.Printf("index %s in %v (%d rows, %d payload bytes; model load %v total)",
		prov.Source, prov.Took.Round(time.Microsecond), model.Index().Len(),
		model.Index().SizeBytes(), time.Since(start).Round(time.Millisecond))

	switch sub {
	case "load":
		// The report above is the whole job.
	case "save":
		path := *out
		if path == "" {
			path = *modelPath
		}
		if err := model.SaveFileWithIndex(path); err != nil {
			log.Fatalf("saving model with index: %v", err)
		}
		log.Printf("wrote %s with index artifact", path)
	default:
		log.Fatalf("unknown subcommand %q (want save or load)", sub)
	}
}

// cmdBulk runs the bulk-lookup mode the paper optimizes for: one query per
// input line (stdin or -in), tab-separated results on stdout, batched
// across all cores.
func cmdBulk(args []string) {
	fs := flag.NewFlagSet("bulk", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	modelPath := fs.String("model", "model.bin", "model file")
	inPath := fs.String("in", "-", "query file, one query per line ('-' = stdin)")
	k := fs.Int("k", 10, "results per query")
	parallelism := fs.Int("parallel", 0, "worker count (0 = all cores)")
	fs.Parse(args)

	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	model, err := core.LoadFile(*modelPath, g)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}

	in := os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			log.Fatalf("opening queries: %v", err)
		}
		defer f.Close()
		in = f
	}
	var queries []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if q := strings.TrimSpace(sc.Text()); q != "" {
			queries = append(queries, q)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading queries: %v", err)
	}

	start := time.Now()
	results := model.BulkLookup(queries, *k, *parallelism)
	elapsed := time.Since(start)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, q := range queries {
		fmt.Fprintf(w, "%s", q)
		for _, c := range results[i] {
			fmt.Fprintf(w, "\t%s(%d)", g.Label(c.ID), c.ID)
		}
		fmt.Fprintln(w)
	}
	log.Printf("%d queries in %v (%v/query)", len(queries),
		elapsed.Round(time.Millisecond), (elapsed / time.Duration(max(1, len(queries)))).Round(time.Microsecond))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// cmdServe exposes the lookup service over HTTP:
//
//	GET /lookup?q=Germoney&k=10
//
// responds with a JSON candidate list. This is the "transparent
// replacement for remote lookup services" deployment shape from the paper.
// Requests flow through the serving substrate (internal/serve): sharded
// index scans, query coalescing, and a sharded mention cache — each tunable
// or disableable via flags, all returning bit-identical results to direct
// model lookups.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	modelPath := fs.String("model", "model.bin", "model file")
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 0, "index scan shards (0 = default 4, 1 = unsharded)")
	batch := fs.Int("batch", 0, "coalescer max batch size (0 = default 32, negative disables coalescing)")
	batchWindow := fs.Duration("batch-window", 0, "coalescer flush window (0 = default 200µs)")
	cacheSize := fs.Int("cache-size", 0, "mention cache entries (0 = default 4096, negative disables the cache)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	clusterN := fs.Int("cluster", 0, "run an in-process demo cluster with N partition nodes behind a router")
	replicasN := fs.Int("replicas", 1, "replicas per partition with -cluster (R > 1 runs the replicated control plane: coordinator, versioned map, routed ingest)")
	metricsOn := fs.Bool("metrics", true, "record metrics and expose them at GET /metrics (false disables all recording)")
	slowMs := fs.Int("slowlog-ms", 100, "log queries slower than this many ms at GET /debug/slowlog (0 disables)")
	dynamic := fs.Bool("dynamic", false, "live ingest mode: mutable index + POST /ingest (bypasses the serving substrate, whose caches assume an immutable index)")
	ingestQueue := fs.Int("ingest-queue", 256, "ingest queue depth in -dynamic mode (Enqueue blocks when full)")
	tenantsConf := fs.String("tenants", "", "multi-tenant mode: JSON config of named tenants served under /t/{tenant}/ (ignores -graph/-model)")
	fs.Parse(args)

	if *tenantsConf != "" {
		obs.Default().SetEnabled(*metricsOn)
		serveTenants(*tenantsConf, *addr, *metricsOn, newSlowLog(*slowMs))
		return
	}

	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	model, err := core.LoadFile(*modelPath, g)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	prov := model.IndexProvenance()
	log.Printf("index %s in %v (also under /stats)", prov.Source, prov.Took.Round(time.Microsecond))
	obs.Default().SetEnabled(*metricsOn)
	sl := newSlowLog(*slowMs)
	if *clusterN > 0 {
		serveCluster(g, model, *addr, *clusterN, *replicasN, *metricsOn, sl)
		return
	}
	var opts []server.Option
	if *dynamic {
		// Live ingest: the mention cache and fixed shard ranges of the
		// serving substrate assume an immutable index, so dynamic mode
		// serves straight from the model (which is still concurrency-safe
		// and allocation-disciplined) and mounts POST /ingest.
		model = model.WithDynamicIndex(0)
		ing, err := model.NewIngestor(*ingestQueue)
		if err != nil {
			log.Fatalf("starting ingest: %v", err)
		}
		defer ing.Close()
		opts = append(opts, server.WithIngest(ing))
		log.Printf("dynamic mode: POST /ingest mounted (queue %d), serving substrate bypassed", *ingestQueue)
	} else {
		sv, err := serve.New(model, serve.Options{
			Shards:    *shards,
			MaxBatch:  *batch,
			Window:    *batchWindow,
			CacheSize: *cacheSize,
		})
		if err != nil {
			log.Fatalf("serving substrate: %v", err)
		}
		defer sv.Close()
		opts = append(opts, server.WithServe(sv))
		log.Printf("serving substrate: %d scan shards", sv.Stats().Shards)
	}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
		log.Printf("pprof enabled at /debug/pprof/")
	}
	if *metricsOn {
		opts = append(opts, server.WithMetrics(nil))
	}
	if sl != nil {
		opts = append(opts, server.WithSlowLog(sl))
	}
	log.Printf("serving lookups on %s (graph: %s, %d entities)", *addr, g.Name, len(g.Entities))
	log.Fatal(server.NewHTTPServer(*addr, server.New(g, model, opts...).Handler()).ListenAndServe())
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	entities := fs.Int("entities", 2000, "entity count")
	profile := fs.String("profile", "wikidata", "wikidata|dbpedia")
	seed := fs.Uint64("seed", 42, "generator seed")
	out := fs.String("out", "graph.bin", "output path")
	fs.Parse(args)

	p := kg.WikidataProfile
	if *profile == "dbpedia" {
		p = kg.DBPediaProfile
	}
	cfg := kg.DefaultGeneratorConfig(p, *entities)
	cfg.Seed = *seed
	g, _ := kg.Generate(cfg)
	if err := g.SaveFile(*out); err != nil {
		log.Fatalf("saving graph: %v", err)
	}
	log.Printf("wrote %s: %s", *out, g.Stats())
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file from `emblookup gen`")
	out := fs.String("out", "model.bin", "output model path")
	dim := fs.Int("dim", 64, "embedding dimension")
	epochs := fs.Int("epochs", 6, "training epochs (half offline, half online-mined)")
	triplets := fs.Int("triplets", 20, "triplets mined per entity")
	compress := fs.Bool("compress", true, "product-quantize the index")
	fastScan := fs.Bool("fastscan", false, "build the compressed index as the 4-bit fast-scan variant (requires -compress)")
	saveIndex := fs.Bool("save-index", true, "embed the built index in the model file (IO-bound cold starts)")
	paper := fs.Bool("paper", false, "use the full paper configuration (100 epochs, 100 triplets/entity)")
	workers := fs.Int("workers", 0, "training/indexing worker count (0 = GOMAXPROCS)")
	hogwild := fs.Bool("hogwild", false, "lock-free parallel SGD for both training phases (faster on multi-core, non-deterministic)")
	fs.Parse(args)

	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	cfg := core.FastConfig()
	if *paper {
		cfg = core.DefaultConfig()
	}
	cfg.Dim = *dim
	if !*paper {
		cfg.Epochs = *epochs
		cfg.TripletsPerEntity = *triplets
	}
	cfg.Compress = *compress
	cfg.FastScan = *fastScan
	cfg.Workers = *workers
	cfg.Hogwild = *hogwild

	start := time.Now()
	var stats core.TrainStats
	model, err := core.Train(g, cfg, core.WithLogf(log.Printf), core.WithTrainStats(&stats))
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	mode := "deterministic"
	if cfg.Hogwild {
		mode = "hogwild"
	}
	log.Printf("trained in %v (%s: semantic %v, combiner %v); index %d rows, %d payload bytes",
		time.Since(start).Round(time.Millisecond), mode,
		stats.SemanticDur.Round(time.Millisecond), stats.CombinerDur.Round(time.Millisecond),
		model.Index().Len(), model.Index().SizeBytes())
	if *saveIndex {
		err = model.SaveFileWithIndex(*out)
	} else {
		err = model.SaveFile(*out)
	}
	if err != nil {
		log.Fatalf("saving model: %v", err)
	}
	if *saveIndex {
		log.Printf("wrote %s (with index artifact)", *out)
	} else {
		log.Printf("wrote %s (weights only, index rebuilt on load)", *out)
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	modelPath := fs.String("model", "model.bin", "model file from `emblookup train`")
	k := fs.Int("k", 10, "results per query")
	fs.Parse(args)
	queries := fs.Args()
	if len(queries) == 0 {
		log.Fatal("query: provide at least one query string")
	}

	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	model, err := core.LoadFile(*modelPath, g)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	for _, q := range queries {
		start := time.Now()
		res := model.Lookup(q, *k)
		elapsed := time.Since(start)
		fmt.Printf("%q (%v):\n", q, elapsed.Round(time.Microsecond))
		for i, c := range res {
			e := g.Entity(c.ID)
			types := ""
			for _, t := range e.Types {
				types += " " + g.TypeName(t)
			}
			fmt.Printf("  %2d. %-32s score=%.3f types:%s\n", i+1, e.Label, c.Score, types)
		}
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	graphPath := fs.String("graph", "graph.bin", "graph file")
	fs.Parse(args)
	g, err := kg.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("loading graph: %v", err)
	}
	fmt.Println(g.Stats())
}
