package main

import (
	"log"

	"emblookup/internal/obs"
	"emblookup/internal/server"
	"emblookup/internal/tenant"
)

// serveTenants runs the multi-tenant serving mode (DESIGN.md §15): one
// process hosting N named models behind per-tenant admission control and
// deadline budgets.
//
//	emblookup serve -tenants conf.json -addr :8080
//
// conf.json names each tenant with its graph/model artifact paths and
// limits:
//
//	{"tenants": [
//	  {"name": "wikidata", "graph": "wd-graph.bin", "model": "wd-model.bin",
//	   "preload": true,
//	   "limits": {"ratePerSec": 500, "maxConcurrent": 32, "maxK": 100,
//	              "defaultDeadlineMs": 250}},
//	  {"name": "dbpedia", "graph": "db-graph.bin", "model": "db-model.bin"}
//	]}
//
// Tenants without "preload" attach lazily on their first request; POST
// /t/{name}/reload hot-swaps a tenant from its (rewritten) artifact paths
// without dropping in-flight requests.
func serveTenants(confPath, addr string, metricsOn bool, sl *obs.SlowLog) {
	cfg, err := tenant.LoadConfig(confPath)
	if err != nil {
		log.Fatalf("loading tenant config: %v", err)
	}
	reg, err := tenant.NewRegistry(cfg, nil)
	if err != nil {
		log.Fatalf("building tenant registry: %v", err)
	}
	defer reg.Close()
	var opts []server.TenantOption
	if metricsOn {
		opts = append(opts, server.WithTenantMetrics(nil))
	}
	if sl != nil {
		opts = append(opts, server.WithTenantSlowLog(sl))
	}
	ts := server.NewTenantServer(reg, opts...)
	log.Printf("serving %d tenants on %s: %v", len(cfg.Tenants), addr, reg.Names())
	log.Fatal(server.NewHTTPServer(addr, ts.Handler()).ListenAndServe())
}
