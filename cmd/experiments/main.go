// Command experiments regenerates the paper's tables and figures over the
// synthetic substrate.
//
// Usage:
//
//	experiments [-run table2,figure4] [-scale test|default] [-entities N] [-v]
//
// With no -run it regenerates everything in order.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"emblookup/internal/experiments"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all); one of "+strings.Join(experiments.AllIDs(), ","))
	scale := flag.String("scale", "default", "test|default — environment size")
	entities := flag.Int("entities", 0, "override entity count per knowledge graph")
	tables := flag.Int("tables", 0, "override ST-Wikidata table count (others scale proportionally)")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	var opts experiments.Options
	switch *scale {
	case "test":
		opts = experiments.TestOptions()
	case "default":
		opts = experiments.DefaultOptions()
	default:
		log.Fatalf("unknown -scale %q", *scale)
	}
	if *entities > 0 {
		opts.Entities = *entities
	}
	if *tables > 0 {
		opts.WikidataTables = *tables
		opts.DBPediaTables = *tables / 2
		opts.ToughTableCount = *tables / 12
		if opts.ToughTableCount < 1 {
			opts.ToughTableCount = 1
		}
	}
	if *verbose {
		opts.Logf = log.Printf
	}

	ids := experiments.AllIDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}

	start := time.Now()
	env, err := experiments.NewEnv(opts)
	if err != nil {
		log.Fatalf("building environment: %v", err)
	}
	if *verbose {
		log.Printf("environment ready in %v", time.Since(start).Round(time.Millisecond))
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		expStart := time.Now()
		rep, err := env.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		rep.Render(os.Stdout)
		fmt.Printf("  (regenerated in %v)\n\n", time.Since(expStart).Round(time.Millisecond))
	}
}
