// Package emblookup is a from-scratch Go reproduction of "Accelerating
// Entity Lookups in Knowledge Graphs Through Embeddings" (ICDE 2022): the
// EmbLookup learned-embedding lookup service, every substrate it depends on
// (neural network stack, fastText-style subword model, triplet mining,
// product quantization, FAISS-style indexes, synthetic knowledge graphs and
// SemTab-style benchmarks, baseline lookup services, and the downstream
// annotation systems), and a harness that regenerates every table and
// figure of the paper's evaluation.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitution map, and EXPERIMENTS.md for paper-vs-measured
// results. The root package holds only the benchmark harness
// (bench_test.go); the implementation lives under internal/.
package emblookup
