// Data repair: mask 10% of a benchmark dataset's cells and impute them
// Katara-style — look up the row's subject entity, validate candidates
// against the surviving row values, and read the missing value off the
// knowledge graph — comparing the original Levenshtein-scan lookup against
// EmbLookup, with noisy subject cells to make the lookup matter.
//
//	go run ./examples/datarepair
package main

import (
	"fmt"
	"log"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/systems"
	"emblookup/internal/tabular"
	"emblookup/internal/tasks"
)

func main() {
	log.SetFlags(0)

	g, schema := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 1200))
	ds := tabular.GenerateDataset(g, schema, tabular.DefaultDatasetConfig(tabular.STDBPedia, 30))
	// Corrupt some subject cells so the subject lookup needs to be fuzzy.
	noisy := tabular.NewInjector(5).Apply(ds)

	katara := systems.NewKatara(g)
	model, err := core.Train(g, core.FastConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Mask once so both services repair the same holes.
	masked, cells := tasks.MaskCells(noisy, 0.10, 42)
	log.Printf("masked %d cells across %d tables", len(cells), len(masked.Tables))

	run := func(name string, svc lookup.Service) {
		res := tasks.Repair(masked, cells, svc, tasks.DefaultDRConfig())
		fmt.Printf("%-24s F=%.2f  %s  lookup=%v\n",
			name, res.F1(), res.Confusion.String(), res.LookupTime.Round(1e6))
	}
	fmt.Println("\nKatara-style repair of the masked cells:")
	run("original (Levenshtein)", katara.Original)
	run("EmbLookup", model)

	// Show one concrete repair.
	res := tasks.Repair(masked, cells, model, tasks.DefaultDRConfig())
	for _, mc := range cells {
		pred := res.Imputed[mc.Ref]
		if pred == kg.NoEntity {
			continue
		}
		tb := masked.Tables[mc.Ref.Table]
		fmt.Printf("\nexample: table %s row %d, column %q\n", tb.Name, mc.Ref.Row, tb.Cols[mc.Ref.Col].Name)
		fmt.Printf("  subject cell: %q\n", tb.Rows[mc.Ref.Row][0].Text)
		fmt.Printf("  imputed:      %q (truth %q)\n", g.Label(pred), mc.TruthText)
		break
	}
}
