// Collective entity disambiguation: resolve a list of related, ambiguous
// mentions DoSeR-style — candidates per mention from a lookup service,
// then PageRank-style score propagation over the knowledge-graph links
// between candidates, so coherent assignments reinforce each other.
//
//	go run ./examples/disambiguation
package main

import (
	"fmt"
	"log"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/tasks"
)

func main() {
	log.SetFlags(0)

	g, schema := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 1200))
	model, err := core.Train(g, core.FastConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Build a mention list with genuine ambiguity: a person plus their
	// birthplace and employer — where the birthplace label is shared by
	// several entities.
	var person *kg.Entity
	var city, company kg.EntityID
	for i := range g.Entities {
		e := &g.Entities[i]
		city, company = kg.NoEntity, kg.NoEntity
		for _, f := range g.FactsFrom(e.ID) {
			switch f.Prop {
			case schema.BornIn:
				city = f.Object
			case schema.WorksFor:
				company = f.Object
			}
		}
		if city != kg.NoEntity && company != kg.NoEntity && len(g.ExactMatch(g.Label(city))) > 1 {
			person = e
			break
		}
	}
	if person == nil {
		log.Fatal("no suitably ambiguous row found; try a different seed")
	}

	mentions := []string{person.Label, g.Label(city), g.Label(company)}
	truths := []kg.EntityID{person.ID, city, company}
	fmt.Printf("mentions: %q\n", mentions)
	fmt.Printf("the city label %q is shared by %d entities\n",
		g.Label(city), len(g.ExactMatch(g.Label(city))))

	res := tasks.Disambiguate(g, model, mentions, truths, tasks.DefaultEAConfig())
	fmt.Println("\ncollective disambiguation (EmbLookup candidates):")
	for i, m := range mentions {
		mark := "✗"
		if res.Assignments[i] == truths[i] {
			mark = "✓"
		}
		fmt.Printf("  %s %q -> entity %d (%s)\n", mark, m, res.Assignments[i], g.Label(res.Assignments[i]))
	}
	fmt.Printf("F-score: %.2f (lookup %v for %d mentions)\n",
		res.F1(), res.LookupTime.Round(1e6), res.LookupCalls)
}
