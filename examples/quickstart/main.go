// Quickstart: generate a small knowledge graph, train EmbLookup on it, and
// run syntactic, noisy, and semantic lookups against the index.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
)

func main() {
	log.SetFlags(0)

	// 1. A knowledge graph. Real deployments would load Wikidata/DBPedia;
	// the library ships a deterministic synthetic generator with the same
	// structure (labels, aliases, types, facts).
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 800))
	log.Printf("graph: %s", g.Stats())

	// 2. Train the lookup model: the fastText-style semantic path on
	// synonym pairs, then the character CNN + combiner with triplet loss,
	// then the product-quantized entity index (8 bytes per entity).
	cfg := core.FastConfig()
	start := time.Now()
	model, err := core.Train(g, cfg, core.WithLogf(log.Printf))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trained in %v; index payload %d bytes for %d entities",
		time.Since(start).Round(time.Millisecond), model.Index().SizeBytes(), model.Index().Len())

	// 3. Look things up. Pick an entity and query it three ways: exact
	// label, misspelled, and through one of its aliases.
	var target *kg.Entity
	for i := range g.Entities {
		if len(g.Entities[i].Aliases) >= 2 && len(g.Entities[i].Label) > 6 {
			target = &g.Entities[i]
			break
		}
	}
	queries := []string{
		target.Label,       // exact
		typo(target.Label), // misspelled
		target.Aliases[0],  // alias (semantic lookup)
	}
	for _, q := range queries {
		res := model.Lookup(q, 5)
		fmt.Printf("\nlookup(%q, 5):\n", q)
		for i, c := range res {
			hit := " "
			if c.ID == target.ID {
				hit = "*"
			}
			fmt.Printf("  %s %d. %s (score %.3f)\n", hit, i+1, g.Label(c.ID), c.Score)
		}
	}

	// 4. Bulk mode: the batched path the GPU columns of the paper measure.
	batch := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		batch = append(batch, g.Entities[i%len(g.Entities)].Label)
	}
	start = time.Now()
	model.BulkLookup(batch, 10, 0)
	fmt.Printf("\nbulk: %d lookups in %v (%v/query)\n",
		len(batch), time.Since(start).Round(time.Microsecond),
		(time.Since(start) / time.Duration(len(batch))).Round(time.Microsecond))
}

// typo drops the third character.
func typo(s string) string {
	if len(s) < 4 {
		return s + "x"
	}
	return s[:2] + s[3:]
}
