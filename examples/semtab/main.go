// SemTab-style annotation: generate a noisy benchmark dataset, annotate its
// cells (CEA) and columns (CTA) with a MantisTable-style pipeline, and
// compare the original ElasticSearch lookup against EmbLookup — the
// experiment at the heart of the paper, end to end.
//
//	go run ./examples/semtab
package main

import (
	"fmt"
	"log"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/systems"
	"emblookup/internal/tabular"
)

func main() {
	log.SetFlags(0)

	// Benchmark setup: a knowledge graph and a SemTab-style table
	// collection with 10% of cells corrupted by typos.
	g, schema := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 1500))
	ds := tabular.GenerateDataset(g, schema, tabular.DefaultDatasetConfig(tabular.STWikidata, 40))
	noisy := tabular.NewInjector(7).Apply(ds)
	log.Printf("dataset: %s", noisy.ComputeStats())

	// The annotation system under test (MantisTable-style: ElasticSearch
	// lookup + column-coherence ranking).
	sys := systems.NewMantisTable(g)

	// EmbLookup, trained on the same graph.
	model, err := core.Train(g, core.FastConfig())
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, svc lookup.Service) {
		cea := sys.RunCEA(noisy, svc, 1)
		cta := sys.RunCTA(noisy, svc, 1)
		fmt.Printf("%-22s CEA F=%.2f  CTA F=%.2f  lookup=%v (%d calls)\n",
			name, cea.F1(), cta.F1(), cea.LookupTime.Round(1e6), cea.LookupCalls)
	}
	fmt.Println("\nMantisTable pipeline, noisy ST-Wikidata:")
	run("original (Elastic)", sys.Original)
	run("EmbLookup (PQ)", model)

	nc, err := model.WithCompression(false)
	if err != nil {
		log.Fatal(err)
	}
	run("EmbLookup (no PQ)", nc)

	fmt.Printf("\nindex payload: EmbLookup PQ %d B vs raw embeddings %d B (%.0fx smaller)\n",
		model.Index().SizeBytes(), nc.Index().SizeBytes(),
		float64(nc.Index().SizeBytes())/float64(model.Index().SizeBytes()))
}
