module emblookup

go 1.22
