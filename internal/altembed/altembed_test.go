package altembed

import (
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/tabular"
)

func graph(t *testing.T) *kg.Graph {
	t.Helper()
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
	return g
}

func recallAt10(s *Service, g *kg.Graph, corrupt func(string, *mathx.RNG) string) float64 {
	rng := mathx.NewRNG(42)
	hits, n := 0, 0
	for i := 0; i < 150; i++ {
		e := &g.Entities[rng.Intn(len(g.Entities))]
		q := e.Label
		if corrupt != nil {
			q = corrupt(q, rng)
		}
		n++
		for _, c := range s.Lookup(q, 10) {
			if c.ID == e.ID {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(n)
}

func TestWord2VecCleanVsTypos(t *testing.T) {
	g := graph(t)
	w2v := TrainWord2Vec(g, DefaultWord2VecConfig())
	if w2v.VocabSize() == 0 {
		t.Fatal("empty vocabulary")
	}
	svc := NewService(g, w2v)
	clean := recallAt10(svc, g, nil)
	noisy := recallAt10(svc, g, func(s string, r *mathx.RNG) string {
		return tabular.ApplyNoise(s, tabular.DropLetters, r)
	})
	if clean < 0.5 {
		t.Fatalf("word2vec clean recall = %.2f, want >= 0.5", clean)
	}
	// The paper's defining observation: word2vec collapses under typos
	// (0.72 -> 0.29) because corrupted words are OOV.
	if noisy > clean-0.2 {
		t.Fatalf("word2vec should collapse under typos: clean=%.2f noisy=%.2f", clean, noisy)
	}
}

func TestWord2VecOOVEmbedsZero(t *testing.T) {
	g := graph(t)
	w2v := TrainWord2Vec(g, DefaultWord2VecConfig())
	v := w2v.Embed("zzzqqqxxx totallyunknown")
	for _, x := range v {
		if x != 0 {
			t.Fatal("OOV string should embed to zero")
		}
	}
}

func TestRawFastTextSurvivesTypos(t *testing.T) {
	g := graph(t)
	ft := TrainRawFastText(g, 64, 6, 3)
	svc := NewService(g, ft)
	clean := recallAt10(svc, g, nil)
	noisy := recallAt10(svc, g, func(s string, r *mathx.RNG) string {
		return tabular.ApplyNoise(s, tabular.DropLetters, r)
	})
	if clean < 0.6 {
		t.Fatalf("fasttext clean recall = %.2f", clean)
	}
	// Subword sharing keeps most of the recall under letter noise
	// (0.76 -> 0.72 in the paper).
	if noisy < clean-0.35 {
		t.Fatalf("fasttext degraded too much: clean=%.2f noisy=%.2f", clean, noisy)
	}
}

func TestBERTProxyMiddleGround(t *testing.T) {
	g := graph(t)
	svc := NewService(g, TrainBERTProxy(g, 64, 5))
	clean := recallAt10(svc, g, nil)
	if clean < 0.4 {
		t.Fatalf("bert proxy clean recall = %.2f, want >= 0.4", clean)
	}
}

func TestLSTMTrainsAndRanksWell(t *testing.T) {
	g := graph(t)
	cfg := DefaultLSTMConfig()
	cfg.Epochs = 2
	cfg.TripletsPerEntity = 8
	lstm := TrainLSTM(g, cfg)
	svc := NewService(g, lstm)
	clean := recallAt10(svc, g, nil)
	if clean < 0.5 {
		t.Fatalf("lstm clean recall = %.2f, want >= 0.5", clean)
	}
}

func TestServiceLookupBasics(t *testing.T) {
	g := graph(t)
	svc := NewService(g, TrainRawFastText(g, 32, 3, 9))
	if svc.Lookup("anything", 0) != nil {
		t.Fatal("k=0 should be nil")
	}
	res := svc.Lookup(g.Entities[0].Label, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
	// Self should be the nearest.
	if res[0].ID != g.Entities[0].ID {
		t.Fatalf("self not first: %+v", res[0])
	}
}

func TestFlatIndexMatchesBruteForce(t *testing.T) {
	data := mathx.NewMatrix(100, 8)
	data.FillRandn(mathx.NewRNG(7), 1)
	f := flatIndex{data: data}
	rng := mathx.NewRNG(8)
	for trial := 0; trial < 10; trial++ {
		q := make([]float32, 8)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		hits := f.search(q, 5)
		if len(hits) != 5 {
			t.Fatalf("got %d hits", len(hits))
		}
		// Verify ordering and correctness of the minimum.
		bestDist := float32(3.4e38)
		for i := 0; i < data.Rows; i++ {
			if d := mathx.SquaredL2(q, data.Row(i)); d < bestDist {
				bestDist = d
			}
		}
		if hits[0].dist != bestDist {
			t.Fatal("nearest hit mismatch")
		}
		for i := 1; i < len(hits); i++ {
			if hits[i].dist < hits[i-1].dist {
				t.Fatal("hits not sorted")
			}
		}
	}
}

func TestEmbedderNamesAndDims(t *testing.T) {
	g := graph(t)
	var embs []Embedder
	embs = append(embs, TrainWord2Vec(g, DefaultWord2VecConfig()))
	embs = append(embs, TrainRawFastText(g, 64, 2, 1))
	embs = append(embs, TrainBERTProxy(g, 64, 2))
	names := map[string]bool{}
	for _, e := range embs {
		names[e.Name()] = true
		if e.Dim() != 64 {
			t.Fatalf("%s dim = %d", e.Name(), e.Dim())
		}
		if len(e.Embed("test string")) != 64 {
			t.Fatalf("%s embed dim mismatch", e.Name())
		}
	}
	if len(names) != 3 {
		t.Fatalf("names not distinct: %v", names)
	}
}
