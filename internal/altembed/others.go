package altembed

import (
	"math"

	"emblookup/internal/charenc"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
	"emblookup/internal/strutil"
	"emblookup/internal/triplet"
)

func expFloat(x float64) float64 { return math.Exp(x) }

// RawFastText wraps the subword model trained on synonym pairs, used alone
// (no CNN, no combiner) — the paper's "FastText" row.
type RawFastText struct {
	Model *ngram.Model
}

// TrainRawFastText trains the subword model on g's synonym pairs. The
// known-mention memorization slot is disabled: pre-trained fastText has no
// per-mention memory, only subword composition.
func TrainRawFastText(g *kg.Graph, dim int, epochs int, seed uint64) *RawFastText {
	m := ngram.NewModel(dim, 1<<15, seed)
	m.MentionHalf = false
	var pairs []ngram.Pair
	for _, p := range triplet.SynonymPairs(g) {
		pairs = append(pairs, ngram.Pair{Label: p[0], Synonym: p[1]})
	}
	cfg := ngram.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.Seed = seed
	m.Train(pairs, triplet.Labels(g), cfg)
	return &RawFastText{Model: m}
}

// Name implements Embedder.
func (r *RawFastText) Name() string { return "fasttext" }

// Dim implements Embedder.
func (r *RawFastText) Dim() int { return r.Model.Dim }

// Embed implements Embedder.
func (r *RawFastText) Embed(s string) []float32 { return r.Model.Embed(s) }

// BERTProxy stands in for a pre-trained BERT encoder: hashed wordpiece
// vectors (whole words plus coarse 4/5-gram pieces) pooled by softmax
// attention with a fixed query vector. The piece table is adapted only
// briefly to the knowledge graph (two synonym epochs), reproducing the
// "pre-trained but not task-trained" middle ground of Table VII: better
// than word2vec under typos (wordpieces survive), worse than the
// task-trained models.
type BERTProxy struct {
	dim    int
	pieces *ngram.Model
	query  []float32
}

// TrainBERTProxy builds the proxy over g.
func TrainBERTProxy(g *kg.Graph, dim int, seed uint64) *BERTProxy {
	m := ngram.NewModel(dim, 1<<15, seed)
	m.MinN, m.MaxN = 4, 5 // coarse wordpieces, not fine character n-grams
	m.MentionHalf = false // pre-trained encoders carry no per-mention memory
	var pairs []ngram.Pair
	for _, p := range triplet.SynonymPairs(g) {
		pairs = append(pairs, ngram.Pair{Label: p[0], Synonym: p[1]})
	}
	cfg := ngram.DefaultTrainConfig()
	cfg.Epochs = 2 // weak adaptation only
	cfg.Seed = seed
	m.Train(pairs, triplet.Labels(g), cfg)

	rng := mathx.NewRNG(seed + 1)
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(rng.NormFloat64() * 0.5)
	}
	return &BERTProxy{dim: dim, pieces: m, query: q}
}

// Name implements Embedder.
func (b *BERTProxy) Name() string { return "bert" }

// Dim implements Embedder.
func (b *BERTProxy) Dim() int { return b.dim }

// Embed pools per-token piece vectors with attention weights.
func (b *BERTProxy) Embed(s string) []float32 {
	toks := strutil.Tokenize(s)
	out := make([]float32, b.dim)
	if len(toks) == 0 {
		return out
	}
	vecs := make([][]float32, len(toks))
	weights := make([]float32, len(toks))
	var maxW float32 = -1e30
	for i, t := range toks {
		vecs[i] = b.pieces.Embed(t)
		weights[i] = mathx.Dot(b.query, vecs[i])
		if weights[i] > maxW {
			maxW = weights[i]
		}
	}
	var sum float32
	for i := range weights {
		weights[i] = float32(math.Exp(float64(weights[i] - maxW)))
		sum += weights[i]
	}
	for i := range vecs {
		mathx.Axpy(weights[i]/sum, vecs[i], out)
	}
	return out
}

// LSTMEmbedder trains an LSTM over character sequences with the same
// triplet objective as EmbLookup's CNN — the strongest baseline in Table
// VII.
type LSTMEmbedder struct {
	enc  *charenc.Encoder
	lstm *nn.LSTM
	proj *nn.Linear
	dim  int
}

// LSTMConfig controls LSTM baseline training.
type LSTMConfig struct {
	Dim               int
	Hidden            int
	MaxLen            int
	Epochs            int
	TripletsPerEntity int
	Margin            float32
	LR                float32
	Seed              uint64
}

// DefaultLSTMConfig sizes the baseline like EmbLookup's default.
func DefaultLSTMConfig() LSTMConfig {
	return LSTMConfig{Dim: 64, Hidden: 64, MaxLen: 32, Epochs: 3, TripletsPerEntity: 10, Margin: 1, LR: 3e-3, Seed: 91}
}

// TrainLSTM fits the LSTM baseline on triplets mined from g.
func TrainLSTM(g *kg.Graph, cfg LSTMConfig) *LSTMEmbedder {
	if cfg.Dim <= 0 {
		cfg = DefaultLSTMConfig()
	}
	rng := mathx.NewRNG(cfg.Seed)
	var mentions []string
	for i := range g.Entities {
		mentions = append(mentions, g.Entities[i].Mentions()...)
	}
	alphabet := charenc.AlphabetFromMentions(mentions)
	e := &LSTMEmbedder{
		enc:  charenc.NewEncoder(alphabet, cfg.MaxLen),
		lstm: nn.NewLSTM(rng, alphabet.Size(), cfg.Hidden),
		dim:  cfg.Dim,
	}
	e.proj = nn.NewLinear(rng, cfg.Hidden, cfg.Dim)

	mCfg := triplet.DefaultMinerConfig()
	mCfg.PerEntity = cfg.TripletsPerEntity
	mCfg.Seed = rng.Uint64()
	ts := triplet.Mine(g, mCfg)

	params := append(e.lstm.Params(), e.proj.Params()...)
	opt := nn.NewAdam(cfg.LR, params)
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	const batch = 64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.ShuffleInts(order)
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			for _, ti := range order[start:end] {
				t := ts[ti]
				ya, ca := e.forward(t.Anchor)
				yp, cp := e.forward(t.Positive)
				yn, cn := e.forward(t.Negative)
				loss, da, dp, dn := nn.TripletLoss(ya, yp, yn, cfg.Margin)
				if loss > 0 {
					e.backward(ca, da)
					e.backward(cp, dp)
					e.backward(cn, dn)
				}
			}
			opt.Step(1 / float32(end-start))
		}
	}
	return e
}

type lstmFwd struct {
	cache *nn.LSTMCache
	h     []float32
}

func (e *LSTMEmbedder) seqLen(s string) int {
	n := 0
	for range s {
		n++
		if n >= e.enc.MaxLen {
			break
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

func (e *LSTMEmbedder) forward(s string) ([]float32, lstmFwd) {
	x := e.enc.Encode(s)
	h, cache := e.lstm.Forward(x, e.seqLen(s))
	y := e.proj.Apply(h)
	return y, lstmFwd{cache: cache, h: h}
}

func (e *LSTMEmbedder) backward(c lstmFwd, dy []float32) {
	dh := e.proj.Backward(c.h, dy)
	e.lstm.Backward(c.cache, dh)
}

// Name implements Embedder.
func (e *LSTMEmbedder) Name() string { return "lstm" }

// Dim implements Embedder.
func (e *LSTMEmbedder) Dim() int { return e.dim }

// Embed implements Embedder (inference path, concurrent-safe).
func (e *LSTMEmbedder) Embed(s string) []float32 {
	x := e.enc.Encode(s)
	h := e.lstm.Apply(x, e.seqLen(s))
	return e.proj.Apply(h)
}

// Service wraps any Embedder into a lookup service over g's entity-label
// embeddings using an exact index — the apparatus of the Table VII
// comparison.
type Service struct {
	name  string
	embed Embedder
	flat  flatIndex
	rows  []kg.EntityID
}

// flatIndex is a minimal exact scan (kept local to avoid an index-package
// dependency cycle through examples).
type flatIndex struct {
	data *mathx.Matrix
}

// NewService embeds every entity label with em and indexes the result.
func NewService(g *kg.Graph, em Embedder) *Service {
	s := &Service{name: em.Name(), embed: em}
	s.flat.data = mathx.NewMatrix(len(g.Entities), em.Dim())
	for i := range g.Entities {
		copy(s.flat.data.Row(i), em.Embed(g.Entities[i].Label))
		s.rows = append(s.rows, g.Entities[i].ID)
	}
	return s
}

// Name implements lookup.Service.
func (s *Service) Name() string { return s.name }

// Lookup returns the k nearest entities to the query embedding.
func (s *Service) Lookup(q string, k int) []lookup.Candidate {
	if k <= 0 {
		return nil
	}
	qv := s.embed.Embed(q)
	res := s.flat.search(qv, k)
	out := make([]lookup.Candidate, len(res))
	for i, r := range res {
		out[i] = lookup.Candidate{ID: s.rows[r.row], Score: -float64(r.dist)}
	}
	return out
}

type flatHit struct {
	row  int
	dist float32
}

// search is a simple exact top-k scan with insertion into a sorted slice.
func (f *flatIndex) search(q []float32, k int) []flatHit {
	best := make([]flatHit, 0, k)
	for i := 0; i < f.data.Rows; i++ {
		d := mathx.SquaredL2(q, f.data.Row(i))
		if len(best) == k && d >= best[k-1].dist {
			continue
		}
		pos := len(best)
		for pos > 0 && best[pos-1].dist > d {
			pos--
		}
		if len(best) < k {
			best = append(best, flatHit{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = flatHit{row: i, dist: d}
	}
	return best
}
