// Package altembed implements the alternative embedding generators of the
// paper's Table VII ablation — word2vec, raw fastText, a BERT-style
// contextual proxy, and an LSTM — each exposed as an Embedder and wrapped
// into a lookup service over entity-label embeddings so the CEA experiment
// can compare them head-to-head with EmbLookup.
//
// The substitutions (no pre-trained checkpoints exist offline) preserve
// each baseline's characteristic failure mode: word2vec is word-level and
// maps out-of-vocabulary typos to zero vectors; raw fastText shares
// subwords but has no syntactic training; the BERT proxy pools wordpiece
// vectors adapted only weakly to the KG; the LSTM is trained on the same
// triplets as EmbLookup's CNN and comes closest, mirroring the paper's
// ordering.
package altembed

import (
	"strings"

	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/strutil"
)

// Embedder maps a string to a fixed-dimension vector.
type Embedder interface {
	Name() string
	Dim() int
	Embed(s string) []float32
}

// Word2Vec is a word-level skip-gram-with-negative-sampling model trained
// on the "sentences" formed by each entity's label and aliases. Unknown
// words embed to zero — the OOV brittleness that collapses its Table VII
// error column.
type Word2Vec struct {
	dim   int
	vocab map[string]int
	vecs  *mathx.Matrix
}

// Word2VecConfig controls training.
type Word2VecConfig struct {
	Dim       int
	Window    int
	Negatives int
	Epochs    int
	LR        float32
	Seed      uint64
}

// DefaultWord2VecConfig returns standard small-corpus settings.
func DefaultWord2VecConfig() Word2VecConfig {
	return Word2VecConfig{Dim: 64, Window: 4, Negatives: 4, Epochs: 8, LR: 0.05, Seed: 77}
}

// TrainWord2Vec fits word vectors on g's mention corpus.
func TrainWord2Vec(g *kg.Graph, cfg Word2VecConfig) *Word2Vec {
	if cfg.Dim <= 0 {
		cfg = DefaultWord2VecConfig()
	}
	rng := mathx.NewRNG(cfg.Seed)

	// Sentences: one token bag per entity over label + aliases.
	var sentences [][]string
	vocab := map[string]int{}
	var words []string
	for i := range g.Entities {
		e := &g.Entities[i]
		var sent []string
		for _, m := range e.Mentions() {
			sent = append(sent, strutil.Tokenize(m)...)
		}
		if len(sent) == 0 {
			continue
		}
		sentences = append(sentences, sent)
		for _, w := range sent {
			if _, ok := vocab[w]; !ok {
				vocab[w] = len(words)
				words = append(words, w)
			}
		}
	}
	m := &Word2Vec{dim: cfg.Dim, vocab: vocab, vecs: mathx.NewMatrix(len(words), cfg.Dim)}
	m.vecs.FillRandn(rng, 0.1)
	ctxVecs := mathx.NewMatrix(len(words), cfg.Dim)
	ctxVecs.FillRandn(rng, 0.1)

	sigmoid := func(x float32) float32 {
		// Fast clamped logistic.
		if x > 6 {
			return 1
		}
		if x < -6 {
			return 0
		}
		return 1 / (1 + exp32(-x))
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR * float32(cfg.Epochs-epoch) / float32(cfg.Epochs)
		for _, sent := range sentences {
			for i, w := range sent {
				wi := vocab[w]
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(sent) {
					hi = len(sent) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					ci := vocab[sent[j]]
					// Positive update.
					sgnsStep(m.vecs.Row(wi), ctxVecs.Row(ci), 1, lr, sigmoid)
					// Negative samples.
					for n := 0; n < cfg.Negatives; n++ {
						ni := rng.Intn(len(words))
						if ni == ci {
							continue
						}
						sgnsStep(m.vecs.Row(wi), ctxVecs.Row(ni), 0, lr, sigmoid)
					}
				}
			}
		}
	}
	return m
}

// sgnsStep applies one skip-gram negative-sampling gradient step on the
// (word, context) pair with the given label.
func sgnsStep(w, c []float32, label float32, lr float32, sigmoid func(float32) float32) {
	pred := sigmoid(mathx.Dot(w, c))
	g := lr * (label - pred)
	for i := range w {
		wi := w[i]
		w[i] += g * c[i]
		c[i] += g * wi
	}
}

func exp32(x float32) float32 {
	// Padé-ish approximation is unnecessary; delegate to float64 exp via
	// the standard library would pull math; use the identity e^x with a
	// small series is error-prone. Use math.Exp through a helper.
	return float32(expFloat(float64(x)))
}

// Name implements Embedder.
func (m *Word2Vec) Name() string { return "word2vec" }

// Dim implements Embedder.
func (m *Word2Vec) Dim() int { return m.dim }

// Embed averages the vectors of known words; unknown words contribute
// nothing (a fully-OOV string maps to the zero vector).
func (m *Word2Vec) Embed(s string) []float32 {
	out := make([]float32, m.dim)
	n := 0
	for _, w := range strutil.Tokenize(strings.ToLower(s)) {
		if wi, ok := m.vocab[w]; ok {
			mathx.Axpy(1, m.vecs.Row(wi), out)
			n++
		}
	}
	if n > 0 {
		mathx.Scale(1/float32(n), out)
	}
	return out
}

// VocabSize returns the number of trained word vectors.
func (m *Word2Vec) VocabSize() int { return m.vecs.Rows }
