// Package artifact implements the layout-stable on-disk container every
// model and index artifact uses from format v4 on (DESIGN.md §12): a small
// header, a table of named sections, and raw little-endian payloads, each
// 64-byte aligned and checksummed. The layout is designed so that loading is
// *attachment*, not decoding — on Linux the file is mmap'd and every payload
// becomes a typed slice view over the page cache (zero copies, allocation
// count independent of model size); elsewhere, or when reading from a plain
// io.Reader, the file is read once into an aligned heap buffer and the same
// views are taken over that copy.
//
// Layout (all integers little-endian):
//
//	offset 0, 64 bytes          header
//	  [0:8)    magic "EMBLKV4\x00"
//	  [8:12)   uint32 format version (4)
//	  [12:16)  uint32 section count S
//	  [16:24)  uint64 total file size in bytes
//	  [24:28)  uint32 CRC-32C of the section table
//	  [28:64)  reserved, zero
//	offset 64, S×64 bytes       section table
//	  [0:16)   section name, NUL-padded
//	  [16:24)  uint64 payload offset (64-byte aligned)
//	  [24:32)  uint64 payload length in bytes
//	  [32:40)  uint64 rows (matrices; 0 otherwise)
//	  [40:48)  uint64 cols (matrices; 0 otherwise)
//	  [48:52)  uint32 element kind (ElemKind)
//	  [52:56)  uint32 CRC-32C of the payload
//	  [56:64)  reserved, zero
//	payloads                    raw little-endian data, 64-byte aligned,
//	                            zero-padded between sections
//
// The parser never allocates proportionally to untrusted header fields: the
// section count and every offset/length are validated against the actual
// byte count on hand before any dependent allocation, so a malformed or
// truncated artifact fails with an error — never a panic or a huge
// make([]byte) (FuzzReadArtifact locks this down).
package artifact

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// Magic identifies a format-v4 artifact. Gob streams (format v0–v3) can
// never start with these bytes: a gob stream begins with a varint-encoded
// message length, and 'E' (0x45) as a first byte would declare a 69-byte
// message that the rest of the magic cannot complete as valid gob.
const Magic = "EMBLKV4\x00"

// Version is the container format version this package reads and writes.
const Version = 4

const (
	headerSize  = 64
	entrySize   = 64
	align       = 64
	maxName     = 16
	maxSections = 1 << 12 // sanity cap, far above any real artifact
)

// ElemKind is the element type of a section payload.
type ElemKind uint32

const (
	// ElemU8 is raw bytes (PQ codes, interleaved fast-scan blocks).
	ElemU8 ElemKind = iota
	// ElemF32 is []float32 (vectors, codebooks, model weights).
	ElemF32
	// ElemI32 is []int32 (row→entity tables, inverted-list ids).
	ElemI32
	// ElemI64 is []int64 (list offsets, known-mention hashes).
	ElemI64
	// ElemJSON is a UTF-8 JSON document (the model's structured metadata).
	ElemJSON

	elemKinds // count sentinel
)

// elemSize returns the byte width of one element (1 for variable-width
// kinds).
func (k ElemKind) elemSize() int {
	switch k {
	case ElemF32, ElemI32:
		return 4
	case ElemI64:
		return 8
	default:
		return 1
	}
}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section is one named payload of an artifact. The typed accessors return
// views over the artifact's backing memory (mmap or heap) — shared,
// read-only, and cap-clipped; callers must treat them as immutable.
type Section struct {
	Name string
	Elem ElemKind
	Rows int // matrix row count (0 when not a matrix)
	Cols int // matrix column count
	crc  uint32
	data []byte
}

// Len returns the element count of the section.
func (s *Section) Len() int { return len(s.data) / s.Elem.elemSize() }

// Bytes returns the raw payload view.
func (s *Section) Bytes() []byte { return s.data }

// Float32s returns the payload as a float32 view (ElemF32 sections).
func (s *Section) Float32s() []float32 {
	if len(s.data) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&s.data[0])), len(s.data)/4)
}

// Int32s returns the payload as an int32 view (ElemI32 sections).
func (s *Section) Int32s() []int32 {
	if len(s.data) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&s.data[0])), len(s.data)/4)
}

// Int64s returns the payload as an int64 view (ElemI64 sections).
func (s *Section) Int64s() []int64 {
	if len(s.data) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&s.data[0])), len(s.data)/8)
}

// JSON unmarshals an ElemJSON section into v.
func (s *Section) JSON(v any) error {
	if s.Elem != ElemJSON {
		return fmt.Errorf("artifact: section %q holds %v, not JSON", s.Name, s.Elem)
	}
	return json.Unmarshal(s.data, v)
}

// verify recomputes the payload checksum.
func (s *Section) verify() error {
	if got := crc32.Checksum(s.data, castagnoli); got != s.crc {
		return fmt.Errorf("artifact: section %q checksum mismatch (stored %08x, computed %08x)", s.Name, s.crc, got)
	}
	return nil
}

// File is a parsed artifact: the section directory over one contiguous
// backing buffer. Close releases the backing (munmap when mapped); after
// Close every section view is invalid.
type File struct {
	sections []Section
	byName   map[string]*Section
	mapping  []byte // munmap target; nil for heap backings
	backing  string // "mmap" or "heap"
	closed   bool
}

// Backing reports how the payloads are held: "mmap" (views over the page
// cache) or "heap" (views over a private copy).
func (f *File) Backing() string { return f.backing }

// Section returns the named section, or nil when absent.
func (f *File) Section(name string) *Section { return f.byName[name] }

// Sections returns every section in file order.
func (f *File) Sections() []Section { return f.sections }

// Verify recomputes every payload checksum. On an mmap backing this faults
// in every page, so it is an explicit integrity pass, not part of Open.
func (f *File) Verify() error {
	for i := range f.sections {
		if err := f.sections[i].verify(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the backing memory. It is safe to call twice.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.mapping != nil {
		m := f.mapping
		f.mapping = nil
		return munmap(m)
	}
	return nil
}

// Sniff reports whether prefix (at least 8 bytes of a stream) begins a
// format-v4 artifact.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// Open attaches the artifact at path. On platforms with mmap support the
// payloads become zero-copy views over the page cache (Backing() ==
// "mmap"); otherwise the file is read into an aligned heap buffer. Open
// validates the header, the section table and its checksum, and every
// section's geometry; payload checksums are *not* recomputed on the mmap
// path (that would fault in the whole file — call Verify for a full
// integrity pass). Heap fallbacks verify payloads, since they touch every
// byte anyway.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > math.MaxInt {
		return nil, fmt.Errorf("artifact: %s is %d bytes, larger than the address space", path, size)
	}
	data, err := mmapFile(f, int(size))
	if err == nil {
		af, perr := parse(data, "mmap")
		if perr != nil {
			munmap(data)
			return nil, fmt.Errorf("artifact: %s: %w", path, perr)
		}
		af.mapping = data
		return af, nil
	}
	// No mmap on this platform (or the map failed): fall back to one
	// aligned read of the whole file.
	return readFallback(f, int(size), path)
}

// readFallback reads the artifact through an io.ReaderAt into an aligned
// heap buffer and verifies every payload checksum.
func readFallback(r io.ReaderAt, size int, name string) (*File, error) {
	buf := alignedBuf(size)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("artifact: %s: %w", name, err)
	}
	af, err := parse(buf, "heap")
	if err != nil {
		return nil, fmt.Errorf("artifact: %s: %w", name, err)
	}
	if err := af.Verify(); err != nil {
		return nil, fmt.Errorf("artifact: %s: %w", name, err)
	}
	return af, nil
}

// ReadFrom consumes a whole artifact from a stream into an aligned heap
// buffer, verifying every payload checksum. It is the io.Reader-source
// counterpart of Open (network transfers, in-memory round trips).
func ReadFrom(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Decode parses an artifact held in memory. The buffer is copied into
// aligned storage when misaligned for the widest element; payload checksums
// are always verified.
func Decode(data []byte) (*File, error) {
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		buf := alignedBuf(len(data))
		copy(buf, data)
		data = buf
	}
	af, err := parse(data, "heap")
	if err != nil {
		return nil, err
	}
	if err := af.Verify(); err != nil {
		return nil, err
	}
	return af, nil
}

// alignedBuf allocates n bytes whose base address is 8-byte aligned, so
// int64 views over any 64-byte-aligned section offset stay aligned.
func alignedBuf(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)[:n:n]
}

// parse builds the section directory over data. Every size and offset is
// validated against len(data) before any dependent allocation.
func parse(data []byte, backing string) (*File, error) {
	if !hostLittle {
		return nil, fmt.Errorf("v4 artifacts need a little-endian host (use the gob format)")
	}
	if !Sniff(data) {
		return nil, fmt.Errorf("not a v4 artifact (bad magic)")
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("truncated header: %d bytes", len(data))
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("format version %d, this build reads %d", v, Version)
	}
	nsec := int(le.Uint32(data[12:16]))
	if nsec < 0 || nsec > maxSections {
		return nil, fmt.Errorf("implausible section count %d", nsec)
	}
	if fsize := le.Uint64(data[16:24]); fsize != uint64(len(data)) {
		return nil, fmt.Errorf("header declares %d bytes, artifact holds %d (truncated or padded)", fsize, len(data))
	}
	tableEnd := headerSize + nsec*entrySize
	if tableEnd > len(data) {
		return nil, fmt.Errorf("section table (%d entries) exceeds the artifact's %d bytes", nsec, len(data))
	}
	table := data[headerSize:tableEnd]
	if got := crc32.Checksum(table, castagnoli); got != le.Uint32(data[24:28]) {
		return nil, fmt.Errorf("section table checksum mismatch")
	}
	af := &File{
		sections: make([]Section, nsec),
		byName:   make(map[string]*Section, nsec),
		backing:  backing,
	}
	for i := 0; i < nsec; i++ {
		ent := table[i*entrySize : (i+1)*entrySize]
		name := trimName(ent[:maxName])
		if name == "" {
			return nil, fmt.Errorf("section %d has an empty name", i)
		}
		off := le.Uint64(ent[16:24])
		length := le.Uint64(ent[24:32])
		rows := le.Uint64(ent[32:40])
		cols := le.Uint64(ent[40:48])
		kind := ElemKind(le.Uint32(ent[48:52]))
		if kind >= elemKinds {
			return nil, fmt.Errorf("section %q has unknown element kind %d", name, kind)
		}
		if off%align != 0 {
			return nil, fmt.Errorf("section %q offset %d not %d-byte aligned", name, off, align)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("section %q spans [%d, %d+%d) outside the artifact's %d bytes", name, off, off, length, len(data))
		}
		es := uint64(kind.elemSize())
		if length%es != 0 {
			return nil, fmt.Errorf("section %q length %d not a multiple of the %d-byte element", name, length, es)
		}
		if rows > 0 || cols > 0 {
			if cols == 0 || rows > math.MaxInt64/cols || rows*cols != length/es {
				return nil, fmt.Errorf("section %q declares %d×%d elements but holds %d", name, rows, cols, length/es)
			}
		}
		if _, dup := af.byName[name]; dup {
			return nil, fmt.Errorf("duplicate section %q", name)
		}
		s := &af.sections[i]
		*s = Section{
			Name: name,
			Elem: kind,
			Rows: int(rows),
			Cols: int(cols),
			crc:  le.Uint32(ent[52:56]),
			data: data[off : off+length : off+length],
		}
		af.byName[name] = s
	}
	return af, nil
}

func trimName(b []byte) string {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return string(b[:n])
}

// Writer accumulates sections and serializes them as one v4 artifact. Add*
// methods retain the given slices (no copies) until WriteTo runs.
type Writer struct {
	sections []wSection
	err      error
}

type wSection struct {
	name       string
	elem       ElemKind
	rows, cols int
	data       []byte
}

// NewWriter returns an empty artifact writer.
func NewWriter() *Writer { return &Writer{} }

func (w *Writer) add(name string, kind ElemKind, rows, cols int, data []byte) {
	if w.err != nil {
		return
	}
	if len(name) == 0 || len(name) > maxName {
		w.err = fmt.Errorf("artifact: section name %q must be 1–%d bytes", name, maxName)
		return
	}
	for _, s := range w.sections {
		if s.name == name {
			w.err = fmt.Errorf("artifact: duplicate section %q", name)
			return
		}
	}
	if len(w.sections) >= maxSections {
		w.err = fmt.Errorf("artifact: too many sections (%d)", maxSections)
		return
	}
	w.sections = append(w.sections, wSection{name: name, elem: kind, rows: rows, cols: cols, data: data})
}

// AddBytes adds a raw byte section.
func (w *Writer) AddBytes(name string, data []byte) {
	w.add(name, ElemU8, 0, 0, data)
}

// AddFloat32s adds a float32 section; rows×cols documents a matrix shape
// (pass 0,0 for a plain vector).
func (w *Writer) AddFloat32s(name string, data []float32, rows, cols int) {
	w.add(name, ElemF32, rows, cols, f32Bytes(data))
}

// AddInt32s adds an int32 section.
func (w *Writer) AddInt32s(name string, data []int32) {
	var b []byte
	if len(data) > 0 {
		b = unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), len(data)*4)
	}
	w.add(name, ElemI32, 0, 0, b)
}

// AddInt64s adds an int64 section.
func (w *Writer) AddInt64s(name string, data []int64) {
	var b []byte
	if len(data) > 0 {
		b = unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), len(data)*8)
	}
	w.add(name, ElemI64, 0, 0, b)
}

// AddJSON adds a JSON metadata section.
func (w *Writer) AddJSON(name string, v any) {
	if w.err != nil {
		return
	}
	buf, err := json.Marshal(v)
	if err != nil {
		w.err = fmt.Errorf("artifact: marshaling section %q: %w", name, err)
		return
	}
	w.add(name, ElemJSON, 0, 0, buf)
}

func f32Bytes(data []float32) []byte {
	if len(data) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), len(data)*4)
}

var zeroPad [align]byte

// WriteTo serializes the artifact: header, section table, then each payload
// at its 64-byte-aligned offset. The byte stream is deterministic for a
// given sequence of Add calls.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	le := binary.LittleEndian
	nsec := len(w.sections)
	// Lay out payload offsets.
	offsets := make([]uint64, nsec)
	pos := uint64(headerSize + nsec*entrySize)
	for i, s := range w.sections {
		pos = (pos + align - 1) / align * align
		offsets[i] = pos
		pos += uint64(len(s.data))
	}
	total := pos

	table := make([]byte, nsec*entrySize)
	for i, s := range w.sections {
		ent := table[i*entrySize : (i+1)*entrySize]
		copy(ent[:maxName], s.name)
		le.PutUint64(ent[16:24], offsets[i])
		le.PutUint64(ent[24:32], uint64(len(s.data)))
		le.PutUint64(ent[32:40], uint64(s.rows))
		le.PutUint64(ent[40:48], uint64(s.cols))
		le.PutUint32(ent[48:52], uint32(s.elem))
		le.PutUint32(ent[52:56], crc32.Checksum(s.data, castagnoli))
	}

	var header [headerSize]byte
	copy(header[:8], Magic)
	le.PutUint32(header[8:12], Version)
	le.PutUint32(header[12:16], uint32(nsec))
	le.PutUint64(header[16:24], total)
	le.PutUint32(header[24:28], crc32.Checksum(table, castagnoli))

	var written int64
	emit := func(b []byte) error {
		n, err := out.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(header[:]); err != nil {
		return written, err
	}
	if err := emit(table); err != nil {
		return written, err
	}
	cur := uint64(headerSize + nsec*entrySize)
	for i, s := range w.sections {
		if pad := offsets[i] - cur; pad > 0 {
			if err := emit(zeroPad[:pad]); err != nil {
				return written, err
			}
			cur += pad
		}
		if err := emit(s.data); err != nil {
			return written, err
		}
		cur += uint64(len(s.data))
	}
	return written, nil
}
