package artifact

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// buildSample writes a small artifact exercising every element kind and
// returns its bytes.
func buildSample(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.AddJSON("meta", map[string]any{"kind": "pq", "n": 3})
	w.AddFloat32s("vecs", []float32{1, 2, 3, 4, 5, 6}, 2, 3)
	w.AddBytes("codes", []byte{9, 8, 7, 6, 5})
	w.AddInt32s("rows", []int32{0, 1, 2})
	w.AddInt64s("offs", []int64{0, 2, 5})
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func checkSample(t *testing.T, af *File) {
	t.Helper()
	var meta struct {
		Kind string `json:"kind"`
		N    int    `json:"n"`
	}
	if err := af.Section("meta").JSON(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.Kind != "pq" || meta.N != 3 {
		t.Fatalf("meta round trip: %+v", meta)
	}
	vecs := af.Section("vecs")
	if vecs.Rows != 2 || vecs.Cols != 3 {
		t.Fatalf("vecs shape %dx%d", vecs.Rows, vecs.Cols)
	}
	got := vecs.Float32s()
	want := []float32{1, 2, 3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vecs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if c := got[:0]; cap(c) != len(want) {
		t.Fatalf("section view capacity %d leaks past its length %d", cap(got), len(want))
	}
	if b := af.Section("codes").Bytes(); !bytes.Equal(b, []byte{9, 8, 7, 6, 5}) {
		t.Fatalf("codes = %v", b)
	}
	if r := af.Section("rows").Int32s(); len(r) != 3 || r[2] != 2 {
		t.Fatalf("rows = %v", r)
	}
	if o := af.Section("offs").Int64s(); len(o) != 3 || o[2] != 5 {
		t.Fatalf("offs = %v", o)
	}
	if af.Section("missing") != nil {
		t.Fatal("missing section should be nil")
	}
	if err := af.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripDecode(t *testing.T) {
	raw := buildSample(t)
	af, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if af.Backing() != "heap" {
		t.Fatalf("Decode backing = %q", af.Backing())
	}
	checkSample(t, af)
}

func TestRoundTripReadFrom(t *testing.T) {
	raw := buildSample(t)
	af, err := ReadFrom(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	checkSample(t, af)
}

func TestRoundTripOpenMmap(t *testing.T) {
	raw := buildSample(t)
	path := filepath.Join(t.TempDir(), "a.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	af, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	if runtime.GOOS == "linux" && af.Backing() != "mmap" {
		t.Fatalf("Open backing = %q, want mmap on linux", af.Backing())
	}
	checkSample(t, af)
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

func TestSectionAlignment(t *testing.T) {
	raw := buildSample(t)
	af, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	nsec := int(le.Uint32(raw[12:16]))
	for i := 0; i < nsec; i++ {
		ent := raw[headerSize+i*entrySize : headerSize+(i+1)*entrySize]
		if off := le.Uint64(ent[16:24]); off%align != 0 {
			t.Fatalf("section %d at offset %d, not %d-aligned", i, off, align)
		}
	}
	_ = af
}

// TestCorruption flips bytes across the artifact and asserts the parser
// reports an error (never panics, never silently succeeds) for header,
// table, and — on the verifying Decode path — payload corruption.
func TestCorruption(t *testing.T) {
	raw := buildSample(t)
	for pos := 0; pos < len(raw); pos += 7 {
		mut := bytes.Clone(raw)
		mut[pos] ^= 0xff
		if af, err := Decode(mut); err == nil {
			// A flip inside reserved padding is the only tolerable survival;
			// anything else must fail the table or payload checksum.
			if af.Verify() == nil && !inReserved(raw, pos) {
				t.Fatalf("corruption at byte %d went undetected", pos)
			}
		}
	}
}

// inReserved reports whether pos falls in header/table reserved bytes or
// alignment padding — regions no checksum covers.
func inReserved(raw []byte, pos int) bool {
	le := binary.LittleEndian
	if pos < headerSize {
		return pos >= 28 // header reserved area
	}
	nsec := int(le.Uint32(raw[12:16]))
	if pos < headerSize+nsec*entrySize {
		return false // table is fully checksummed
	}
	// Outside every section payload → padding.
	for i := 0; i < nsec; i++ {
		ent := raw[headerSize+i*entrySize : headerSize+(i+1)*entrySize]
		off, ln := le.Uint64(ent[16:24]), le.Uint64(ent[24:32])
		if uint64(pos) >= off && uint64(pos) < off+ln {
			return false
		}
	}
	return true
}

func TestTruncation(t *testing.T) {
	raw := buildSample(t)
	for _, n := range []int{0, 4, 8, headerSize - 1, headerSize, headerSize + entrySize, len(raw) - 1} {
		if _, err := Decode(raw[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestWriterErrors(t *testing.T) {
	w := NewWriter()
	w.AddBytes("dup", nil)
	w.AddBytes("dup", nil)
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("duplicate section accepted")
	}
	w = NewWriter()
	w.AddBytes("this-name-is-far-too-long-for-an-entry", nil)
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("over-long section name accepted")
	}
}

func TestEmptyArtifact(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	af, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(af.Sections()) != 0 {
		t.Fatalf("%d sections in empty artifact", len(af.Sections()))
	}
}

// FuzzParse hammers the section parser directly with arbitrary bytes: it
// must error or succeed, never panic, and never allocate huge buffers from
// a tiny corrupt input (the driver enforces that indirectly via OOM).
func FuzzParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	raw := NewWriter()
	raw.AddBytes("codes", []byte{1, 2, 3})
	raw.AddFloat32s("vecs", []float32{1, 2}, 1, 2)
	var buf bytes.Buffer
	raw.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:40])
	f.Fuzz(func(t *testing.T, data []byte) {
		af, err := Decode(data)
		if err != nil {
			return
		}
		for i := range af.Sections() {
			s := &af.Sections()[i]
			switch s.Elem {
			case ElemF32:
				_ = s.Float32s()
			case ElemI32:
				_ = s.Int32s()
			case ElemI64:
				_ = s.Int64s()
			default:
				_ = s.Bytes()
			}
		}
	})
}
