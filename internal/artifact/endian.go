package artifact

import "unsafe"

// hostLittle reports whether this machine stores integers little-endian —
// the only byte order the v4 container's zero-copy views can serve, since
// payloads are raw native slices on write and reinterpreted slices on read.
// Every mainstream Go target (amd64, arm64, riscv64, 386, arm, wasm) is
// little-endian; on the big-endian exceptions (s390x, some mips/ppc
// variants) the model serializer falls back to the self-describing gob
// format instead of producing byte-swapped artifacts.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Supported reports whether this host can read and write v4 artifacts.
func Supported() bool { return hostLittle }
