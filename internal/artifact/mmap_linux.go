//go:build linux

package artifact

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared — the attach path:
// payload pages are faulted in from the page cache on first touch, never
// copied into the Go heap. An empty file maps to an empty (heap) slice,
// since mmap rejects zero-length mappings.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping created by mmapFile.
func munmap(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
