//go:build !linux

package artifact

import (
	"fmt"
	"os"
)

// errNoMmap makes Open take the aligned-read fallback on platforms where
// this package does not wire up memory mapping. The artifact still loads —
// with one copy into the heap and full checksum verification — it just
// is not zero-copy.
var errNoMmap = fmt.Errorf("artifact: mmap not supported on this platform")

func mmapFile(_ *os.File, _ int) ([]byte, error) { return nil, errNoMmap }

func munmap(_ []byte) error { return nil }
