package baselines

import (
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
)

// fixedCorpus builds a tiny corpus with known contents.
func fixedCorpus() (*lookup.Corpus, map[string]kg.EntityID) {
	labels := []string{
		"Germany", "France", "Berlin", "East Berlin", "Bermuda",
		"United Kingdom", "New Zealand", "Zealandia Corp", "Francium Labs",
		"German Empire",
	}
	c := &lookup.Corpus{}
	ids := map[string]kg.EntityID{}
	for i, l := range labels {
		id := kg.EntityID(i)
		ids[l] = id
		c.Mentions = append(c.Mentions, lookup.Mention{Text: l, Entity: id})
	}
	return c, ids
}

// services returns every baseline over the corpus.
func services(c *lookup.Corpus) []lookup.Service {
	return []lookup.Service{
		NewExact(c),
		NewLevenshteinScan(c),
		NewFuzzyWuzzy(c),
		NewQGram(c),
		NewElastic(c),
		NewLSH(c),
	}
}

func contains(cands []lookup.Candidate, id kg.EntityID) bool {
	for _, c := range cands {
		if c.ID == id {
			return true
		}
	}
	return false
}

func TestAllServicesFindExactLabel(t *testing.T) {
	c, ids := fixedCorpus()
	for _, s := range services(c) {
		res := s.Lookup("Germany", 5)
		if !contains(res, ids["Germany"]) {
			t.Errorf("%s missed exact label Germany: %+v", s.Name(), res)
		}
	}
}

func TestFuzzyServicesTolerateTypo(t *testing.T) {
	c, ids := fixedCorpus()
	fuzzy := []lookup.Service{
		NewLevenshteinScan(c),
		NewFuzzyWuzzy(c),
		NewQGram(c),
		NewElastic(c),
	}
	for _, s := range fuzzy {
		res := s.Lookup("Germny", 5) // dropped letter
		if !contains(res, ids["Germany"]) {
			t.Errorf("%s missed typo'd Germany: %+v", s.Name(), res)
		}
	}
}

func TestExactMatchCollapsesOnTypo(t *testing.T) {
	c, _ := fixedCorpus()
	e := NewExact(c)
	if res := e.Lookup("Germny", 5); len(res) != 0 {
		t.Fatalf("exact match should miss typos, got %+v", res)
	}
	// Case-insensitive on clean input.
	if res := e.Lookup("germany", 5); len(res) != 1 {
		t.Fatalf("exact match should be case-insensitive, got %+v", res)
	}
}

func TestRankingPrefersCloserString(t *testing.T) {
	c, ids := fixedCorpus()
	for _, s := range []lookup.Service{NewLevenshteinScan(c), NewFuzzyWuzzy(c), NewQGram(c)} {
		res := s.Lookup("Berlin", 3)
		if len(res) == 0 || res[0].ID != ids["Berlin"] {
			t.Errorf("%s did not rank Berlin first: %+v", s.Name(), res)
		}
	}
}

func TestElasticTokenMatch(t *testing.T) {
	c, ids := fixedCorpus()
	e := NewElastic(c)
	// Token "Berlin" appears in two mentions; both should surface.
	res := e.Lookup("Berlin", 5)
	if !contains(res, ids["Berlin"]) || !contains(res, ids["East Berlin"]) {
		t.Fatalf("elastic token matching incomplete: %+v", res)
	}
	// Shorter exact doc should outrank the longer partial doc.
	if res[0].ID != ids["Berlin"] {
		t.Fatalf("elastic ranked %v first", res[0])
	}
}

func TestElasticSwappedTokens(t *testing.T) {
	c, ids := fixedCorpus()
	e := NewElastic(c)
	res := e.Lookup("Kingdom United", 3)
	if len(res) == 0 || res[0].ID != ids["United Kingdom"] {
		t.Fatalf("elastic should be order-insensitive: %+v", res)
	}
}

func TestLSHFindsNearDuplicates(t *testing.T) {
	c, ids := fixedCorpus()
	l := NewLSH(c)
	// One transposition keeps most trigrams intact.
	res := l.Lookup("Gemrany", 5)
	if !contains(res, ids["Germany"]) {
		t.Fatalf("LSH missed near-duplicate: %+v", res)
	}
}

func TestLSHMissesHeavyNoise(t *testing.T) {
	c, _ := fixedCorpus()
	l := NewLSH(c)
	// An abbreviation shares almost no q-grams — LSH is expected to fail
	// here (its Table V failure mode).
	res := l.Lookup("UK", 5)
	for _, r := range res {
		if r.Score > 0.9 {
			t.Fatalf("LSH should not confidently match an abbreviation: %+v", res)
		}
	}
}

func TestKTruncation(t *testing.T) {
	c, _ := fixedCorpus()
	for _, s := range services(c) {
		res := s.Lookup("Germany", 2)
		if len(res) > 2 {
			t.Errorf("%s returned %d > k results", s.Name(), len(res))
		}
	}
}

func TestDedupeAcrossAliases(t *testing.T) {
	// Corpus with aliases: multiple mentions of the same entity must
	// dedupe to one candidate.
	c := &lookup.Corpus{Mentions: []lookup.Mention{
		{Text: "Germany", Entity: 1},
		{Text: "Germany", Entity: 1}, // variant spelling, same entity
		{Text: "France", Entity: 2},
	}}
	s := NewLevenshteinScan(c)
	res := s.Lookup("Germany", 5)
	count := 0
	for _, r := range res {
		if r.ID == 1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("entity 1 appears %d times, want deduped", count)
	}
}

func TestEmptyQuery(t *testing.T) {
	c, _ := fixedCorpus()
	for _, s := range services(c) {
		res := s.Lookup("", 3)
		if len(res) > 3 {
			t.Errorf("%s returned %d results for empty query", s.Name(), len(res))
		}
	}
}

func TestCorpusFromGraphAliasToggle(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
	labelsOnly := lookup.CorpusFromGraph(g, false)
	withAliases := lookup.CorpusFromGraph(g, true)
	if len(labelsOnly.Mentions) != len(g.Entities) {
		t.Fatalf("labels-only corpus has %d mentions", len(labelsOnly.Mentions))
	}
	if len(withAliases.Mentions) <= len(labelsOnly.Mentions) {
		t.Fatal("alias corpus should be larger")
	}
	if withAliases.SizeBytes() <= labelsOnly.SizeBytes() {
		t.Fatal("alias corpus should cost more bytes")
	}
}

func TestQGramIndexSize(t *testing.T) {
	c, _ := fixedCorpus()
	g := NewQGram(c)
	if g.SizeBytes() <= 0 {
		t.Fatal("q-gram index size should be positive")
	}
}

func TestElasticIndexSize(t *testing.T) {
	c, _ := fixedCorpus()
	e := NewElastic(c)
	if e.SizeBytes() <= 0 {
		t.Fatal("elastic index size should be positive")
	}
}
