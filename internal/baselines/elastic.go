package baselines

import (
	"math"
	"sort"
	"strings"

	"emblookup/internal/lookup"
	"emblookup/internal/strutil"
)

// Elastic reproduces the ElasticSearch fuzzy-lookup configuration the paper
// describes: a BM25-scored inverted index where each mention is indexed
// both by its word tokens and by its character trigrams, and the final
// relevance is a weighted combination of the two scores. Word matches
// dominate on clean queries; the trigram channel provides the fuzziness
// that keeps misspelled queries from missing entirely.
type Elastic struct {
	corpus *lookup.Corpus

	words    *bm25Index
	trigrams *bm25Index

	// WordWeight and TrigramWeight blend the two BM25 channels.
	WordWeight, TrigramWeight float64
}

// NewElastic indexes the corpus.
func NewElastic(c *lookup.Corpus) *Elastic {
	e := &Elastic{corpus: c, WordWeight: 1.0, TrigramWeight: 0.7}
	e.words = newBM25Index(len(c.Mentions))
	e.trigrams = newBM25Index(len(c.Mentions))
	for i, m := range c.Mentions {
		e.words.add(int32(i), strutil.Tokenize(m.Text))
		e.trigrams.add(int32(i), strutil.QGramList(m.Text, 3))
	}
	e.words.finish()
	e.trigrams.finish()
	return e
}

// Name implements lookup.Service.
func (e *Elastic) Name() string { return "elastic-search" }

// Lookup scores the union of matching documents from both channels.
func (e *Elastic) Lookup(q string, k int) []lookup.Candidate {
	scores := make(map[int32]float64)
	e.words.score(strutil.Tokenize(q), e.WordWeight, scores)
	e.trigrams.score(strutil.QGramList(q, 3), e.TrigramWeight, scores)
	scored := make([]scoredMention, 0, len(scores))
	for mi, s := range scores {
		scored = append(scored, scoredMention{entity: e.corpus.Mentions[mi].Entity, score: s})
	}
	return rankMentions(scored, k)
}

// SizeBytes approximates the index storage.
func (e *Elastic) SizeBytes() int { return e.words.sizeBytes() + e.trigrams.sizeBytes() }

// ElasticOp hosts one of the paper's three syntactic operations — exact
// match, q-gram similarity, or Levenshtein distance — inside the
// ElasticSearch engine, mirroring the paper's setup ("we compare EMBLOOKUP
// against optimized implementations of these operations in Elastic
// Search"): candidates are gathered through the BM25 word+trigram channels
// and then verified/re-scored by the operation.
type ElasticOp struct {
	inner *Elastic
	op    string
}

// NewElasticExact hosts exact matching in ES.
func NewElasticExact(c *lookup.Corpus) *ElasticOp {
	return &ElasticOp{inner: NewElastic(c), op: "exact"}
}

// NewElasticQGram hosts q-gram similarity in ES.
func NewElasticQGram(c *lookup.Corpus) *ElasticOp {
	return &ElasticOp{inner: NewElastic(c), op: "qgram"}
}

// NewElasticLevenshtein hosts Levenshtein re-scoring in ES.
func NewElasticLevenshtein(c *lookup.Corpus) *ElasticOp {
	return &ElasticOp{inner: NewElastic(c), op: "levenshtein"}
}

// Name implements lookup.Service.
func (e *ElasticOp) Name() string {
	switch e.op {
	case "exact":
		return "exact-match"
	case "qgram":
		return "q-gram"
	default:
		return "levenshtein"
	}
}

// Lookup gathers an over-fetched BM25 candidate pool, then verifies with
// the hosted operation.
func (e *ElasticOp) Lookup(q string, k int) []lookup.Candidate {
	pool := e.inner.candidatePool(q, 4*k+16)
	var scored []scoredMention
	for _, mi := range pool {
		m := e.inner.corpus.Mentions[mi]
		switch e.op {
		case "exact":
			if strings.EqualFold(strings.TrimSpace(q), m.Text) {
				scored = append(scored, scoredMention{entity: m.Entity, score: 1})
			}
		case "qgram":
			if s := strutil.QGramSimilarity(q, m.Text, 3); s > 0.2 {
				scored = append(scored, scoredMention{entity: m.Entity, score: s})
			}
		default:
			const maxDist = 4
			if d := strutil.LevenshteinBounded(strings.ToLower(q), strings.ToLower(m.Text), maxDist); d <= maxDist {
				scored = append(scored, scoredMention{entity: m.Entity, score: 1 / (1 + float64(d))})
			}
		}
	}
	return rankMentions(scored, k)
}

// candidatePool returns the top mention indexes by blended BM25 score.
func (e *Elastic) candidatePool(q string, n int) []int32 {
	scores := make(map[int32]float64)
	e.words.score(strutil.Tokenize(q), e.WordWeight, scores)
	e.trigrams.score(strutil.QGramList(q, 3), e.TrigramWeight, scores)
	type hit struct {
		mi int32
		s  float64
	}
	hits := make([]hit, 0, len(scores))
	for mi, s := range scores {
		hits = append(hits, hit{mi, s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].s != hits[b].s {
			return hits[a].s > hits[b].s
		}
		return hits[a].mi < hits[b].mi
	})
	if len(hits) > n {
		hits = hits[:n]
	}
	out := make([]int32, len(hits))
	for i, h := range hits {
		out[i] = h.mi
	}
	return out
}

// bm25Index is a minimal BM25 inverted index (k1=1.2, b=0.75).
type bm25Index struct {
	postings map[string][]posting
	docLen   []int
	avgLen   float64
	nDocs    int
}

type posting struct {
	doc int32
	tf  int32
}

func newBM25Index(nDocs int) *bm25Index {
	return &bm25Index{postings: make(map[string][]posting), docLen: make([]int, nDocs), nDocs: nDocs}
}

func (ix *bm25Index) add(doc int32, terms []string) {
	ix.docLen[doc] = len(terms)
	counts := make(map[string]int32, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	for t, c := range counts {
		ix.postings[t] = append(ix.postings[t], posting{doc: doc, tf: c})
	}
}

func (ix *bm25Index) finish() {
	total := 0
	for _, l := range ix.docLen {
		total += l
	}
	if ix.nDocs > 0 {
		ix.avgLen = float64(total) / float64(ix.nDocs)
	}
	if ix.avgLen == 0 {
		ix.avgLen = 1
	}
}

const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// score accumulates weight·BM25(term, doc) into out for every query term.
func (ix *bm25Index) score(terms []string, weight float64, out map[int32]float64) {
	for _, t := range terms {
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		idf := math.Log(1 + (float64(ix.nDocs)-float64(len(plist))+0.5)/(float64(len(plist))+0.5))
		for _, p := range plist {
			tf := float64(p.tf)
			norm := tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*float64(ix.docLen[p.doc])/ix.avgLen))
			out[p.doc] += weight * idf * norm
		}
	}
}

func (ix *bm25Index) sizeBytes() int {
	n := 0
	for t, plist := range ix.postings {
		n += len(t) + 8*len(plist)
	}
	return n
}
