// Package baselines implements the comparison lookup services of Table V:
// exact match, a full Levenshtein scan, the FuzzyWuzzy ratio matcher, a
// q-gram inverted index, an ElasticSearch-style BM25 engine over words and
// trigrams with fuzzy expansion, and a MinHash-LSH approximate matcher.
// Every service indexes a lookup.Corpus and implements lookup.Service.
package baselines

import (
	"sort"
	"strings"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
)

// Exact is the exact-match lookup: a hash index over lowercased mention
// text. It is the fastest baseline on clean data and collapses on any typo,
// exactly as the paper's Table V shows.
type Exact struct {
	byText map[string][]kg.EntityID
}

// NewExact indexes the corpus.
func NewExact(c *lookup.Corpus) *Exact {
	e := &Exact{byText: make(map[string][]kg.EntityID, len(c.Mentions))}
	for _, m := range c.Mentions {
		key := strings.ToLower(m.Text)
		e.byText[key] = append(e.byText[key], m.Entity)
	}
	return e
}

// Name implements lookup.Service.
func (e *Exact) Name() string { return "exact-match" }

// Lookup returns the entities whose indexed mention equals q.
func (e *Exact) Lookup(q string, k int) []lookup.Candidate {
	ids := e.byText[strings.ToLower(strings.TrimSpace(q))]
	var out []lookup.Candidate
	for _, id := range ids {
		out = append(out, lookup.Candidate{ID: id, Score: 1})
	}
	return lookup.DedupeTopK(out, k)
}

// rankMentions scores every (mention, score) pair and returns the deduped
// top-k entities, best score first. Ties break by entity ID so services
// built over map-ordered intermediates stay deterministic.
func rankMentions(scored []scoredMention, k int) []lookup.Candidate {
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].score != scored[b].score {
			return scored[a].score > scored[b].score
		}
		return scored[a].entity < scored[b].entity
	})
	cands := make([]lookup.Candidate, len(scored))
	for i, s := range scored {
		cands[i] = lookup.Candidate{ID: s.entity, Score: s.score}
	}
	return lookup.DedupeTopK(cands, k)
}

type scoredMention struct {
	entity kg.EntityID
	score  float64
}
