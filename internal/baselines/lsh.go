package baselines

import (
	"emblookup/internal/lookup"
	"emblookup/internal/strutil"
)

// LSH is a MinHash locality-sensitive-hashing lookup over q-gram sets,
// following the Levenshtein-optimized LSH variant cited in the paper. Each
// mention's q-gram set is summarized by numHashes MinHash values; the
// signature is cut into bands, and mentions sharing any band bucket with
// the query become candidates, verified by edit distance. LSH trades recall
// for speed: heavily misspelled queries can miss every bucket, which is
// exactly the failure mode the paper's Table V shows (F-score 0.72 → 0.47
// under noise).
type LSH struct {
	corpus *lookup.Corpus
	q      int

	numHashes int
	bands     int
	rows      int
	seeds     []uint64

	buckets []map[uint64][]int32 // per band: bucket hash -> mention indexes
}

// NewLSH indexes the corpus with 32 MinHashes in 8 bands of 4 rows.
func NewLSH(c *lookup.Corpus) *LSH {
	l := &LSH{corpus: c, q: 3, numHashes: 32, bands: 8, rows: 4}
	l.seeds = make([]uint64, l.numHashes)
	s := uint64(0x51ab_c0ffee)
	for i := range l.seeds {
		s = s*6364136223846793005 + 1442695040888963407
		l.seeds[i] = s
	}
	l.buckets = make([]map[uint64][]int32, l.bands)
	for b := range l.buckets {
		l.buckets[b] = make(map[uint64][]int32)
	}
	for i, m := range c.Mentions {
		sig := l.signature(m.Text)
		for b := 0; b < l.bands; b++ {
			l.buckets[b][l.bandKey(sig, b)] = append(l.buckets[b][l.bandKey(sig, b)], int32(i))
		}
	}
	return l
}

// Name implements lookup.Service.
func (l *LSH) Name() string { return "lsh" }

func hash64(s string, seed uint64) uint64 {
	h := seed ^ 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// signature computes the MinHash signature of the q-gram set of s.
func (l *LSH) signature(s string) []uint64 {
	sig := make([]uint64, l.numHashes)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for gram := range strutil.QGrams(s, l.q) {
		for i, seed := range l.seeds {
			if h := hash64(gram, seed); h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// bandKey combines the rows of one band into a bucket key.
func (l *LSH) bandKey(sig []uint64, band int) uint64 {
	h := uint64(band) * 0x9e3779b97f4a7c15
	for r := 0; r < l.rows; r++ {
		h ^= sig[band*l.rows+r]
		h *= 1099511628211
	}
	return h
}

// Lookup gathers candidates from matching band buckets and verifies them by
// bounded edit distance.
func (l *LSH) Lookup(q string, k int) []lookup.Candidate {
	sig := l.signature(q)
	seen := make(map[int32]bool)
	var scored []scoredMention
	for b := 0; b < l.bands; b++ {
		for _, mi := range l.buckets[b][l.bandKey(sig, b)] {
			if seen[mi] {
				continue
			}
			seen[mi] = true
			m := l.corpus.Mentions[mi]
			d := strutil.LevenshteinBounded(q, m.Text, 6)
			scored = append(scored, scoredMention{entity: m.Entity, score: 1 / (1 + float64(d))})
		}
	}
	return rankMentions(scored, k)
}
