package baselines

import (
	"emblookup/internal/lookup"
	"emblookup/internal/strutil"
)

// QGram is an inverted-index lookup over character q-grams: candidate
// mentions are gathered by posting-list intersection counts and ranked by
// Dice similarity over the q-gram multisets. This is the classic
// filter-and-verify design for approximate string matching.
type QGram struct {
	corpus   *lookup.Corpus
	q        int
	postings map[string][]int32 // gram -> mention indexes
	// MinOverlap filters candidates sharing fewer grams with the query.
	MinOverlap int
}

// NewQGram indexes the corpus with trigrams.
func NewQGram(c *lookup.Corpus) *QGram {
	g := &QGram{corpus: c, q: 3, postings: make(map[string][]int32), MinOverlap: 2}
	for i, m := range c.Mentions {
		for gram := range strutil.QGrams(m.Text, g.q) {
			g.postings[gram] = append(g.postings[gram], int32(i))
		}
	}
	return g
}

// Name implements lookup.Service.
func (g *QGram) Name() string { return "q-gram" }

// Lookup gathers candidates from the query's gram posting lists, then
// verifies with the Dice q-gram similarity.
func (g *QGram) Lookup(q string, k int) []lookup.Candidate {
	counts := make(map[int32]int)
	for gram := range strutil.QGrams(q, g.q) {
		for _, mi := range g.postings[gram] {
			counts[mi]++
		}
	}
	var scored []scoredMention
	for mi, c := range counts {
		if c < g.MinOverlap {
			continue
		}
		m := g.corpus.Mentions[mi]
		scored = append(scored, scoredMention{
			entity: m.Entity,
			score:  strutil.QGramSimilarity(q, m.Text, g.q),
		})
	}
	return rankMentions(scored, k)
}

// SizeBytes approximates the posting-list storage of the index.
func (g *QGram) SizeBytes() int {
	n := 0
	for gram, list := range g.postings {
		n += len(gram) + 4*len(list)
	}
	return n
}
