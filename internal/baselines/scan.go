package baselines

import (
	"emblookup/internal/lookup"
	"emblookup/internal/strutil"
)

// LevenshteinScan scores every indexed mention by bounded edit distance and
// returns the closest entities — the "optimized Levenshtein distance
// module" style of lookup the paper's introduction cites submissions using
// (up to 96 hours of it). The bounded computation abandons a mention as
// soon as its distance exceeds the current cutoff.
type LevenshteinScan struct {
	corpus *lookup.Corpus
	// MaxDist bounds the per-mention computation; distances beyond it are
	// treated as misses. 4 covers all of the evaluation's noise classes
	// except abbreviation.
	MaxDist int
}

// NewLevenshteinScan builds the scanner over the corpus.
func NewLevenshteinScan(c *lookup.Corpus) *LevenshteinScan {
	return &LevenshteinScan{corpus: c, MaxDist: 4}
}

// Name implements lookup.Service.
func (l *LevenshteinScan) Name() string { return "levenshtein" }

// Lookup scans all mentions.
func (l *LevenshteinScan) Lookup(q string, k int) []lookup.Candidate {
	var scored []scoredMention
	for _, m := range l.corpus.Mentions {
		d := strutil.LevenshteinBounded(q, m.Text, l.MaxDist)
		if d > l.MaxDist {
			continue
		}
		scored = append(scored, scoredMention{entity: m.Entity, score: 1 / (1 + float64(d))})
	}
	return rankMentions(scored, k)
}

// FuzzyWuzzy scores every mention with the weighted FuzzyWuzzy ratio
// (fuzz.WRatio), the Python library's default used by SemTab submissions.
// It is the most expensive scan in the suite — each query pays a token-sort
// and token-set comparison against every mention — which is why the paper
// reports ~89× speedup over it.
type FuzzyWuzzy struct {
	corpus *lookup.Corpus
	// Cutoff discards candidates scoring below it (0-100).
	Cutoff int
}

// NewFuzzyWuzzy builds the matcher over the corpus.
func NewFuzzyWuzzy(c *lookup.Corpus) *FuzzyWuzzy {
	return &FuzzyWuzzy{corpus: c, Cutoff: 55}
}

// Name implements lookup.Service.
func (f *FuzzyWuzzy) Name() string { return "fuzzywuzzy" }

// Lookup scans all mentions with WRatio.
func (f *FuzzyWuzzy) Lookup(q string, k int) []lookup.Candidate {
	var scored []scoredMention
	for _, m := range f.corpus.Mentions {
		r := strutil.WRatio(q, m.Text)
		if r < f.Cutoff {
			continue
		}
		scored = append(scored, scoredMention{entity: m.Entity, score: float64(r)})
	}
	return rankMentions(scored, k)
}
