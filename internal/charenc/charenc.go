// Package charenc implements the character-level input encoding of Section
// III-B: an alphabet over the entity mentions and the one-hot matrix
// transformation that turns a mention into an |A|×L binary matrix whose i-th
// column one-hot-encodes the i-th character.
package charenc

import (
	"strings"

	"emblookup/internal/mathx"
)

// Alphabet maps characters to dense positional indexes. Characters outside
// the alphabet map to the shared unknown slot so that arbitrary query
// strings can always be encoded.
type Alphabet struct {
	pos     map[rune]int
	runes   []rune
	unknown int
}

// DefaultAlphabetRunes is the character inventory used when building an
// alphabet without scanning a corpus: lowercase letters, digits, and common
// punctuation found in entity mentions.
const DefaultAlphabetRunes = "abcdefghijklmnopqrstuvwxyz0123456789 .'-()&,/"

// NewAlphabet builds an alphabet over the given runes plus one unknown slot.
// Input characters are matched case-insensitively (mentions are lowercased
// before encoding).
func NewAlphabet(runes string) *Alphabet {
	a := &Alphabet{pos: make(map[rune]int)}
	for _, r := range runes {
		if _, ok := a.pos[r]; ok {
			continue
		}
		a.pos[r] = len(a.runes)
		a.runes = append(a.runes, r)
	}
	a.unknown = len(a.runes)
	return a
}

// DefaultAlphabet returns the standard alphabet.
func DefaultAlphabet() *Alphabet { return NewAlphabet(DefaultAlphabetRunes) }

// AlphabetFromMentions scans mentions and builds an alphabet over every
// character that appears, in first-seen order.
func AlphabetFromMentions(mentions []string) *Alphabet {
	var b strings.Builder
	seen := make(map[rune]bool)
	for _, m := range mentions {
		for _, r := range strings.ToLower(m) {
			if !seen[r] {
				seen[r] = true
				b.WriteRune(r)
			}
		}
	}
	return NewAlphabet(b.String())
}

// Size returns |A| including the unknown slot.
func (a *Alphabet) Size() int { return len(a.runes) + 1 }

// Pos returns the positional index of r (lowercased), or the unknown slot.
func (a *Alphabet) Pos(r rune) int {
	if p, ok := a.pos[lower(r)]; ok {
		return p
	}
	return a.unknown
}

// Runes returns the alphabet's characters in positional order (excluding
// the unknown slot).
func (a *Alphabet) Runes() string { return string(a.runes) }

func lower(r rune) rune {
	if 'A' <= r && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

// Encoder converts mentions into one-hot matrices of a fixed maximum length
// L. Mentions longer than L are truncated; shorter ones are zero-padded, as
// in the paper.
type Encoder struct {
	Alphabet *Alphabet
	MaxLen   int
}

// NewEncoder returns an encoder with maximum mention length maxLen.
func NewEncoder(a *Alphabet, maxLen int) *Encoder {
	if maxLen <= 0 {
		maxLen = 32
	}
	return &Encoder{Alphabet: a, MaxLen: maxLen}
}

// Encode returns the one-hot matrix X of shape |A|×L for mention m: column i
// one-hot-encodes character i. The matrix is freshly allocated.
func (e *Encoder) Encode(m string) *mathx.Matrix {
	X := mathx.NewMatrix(e.Alphabet.Size(), e.MaxLen)
	e.EncodeInto(m, X)
	return X
}

// EncodeInto fills X (which must be |A|×L) with the encoding of m, zeroing
// it first. Reusing a matrix avoids per-query allocation in bulk encoding.
func (e *Encoder) EncodeInto(m string, X *mathx.Matrix) {
	X.Zero()
	i := 0
	for _, r := range strings.ToLower(m) {
		if i >= e.MaxLen {
			break
		}
		X.Set(e.Alphabet.Pos(r), i, 1)
		i++
	}
}

// EncodeIndexes returns the per-position alphabet indexes of m, truncated to
// MaxLen and padded with -1. This sparse form lets the first convolution
// layer skip the dense one-hot multiply.
func (e *Encoder) EncodeIndexes(m string) []int {
	return e.EncodeIndexesInto(m, nil)
}

// EncodeIndexesInto is EncodeIndexes writing into buf, which is reused when
// its capacity suffices (the returned slice always has length MaxLen).
// Reusing a buffer keeps the steady-state query path allocation-free.
func (e *Encoder) EncodeIndexesInto(m string, buf []int) []int {
	if cap(buf) < e.MaxLen {
		buf = make([]int, e.MaxLen)
	}
	out := buf[:e.MaxLen]
	for i := range out {
		out[i] = -1
	}
	i := 0
	for _, r := range strings.ToLower(m) {
		if i >= e.MaxLen {
			break
		}
		out[i] = e.Alphabet.Pos(r)
		i++
	}
	return out
}
