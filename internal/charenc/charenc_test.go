package charenc

import (
	"testing"
	"testing/quick"
)

func TestAlphabetPositions(t *testing.T) {
	a := NewAlphabet("abc")
	if a.Size() != 4 { // 3 + unknown
		t.Fatalf("Size = %d", a.Size())
	}
	if a.Pos('a') != 0 || a.Pos('b') != 1 || a.Pos('c') != 2 {
		t.Fatal("positions wrong")
	}
	if a.Pos('z') != 3 {
		t.Fatalf("unknown slot = %d, want 3", a.Pos('z'))
	}
	if a.Pos('A') != 0 {
		t.Fatal("Pos must be case-insensitive")
	}
}

func TestAlphabetDedup(t *testing.T) {
	a := NewAlphabet("aab")
	if a.Size() != 3 {
		t.Fatalf("duplicate rune not deduped: size %d", a.Size())
	}
}

func TestAlphabetFromMentions(t *testing.T) {
	a := AlphabetFromMentions([]string{"Ab", "bc"})
	// lowercased: a, b, c
	if a.Size() != 4 {
		t.Fatalf("Size = %d", a.Size())
	}
	if a.Runes() != "abc" {
		t.Fatalf("Runes = %q", a.Runes())
	}
}

func TestEncodeShape(t *testing.T) {
	a := NewAlphabet("abcde")
	e := NewEncoder(a, 4)
	X := e.Encode("cad")
	if X.Rows != a.Size() || X.Cols != 4 {
		t.Fatalf("shape %dx%d", X.Rows, X.Cols)
	}
	// Column 0 one-hot 'c' (pos 2), col 1 'a' (0), col 2 'd' (3), col 3 zero.
	if X.At(2, 0) != 1 || X.At(0, 1) != 1 || X.At(3, 2) != 1 {
		t.Fatal("one-hot placement wrong")
	}
	var col3 float32
	for r := 0; r < X.Rows; r++ {
		col3 += X.At(r, 3)
	}
	if col3 != 0 {
		t.Fatal("padding column must be zero")
	}
}

func TestEncodeTruncates(t *testing.T) {
	a := NewAlphabet("ab")
	e := NewEncoder(a, 2)
	X := e.Encode("abab")
	total := float32(0)
	for _, v := range X.Data {
		total += v
	}
	if total != 2 {
		t.Fatalf("truncated encoding has %v ones, want 2", total)
	}
}

// Property: every column of an encoding has at most one 1, and the number of
// ones equals min(len(mention), L).
func TestEncodeOneHotProperty(t *testing.T) {
	a := DefaultAlphabet()
	e := NewEncoder(a, 16)
	f := func(s string) bool {
		if len(s) > 100 {
			return true
		}
		X := e.Encode(s)
		ones := 0
		for c := 0; c < X.Cols; c++ {
			colSum := float32(0)
			for r := 0; r < X.Rows; r++ {
				colSum += X.At(r, c)
			}
			if colSum > 1 {
				return false
			}
			ones += int(colSum)
		}
		runes := 0
		for range s {
			runes++
		}
		want := runes
		if want > 16 {
			want = 16
		}
		return ones == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIntoReuse(t *testing.T) {
	a := NewAlphabet("ab")
	e := NewEncoder(a, 3)
	X := e.Encode("ab")
	e.EncodeInto("b", X)
	// Old content must be gone.
	if X.At(0, 0) != 0 || X.At(1, 0) != 1 {
		t.Fatal("EncodeInto did not reset the matrix")
	}
}

func TestEncodeIndexes(t *testing.T) {
	a := NewAlphabet("ab")
	e := NewEncoder(a, 4)
	idx := e.EncodeIndexes("ba")
	if idx[0] != 1 || idx[1] != 0 || idx[2] != -1 || idx[3] != -1 {
		t.Fatalf("EncodeIndexes = %v", idx)
	}
}

func TestNewEncoderDefaultLen(t *testing.T) {
	e := NewEncoder(DefaultAlphabet(), 0)
	if e.MaxLen != 32 {
		t.Fatalf("default MaxLen = %d", e.MaxLen)
	}
}
