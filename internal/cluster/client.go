package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"emblookup/internal/server"
)

// nodeClient is the router's view of one partition node: the HTTP client,
// the per-node health state machine, and the hedging/retry counters.
//
// Health follows a simple degradation protocol: a node that fails
// failThreshold consecutive requests is marked unhealthy and skipped by the
// scatter (responses turn partial) until a /healthz probe succeeds, at
// which point it rejoins. Success on the request path also heals the node
// immediately — a probe is just the cheap way back when no traffic is being
// risked on it.
type nodeClient struct {
	partition int
	url       string
	hc        *http.Client

	failThreshold int32
	consecFails   atomic.Int32
	down          atomic.Bool

	requests  atomic.Int64
	failures  atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

func newNodeClient(partition int, url string, failThreshold int) *nodeClient {
	if failThreshold <= 0 {
		failThreshold = 3
	}
	return &nodeClient{
		partition:     partition,
		url:           url,
		hc:            &http.Client{},
		failThreshold: int32(failThreshold),
	}
}

// healthy reports whether the scatter should include this node.
func (c *nodeClient) healthy() bool { return !c.down.Load() }

func (c *nodeClient) markSuccess() {
	c.consecFails.Store(0)
	c.down.Store(false)
}

func (c *nodeClient) markFailure() {
	c.failures.Add(1)
	if c.consecFails.Add(1) >= c.failThreshold {
		c.down.Store(true)
	}
}

// search runs one scatter leg: POST the embedded query batch to the node's
// partition-scoped endpoint under the router's full request discipline —
// per-attempt timeout, bounded retries with real backoff, and a hedged
// duplicate raced against a straggling attempt. The request body is
// marshaled once and reused across attempts and hedges.
func (c *nodeClient) search(ctx context.Context, k int, embs [][]float32, timeout, hedgeAfter time.Duration, retry RetryPolicy) ([][]server.PartitionHit, error) {
	body, err := json.Marshal(server.PartitionSearchRequest{K: k, Queries: embs})
	if err != nil {
		return nil, err
	}
	var out [][]server.PartitionHit
	err = retry.Do(RealSleep, func(int) error {
		res, err := c.hedged(ctx, body, len(embs), timeout, hedgeAfter)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	if err != nil {
		c.markFailure()
		return nil, err
	}
	c.markSuccess()
	return out, nil
}

type searchReply struct {
	hits   [][]server.PartitionHit
	err    error
	hedged bool // true when produced by the duplicate request
}

// hedged issues the request and, if no reply lands within hedgeAfter,
// races a duplicate against the straggler — the first success wins and the
// loser is cancelled by the shared context when the caller returns.
// hedgeAfter ≤ 0 disables hedging.
func (c *nodeClient) hedged(ctx context.Context, body []byte, nq int, timeout, hedgeAfter time.Duration) ([][]server.PartitionHit, error) {
	if hedgeAfter <= 0 {
		return c.post(ctx, body, nq, timeout)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts the losing duplicate as soon as a winner returns
	ch := make(chan searchReply, 2)
	fire := func(isHedge bool) {
		go func() {
			hits, err := c.post(cctx, body, nq, timeout)
			ch <- searchReply{hits: hits, err: err, hedged: isHedge}
		}()
	}
	fire(false)
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	inFlight := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					c.hedgeWins.Add(1)
				}
				return r.hits, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			inFlight--
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			c.hedges.Add(1)
			fire(true)
			inFlight++
		}
	}
}

// post is one attempt against /partition/search.
func (c *nodeClient) post(ctx context.Context, body []byte, nq int, timeout time.Duration) ([][]server.PartitionHit, error) {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c.requests.Add(1)
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, c.url+"/partition/search", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: node %s: status %d", c.url, resp.StatusCode)
	}
	var psr server.PartitionSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&psr); err != nil {
		return nil, fmt.Errorf("cluster: node %s: decoding response: %w", c.url, err)
	}
	if len(psr.Results) != nq {
		return nil, fmt.Errorf("cluster: node %s: %d result lists for %d queries", c.url, len(psr.Results), nq)
	}
	return psr.Results, nil
}

// probe checks /healthz with a short timeout; success heals the node.
func (c *nodeClient) probe(ctx context.Context, timeout time.Duration) bool {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	c.markSuccess()
	return true
}

// NodeStats is one node's health and traffic snapshot in RouterStats.
type NodeStats struct {
	Partition           int    `json:"partition"`
	URL                 string `json:"url"`
	Healthy             bool   `json:"healthy"`
	Requests            int64  `json:"requests"`
	Failures            int64  `json:"failures"`
	Hedges              int64  `json:"hedges"`
	HedgeWins           int64  `json:"hedgeWins"`
	ConsecutiveFailures int32  `json:"consecutiveFailures"`
}

func (c *nodeClient) stats() NodeStats {
	return NodeStats{
		Partition:           c.partition,
		URL:                 c.url,
		Healthy:             c.healthy(),
		Requests:            c.requests.Load(),
		Failures:            c.failures.Load(),
		Hedges:              c.hedges.Load(),
		HedgeWins:           c.hedgeWins.Load(),
		ConsecutiveFailures: c.consecFails.Load(),
	}
}
