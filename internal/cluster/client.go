package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"emblookup/internal/obs"
	"emblookup/internal/server"
)

// nodeClient is the router's view of one partition node: the HTTP client,
// the per-node health state machine, and the hedging/retry counters.
//
// Health follows a simple degradation protocol: a node that fails
// failThreshold consecutive requests is marked unhealthy and skipped by the
// scatter (responses turn partial) until a /healthz probe succeeds, at
// which point it rejoins. Success on the request path also heals the node
// immediately — a probe is just the cheap way back when no traffic is being
// risked on it.
type nodeClient struct {
	partition int
	replica   int // index within the partition's replica set at creation
	url       string
	hc        *http.Client

	failThreshold int32
	consecFails   atomic.Int32
	down          atomic.Bool

	// ewma is the node's smoothed request latency in microseconds, stored
	// as float64 bits (0 = no data yet). The replica selector prefers the
	// lowest-scoring healthy replica, so a slow node organically sheds
	// traffic to its faster siblings without ever being marked down.
	ewma atomic.Uint64

	requests    atomic.Int64
	failures    atomic.Int64
	hedges      atomic.Int64
	hedgeWins   atomic.Int64
	retries     atomic.Int64
	transitions atomic.Int64 // healthy→unhealthy→healthy flips, both directions

	// Registry handles, set by observe before the router serves; nil
	// handles (tests constructing a bare client) record nothing.
	latSec        *obs.Histogram
	reqTotal      *obs.Counter
	failTotal     *obs.Counter
	retryTotal    *obs.Counter
	hedgeTotal    *obs.Counter
	hedgeWinTotal *obs.Counter
	transTotal    *obs.Counter
	// spanPrefix labels this node's trace spans and grafted remote spans
	// ("node3/"), precomputed so the request path never formats strings.
	spanPrefix string
	spanRPC    string
}

func newNodeClient(partition, replica int, url string, failThreshold int) *nodeClient {
	if failThreshold <= 0 {
		failThreshold = 3
	}
	c := &nodeClient{
		partition:     partition,
		replica:       replica,
		url:           url,
		hc:            &http.Client{},
		failThreshold: int32(failThreshold),
	}
	c.spanPrefix = "node" + strconv.Itoa(partition)
	if replica > 0 {
		c.spanPrefix += "r" + strconv.Itoa(replica)
	}
	c.spanPrefix += "/"
	c.spanRPC = c.spanPrefix + "rpc"
	return c
}

// observe resolves this node's per-partition registry handles (replica 0
// keeps the unlabeled-replica names, so an R=1 cluster exposes exactly the
// PR-4 metric set). Call before the router starts serving. A replacement
// client for the same (partition, replica) slot accumulates into the same
// counters; its health gauge swaps in (latest registration wins).
func (c *nodeClient) observe(reg *obs.Registry) {
	lbl := func(name string) string {
		p := strconv.Itoa(c.partition)
		if c.replica > 0 {
			return obs.Labels(name, "partition", p, "replica", strconv.Itoa(c.replica))
		}
		return obs.Labels(name, "partition", p)
	}
	c.latSec = reg.Histogram(lbl("emblookup_cluster_node_seconds"))
	c.reqTotal = reg.Counter(lbl("emblookup_cluster_node_requests_total"))
	c.failTotal = reg.Counter(lbl("emblookup_cluster_node_failures_total"))
	c.retryTotal = reg.Counter(lbl("emblookup_cluster_node_retries_total"))
	c.hedgeTotal = reg.Counter(lbl("emblookup_cluster_node_hedges_total"))
	c.hedgeWinTotal = reg.Counter(lbl("emblookup_cluster_node_hedge_wins_total"))
	c.transTotal = reg.Counter(lbl("emblookup_cluster_node_health_transitions_total"))
	reg.GaugeFunc(lbl("emblookup_cluster_node_healthy"), func() float64 {
		if c.healthy() {
			return 1
		}
		return 0
	})
}

// score returns the EWMA latency in microseconds (0 = no traffic yet, which
// sorts first — an untried replica is worth trying).
func (c *nodeClient) score() float64 {
	return math.Float64frombits(c.ewma.Load())
}

// recordLatency folds one successful request into the EWMA (α = 0.2). A
// lock-free read-modify-write race between concurrent requests loses one
// sample — fine for a load signal.
func (c *nodeClient) recordLatency(us float64) {
	old := math.Float64frombits(c.ewma.Load())
	if old == 0 {
		c.ewma.Store(math.Float64bits(us))
		return
	}
	c.ewma.Store(math.Float64bits(0.8*old + 0.2*us))
}

// healthy reports whether the scatter should include this node.
func (c *nodeClient) healthy() bool { return !c.down.Load() }

func (c *nodeClient) markSuccess() {
	c.consecFails.Store(0)
	if c.down.CompareAndSwap(true, false) {
		c.transitions.Add(1)
		c.transTotal.Inc()
	}
}

func (c *nodeClient) markFailure() {
	c.failures.Add(1)
	c.failTotal.Inc()
	if c.consecFails.Add(1) >= c.failThreshold {
		if c.down.CompareAndSwap(false, true) {
			c.transitions.Add(1)
			c.transTotal.Inc()
		}
	}
}

// search runs one scatter leg: POST the embedded query batch to the node's
// partition-scoped endpoint under the router's full request discipline —
// per-attempt timeout, bounded retries with real backoff, and a hedged
// duplicate raced against a straggling attempt. The request body is
// marshaled once and reused across attempts and hedges. With a non-nil
// trace, every attempt (retries and hedges included, losers too) becomes a
// span, and the winning attempt's node-side spans are grafted under it.
func (c *nodeClient) search(ctx context.Context, tr *obs.Trace, k int, embs [][]float32, timeout, hedgeAfter time.Duration, retry RetryPolicy) ([][]server.PartitionHit, error) {
	body, err := json.Marshal(server.PartitionSearchRequest{K: k, Queries: embs})
	if err != nil {
		return nil, err
	}
	attempts := retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var out [][]server.PartitionHit
	err = retry.DoCtx(ctx, RealSleep, func(attempt int) error {
		if attempt > 0 {
			c.retries.Add(1)
			c.retryTotal.Inc()
		}
		// Carve this attempt's timeout from the remaining deadline so the
		// tries still in the budget all fit (see AttemptTimeout).
		tmo := AttemptTimeout(ctx, timeout, attempts-attempt)
		if tmo <= 0 {
			return context.DeadlineExceeded
		}
		res, err := c.hedged(ctx, tr, attempt, body, len(embs), tmo, hedgeAfter)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	if err != nil {
		// A caller-side abort (deadline spent, client gone) is not the
		// node's fault; only node-side failures feed the health machine.
		if ctx.Err() == nil {
			c.markFailure()
		}
		return nil, err
	}
	c.markSuccess()
	return out, nil
}

type searchReply struct {
	hits   [][]server.PartitionHit
	spans  []obs.SpanRecord // node-side spans echoed in the response
	start  time.Time        // when this attempt fired (graft base)
	err    error
	hedged bool // true when produced by the duplicate request
}

// hedged issues the request and, if no reply lands within hedgeAfter,
// races a duplicate against the straggler — the first success wins and the
// loser is cancelled by the shared context when the caller returns.
// hedgeAfter ≤ 0 disables hedging.
func (c *nodeClient) hedged(ctx context.Context, tr *obs.Trace, attempt int, body []byte, nq int, timeout, hedgeAfter time.Duration) ([][]server.PartitionHit, error) {
	if hedgeAfter <= 0 {
		sp := tr.StartAttempt(c.spanRPC, false, attempt)
		start := time.Now()
		hits, spans, err := c.post(ctx, tr.ID(), body, nq, timeout)
		sp.End()
		if err == nil {
			tr.Graft(c.spanPrefix, tr.SinceUs(start), spans)
		}
		return hits, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts the losing duplicate as soon as a winner returns
	ch := make(chan searchReply, 2)
	fire := func(isHedge bool) {
		go func() {
			// Losing attempts close their spans too: a traced hedge race
			// shows both contenders side by side.
			sp := tr.StartAttempt(c.spanRPC, isHedge, attempt)
			start := time.Now()
			hits, spans, err := c.post(cctx, tr.ID(), body, nq, timeout)
			sp.End()
			ch <- searchReply{hits: hits, spans: spans, start: start, err: err, hedged: isHedge}
		}()
	}
	fire(false)
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	inFlight := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					c.hedgeWins.Add(1)
					c.hedgeWinTotal.Inc()
				}
				tr.Graft(c.spanPrefix, tr.SinceUs(r.start), r.spans)
				return r.hits, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			inFlight--
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			c.hedges.Add(1)
			c.hedgeTotal.Inc()
			fire(true)
			inFlight++
		}
	}
}

// post is one attempt against /partition/search. A non-empty traceID is
// propagated in the X-Emblookup-Trace header; the node echoes its spans in
// the response for the caller to graft.
func (c *nodeClient) post(ctx context.Context, traceID string, body []byte, nq int, timeout time.Duration) ([][]server.PartitionHit, []obs.SpanRecord, error) {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c.requests.Add(1)
	c.reqTotal.Inc()
	t0 := time.Now()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, c.url+"/partition/search", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return nil, nil, fmt.Errorf("cluster: node %s: status %d", c.url, resp.StatusCode)
	}
	var psr server.PartitionSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&psr); err != nil {
		return nil, nil, fmt.Errorf("cluster: node %s: decoding response: %w", c.url, err)
	}
	if len(psr.Results) != nq {
		return nil, nil, fmt.Errorf("cluster: node %s: %d result lists for %d queries", c.url, len(psr.Results), nq)
	}
	took := time.Since(t0)
	c.latSec.Observe(took)
	c.recordLatency(float64(took.Microseconds()))
	return psr.Results, psr.Spans, nil
}

// probeExpect is what the router's view says this node should look like; a
// probe readmits a node only when the node's own /healthz report agrees.
type probeExpect struct {
	// partition is the partition the node must report serving (< 0 skips
	// the check — e.g. probing a bare handler in tests).
	partition int
	// minApplied is the ingest watermark the node must have applied before
	// it may rejoin — a replica restarted without replaying the routed
	// ingest log would otherwise serve stale (non-bit-identical) results.
	minApplied int64
}

// probe checks /healthz with a short timeout; a healthy *and current*
// report heals the node. A 200 from a process serving the wrong partition
// or missing ingest deltas is treated as a failed probe: liveness is not
// correctness. Plain non-JSON "ok" bodies (older nodes, plain handlers)
// still pass on status alone.
func (c *nodeClient) probe(ctx context.Context, timeout time.Duration, expect probeExpect) bool {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var hz server.HealthzResponse
	if json.Unmarshal(body, &hz) == nil && hz.Partition != nil {
		if expect.partition >= 0 && hz.Partition.ID != expect.partition {
			return false
		}
		if hz.IngestApplied < expect.minApplied {
			return false
		}
	}
	c.markSuccess()
	return true
}

// postIngest forwards an already-validated ingest batch to this node's
// /ingest endpoint. With flush the node applies the batch before replying
// (read-your-writes through the router); without it the node just enqueues.
func (c *nodeClient) postIngest(ctx context.Context, body []byte, flush bool, timeout time.Duration) error {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	url := c.url + "/ingest"
	if flush {
		url += "?flush=1"
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: node %s: ingest status %d", c.url, resp.StatusCode)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}

// NodeStats is one node's health and traffic snapshot in RouterStats.
type NodeStats struct {
	Partition           int     `json:"partition"`
	Replica             int     `json:"replica"`
	URL                 string  `json:"url"`
	Healthy             bool    `json:"healthy"`
	EwmaUs              float64 `json:"ewmaUs,omitempty"`
	Requests            int64   `json:"requests"`
	Failures            int64   `json:"failures"`
	Hedges              int64   `json:"hedges"`
	HedgeWins           int64   `json:"hedgeWins"`
	Retries             int64   `json:"retries"`
	HealthTransitions   int64   `json:"healthTransitions"`
	ConsecutiveFailures int32   `json:"consecutiveFailures"`
}

func (c *nodeClient) stats() NodeStats {
	return NodeStats{
		Partition:           c.partition,
		Replica:             c.replica,
		URL:                 c.url,
		Healthy:             c.healthy(),
		EwmaUs:              c.score(),
		Requests:            c.requests.Load(),
		Failures:            c.failures.Load(),
		Hedges:              c.hedges.Load(),
		HedgeWins:           c.hedgeWins.Load(),
		Retries:             c.retries.Load(),
		HealthTransitions:   c.transitions.Load(),
		ConsecutiveFailures: c.consecFails.Load(),
	}
}
