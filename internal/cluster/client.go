package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"emblookup/internal/obs"
	"emblookup/internal/server"
)

// nodeClient is the router's view of one partition node: the HTTP client,
// the per-node health state machine, and the hedging/retry counters.
//
// Health follows a simple degradation protocol: a node that fails
// failThreshold consecutive requests is marked unhealthy and skipped by the
// scatter (responses turn partial) until a /healthz probe succeeds, at
// which point it rejoins. Success on the request path also heals the node
// immediately — a probe is just the cheap way back when no traffic is being
// risked on it.
type nodeClient struct {
	partition int
	url       string
	hc        *http.Client

	failThreshold int32
	consecFails   atomic.Int32
	down          atomic.Bool

	requests    atomic.Int64
	failures    atomic.Int64
	hedges      atomic.Int64
	hedgeWins   atomic.Int64
	retries     atomic.Int64
	transitions atomic.Int64 // healthy→unhealthy→healthy flips, both directions

	// Registry handles, set by observe before the router serves; nil
	// handles (tests constructing a bare client) record nothing.
	latSec        *obs.Histogram
	reqTotal      *obs.Counter
	failTotal     *obs.Counter
	retryTotal    *obs.Counter
	hedgeTotal    *obs.Counter
	hedgeWinTotal *obs.Counter
	transTotal    *obs.Counter
	// spanPrefix labels this node's trace spans and grafted remote spans
	// ("node3/"), precomputed so the request path never formats strings.
	spanPrefix string
	spanRPC    string
}

func newNodeClient(partition int, url string, failThreshold int) *nodeClient {
	if failThreshold <= 0 {
		failThreshold = 3
	}
	c := &nodeClient{
		partition:     partition,
		url:           url,
		hc:            &http.Client{},
		failThreshold: int32(failThreshold),
	}
	c.spanPrefix = "node" + strconv.Itoa(partition) + "/"
	c.spanRPC = c.spanPrefix + "rpc"
	return c
}

// observe resolves this node's per-partition registry handles. Call before
// the router starts serving.
func (c *nodeClient) observe(reg *obs.Registry) {
	p := strconv.Itoa(c.partition)
	c.latSec = reg.Histogram(obs.Labels("emblookup_cluster_node_seconds", "partition", p))
	c.reqTotal = reg.Counter(obs.Labels("emblookup_cluster_node_requests_total", "partition", p))
	c.failTotal = reg.Counter(obs.Labels("emblookup_cluster_node_failures_total", "partition", p))
	c.retryTotal = reg.Counter(obs.Labels("emblookup_cluster_node_retries_total", "partition", p))
	c.hedgeTotal = reg.Counter(obs.Labels("emblookup_cluster_node_hedges_total", "partition", p))
	c.hedgeWinTotal = reg.Counter(obs.Labels("emblookup_cluster_node_hedge_wins_total", "partition", p))
	c.transTotal = reg.Counter(obs.Labels("emblookup_cluster_node_health_transitions_total", "partition", p))
	reg.GaugeFunc(obs.Labels("emblookup_cluster_node_healthy", "partition", p), func() float64 {
		if c.healthy() {
			return 1
		}
		return 0
	})
}

// healthy reports whether the scatter should include this node.
func (c *nodeClient) healthy() bool { return !c.down.Load() }

func (c *nodeClient) markSuccess() {
	c.consecFails.Store(0)
	if c.down.CompareAndSwap(true, false) {
		c.transitions.Add(1)
		c.transTotal.Inc()
	}
}

func (c *nodeClient) markFailure() {
	c.failures.Add(1)
	c.failTotal.Inc()
	if c.consecFails.Add(1) >= c.failThreshold {
		if c.down.CompareAndSwap(false, true) {
			c.transitions.Add(1)
			c.transTotal.Inc()
		}
	}
}

// search runs one scatter leg: POST the embedded query batch to the node's
// partition-scoped endpoint under the router's full request discipline —
// per-attempt timeout, bounded retries with real backoff, and a hedged
// duplicate raced against a straggling attempt. The request body is
// marshaled once and reused across attempts and hedges. With a non-nil
// trace, every attempt (retries and hedges included, losers too) becomes a
// span, and the winning attempt's node-side spans are grafted under it.
func (c *nodeClient) search(ctx context.Context, tr *obs.Trace, k int, embs [][]float32, timeout, hedgeAfter time.Duration, retry RetryPolicy) ([][]server.PartitionHit, error) {
	body, err := json.Marshal(server.PartitionSearchRequest{K: k, Queries: embs})
	if err != nil {
		return nil, err
	}
	var out [][]server.PartitionHit
	err = retry.Do(RealSleep, func(attempt int) error {
		if attempt > 0 {
			c.retries.Add(1)
			c.retryTotal.Inc()
		}
		res, err := c.hedged(ctx, tr, attempt, body, len(embs), timeout, hedgeAfter)
		if err != nil {
			return err
		}
		out = res
		return nil
	})
	if err != nil {
		c.markFailure()
		return nil, err
	}
	c.markSuccess()
	return out, nil
}

type searchReply struct {
	hits   [][]server.PartitionHit
	spans  []obs.SpanRecord // node-side spans echoed in the response
	start  time.Time        // when this attempt fired (graft base)
	err    error
	hedged bool // true when produced by the duplicate request
}

// hedged issues the request and, if no reply lands within hedgeAfter,
// races a duplicate against the straggler — the first success wins and the
// loser is cancelled by the shared context when the caller returns.
// hedgeAfter ≤ 0 disables hedging.
func (c *nodeClient) hedged(ctx context.Context, tr *obs.Trace, attempt int, body []byte, nq int, timeout, hedgeAfter time.Duration) ([][]server.PartitionHit, error) {
	if hedgeAfter <= 0 {
		sp := tr.StartAttempt(c.spanRPC, false, attempt)
		start := time.Now()
		hits, spans, err := c.post(ctx, tr.ID(), body, nq, timeout)
		sp.End()
		if err == nil {
			tr.Graft(c.spanPrefix, tr.SinceUs(start), spans)
		}
		return hits, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts the losing duplicate as soon as a winner returns
	ch := make(chan searchReply, 2)
	fire := func(isHedge bool) {
		go func() {
			// Losing attempts close their spans too: a traced hedge race
			// shows both contenders side by side.
			sp := tr.StartAttempt(c.spanRPC, isHedge, attempt)
			start := time.Now()
			hits, spans, err := c.post(cctx, tr.ID(), body, nq, timeout)
			sp.End()
			ch <- searchReply{hits: hits, spans: spans, start: start, err: err, hedged: isHedge}
		}()
	}
	fire(false)
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	inFlight := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					c.hedgeWins.Add(1)
					c.hedgeWinTotal.Inc()
				}
				tr.Graft(c.spanPrefix, tr.SinceUs(r.start), r.spans)
				return r.hits, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			inFlight--
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			c.hedges.Add(1)
			c.hedgeTotal.Inc()
			fire(true)
			inFlight++
		}
	}
}

// post is one attempt against /partition/search. A non-empty traceID is
// propagated in the X-Emblookup-Trace header; the node echoes its spans in
// the response for the caller to graft.
func (c *nodeClient) post(ctx context.Context, traceID string, body []byte, nq int, timeout time.Duration) ([][]server.PartitionHit, []obs.SpanRecord, error) {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c.requests.Add(1)
	c.reqTotal.Inc()
	t0 := time.Now()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, c.url+"/partition/search", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return nil, nil, fmt.Errorf("cluster: node %s: status %d", c.url, resp.StatusCode)
	}
	var psr server.PartitionSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&psr); err != nil {
		return nil, nil, fmt.Errorf("cluster: node %s: decoding response: %w", c.url, err)
	}
	if len(psr.Results) != nq {
		return nil, nil, fmt.Errorf("cluster: node %s: %d result lists for %d queries", c.url, len(psr.Results), nq)
	}
	c.latSec.Since(t0)
	return psr.Results, psr.Spans, nil
}

// probe checks /healthz with a short timeout; success heals the node.
func (c *nodeClient) probe(ctx context.Context, timeout time.Duration) bool {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, c.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	c.markSuccess()
	return true
}

// NodeStats is one node's health and traffic snapshot in RouterStats.
type NodeStats struct {
	Partition           int    `json:"partition"`
	URL                 string `json:"url"`
	Healthy             bool   `json:"healthy"`
	Requests            int64  `json:"requests"`
	Failures            int64  `json:"failures"`
	Hedges              int64  `json:"hedges"`
	HedgeWins           int64  `json:"hedgeWins"`
	Retries             int64  `json:"retries"`
	HealthTransitions   int64  `json:"healthTransitions"`
	ConsecutiveFailures int32  `json:"consecutiveFailures"`
}

func (c *nodeClient) stats() NodeStats {
	return NodeStats{
		Partition:           c.partition,
		URL:                 c.url,
		Healthy:             c.healthy(),
		Requests:            c.requests.Load(),
		Failures:            c.failures.Load(),
		Hedges:              c.hedges.Load(),
		HedgeWins:           c.hedgeWins.Load(),
		Retries:             c.retries.Load(),
		HealthTransitions:   c.transitions.Load(),
		ConsecutiveFailures: c.consecFails.Load(),
	}
}
