package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/server"
)

var (
	once   sync.Once
	tGr    *kg.Graph
	tModel *core.EmbLookup
	tErr   error
)

// testModel trains one small model for the whole package.
func testModel(t testing.TB) (*kg.Graph, *core.EmbLookup) {
	t.Helper()
	once.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
		cfg := core.FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 8
		m, err := core.Train(g, cfg)
		if err != nil {
			tErr = err
			return
		}
		tGr, tModel = g, m
	})
	if tErr != nil {
		t.Fatal(tErr)
	}
	return tGr, tModel
}

// testQueries mixes exact labels, aliases, and typos — the query shapes the
// paper cares about.
func testQueries(g *kg.Graph) []string {
	qs := []string{}
	for i := 0; i < 12; i++ {
		qs = append(qs, g.Entities[i].Label)
	}
	for i := range g.Entities {
		if len(g.Entities[i].Aliases) > 0 {
			qs = append(qs, g.Entities[i].Aliases[0])
			if len(qs) >= 18 {
				break
			}
		}
	}
	for i := 20; i < 26; i++ {
		l := g.Entities[i].Label
		qs = append(qs, strings.ToLower(l)+"x") // typo-ish
	}
	return qs
}

func sameCandidates(t *testing.T, ctx string, want, got []lookup.Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d candidates", ctx, len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			t.Fatalf("%s: candidate %d diverges: %+v vs %+v", ctx, i, want[i], got[i])
		}
	}
}

// fastRouterOptions keeps the request discipline snappy for tests.
func fastRouterOptions() RouterOptions {
	return RouterOptions{
		Timeout:       5 * time.Second,
		Retry:         RetryPolicy{Attempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
		HedgeAfter:    -1, // deterministic: no duplicates unless a test wants them
		FailThreshold: 1,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
	}
}

// TestClusterBitIdentical is the tentpole property: for P ∈ {1, 2, 3, 4} and
// varying k, a P-node cluster returns bit-identical candidates (IDs and
// scores) to the single-process model, over labels, aliases, and typos.
func TestClusterBitIdentical(t *testing.T) {
	g, m := testModel(t)
	queries := testQueries(g)
	for _, p := range []int{1, 2, 3, 4} {
		l, err := StartLocal(m, p, LocalOptions{Router: fastRouterOptions()})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 10} {
			for _, q := range queries {
				want := m.Lookup(q, k)
				got := l.Router.Lookup(q, k)
				if got.Partial || len(got.Failed) != 0 {
					t.Fatalf("P=%d q=%q: unexpected degradation: %+v", p, q, got)
				}
				sameCandidates(t, fmt.Sprintf("P=%d k=%d q=%q", p, k, q), want, got.Candidates)
			}
		}
		l.Close()
	}
}

// TestClusterBulkBitIdentical checks the batched scatter path against the
// single-process bulk path.
func TestClusterBulkBitIdentical(t *testing.T) {
	g, m := testModel(t)
	queries := testQueries(g)
	l, err := StartLocal(m, 3, LocalOptions{Router: fastRouterOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const k = 5
	want := m.BulkLookup(queries, k, 0)
	got := l.Router.BulkLookup(queries, k)
	if got.Partial {
		t.Fatalf("unexpected partial: %+v", got.Failed)
	}
	for i := range queries {
		sameCandidates(t, fmt.Sprintf("bulk q=%q", queries[i]), want[i], got.PerQuery[i])
	}
}

// TestClusterAliasRows exercises the 3k over-fetch + dedupe merge: with
// alias rows indexed, several rows collapse onto one entity, so the router's
// post-merge dedupe must replay the single-process pipeline exactly.
func TestClusterAliasRows(t *testing.T) {
	g, m := testModel(t)
	am, err := m.WithAliasRows()
	if err != nil {
		t.Fatal(err)
	}
	l, err := StartLocal(am, 4, LocalOptions{Router: fastRouterOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, q := range testQueries(g)[:10] {
		want := am.Lookup(q, 5)
		got := l.Router.Lookup(q, 5)
		sameCandidates(t, fmt.Sprintf("alias q=%q", q), want, got.Candidates)
	}
}

// TestClusterShardedSource checks that a model already wrapped in a sharded
// index partitions cleanly (the partitioner unwraps the shard view).
func TestClusterShardedSource(t *testing.T) {
	g, m := testModel(t)
	sm, err := m.WithShardedIndex(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := StartLocal(sm, 2, LocalOptions{Router: fastRouterOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	q := g.Entities[0].Label
	sameCandidates(t, "sharded source", m.Lookup(q, 5), l.Router.Lookup(q, 5).Candidates)
}

// expectedSurviving computes, without any HTTP in the way, what an exact
// merge over only the surviving partitions must return.
func expectedSurviving(t *testing.T, m *core.EmbLookup, p int, alive []bool, q string, k int) []lookup.Candidate {
	t.Helper()
	parts, man, err := BuildPartitions(m, p)
	if err != nil {
		t.Fatal(err)
	}
	fetch := k
	if m.Config().IndexAliases {
		fetch = k * 3
	}
	emb := m.Embed(q)
	var all []server.PartitionHit
	for i, pm := range parts {
		if !alive[i] {
			continue
		}
		rows := pm.IndexRows()
		lo := int32(man.Bounds[i])
		for _, h := range index.BatchSearch(pm.Index(), [][]float32{emb}, fetch, 0)[0] {
			all = append(all, server.PartitionHit{Row: lo + h.ID, Dist: h.Dist, Entity: int32(rows[h.ID])})
		}
	}
	return mergeHits(all, fetch, k)
}

// TestClusterNodeDownAndRecovery kills one node mid-stream (a middleware
// kill switch turns it into a 503 wall), asserts the router degrades to the
// surviving partitions' exact results flagged Partial, then flips the switch
// back and waits for the health probe to readmit the node — after which
// responses are full and bit-identical again. Run under -race this also
// exercises the health state machine concurrently with traffic.
func TestClusterNodeDownAndRecovery(t *testing.T) {
	g, m := testModel(t)
	const p = 3
	var killed [p]atomic.Bool
	l, err := StartLocal(m, p, LocalOptions{
		Router: fastRouterOptions(),
		Wrap: func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if killed[i].Load() {
					http.Error(w, "killed", http.StatusServiceUnavailable)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	q := g.Entities[0].Label
	const k = 5

	if res := l.Router.Lookup(q, k); res.Partial {
		t.Fatalf("healthy cluster answered partial: %+v", res.Failed)
	}

	// Kill node 1: the next scatter fails it (FailThreshold 1 → down), and
	// the response must be the surviving partitions' exact merge, flagged.
	killed[1].Store(true)
	res := l.Router.Lookup(q, k)
	if !res.Partial || len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("expected partial with failed=[1], got partial=%v failed=%v", res.Partial, res.Failed)
	}
	want := expectedSurviving(t, m, p, []bool{true, false, true}, q, k)
	sameCandidates(t, "surviving merge", want, res.Candidates)

	// While down, the node is skipped outright — still partial, no traffic
	// risked on it.
	before := l.Router.Stats().Nodes[1].Requests
	if res := l.Router.Lookup(q, k); !res.Partial {
		t.Fatal("down node rejoined without a passing probe")
	}
	if after := l.Router.Stats().Nodes[1].Requests; after != before {
		t.Fatalf("scatter still sends to a down node (%d → %d requests)", before, after)
	}

	// Restart: probes heal it, responses go exact again.
	killed[1].Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for l.Router.Stats().Healthy != p {
		if time.Now().After(deadline) {
			t.Fatal("node never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res = l.Router.Lookup(q, k)
	if res.Partial {
		t.Fatalf("recovered cluster still partial: %+v", res.Failed)
	}
	sameCandidates(t, "post-recovery", m.Lookup(q, k), res.Candidates)
	if l.Router.Stats().PartialResponses == 0 {
		t.Fatal("partial responses not counted")
	}
}

// TestClusterHedging makes one node's first answer a straggler and checks
// the hedged duplicate wins without costing correctness.
func TestClusterHedging(t *testing.T) {
	g, m := testModel(t)
	var firstSearch atomic.Int64
	opts := fastRouterOptions()
	opts.HedgeAfter = 10 * time.Millisecond
	opts.Retry = RetryPolicy{Attempts: 1}
	l, err := StartLocal(m, 2, LocalOptions{
		Router: opts,
		Wrap: func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				// Node 0's first search stalls well past the hedge delay;
				// its duplicate (and everything after) is fast.
				if i == 0 && r.URL.Path == "/partition/search" && firstSearch.Add(1) == 1 {
					time.Sleep(300 * time.Millisecond)
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	q := g.Entities[1].Label
	res := l.Router.Lookup(q, 5)
	if res.Partial {
		t.Fatalf("hedged lookup went partial: %+v", res.Failed)
	}
	sameCandidates(t, "hedged", m.Lookup(q, 5), res.Candidates)
	st := l.Router.Stats().Nodes[0]
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("straggler not hedged: %+v", st)
	}
}

// TestPartitionArtifactRoundTrip writes per-node artifacts + manifest to
// disk and loads each node back, checking the loaded slice searches exactly
// like the in-memory partition.
func TestPartitionArtifactRoundTrip(t *testing.T) {
	g, m := testModel(t)
	dir := t.TempDir()
	const p = 3
	man, err := SavePartitions(dir, m, p)
	if err != nil {
		t.Fatal(err)
	}
	man2, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Partitions != man.Partitions || man2.TotalRows != man.TotalRows {
		t.Fatalf("manifest round trip: %+v vs %+v", man, man2)
	}
	parts, _, err := BuildPartitions(m, p)
	if err != nil {
		t.Fatal(err)
	}
	emb := m.Embed(g.Entities[3].Label)
	for i := 0; i < p; i++ {
		nm, nman, err := LoadNodeModel(dir, i, g)
		if err != nil {
			t.Fatal(err)
		}
		if nman.Bounds[i] != man.Bounds[i] {
			t.Fatalf("node %d manifest bounds diverge", i)
		}
		if nm.IndexProvenance().Source != "loaded" {
			t.Fatalf("node %d rebuilt its index instead of attaching the artifact", i)
		}
		want := index.BatchSearch(parts[i].Index(), [][]float32{emb}, 5, 0)[0]
		got := index.BatchSearch(nm.Index(), [][]float32{emb}, 5, 0)[0]
		if len(want) != len(got) {
			t.Fatalf("node %d: %d vs %d hits", i, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("node %d hit %d: %+v vs %+v", i, j, want[j], got[j])
			}
		}
	}
	if _, _, err := LoadNodeModel(dir, p, g); err == nil {
		t.Fatal("out-of-range partition load should fail")
	}
}

// TestPartitionEndpointValidation drives the node-side bounds: bad JSON,
// non-positive or oversized k, empty batch, and dimension mismatches are
// 400s, never silent clamps.
func TestPartitionEndpointValidation(t *testing.T) {
	_, m := testModel(t)
	l, err := StartLocal(m, 1, LocalOptions{Router: fastRouterOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	url := l.URLs[0] + "/partition/search"

	dim := m.Index().Dim()
	good := func(k int) string {
		emb := make([]string, dim)
		for i := range emb {
			emb[i] = "0.5"
		}
		return fmt.Sprintf(`{"k":%d,"queries":[[%s]]}`, k, strings.Join(emb, ","))
	}
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", "{", 400},
		{"k zero", good(0), 400},
		{"k huge", good(30001), 400},
		{"no queries", `{"k":5,"queries":[]}`, 400},
		{"dim mismatch", `{"k":5,"queries":[[1,2,3]]}`, 400},
		{"ok", good(5), 200},
	}
	for _, c := range cases {
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestWithPartitionBounds checks the core-level partitioner's error paths
// and storage sharing.
func TestWithPartitionBounds(t *testing.T) {
	_, m := testModel(t)
	n := m.Index().Len()
	for _, b := range [][2]int{{-1, 5}, {0, n + 1}, {5, 4}} {
		if _, err := m.WithPartition(b[0], b[1]); err == nil {
			t.Errorf("WithPartition(%d, %d) should fail", b[0], b[1])
		}
	}
	pm, err := m.WithPartition(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Index().Len() != 5 || len(pm.IndexRows()) != 5 {
		t.Fatalf("partition shape wrong: %d rows", pm.Index().Len())
	}
	if pm.IndexRows()[0] != m.IndexRows()[2] {
		t.Fatal("partition rows not offset by lo")
	}
}

func TestPartitionBoundsSplit(t *testing.T) {
	b := PartitionBounds(10, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 10 {
		t.Fatalf("bounds = %v", b)
	}
	for i := 0; i < len(b)-1; i++ {
		if b[i+1] <= b[i] {
			t.Fatalf("empty partition in %v", b)
		}
	}
	if _, _, err := BuildPartitions(tModel, 0); err == nil {
		t.Fatal("P=0 should fail")
	}
}

// BenchmarkClusterLookup measures one routed lookup over a 2-node
// in-process cluster — scatter, node-side ADC scan, gather, merge — the
// short pass `make verify` runs to keep the routed path honest.
func BenchmarkClusterLookup(b *testing.B) {
	g, m := testModel(b)
	l, err := StartLocal(m, 2, LocalOptions{Router: fastRouterOptions()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	q := g.Entities[0].Label
	l.Router.Lookup(q, 10) // warm connections
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Router.Lookup(q, 10)
	}
}

// TestRetryPolicy pins the retry discipline: attempt budget, exponential
// backoff sequence, cap, and the zero value meaning one attempt.
func TestRetryPolicy(t *testing.T) {
	var slept []time.Duration
	s := SleepFunc(func(d time.Duration) { slept = append(slept, d) })

	p := RetryPolicy{Attempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 25 * time.Millisecond}
	calls := 0
	err := p.Do(s, func(a int) error {
		if a != calls {
			t.Fatalf("attempt %d reported as %d", calls, a)
		}
		calls++
		return fmt.Errorf("fail %d", a)
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	wantSleeps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) != len(wantSleeps) {
		t.Fatalf("slept %v", slept)
	}
	for i := range wantSleeps {
		if slept[i] != wantSleeps[i] {
			t.Fatalf("backoff %d = %v, want %v", i, slept[i], wantSleeps[i])
		}
	}

	// Success on attempt 2 stops early.
	calls = 0
	if err := p.Do(s, func(a int) error {
		calls++
		if a == 1 {
			return nil
		}
		return fmt.Errorf("fail")
	}); err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}

	// Zero value: exactly one attempt, no sleeps.
	slept = nil
	calls = 0
	var zero RetryPolicy
	zero.Do(s, func(int) error { calls++; return fmt.Errorf("x") })
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("zero policy: calls=%d slept=%v", calls, slept)
	}
}

// TestGateAccounting pins the virtual clock: ceil(n/m) rounds plus charged
// backoff, and Reset clearing both.
func TestGateAccounting(t *testing.T) {
	g := NewGate(5, 100*time.Millisecond)
	for i := 0; i < 10; i++ {
		g.Admit()
	}
	if g.Elapsed() != 200*time.Millisecond {
		t.Fatalf("Elapsed = %v", g.Elapsed())
	}
	g.Admit() // 11 requests → 3 rounds
	if g.Elapsed() != 300*time.Millisecond {
		t.Fatalf("Elapsed = %v", g.Elapsed())
	}
	g.Sleep(30 * time.Millisecond) // backoff charges, not sleeps
	if g.Elapsed() != 330*time.Millisecond {
		t.Fatalf("Elapsed with backoff = %v", g.Elapsed())
	}
	if g.Requests() != 11 {
		t.Fatalf("Requests = %d", g.Requests())
	}
	g.Reset()
	if g.Elapsed() != 0 || g.Requests() != 0 {
		t.Fatal("Reset incomplete")
	}
	if NewGate(0, time.Second).maxParallel != 1 {
		t.Fatal("cap floor broken")
	}
}

// TestMergeHitsDedupe pins the merge pipeline order: truncate the union to
// fetch FIRST, then dedupe — a candidate past the global top-fetch must not
// surface even if dedupe frees a slot.
func TestMergeHitsDedupe(t *testing.T) {
	hits := []server.PartitionHit{
		{Row: 0, Dist: 1, Entity: 7},
		{Row: 9, Dist: 2, Entity: 7}, // alias row of the same entity
		{Row: 3, Dist: 3, Entity: 8},
		{Row: 5, Dist: 4, Entity: 9}, // outside fetch=3 → must not appear
	}
	got := mergeHits(hits, 3, 3)
	if len(got) != 2 {
		t.Fatalf("got %d candidates, want 2 (dedupe after truncation)", len(got))
	}
	if got[0].ID != 7 || got[1].ID != 8 {
		t.Fatalf("merge order wrong: %+v", got)
	}
	if got[0].Score != -1 || got[1].Score != -3 {
		t.Fatalf("scores wrong: %+v", got)
	}

	// Tie on distance breaks toward the smaller row, matching the
	// single-process scan order.
	tie := []server.PartitionHit{
		{Row: 4, Dist: 1, Entity: 2},
		{Row: 1, Dist: 1, Entity: 3},
	}
	got = mergeHits(tie, 2, 2)
	if got[0].ID != 3 || got[1].ID != 2 {
		t.Fatalf("tie-break wrong: %+v", got)
	}
}

// TestClusterFastScan runs the scatter-gather path over a fast-scan model:
// each partition re-interleaves its row slice, and the merged cluster answer
// must stay bit-identical to the single-process fast-scan lookup.
func TestClusterFastScan(t *testing.T) {
	g, m := testModel(t)
	fs, err := m.WithFastScan()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Index().(*index.FastScan); !ok {
		t.Fatalf("index type %T, want *index.FastScan", fs.Index())
	}
	queries := testQueries(g)
	for _, p := range []int{1, 3} {
		l, err := StartLocal(fs, p, LocalOptions{Router: fastRouterOptions()})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want := fs.Lookup(q, 10)
			got := l.Router.Lookup(q, 10)
			if got.Partial || len(got.Failed) != 0 {
				t.Fatalf("P=%d q=%q: unexpected degradation: %+v", p, q, got)
			}
			sameCandidates(t, fmt.Sprintf("fastscan P=%d q=%q", p, q), want, got.Candidates)
		}
		want := fs.BulkLookup(queries, 5, 0)
		bulk := l.Router.BulkLookup(queries, 5)
		for i := range queries {
			sameCandidates(t, fmt.Sprintf("fastscan bulk q=%q", queries[i]), want[i], bulk.PerQuery[i])
		}
		l.Close()
	}
}
