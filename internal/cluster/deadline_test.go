package cluster

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"testing"
	"time"

	"emblookup/internal/obs"
)

func TestAttemptTimeout(t *testing.T) {
	base := 2 * time.Second
	// No deadline: the configured per-attempt timeout stands.
	if got := AttemptTimeout(context.Background(), base, 3); got != base {
		t.Fatalf("no deadline: %v, want %v", got, base)
	}
	// A deadline tighter than base×attempts splits the remainder.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	got := AttemptTimeout(ctx, base, 3)
	if got <= 0 || got > 150*time.Millisecond {
		t.Fatalf("tight deadline: per-attempt %v, want ≈100ms (remaining/3)", got)
	}
	// A roomy deadline never inflates past base.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	if got := AttemptTimeout(ctx2, base, 1); got != base {
		t.Fatalf("roomy deadline: %v, want capped at %v", got, base)
	}
	// A spent deadline reports non-positive: nothing left to attempt with.
	expired, cancel3 := context.WithCancel(context.Background())
	cancel3()
	if got := AttemptTimeout(expired, base, 2); got > 0 {
		t.Fatalf("spent deadline: %v, want ≤ 0", got)
	}
}

// TestRouterDeadlineExceededExactlyOnce: every lost query ticks the
// counter exactly once, at the router — never again in the retry or hedge
// layers underneath.
func TestRouterDeadlineExceededExactlyOnce(t *testing.T) {
	_, m := testModel(t)
	l, err := StartLocal(m, 2, LocalOptions{
		Router: RouterOptions{HedgeAfter: -1, Registry: obs.New()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Router.BulkLookupCtx(expired, []string{"a", "b", "c"}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := l.Router.deadlineExceeded.Load(); got != 3 {
		t.Fatalf("deadline_exceeded = %d after a lost 3-query batch, want 3", got)
	}
	if _, err := l.Router.LookupCtx(expired, "d", 5); err == nil {
		t.Fatal("expired single lookup succeeded")
	}
	if got := l.Router.deadlineExceeded.Load(); got != 4 {
		t.Fatalf("deadline_exceeded = %d, want 4 (exactly once per query)", got)
	}
	// A successful routed lookup leaves the counter alone.
	if _, err := l.Router.LookupCtx(context.Background(), "e", 5); err != nil {
		t.Fatal(err)
	}
	if got := l.Router.deadlineExceeded.Load(); got != 4 {
		t.Fatalf("deadline_exceeded moved to %d on a successful lookup", got)
	}
}

// TestRouterCtxCancelStopsFanout (run with -race): a cancelled client
// context stops the whole scatter — node requests return promptly, hedged
// duplicates die with their parent, no goroutine keeps computing into the
// void, and the health tracker does not blame the nodes for the caller's
// departure.
func TestRouterCtxCancelStopsFanout(t *testing.T) {
	_, m := testModel(t)
	// Every node hangs /partition/search until the request's own context
	// fires — the only way a request finishes during this test is
	// cancellation propagating through the router's HTTP client.
	stall := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	l, err := StartLocal(m, 2, LocalOptions{
		Router: RouterOptions{
			Timeout:    30 * time.Second,
			HedgeAfter: 5 * time.Millisecond, // hedges spawn, then must die too
			Registry:   obs.New(),
		},
		Wrap: func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/partition/search" {
					stall.ServeHTTP(w, r)
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.Router.BulkLookupCtx(ctx, []string{"x", "y"}, 5)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the scatter and its hedges start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fan-out did not stop on cancel (nodes hold requests forever)")
	}
	if got := l.Router.deadlineExceeded.Load(); got != 2 {
		t.Fatalf("deadline_exceeded = %d, want 2 (once per query)", got)
	}

	// All scatter goroutines — node attempts, hedges, backoff sleeps — must
	// wind down. Allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after cancel\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The caller's departure is not a node failure: nothing should be
	// marked unhealthy by the abandoned attempts.
	st := l.Router.Stats()
	if st.Healthy != len(st.Nodes) {
		t.Fatalf("client cancel marked nodes unhealthy: %d/%d healthy (%+v)",
			st.Healthy, len(st.Nodes), st.Nodes)
	}
}

// TestRouterDeadlinePropagation: a real (non-cancelled) deadline bounds the
// whole routed call even when nodes stall far longer.
func TestRouterDeadlinePropagation(t *testing.T) {
	_, m := testModel(t)
	stallFirst := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/partition/search" {
				select {
				case <-time.After(10 * time.Second):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	l, err := StartLocal(m, 2, LocalOptions{
		Router: RouterOptions{Timeout: 30 * time.Second, HedgeAfter: -1, Registry: obs.New()},
		Wrap:   stallFirst,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = l.Router.LookupCtx(ctx, "q", 5)
	took := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The 30s node timeout must not gate the return — the deadline does.
	if took > 3*time.Second {
		t.Fatalf("routed call took %v past a 200ms deadline", took)
	}
	if got := l.Router.deadlineExceeded.Load(); got != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", got)
	}
}
