package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"emblookup/internal/core"
	"emblookup/internal/server"
)

// Routed ingest: the cluster front-end accepts the same POST /ingest bodies
// as a single node and forwards them to the partition that owns appended
// rows — the LAST partition, whose RowHi is the global row count, so a
// delta row gets the same global id the single-process dynamic index would
// assign (bit-identity extends to ingested entities). The batch lands on
// the owning set's primary first (that write must succeed) and then fans to
// the remaining replicas best-effort; a replica that misses the fan-out is
// caught by the staleness-aware health probe and healed by control-plane
// replay from the router's ingest log.

// Ingest routes one batch through the cluster. flush asks the owning nodes
// for read-your-writes (the batch is applied, not just enqueued, before the
// call returns). Batches are serialized by the router, so every replica
// applies deltas in the same order and assigns identical delta row ids.
func (r *Router) Ingest(ctx context.Context, items []core.IngestItem, flush bool) error {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return r.ingestLocked(ctx, items, flush)
}

func (r *Router) ingestLocked(ctx context.Context, items []core.IngestItem, flush bool) error {
	if len(items) == 0 {
		return nil
	}
	body, err := json.Marshal(items)
	if err != nil {
		return err
	}
	v := r.acquireView()
	defer v.release()
	rs := v.parts[len(v.parts)-1]

	// Primary write: the first replica (healthy ones first, set order within
	// each pass) that accepts the batch. If nobody does, the batch is
	// rejected whole — routed ingest never half-applies.
	var applied *nodeClient
	var lastErr error
	for pass := 0; pass < 2 && applied == nil; pass++ {
		for _, c := range rs.replicas {
			if (pass == 0) != c.healthy() {
				continue
			}
			if err := c.postIngest(ctx, body, flush, r.opts.Timeout); err != nil {
				lastErr = err
				c.markFailure()
				continue
			}
			c.markSuccess()
			applied = c
			break
		}
	}
	if applied == nil {
		return fmt.Errorf("cluster: ingest: no replica of partition %d accepted the batch: %w", rs.partition, lastErr)
	}
	for _, c := range rs.replicas {
		if c == applied {
			continue
		}
		if err := c.postIngest(ctx, body, flush, r.opts.Timeout); err != nil {
			c.markFailure()
			r.ingestFanFail.Inc()
		}
	}

	// Record after the primary write: the log is the replay source for
	// restarted or rebalanced replicas, and the count is the staleness
	// watermark probes hold readmission to.
	r.ingestLog = append(r.ingestLog, items...)
	r.ingestCount.Add(int64(len(items)))
	r.ingestRouted.Add(int64(len(items)))

	// Grow the router's own graph copy for NewEntity items so /lookup can
	// resolve their labels. The router clones the nodes' id assignment:
	// both sides append to identical base graphs under the same serialized
	// order, so ids agree without a round-trip.
	r.graphMu.Lock()
	g := r.model.Graph()
	for _, it := range items {
		if it.NewEntity && it.Label != "" {
			g.AddEntity(it.Label, it.Aliases)
		}
	}
	r.graphMu.Unlock()
	return nil
}

// WithIngestLock runs fn with routed ingest excluded — the control plane's
// cutover primitive: while held, no batch can land between a log replay
// onto a fresh replica and the map publish that adds it, so the replica
// rejoins exactly caught-up. fn receives the ingest log snapshot (the
// replay source); it must not call back into Ingest or IngestLog, which
// would self-deadlock on the lock it already holds.
func (r *Router) WithIngestLock(fn func(log []core.IngestItem)) {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	fn(append([]core.IngestItem(nil), r.ingestLog...))
}

// IngestLog returns a copy of every item routed so far, in applied order —
// what the control plane replays onto a replica that restarted empty.
func (r *Router) IngestLog() []core.IngestItem {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return append([]core.IngestItem(nil), r.ingestLog...)
}

// IngestCount returns how many items have been routed — the watermark a
// replica's /healthz report must reach before a probe readmits it.
func (r *Router) IngestCount() int64 { return r.ingestCount.Load() }

// handleIngest is the router's POST /ingest: same wire shapes and bounds as
// the single-node endpoint, routed to the owning partition's replica set.
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	const maxBulkBytes = 1 << 20
	const maxItems = 4096
	req.Body = http.MaxBytesReader(w, req.Body, maxBulkBytes)
	body, err := io.ReadAll(req.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxBulkBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	items, err := server.DecodeIngestItems(body, maxItems)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flush := req.URL.Query().Get("flush") == "1"
	if err := r.Ingest(req.Context(), items, flush); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !flush {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(server.IngestResponse{Enqueued: len(items)})
}
