package cluster

import (
	"fmt"
	"net"
	"net/http"

	"emblookup/internal/core"
	"emblookup/internal/server"
)

// LocalOptions configures an in-process cluster.
type LocalOptions struct {
	// Router tunes the coordinator.
	Router RouterOptions
	// Wrap, when set, wraps partition i's HTTP handler — the hook the
	// tests and benchmarks use to inject faults (errors, latency, kill
	// switches) between the router and a node.
	Wrap func(partition int, h http.Handler) http.Handler
}

// Local is an in-process cluster: P partition nodes listening on loopback
// plus a router over them — the `emblookup serve -cluster N` demo mode and
// the substrate the offline tests and benchmarks drive. The nodes speak
// real HTTP, so everything the router exercises (timeouts, retries,
// hedging, health probes) is the production code path.
type Local struct {
	Router *Router
	// URLs are the node base URLs in partition order.
	URLs     []string
	Manifest Manifest
	servers  []*http.Server
}

// StartLocal partitions model P ways and serves every partition on its own
// loopback listener, returning the router wired over them.
func StartLocal(model *core.EmbLookup, p int, opts LocalOptions) (*Local, error) {
	parts, man, err := BuildPartitions(model, p)
	if err != nil {
		return nil, err
	}
	g := model.Graph()
	l := &Local{Manifest: man}
	for i, pm := range parts {
		info := server.PartitionInfo{
			ID:    i,
			Count: man.Partitions,
			RowLo: man.Bounds[i],
			RowHi: man.Bounds[i+1],
		}
		h := server.New(g, pm, server.WithPartition(info)).Handler()
		if opts.Wrap != nil {
			h = opts.Wrap(i, h)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: listening for partition %d: %w", i, err)
		}
		srv := server.NewHTTPServer("", h)
		go srv.Serve(ln)
		l.servers = append(l.servers, srv)
		l.URLs = append(l.URLs, "http://"+ln.Addr().String())
	}
	rt, err := NewRouter(model, l.URLs, opts.Router)
	if err != nil {
		l.Close()
		return nil, err
	}
	l.Router = rt
	return l, nil
}

// Close stops the router's prober and every node listener.
func (l *Local) Close() {
	if l.Router != nil {
		l.Router.Close()
	}
	for _, s := range l.servers {
		s.Close()
	}
}
