package cluster

import "fmt"

// Map is the versioned cluster assignment the control plane publishes: for
// every partition, the base URLs of its replica set, primary first. Epochs
// are strictly increasing; a router only ever moves forward (ApplyMap
// rejects stale epochs), so a delayed gossip of an old map can never roll
// the routing state back. Bounds, when present, pin the row split the
// assignment was built for (the same par.Split ranges as Manifest.Bounds),
// letting a router cross-check a rebalanced layout before serving it.
type Map struct {
	Epoch     int64      `json:"epoch"`
	TotalRows int        `json:"totalRows,omitempty"`
	Bounds    []int      `json:"bounds,omitempty"`
	Replicas  [][]string `json:"replicas"`
}

// SingleMap wraps a PR-4 style one-node-per-partition URL list as an
// epoch-1 map with single-replica sets — the compatibility constructor
// NewRouter uses, so an unreplicated cluster is just the R=1 special case
// of the replicated one.
func SingleMap(nodeURLs []string) Map {
	m := Map{Epoch: 1, Replicas: make([][]string, len(nodeURLs))}
	for i, u := range nodeURLs {
		m.Replicas[i] = []string{u}
	}
	return m
}

// Partitions returns the partition count P.
func (m Map) Partitions() int { return len(m.Replicas) }

// Primary returns partition p's first replica URL — where routed ingest
// lands before fanning to the rest of the set.
func (m Map) Primary(p int) string { return m.Replicas[p][0] }

// Validate rejects maps a router must not serve from: no partitions, an
// empty replica set, a blank URL, one URL assigned twice (a node serves
// exactly one partition slice), a non-positive epoch, or bounds that do not
// line up with the partition count.
func (m Map) Validate() error {
	if m.Epoch <= 0 {
		return fmt.Errorf("cluster: map epoch must be positive, got %d", m.Epoch)
	}
	if len(m.Replicas) == 0 {
		return fmt.Errorf("cluster: map has no partitions")
	}
	seen := make(map[string]int, len(m.Replicas))
	for p, urls := range m.Replicas {
		if len(urls) == 0 {
			return fmt.Errorf("cluster: partition %d has no replicas", p)
		}
		for _, u := range urls {
			if u == "" {
				return fmt.Errorf("cluster: partition %d has an empty replica URL", p)
			}
			if prev, dup := seen[u]; dup {
				return fmt.Errorf("cluster: replica %s assigned to both partition %d and %d", u, prev, p)
			}
			seen[u] = p
		}
	}
	if len(m.Bounds) > 0 {
		if len(m.Bounds) != len(m.Replicas)+1 {
			return fmt.Errorf("cluster: map has %d bounds for %d partitions", len(m.Bounds), len(m.Replicas))
		}
		if m.Bounds[0] != 0 || (m.TotalRows > 0 && m.Bounds[len(m.Bounds)-1] != m.TotalRows) {
			return fmt.Errorf("cluster: map bounds do not span [0, %d)", m.TotalRows)
		}
	}
	return nil
}

// Clone deep-copies the map so a published version can never be mutated by
// a caller still holding the input.
func (m Map) Clone() Map {
	c := m
	c.Bounds = append([]int(nil), m.Bounds...)
	c.Replicas = make([][]string, len(m.Replicas))
	for i, urls := range m.Replicas {
		c.Replicas[i] = append([]string(nil), urls...)
	}
	return c
}
