package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/par"
)

// Manifest describes how a model's entity index was split across nodes. It
// is written next to the per-node artifacts and is all a router or node
// needs (besides the graph) to agree on the partitioning: bounds come from
// the same deterministic row split sharded scans use (par.Split), so
// partition i serves global index rows [Bounds[i], Bounds[i+1]).
type Manifest struct {
	// Partitions is the node count P (may be lower than requested when the
	// index has fewer rows than partitions).
	Partitions int `json:"partitions"`
	// TotalRows is the full index's row count; partitions cover [0,
	// TotalRows) disjointly.
	TotalRows int `json:"totalRows"`
	// Dim is the embedding dimensionality every node must agree on.
	Dim int `json:"dim"`
	// Bounds has length Partitions+1.
	Bounds []int `json:"bounds"`
}

// PartitionBounds returns the deterministic row split a P-way cluster uses:
// the same contiguous near-equal ranges as index.Sharded (par.Split), so a
// P-node cluster's partitions line up with a P-shard single-process scan.
func PartitionBounds(totalRows, p int) []int {
	return par.Split(totalRows, p)
}

// BuildPartitions splits model into P per-node sibling models, each holding
// only its slice of the index (core.WithPartition), plus the manifest
// binding them together. The slices share the parent's storage; nothing is
// re-embedded or retrained.
func BuildPartitions(model *core.EmbLookup, p int) ([]*core.EmbLookup, Manifest, error) {
	if p <= 0 {
		return nil, Manifest{}, fmt.Errorf("cluster: partition count must be positive, got %d", p)
	}
	n := model.Index().Len()
	bounds := PartitionBounds(n, p)
	parts := make([]*core.EmbLookup, len(bounds)-1)
	for i := range parts {
		pm, err := model.WithPartition(bounds[i], bounds[i+1])
		if err != nil {
			return nil, Manifest{}, fmt.Errorf("cluster: partition %d: %w", i, err)
		}
		parts[i] = pm
	}
	man := Manifest{
		Partitions: len(parts),
		TotalRows:  n,
		Dim:        model.Index().Dim(),
		Bounds:     bounds,
	}
	return parts, man, nil
}

// manifestName and nodeFileName fix the artifact layout SavePartitions
// writes and LoadNodeModel reads.
const manifestName = "manifest.json"

func nodeFileName(i int) string { return fmt.Sprintf("node-%d.bin", i) }

// SavePartitions partitions model P ways and writes one artifact per node
// into dir — node-<i>.bin via WriteWithIndex, so a node's cold start is
// IO-bound and loads only its slice — plus manifest.json.
func SavePartitions(dir string, model *core.EmbLookup, p int) (Manifest, error) {
	parts, man, err := BuildPartitions(model, p)
	if err != nil {
		return Manifest{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, err
	}
	for i, pm := range parts {
		if err := pm.SaveFileWithIndex(filepath.Join(dir, nodeFileName(i))); err != nil {
			return Manifest{}, fmt.Errorf("cluster: saving partition %d: %w", i, err)
		}
	}
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	buf = append(buf, '\n')
	// The manifest lands last and atomically: a crash mid-save leaves either
	// the previous complete layout or no manifest — never a manifest
	// pointing at half-written node artifacts (those are atomic themselves,
	// via core.AtomicWriteFile).
	err = core.AtomicWriteFile(filepath.Join(dir, manifestName), func(w io.Writer) error {
		_, werr := w.Write(buf)
		return werr
	})
	if err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// LoadManifest reads the manifest written by SavePartitions.
func LoadManifest(dir string) (Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return Manifest{}, fmt.Errorf("cluster: %s: %w", filepath.Join(dir, manifestName), err)
	}
	if len(man.Bounds) != man.Partitions+1 {
		return Manifest{}, fmt.Errorf("cluster: manifest has %d bounds for %d partitions", len(man.Bounds), man.Partitions)
	}
	return man, nil
}

// LoadNodeModel loads partition i's artifact from dir (attaching its saved
// index slice) and returns it with the manifest.
func LoadNodeModel(dir string, i int, g *kg.Graph) (*core.EmbLookup, Manifest, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, Manifest{}, err
	}
	if i < 0 || i >= man.Partitions {
		return nil, Manifest{}, fmt.Errorf("cluster: partition %d outside manifest's %d partitions", i, man.Partitions)
	}
	m, err := core.LoadFile(filepath.Join(dir, nodeFileName(i)), g)
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("cluster: loading partition %d: %w", i, err)
	}
	if got := m.Index().Len(); got != man.Bounds[i+1]-man.Bounds[i] {
		return nil, Manifest{}, fmt.Errorf("cluster: partition %d holds %d rows, manifest says %d", i, got, man.Bounds[i+1]-man.Bounds[i])
	}
	return m, man, nil
}
