package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"emblookup/internal/server"
)

// TestProbeStaleness pins the readmission gate: a probe heals a node only
// when its /healthz *report* matches the view's expectations — right
// partition, ingest watermark reached — not merely when the process
// answers 200. Liveness is not correctness.
func TestProbeStaleness(t *testing.T) {
	var partition atomic.Int64
	var applied atomic.Int64
	var status atomic.Int64
	status.Store(http.StatusOK)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s := int(status.Load()); s != http.StatusOK {
			http.Error(w, "down", s)
			return
		}
		json.NewEncoder(w).Encode(server.HealthzResponse{
			Status:        "ok",
			Partition:     &server.PartitionInfo{ID: int(partition.Load()), Count: 2},
			IngestApplied: applied.Load(),
		})
	}))
	defer srv.Close()

	c := newNodeClient(0, 0, srv.URL, 1)
	c.markFailure()
	if c.healthy() {
		t.Fatal("node should be down after one failure at threshold 1")
	}
	check := func(name string, expect probeExpect, want bool) {
		t.Helper()
		c.markFailure() // re-down between checks so markSuccess is observable
		if got := c.probe(context.Background(), time.Second, expect); got != want {
			t.Fatalf("%s: probe = %v, want %v", name, got, want)
		}
		if c.healthy() != want {
			t.Fatalf("%s: healthy = %v after probe, want %v", name, c.healthy(), want)
		}
	}

	// Current report on the right partition heals.
	check("current", probeExpect{partition: 0}, true)
	// Wrong partition: alive but serving the wrong slice — stays down.
	partition.Store(1)
	check("wrong partition", probeExpect{partition: 0}, false)
	partition.Store(0)
	// Ingest watermark not reached: restarted without replay — stays down.
	check("stale ingest", probeExpect{partition: 0, minApplied: 3}, false)
	applied.Store(3)
	check("caught up", probeExpect{partition: 0, minApplied: 3}, true)
	// partition < 0 skips the assignment check entirely.
	partition.Store(7)
	check("unchecked", probeExpect{partition: -1}, true)
	// Non-200 always fails regardless of expectations.
	status.Store(http.StatusServiceUnavailable)
	check("non-200", probeExpect{partition: -1}, false)
	status.Store(http.StatusOK)
	partition.Store(0)

	// A plain-text 200 "ok" (no JSON report) passes on status alone — the
	// compatibility path for bare handlers with no partition state.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer plain.Close()
	pc := newNodeClient(0, 0, plain.URL, 1)
	pc.markFailure()
	if !pc.probe(context.Background(), time.Second, probeExpect{partition: 0, minApplied: 5}) {
		t.Fatal("plain ok body should pass on status alone")
	}
}
