package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"emblookup/internal/obs"
	"emblookup/internal/server"
)

// replicaSet is one partition's replica clients under a given cluster-map
// epoch. The set itself is immutable (a new map builds new sets over the
// persistent clients); all mutable state lives in the nodeClients, which
// survive epoch changes so health and latency history carry over.
type replicaSet struct {
	partition int
	replicas  []*nodeClient
}

// anyHealthy reports whether the scatter can cover this partition at all;
// when false the partition is skipped and the response turns partial.
func (rs *replicaSet) anyHealthy() bool {
	for _, c := range rs.replicas {
		if c.healthy() {
			return true
		}
	}
	return false
}

// pick selects the untried replica with the lowest EWMA latency score,
// preferring healthy ones (allowDown widens to unhealthy as a last resort).
// Score ties break toward the earlier replica — the primary — so an idle
// set routes deterministically.
func (rs *replicaSet) pick(tried map[*nodeClient]bool, allowDown bool) *nodeClient {
	var best *nodeClient
	var bestScore float64
	for _, c := range rs.replicas {
		if tried[c] || (!allowDown && !c.healthy()) {
			continue
		}
		if s := c.score(); best == nil || s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// pickFor is the per-attempt selection ladder: an untried healthy replica,
// then an untried unhealthy one, and — once every replica has been risked —
// the exclusion set resets so a retry budget larger than the set still
// spends every attempt.
func (rs *replicaSet) pickFor(tried map[*nodeClient]bool) *nodeClient {
	if c := rs.pick(tried, false); c != nil {
		return c
	}
	if c := rs.pick(tried, true); c != nil {
		return c
	}
	clear(tried)
	if c := rs.pick(tried, false); c != nil {
		return c
	}
	return rs.pick(tried, true)
}

// search runs one scatter leg against the replica set. With one replica it
// is exactly the PR-4 single-node discipline (bounded retries against that
// node, hedged duplicate to the same node). With more, every retry attempt
// is steered to a different replica (health first, then EWMA score) and the
// hedged duplicate races a *distinct* replica against the straggler — the
// tail-latency win replication buys: a slow node cannot also be the
// insurance against itself.
func (rs *replicaSet) search(ctx context.Context, tr *obs.Trace, k int, embs [][]float32, opts RouterOptions) ([][]server.PartitionHit, error) {
	if len(rs.replicas) == 1 {
		return rs.replicas[0].search(ctx, tr, k, embs, opts.Timeout, opts.HedgeAfter, opts.Retry)
	}
	body, err := json.Marshal(server.PartitionSearchRequest{K: k, Queries: embs})
	if err != nil {
		return nil, err
	}
	attempts := opts.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	tried := make(map[*nodeClient]bool, len(rs.replicas))
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if err := sleepCtx(ctx, RealSleep, opts.Retry.Backoff(a-1)); err != nil {
				if lastErr == nil {
					lastErr = err
				}
				break
			}
		}
		// Each attempt's timeout is carved from the remaining deadline so
		// every try left in the budget still fits; a spent deadline stops
		// the loop instead of firing a doomed request.
		tmo := AttemptTimeout(ctx, opts.Timeout, attempts-a)
		if tmo <= 0 {
			if lastErr == nil {
				lastErr = context.DeadlineExceeded
			}
			break
		}
		c := rs.pickFor(tried)
		if c == nil {
			break // unreachable with a validated map; defensive
		}
		if a > 0 {
			c.retries.Add(1)
			c.retryTotal.Inc()
		}
		tried[c] = true
		hits, winner, err := rs.hedged(ctx, tr, a, c, tried, body, len(embs), opts, tmo)
		if err == nil {
			winner.markSuccess()
			return hits, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the caller gave up; retrying is work nobody reads
		}
	}
	return nil, lastErr
}

// replicaReply extends searchReply with which contender produced it.
type replicaReply struct {
	searchReply
	node *nodeClient
}

// hedged issues the attempt against primary and, if no reply lands within
// HedgeAfter, fires the duplicate at the best *other* untried replica
// (falling back to the same node only when the set is exhausted). Failed
// contenders are marked down-path immediately — cancellation of the losing
// duplicate is not a failure. Returns the winning node so the caller
// credits the success where it landed.
func (rs *replicaSet) hedged(ctx context.Context, tr *obs.Trace, attempt int, primary *nodeClient, tried map[*nodeClient]bool, body []byte, nq int, opts RouterOptions, timeout time.Duration) ([][]server.PartitionHit, *nodeClient, error) {
	markFail := func(c *nodeClient, err error) {
		// The shared context cancels the loser when a winner returns, and
		// the caller's own context abort (deadline spent, client gone) says
		// nothing about the node's health either.
		if !errors.Is(err, context.Canceled) && ctx.Err() == nil {
			c.markFailure()
		}
	}
	if opts.HedgeAfter <= 0 {
		sp := tr.StartAttempt(primary.spanRPC, false, attempt)
		start := time.Now()
		hits, spans, err := primary.post(ctx, tr.ID(), body, nq, timeout)
		sp.End()
		if err != nil {
			markFail(primary, err)
			return nil, nil, err
		}
		tr.Graft(primary.spanPrefix, tr.SinceUs(start), spans)
		return hits, primary, nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts the losing contender as soon as a winner returns
	ch := make(chan replicaReply, 2)
	fire := func(c *nodeClient, isHedge bool) {
		go func() {
			sp := tr.StartAttempt(c.spanRPC, isHedge, attempt)
			start := time.Now()
			hits, spans, err := c.post(cctx, tr.ID(), body, nq, timeout)
			sp.End()
			ch <- replicaReply{searchReply{hits: hits, spans: spans, start: start, err: err, hedged: isHedge}, c}
		}()
	}
	fire(primary, false)
	timer := time.NewTimer(opts.HedgeAfter)
	defer timer.Stop()
	inFlight := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					r.node.hedgeWins.Add(1)
					r.node.hedgeWinTotal.Inc()
				}
				tr.Graft(r.node.spanPrefix, tr.SinceUs(r.start), r.spans)
				return r.hits, r.node, nil
			}
			markFail(r.node, r.err)
			if firstErr == nil {
				firstErr = r.err
			}
			inFlight--
			if inFlight == 0 {
				return nil, nil, firstErr
			}
		case <-timer.C:
			// The hedge counter lands on the straggler — it is the node
			// whose tail the duplicate insures against.
			primary.hedges.Add(1)
			primary.hedgeTotal.Inc()
			alt := rs.pick(tried, false)
			if alt == nil {
				alt = primary
			} else {
				tried[alt] = true
			}
			fire(alt, true)
			inFlight++
		}
	}
}
