// Package cluster turns the single-process lookup service into a
// partitioned multi-node deployment: a partitioner that splits the entity
// index into per-node slices (partition.go), a scatter-gather router that
// embeds queries once and merges per-partition top-k under the canonical
// (Dist, ID) order (router.go), and the request-discipline machinery a
// networked service needs — bounded retries with backoff, hedged requests
// against stragglers, and failure-aware degradation with health probes
// (this file, client.go). See DESIGN.md §9.
package cluster

import (
	"context"
	"sync/atomic"
	"time"
)

// Sleeper abstracts how backoff and latency time is spent: live deployments
// sleep for real (RealSleep), simulated endpoints charge a virtual clock
// (Gate) so benchmarks account network discipline without waiting it out.
// internal/remote and the cluster router share one retry code path through
// this seam.
type Sleeper interface {
	Sleep(d time.Duration)
}

// SleepFunc adapts a function to Sleeper.
type SleepFunc func(time.Duration)

// Sleep implements Sleeper.
func (f SleepFunc) Sleep(d time.Duration) { f(d) }

// realSleeper is the live Sleeper's concrete type — a named struct so
// sleepCtx can recognize it and race the wait against a context.
type realSleeper struct{}

func (realSleeper) Sleep(d time.Duration) { time.Sleep(d) }

// RealSleep is the Sleeper of live deployments: it actually waits.
var RealSleep Sleeper = realSleeper{}

// RetryPolicy bounds how a transient request failure is retried:
// exponential backoff starting at BaseBackoff, doubling per attempt, capped
// at MaxBackoff. The zero value means one attempt, no retries.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retries; ≤0 treated
	// as 1).
	Attempts int
	// BaseBackoff is the delay before the first retry (default 10ms when
	// retries are enabled).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is the router's request discipline: three tries with
// 10ms/20ms backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second}
}

// Backoff returns the delay slept after failed attempt number `attempt`
// (0-based): BaseBackoff << attempt, capped at MaxBackoff.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	d := base << uint(attempt)
	if d > maxB || d <= 0 { // overflow guard
		d = maxB
	}
	return d
}

// Do runs op until it succeeds or the attempt budget is spent, spending
// backoff time through s between attempts. op receives the 0-based attempt
// number; the error of the last attempt is returned.
func (p RetryPolicy) Do(s Sleeper, op func(attempt int) error) error {
	return p.DoCtx(context.Background(), s, op)
}

// DoCtx is Do under a caller deadline: a context that fires mid-backoff or
// between attempts stops the loop immediately with ctx.Err() (retrying
// work the caller has abandoned would be completed-and-discarded effort).
// The error of the last real attempt wins over the context error when both
// exist, so callers see what actually failed.
func (p RetryPolicy) DoCtx(ctx context.Context, s Sleeper, op func(attempt int) error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if serr := sleepCtx(ctx, s, p.Backoff(a-1)); serr != nil {
				if err == nil {
					err = serr
				}
				return err
			}
		}
		if err = op(a); err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return err
		}
	}
	return err
}

// AttemptTimeout derives one attempt's timeout from the caller's remaining
// deadline: the base per-attempt timeout, shrunk so the `attemptsLeft`
// remaining tries (this one included) can all fit in what is left of the
// deadline — a fixed 2s timeout must not eat a 100ms budget whole on
// attempt one. Without a deadline the base timeout stands. A non-positive
// return means the deadline is already spent.
func AttemptTimeout(ctx context.Context, base time.Duration, attemptsLeft int) time.Duration {
	if ctx.Err() != nil {
		return -1 // cancelled counts as spent even without a deadline
	}
	d, ok := ctx.Deadline()
	if !ok {
		return base
	}
	remaining := time.Until(d)
	if remaining <= 0 {
		return -1
	}
	if attemptsLeft < 1 {
		attemptsLeft = 1
	}
	per := remaining / time.Duration(attemptsLeft)
	if per < base {
		return per
	}
	return base
}

// sleepCtx spends d through s unless ctx fires first. For the real sleeper
// the wait races a timer against ctx.Done; virtual sleepers (Gate) charge
// their clock in full and only report a context that was already done.
func sleepCtx(ctx context.Context, s Sleeper, d time.Duration) error {
	if ctx == nil || ctx.Done() == nil {
		s.Sleep(d)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, real := s.(realSleeper); real {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.Sleep(d)
	return ctx.Err()
}

// Gate accounts requests issued against an endpoint with a per-client
// parallelism cap, on a virtual clock: n requests at cost c under cap m
// take ceil(n/m)·c of endpoint time, plus any backoff charged through the
// Sleeper interface. It is the request-discipline bookkeeping shared by the
// simulated remote services (internal/remote, Table V) and available to any
// caller that must respect an endpoint's rate limit without actually
// sleeping in benchmarks.
type Gate struct {
	maxParallel int64
	perRequest  time.Duration
	requests    atomic.Int64
	charged     atomic.Int64 // extra virtual nanoseconds (backoff)
}

// NewGate builds a gate for an endpoint allowing maxParallel in-flight
// requests (≤0 treated as 1), each costing perRequest of round-trip time.
func NewGate(maxParallel int, perRequest time.Duration) *Gate {
	if maxParallel <= 0 {
		maxParallel = 1
	}
	return &Gate{maxParallel: int64(maxParallel), perRequest: perRequest}
}

// Admit counts one request against the gate.
func (g *Gate) Admit() { g.requests.Add(1) }

// Sleep implements Sleeper by charging the delay to the virtual clock —
// backoff between retries against a simulated endpoint costs virtual time,
// not wall time.
func (g *Gate) Sleep(d time.Duration) { g.charged.Add(int64(d)) }

// Requests returns how many requests were admitted since the last reset.
func (g *Gate) Requests() int64 { return g.requests.Load() }

// Elapsed returns the virtual time consumed: admitted requests serialized
// into rounds of maxParallel, plus charged backoff.
func (g *Gate) Elapsed() time.Duration {
	n := g.requests.Load()
	var d time.Duration
	if n > 0 {
		rounds := (n + g.maxParallel - 1) / g.maxParallel
		d = time.Duration(rounds) * g.perRequest
	}
	return d + time.Duration(g.charged.Load())
}

// Reset clears the request counter and charged time.
func (g *Gate) Reset() {
	g.requests.Store(0)
	g.charged.Store(0)
}
