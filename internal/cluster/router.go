package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/obs"
	"emblookup/internal/server"
)

// RouterOptions tunes the coordinator's request discipline. The zero value
// picks sensible defaults for a LAN deployment.
type RouterOptions struct {
	// Timeout bounds one attempt against one node (default 2s).
	Timeout time.Duration
	// Retry is the per-partition retry/backoff policy (default 3 attempts,
	// 10ms base backoff). With replicas, each retry attempt is steered to a
	// different replica of the set.
	Retry RetryPolicy
	// HedgeAfter races a duplicate request against a node that has not
	// answered within this delay — the tail-latency insurance of
	// partitioned fan-outs, where the slowest partition gates every query.
	// With replicas the duplicate goes to a *distinct* replica (default
	// 50ms; negative disables hedging).
	HedgeAfter time.Duration
	// FailThreshold consecutive failed requests mark a node unhealthy
	// (default 3); an unhealthy node is skipped — responses turn partial
	// only when every replica of a partition is down — until a health probe
	// passes.
	FailThreshold int
	// ProbeInterval is how often unhealthy nodes are probed for recovery
	// (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 500ms).
	ProbeTimeout time.Duration
	// Parallelism bounds the router's local embedding fan-out
	// (≤0 = GOMAXPROCS).
	Parallelism int
	// Registry receives the router's metrics — routed-lookup latency,
	// per-partition counters and latency, health gauges (nil =
	// obs.Default()).
	Registry *obs.Registry
}

func (o *RouterOptions) fill() {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retry.Attempts == 0 {
		o.Retry = DefaultRetryPolicy()
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 50 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
}

// ErrStaleEpoch marks an ApplyMap rejected because the router already
// serves that epoch or a newer one — expected when gossip and direct
// application race; callers treat it as "already there", not a failure.
var ErrStaleEpoch = errors.New("stale map epoch")

// routerView is one epoch's immutable routing state. Lookups pin the view
// they started on (acquireView), so a map change drains in-flight queries
// on the old assignment before the control plane may tear its nodes down —
// the zero-dropped-queries half of the rolling-restart contract.
type routerView struct {
	epoch int64
	m     Map
	parts []*replicaSet

	inflight atomic.Int64
	retired  atomic.Bool
}

// Router is the cluster coordinator: it embeds each query once locally
// (it holds the full model weights; nodes hold only index slices),
// scatter-gathers the partition-scoped search over every partition's
// replica set, and merges per-partition hits under the canonical
// (Dist, Row) order — so a P-partition cluster returns bit-identical
// candidates to the single-process sharded index at any replica count.
// Replica selection per attempt combines the health state machine with an
// EWMA latency score; hedged duplicates race distinct replicas. When a
// whole replica set is missing the merge still returns the surviving
// partitions' exact results, flagged Partial.
//
// The partition→replica assignment is a versioned Map: ApplyMap installs a
// newer epoch atomically and drains queries still on the old one. Routed
// ingest (POST /ingest, Ingest) forwards deltas to the owning partition's
// primary and fans them to its replicas. Safe for concurrent use; Close
// stops the health prober.
type Router struct {
	model *core.EmbLookup
	opts  RouterOptions
	// MaxK bounds the per-request candidate budget of the HTTP front-end.
	MaxK int
	// Metrics, when set, is mounted as GET /metrics on the Handler —
	// normally the same registry the router records into.
	Metrics *obs.Registry
	// SlowLog, when set, records routed lookups that cross its threshold
	// (with the full cross-node span timeline) and is mounted as
	// GET /debug/slowlog.
	SlowLog *obs.SlowLog

	view atomic.Pointer[routerView]

	// mapMu serializes ApplyMap; clients persists nodeClients across
	// epochs keyed by URL, so health state and latency EWMAs survive a map
	// change and a readmitted URL keeps its history.
	mapMu   sync.Mutex
	clients map[string]*nodeClient

	// Routed-ingest state: the mutex orders batches (and lets a control
	// plane exclude ingest during a cutover via WithIngestLock), the log
	// replays deltas onto restarted or rebalanced replicas, and graphMu
	// guards the router's own graph copy, which grows so /lookup can
	// resolve ingested entity labels.
	ingestMu    sync.Mutex
	ingestLog   []core.IngestItem
	ingestCount atomic.Int64
	graphMu     sync.RWMutex

	reg              *obs.Registry
	partials         atomic.Int64
	deadlineExceeded atomic.Int64 // queries lost to a spent caller deadline
	latency          *obs.Histogram // end-to-end routed lookup latency
	mapSwaps         *obs.Counter
	ingestRouted     *obs.Counter
	ingestFanFail    *obs.Counter

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRouter builds a coordinator over the given node base URLs, one per
// partition in partition order — the unreplicated compatibility shape,
// equivalent to NewRouterWithMap(model, SingleMap(nodeURLs), opts). model
// must be the full (unpartitioned) trained model the nodes were partitioned
// from. The background health prober starts immediately; call Close to
// stop it.
func NewRouter(model *core.EmbLookup, nodeURLs []string, opts RouterOptions) (*Router, error) {
	if len(nodeURLs) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one node URL")
	}
	return NewRouterWithMap(model, SingleMap(nodeURLs), opts)
}

// NewRouterWithMap builds a coordinator serving the given cluster map —
// the replicated entry point. Later maps arrive through ApplyMap.
func NewRouterWithMap(model *core.EmbLookup, m Map, opts RouterOptions) (*Router, error) {
	opts.fill()
	r := &Router{
		model:   model,
		opts:    opts,
		MaxK:    1000,
		clients: make(map[string]*nodeClient),
		stop:    make(chan struct{}),
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	r.reg = reg
	r.latency = reg.Histogram("emblookup_cluster_lookup_seconds")
	r.mapSwaps = reg.Counter("emblookup_cluster_map_transitions_total")
	r.ingestRouted = reg.Counter("emblookup_cluster_ingest_routed_total")
	r.ingestFanFail = reg.Counter("emblookup_cluster_ingest_fanout_failures_total")
	reg.CounterFunc("emblookup_cluster_partial_responses_total", func() float64 {
		return float64(r.partials.Load())
	})
	reg.CounterFunc("emblookup_cluster_deadline_exceeded_total", func() float64 {
		return float64(r.deadlineExceeded.Load())
	})
	reg.GaugeFunc("emblookup_cluster_healthy_nodes", func() float64 {
		n := 0
		for _, c := range r.viewClients() {
			if c.healthy() {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("emblookup_cluster_map_epoch", func() float64 {
		return float64(r.Epoch())
	})
	if err := r.ApplyMap(m); err != nil {
		return nil, err
	}
	r.wg.Add(1)
	go r.probeLoop()
	return r, nil
}

// ApplyMap installs a newer cluster map: the routing view swaps atomically,
// new queries land on the new assignment immediately, and the call returns
// only after every query still running on the old assignment has finished —
// at which point the control plane may stop nodes the new map dropped.
// Node clients are reused across epochs by URL, so health state and latency
// history survive. Maps at or below the current epoch are rejected.
func (r *Router) ApplyMap(m Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	m = m.Clone()
	r.mapMu.Lock()
	old := r.view.Load()
	if old != nil && m.Epoch <= old.epoch {
		r.mapMu.Unlock()
		return fmt.Errorf("cluster: map epoch %d is not newer than the current %d: %w", m.Epoch, old.epoch, ErrStaleEpoch)
	}
	nv := &routerView{epoch: m.Epoch, m: m}
	for p, urls := range m.Replicas {
		rs := &replicaSet{partition: p}
		for j, u := range urls {
			c := r.clients[u]
			if c == nil {
				c = newNodeClient(p, j, u, r.opts.FailThreshold)
				c.observe(r.reg)
				r.clients[u] = c
			}
			rs.replicas = append(rs.replicas, c)
		}
		nv.parts = append(nv.parts, rs)
	}
	r.view.Store(nv)
	r.mapMu.Unlock()
	if old != nil {
		// Drain: queries pin their view, so when the old view's refcount
		// reaches zero nothing references the old assignment anymore.
		old.retired.Store(true)
		for old.inflight.Load() > 0 {
			time.Sleep(200 * time.Microsecond)
		}
		r.mapSwaps.Inc()
	}
	return nil
}

// acquireView pins the current view for one request. The retry loop closes
// the race with a concurrent ApplyMap: if the view retired between load and
// pin, the pin is released and the new view is taken instead — so the drain
// in ApplyMap can never miss a request.
func (r *Router) acquireView() *routerView {
	for {
		v := r.view.Load()
		v.inflight.Add(1)
		if !v.retired.Load() {
			return v
		}
		v.inflight.Add(-1)
	}
}

func (v *routerView) release() { v.inflight.Add(-1) }

// viewClients returns the distinct node clients of the current view in
// partition-major, replica-minor order (URLs are unique per map, so no
// dedupe is needed).
func (r *Router) viewClients() []*nodeClient {
	v := r.view.Load()
	if v == nil {
		return nil
	}
	var out []*nodeClient
	for _, rs := range v.parts {
		out = append(out, rs.replicas...)
	}
	return out
}

// Epoch returns the epoch of the map currently being served.
func (r *Router) Epoch() int64 {
	if v := r.view.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// Map returns a copy of the cluster map currently being served.
func (r *Router) Map() Map {
	if v := r.view.Load(); v != nil {
		return v.m.Clone()
	}
	return Map{}
}

// probeLoop periodically re-probes unhealthy nodes so a recovered node
// rejoins the scatter without waiting for traffic to be risked on it. The
// probe checks the node's /healthz *report*, not just its status code: a
// node must claim the partition the view assigns it and have applied the
// routed ingest watermark before it is readmitted.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			v := r.view.Load()
			if v == nil {
				continue
			}
			owner := len(v.parts) - 1
			for _, rs := range v.parts {
				expect := probeExpect{partition: rs.partition}
				if rs.partition == owner {
					expect.minApplied = r.ingestCount.Load()
				}
				for _, c := range rs.replicas {
					if !c.healthy() {
						c.probe(context.Background(), r.opts.ProbeTimeout, expect)
					}
				}
			}
		}
	}
}

// Close stops the health prober. In-flight lookups finish normally.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Partitions returns the cluster size P.
func (r *Router) Partitions() int {
	if v := r.view.Load(); v != nil {
		return len(v.parts)
	}
	return 0
}

// Result is one routed lookup: the merged candidates plus the degradation
// flags — Partial is true when at least one partition contributed nothing,
// and Failed lists those partition ids.
type Result struct {
	Candidates []lookup.Candidate
	Partial    bool
	Failed     []int
}

// BulkResult is a routed batch; PerQuery aligns with the query order and
// the degradation flags cover the whole batch (all queries of one scatter
// share the same surviving node set).
type BulkResult struct {
	PerQuery [][]lookup.Candidate
	Partial  bool
	Failed   []int
}

// Lookup answers one query through the cluster.
func (r *Router) Lookup(q string, k int) Result {
	return r.LookupTrace(nil, q, k)
}

// LookupTrace is Lookup with the request's trace threaded through the whole
// scatter: the router's embed and merge stages, one rpc span per node
// attempt (hedged duplicates and retries flagged), and each node's own
// spans grafted under its leg — one timeline for a routed query.
func (r *Router) LookupTrace(tr *obs.Trace, q string, k int) Result {
	br := r.BulkLookupTrace(tr, []string{q}, k)
	return Result{Candidates: br.PerQuery[0], Partial: br.Partial, Failed: br.Failed}
}

// BulkLookup embeds the batch once locally and scatters it to every
// partition's replica set in one partition-scoped request per partition.
func (r *Router) BulkLookup(queries []string, k int) BulkResult {
	return r.BulkLookupTrace(nil, queries, k)
}

// LookupCtx is Lookup under the caller's context: the scatter, its
// retries, backoffs, and hedges all stop the moment ctx fires, and the
// per-attempt node timeouts shrink to fit the remaining deadline. A
// context loss returns ctx.Err(); the deadline_exceeded counter ticks
// exactly once per lost query, here at the outermost layer.
func (r *Router) LookupCtx(ctx context.Context, q string, k int) (Result, error) {
	return r.LookupTraceCtx(ctx, nil, q, k)
}

// LookupTraceCtx is LookupCtx with the request's trace threaded through.
func (r *Router) LookupTraceCtx(ctx context.Context, tr *obs.Trace, q string, k int) (Result, error) {
	br, err := r.BulkLookupTraceCtx(ctx, tr, []string{q}, k)
	if err != nil {
		return Result{}, err
	}
	return Result{Candidates: br.PerQuery[0], Partial: br.Partial, Failed: br.Failed}, nil
}

// BulkLookupCtx is BulkLookup under the caller's context (see LookupCtx).
func (r *Router) BulkLookupCtx(ctx context.Context, queries []string, k int) (BulkResult, error) {
	return r.BulkLookupTraceCtx(ctx, nil, queries, k)
}

// BulkLookupTrace is BulkLookup with tracing (see LookupTrace).
func (r *Router) BulkLookupTrace(tr *obs.Trace, queries []string, k int) BulkResult {
	br, _ := r.BulkLookupTraceCtx(context.Background(), tr, queries, k)
	return br
}

// BulkLookupTraceCtx is the routed batch under both a trace and the
// caller's context. The context reaches every scatter leg — node attempts,
// backoff sleeps, hedged duplicates — so a caller that gives up cancels
// the whole fan-out instead of letting it finish into the void. The
// deadline_exceeded counter is incremented here and only here (once per
// query of the lost batch); the inner retry and hedge layers report
// context errors but never count them, which is what keeps the counter
// exactly-once.
func (r *Router) BulkLookupTraceCtx(ctx context.Context, tr *obs.Trace, queries []string, k int) (BulkResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := BulkResult{PerQuery: make([][]lookup.Candidate, len(queries))}
	if len(queries) == 0 {
		return out, nil
	}
	if k <= 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		r.deadlineExceeded.Add(int64(len(queries)))
		return out, err
	}
	t0 := time.Now()
	// Same over-fetch discipline as core.EmbLookup.Lookup: alias rows can
	// collapse onto one entity, so dedupe needs headroom.
	fetch := k
	if r.model.Config().IndexAliases {
		fetch = k * 3
	}
	sp := tr.Start("embed")
	embs := r.model.EmbedAll(queries, r.opts.Parallelism)
	sp.End()

	v := r.acquireView()
	defer v.release()
	parts := v.parts
	perPart := make([][][]server.PartitionHit, len(parts))
	errs := make([]error, len(parts))
	skipped := make([]bool, len(parts))
	var wg sync.WaitGroup
	for i, rs := range parts {
		if !rs.anyHealthy() {
			skipped[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, rs *replicaSet) {
			defer wg.Done()
			perPart[i], errs[i] = rs.search(ctx, tr, fetch, embs, r.opts)
		}(i, rs)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		r.deadlineExceeded.Add(int64(len(queries)))
		return out, err
	}
	for i := range parts {
		if skipped[i] || errs[i] != nil {
			out.Failed = append(out.Failed, i)
		}
	}
	out.Partial = len(out.Failed) > 0
	if out.Partial {
		r.partials.Add(1)
	}

	sp = tr.Start("merge")
	var all []server.PartitionHit
	for qi := range queries {
		all = all[:0]
		for i := range parts {
			if perPart[i] != nil {
				all = append(all, perPart[i][qi]...)
			}
		}
		out.PerQuery[qi] = mergeHits(all, fetch, k)
	}
	sp.End()
	r.latency.Since(t0)
	return out, nil
}

// mergeHits turns the union of per-partition top-fetch hits into the final
// candidate list, replaying the single-process pipeline exactly: sort under
// the canonical (Dist, Row) order, truncate to the global top-fetch —
// because each partition contributed its own exact top-fetch, the first
// fetch entries of the sorted union ARE the global top-fetch — then dedupe
// alias rows onto entities, best first, down to k.
func mergeHits(all []server.PartitionHit, fetch, k int) []lookup.Candidate {
	slices.SortFunc(all, func(a, b server.PartitionHit) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.Row < b.Row:
			return -1
		case a.Row > b.Row:
			return 1
		}
		return 0
	})
	if len(all) > fetch {
		all = all[:fetch]
	}
	seen := make(map[int32]bool, len(all))
	cands := make([]lookup.Candidate, 0, min(k, len(all)))
	for _, h := range all {
		if seen[h.Entity] {
			continue
		}
		seen[h.Entity] = true
		cands = append(cands, lookup.Candidate{ID: kg.EntityID(h.Entity), Score: -float64(h.Dist)})
		if len(cands) == k {
			break
		}
	}
	return cands
}

// RouterStats is the coordinator's observability snapshot: per-node health
// and traffic, the cluster-wide totals aggregated across nodes, and the
// routed-lookup latency quantiles. Nodes lists every replica of the current
// map in partition-major order, so an R=1 cluster's Nodes[i] is partition
// i's node, exactly the PR-4 shape.
type RouterStats struct {
	Partitions int   `json:"partitions"`
	Epoch      int64 `json:"epoch"`
	// Healthy counts healthy nodes; HealthyPartitions counts partitions
	// with at least one healthy replica (the number that decides whether
	// responses are partial).
	Healthy           int                 `json:"healthy"`
	HealthyPartitions int                 `json:"healthyPartitions"`
	PartialResponses  int64               `json:"partialResponses"`
	IngestRouted      int64               `json:"ingestRouted"`
	Totals            RouterTotals        `json:"totals"`
	Latency           *obs.LatencySummary `json:"latency,omitempty"`
	Nodes             []NodeStats         `json:"nodes"`
}

// RouterTotals sums the per-node traffic counters across the cluster.
type RouterTotals struct {
	Requests          int64 `json:"requests"`
	Failures          int64 `json:"failures"`
	Retries           int64 `json:"retries"`
	Hedges            int64 `json:"hedges"`
	HedgeWins         int64 `json:"hedgeWins"`
	HealthTransitions int64 `json:"healthTransitions"`
}

// Stats snapshots per-node health and traffic counters.
func (r *Router) Stats() RouterStats {
	v := r.view.Load()
	st := RouterStats{PartialResponses: r.partials.Load(), IngestRouted: r.ingestCount.Load()}
	if v == nil {
		return st
	}
	st.Partitions = len(v.parts)
	st.Epoch = v.epoch
	for _, rs := range v.parts {
		if rs.anyHealthy() {
			st.HealthyPartitions++
		}
		for _, c := range rs.replicas {
			ns := c.stats()
			if ns.Healthy {
				st.Healthy++
			}
			st.Totals.Requests += ns.Requests
			st.Totals.Failures += ns.Failures
			st.Totals.Retries += ns.Retries
			st.Totals.Hedges += ns.Hedges
			st.Totals.HedgeWins += ns.HedgeWins
			st.Totals.HealthTransitions += ns.HealthTransitions
			st.Nodes = append(st.Nodes, ns)
		}
	}
	if sum := r.latency.Summary(); sum.Count > 0 {
		st.Latency = &sum
	}
	return st
}

// RouteResponse is the router front-end's /lookup reply — the single-node
// LookupResponse shape plus the degradation flags, so a client can tell an
// exact answer from a surviving-partitions one.
type RouteResponse struct {
	Query   string           `json:"query"`
	TookUs  int64            `json:"tookUs"`
	Partial bool             `json:"partial,omitempty"`
	Failed  []int            `json:"failedPartitions,omitempty"`
	Results []server.Hit     `json:"results"`
	TraceID string           `json:"traceId,omitempty"`
	Trace   []obs.SpanRecord `json:"trace,omitempty"`
}

// Handler returns the router's HTTP front-end: the same /lookup, /bulk,
// /stats, /healthz, /ingest surface as a single node, answered by the
// cluster.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /lookup", r.handleLookup)
	mux.HandleFunc("POST /bulk", r.handleBulk)
	mux.HandleFunc("GET /stats", r.handleStats)
	mux.HandleFunc("POST /ingest", r.handleIngest)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.HealthzResponse{Status: "ok", Epoch: r.Epoch(), IngestApplied: r.ingestCount.Load()})
	})
	if r.Metrics != nil {
		mux.Handle("GET /metrics", r.Metrics.Handler())
	}
	if r.SlowLog != nil {
		mux.Handle("GET /debug/slowlog", r.SlowLog.Handler())
	}
	return mux
}

// requestCtx derives the fan-out context from the request: the HTTP
// request context (cancelled when the client disconnects) tightened by an
// explicit ?deadline_ms= / header budget when the caller set one.
func requestCtx(req *http.Request) (context.Context, context.CancelFunc, error) {
	d, ok, err := server.RequestDeadline(req)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return req.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(req.Context(), d)
	return ctx, cancel, nil
}

func (r *Router) parseK(req *http.Request) (int, error) {
	k := 10
	if ks := req.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > r.MaxK {
			return 0, fmt.Errorf("\"k\" must be an integer in 1..%d", r.MaxK)
		}
		k = v
	}
	return k, nil
}

func (r *Router) hits(cands []lookup.Candidate) []server.Hit {
	r.graphMu.RLock()
	defer r.graphMu.RUnlock()
	g := r.model.Graph()
	hits := make([]server.Hit, len(cands))
	for i, c := range cands {
		hits[i] = server.Hit{ID: int32(c.ID), Label: g.Label(c.ID), Score: c.Score}
	}
	return hits
}

func (r *Router) handleLookup(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query().Get("q")
	if q == "" {
		http.Error(w, `missing "q" parameter`, http.StatusBadRequest)
		return
	}
	k, err := r.parseK(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := requestCtx(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	// Open a trace when the caller asked (?trace=1), when an upstream hop
	// propagated an id, or when a slow entry might need the timeline.
	wantTrace := req.URL.Query().Get("trace") == "1"
	var tr *obs.Trace
	if id := req.Header.Get(obs.TraceHeader); id != "" {
		tr = obs.NewTraceWith(id)
		wantTrace = true
	} else if wantTrace || r.SlowLog != nil {
		tr = obs.NewTrace()
	}
	start := time.Now()
	res, err := r.LookupTraceCtx(ctx, tr, q, k)
	if err != nil {
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	took := time.Since(start)
	if r.SlowLog.Slow(took) {
		r.SlowLog.Record(obs.SlowEntry{
			Route: "/lookup", Query: q, K: k, DurUs: took.Microseconds(),
			TraceID: tr.ID(), Partial: res.Partial, Spans: tr.Spans(),
		})
	}
	resp := RouteResponse{
		Query:   q,
		TookUs:  took.Microseconds(),
		Partial: res.Partial,
		Failed:  res.Failed,
		Results: r.hits(res.Candidates),
	}
	if wantTrace {
		resp.TraceID = tr.ID()
		resp.Trace = tr.Spans()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleBulk mirrors the single-node /bulk: one query per body line, one
// NDJSON object per line back, each carrying the batch's degradation flags.
func (r *Router) handleBulk(w http.ResponseWriter, req *http.Request) {
	k, err := r.parseK(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	const maxBulkBytes = 1 << 20
	const maxBulkQueries = 4096
	req.Body = http.MaxBytesReader(w, req.Body, maxBulkBytes)
	queries, err := server.ReadQueryLines(req.Body, maxBulkQueries)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxBulkBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel, err := requestCtx(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	start := time.Now()
	res, err := r.BulkLookupCtx(ctx, queries, k)
	if err != nil {
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	if took := time.Since(start); r.SlowLog.Slow(took) {
		r.SlowLog.Record(obs.SlowEntry{
			Route: "/bulk", Query: fmt.Sprintf("[%d queries]", len(queries)),
			K: k, DurUs: took.Microseconds(), Partial: res.Partial,
		})
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i, q := range queries {
		enc.Encode(RouteResponse{
			Query:   q,
			Partial: res.Partial,
			Failed:  res.Failed,
			Results: r.hits(res.PerQuery[i]),
		})
	}
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.Stats())
}
