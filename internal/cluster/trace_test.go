package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"emblookup/internal/obs"
)

// spanNames collects the distinct names of a span list.
func spanNames(spans []obs.SpanRecord) map[string]int {
	m := map[string]int{}
	for _, s := range spans {
		m[s.Name]++
	}
	return m
}

// TestTracePropagationAcrossCluster routes one traced query through a
// 2-partition in-process cluster and asserts the single resulting timeline:
// the router's embed/merge stages, one rpc span per node leg, and each
// node's own search spans grafted under its partition prefix — proving the
// trace id crossed the HTTP hop in both directions.
func TestTracePropagationAcrossCluster(t *testing.T) {
	_, m := testModel(t)
	l, err := StartLocal(m, 2, LocalOptions{Router: RouterOptions{Registry: obs.New()}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tr := obs.NewTrace()
	res := l.Router.LookupTrace(tr, "marie curie", 5)
	if res.Partial {
		t.Fatalf("unexpected partial result: failed=%v", res.Failed)
	}
	names := spanNames(tr.Spans())
	for _, want := range []string{
		"embed", "merge",
		"node0/rpc", "node1/rpc",
		"node0/search", "node1/search",
		"node0/translate", "node1/translate",
	} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q; got %v", want, names)
		}
	}
	// Node spans must be re-based into the router's timeline: they start
	// after the router's embed stage began, not at zero of their own clock.
	var embedStart int64 = -1
	for _, s := range tr.Spans() {
		if s.Name == "embed" {
			embedStart = s.StartUs
		}
	}
	for _, s := range tr.Spans() {
		if strings.HasSuffix(s.Name, "/search") && s.StartUs < embedStart {
			t.Errorf("grafted span %q starts at %dus, before the router's embed at %dus", s.Name, s.StartUs, embedStart)
		}
	}
}

// TestTraceHTTPFrontEnd drives the router's HTTP /lookup with ?trace=1 and
// checks the response carries one trace id and the cross-node spans.
func TestTraceHTTPFrontEnd(t *testing.T) {
	_, m := testModel(t)
	reg := obs.New()
	l, err := StartLocal(m, 2, LocalOptions{Router: RouterOptions{Registry: reg}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Router.Metrics = reg
	l.Router.SlowLog = obs.NewSlowLog(0, 16) // threshold 0: log everything

	h := l.Router.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/lookup?q=marie+curie&k=3&trace=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp RouteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 16 {
		t.Fatalf("traceId = %q, want 16 hex digits", resp.TraceID)
	}
	names := spanNames(resp.Trace)
	for _, want := range []string{"embed", "merge", "node0/search", "node1/search"} {
		if names[want] == 0 {
			t.Errorf("response trace missing %q; got %v", want, names)
		}
	}
	// The zero-threshold slow log captured the same request with its spans.
	entries := l.Router.SlowLog.Snapshot()
	if len(entries) != 1 || entries[0].TraceID != resp.TraceID || len(entries[0].Spans) == 0 {
		t.Fatalf("slow log entry = %+v", entries)
	}

	// GET /metrics on the front-end exposes the router's registry.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE emblookup_cluster_lookup_seconds histogram",
		`emblookup_cluster_node_requests_total{partition="0"}`,
		"emblookup_cluster_healthy_nodes 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// GET /debug/slowlog dumps the captured entry.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog", nil))
	if !strings.Contains(rec.Body.String(), resp.TraceID) {
		t.Errorf("/debug/slowlog missing trace id %s: %s", resp.TraceID, rec.Body.String())
	}
}

// TestTraceHedgedSpansFlagged makes partition 1's first response straggle
// past the hedge delay and asserts the race shows up in the timeline: two
// rpc spans for that node, the duplicate flagged Hedged.
func TestTraceHedgedSpansFlagged(t *testing.T) {
	_, m := testModel(t)
	var calls atomic.Int64
	l, err := StartLocal(m, 2, LocalOptions{
		Router: RouterOptions{
			Registry:   obs.New(),
			HedgeAfter: 20 * time.Millisecond,
		},
		Wrap: func(partition int, h http.Handler) http.Handler {
			if partition != 1 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/partition/search" && calls.Add(1) == 1 {
					time.Sleep(150 * time.Millisecond) // first attempt straggles
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tr := obs.NewTrace()
	res := l.Router.LookupTrace(tr, "marie curie", 5)
	if res.Partial {
		t.Fatalf("unexpected partial result: failed=%v", res.Failed)
	}
	// The losing attempt closes its span asynchronously once the shared
	// context cancels it, so give it a moment to land.
	var plain, hedged int
	deadline := time.Now().Add(2 * time.Second)
	for {
		plain, hedged = 0, 0
		for _, s := range tr.Spans() {
			if s.Name == "node1/rpc" {
				if s.Hedged {
					hedged++
				} else {
					plain++
				}
			}
		}
		if plain >= 1 && hedged >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want both contenders of the hedge race in the trace; got plain=%d hedged=%d spans=%v",
				plain, hedged, tr.Spans())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := l.Router.Stats()
	if st.Totals.Hedges == 0 {
		t.Fatalf("router totals missing the hedge: %+v", st.Totals)
	}
	if st.Nodes[1].Hedges == 0 {
		t.Fatalf("node 1 stats missing the hedge: %+v", st.Nodes[1])
	}
}
