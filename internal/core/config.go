// Package core implements EmbLookup itself — the paper's contribution: a
// lookup service whose index is a set of learned 64-dimensional mention
// embeddings. The model is the two-path architecture of Section III-B (a
// character CNN for syntactic similarity plus a fastText-style subword model
// for semantic similarity, aggregated by a two-layer ReLU combiner), trained
// with triplet loss over mined triplets — offline on all triplets for the
// first half of the epochs, online on semi-hard/hard triplets for the
// second half — and served through an exact or product-quantized
// nearest-neighbor index (Sections III-C and III-D).
package core

import (
	"fmt"

	"emblookup/internal/quant"
)

// Config are the EmbLookup hyperparameters. Defaults follow the paper;
// DefaultConfig documents each paper value. Scaled-down settings for tests
// and laptop benchmarks come from FastConfig.
type Config struct {
	// Dim is the embedding dimensionality (paper: 64; Table VIII sweeps
	// 32–256).
	Dim int
	// CNNChannels is the number of kernels per convolution layer (paper: 8).
	CNNChannels int
	// CNNLayers is the number of convolution layers (paper: 5).
	CNNLayers int
	// Kernel is the convolution kernel size (paper: 3).
	Kernel int
	// Hidden is the width of the combiner's hidden layer.
	Hidden int
	// MaxLen is the maximum mention length L for one-hot encoding.
	MaxLen int

	// Margin is the triplet-loss margin.
	Margin float32
	// Loss selects the training objective: "triplet" (the paper's default,
	// Equation 3) or "contrastive" (the alternative the paper's conclusion
	// proposes evaluating). Empty means triplet.
	Loss string
	// TopLossFraction, when in (0,1), restricts every offline epoch after
	// the first to the most promising triplets — the highest-loss fraction
	// under the current model. This is the paper's future-work idea of
	// "training over the most promising triplets through mining ...
	// achieving the same accuracy while training over a smaller number of
	// triplets". 0 disables it.
	TopLossFraction float64
	// Epochs is the total training epoch count (paper: 100, half offline
	// and half online-mined).
	Epochs int
	// BatchSize is the minibatch size (paper: 128).
	BatchSize int
	// LR is the Adam learning rate.
	LR float32
	// TripletsPerEntity is the mining budget (paper: 100; Figure 3 sweeps
	// it).
	TripletsPerEntity int

	// NgramBuckets sizes the hashed subword table of the semantic model.
	NgramBuckets int
	// NgramEpochs trains the semantic model on synonym pairs.
	NgramEpochs int
	// MentionSlot feeds the semantic model's known-mention memorization
	// vector (ngram.EmbedParts) to the combiner as a third input. It
	// raises semantic-lookup accuracy on trained aliases at the cost of
	// typo robustness (the combiner learns to lean on the memorized slot),
	// so it is off by default; the ablation benches quantify the trade.
	MentionSlot bool
	// MentionDropout zeroes the known-mention input slot with this
	// probability during combiner training when MentionSlot is enabled.
	// Without it the combiner satisfies the triplets through the memorized
	// slot alone and never learns to use the CNN/subword paths.
	MentionDropout float64

	// Compress enables product quantization of the entity index (the EL
	// variant; false gives EL-NC).
	Compress bool
	// IVF adds an inverted-file coarse quantizer in front of the index
	// (FAISS's IVFFlat / IVFPQ, depending on Compress): queries probe only
	// the nearest coarse lists, trading a little recall for sub-linear
	// scans on large graphs.
	IVF bool
	// IVFNProbe is how many coarse lists a query scans (0 = the index
	// default).
	IVFNProbe int
	// PQ configures the product quantizer when Compress is set.
	PQ quant.PQConfig
	// FastScan builds the compressed index as the 4-bit fast-scan variant
	// (DESIGN.md §11): the PQ configuration is rewritten by quant.Config4
	// to twice the sub-quantizers at 16 centroids each (same bytes per
	// code), codes are stored block-interleaved, and queries scan a
	// uint8-quantized distance table with an exact float32 re-rank of the
	// survivors. Requires Compress; incompatible with IVF.
	FastScan bool

	// Rerank, when > 1, makes IVF-PQ queries over-fetch Rerank×k candidates
	// from the compressed ADC scan and decide the final top-k by exact
	// distances against the raw embedding matrix. With a v4 artifact the raw
	// vectors are an mmap'd section paged in on demand, so the fix for the
	// large-scale recall@10 sag costs pages only for the candidate rows a
	// query actually touches. Requires IVF and Compress; 0 disables.
	Rerank int

	// IndexAliases additionally embeds every alias as its own index row
	// (Section III-C notes this trades storage for accuracy).
	IndexAliases bool

	// SingleModel disables the CNN path and trains only the semantic path
	// through the combiner — the single-model ablation DESIGN.md calls out
	// (the paper reports the two-model design won).
	SingleModel bool

	// Workers bounds training/indexing parallelism (≤0 = GOMAXPROCS).
	Workers int

	// Hogwild switches both training phases to lock-free parallel SGD
	// (DESIGN.md §13): the semantic model trains with per-worker synonym
	// ranges over a shared bucket table, and the combiner drops the
	// per-batch replica-merge barrier for direct atomic updates to the
	// master parameters with per-worker Adam moment shards. Off (the
	// default) keeps the deterministic paths: bit-identical output for a
	// given seed at every worker count.
	Hogwild bool

	// Seed drives every random choice in mining, initialization, and
	// training order.
	Seed uint64
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Dim:               64,
		CNNChannels:       8,
		CNNLayers:         5,
		Kernel:            3,
		Hidden:            128,
		MaxLen:            32,
		Margin:            1.0,
		Epochs:            100,
		BatchSize:         128,
		LR:                1e-3,
		TripletsPerEntity: 100,
		NgramBuckets:      1 << 17,
		NgramEpochs:       20,
		MentionDropout:    0.5,
		Compress:          true,
		PQ:                quant.DefaultPQConfig(),
		Seed:              1234,
	}
}

// FastConfig returns a scaled-down configuration for tests and
// laptop-sized experiments: fewer epochs and triplets, a smaller hash
// table, and a PQ sized for small entity counts. The architecture is
// unchanged.
func FastConfig() Config {
	c := DefaultConfig()
	c.Epochs = 6
	c.TripletsPerEntity = 20
	c.NgramBuckets = 1 << 14
	c.NgramEpochs = 20
	c.LR = 3e-3
	c.PQ = quant.PQConfig{M: 8, Ks: 64, Iters: 8, Seed: 31}
	return c
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.Dim <= 0 || c.MaxLen <= 0 || c.Epochs < 0 || c.BatchSize <= 0 {
		return fmt.Errorf("core: non-positive dimension/epoch/batch in config")
	}
	if c.Compress && c.Dim%c.PQ.M != 0 {
		return fmt.Errorf("core: Dim=%d not divisible by PQ.M=%d", c.Dim, c.PQ.M)
	}
	if c.FastScan {
		if !c.Compress {
			return fmt.Errorf("core: FastScan requires Compress (it is a compressed-index layout)")
		}
		if c.IVF {
			return fmt.Errorf("core: FastScan is incompatible with IVF")
		}
		// The 4-bit variant doubles the sub-quantizer count (quant.Config4),
		// so the dimensionality must split across 2·M sub-spaces.
		if c.Dim%(2*c.PQ.M) != 0 {
			return fmt.Errorf("core: Dim=%d not divisible by the fast-scan sub-quantizer count 2·PQ.M=%d", c.Dim, 2*c.PQ.M)
		}
		if 2*c.PQ.M > quant.MaxM4 {
			return fmt.Errorf("core: fast-scan sub-quantizer count %d exceeds %d", 2*c.PQ.M, quant.MaxM4)
		}
	}
	if c.Rerank < 0 {
		return fmt.Errorf("core: Rerank must be >= 0, got %d", c.Rerank)
	}
	if c.Rerank > 1 && !(c.IVF && c.Compress) {
		return fmt.Errorf("core: Rerank requires IVF and Compress (exact re-rank only applies to IVF-PQ)")
	}
	if c.Kernel%2 == 0 {
		return fmt.Errorf("core: kernel size must be odd for same-padding, got %d", c.Kernel)
	}
	switch c.Loss {
	case "", "triplet", "contrastive":
	default:
		return fmt.Errorf("core: unknown loss %q (want triplet or contrastive)", c.Loss)
	}
	if c.TopLossFraction < 0 || c.TopLossFraction >= 1 {
		if c.TopLossFraction != 0 {
			return fmt.Errorf("core: TopLossFraction %v out of (0,1)", c.TopLossFraction)
		}
	}
	return nil
}
