package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/tabular"
	"emblookup/internal/triplet"
)

// The shared fixture trains one small model; individual tests reuse it to
// keep the suite fast. Tests that need different configs train their own
// smaller models.
var (
	fixtureOnce  sync.Once
	fixtureGraph *kg.Graph
	fixtureModel *EmbLookup
)

func testConfig() Config {
	cfg := FastConfig()
	cfg.Epochs = 4
	cfg.TripletsPerEntity = 12
	cfg.NgramEpochs = 6
	return cfg
}

func fixture(t *testing.T) (*kg.Graph, *EmbLookup) {
	t.Helper()
	fixtureOnce.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 400))
		e, err := Train(g, testConfig())
		if err != nil {
			panic(err)
		}
		fixtureGraph, fixtureModel = g, e
	})
	return fixtureGraph, fixtureModel
}

func recallAt10(e *EmbLookup, queries []string, truths []kg.EntityID) float64 {
	hits := 0
	for i, q := range queries {
		for _, c := range e.Lookup(q, 10) {
			if c.ID == truths[i] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(queries))
}

func TestTrainCleanLookup(t *testing.T) {
	g, e := fixture(t)
	var queries []string
	var truths []kg.EntityID
	for i := 0; i < 100; i++ {
		queries = append(queries, g.Entities[i].Label)
		truths = append(truths, g.Entities[i].ID)
	}
	if r := recallAt10(e, queries, truths); r < 0.9 {
		t.Fatalf("clean recall@10 = %.2f, want >= 0.9", r)
	}
}

func TestTrainNoisyLookup(t *testing.T) {
	g, e := fixture(t)
	rng := mathx.NewRNG(5)
	var queries []string
	var truths []kg.EntityID
	for i := 0; i < 100; i++ {
		ent := &g.Entities[rng.Intn(len(g.Entities))]
		queries = append(queries, tabular.ApplyNoise(ent.Label, tabular.TransposeLetters, rng))
		truths = append(truths, ent.ID)
	}
	if r := recallAt10(e, queries, truths); r < 0.5 {
		t.Fatalf("noisy recall@10 = %.2f, want >= 0.5", r)
	}
}

func TestSemanticLookupBeatsChance(t *testing.T) {
	g, e := fixture(t)
	rng := mathx.NewRNG(7)
	var queries []string
	var truths []kg.EntityID
	for i := 0; i < 100; i++ {
		ent := &g.Entities[rng.Intn(len(g.Entities))]
		if len(ent.Aliases) == 0 {
			continue
		}
		queries = append(queries, ent.Aliases[rng.Intn(len(ent.Aliases))])
		truths = append(truths, ent.ID)
	}
	if r := recallAt10(e, queries, truths); r < 0.35 {
		t.Fatalf("alias recall@10 = %.2f, want >= 0.35", r)
	}
}

func TestLookupKHandling(t *testing.T) {
	g, e := fixture(t)
	if res := e.Lookup(g.Entities[0].Label, 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
	res := e.Lookup(g.Entities[0].Label, 3)
	if len(res) > 3 {
		t.Fatalf("got %d results for k=3", len(res))
	}
	// Scores must be non-increasing.
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
}

func TestEmbedDeterministicAndConcurrent(t *testing.T) {
	g, e := fixture(t)
	q := g.Entities[3].Label
	want := e.Embed(q)
	done := make(chan []float32, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- e.Embed(q) }()
	}
	for i := 0; i < 8; i++ {
		got := <-done
		for j := range want {
			if got[j] != want[j] {
				t.Fatal("concurrent Embed results differ")
			}
		}
	}

	// Hammer Lookup and BulkLookup from many goroutines against the
	// sequential answers. Pooled scratch is recycled across goroutines and
	// queries here, so any aliasing bug (a buffer shared by two in-flight
	// lookups, or state leaking between consecutive queries on one worker)
	// shows up as a diverging result.
	queries := make([]string, 32)
	for i := range queries {
		queries[i] = g.Entities[i*7%len(g.Entities)].Label
	}
	seqLookup := make([][]lookup.Candidate, len(queries))
	for i, s := range queries {
		seqLookup[i] = e.Lookup(s, 10)
	}
	seqBulk := e.BulkLookup(queries, 5, 1)

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				qi := (w*10 + iter) % len(queries)
				got := e.Lookup(queries[qi], 10)
				if len(got) != len(seqLookup[qi]) {
					errc <- fmt.Errorf("concurrent Lookup(%q) returned %d candidates, want %d",
						queries[qi], len(got), len(seqLookup[qi]))
					return
				}
				for j := range got {
					if got[j] != seqLookup[qi][j] {
						errc <- fmt.Errorf("concurrent Lookup(%q) diverges at %d: %+v vs %+v",
							queries[qi], j, got[j], seqLookup[qi][j])
						return
					}
				}
			}
			// Nested parallel bulk from concurrent callers.
			bulk := e.BulkLookup(queries, 5, 4)
			for i := range bulk {
				if len(bulk[i]) != len(seqBulk[i]) {
					errc <- fmt.Errorf("concurrent BulkLookup length diverges for %q", queries[i])
					return
				}
				for j := range bulk[i] {
					if bulk[i][j] != seqBulk[i][j] {
						errc <- fmt.Errorf("concurrent BulkLookup diverges for %q at %d", queries[i], j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestBulkLookupMatchesSequential(t *testing.T) {
	g, e := fixture(t)
	var queries []string
	for i := 0; i < 40; i++ {
		queries = append(queries, g.Entities[i].Label)
	}
	seq := e.BulkLookup(queries, 5, 1)
	par := e.BulkLookup(queries, 5, 8)
	for i := range queries {
		if len(seq[i]) != len(par[i]) {
			t.Fatal("length mismatch")
		}
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatal("parallel bulk lookup diverges from sequential")
			}
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 120))
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.Workers = 1 // replica merge order varies with >1 worker
	e1, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := e1.Embed("Bramonia")
	b := e2.Embed("Bramonia")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("single-worker training not deterministic")
		}
	}
}

func TestCompressionToggle(t *testing.T) {
	g, e := fixture(t)
	// EL (compressed) payload must be Dim*4/M smaller than EL-NC.
	elBytes := e.Index().SizeBytes()
	if err := e.RebuildIndex(false); err != nil {
		t.Fatal(err)
	}
	ncBytes := e.Index().SizeBytes()
	if ncBytes <= elBytes*4 {
		t.Fatalf("EL-NC (%d B) should be much larger than EL (%d B)", ncBytes, elBytes)
	}
	// Restore compressed state for other tests.
	if err := e.RebuildIndex(true); err != nil {
		t.Fatal(err)
	}
	_ = g
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g, e := fixture(t)
	var buf bytes.Buffer
	if err := e.Write(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"Bramonia", g.Entities[0].Label, "xyz 123"} {
		a, b := e.Embed(q), e2.Embed(q)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("loaded model embeds %q differently", q)
			}
		}
	}
	// The rebuilt index must answer identically.
	q := g.Entities[1].Label
	r1 := e.Lookup(q, 5)
	r2 := e2.Lookup(q, 5)
	if len(r1) != len(r2) {
		t.Fatal("loaded index answers differently")
	}
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Fatal("loaded index ranks differently")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g, e := fixture(t)
	path := t.TempDir() + "/model.bin"
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, g); err != nil {
		t.Fatal(err)
	}
}

func TestSingleModelAblationTrains(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 120))
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.SingleModel = true
	e, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Embed("anything") == nil {
		t.Fatal("single-model embed failed")
	}
	res := e.Lookup(g.Entities[0].Label, 5)
	if len(res) == 0 {
		t.Fatal("single-model lookup empty")
	}
}

func TestIndexAliasesImprovesAliasRecall(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 150))
	cfg := testConfig()
	cfg.Epochs = 2
	base, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.IndexAliases = true
	withAliases, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(11)
	var queries []string
	var truths []kg.EntityID
	for i := 0; i < 80; i++ {
		ent := &g.Entities[rng.Intn(len(g.Entities))]
		if len(ent.Aliases) == 0 {
			continue
		}
		queries = append(queries, ent.Aliases[rng.Intn(len(ent.Aliases))])
		truths = append(truths, ent.ID)
	}
	rBase := recallAt10(base, queries, truths)
	rAlias := recallAt10(withAliases, queries, truths)
	if rAlias < rBase {
		t.Fatalf("alias rows should not hurt alias recall: %.2f vs %.2f", rAlias, rBase)
	}
	if withAliases.Index().Len() <= base.Index().Len() {
		t.Fatal("alias index should have more rows")
	}
}

func TestValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 60 // not divisible by PQ.M=8
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected divisibility error")
	}
	cfg = DefaultConfig()
	cfg.Kernel = 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected odd-kernel error")
	}
	cfg = DefaultConfig()
	cfg.BatchSize = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected batch error")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestNames(t *testing.T) {
	_, e := fixture(t)
	if e.Name() != "emblookup" {
		t.Fatalf("Name = %q", e.Name())
	}
	nc := *e
	nc.cfg.Compress = false
	if nc.Name() != "emblookup-nc" {
		t.Fatalf("NC name = %q", nc.Name())
	}
}

func TestContrastiveLossTrains(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 150))
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.Loss = "contrastive"
	e, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var queries []string
	var truths []kg.EntityID
	for i := 0; i < 60; i++ {
		queries = append(queries, g.Entities[i].Label)
		truths = append(truths, g.Entities[i].ID)
	}
	if r := recallAt10(e, queries, truths); r < 0.8 {
		t.Fatalf("contrastive clean recall = %.2f", r)
	}
}

func TestTopLossScheduleTrains(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 150))
	cfg := testConfig()
	cfg.Epochs = 4
	cfg.TopLossFraction = 0.25
	e, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var queries []string
	var truths []kg.EntityID
	for i := 0; i < 60; i++ {
		queries = append(queries, g.Entities[i].Label)
		truths = append(truths, g.Entities[i].ID)
	}
	if r := recallAt10(e, queries, truths); r < 0.8 {
		t.Fatalf("top-loss clean recall = %.2f", r)
	}
}

func TestValidateNewOptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Loss = "hinge"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown loss should fail validation")
	}
	cfg = DefaultConfig()
	cfg.TopLossFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range TopLossFraction should fail validation")
	}
	cfg = DefaultConfig()
	cfg.Loss = "contrastive"
	cfg.TopLossFraction = 0.5
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestValidateRerank(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rerank = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Rerank should fail validation")
	}
	cfg = DefaultConfig()
	cfg.Rerank = 8
	if err := cfg.Validate(); err == nil {
		t.Fatal("Rerank without IVF+Compress should fail validation")
	}
	cfg.IVF, cfg.Compress = true, true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid rerank config rejected: %v", err)
	}
	// Rerank ≤ 1 is a no-op and needs no index preconditions.
	cfg = DefaultConfig()
	cfg.Rerank = 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Rerank=1 rejected: %v", err)
	}
}

func TestWithAliasRows(t *testing.T) {
	g, e := fixture(t)
	withA, err := e.WithAliasRows()
	if err != nil {
		t.Fatal(err)
	}
	if withA.Index().Len() <= e.Index().Len() {
		t.Fatal("alias rows should enlarge the index")
	}
	// The original service must be untouched.
	if e.Config().IndexAliases {
		t.Fatal("WithAliasRows mutated the receiver")
	}
	_ = g
}

func TestIVFIndexVariants(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.IVF = true
	cfg.IVFNProbe = 64 // effectively exhaustive at this size
	for _, compress := range []bool{false, true} {
		cfg.Compress = compress
		e, err := Train(g, cfg)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		hits := 0
		for i := 0; i < 50; i++ {
			for _, c := range e.Lookup(g.Entities[i].Label, 10) {
				if c.ID == g.Entities[i].ID {
					hits++
					break
				}
			}
		}
		if hits < 45 {
			t.Fatalf("IVF compress=%v clean recall %d/50", compress, hits)
		}
	}
}

func TestMinerRelatedHook(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 100))
	related := func(id kg.EntityID) []kg.EntityID {
		return g.Neighbors(id)
	}
	mCfg := triplet.DefaultMinerConfig()
	mCfg.PerEntity = 20
	mCfg.TypeShare = 0.3
	mCfg.Related = related
	ts := triplet.Mine(g, mCfg)
	if len(ts) == 0 {
		t.Fatal("no triplets")
	}
	// At least some positives should be neighbor labels.
	neighborPositives := 0
	for _, tr := range ts {
		ids := g.ExactMatch(tr.Anchor)
		if len(ids) == 0 {
			continue
		}
		for _, nb := range g.Neighbors(ids[0]) {
			if g.Label(nb) == tr.Positive {
				neighborPositives++
				break
			}
		}
	}
	if neighborPositives == 0 {
		t.Fatal("Related hook produced no neighbor positives")
	}
}
