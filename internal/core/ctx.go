package core

import (
	"context"
	"time"

	"emblookup/internal/index"
	"emblookup/internal/lookup"
	"emblookup/internal/par"
)

// LookupCtx is Lookup with cooperative cancellation: the pipeline checks
// ctx at each stage boundary (embed → search → merge) and, when the index
// supports it (index.CtxSearcher — the sharded index does), inside the
// shard fan-out too, so a caller that has given up stops costing CPU
// mid-scan instead of completing work nobody will read. With a context
// that can never be cancelled this is exactly Lookup — same results, same
// allocation budget. A done context returns ctx.Err() and no candidates.
func (e *EmbLookup) LookupCtx(ctx context.Context, q string, k int) ([]lookup.Candidate, error) {
	if ctx == nil || ctx.Done() == nil {
		return e.Lookup(q, k), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	return e.lookupCtx(sc, ctx, q, k, nil)
}

// lookupCtx is the cancellable twin of lookupTraced: same stages, same
// stage histograms, same output, plus a ctx check between stages. The
// caller has already established that ctx is cancellable and not yet done.
func (e *EmbLookup) lookupCtx(sc *Scratch, ctx context.Context, q string, k int, dst []lookup.Candidate) ([]lookup.Candidate, error) {
	if k <= 0 {
		return nil, nil
	}
	fetch := k
	if e.cfg.IndexAliases {
		fetch = k * 3
	}
	t0 := time.Now()
	emb := e.embedInto(sc, q, true)
	stageEmbed.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t1 := time.Now()
	var res []index.Result
	switch ix := e.ix.(type) {
	case index.CtxSearcher:
		r, err := ix.SearchAppendCtx(ctx, &sc.ix, emb, fetch, sc.res)
		if err != nil {
			return nil, err
		}
		sc.res = r
		res = r
	case index.AppendSearcher:
		sc.res = ix.SearchAppendWith(&sc.ix, emb, fetch, sc.res)
		res = sc.res
	case index.ScratchSearcher:
		res = ix.SearchWith(&sc.ix, emb, fetch)
	default:
		res = e.ix.Search(emb, fetch)
	}
	stageSearch.Since(t1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t2 := time.Now()
	out := e.dedupeAppend(sc, res, k, dst)
	stageMerge.Since(t2)
	lookupsTotal.Inc()
	lookupSeconds.Since(t0)
	return out, nil
}

// BulkLookupCtx is BulkLookup with cooperative cancellation. Queries not
// yet started when the context is done are skipped entirely; a cancelled
// batch returns ctx.Err() and no results. With a context that can never be
// cancelled this is exactly BulkLookup.
func (e *EmbLookup) BulkLookupCtx(ctx context.Context, queries []string, k, parallelism int) ([][]lookup.Candidate, error) {
	if ctx == nil || ctx.Done() == nil {
		return e.BulkLookup(queries, k, parallelism), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bulkTotal.Inc()
	bulkQueries.ObserveVal(int64(len(queries)))
	out := make([][]lookup.Candidate, len(queries))
	if len(queries) == 0 || k <= 0 {
		return out, nil
	}
	if bs, ok := e.ix.(index.BatchCtxSearcher); ok {
		return e.bulkViaBatchCtx(bs, ctx, queries, k, parallelism)
	}
	flat := make([]lookup.Candidate, len(queries)*k)
	scratches := make([]*Scratch, par.Workers(len(queries), parallelism))
	par.ForEachWorker(len(queries), parallelism, func(w, i int) {
		if ctx.Err() != nil {
			return
		}
		sc := scratches[w]
		if sc == nil {
			sc = getScratch()
			scratches[w] = sc
		}
		out[i], _ = e.lookupCtx(sc, ctx, queries[i], k, flat[i*k:i*k:(i+1)*k])
	})
	for _, sc := range scratches {
		if sc != nil {
			putScratch(sc)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// bulkViaBatchCtx is bulkViaBatch with the batch search and the per-query
// dedupe under ctx.
func (e *EmbLookup) bulkViaBatchCtx(bs index.BatchCtxSearcher, ctx context.Context, queries []string, k, parallelism int) ([][]lookup.Candidate, error) {
	fetch := k
	if e.cfg.IndexAliases {
		fetch = k * 3
	}
	embs := e.EmbedAll(queries, parallelism)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := bs.SearchBatchCtx(ctx, embs, fetch, parallelism)
	if err != nil {
		return nil, err
	}
	out := make([][]lookup.Candidate, len(queries))
	flat := make([]lookup.Candidate, len(queries)*k)
	scratches := make([]*Scratch, par.Workers(len(queries), parallelism))
	par.ForEachWorker(len(queries), parallelism, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = getScratch()
			scratches[w] = sc
		}
		out[i] = e.dedupeAppend(sc, res[i], k, flat[i*k:i*k:(i+1)*k])
	})
	for _, sc := range scratches {
		if sc != nil {
			putScratch(sc)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
