package core

import (
	"fmt"
	"sync"

	"emblookup/internal/index"
	"emblookup/internal/kg"
)

// extraRows extends the trained row→entity mapping for rows inserted at
// serve time through a dynamic index. The trained prefix (e.rows) is
// immutable and read lock-free on the hot path; only the extension pays a
// read lock, and only for rows that were actually added live.
type extraRows struct {
	mu  sync.RWMutex
	ids []kg.EntityID
}

// rowEntity maps an index row id to its entity. Rows past the trained
// mapping were appended through AddMention and live in the extension.
func (e *EmbLookup) rowEntity(row int32) kg.EntityID {
	if int(row) < len(e.rows) {
		return e.rows[row]
	}
	e.extra.mu.RLock()
	id := e.extra.ids[int(row)-len(e.rows)]
	e.extra.mu.RUnlock()
	return id
}

// RowEntity maps an index row id to its entity, including rows appended
// live through AddMention. Partition nodes use it to translate search hits
// into globally meaningful entity ids even for delta rows.
func (e *EmbLookup) RowEntity(row int32) kg.EntityID {
	if e.extra == nil || int(row) < len(e.rows) {
		return e.rows[row]
	}
	return e.rowEntity(row)
}

// WithDynamicIndex returns a sibling service sharing this model's weights
// whose index accepts live mutation: AddMention inserts new index rows and
// DeleteRow tombstones existing ones while concurrent Lookup traffic keeps
// flowing (index.Dynamic merges the sealed base with the append-only delta
// under the canonical result order). maxDelta is the delta size that
// triggers compaction back into the base (≤0 = index default). The wrapped
// index is retained and mutated by compaction, so the parent service must
// not keep serving from it.
func (e *EmbLookup) WithDynamicIndex(maxDelta int) *EmbLookup {
	clone := *e
	clone.ix = index.NewDynamic(e.ix, maxDelta)
	clone.extra = &extraRows{}
	return &clone
}

// Dynamic exposes the mutable index, or nil when the service was not built
// with WithDynamicIndex.
func (e *EmbLookup) Dynamic() *index.Dynamic {
	dyn, _ := e.ix.(*index.Dynamic)
	return dyn
}

// AddMention embeds mention in the index (anchor) space and inserts it as a
// live index row resolving to entity id — the online path for new entities
// or newly learned aliases, with no retraining and no index rebuild. It
// returns the stable row id. All insertions must go through this method so
// the row→entity extension stays aligned with the index's id sequence.
func (e *EmbLookup) AddMention(mention string, id kg.EntityID) (int32, error) {
	dyn := e.Dynamic()
	if dyn == nil {
		return 0, fmt.Errorf("core: index is not mutable (build the service with WithDynamicIndex)")
	}
	if int(id) < 0 || int(id) >= len(e.graph.Entities) {
		return 0, fmt.Errorf("core: entity %d outside the graph (%d entities)", id, len(e.graph.Entities))
	}
	emb := e.IndexEmbed(mention)
	// The extension entry must be visible before the row becomes
	// searchable, and concurrent adds must pair row ids with entities in
	// one atomic step — hence the append-then-Add order under one lock.
	e.extra.mu.Lock()
	e.extra.ids = append(e.extra.ids, id)
	row := dyn.Add(emb)
	e.extra.mu.Unlock()
	return row, nil
}

// DeleteRow tombstones an index row (trained or live-added). It reports
// whether the row was present and live. Deleted rows stop appearing in
// results immediately; their storage is reclaimed at the next compaction.
func (e *EmbLookup) DeleteRow(row int32) bool {
	dyn := e.Dynamic()
	if dyn == nil {
		return false
	}
	return dyn.Delete(row)
}
