package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"emblookup/internal/index"
	"emblookup/internal/kg"
)

// fastScanSibling derives the fast-scan variant of the shared fixture.
func fastScanSibling(t *testing.T) (*kg.Graph, *EmbLookup, *EmbLookup) {
	t.Helper()
	g, e := fixture(t)
	fs, err := e.WithFastScan()
	if err != nil {
		t.Fatal(err)
	}
	return g, e, fs
}

// TestWithFastScan asserts the fast-scan sibling serves real lookups at the
// same storage cost (±block padding) and comparable recall to the 8-bit PQ
// variant, without touching the receiver.
func TestWithFastScan(t *testing.T) {
	g, e, fs := fastScanSibling(t)
	if _, ok := fs.Index().(*index.FastScan); !ok {
		t.Fatalf("index type %T, want *index.FastScan", fs.Index())
	}
	if e.Config().FastScan {
		t.Fatal("WithFastScan mutated the receiver")
	}
	// Same bytes per code: 2·M nibbles pack into M bytes; only the final
	// partial block adds padding.
	if pq, fsB := e.Index().SizeBytes(), fs.Index().SizeBytes(); fsB < pq || fsB > pq+32*e.Config().PQ.M {
		t.Fatalf("fast-scan payload %d B vs PQ %d B", fsB, pq)
	}
	var queries []string
	var truths []kg.EntityID
	for i := 0; i < 100; i++ {
		queries = append(queries, g.Entities[i].Label)
		truths = append(truths, g.Entities[i].ID)
	}
	rPQ := recallAt10(e, queries, truths)
	rFS := recallAt10(fs, queries, truths)
	if rFS < rPQ-0.05 {
		t.Fatalf("fast-scan recall@10 %.2f dropped more than 0.05 below PQ %.2f", rFS, rPQ)
	}
}

// TestFastScanShardedBitIdentical asserts the serve-stack wrapper (sharded
// scans) over a fast-scan index answers bit-identically to the unsharded
// sibling — the property the whole serve path inherits.
func TestFastScanShardedBitIdentical(t *testing.T) {
	g, _, fs := fastScanSibling(t)
	sh, err := fs.WithShardedIndex(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var queries []string
	for i := 0; i < 24; i++ {
		queries = append(queries, g.Entities[i].Label)
	}
	for _, q := range queries {
		want := fs.Lookup(q, 10)
		got := sh.Lookup(q, 10)
		if len(want) != len(got) {
			t.Fatalf("%q: %d vs %d candidates", q, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%q: candidate %d diverges: %+v vs %+v", q, i, want[i], got[i])
			}
		}
	}
	// The batch path (shard-major SearchBatch) must agree too.
	bulk := sh.BulkLookup(queries, 10, 4)
	for i, q := range queries {
		want := fs.Lookup(q, 10)
		for j := range want {
			if want[j] != bulk[i][j] {
				t.Fatalf("bulk %q: candidate %d diverges", q, j)
			}
		}
	}
}

// TestFastScanPartition asserts WithPartition slices a fast-scan index: the
// partition searches its local rows and maps them to the same entities the
// full index would.
func TestFastScanPartition(t *testing.T) {
	g, _, fs := fastScanSibling(t)
	n := fs.Index().Len()
	mid := n / 2
	left, err := fs.WithPartition(0, mid)
	if err != nil {
		t.Fatal(err)
	}
	right, err := fs.WithPartition(mid, n)
	if err != nil {
		t.Fatal(err)
	}
	if left.Index().Len() != mid || right.Index().Len() != n-mid {
		t.Fatalf("partition sizes %d + %d, want %d + %d", left.Index().Len(), right.Index().Len(), mid, n-mid)
	}
	// A query's global top-1 must appear as the top-1 of the partition
	// holding its row (the scatter-gather merge in internal/cluster builds
	// on exactly this).
	for i := 0; i < 20; i++ {
		q := g.Entities[i].Label
		want := fs.Lookup(q, 1)
		lres, rres := left.Lookup(q, 1), right.Lookup(q, 1)
		if len(want) != 1 || len(lres) != 1 || len(rres) != 1 {
			t.Fatalf("%q: missing results", q)
		}
		best := lres[0]
		if rres[0].Score > best.Score {
			best = rres[0]
		}
		if best.ID != want[0].ID || best.Score != want[0].Score {
			t.Fatalf("%q: partition best %+v, full %+v", q, best, want[0])
		}
	}
}

// TestFastScanSaveLoadRoundTrip asserts the legacy gob version-3 artifact
// round-trips bit-identically, and that non-fast-scan models keep stamping
// version 2 (the current default format, v4, is covered in
// persist4_test.go).
func TestFastScanSaveLoadRoundTrip(t *testing.T) {
	g, e, fs := fastScanSibling(t)
	var buf bytes.Buffer
	if err := fs.WriteGob(&buf, true); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var wire modelWire
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Version != 3 {
		t.Fatalf("fast-scan artifact stamped version %d, want 3", wire.Version)
	}
	if wire.Index == nil || wire.Index.Kind != "fastscan" {
		t.Fatalf("artifact kind %+v, want fastscan", wire.Index)
	}
	re, err := Read(bytes.NewReader(raw), g)
	if err != nil {
		t.Fatal(err)
	}
	if re.IndexProvenance().Source != "loaded" {
		t.Fatalf("provenance %q, want loaded", re.IndexProvenance().Source)
	}
	for i := 0; i < 20; i++ {
		q := g.Entities[i].Label
		want, got := fs.Lookup(q, 10), re.Lookup(q, 10)
		if len(want) != len(got) {
			t.Fatalf("%q: %d vs %d candidates", q, len(want), len(got))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("%q: loaded index diverges at %d: %+v vs %+v", q, j, want[j], got[j])
			}
		}
	}

	// Back-compat: a model without fast-scan still writes version 2.
	buf.Reset()
	if err := e.WriteGob(&buf, true); err != nil {
		t.Fatal(err)
	}
	var wire2 modelWire
	if err := gob.NewDecoder(&buf).Decode(&wire2); err != nil {
		t.Fatal(err)
	}
	if wire2.Version != 2 {
		t.Fatalf("PQ artifact stamped version %d, want 2", wire2.Version)
	}
}

// TestValidateFastScan covers the fast-scan configuration rules.
func TestValidateFastScan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FastScan = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default + FastScan invalid: %v", err)
	}
	cfg.Compress = false
	if err := cfg.Validate(); err == nil {
		t.Fatal("FastScan without Compress accepted")
	}
	cfg = DefaultConfig()
	cfg.FastScan = true
	cfg.IVF = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("FastScan with IVF accepted")
	}
	cfg = DefaultConfig()
	cfg.FastScan = true
	cfg.Dim = 72 // divisible by M=8 but not by 2M=16
	if err := cfg.Validate(); err == nil {
		t.Fatal("Dim not divisible by 2·M accepted")
	}
}
