package core

import (
	"bytes"
	"encoding/gob"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"emblookup/internal/kg"
)

// The golden corpus pins backward compatibility to real bytes: tiny models
// in every historic format (gob v0 weights-only, gob v2 index artifact, gob
// v3 fast-scan artifact) are checked into testdata/, and every build must
// keep loading them and re-serializing them to the current format (v4) with
// bit-identical search results. Regenerate with
//
//	go test ./internal/core/ -run TestGoldenCorpus -update-golden
//
// after an intentional format change (the graph below must stay fixed — the
// goldens' row mappings reference its entity numbering).
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden corpus in testdata/")

// goldenEntities pins the graph the goldens were trained on. Never change
// it without regenerating the corpus.
const goldenEntities = 80

func goldenGraph() *kg.Graph {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, goldenEntities))
	return g
}

var (
	goldenOnce  sync.Once
	goldenModel *EmbLookup
)

// goldenTrain trains the corpus model (only used with -update-golden).
func goldenTrain(t *testing.T, g *kg.Graph) *EmbLookup {
	t.Helper()
	goldenOnce.Do(func() {
		cfg := FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 4
		cfg.NgramEpochs = 4
		cfg.NgramBuckets = 1 << 10 // keeps each checked-in golden under ~1 MB
		cfg.Compress = true
		e, err := Train(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		goldenModel = e
	})
	return goldenModel
}

// wireV0 mirrors the original weights-only layout, before the Version and
// Index fields existed. Gob matches fields by name, so decoding a wireV0
// stream into modelWire leaves Version at 0 and Index nil — exactly how a
// real pre-versioning file reads.
type wireV0 struct {
	Cfg           Config
	Alphabet      string
	Ngram         wireMatrix
	NgramCfg      [2]int
	KnownMentions []int
	Params        []wireMatrix
}

func writeGoldenFiles(t *testing.T, dir string, g *kg.Graph) {
	t.Helper()
	e := goldenTrain(t, g)

	// v0: strip the trained model down to the pre-versioning wire struct.
	var wire modelWire
	var gobBuf bytes.Buffer
	if err := e.writeGob(&gobBuf, false); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(&gobBuf).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	v0 := wireV0{Cfg: wire.Cfg, Alphabet: wire.Alphabet, Ngram: wire.Ngram,
		NgramCfg: wire.NgramCfg, KnownMentions: wire.KnownMentions, Params: wire.Params}
	var v0Buf bytes.Buffer
	if err := gob.NewEncoder(&v0Buf).Encode(v0); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "golden_v0.bin"), v0Buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// v2: the PQ model with its index artifact.
	if err := e.SaveFileGob(filepath.Join(dir, "golden_v2.bin"), true); err != nil {
		t.Fatal(err)
	}

	// v3: the fast-scan sibling.
	fs, err := e.WithFastScan()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveFileGob(filepath.Join(dir, "golden_v3.bin"), true); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenCorpus loads every checked-in historic artifact and asserts (a)
// it still loads, with the provenance its format implies, and (b) rewriting
// it in the current format and reloading preserves every search result bit
// for bit.
func TestGoldenCorpus(t *testing.T) {
	dir := "testdata"
	g := goldenGraph()
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		writeGoldenFiles(t, dir, g)
		t.Log("golden corpus rewritten")
	}
	cases := []struct {
		file     string
		source   string // expected provenance of the gob load
		gobVer   int
		fastscan bool
	}{
		{"golden_v0.bin", "rebuilt", 0, false},
		{"golden_v2.bin", "loaded", 2, false},
		{"golden_v3.bin", "loaded", 3, true},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			path := filepath.Join(dir, c.file)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden corpus missing (regenerate with -update-golden): %v", err)
			}
			var wire modelWire
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&wire); err != nil {
				t.Fatalf("golden is not a gob stream: %v", err)
			}
			if wire.Version != c.gobVer {
				t.Fatalf("golden stamped version %d, want %d", wire.Version, c.gobVer)
			}
			old, err := LoadFile(path, g)
			if err != nil {
				t.Fatalf("loading %s: %v", c.file, err)
			}
			if src := old.IndexProvenance().Source; src != c.source {
				t.Fatalf("provenance %q, want %q", src, c.source)
			}
			if c.fastscan && !old.Config().FastScan {
				t.Fatal("v3 golden lost its fast-scan config")
			}

			// Re-serialize to the current format and reload both ways.
			v4Path := filepath.Join(t.TempDir(), "rewritten.v4")
			withIndex := c.source == "loaded"
			if withIndex {
				err = old.SaveFileWithIndex(v4Path)
			} else {
				err = old.SaveFile(v4Path)
			}
			if err != nil {
				t.Fatalf("rewriting to v4: %v", err)
			}
			now, err := LoadFile(v4Path, g)
			if err != nil {
				t.Fatalf("reloading v4 rewrite: %v", err)
			}
			defer now.Close()
			if withIndex && now.IndexProvenance().Source != "loaded" {
				t.Fatalf("v4 rewrite provenance %q, want loaded", now.IndexProvenance().Source)
			}
			sameLookups(t, c.file+"→v4", old, now)
		})
	}
}
