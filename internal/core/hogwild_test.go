package core

import (
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/nn"
	"emblookup/internal/triplet"
)

// TestTrainDeterministicRunToRunAcrossWorkerCounts pins the deterministic
// (replica+MergeGrads) combiner path at worker counts 1, 2 and 4: for a
// fixed (seed, workers) pair, two full Train runs must produce bit-identical
// embeddings. (Cross-count equality is not promised — the per-worker dropout
// RNG streams differ — but per-count reproducibility is the contract the
// Hogwild flag's default must keep.)
func TestTrainDeterministicRunToRunAcrossWorkerCounts(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 100))
	for _, workers := range []int{1, 2, 4} {
		cfg := testConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 6
		cfg.NgramEpochs = 3
		cfg.Workers = workers
		e1, err := Train(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Train(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b := e1.Embed("Bramonia"), e2.Embed("Bramonia")
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: deterministic training not reproducible run-to-run", workers)
			}
		}
	}
}

// TestTrainHogwildEndToEnd trains with Hogwild enabled at 4 workers — under
// `go test -race` this exercises both lock-free phases (ngram table and
// combiner master params) — and checks the service still resolves exact
// labels, plus that TrainStats is filled.
func TestTrainHogwildEndToEnd(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 80))
	cfg := testConfig()
	cfg.NgramEpochs = 4
	cfg.Hogwild = true
	cfg.Workers = 4
	var st TrainStats
	e, err := Train(g, cfg, WithTrainStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if st.SemanticDur <= 0 || st.CombinerDur <= 0 {
		t.Fatalf("TrainStats phases not recorded: %+v", st)
	}
	hits := 0
	n := len(g.Entities)
	if n > 60 {
		n = 60
	}
	for i := 0; i < n; i++ {
		ent := &g.Entities[i]
		cs := e.Lookup(ent.Label, 1)
		if len(cs) > 0 && cs[0].ID == ent.ID {
			hits++
		}
	}
	if hits < n*8/10 {
		t.Fatalf("hogwild-trained model resolves only %d/%d exact labels", hits, n)
	}
}

// TestTrainHogwildConvergesToSequentialLoss asserts the hogwild combiner
// reaches a final mean triplet loss within ε of the deterministic path on
// the same graph, seed, and *fixed* triplet set — racy updates must cost
// noise, not convergence. (The per-epoch losses logged during training are
// not comparable across modes — the online phase re-mines its own hard
// subset — so the metric here is the loss of the final model over the full
// mined set.)
func TestTrainHogwildConvergesToSequentialLoss(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 100))
	mCfg := triplet.DefaultMinerConfig()
	mCfg.PerEntity = 10
	mCfg.Seed = 99
	ts := triplet.Mine(g, mCfg)
	evalLoss := func(e *EmbLookup) float64 {
		var sum float64
		for _, tr := range ts {
			l, _, _, _ := nn.TripletLoss(e.Embed(tr.Anchor), e.Embed(tr.Positive), e.Embed(tr.Negative), testConfig().Margin)
			sum += float64(l)
		}
		return sum / float64(len(ts))
	}
	run := func(hogwild bool) float64 {
		cfg := testConfig()
		cfg.Hogwild = hogwild
		cfg.Workers = 4
		e, err := Train(g, cfg, WithTriplets(ts))
		if err != nil {
			t.Fatal(err)
		}
		return evalLoss(e)
	}
	det := run(false)
	hw := run(true)
	const eps = 0.15
	if diff := hw - det; diff > eps {
		t.Fatalf("hogwild final loss %.4f vs deterministic %.4f: gap %.4f exceeds ε=%.2f", hw, det, diff, eps)
	}
}
