package core

import (
	"fmt"
	"sync"
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/obs"
)

// Streaming ingest (DESIGN.md §13): new entities and aliases enter the
// service under live traffic with no retraining and no index rebuild. An
// Ingestor serializes all mutations onto one background worker — embed in
// the trained anchor space, append to the PR-3 dynamic delta index, extend
// the row→entity mapping — so concurrent lookups only ever contend on the
// read locks the dynamic index already takes. New entities additionally
// grow the knowledge graph; readers that resolve candidate IDs against the
// graph during live ingest must hold the Ingestor's read lock (the HTTP
// server does when built WithIngest).

// Ingest metrics, resolved once like the lookup-path handles.
var (
	ingestEnqueued = obs.Default().Counter("emblookup_ingest_enqueued_total")
	ingestApplied  = obs.Default().Counter("emblookup_ingest_applied_total")
	ingestErrors   = obs.Default().Counter("emblookup_ingest_errors_total")
	ingestQueue    = obs.Default().Gauge("emblookup_ingest_queue_depth")
	ingestLag      = obs.Default().Histogram("emblookup_ingest_lag_seconds")
)

// IngestItem is one streamed mutation. Label set and NewEntity true creates
// an entity (aliases become extra index rows when the service indexes
// aliases); otherwise Mention is attached to the existing entity ID.
type IngestItem struct {
	// NewEntity creates a graph entity from Label/Aliases and indexes it.
	NewEntity bool     `json:"newEntity,omitempty"`
	Label     string   `json:"label,omitempty"`
	Aliases   []string `json:"aliases,omitempty"`
	// Mention/ID attach a new alias row to an existing entity.
	Mention string      `json:"mention,omitempty"`
	ID      kg.EntityID `json:"id,omitempty"`
}

type ingestJob struct {
	item  IngestItem
	enq   time.Time
	flush chan struct{} // non-nil: a Flush sentinel, closed when reached
}

// Ingestor owns the streaming-ingest worker for one dynamic service.
type Ingestor struct {
	e    *EmbLookup
	jobs chan ingestJob
	done chan struct{}

	// sendMu lets Enqueue (read side) race-freely observe Close (write
	// side) closing the channel.
	sendMu sync.RWMutex
	closed bool

	// graphMu guards graph growth against concurrent readers: the worker
	// write-locks around AddEntity; anything resolving entity IDs while
	// ingest runs read-locks (RLock/RUnlock).
	graphMu sync.RWMutex

	mu       sync.Mutex
	applied  int64
	failed   int64
	lastErr  error
	enqueued int64
}

// NewIngestor starts the background worker. The service must have been
// built WithDynamicIndex. queue bounds the in-flight buffer (≤0 = 256);
// Enqueue blocks when it is full — backpressure, not loss.
func (e *EmbLookup) NewIngestor(queue int) (*Ingestor, error) {
	if e.Dynamic() == nil {
		return nil, fmt.Errorf("core: ingest requires a dynamic index (WithDynamicIndex)")
	}
	if queue <= 0 {
		queue = 256
	}
	in := &Ingestor{
		e:    e,
		jobs: make(chan ingestJob, queue),
		done: make(chan struct{}),
	}
	go in.run()
	return in, nil
}

// Enqueue queues one item and returns once it is buffered (visible shortly
// after; Flush forces the wait). It fails only after Close.
func (in *Ingestor) Enqueue(item IngestItem) error {
	in.sendMu.RLock()
	defer in.sendMu.RUnlock()
	if in.closed {
		return fmt.Errorf("core: ingestor closed")
	}
	in.jobs <- ingestJob{item: item, enq: time.Now()}
	ingestEnqueued.Add(1)
	ingestQueue.Set(float64(len(in.jobs)))
	in.mu.Lock()
	in.enqueued++
	in.mu.Unlock()
	return nil
}

// Flush blocks until every item enqueued before the call is applied.
func (in *Ingestor) Flush() {
	in.sendMu.RLock()
	if in.closed {
		in.sendMu.RUnlock()
		return
	}
	fl := make(chan struct{})
	in.jobs <- ingestJob{flush: fl}
	in.sendMu.RUnlock()
	<-fl
}

// Close drains the queue, applies everything, and stops the worker. Enqueue
// fails afterwards; Close is idempotent.
func (in *Ingestor) Close() {
	in.sendMu.Lock()
	if in.closed {
		in.sendMu.Unlock()
		return
	}
	in.closed = true
	close(in.jobs)
	in.sendMu.Unlock()
	<-in.done
}

// RLock takes the graph read lock; readers resolving entity IDs while
// ingest is live hold it around graph accesses.
func (in *Ingestor) RLock() { in.graphMu.RLock() }

// RUnlock releases RLock.
func (in *Ingestor) RUnlock() { in.graphMu.RUnlock() }

// IngestStats is a point-in-time snapshot for /stats.
type IngestStats struct {
	Enqueued int64  `json:"enqueued"`
	Applied  int64  `json:"applied"`
	Failed   int64  `json:"failed"`
	Queued   int    `json:"queued"`
	LastErr  string `json:"last_error,omitempty"`
}

// Stats snapshots the ingestor's counters.
func (in *Ingestor) Stats() IngestStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := IngestStats{
		Enqueued: in.enqueued,
		Applied:  in.applied,
		Failed:   in.failed,
		Queued:   len(in.jobs),
	}
	if in.lastErr != nil {
		st.LastErr = in.lastErr.Error()
	}
	return st
}

func (in *Ingestor) run() {
	defer close(in.done)
	for job := range in.jobs {
		if job.flush != nil {
			close(job.flush)
			continue
		}
		err := in.apply(job.item)
		ingestQueue.Set(float64(len(in.jobs)))
		ingestLag.Observe(time.Since(job.enq))
		in.mu.Lock()
		if err != nil {
			in.failed++
			in.lastErr = err
			ingestErrors.Add(1)
		} else {
			in.applied++
			ingestApplied.Add(1)
		}
		in.mu.Unlock()
	}
}

// apply performs one mutation on the worker goroutine: embed → delta-index
// append → visible. Only AddEntity needs the graph write lock; index
// appends synchronize inside the dynamic index.
func (in *Ingestor) apply(item IngestItem) error {
	if item.NewEntity {
		if item.Label == "" {
			return fmt.Errorf("core: ingest: new entity with empty label")
		}
		in.graphMu.Lock()
		id := in.e.graph.AddEntity(item.Label, item.Aliases)
		in.graphMu.Unlock()
		if _, err := in.e.AddMention(item.Label, id); err != nil {
			return err
		}
		if in.e.cfg.IndexAliases {
			for _, a := range item.Aliases {
				if _, err := in.e.AddMention(a, id); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if item.Mention == "" {
		return fmt.Errorf("core: ingest: empty mention")
	}
	in.graphMu.RLock()
	_, err := in.e.AddMention(item.Mention, item.ID)
	in.graphMu.RUnlock()
	return err
}
