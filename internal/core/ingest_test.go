package core

import (
	"fmt"
	"sync"
	"testing"

	"emblookup/internal/kg"
)

var (
	ingestOnce sync.Once
	ingestG    *kg.Graph
	ingestE    *EmbLookup
)

// ingestFixture trains one private small service shared by the ingest tests
// (the package-wide fixture's graph must not be mutated — ingest grows its
// graph) and hands each test its own dynamic clone. The graph accumulates
// entities across tests, which is fine: every assertion below is relative
// to the state at its own call.
func ingestFixture(t *testing.T) (*kg.Graph, *EmbLookup) {
	t.Helper()
	ingestOnce.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 100))
		cfg := testConfig()
		cfg.Epochs = 2
		cfg.NgramEpochs = 3
		cfg.TripletsPerEntity = 6
		e, err := Train(g, cfg)
		if err != nil {
			panic(err)
		}
		ingestG, ingestE = g, e
	})
	return ingestG, ingestE.WithDynamicIndex(1 << 30)
}

func TestIngestRequiresDynamicIndex(t *testing.T) {
	_, e := fixture(t)
	if _, err := e.NewIngestor(0); err == nil {
		t.Fatal("NewIngestor on a non-dynamic service should fail")
	}
}

// TestIngestNewEntityVisible is the end-to-end loop of DESIGN.md §13: a new
// entity streams in under no retraining and becomes the top hit for its
// label; an alias attaches to an existing entity.
func TestIngestNewEntityVisible(t *testing.T) {
	g, dyn := ingestFixture(t)
	in, err := dyn.NewIngestor(8)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	const label = "vexatron prime hub"
	const alias = "qworble annex station"
	target := g.Entities[3].ID
	if err := in.Enqueue(IngestItem{NewEntity: true, Label: label, Aliases: []string{"vexatron"}}); err != nil {
		t.Fatal(err)
	}
	if err := in.Enqueue(IngestItem{Mention: alias, ID: target}); err != nil {
		t.Fatal(err)
	}
	in.Flush()

	st := in.Stats()
	if st.Applied != 2 || st.Failed != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	newID := kg.EntityID(len(g.Entities) - 1)
	if got := g.Entity(newID); got == nil || got.Label != label {
		t.Fatalf("graph entity %d = %+v, want label %q", newID, got, label)
	}
	if cs := dyn.Lookup(label, 1); len(cs) == 0 || cs[0].ID != newID {
		t.Fatalf("Lookup(%q) = %+v, want new entity %d", label, cs, newID)
	}
	if cs := dyn.Lookup(alias, 1); len(cs) == 0 || cs[0].ID != target {
		t.Fatalf("Lookup(%q) = %+v, want entity %d", alias, cs, target)
	}
}

func TestIngestErrorsCounted(t *testing.T) {
	g, dyn := ingestFixture(t)
	in, err := dyn.NewIngestor(4)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	bad := kg.EntityID(len(g.Entities) + 1000)
	if err := in.Enqueue(IngestItem{Mention: "whatever", ID: bad}); err != nil {
		t.Fatal(err)
	}
	if err := in.Enqueue(IngestItem{NewEntity: true}); err != nil {
		t.Fatal(err)
	}
	in.Flush()
	st := in.Stats()
	if st.Failed != 2 || st.Applied != 0 || st.LastErr == "" {
		t.Fatalf("stats = %+v, want 2 failures with a recorded error", st)
	}
}

// TestIngestConcurrentWithLookups streams new entities while reader
// goroutines hammer Lookup and resolve IDs against the graph under the
// ingestor's read lock — under `go test -race` this pins the locking
// contract for live traffic during ingest.
func TestIngestConcurrentWithLookups(t *testing.T) {
	g, dyn := ingestFixture(t)
	in, err := dyn.NewIngestor(16)
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	stop := make(chan struct{})
	// Labels are captured before ingest starts: the Entities slice itself
	// is only safe to touch under the ingestor's read lock once the worker
	// is appending to it.
	seedLabels := []string{g.Entities[0].Label, g.Entities[1].Label, g.Entities[2].Label}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			queries := []string{"zug", seedLabels[r], "vortalix 7"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cs := dyn.Lookup(queries[i%len(queries)], 3)
				in.RLock()
				for _, c := range cs {
					if g.Entity(c.ID) == nil {
						panic("candidate resolves to no entity")
					}
				}
				in.RUnlock()
			}
		}(r)
	}
	for i := 0; i < n; i++ {
		if err := in.Enqueue(IngestItem{NewEntity: true, Label: fmt.Sprintf("vortalix station %02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	in.Flush()
	close(stop)
	readers.Wait()
	in.Close()

	st := in.Stats()
	if st.Applied != n || st.Failed != 0 {
		t.Fatalf("stats = %+v, want %d applied", st, n)
	}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("vortalix station %02d", i)
		if cs := dyn.Lookup(label, 1); len(cs) == 0 || g.Entity(cs[0].ID) == nil || g.Entity(cs[0].ID).Label != label {
			t.Fatalf("ingested entity %q not resolvable after flush", label)
		}
	}
}

func TestIngestCloseSemantics(t *testing.T) {
	_, dyn := ingestFixture(t)
	in, err := dyn.NewIngestor(4)
	if err != nil {
		t.Fatal(err)
	}
	in.Close()
	in.Close() // idempotent
	if err := in.Enqueue(IngestItem{Mention: "x", ID: 0}); err == nil {
		t.Fatal("Enqueue after Close should fail")
	}
	in.Flush() // must not hang
}
