package core

import (
	"runtime"
	"sync"

	"emblookup/internal/charenc"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
)

// EmbLookup is a trained lookup service: the embedding model plus the
// nearest-neighbor index over the knowledge graph's entity embeddings. It
// implements lookup.Service; Lookup and Embed are safe for concurrent use.
type EmbLookup struct {
	cfg Config

	enc *charenc.Encoder
	cnn *nn.CharCNN
	sem *ngram.Model
	mlp *nn.MLP

	graph *kg.Graph
	ix    index.Index
	rows  []kg.EntityID // index row -> entity
}

// Name implements lookup.Service.
func (e *EmbLookup) Name() string {
	if e.cfg.Compress {
		return "emblookup"
	}
	return "emblookup-nc"
}

// Config returns the configuration the model was trained with.
func (e *EmbLookup) Config() Config { return e.cfg }

// Graph returns the knowledge graph the index covers.
func (e *EmbLookup) Graph() *kg.Graph { return e.graph }

// Index exposes the underlying nearest-neighbor index (for size reporting
// and the compression experiments).
func (e *EmbLookup) Index() index.Index { return e.ix }

// Embed maps an arbitrary query string to its embedding, evaluating the
// CNN path, the semantic path (subword mean plus the known-mention slot),
// and the combiner (Figure 2 of the paper).
func (e *EmbLookup) Embed(s string) []float32 {
	return e.embed(s, true)
}

// IndexEmbed maps a string to the embedding stored in the index. Index
// rows are computed without the mention slot — the anchor space — so that
// noisy queries (which never have a mention slot) compare against the same
// representation; training maps mention-carrying queries into this space.
func (e *EmbLookup) IndexEmbed(s string) []float32 {
	return e.embed(s, false)
}

func (e *EmbLookup) embed(s string, useMention bool) []float32 {
	sub, mention := e.sem.EmbedParts(s)
	if !e.cfg.MentionSlot {
		mention = nil
	} else if !useMention {
		for i := range mention {
			mention[i] = 0
		}
	}
	var syn []float32
	if e.cnn != nil {
		syn = e.cnn.ApplyIdx(trimIdx(e.enc.EncodeIndexes(s)))
	}
	joint := make([]float32, 0, len(syn)+len(sub)+len(mention))
	joint = append(joint, syn...)
	joint = append(joint, sub...)
	joint = append(joint, mention...)
	return e.mlp.Apply(joint)
}

// Lookup embeds q and returns the k nearest entities. Scores are negated
// squared distances so that higher is better, matching lookup.Candidate.
func (e *EmbLookup) Lookup(q string, k int) []lookup.Candidate {
	if k <= 0 {
		return nil
	}
	// Over-fetch when alias rows can collapse onto one entity.
	fetch := k
	if e.cfg.IndexAliases {
		fetch = k * 3
	}
	res := e.ix.Search(e.Embed(q), fetch)
	cands := make([]lookup.Candidate, len(res))
	for i, r := range res {
		cands[i] = lookup.Candidate{ID: e.rows[r.ID], Score: -float64(r.Dist)}
	}
	return lookup.DedupeTopK(cands, k)
}

// BulkLookup embeds and searches a query batch with `parallelism`
// goroutines (≤0 = all cores — the reproduction's GPU mode, see DESIGN.md).
func (e *EmbLookup) BulkLookup(queries []string, k, parallelism int) [][]lookup.Candidate {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	out := make([][]lookup.Candidate, len(queries))
	if parallelism <= 1 {
		for i, q := range queries {
			out[i] = e.Lookup(q, k)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int, len(queries))
	for i := range queries {
		idx <- i
	}
	close(idx)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.Lookup(queries[i], k)
			}
		}()
	}
	wg.Wait()
	return out
}

// EmbedAll embeds a list of strings in parallel (query space), preserving
// order.
func (e *EmbLookup) EmbedAll(strs []string, parallelism int) [][]float32 {
	return e.embedAll(strs, parallelism, true)
}

// IndexEmbedAll embeds a list of strings in parallel in the index (anchor)
// space.
func (e *EmbLookup) IndexEmbedAll(strs []string, parallelism int) [][]float32 {
	return e.embedAll(strs, parallelism, false)
}

func (e *EmbLookup) embedAll(strs []string, parallelism int, useMention bool) [][]float32 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	out := make([][]float32, len(strs))
	if parallelism <= 1 || len(strs) < 2 {
		for i, s := range strs {
			out[i] = e.embed(s, useMention)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int, len(strs))
	for i := range strs {
		idx <- i
	}
	close(idx)
	if parallelism > len(strs) {
		parallelism = len(strs)
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.embed(strs[i], useMention)
			}
		}()
	}
	wg.Wait()
	return out
}

// trimIdx cuts the zero-padding tail of an encoded index sequence so the
// convolution runs over the mention's actual length (identically at
// training and inference time). At least kernel-size positions remain so
// every layer sees a non-degenerate input.
func trimIdx(idx []int) []int {
	n := len(idx)
	for n > 0 && idx[n-1] < 0 {
		n--
	}
	if n < 3 {
		n = 3
		if n > len(idx) {
			n = len(idx)
		}
	}
	return idx[:n]
}

// EmbeddingMatrix builds the N×Dim matrix of embeddings for the given
// strings (used by the index builder and the compression experiments).
func (e *EmbLookup) EmbeddingMatrix(strs []string, parallelism int) *mathx.Matrix {
	vecs := e.EmbedAll(strs, parallelism)
	m := mathx.NewMatrix(len(vecs), e.cfg.Dim)
	for i, v := range vecs {
		copy(m.Row(i), v)
	}
	return m
}
