package core

import (
	"time"

	"emblookup/internal/artifact"
	"emblookup/internal/charenc"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
	"emblookup/internal/par"
)

// EmbLookup is a trained lookup service: the embedding model plus the
// nearest-neighbor index over the knowledge graph's entity embeddings. It
// implements lookup.Service; Lookup and Embed are safe for concurrent use.
type EmbLookup struct {
	cfg Config

	enc *charenc.Encoder
	cnn *nn.CharCNN
	sem *ngram.Model
	mlp *nn.MLP

	graph *kg.Graph
	ix    index.Index
	rows  []kg.EntityID // index row -> entity (trained prefix, immutable)
	extra *extraRows    // live-added rows (dynamic index only)
	prov  IndexProvenance

	// backing is the artifact this model's weights and index alias when it
	// was attached from a v4 file (nil for trained or gob-loaded models).
	// Its memory — possibly a read-only mapping — must stay alive as long
	// as the model serves; Close releases it.
	backing *artifact.File
}

// Close releases the artifact backing an attached model (munmap for
// mmap-attached files). After Close the model must not be used: its weight
// and index views dangle. Models that own their memory (trained in-process
// or gob-loaded) have no backing and Close is a no-op.
func (e *EmbLookup) Close() error {
	if e.backing == nil {
		return nil
	}
	return e.backing.Close()
}

// IndexProvenance records how the model's current index came to be: rebuilt
// from the weights (embedding every entity and retraining the quantizer) or
// attached from a saved artifact (IO-bound), and how long that took. The
// server surfaces it under /stats so a deployment can tell a fast cold
// start from a silent multi-minute rebuild.
type IndexProvenance struct {
	Source string        // "rebuilt" or "loaded"
	Took   time.Duration // wall-clock of the rebuild or the artifact attach
	// Backing is how an attached v4 artifact is held: "mmap" (zero-copy
	// views over the page cache) or "heap" (one private copy). Empty for
	// trained and gob-loaded models, whose memory is ordinary heap.
	Backing string `json:",omitempty"`
}

// IndexProvenance reports the current index's provenance.
func (e *EmbLookup) IndexProvenance() IndexProvenance { return e.prov }

// Name implements lookup.Service.
func (e *EmbLookup) Name() string {
	if e.cfg.Compress {
		return "emblookup"
	}
	return "emblookup-nc"
}

// Config returns the configuration the model was trained with.
func (e *EmbLookup) Config() Config { return e.cfg }

// Graph returns the knowledge graph the index covers.
func (e *EmbLookup) Graph() *kg.Graph { return e.graph }

// WithGraph returns a sibling service resolving entities against g — a
// graph with identical entity numbering, normally a Clone of this model's
// graph. A router or replica node uses it to grow its own copy through
// ingest without mutating the graph shared with other nodes.
func (e *EmbLookup) WithGraph(g *kg.Graph) *EmbLookup {
	clone := *e
	clone.graph = g
	return &clone
}

// Index exposes the underlying nearest-neighbor index (for size reporting
// and the compression experiments).
func (e *EmbLookup) Index() index.Index { return e.ix }

// Embed maps an arbitrary query string to its embedding, evaluating the
// CNN path, the semantic path (subword mean plus the known-mention slot),
// and the combiner (Figure 2 of the paper).
func (e *EmbLookup) Embed(s string) []float32 {
	return e.embed(s, true)
}

// IndexEmbed maps a string to the embedding stored in the index. Index
// rows are computed without the mention slot — the anchor space — so that
// noisy queries (which never have a mention slot) compare against the same
// representation; training maps mention-carrying queries into this space.
func (e *EmbLookup) IndexEmbed(s string) []float32 {
	return e.embed(s, false)
}

// embed is the allocation-tolerant embedding wrapper: it checks scratch out
// of the pool and copies the result so the caller owns it.
func (e *EmbLookup) embed(s string, useMention bool) []float32 {
	sc := getScratch()
	defer putScratch(sc)
	return append([]float32(nil), e.embedInto(sc, s, useMention)...)
}

// Lookup embeds q and returns the k nearest entities. Scores are negated
// squared distances so that higher is better, matching lookup.Candidate.
// It is a thin wrapper over the scratch path, so steady-state calls only
// allocate the returned candidates.
func (e *EmbLookup) Lookup(q string, k int) []lookup.Candidate {
	sc := getScratch()
	defer putScratch(sc)
	return e.lookupInto(sc, q, k)
}

// BulkLookup embeds and searches a query batch with `parallelism`
// goroutines (≤0 = all cores — the reproduction's GPU mode, see DESIGN.md).
// Every worker owns one Scratch for the whole batch, amortizing all working
// memory to zero allocations per query. When the index plans its own batch
// execution (index.BatchSearcher — the sharded index scans a batch
// shard-major), the embed and search stages are split so the whole batch
// flows through one SearchBatch call; results are identical either way.
func (e *EmbLookup) BulkLookup(queries []string, k, parallelism int) [][]lookup.Candidate {
	bulkTotal.Inc()
	bulkQueries.ObserveVal(int64(len(queries)))
	if bs, ok := e.ix.(index.BatchSearcher); ok && len(queries) > 0 && k > 0 {
		return e.bulkViaBatch(bs, queries, k, parallelism)
	}
	out := make([][]lookup.Candidate, len(queries))
	if k <= 0 {
		return out
	}
	// One flat array backs every query's candidates: slot i appends into
	// flat[i*k:i*k:(i+1)*k] (capacity-clipped, so slots can never bleed into
	// each other), collapsing the per-query result allocations of the batch
	// into this single one.
	flat := make([]lookup.Candidate, len(queries)*k)
	scratches := make([]*Scratch, par.Workers(len(queries), parallelism))
	par.ForEachWorker(len(queries), parallelism, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = getScratch()
			scratches[w] = sc
		}
		out[i] = e.lookupTraced(sc, nil, queries[i], k, flat[i*k:i*k:(i+1)*k])
	})
	for _, sc := range scratches {
		if sc != nil {
			putScratch(sc)
		}
	}
	return out
}

// bulkViaBatch is BulkLookup staged for a batch-scheduling index: embed all
// queries, hand the whole batch to SearchBatch, then dedupe per query.
func (e *EmbLookup) bulkViaBatch(bs index.BatchSearcher, queries []string, k, parallelism int) [][]lookup.Candidate {
	fetch := k
	if e.cfg.IndexAliases {
		fetch = k * 3
	}
	embs := e.EmbedAll(queries, parallelism)
	res := bs.SearchBatch(embs, fetch, parallelism)
	out := make([][]lookup.Candidate, len(queries))
	// Same flat-backing trick as the per-query bulk path: one allocation
	// holds every query's candidate slice.
	flat := make([]lookup.Candidate, len(queries)*k)
	scratches := make([]*Scratch, par.Workers(len(queries), parallelism))
	par.ForEachWorker(len(queries), parallelism, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = getScratch()
			scratches[w] = sc
		}
		out[i] = e.dedupeAppend(sc, res[i], k, flat[i*k:i*k:(i+1)*k])
	})
	for _, sc := range scratches {
		if sc != nil {
			putScratch(sc)
		}
	}
	return out
}

// WithShardedIndex returns a sibling service sharing this model's weights
// and trained index whose scans fan out across `shards` row ranges
// (index.Sharded): single queries merge per-shard top-k heaps, batches run
// shard-major. Results are bit-identical to the unsharded service.
// parallelism bounds the per-query fan-out (≤0 = GOMAXPROCS).
func (e *EmbLookup) WithShardedIndex(shards, parallelism int) (*EmbLookup, error) {
	sh, err := index.NewSharded(e.ix, shards, parallelism)
	if err != nil {
		return nil, err
	}
	clone := *e
	clone.ix = sh
	return &clone, nil
}

// EmbedAll embeds a list of strings in parallel (query space), preserving
// order.
func (e *EmbLookup) EmbedAll(strs []string, parallelism int) [][]float32 {
	return e.embedAll(strs, parallelism, true)
}

// IndexEmbedAll embeds a list of strings in parallel in the index (anchor)
// space.
func (e *EmbLookup) IndexEmbedAll(strs []string, parallelism int) [][]float32 {
	return e.embedAll(strs, parallelism, false)
}

func (e *EmbLookup) embedAll(strs []string, parallelism int, useMention bool) [][]float32 {
	out := make([][]float32, len(strs))
	// One flat array backs every embedding (dimension is fixed by the
	// model), so copying the batch out of the scratches costs one
	// allocation instead of one per string.
	dim := e.cfg.Dim
	flat := make([]float32, len(strs)*dim)
	scratches := make([]*Scratch, par.Workers(len(strs), parallelism))
	par.ForEachWorker(len(strs), parallelism, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = getScratch()
			scratches[w] = sc
		}
		// The embedding outlives the scratch: copy it out.
		dst := flat[i*dim : (i+1)*dim]
		copy(dst, e.embedInto(sc, strs[i], useMention))
		out[i] = dst
	})
	for _, sc := range scratches {
		if sc != nil {
			putScratch(sc)
		}
	}
	return out
}

// trimIdx cuts the zero-padding tail of an encoded index sequence so the
// convolution runs over the mention's actual length (identically at
// training and inference time). At least kernel-size positions remain so
// every layer sees a non-degenerate input.
func trimIdx(idx []int) []int {
	n := len(idx)
	for n > 0 && idx[n-1] < 0 {
		n--
	}
	if n < 3 {
		n = 3
		if n > len(idx) {
			n = len(idx)
		}
	}
	return idx[:n]
}

// EmbeddingMatrix builds the N×Dim matrix of embeddings for the given
// strings (used by the index builder and the compression experiments).
func (e *EmbLookup) EmbeddingMatrix(strs []string, parallelism int) *mathx.Matrix {
	vecs := e.EmbedAll(strs, parallelism)
	m := mathx.NewMatrix(len(vecs), e.cfg.Dim)
	for i, v := range vecs {
		copy(m.Row(i), v)
	}
	return m
}
