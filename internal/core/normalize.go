package core

// NormalizeMention maps a query string to its cache key: two queries with
// the same key are guaranteed to produce the same embedding, so a cached
// lookup result can be served for either. The normalization is exactly the
// invariance the embedding pipeline provides — ASCII case erasure — and
// nothing more: charenc matches alphabet characters through an ASCII-only
// per-rune lowering, and the ngram model lowercases with strings.ToLower
// (which fixes every ASCII-lowercase string). Anything stronger would serve
// wrong results: whitespace is part of the CNN alphabet (so trimming is not
// invariant), and non-ASCII case pairs can encode differently (so Unicode
// folding is not invariant either).
func NormalizeMention(s string) string {
	// Fast path: already free of ASCII uppercase (byte-wise scan is safe on
	// UTF-8 — continuation bytes are ≥ 0x80).
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if c := b[i]; 'A' <= c && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}
