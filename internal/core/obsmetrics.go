package core

import (
	"emblookup/internal/lookup"
	"emblookup/internal/obs"
)

// The core lookup path records into the process-wide registry through
// handles resolved once at package init, so the hot path never touches the
// registry lock: recording is an atomic add behind an enabled check and
// keeps the pooled-scratch allocation guarantees (DESIGN.md §6) intact —
// Lookup stays at its PR-1 allocation count with metrics enabled, which
// TestLookupAllocsWithMetrics asserts.
var (
	lookupsTotal  = obs.Default().Counter("emblookup_lookups_total")
	lookupSeconds = obs.Default().Histogram("emblookup_lookup_seconds")
	stageEmbed    = obs.Default().Histogram(obs.Labels("emblookup_lookup_stage_seconds", "stage", "embed"))
	stageSearch   = obs.Default().Histogram(obs.Labels("emblookup_lookup_stage_seconds", "stage", "search"))
	stageMerge    = obs.Default().Histogram(obs.Labels("emblookup_lookup_stage_seconds", "stage", "merge"))
	bulkTotal     = obs.Default().Counter("emblookup_bulk_lookups_total")
	bulkQueries   = obs.Default().Histogram("emblookup_bulk_batch_size")

	// Hogwild training progress (DESIGN.md §13): the semantic phase's
	// atomic pair counter mirrored as a gauge, and one count per combiner
	// micro-batch push.
	trainSemProgress  = obs.Default().Gauge("emblookup_train_semantic_pairs_done")
	trainHogwildSteps = obs.Default().Counter("emblookup_train_hogwild_steps_total")
)

// LookupTrace is Lookup with per-stage spans recorded into tr: the embed →
// search → merge pipeline of one query becomes three named intervals of the
// request's trace. A nil trace makes this identical to Lookup — every span
// call is a nil-check — so callers thread the trace unconditionally.
func (e *EmbLookup) LookupTrace(tr *obs.Trace, q string, k int) []lookup.Candidate {
	sc := getScratch()
	defer putScratch(sc)
	return e.lookupTraced(sc, tr, q, k, nil)
}
