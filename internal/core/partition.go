package core

import (
	"fmt"

	"emblookup/internal/index"
	"emblookup/internal/mathx"
)

// WithPartition returns a sibling service sharing this model's trained
// weights whose index holds only the global row range [lo, hi) of the full
// index — the per-node artifact of a partitioned cluster (internal/cluster).
// Row ids in the partition index are local (0-based); the caller tracks the
// global offset lo. The slice shares the parent's storage (codes, vectors,
// quantizer) — nothing is re-embedded or retrained — and serializes through
// WriteWithIndex like any other model, so each cluster node's artifact
// carries exactly its slice.
//
// Supported for Flat, PQ, and FastScan indexes, the same restriction as
// sharded scans: all decompose by contiguous row range with per-row distances that do not
// depend on the range's position, which is what makes a partitioned search
// bit-identical to the single-process scan (DESIGN.md §9). A Sharded
// wrapper is unwrapped first (shard count is a per-node serving choice).
func (e *EmbLookup) WithPartition(lo, hi int) (*EmbLookup, error) {
	ix := e.ix
	if sh, ok := ix.(*index.Sharded); ok {
		ix = sh.Inner()
	}
	if lo < 0 || hi > ix.Len() || lo > hi {
		return nil, fmt.Errorf("core: partition [%d, %d) outside index rows [0, %d)", lo, hi, ix.Len())
	}
	var part index.Index
	switch t := ix.(type) {
	case *index.Flat:
		// The slices are capacity-clipped: a later append (Dynamic
		// compaction on the partition) reallocates instead of writing into
		// the parent's rows past hi — or through a read-only mmap backing.
		m := t.Vectors()
		part = index.NewFlat(&mathx.Matrix{
			Rows: hi - lo,
			Cols: m.Cols,
			Data: m.Data[lo*m.Cols : hi*m.Cols : hi*m.Cols],
		})
	case *index.PQ:
		q := t.Quantizer()
		p, err := index.NewPQFromParts(q, t.Codes()[lo*q.M:hi*q.M:hi*q.M])
		if err != nil {
			return nil, err
		}
		part = p
	case *index.FastScan:
		// Interleaved blocks cannot alias parent storage at arbitrary
		// bounds, so the slice re-interleaves the rows into fresh blocks
		// (one pass over the partition's codes; the quantizer is shared).
		p, err := t.Slice(lo, hi)
		if err != nil {
			return nil, err
		}
		part = p
	default:
		return nil, fmt.Errorf("core: index type %T cannot be partitioned (want *index.Flat, *index.PQ, or *index.FastScan)", ix)
	}
	clone := *e
	clone.ix = part
	clone.rows = e.rows[lo:hi]
	clone.extra = nil
	return &clone, nil
}
