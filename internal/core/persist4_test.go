package core

import (
	"bytes"
	"os"
	"runtime"
	"sync"
	"testing"

	"emblookup/internal/artifact"
	"emblookup/internal/index"
	"emblookup/internal/kg"
)

// v4Variants drives every index kind through the zero-copy artifact tests.
// The fixture model is re-indexed in place per variant (cheap: no
// retraining), mirroring TestIndexArtifactRoundTrip.
var v4Variants = []struct {
	name                    string
	ivf, compress, fastscan bool
	rerank                  int
}{
	{"flat", false, false, false, 0},
	{"pq", false, true, false, 0},
	{"fastscan", false, true, true, 0},
	{"ivf-flat", true, false, false, 0},
	{"ivf-pq", true, true, false, 0},
	{"ivf-pq-rerank", true, true, false, 8},
}

func sameLookups(t *testing.T, tag string, want, got *EmbLookup) {
	t.Helper()
	g := want.Graph()
	for i := 0; i < 25; i++ {
		q := g.Entities[(i*7)%len(g.Entities)].Label
		w, r := want.Lookup(q, 10), got.Lookup(q, 10)
		if len(w) != len(r) {
			t.Fatalf("%s: Lookup(%q): %d candidates, want %d", tag, q, len(r), len(w))
		}
		for j := range w {
			if w[j] != r[j] {
				t.Fatalf("%s: Lookup(%q) diverges at %d: %+v vs %+v", tag, q, j, r[j], w[j])
			}
		}
	}
}

// TestV4MmapAttachBitIdentity is the acceptance gate of the v4 format: for
// every index kind, a model attached zero-copy from an mmap'd artifact and
// one decoded from the same bytes on the heap both answer bit-identically
// to the in-process model that wrote them.
func TestV4MmapAttachBitIdentity(t *testing.T) {
	g, fixtureM := fixture(t)
	base := *fixtureM // shallow copy so re-indexing never mutates the shared fixture
	base.cfg.IVFNProbe = 64
	for _, v := range v4Variants {
		base.cfg.IVF, base.cfg.Compress, base.cfg.FastScan = v.ivf, v.compress, v.fastscan
		base.cfg.Rerank = v.rerank
		if err := base.buildIndex(); err != nil {
			t.Fatalf("%s: rebuild: %v", v.name, err)
		}
		path := t.TempDir() + "/model.v4"
		if err := base.SaveFileWithIndex(path); err != nil {
			t.Fatalf("%s: save: %v", v.name, err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !artifact.Sniff(raw) {
			t.Fatalf("%s: SaveFileWithIndex did not write a v4 artifact", v.name)
		}

		mmapped, err := LoadFile(path, g)
		if err != nil {
			t.Fatalf("%s: mmap attach: %v", v.name, err)
		}
		prov := mmapped.IndexProvenance()
		if prov.Source != "loaded" {
			t.Fatalf("%s: provenance %q, want loaded", v.name, prov.Source)
		}
		if v.rerank > 1 {
			ivfIx, ok := mmapped.Index().(*index.IVF)
			if !ok {
				t.Fatalf("%s: loaded index is %T, want *index.IVF", v.name, mmapped.Index())
			}
			if f, vecs := ivfIx.Rerank(); f != v.rerank || vecs == nil {
				t.Fatalf("%s: loaded rerank = (%d, %v), want (%d, non-nil)", v.name, f, vecs, v.rerank)
			}
		}
		if runtime.GOOS == "linux" && prov.Backing != "mmap" {
			t.Fatalf("%s: backing %q, want mmap", v.name, prov.Backing)
		}

		heap, err := Read(bytes.NewReader(raw), g)
		if err != nil {
			t.Fatalf("%s: heap read: %v", v.name, err)
		}
		if b := heap.IndexProvenance().Backing; b != "heap" {
			t.Fatalf("%s: stream read backing %q, want heap", v.name, b)
		}

		sameLookups(t, v.name+"/mmap", &base, mmapped)
		sameLookups(t, v.name+"/heap", &base, heap)

		// The gob writer must serialize the same model to the same answers.
		var gobBuf bytes.Buffer
		if err := base.WriteGob(&gobBuf, true); err != nil {
			t.Fatalf("%s: gob write: %v", v.name, err)
		}
		fromGob, err := Read(bytes.NewReader(gobBuf.Bytes()), g)
		if err != nil {
			t.Fatalf("%s: gob read: %v", v.name, err)
		}
		sameLookups(t, v.name+"/gob", &base, fromGob)

		if err := mmapped.Close(); err != nil {
			t.Fatalf("%s: close: %v", v.name, err)
		}
		if err := mmapped.Close(); err != nil {
			t.Fatalf("%s: double close: %v", v.name, err)
		}
		if err := heap.Close(); err != nil {
			t.Fatalf("%s: heap close: %v", v.name, err)
		}
	}
}

// TestV4WeightsOnly exercises the rebuild path of a v4 file: no index
// sections, index rebuilt over the graph, backing still recorded.
func TestV4WeightsOnly(t *testing.T) {
	g, e := fixture(t)
	path := t.TempDir() + "/weights.v4"
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	prov := loaded.IndexProvenance()
	if prov.Source != "rebuilt" {
		t.Fatalf("provenance %q, want rebuilt", prov.Source)
	}
	if runtime.GOOS == "linux" && prov.Backing != "mmap" {
		t.Fatalf("backing %q, want mmap", prov.Backing)
	}
	sameLookups(t, "weights-only", e, loaded)
}

// TestV4DeterministicBytes: two writes of the same model are byte-identical
// (the artifact is layout-stable; nothing map-ordered leaks into the file).
func TestV4DeterministicBytes(t *testing.T) {
	_, e := fixture(t)
	var a, b bytes.Buffer
	if err := e.WriteWithIndex(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteWithIndex(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same model produced different bytes")
	}
}

// TestV4CorruptionRejected: a payload flip fails the load on both paths
// (Read verifies payload checksums; LoadFile→mmap verifies the table, and
// a table flip breaks its checksum).
func TestV4CorruptionRejected(t *testing.T) {
	g, e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteWithIndex(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one byte in the section table (offset area of section 0).
	mut := bytes.Clone(raw)
	mut[64+17] ^= 0xff
	if _, err := Read(bytes.NewReader(mut), g); err == nil {
		t.Fatal("corrupted section table accepted by Read")
	}
	path := t.TempDir() + "/corrupt.v4"
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, g); err == nil {
		t.Fatal("corrupted section table accepted by LoadFile")
	}
	// Flip one byte in the last payload: the stream path must catch it.
	mut = bytes.Clone(raw)
	mut[len(mut)-1] ^= 0xff
	if _, err := Read(bytes.NewReader(mut), g); err == nil {
		t.Fatal("corrupted payload accepted by Read")
	}
}

// FuzzReadArtifact hammers the whole model-read dispatch — v4 magic
// sniffing, the v4 section parser and attach path, and the gob fallback —
// with arbitrary bytes. Read must return an error or a valid model, never
// panic, and never allocate proportionally to corrupt header fields.
func FuzzReadArtifact(f *testing.F) {
	g, e := fixtureForFuzz()
	var v4 bytes.Buffer
	if err := e.WriteWithIndex(&v4); err != nil {
		f.Fatal(err)
	}
	var gobBuf bytes.Buffer
	if err := e.WriteGob(&gobBuf, true); err != nil {
		f.Fatal(err)
	}
	f.Add(v4.Bytes())
	f.Add(v4.Bytes()[:200])
	f.Add(gobBuf.Bytes())
	f.Add(gobBuf.Bytes()[:50])
	f.Add([]byte(artifact.Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		// A model that parses must serve a lookup without panicking.
		_ = m.Lookup(g.Entities[0].Label, 3)
	})
}

// fuzz fixture: the tiniest usable model, trained once (fuzz setup runs
// under *testing.F, so it cannot reuse the t.Helper-based fixture).
var (
	fuzzOnce  sync.Once
	fuzzGraph *kg.Graph
	fuzzModel *EmbLookup
)

func fixtureForFuzz() (*kg.Graph, *EmbLookup) {
	fuzzOnce.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 60))
		cfg := testConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 4
		cfg.Compress = true
		e, err := Train(g, cfg)
		if err != nil {
			panic(err)
		}
		fuzzGraph, fuzzModel = g, e
	})
	return fuzzGraph, fuzzModel
}
