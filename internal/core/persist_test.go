package core

import (
	"fmt"
	"sync"
	"testing"

	"emblookup/internal/kg"
)

// Every index kind must round-trip through the artifact format with full
// fidelity: the loaded index and the deterministically rebuilt one answer
// bit-identically to the original, and provenance tells them apart.
func TestIndexArtifactRoundTrip(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 150))
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.IVFNProbe = 64 // exhaustive probing keeps IVF recall comparable
	base, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name          string
		ivf, compress bool
	}{
		{"flat", false, false},
		{"pq", false, true},
		{"ivf-flat", true, false},
		{"ivf-pq", true, true},
	}
	for _, v := range variants {
		base.cfg.IVF, base.cfg.Compress = v.ivf, v.compress
		if err := base.buildIndex(); err != nil {
			t.Fatalf("%s: rebuild: %v", v.name, err)
		}
		if src := base.IndexProvenance().Source; src != "rebuilt" {
			t.Fatalf("%s: built index provenance = %q", v.name, src)
		}
		dir := t.TempDir()
		if err := base.SaveFileWithIndex(dir + "/with.bin"); err != nil {
			t.Fatalf("%s: save with index: %v", v.name, err)
		}
		if err := base.SaveFile(dir + "/weights.bin"); err != nil {
			t.Fatalf("%s: save weights: %v", v.name, err)
		}
		loaded, err := LoadFile(dir+"/with.bin", g)
		if err != nil {
			t.Fatalf("%s: load artifact: %v", v.name, err)
		}
		rebuilt, err := LoadFile(dir+"/weights.bin", g)
		if err != nil {
			t.Fatalf("%s: load weights: %v", v.name, err)
		}
		if src := loaded.IndexProvenance().Source; src != "loaded" {
			t.Fatalf("%s: artifact load provenance = %q", v.name, src)
		}
		if src := rebuilt.IndexProvenance().Source; src != "rebuilt" {
			t.Fatalf("%s: weights-only load provenance = %q", v.name, src)
		}
		for i := 0; i < 25; i++ {
			q := g.Entities[(i*7)%len(g.Entities)].Label
			want := base.Lookup(q, 10)
			for which, e := range map[string]*EmbLookup{"loaded": loaded, "rebuilt": rebuilt} {
				got := e.Lookup(q, 10)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: %d candidates, want %d", v.name, which, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("%s/%s: Lookup(%q) diverges at %d: %+v vs %+v",
							v.name, which, q, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// A dynamic index has no serialized form: its delta is serving state. The
// save path must say so instead of writing a broken artifact.
func TestSaveWithIndexRejectsDynamic(t *testing.T) {
	_, e := fixture(t)
	dyn := e.WithDynamicIndex(1 << 30)
	if err := dyn.SaveFileWithIndex(t.TempDir() + "/dyn.bin"); err == nil {
		t.Fatal("saving a dynamic index as an artifact should fail")
	}
}

// AddMention makes an unseen alias resolve to its entity immediately, and
// DeleteRow restores the pre-add results exactly (the base is untouched; the
// delta row is tombstoned).
func TestDynamicServiceAddDelete(t *testing.T) {
	g, e := fixture(t)
	// Huge threshold: compaction would append rows into the fixture's
	// shared base index.
	dyn := e.WithDynamicIndex(1 << 30)
	const alias = "zyqqat flombrix unit"
	target := g.Entities[5].ID
	before := dyn.Lookup(alias, 10)

	if _, err := e.AddMention(alias, target); err == nil {
		t.Fatal("AddMention on a non-dynamic service should fail")
	}
	if _, err := dyn.AddMention(alias, kg.EntityID(len(g.Entities)+7)); err == nil {
		t.Fatal("AddMention with an out-of-graph entity should fail")
	}

	row, err := dyn.AddMention(alias, target)
	if err != nil {
		t.Fatal(err)
	}
	res := dyn.Lookup(alias, 1)
	if len(res) != 1 || res[0].ID != target {
		t.Fatalf("added mention does not resolve to its entity: %+v", res)
	}
	// The original service must not see the live row.
	if got := e.Lookup(alias, 10); len(got) != len(before) {
		t.Fatal("AddMention leaked into the parent service")
	}

	if !dyn.DeleteRow(row) {
		t.Fatal("DeleteRow reported the live row as absent")
	}
	after := dyn.Lookup(alias, 10)
	if len(after) != len(before) {
		t.Fatalf("post-delete results differ in length: %d vs %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("post-delete results diverge at %d: %+v vs %+v", i, after[i], before[i])
		}
	}
	if e.DeleteRow(0) {
		t.Fatal("DeleteRow on a non-dynamic service should report false")
	}
}

// Live mutation under concurrent lookups: run with -race. Readers must keep
// getting well-formed candidates while a writer inserts and tombstones rows
// (the row→entity extension and the index delta mutate underneath them).
func TestDynamicServiceConcurrent(t *testing.T) {
	g, e := fixture(t)
	dyn := e.WithDynamicIndex(1 << 30)
	var wg sync.WaitGroup
	errc := make(chan error, 5)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			row, err := dyn.AddMention(fmt.Sprintf("novel mention %d", i), g.Entities[i%len(g.Entities)].ID)
			if err != nil {
				errc <- err
				return
			}
			if i%3 == 0 {
				dyn.DeleteRow(row)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := g.Entities[(w*13+i)%len(g.Entities)].Label
				for _, c := range dyn.Lookup(q, 10) {
					if int(c.ID) < 0 || int(c.ID) >= len(g.Entities) {
						errc <- fmt.Errorf("lookup returned out-of-graph entity %d", c.ID)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
