package core

import (
	"sync"
	"time"

	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
	"emblookup/internal/obs"
)

// Scratch is the per-worker working memory of one lookup: the character
// index buffer, the CNN/MLP activation scratch, the n-gram feature scratch,
// the subword/mention accumulators, the joint input vector, the index
// search scratch, and the dedupe set. Every buffer grows on demand and is
// retained across queries, so a worker that owns a Scratch answers queries
// with only the result slices allocated. The zero value is ready to use; a
// Scratch must not be used concurrently.
type Scratch struct {
	idx     []int
	nn      nn.Scratch
	ng      ngram.Scratch
	sub     []float32
	mention []float32
	joint   []float32
	ix      index.Scratch
	res     []index.Result // reused search-result buffer (AppendSearcher path)
	seen    map[kg.EntityID]bool
}

// Scratch sizes depend only on model configuration and every buffer grows
// on demand, so one process-wide pool serves all models.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }

// embedInto is the embedding forward pass with all working memory taken
// from sc. The returned vector is owned by sc and valid until its next use.
func (e *EmbLookup) embedInto(sc *Scratch, s string, useMention bool) []float32 {
	dim := e.sem.Dim
	sc.sub = mathx.Resize(sc.sub, dim)
	sc.mention = mathx.Resize(sc.mention, dim)
	e.sem.EmbedPartsInto(&sc.ng, s, sc.sub, sc.mention)
	mention := sc.mention
	if !e.cfg.MentionSlot {
		mention = nil
	} else if !useMention {
		for i := range mention {
			mention[i] = 0
		}
	}
	var syn []float32
	if e.cnn != nil {
		sc.idx = e.enc.EncodeIndexesInto(s, sc.idx)
		syn = e.cnn.ApplyIdxInto(trimIdx(sc.idx), &sc.nn)
	}
	joint := sc.joint[:0]
	joint = append(joint, syn...)
	joint = append(joint, sc.sub...)
	joint = append(joint, mention...)
	sc.joint = joint
	return e.mlp.ApplyInto(joint, &sc.nn)
}

// lookupInto is Lookup with all working memory taken from sc. Only the
// returned candidate slice is allocated.
func (e *EmbLookup) lookupInto(sc *Scratch, q string, k int) []lookup.Candidate {
	return e.lookupTraced(sc, nil, q, k, nil)
}

// lookupTraced is the instrumented single-query path: each pipeline stage
// records into its process-wide histogram and, when tr is non-nil, opens a
// span. Stage timing costs two clock reads per stage; a nil trace adds
// nothing else, keeping the path allocation-free. The returned candidates
// land in dst[:0] when non-nil (the bulk path's flat batch array); a nil
// dst allocates a fresh slice the caller owns.
func (e *EmbLookup) lookupTraced(sc *Scratch, tr *obs.Trace, q string, k int, dst []lookup.Candidate) []lookup.Candidate {
	if k <= 0 {
		return nil
	}
	// Over-fetch when alias rows can collapse onto one entity.
	fetch := k
	if e.cfg.IndexAliases {
		fetch = k * 3
	}
	t0 := time.Now()
	sp := tr.Start("embed")
	emb := e.embedInto(sc, q, true)
	sp.End()
	stageEmbed.Since(t0)

	t1 := time.Now()
	sp = tr.Start("search")
	var res []index.Result
	switch ix := e.ix.(type) {
	case index.AppendSearcher:
		// The raw results are consumed by the merge below, so they live in
		// the scratch-owned buffer — no per-query allocation.
		sc.res = ix.SearchAppendWith(&sc.ix, emb, fetch, sc.res)
		res = sc.res
	case index.ScratchSearcher:
		res = ix.SearchWith(&sc.ix, emb, fetch)
	default:
		res = e.ix.Search(emb, fetch)
	}
	sp.End()
	stageSearch.Since(t1)

	t2 := time.Now()
	sp = tr.Start("merge")
	out := e.dedupeAppend(sc, res, k, dst)
	sp.End()
	stageMerge.Since(t2)

	lookupsTotal.Inc()
	lookupSeconds.Since(t0)
	return out
}

// dedupeInto converts ranked index results to candidates, collapsing alias
// rows onto their entity with the scratch-owned seen set — same semantics
// as lookup.DedupeTopK over the converted candidate list, without the
// intermediate slice and map allocations.
func (e *EmbLookup) dedupeInto(sc *Scratch, res []index.Result, k int) []lookup.Candidate {
	return e.dedupeAppend(sc, res, k, nil)
}

// dedupeAppend is dedupeInto with the output slice taken from dst[:0] (nil
// allocates a fresh one). At most k candidates are appended, so a dst with
// capacity k never reallocates — the invariant the bulk path's flat batch
// array depends on.
func (e *EmbLookup) dedupeAppend(sc *Scratch, res []index.Result, k int, dst []lookup.Candidate) []lookup.Candidate {
	if sc.seen == nil {
		sc.seen = make(map[kg.EntityID]bool, len(res))
	} else {
		clear(sc.seen)
	}
	out := dst[:0]
	if dst == nil {
		out = make([]lookup.Candidate, 0, min(k, len(res)))
	}
	for _, r := range res {
		id := e.rowEntity(r.ID)
		if sc.seen[id] {
			continue
		}
		sc.seen[id] = true
		out = append(out, lookup.Candidate{ID: id, Score: -float64(r.Dist)})
		if len(out) == k {
			break
		}
	}
	return out
}
