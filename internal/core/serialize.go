package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"emblookup/internal/artifact"
	"emblookup/internal/charenc"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
	"emblookup/internal/quant"
)

// modelFormatVersion is the current on-disk format. Version 0 files are the
// original weights-only layout (pre-versioning, the field decodes to zero);
// version 2 adds the optional index artifact; version 3 adds the
// "fastscan" artifact kind. Read accepts every version up to the current
// one and rejects files written by a newer build. Write stamps version 3
// only on models that actually use fast-scan — everything else keeps
// version 2, so older builds still load it.
const modelFormatVersion = 3

// modelWire is the serialized form of a trained EmbLookup model. The
// nearest-neighbor index either rides along as a versioned artifact
// (WriteWithIndex) and is attached on load, or is rebuilt deterministically
// from the stored weights; the knowledge graph is attached by the caller.
type modelWire struct {
	Version       int
	Cfg           Config
	Alphabet      string
	Ngram         wireMatrix
	NgramCfg      [2]int // dim, buckets
	KnownMentions []int
	Params        []wireMatrix
	Index         *wireIndex
}

type wireMatrix struct {
	Rows, Cols int
	Data       []float32
}

// wireQuantizer is a serialized product quantizer: shape plus the M
// sub-codebooks.
type wireQuantizer struct {
	D, M, Ks, Dsub int
	Codebooks      []wireMatrix
}

// wireIndex is the index artifact: everything a cold start needs to attach
// the trained index without re-embedding the graph or re-running k-means.
// Exactly the fields for Kind are populated.
type wireIndex struct {
	Kind      string        // "flat" | "pq" | "fastscan" | "ivf-flat" | "ivf-pq"
	Rows      []kg.EntityID // index row -> entity
	Flat      wireMatrix    // flat
	Quant     wireQuantizer // pq, fastscan, ivf-pq
	Codes     []byte        // pq (row-major codes), fastscan (interleaved blocks)
	Coarse    wireMatrix    // ivf-flat, ivf-pq
	NProbe    int           // ivf-flat, ivf-pq
	Lists     [][]int32     // ivf-flat, ivf-pq
	ListCodes [][]byte      // ivf-pq
	Vectors   wireMatrix    // ivf-flat; ivf-pq re-rank vectors when Rerank > 1
	Rerank    int           // ivf-pq exact re-rank over-fetch factor (0 = off)
}

func toWire(m *mathx.Matrix) wireMatrix {
	return wireMatrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromWire(w wireMatrix) *mathx.Matrix {
	return &mathx.Matrix{Rows: w.Rows, Cols: w.Cols, Data: w.Data}
}

func quantizerToWire(q *quant.ProductQuantizer) wireQuantizer {
	wq := wireQuantizer{D: q.D, M: q.M, Ks: q.Ks, Dsub: q.Dsub}
	for _, cb := range q.Codebooks {
		wq.Codebooks = append(wq.Codebooks, toWire(cb))
	}
	return wq
}

func quantizerFromWire(wq wireQuantizer) *quant.ProductQuantizer {
	q := &quant.ProductQuantizer{D: wq.D, M: wq.M, Ks: wq.Ks, Dsub: wq.Dsub}
	for _, cb := range wq.Codebooks {
		q.Codebooks = append(q.Codebooks, fromWire(cb))
	}
	return q
}

// indexToWire snapshots the model's built index. A Sharded wrapper is
// unwrapped (shard count is a serving-time choice, re-applied after load);
// a Dynamic index must be compacted back to a sealed one by the caller
// first, because its delta segment is serving state, not an artifact.
func (e *EmbLookup) indexToWire() (*wireIndex, error) {
	ix := e.ix
	if sh, ok := ix.(*index.Sharded); ok {
		ix = sh.Inner()
	}
	w := &wireIndex{Rows: e.rows}
	switch t := ix.(type) {
	case *index.Flat:
		w.Kind = "flat"
		w.Flat = toWire(t.Vectors())
	case *index.PQ:
		w.Kind = "pq"
		w.Quant = quantizerToWire(t.Quantizer())
		w.Codes = t.Codes()
	case *index.FastScan:
		// The blocks are stored interleaved exactly as scanned; the row
		// count comes from the Rows mapping (blocks are padded to a
		// multiple of the block size, so their length alone is ambiguous).
		w.Kind = "fastscan"
		w.Quant = quantizerToWire(t.Quantizer())
		w.Codes = t.Blocks()
	case *index.IVF:
		w.Coarse = toWire(t.Coarse())
		w.NProbe = t.NProbe()
		w.Lists = t.Lists()
		if q := t.Quantizer(); q != nil {
			w.Kind = "ivf-pq"
			w.Quant = quantizerToWire(q)
			w.ListCodes = t.ListCodes()
			if rr, rv := t.Rerank(); rv != nil {
				w.Rerank = rr
				w.Vectors = toWire(rv)
			}
		} else {
			w.Kind = "ivf-flat"
			w.Vectors = toWire(t.Vectors())
		}
	default:
		return nil, fmt.Errorf("core: index type %T has no serialized form", ix)
	}
	return w, nil
}

// indexFromWire reassembles a saved index artifact and validates its row
// mapping against the graph the model is being attached to.
func indexFromWire(w *wireIndex, g *kg.Graph) (index.Index, []kg.EntityID, error) {
	var ix index.Index
	var err error
	switch w.Kind {
	case "flat":
		ix = index.NewFlat(fromWire(w.Flat))
	case "pq":
		ix, err = index.NewPQFromParts(quantizerFromWire(w.Quant), w.Codes)
	case "fastscan":
		ix, err = index.NewFastScanFromParts(quantizerFromWire(w.Quant), w.Codes, len(w.Rows))
	case "ivf-flat":
		ix, err = index.NewIVFFromParts(fromWire(w.Coarse), w.NProbe, w.Lists, fromWire(w.Vectors), nil, nil)
	case "ivf-pq":
		var ivf *index.IVF
		ivf, err = index.NewIVFFromParts(fromWire(w.Coarse), w.NProbe, w.Lists, nil, quantizerFromWire(w.Quant), w.ListCodes)
		if err == nil && w.Rerank > 1 {
			err = ivf.SetRerank(w.Rerank, fromWire(w.Vectors))
		}
		ix = ivf
	default:
		return nil, nil, fmt.Errorf("core: unknown index artifact kind %q", w.Kind)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(w.Rows) != ix.Len() {
		return nil, nil, fmt.Errorf("core: index artifact maps %d rows but stores %d vectors", len(w.Rows), ix.Len())
	}
	for _, id := range w.Rows {
		if int(id) < 0 || int(id) >= len(g.Entities) {
			return nil, nil, fmt.Errorf("core: index artifact references entity %d outside the graph (%d entities) — wrong graph?", id, len(g.Entities))
		}
	}
	return ix, w.Rows, nil
}

// Write serializes the trained model weights only — the compact form; the
// index is rebuilt deterministically on load. Use WriteWithIndex to make
// cold starts IO-bound instead.
func (e *EmbLookup) Write(w io.Writer) error {
	return e.write(w, false)
}

// WriteWithIndex serializes the model together with its built index
// (codebooks, codes, vectors, inverted lists, and the row→entity mapping),
// so Read attaches the index instead of re-embedding every entity and
// retraining the quantizer.
func (e *EmbLookup) WriteWithIndex(w io.Writer) error {
	return e.write(w, true)
}

// write emits the current format: the sectioned zero-copy v4 artifact
// (serialize4.go) on every little-endian host, the self-describing gob
// stream on the big-endian exceptions. Read accepts both.
func (e *EmbLookup) write(w io.Writer, withIndex bool) error {
	if artifact.Supported() {
		return e.writeV4(w, withIndex)
	}
	return e.writeGob(w, withIndex)
}

// WriteGob serializes in the legacy gob format (v2/v3) regardless of host
// support for v4 — kept exported for the format benchmarks and for
// generating the back-compat golden corpus.
func (e *EmbLookup) WriteGob(w io.Writer, withIndex bool) error {
	return e.writeGob(w, withIndex)
}

func (e *EmbLookup) writeGob(w io.Writer, withIndex bool) error {
	// Only fast-scan models need the version-3 format; everything else is
	// stamped version 2 so builds predating fast-scan still load it.
	ver := modelFormatVersion
	if !e.cfg.FastScan {
		ver = 2
	}
	wire := modelWire{
		Version:       ver,
		Cfg:           e.cfg,
		Alphabet:      e.enc.Alphabet.Runes(),
		Ngram:         toWire(e.sem.Table),
		NgramCfg:      [2]int{e.sem.Dim, e.sem.Buckets},
		KnownMentions: e.sem.KnownMentionHashes(),
	}
	for _, p := range e.masterParams() {
		wire.Params = append(wire.Params, toWire(p.W))
	}
	if withIndex {
		wi, err := e.indexToWire()
		if err != nil {
			return err
		}
		wire.Index = wi
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Read deserializes a model written by Write or WriteWithIndex — either a
// format-v4 artifact or a gob stream (v0–v3), sniffed by magic. When the
// file carries an index artifact it is attached directly — cold start
// becomes an IO-bound load — otherwise the index is rebuilt over g from the
// stored weights. g must be the graph the model was trained on (or a graph
// with identical entity numbering); an artifact whose row mapping does not
// fit g is rejected. Provenance (loaded vs rebuilt, backing, and how long
// attaching took) is exposed via IndexProvenance. Reading from a stream
// copies the artifact into the heap; use LoadFile to attach by mmap.
func Read(r io.Reader, g *kg.Graph) (*EmbLookup, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(len(artifact.Magic)); err == nil && artifact.Sniff(prefix) {
		af, err := artifact.ReadFrom(br)
		if err != nil {
			return nil, err
		}
		return readV4(af, g)
	}
	return readGob(br, g)
}

// readGob deserializes the legacy gob formats (v0 weights-only, v2 index
// artifact, v3 fast-scan artifact).
func readGob(r io.Reader, g *kg.Graph) (*EmbLookup, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	if wire.Version > modelFormatVersion {
		return nil, fmt.Errorf("core: model format version %d is newer than this build supports (%d)", wire.Version, modelFormatVersion)
	}
	cfg := wire.Cfg
	rng := mathx.NewRNG(cfg.Seed)
	e := &EmbLookup{cfg: cfg, graph: g}
	e.enc = charenc.NewEncoder(charenc.NewAlphabet(wire.Alphabet), cfg.MaxLen)
	e.sem = ngram.NewModelForLoad(wire.NgramCfg[0], wire.NgramCfg[1])
	e.sem.Table = fromWire(wire.Ngram)
	e.sem.SetKnownMentionHashes(wire.KnownMentions)

	jointDim := cfg.Dim
	if cfg.MentionSlot {
		jointDim += cfg.Dim
	}
	if !cfg.SingleModel {
		e.cnn = nn.NewCharCNN(rng, e.enc.Alphabet.Size(), cfg.CNNChannels, cfg.Kernel, cfg.CNNLayers)
		jointDim += e.cnn.OutDim()
	}
	e.mlp = nn.NewMLP(rng, jointDim, cfg.Hidden, cfg.Dim)

	params := e.masterParams()
	if len(params) != len(wire.Params) {
		return nil, fmt.Errorf("core: model shape mismatch: %d params stored, %d expected", len(wire.Params), len(params))
	}
	for i, p := range params {
		w := wire.Params[i]
		if w.Rows != p.W.Rows || w.Cols != p.W.Cols {
			return nil, fmt.Errorf("core: param %d shape %dx%d, expected %dx%d", i, w.Rows, w.Cols, p.W.Rows, p.W.Cols)
		}
		p.W.Data = w.Data
	}
	if wire.Index != nil {
		start := time.Now()
		ix, rows, err := indexFromWire(wire.Index, g)
		if err != nil {
			return nil, err
		}
		e.ix, e.rows = ix, rows
		e.prov = IndexProvenance{Source: "loaded", Took: time.Since(start)}
		return e, nil
	}
	if err := e.buildIndex(); err != nil {
		return nil, err
	}
	return e, nil
}

// SaveFile writes the model weights to path (index rebuilt on load).
func (e *EmbLookup) SaveFile(path string) error {
	return e.saveFile(path, false)
}

// SaveFileWithIndex writes the model and its index artifact to path, so
// LoadFile attaches the index instead of rebuilding it.
func (e *EmbLookup) SaveFileWithIndex(path string) error {
	return e.saveFile(path, true)
}

func (e *EmbLookup) saveFile(path string, withIndex bool) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return e.write(w, withIndex)
	})
}

// SaveFileGob writes the model in the legacy gob format — the comparison
// subject of the format benchmarks and the generator of the golden corpus.
func (e *EmbLookup) SaveFileGob(path string, withIndex bool) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return e.writeGob(w, withIndex)
	})
}

// AtomicWriteFile writes an artifact through fill into a temp file in
// path's directory, fsyncs it, and renames it into place — a reader (or a
// crash) never observes a half-written artifact, and an existing artifact
// at path survives a failed save untouched.
func AtomicWriteFile(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := fill(bw); err != nil {
		return cleanup(err)
	}
	if err := bw.Flush(); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	// CreateTemp's restrictive 0600 would otherwise stick to the artifact.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads a model saved with SaveFile or SaveFileWithIndex,
// attaching the saved index when present and rebuilding it over g
// otherwise. A v4 artifact is attached by mmap where supported — the
// payloads stay in the page cache and load time is independent of model
// size; call Close on the returned model to release the mapping. Gob files
// take the decode path unchanged.
func LoadFile(path string, g *kg.Graph) (*EmbLookup, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var prefix [8]byte
	n, _ := io.ReadFull(f, prefix[:])
	if artifact.Sniff(prefix[:n]) {
		f.Close()
		af, err := artifact.Open(path)
		if err != nil {
			return nil, err
		}
		e, err := readV4(af, g)
		if err != nil {
			af.Close()
			return nil, err
		}
		return e, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	defer f.Close()
	return readGob(bufio.NewReader(f), g)
}
