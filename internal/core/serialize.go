package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"emblookup/internal/charenc"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
)

// modelWire is the serialized form of a trained EmbLookup model. The
// nearest-neighbor index is rebuilt on load (deterministically, from the
// stored weights), and the knowledge graph is attached by the caller.
type modelWire struct {
	Cfg           Config
	Alphabet      string
	Ngram         wireMatrix
	NgramCfg      [2]int // dim, buckets
	KnownMentions []int
	Params        []wireMatrix
}

type wireMatrix struct {
	Rows, Cols int
	Data       []float32
}

func toWire(m *mathx.Matrix) wireMatrix {
	return wireMatrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

func fromWire(w wireMatrix) *mathx.Matrix {
	return &mathx.Matrix{Rows: w.Rows, Cols: w.Cols, Data: w.Data}
}

// Write serializes the trained model (weights only, not the graph or
// index).
func (e *EmbLookup) Write(w io.Writer) error {
	wire := modelWire{
		Cfg:           e.cfg,
		Alphabet:      e.enc.Alphabet.Runes(),
		Ngram:         toWire(e.sem.Table),
		NgramCfg:      [2]int{e.sem.Dim, e.sem.Buckets},
		KnownMentions: e.sem.KnownMentionHashes(),
	}
	for _, p := range e.masterParams() {
		wire.Params = append(wire.Params, toWire(p.W))
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Read deserializes a model written by Write and rebuilds its index over g.
// g must be the graph the model was trained on (or a graph with identical
// entity numbering).
func Read(r io.Reader, g *kg.Graph) (*EmbLookup, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	cfg := wire.Cfg
	rng := mathx.NewRNG(cfg.Seed)
	e := &EmbLookup{cfg: cfg, graph: g}
	e.enc = charenc.NewEncoder(charenc.NewAlphabet(wire.Alphabet), cfg.MaxLen)
	e.sem = ngram.NewModel(wire.NgramCfg[0], wire.NgramCfg[1], 0)
	e.sem.Table = fromWire(wire.Ngram)
	e.sem.SetKnownMentionHashes(wire.KnownMentions)

	jointDim := cfg.Dim
	if cfg.MentionSlot {
		jointDim += cfg.Dim
	}
	if !cfg.SingleModel {
		e.cnn = nn.NewCharCNN(rng, e.enc.Alphabet.Size(), cfg.CNNChannels, cfg.Kernel, cfg.CNNLayers)
		jointDim += e.cnn.OutDim()
	}
	e.mlp = nn.NewMLP(rng, jointDim, cfg.Hidden, cfg.Dim)

	params := e.masterParams()
	if len(params) != len(wire.Params) {
		return nil, fmt.Errorf("core: model shape mismatch: %d params stored, %d expected", len(wire.Params), len(params))
	}
	for i, p := range params {
		w := wire.Params[i]
		if w.Rows != p.W.Rows || w.Cols != p.W.Cols {
			return nil, fmt.Errorf("core: param %d shape %dx%d, expected %dx%d", i, w.Rows, w.Cols, p.W.Rows, p.W.Cols)
		}
		p.W.Data = w.Data
	}
	if err := e.buildIndex(); err != nil {
		return nil, err
	}
	return e, nil
}

// SaveFile writes the model to path.
func (e *EmbLookup) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := e.Write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model saved with SaveFile and rebuilds its index over g.
func LoadFile(path string, g *kg.Graph) (*EmbLookup, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f), g)
}
