package core

import (
	"fmt"
	"io"
	"sort"
	"time"
	"unsafe"

	"emblookup/internal/artifact"
	"emblookup/internal/charenc"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
	"emblookup/internal/quant"
)

// This file is the format-v4 serializer: the model (and optional index
// artifact) laid out in the sectioned zero-copy container of
// internal/artifact instead of a gob stream. Write emits v4 on every
// little-endian host; Read and LoadFile sniff the magic and accept both v4
// and the gob formats v0–v3, so every artifact ever written still loads.
// LoadFile attaches a v4 file by mmap: the index payloads (codes, vectors,
// inverted lists, codebooks, weights) become typed views over the page
// cache, making cold start O(sections), not O(model size).
//
// Section inventory (exactly the sections for the model's index kind exist):
//
//	meta            JSON   config, alphabet, shapes, index kind, nprobe
//	known_mentions  i64    sorted trained mention hashes (may be empty)
//	ngram_table     f32    Buckets×Dim subword table
//	param_%d        f32    combiner/CNN weight matrices, master order
//	rows            i32    index row → entity id
//	flat            f32    flat: the vector matrix
//	cb_%d           f32    pq/fastscan/ivf-pq: sub-codebook m
//	codes           u8     pq: row-major codes
//	blocks          u8     fastscan: 32-row interleaved blocks, verbatim
//	coarse          f32    ivf-*: coarse centroid matrix
//	list_offsets    i64    ivf-*: prefix offsets into list_ids (nlist+1)
//	list_ids        i32    ivf-*: concatenated inverted lists
//	vectors         f32    ivf-flat: the stored vectors; also written for
//	                       ivf-pq when Config.Rerank > 1 (exact re-rank
//	                       pages candidate rows in from this mmap'd view)
//	list_codes      u8     ivf-pq: concatenated per-list residual codes
//
// Every view handed to the index constructors is cap-clipped, so the
// read-only-backing discipline holds: any append (Dynamic compaction,
// WithPartition growth) reallocates to the heap instead of writing through
// to the mapping.

// metaV4 is the JSON "meta" section: everything structural that is not a
// bulk payload.
type metaV4 struct {
	Cfg      Config       `json:"cfg"`
	Alphabet string       `json:"alphabet"`
	NgramDim int          `json:"ngram_dim"`
	NgramBk  int          `json:"ngram_buckets"`
	Params   [][2]int     `json:"params"` // shapes of param_%d, master order
	Index    *metaIndexV4 `json:"index,omitempty"`
}

type metaIndexV4 struct {
	Kind   string       `json:"kind"` // flat | pq | fastscan | ivf-flat | ivf-pq
	NProbe int          `json:"nprobe,omitempty"`
	Quant  *metaQuantV4 `json:"quant,omitempty"`
	// Rerank is the ivf-pq exact re-rank over-fetch factor; when > 1 the
	// artifact also carries a "vectors" section with the raw embeddings.
	Rerank int `json:"rerank,omitempty"`
}

type metaQuantV4 struct {
	D    int `json:"d"`
	M    int `json:"m"`
	Ks   int `json:"ks"`
	Dsub int `json:"dsub"`
}

// rowsAsInt32 reinterprets the row→entity table for zero-copy IO
// (kg.EntityID is defined as int32).
func rowsAsInt32(rows []kg.EntityID) []int32 {
	if len(rows) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&rows[0])), len(rows))
}

func int32AsRows(ids []int32) []kg.EntityID {
	if len(ids) == 0 {
		return nil
	}
	return unsafe.Slice((*kg.EntityID)(unsafe.Pointer(&ids[0])), len(ids))
}

// writeV4 serializes the model as a v4 artifact. The byte stream is
// deterministic: section order is fixed and the one map-ordered input (the
// known-mention set) is sorted.
func (e *EmbLookup) writeV4(w io.Writer, withIndex bool) error {
	aw := artifact.NewWriter()
	meta := metaV4{
		Cfg:      e.cfg,
		Alphabet: e.enc.Alphabet.Runes(),
		NgramDim: e.sem.Dim,
		NgramBk:  e.sem.Buckets,
	}

	known := e.sem.KnownMentionHashes()
	hashes := make([]int64, len(known))
	for i, h := range known {
		hashes[i] = int64(h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })

	params := e.masterParams()
	for i, p := range params {
		meta.Params = append(meta.Params, [2]int{p.W.Rows, p.W.Cols})
		aw.AddFloat32s(fmt.Sprintf("param_%d", i), p.W.Data, p.W.Rows, p.W.Cols)
	}

	if withIndex {
		mi, err := e.indexSections(aw)
		if err != nil {
			return err
		}
		meta.Index = mi
		aw.AddInt32s("rows", rowsAsInt32(e.rows))
	}

	aw.AddJSON("meta", meta)
	aw.AddInt64s("known_mentions", hashes)
	aw.AddFloat32s("ngram_table", e.sem.Table.Data, e.sem.Table.Rows, e.sem.Table.Cols)
	_, err := aw.WriteTo(w)
	return err
}

// addQuantizer emits the M sub-codebooks as cb_%d sections.
func addQuantizer(aw *artifact.Writer, q *quant.ProductQuantizer) *metaQuantV4 {
	for m, cb := range q.Codebooks {
		aw.AddFloat32s(fmt.Sprintf("cb_%d", m), cb.Data, cb.Rows, cb.Cols)
	}
	return &metaQuantV4{D: q.D, M: q.M, Ks: q.Ks, Dsub: q.Dsub}
}

// indexSections decomposes the model's built index into v4 sections — the
// same decomposition as indexToWire, but into flat arrays the reader can
// view without copying. Inverted lists are concatenated with a prefix-offset
// table; everything else is stored verbatim.
func (e *EmbLookup) indexSections(aw *artifact.Writer) (*metaIndexV4, error) {
	ix := e.ix
	if sh, ok := ix.(*index.Sharded); ok {
		ix = sh.Inner()
	}
	mi := &metaIndexV4{}
	switch t := ix.(type) {
	case *index.Flat:
		mi.Kind = "flat"
		m := t.Vectors()
		aw.AddFloat32s("flat", m.Data, m.Rows, m.Cols)
	case *index.PQ:
		mi.Kind = "pq"
		mi.Quant = addQuantizer(aw, t.Quantizer())
		aw.AddBytes("codes", t.Codes())
	case *index.FastScan:
		mi.Kind = "fastscan"
		mi.Quant = addQuantizer(aw, t.Quantizer())
		aw.AddBytes("blocks", t.Blocks())
	case *index.IVF:
		m := t.Coarse()
		aw.AddFloat32s("coarse", m.Data, m.Rows, m.Cols)
		mi.NProbe = t.NProbe()
		lists := t.Lists()
		offsets := make([]int64, len(lists)+1)
		total := 0
		for i, ids := range lists {
			offsets[i] = int64(total)
			total += len(ids)
		}
		offsets[len(lists)] = int64(total)
		ids := make([]int32, 0, total)
		for _, l := range lists {
			ids = append(ids, l...)
		}
		aw.AddInt64s("list_offsets", offsets)
		aw.AddInt32s("list_ids", ids)
		if q := t.Quantizer(); q != nil {
			mi.Kind = "ivf-pq"
			mi.Quant = addQuantizer(aw, q)
			codes := make([]byte, 0, total*q.M)
			for _, c := range t.ListCodes() {
				codes = append(codes, c...)
			}
			aw.AddBytes("list_codes", codes)
			if rr, rv := t.Rerank(); rv != nil {
				mi.Rerank = rr
				aw.AddFloat32s("vectors", rv.Data, rv.Rows, rv.Cols)
			}
		} else {
			mi.Kind = "ivf-flat"
			v := t.Vectors()
			aw.AddFloat32s("vectors", v.Data, v.Rows, v.Cols)
		}
	default:
		return nil, fmt.Errorf("core: index type %T has no serialized form", ix)
	}
	return mi, nil
}

// sectionMatrix views an F32 section as a matrix. The returned matrix
// aliases the artifact backing (cap-clipped); callers must not mutate it.
func sectionMatrix(af *artifact.File, name string) (*mathx.Matrix, error) {
	s := af.Section(name)
	if s == nil {
		return nil, fmt.Errorf("core: artifact is missing section %q", name)
	}
	if s.Elem != artifact.ElemF32 || s.Rows*s.Cols != s.Len() {
		return nil, fmt.Errorf("core: artifact section %q is not a float32 matrix", name)
	}
	return &mathx.Matrix{Rows: s.Rows, Cols: s.Cols, Data: s.Float32s()}, nil
}

func sectionBytes(af *artifact.File, name string) ([]byte, error) {
	s := af.Section(name)
	if s == nil {
		return nil, fmt.Errorf("core: artifact is missing section %q", name)
	}
	return s.Bytes(), nil
}

// quantizerFromSections reassembles a product quantizer over cb_%d views.
func quantizerFromSections(af *artifact.File, mq *metaQuantV4) (*quant.ProductQuantizer, error) {
	if mq == nil {
		return nil, fmt.Errorf("core: artifact index kind needs a quantizer but meta has none")
	}
	if mq.M <= 0 || mq.M > 256 {
		return nil, fmt.Errorf("core: implausible quantizer M=%d", mq.M)
	}
	q := &quant.ProductQuantizer{D: mq.D, M: mq.M, Ks: mq.Ks, Dsub: mq.Dsub}
	for m := 0; m < mq.M; m++ {
		cb, err := sectionMatrix(af, fmt.Sprintf("cb_%d", m))
		if err != nil {
			return nil, err
		}
		q.Codebooks = append(q.Codebooks, cb)
	}
	return q, nil
}

// indexFromSections reassembles the index artifact over zero-copy views and
// validates its row mapping against g — the v4 counterpart of
// indexFromWire. All shape validation lives in the index.New*FromParts
// constructors; nothing here allocates proportionally to untrusted metadata.
func indexFromSections(af *artifact.File, mi *metaIndexV4, g *kg.Graph) (index.Index, []kg.EntityID, error) {
	rowsSec := af.Section("rows")
	if rowsSec == nil {
		return nil, nil, fmt.Errorf("core: artifact declares an index but has no rows section")
	}
	rows := int32AsRows(rowsSec.Int32s())

	var ix index.Index
	var err error
	switch mi.Kind {
	case "flat":
		var m *mathx.Matrix
		if m, err = sectionMatrix(af, "flat"); err == nil {
			ix = index.NewFlat(m)
		}
	case "pq":
		var q *quant.ProductQuantizer
		var codes []byte
		if q, err = quantizerFromSections(af, mi.Quant); err == nil {
			if codes, err = sectionBytes(af, "codes"); err == nil {
				ix, err = index.NewPQFromParts(q, codes)
			}
		}
	case "fastscan":
		var q *quant.ProductQuantizer
		var blocks []byte
		if q, err = quantizerFromSections(af, mi.Quant); err == nil {
			if blocks, err = sectionBytes(af, "blocks"); err == nil {
				ix, err = index.NewFastScanFromParts(q, blocks, len(rows))
			}
		}
	case "ivf-flat", "ivf-pq":
		ix, err = ivfFromSections(af, mi)
	default:
		err = fmt.Errorf("core: unknown index artifact kind %q", mi.Kind)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(rows) != ix.Len() {
		return nil, nil, fmt.Errorf("core: index artifact maps %d rows but stores %d vectors", len(rows), ix.Len())
	}
	for _, id := range rows {
		if int(id) < 0 || int(id) >= len(g.Entities) {
			return nil, nil, fmt.Errorf("core: index artifact references entity %d outside the graph (%d entities) — wrong graph?", id, len(g.Entities))
		}
	}
	return ix, rows, nil
}

// ivfFromSections rebuilds the inverted lists as cap-clipped sub-slices of
// the concatenated id (and code) arrays — per-list views over the backing,
// not copies, so attaching a million-entity IVF index allocates only the
// outer list headers.
func ivfFromSections(af *artifact.File, mi *metaIndexV4) (index.Index, error) {
	coarse, err := sectionMatrix(af, "coarse")
	if err != nil {
		return nil, err
	}
	offSec := af.Section("list_offsets")
	idsSec := af.Section("list_ids")
	if offSec == nil || idsSec == nil {
		return nil, fmt.Errorf("core: IVF artifact is missing its list sections")
	}
	offsets := offSec.Int64s()
	ids := idsSec.Int32s()
	if len(offsets) != coarse.Rows+1 {
		return nil, fmt.Errorf("core: IVF artifact holds %d list offsets for %d coarse centroids", len(offsets), coarse.Rows)
	}
	if len(offsets) == 0 || offsets[0] != 0 || offsets[len(offsets)-1] != int64(len(ids)) {
		return nil, fmt.Errorf("core: IVF list offsets do not span the id array")
	}
	lists := make([][]int32, coarse.Rows)
	for i := range lists {
		lo, hi := offsets[i], offsets[i+1]
		if lo < 0 || hi < lo || hi > int64(len(ids)) {
			return nil, fmt.Errorf("core: IVF list %d has offsets [%d, %d) outside the %d stored ids", i, lo, hi, len(ids))
		}
		lists[i] = ids[lo:hi:hi]
	}
	if mi.Kind == "ivf-flat" {
		vectors, err := sectionMatrix(af, "vectors")
		if err != nil {
			return nil, err
		}
		return index.NewIVFFromParts(coarse, mi.NProbe, lists, vectors, nil, nil)
	}
	q, err := quantizerFromSections(af, mi.Quant)
	if err != nil {
		return nil, err
	}
	flat, err := sectionBytes(af, "list_codes")
	if err != nil {
		return nil, err
	}
	if int64(len(flat)) != offsets[len(offsets)-1]*int64(q.M) {
		return nil, fmt.Errorf("core: IVF artifact holds %d code bytes for %d ids ×M=%d", len(flat), len(ids), q.M)
	}
	codes := make([][]byte, len(lists))
	for i := range codes {
		lo, hi := offsets[i]*int64(q.M), offsets[i+1]*int64(q.M)
		codes[i] = flat[lo:hi:hi]
	}
	ivf, err := index.NewIVFFromParts(coarse, mi.NProbe, lists, nil, q, codes)
	if err != nil {
		return nil, err
	}
	if mi.Rerank > 1 {
		vectors, err := sectionMatrix(af, "vectors")
		if err != nil {
			return nil, fmt.Errorf("core: IVF-PQ artifact declares rerank=%d: %w", mi.Rerank, err)
		}
		if err := ivf.SetRerank(mi.Rerank, vectors); err != nil {
			return nil, err
		}
	}
	return ivf, nil
}

// readV4 assembles a model from a parsed artifact. Weight matrices, the
// subword table, and every index payload alias the artifact backing
// (read-only); af's lifetime is handed to the model (Close releases it).
func readV4(af *artifact.File, g *kg.Graph) (*EmbLookup, error) {
	metaSec := af.Section("meta")
	if metaSec == nil {
		return nil, fmt.Errorf("core: artifact has no meta section")
	}
	var meta metaV4
	if err := metaSec.JSON(&meta); err != nil {
		return nil, fmt.Errorf("core: artifact meta: %w", err)
	}
	cfg := meta.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: artifact config: %w", err)
	}
	rng := mathx.NewRNG(cfg.Seed)
	e := &EmbLookup{cfg: cfg, graph: g, backing: af}
	e.enc = charenc.NewEncoder(charenc.NewAlphabet(meta.Alphabet), cfg.MaxLen)
	e.sem = ngram.NewModelForLoad(meta.NgramDim, meta.NgramBk)
	tbl, err := sectionMatrix(af, "ngram_table")
	if err != nil {
		return nil, err
	}
	e.sem.Table = tbl

	kmSec := af.Section("known_mentions")
	if kmSec == nil {
		return nil, fmt.Errorf("core: artifact has no known_mentions section")
	}
	// The section is written sorted (writeV4), so it attaches directly as a
	// binary-searched view aliasing the mmap — the map rebuild this
	// replaced was the last O(n) component of a cold attach (~25ms of 31ms
	// at 1M entities).
	e.sem.SetKnownMentionView(kmSec.Int64s())

	jointDim := cfg.Dim
	if cfg.MentionSlot {
		jointDim += cfg.Dim
	}
	if !cfg.SingleModel {
		e.cnn = nn.NewCharCNN(rng, e.enc.Alphabet.Size(), cfg.CNNChannels, cfg.Kernel, cfg.CNNLayers)
		jointDim += e.cnn.OutDim()
	}
	e.mlp = nn.NewMLP(rng, jointDim, cfg.Hidden, cfg.Dim)

	params := e.masterParams()
	if len(params) != len(meta.Params) {
		return nil, fmt.Errorf("core: model shape mismatch: %d params stored, %d expected", len(meta.Params), len(params))
	}
	for i, p := range params {
		w, err := sectionMatrix(af, fmt.Sprintf("param_%d", i))
		if err != nil {
			return nil, err
		}
		if w.Rows != p.W.Rows || w.Cols != p.W.Cols {
			return nil, fmt.Errorf("core: param %d shape %dx%d, expected %dx%d", i, w.Rows, w.Cols, p.W.Rows, p.W.Cols)
		}
		p.W.Data = w.Data
	}

	if meta.Index != nil {
		start := time.Now()
		ix, rows, err := indexFromSections(af, meta.Index, g)
		if err != nil {
			return nil, err
		}
		e.ix, e.rows = ix, rows
		e.prov = IndexProvenance{Source: "loaded", Took: time.Since(start), Backing: af.Backing()}
		return e, nil
	}
	if err := e.buildIndex(); err != nil {
		return nil, err
	}
	e.prov.Backing = af.Backing()
	return e, nil
}
