package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"emblookup/internal/charenc"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/mathx"
	"emblookup/internal/ngram"
	"emblookup/internal/nn"
	"emblookup/internal/quant"
	"emblookup/internal/strutil"
	"emblookup/internal/triplet"
)

// TrainOption customizes training without widening Config.
type TrainOption func(*trainState)

// WithLogf routes progress messages (one line per epoch) to f.
func WithLogf(f func(format string, args ...any)) TrainOption {
	return func(s *trainState) { s.logf = f }
}

// WithTriplets overrides the mined triplet set (used by the Figure 3
// training-data sweep to control the triplet budget precisely).
func WithTriplets(ts []triplet.Triplet) TrainOption {
	return func(s *trainState) { s.triplets = ts }
}

// TrainStats reports phase timings and the final combiner loss of one Train
// run — benchkg uses it for the per-phase train rows, and the convergence
// test compares FinalLoss across modes.
type TrainStats struct {
	SemanticDur time.Duration // synonym-pair (ngram) phase
	CombinerDur time.Duration // triplet/combiner phase
	FinalLoss   float64       // mean triplet loss of the last epoch run
}

// WithTrainStats fills st with phase timings and the final loss.
func WithTrainStats(st *TrainStats) TrainOption {
	return func(s *trainState) { s.stats = st }
}

type trainState struct {
	logf     func(format string, args ...any)
	triplets []triplet.Triplet
	stats    *TrainStats
}

// Train builds an EmbLookup service for g following Section III end to end:
// train the semantic subword model on (label, alias) synonym pairs, mine
// triplets, train the CNN+combiner with triplet loss (offline epochs on all
// triplets, then online epochs on semi-hard/hard triplets only), embed
// every entity, and build the (optionally product-quantized) index.
func Train(g *kg.Graph, cfg Config, opts ...TrainOption) (*EmbLookup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &trainState{logf: func(string, ...any) {}}
	for _, o := range opts {
		o(st)
	}
	rng := mathx.NewRNG(cfg.Seed)

	// Character alphabet over the graph's mentions.
	var mentions []string
	for i := range g.Entities {
		mentions = append(mentions, g.Entities[i].Mentions()...)
	}
	alphabet := charenc.AlphabetFromMentions(mentions)
	enc := charenc.NewEncoder(alphabet, cfg.MaxLen)

	// Semantic path: the fastText substitute trained on synonym pairs. The
	// mention memorization features participate only when the combiner
	// will consume the mention slot — otherwise they would absorb the
	// synonym-attachment signal the subword rows need.
	sem := ngram.NewModel(cfg.Dim, cfg.NgramBuckets, rng.Uint64())
	sem.MentionHalf = cfg.MentionSlot
	pairs := make([]ngram.Pair, 0)
	for _, p := range triplet.SynonymPairs(g) {
		pairs = append(pairs, ngram.Pair{Label: p[0], Synonym: p[1]})
	}
	ngCfg := ngram.DefaultTrainConfig()
	ngCfg.Epochs = cfg.NgramEpochs
	ngCfg.Seed = rng.Uint64()
	if cfg.Hogwild {
		ngCfg.Deterministic = false
		ngCfg.Workers = cfg.Workers
		ngCfg.OnProgress = func(done, total int64) {
			trainSemProgress.Set(float64(done))
		}
	}
	semStart := time.Now()
	sem.Train(pairs, triplet.Labels(g), ngCfg)
	if st.stats != nil {
		st.stats.SemanticDur = time.Since(semStart)
	}
	st.logf("core: semantic model trained on %d synonym pairs", len(pairs))

	// Syntactic path + combiner. The semantic path contributes the subword
	// mean, plus the known-mention slot when MentionSlot is enabled (see
	// ngram.EmbedParts).
	var cnn *nn.CharCNN
	jointDim := cfg.Dim
	if cfg.MentionSlot {
		jointDim += cfg.Dim
	}
	if !cfg.SingleModel {
		cnn = nn.NewCharCNN(rng, alphabet.Size(), cfg.CNNChannels, cfg.Kernel, cfg.CNNLayers)
		jointDim += cnn.OutDim()
	}
	mlp := nn.NewMLP(rng, jointDim, cfg.Hidden, cfg.Dim)
	// Bootstrap the combiner from the semantic model (Section III-B): when
	// the hidden layer is wide enough, initialize it as an exact ReLU
	// pass-through of the subword block, so the model starts from the
	// fastText metric and training refines it with the CNN instead of
	// starting from a random metric.
	initSemPassthrough(mlp, jointDim-cfg.Dim, cfg.Dim)

	e := &EmbLookup{cfg: cfg, enc: enc, cnn: cnn, sem: sem, mlp: mlp, graph: g}

	// Triplet mining.
	ts := st.triplets
	if ts == nil {
		mCfg := triplet.DefaultMinerConfig()
		mCfg.PerEntity = cfg.TripletsPerEntity
		mCfg.Seed = rng.Uint64()
		ts = triplet.Mine(g, mCfg)
	}
	st.logf("core: %d training triplets", len(ts))

	if cfg.Epochs > 0 && len(ts) > 0 {
		combStart := time.Now()
		finalLoss := e.train(ts, cfg, rng, st.logf)
		if st.stats != nil {
			st.stats.CombinerDur = time.Since(combStart)
			st.stats.FinalLoss = finalLoss
		}
	}

	if err := e.buildIndex(); err != nil {
		return nil, err
	}
	st.logf("core: index built over %d rows (%d bytes payload)", e.ix.Len(), e.ix.SizeBytes())
	return e, nil
}

// initSemPassthrough initializes the combiner so its output initially
// equals the semantic block of the input. ReLU cannot pass negative values
// through one unit, so each semantic dimension i uses a +x/−x pair of
// hidden units (x = relu(x) − relu(−x)); this needs Hidden ≥ 2·dim, and is
// skipped otherwise. semOffset is where the semantic block starts in the
// joint input (after the CNN features). The remaining connections keep
// their small random initialization so the CNN path can grow in.
func initSemPassthrough(mlp *nn.MLP, semOffset, dim int) {
	if mlp.L1.Out < 2*dim {
		return
	}
	scaleDown := float32(0.05)
	for i := range mlp.L1.Weight.W.Data {
		mlp.L1.Weight.W.Data[i] *= scaleDown
	}
	for i := range mlp.L2.Weight.W.Data {
		mlp.L2.Weight.W.Data[i] *= scaleDown
	}
	for i := 0; i < dim; i++ {
		mlp.L1.Weight.W.Set(i, semOffset+i, 1)
		mlp.L1.Weight.W.Set(dim+i, semOffset+i, -1)
		mlp.L2.Weight.W.Set(i, i, 1)
		mlp.L2.Weight.W.Set(i, dim+i, -1)
	}
}

// fwdCache holds the per-string activations of one training forward pass.
type fwdCache struct {
	cnnCache *nn.CharCNNCache
	mlpCache *nn.MLPCache
	synLen   int
}

// trainWorker owns replica modules (shared weights, private gradients) so a
// batch can be sharded across goroutines.
type trainWorker struct {
	cnn            *nn.CharCNN
	mlp            *nn.MLP
	sem            *ngram.Model
	enc            *charenc.Encoder
	params         []*nn.Param
	rng            *mathx.RNG
	mentionSlot    bool
	mentionDropout float64
	simCache       map[string]bool
	loss           func(a, p, n []float32, margin float32) (float32, []float32, []float32, []float32)
}

func (e *EmbLookup) newWorker(seed uint64) *trainWorker {
	w := &trainWorker{
		sem: e.sem, enc: e.enc, mlp: e.mlp.Replica(),
		rng:            mathx.NewRNG(seed),
		mentionSlot:    e.cfg.MentionSlot,
		mentionDropout: e.cfg.MentionDropout,
		loss:           nn.TripletLoss,
	}
	if e.cfg.Loss == "contrastive" {
		w.loss = nn.ContrastiveLoss
	}
	w.params = w.mlp.Params()
	if e.cnn != nil {
		w.cnn = e.cnn.Replica()
		w.params = append(w.params, w.cnn.Params()...)
	}
	return w
}

// forward runs one training forward pass. useMention controls the
// known-mention input slot (see step for the dropout policy).
func (w *trainWorker) forward(s string, useMention bool) ([]float32, fwdCache) {
	sub, mention := w.sem.EmbedParts(s)
	if !w.mentionSlot {
		mention = nil
	} else if !useMention {
		for i := range mention {
			mention[i] = 0
		}
	}
	var syn []float32
	var cc *nn.CharCNNCache
	if w.cnn != nil {
		syn, cc = w.cnn.ForwardIdx(trimIdx(w.enc.EncodeIndexes(s)))
	}
	joint := make([]float32, 0, len(syn)+len(sub)+len(mention))
	joint = append(joint, syn...)
	joint = append(joint, sub...)
	joint = append(joint, mention...)
	y, mc := w.mlp.Forward(joint)
	return y, fwdCache{cnnCache: cc, mlpCache: mc, synLen: len(syn)}
}

func (w *trainWorker) backward(c fwdCache, dy []float32) {
	dj := w.mlp.Backward(c.mlpCache, dy)
	if w.cnn != nil {
		w.cnn.BackwardIdx(c.cnnCache, dj[:c.synLen])
	}
	// The semantic path is frozen (bootstrap, Section III-B), so the tail
	// of dj is discarded.
}

// step trains one triplet and returns its loss. The mention slot of a
// *syntactically close* positive is dropped with probability
// MentionDropout so the CNN/subword paths keep learning typo robustness;
// surface-dissimilar (semantic) positives always keep their mention slot —
// forcing the subword path to attach opaque aliases would smear the very
// geometry syntactic matching depends on.
func (w *trainWorker) step(t triplet.Triplet, margin float32) float32 {
	posMention := true
	if w.mentionSlot && w.mentionDropout > 0 && w.rng.Float64() < w.mentionDropout && w.syntacticPair(t.Anchor, t.Positive) {
		posMention = false
	}
	ya, ca := w.forward(t.Anchor, true)
	yp, cp := w.forward(t.Positive, posMention)
	yn, cn := w.forward(t.Negative, true)
	loss, da, dp, dn := w.loss(ya, yp, yn, margin)
	if loss > 0 {
		w.backward(ca, da)
		w.backward(cp, dp)
		w.backward(cn, dn)
	}
	return loss
}

// syntacticPair reports whether two mentions are surface-similar (memoized
// q-gram check).
func (w *trainWorker) syntacticPair(a, b string) bool {
	key := a + "\x00" + b
	if v, ok := w.simCache[key]; ok {
		return v
	}
	v := strutil.QGramSimilarity(a, b, 3) >= 0.35
	if w.simCache == nil {
		w.simCache = make(map[string]bool)
	}
	w.simCache[key] = v
	return v
}

func (e *EmbLookup) masterParams() []*nn.Param {
	ps := e.mlp.Params()
	if e.cnn != nil {
		ps = append(ps, e.cnn.Params()...)
	}
	return ps
}

// train runs the two-phase schedule: offline epochs over all triplets, then
// online epochs over the semi-hard/hard subset re-selected each epoch. It
// returns the mean loss of the last epoch run. The per-batch loop comes in
// two flavors: the deterministic replica path (shared weights, private
// gradients, MergeGrads barrier, one Adam) and the hogwild path
// (cfg.Hogwild: detached per-worker weights, per-worker HogwildAdam pushing
// CAS deltas straight onto the master — no barrier inside an epoch).
func (e *EmbLookup) train(ts []triplet.Triplet, cfg Config, rng *mathx.RNG, logf func(string, ...any)) float64 {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	master := e.masterParams()

	var runEpoch func(active []triplet.Triplet, order []int) float64
	if cfg.Hogwild {
		hws := make([]*hogwildWorker, workers)
		for i := range hws {
			hws[i] = e.newHogwildWorker(cfg, master, cfg.Seed^(uint64(i+1)*0x9e3779b97f4a7c15))
		}
		runEpoch = func(active []triplet.Triplet, order []int) float64 {
			return e.runEpochHogwild(hws, active, order, cfg, rng)
		}
	} else {
		opt := nn.NewAdam(cfg.LR, master)
		ws := make([]*trainWorker, workers)
		for i := range ws {
			ws[i] = e.newWorker(cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
		}
		runEpoch = func(active []triplet.Triplet, order []int) float64 {
			return e.runEpochReplica(ws, master, opt, active, order, cfg, rng)
		}
	}

	offline := cfg.Epochs / 2
	order := make([]int, len(ts))
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		active := ts
		phase := "offline"
		if epoch >= offline {
			phase = "online"
			active = e.selectHardParallel(ts, cfg.Margin, workers)
			if len(active) == 0 {
				logf("core: epoch %d (%s): all triplets easy, stopping early", epoch, phase)
				break
			}
		} else if cfg.TopLossFraction > 0 && epoch > 0 {
			phase = "offline/top-loss"
			active = e.selectTopLoss(ts, cfg, workers)
			if len(active) == 0 {
				active = ts
			}
		}
		if len(order) < len(active) {
			order = make([]int, len(active))
		}
		for i := 0; i < len(active); i++ {
			order[i] = i
		}
		lastLoss = runEpoch(active, order)
		logf("core: epoch %d (%s): %d triplets, mean loss %.4f", epoch, phase, len(active), lastLoss)
	}
	return lastLoss
}

// runEpochReplica is the deterministic per-batch loop: workers stride over
// each batch on replica modules, MergeGrads folds their gradients into the
// master, and one shared Adam steps — bit-identical for a given (seed,
// workers) pair.
func (e *EmbLookup) runEpochReplica(ws []*trainWorker, master []*nn.Param, opt *nn.Adam, active []triplet.Triplet, order []int, cfg Config, rng *mathx.RNG) float64 {
	rng.ShuffleInts(order[:len(active)])
	var epochLoss float64
	for start := 0; start < len(active); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(active) {
			end = len(active)
		}
		batch := order[start:end]
		var wg sync.WaitGroup
		losses := make([]float32, len(ws))
		for wi := range ws {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := ws[wi]
				var sum float32
				for bi := wi; bi < len(batch); bi += len(ws) {
					sum += w.step(active[batch[bi]], cfg.Margin)
				}
				losses[wi] = sum
			}(wi)
		}
		wg.Wait()
		for wi := range ws {
			nn.MergeGrads(master, ws[wi].params)
			epochLoss += float64(losses[wi])
		}
		opt.Step(1 / float32(len(batch)))
	}
	return epochLoss / float64(len(active))
}

// hogwildWorker pairs a trainWorker whose modules are detached deep copies
// with its personal HogwildAdam (per-worker moment shards).
type hogwildWorker struct {
	w   *trainWorker
	opt *nn.HogwildAdam
}

// newHogwildWorker builds a worker with fully private weights plus the
// optimizer that syncs them against the master cells: Pull refreshes the
// private copy with atomic loads, Step pushes Adam deltas back with CAS
// adds. Parameter order matches masterParams (MLP then CNN).
func (e *EmbLookup) newHogwildWorker(cfg Config, master []*nn.Param, seed uint64) *hogwildWorker {
	w := &trainWorker{
		sem: e.sem, enc: e.enc, mlp: e.mlp.Detach(),
		rng:            mathx.NewRNG(seed),
		mentionSlot:    cfg.MentionSlot,
		mentionDropout: cfg.MentionDropout,
		loss:           nn.TripletLoss,
	}
	if cfg.Loss == "contrastive" {
		w.loss = nn.ContrastiveLoss
	}
	w.params = w.mlp.Params()
	if e.cnn != nil {
		w.cnn = e.cnn.Detach()
		w.params = append(w.params, w.cnn.Params()...)
	}
	return &hogwildWorker{w: w, opt: nn.NewHogwildAdam(cfg.LR, master, w.params)}
}

// runEpochHogwild shards the epoch's triplets into contiguous per-worker
// ranges. Each worker shuffles its own range, then repeatedly pulls a fresh
// weight snapshot, runs a micro-batch (BatchSize/workers triplets) on its
// private copy, and pushes the Adam-preconditioned deltas onto the master —
// all workers concurrently, with the only barrier at the epoch boundary
// (selectHardParallel reads master weights plain, so it must not overlap
// with pushes).
func (e *EmbLookup) runEpochHogwild(hws []*hogwildWorker, active []triplet.Triplet, order []int, cfg Config, rng *mathx.RNG) float64 {
	rng.ShuffleInts(order[:len(active)])
	micro := cfg.BatchSize / len(hws)
	if micro < 1 {
		micro = 1
	}
	losses := make([]float64, len(hws))
	var wg sync.WaitGroup
	for wi := range hws {
		lo := wi * len(active) / len(hws)
		hi := (wi + 1) * len(active) / len(hws)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			hw := hws[wi]
			mine := order[lo:hi]
			hw.w.rng.ShuffleInts(mine)
			var sum float64
			for start := 0; start < len(mine); start += micro {
				end := start + micro
				if end > len(mine) {
					end = len(mine)
				}
				hw.opt.Pull()
				for _, ti := range mine[start:end] {
					sum += float64(hw.w.step(active[ti], cfg.Margin))
				}
				hw.opt.Step(1 / float32(end-start))
				trainHogwildSteps.Add(1)
			}
			losses[wi] = sum
		}(wi, lo, hi)
	}
	wg.Wait()
	var epochLoss float64
	for _, l := range losses {
		epochLoss += l
	}
	return epochLoss / float64(len(active))
}

// selectHardParallel is triplet.SelectHard fanned across workers using the
// inference path.
func (e *EmbLookup) selectHardParallel(ts []triplet.Triplet, margin float32, workers int) []triplet.Triplet {
	out := make([]bool, len(ts))
	var wg sync.WaitGroup
	chunk := (len(ts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ts) {
			break
		}
		hi := lo + chunk
		if hi > len(ts) {
			hi = len(ts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t := ts[i]
				a := e.Embed(t.Anchor)
				p := e.Embed(t.Positive)
				n := e.Embed(t.Negative)
				dap, dan := nn.TripletDistances(a, p, n)
				out[i] = triplet.Classify(dap, dan, margin) != triplet.Easy
			}
		}(lo, hi)
	}
	wg.Wait()
	var hard []triplet.Triplet
	for i, keep := range out {
		if keep {
			hard = append(hard, ts[i])
		}
	}
	return hard
}

// selectTopLoss ranks the triplets by their loss under the current model
// and keeps the top cfg.TopLossFraction — the "most promising triplets"
// schedule from the paper's future-work discussion.
func (e *EmbLookup) selectTopLoss(ts []triplet.Triplet, cfg Config, workers int) []triplet.Triplet {
	losses := make([]float32, len(ts))
	lossFn := nn.TripletLoss
	if cfg.Loss == "contrastive" {
		lossFn = nn.ContrastiveLoss
	}
	var wg sync.WaitGroup
	chunk := (len(ts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ts) {
			break
		}
		hi := lo + chunk
		if hi > len(ts) {
			hi = len(ts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t := ts[i]
				l, _, _, _ := lossFn(e.Embed(t.Anchor), e.Embed(t.Positive), e.Embed(t.Negative), cfg.Margin)
				losses[i] = l
			}
		}(lo, hi)
	}
	wg.Wait()
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return losses[idx[a]] > losses[idx[b]] })
	keep := int(float64(len(ts)) * cfg.TopLossFraction)
	if keep < 1 {
		keep = 1
	}
	out := make([]triplet.Triplet, keep)
	for i := 0; i < keep; i++ {
		out[i] = ts[idx[i]]
	}
	return out
}

// buildIndex embeds every entity (by label, plus aliases when configured)
// and constructs the configured nearest-neighbor index. Embedding, k-means,
// and row encoding all fan across cfg.Workers; the built index is
// bit-identical at every worker count (see quant.KMeansConfig).
func (e *EmbLookup) buildIndex() error {
	start := time.Now()
	var strs []string
	var rows []kg.EntityID
	for i := range e.graph.Entities {
		ent := &e.graph.Entities[i]
		strs = append(strs, ent.Label)
		rows = append(rows, ent.ID)
		if e.cfg.IndexAliases {
			for _, a := range ent.Aliases {
				strs = append(strs, a)
				rows = append(rows, ent.ID)
			}
		}
	}
	m := e.EmbeddingMatrix(strs, e.cfg.Workers)
	e.rows = rows
	pqCfg := e.cfg.PQ
	if pqCfg.Workers == 0 {
		pqCfg.Workers = e.cfg.Workers
	}
	switch {
	case e.cfg.IVF:
		ivfCfg := index.DefaultIVFConfig(m.Rows)
		if e.cfg.IVFNProbe > 0 {
			ivfCfg.NProbe = e.cfg.IVFNProbe
		}
		if e.cfg.Compress {
			ivfCfg.PQ = &pqCfg
		}
		ivfCfg.Workers = e.cfg.Workers
		// The PQ config's sampling knob governs the coarse k-means too, so
		// one setting bounds all training cost at million-entity scale.
		ivfCfg.TrainSample = pqCfg.TrainSample
		ivf, err := index.NewIVF(m, ivfCfg)
		if err != nil {
			return fmt.Errorf("core: building IVF index: %w", err)
		}
		if e.cfg.Rerank > 1 && e.cfg.Compress {
			// The embedding matrix is in memory anyway at build time; the
			// artifact writer persists it as the "vectors" section so a later
			// attach re-ranks against the mmap'd view instead.
			if err := ivf.SetRerank(e.cfg.Rerank, m); err != nil {
				return fmt.Errorf("core: enabling IVF re-rank: %w", err)
			}
		}
		e.ix = ivf
	case e.cfg.Compress && e.cfg.FastScan:
		fsIx, err := index.NewFastScan(m, quant.Config4(pqCfg))
		if err != nil {
			return fmt.Errorf("core: building fast-scan index: %w", err)
		}
		e.ix = fsIx
	case e.cfg.Compress:
		pqIx, err := index.NewPQ(m, pqCfg)
		if err != nil {
			return fmt.Errorf("core: building PQ index: %w", err)
		}
		e.ix = pqIx
	default:
		e.ix = index.NewFlat(m)
	}
	e.prov = IndexProvenance{Source: "rebuilt", Took: time.Since(start)}
	return nil
}

// RebuildIndex re-embeds and re-indexes with a modified compression
// setting, reusing the trained model (used by the EL vs EL-NC comparisons
// and the Figure 4/5 sweeps).
func (e *EmbLookup) RebuildIndex(compress bool) error {
	e.cfg.Compress = compress
	return e.buildIndex()
}

// WithCompression returns a sibling service sharing this model's trained
// weights but with its own index built at the given compression setting —
// the cheap way to hold the EL and EL-NC variants of Tables II/III
// simultaneously.
func (e *EmbLookup) WithCompression(compress bool) (*EmbLookup, error) {
	clone := *e
	clone.cfg.Compress = compress
	if err := clone.buildIndex(); err != nil {
		return nil, err
	}
	return &clone, nil
}

// WithAliasRows returns a sibling service sharing this model's trained
// weights whose index additionally embeds every alias as its own row — the
// accuracy-for-storage trade-off Section III-C describes.
func (e *EmbLookup) WithAliasRows() (*EmbLookup, error) {
	clone := *e
	clone.cfg.IndexAliases = true
	if err := clone.buildIndex(); err != nil {
		return nil, err
	}
	return &clone, nil
}

// WithPQ returns a sibling service whose index uses the given product
// quantizer configuration (the Figure 5 bytes-per-code sweep).
func (e *EmbLookup) WithPQ(pq quant.PQConfig) (*EmbLookup, error) {
	clone := *e
	clone.cfg.Compress = true
	clone.cfg.PQ = pq
	if err := clone.cfg.Validate(); err != nil {
		return nil, err
	}
	if err := clone.buildIndex(); err != nil {
		return nil, err
	}
	return &clone, nil
}

// WithFastScan returns a sibling service sharing this model's trained
// weights whose index is the 4-bit fast-scan variant of the current PQ
// configuration (DESIGN.md §11) — same bytes per code, block-interleaved
// layout, quantized-LUT scan with exact re-rank.
func (e *EmbLookup) WithFastScan() (*EmbLookup, error) {
	clone := *e
	clone.cfg.Compress = true
	clone.cfg.FastScan = true
	if err := clone.cfg.Validate(); err != nil {
		return nil, err
	}
	if err := clone.buildIndex(); err != nil {
		return nil, err
	}
	return &clone, nil
}

// IndexRows returns the entity behind each index row (alias rows map to
// their entity).
func (e *EmbLookup) IndexRows() []kg.EntityID { return e.rows }
