package experiments

import (
	"fmt"

	"emblookup/internal/core"
	"emblookup/internal/tasks"
)

// Ablations regenerates the design-choice studies DESIGN.md calls out
// beyond the paper's own tables: the two-model vs single-model
// architecture (the paper reports two models won but shows no numbers),
// offline-only vs the offline+online mining schedule, a triplet-loss
// margin sweep, and labels-only vs alias-rows indexing. Each variant
// reports CEA F-score on the clean and fully-corrupted workloads plus the
// index payload size.
func (env *Env) Ablations() *Report {
	r := &Report{ID: "Ablations", Title: "Design-choice ablations (CEA, ST-Wikidata)",
		Header: []string{"Variant", "F(no err)", "F(all err)", "IndexBytes"}}

	ceaCfg := tasks.DefaultCEAConfig()
	ceaCfg.Parallelism = 0
	evaluate := func(name string, m *core.EmbLookup) {
		clean := tasks.CEA(env.WikidataDS, m, tasks.TopCandidate, ceaCfg).F1()
		noisy := tasks.CEA(env.WikidataAllNoisy, m, tasks.TopCandidate, ceaCfg).F1()
		r.AddRow(name, f2(clean), f2(noisy), fmt.Sprint(m.Index().SizeBytes()))
	}

	train := func(mutate func(*core.Config)) (*core.EmbLookup, error) {
		cfg := env.Opts.TrainConfig
		cfg.Compress = false // isolate the modeling choice from quantization
		mutate(&cfg)
		return core.Train(env.WGraph, cfg)
	}

	// Baseline: the default two-model architecture.
	evaluate("default (two models)", env.WELNC)

	// Single-model: semantic path only through the combiner (the paper:
	// "using a single embedding model ... was less accurate").
	if m, err := train(func(c *core.Config) { c.SingleModel = true }); err == nil {
		evaluate("single model (no CNN)", m)
	} else {
		r.AddNote("single-model variant failed: %v", err)
	}

	// Offline-only schedule: all epochs on the full triplet set, no online
	// hard mining (the paper's second-half refinement removed).
	if m, err := train(func(c *core.Config) { c.Epochs = c.Epochs / 2 }); err == nil {
		evaluate("offline-only (half epochs)", m)
	} else {
		r.AddNote("offline-only variant failed: %v", err)
	}

	// Margin sweep.
	for _, margin := range []float32{0.2, 1.0, 3.0} {
		m, err := train(func(c *core.Config) { c.Margin = margin })
		if err != nil {
			r.AddNote("margin %.1f failed: %v", margin, err)
			continue
		}
		evaluate(fmt.Sprintf("margin %.1f", margin), m)
	}

	// Alternative loss function (future work, Section VI).
	if m, err := train(func(c *core.Config) { c.Loss = "contrastive" }); err == nil {
		evaluate("contrastive loss", m)
	} else {
		r.AddNote("contrastive variant failed: %v", err)
	}

	// Most-promising-triplet schedule (future work, Section VI): offline
	// epochs after the first train only on the top 25%% of triplets by
	// current loss.
	if m, err := train(func(c *core.Config) { c.TopLossFraction = 0.25 }); err == nil {
		evaluate("top-25% triplets", m)
	} else {
		r.AddNote("top-loss variant failed: %v", err)
	}

	// Alias rows in the index (Section III-C's storage/accuracy option).
	if withA, err := env.WELNC.WithAliasRows(); err == nil {
		evaluate("alias rows indexed", withA)
	} else {
		r.AddNote("alias-row variant failed: %v", err)
	}

	// IVF coarse quantizer (FAISS's "wide variety of indexing options"):
	// probe a handful of lists instead of scanning everything.
	if m, err := train(func(c *core.Config) { c.IVF = true }); err == nil {
		evaluate("IVF-flat index (nprobe default)", m)
	} else {
		r.AddNote("IVF variant failed: %v", err)
	}

	r.AddNote("all variants uncompressed (flat index) so the modeling choice is isolated from quantization")
	r.AddNote("offline-only halves the epochs because the default schedule spends its second half on online-mined hard triplets")
	return r
}
