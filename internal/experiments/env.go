package experiments

import (
	"fmt"
	"runtime"

	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/systems"
	"emblookup/internal/tabular"
)

// Options scales the experiment environment. The paper's datasets (109K
// tables over 90M-entity Wikidata) are far beyond a laptop-scale pure-Go
// reproduction; these options size everything down while keeping the
// relative proportions of Table I.
type Options struct {
	// Entities per synthetic knowledge graph.
	Entities int
	// Tables per benchmark dataset.
	WikidataTables, DBPediaTables, ToughTableCount int
	// TrainConfig configures EmbLookup training (architecture follows the
	// paper regardless; this mostly scales epochs/triplets).
	TrainConfig core.Config
	// AliasVariants is the number of alias-substituted dataset variants
	// averaged in Table VI (the paper uses 5).
	AliasVariants int
	// NoiseSeed drives the 10% error injection.
	NoiseSeed uint64
	// SimulatedGPUParallelism is the data-parallel width of the simulated
	// GPU for the "GPU" columns. Batched lookup genuinely parallelizes
	// across cores; when the host has fewer cores than this width, the
	// remaining factor is applied on a virtual clock (documented per
	// table). 0 disables the simulation (GPU = whatever the cores give).
	SimulatedGPUParallelism int
	// Logf receives progress lines.
	Logf func(format string, args ...any)
}

// gpuScale returns the virtual-clock divisor for GPU-mode measurements:
// the simulated device width not already realized by physical cores.
func (o Options) gpuScale() float64 {
	if o.SimulatedGPUParallelism <= 0 {
		return 1
	}
	cores := runtime.GOMAXPROCS(0)
	if cores >= o.SimulatedGPUParallelism {
		return 1
	}
	return float64(o.SimulatedGPUParallelism) / float64(cores)
}

// TestOptions is the tiny scale used by unit tests and the bench harness.
func TestOptions() Options {
	cfg := core.FastConfig()
	cfg.Epochs = 6
	cfg.TripletsPerEntity = 16
	cfg.NgramEpochs = 25
	return Options{
		Entities:                400,
		WikidataTables:          24,
		DBPediaTables:           12,
		ToughTableCount:         3,
		TrainConfig:             cfg,
		AliasVariants:           2,
		NoiseSeed:               99,
		SimulatedGPUParallelism: 8,
		Logf:                    func(string, ...any) {},
	}
}

// DefaultOptions is the laptop scale used by cmd/experiments.
func DefaultOptions() Options {
	cfg := core.FastConfig()
	return Options{
		Entities:                2000,
		WikidataTables:          80,
		DBPediaTables:           40,
		ToughTableCount:         6,
		TrainConfig:             cfg,
		AliasVariants:           5,
		NoiseSeed:               99,
		SimulatedGPUParallelism: 8,
		Logf:                    func(string, ...any) {},
	}
}

// Env holds everything the experiment drivers share: the two knowledge
// graphs, the three benchmark datasets (plus noisy variants), the trained
// EmbLookup models (compressed and not), and the five downstream systems.
type Env struct {
	Opts Options

	WGraph  *kg.Graph
	WSchema *kg.Schema
	DGraph  *kg.Graph
	DSchema *kg.Schema

	WikidataDS, DBPediaDS, ToughDS *tabular.Dataset
	WikidataNoisy, DBPediaNoisy    *tabular.Dataset
	// WikidataAllNoisy corrupts every entity cell — the stress workload
	// the embedding ablations (Tables VII/VIII) use for their error
	// column, where the paper's 10% corruption leaves too little signal at
	// reproduction scale.
	WikidataAllNoisy *tabular.Dataset

	// EL / ELNC are the compressed / uncompressed EmbLookup services per
	// graph (shared trained weights).
	WEL, WELNC *core.EmbLookup
	DEL, DELNC *core.EmbLookup

	// Annotation systems per graph.
	WBBW, WMantis, WJenTab *systems.System
	DBBW, DMantis, DJenTab *systems.System
	WDoSeR                 *systems.DoSeR
	DDoSeR                 *systems.DoSeR
	WKatara                *systems.Katara
	DKatara                *systems.Katara
}

// NewEnv generates the graphs and datasets and trains the models. This is
// the expensive, one-time setup every driver shares.
func NewEnv(o Options) (*Env, error) {
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	env := &Env{Opts: o}

	o.Logf("experiments: generating knowledge graphs (%d entities each)", o.Entities)
	env.WGraph, env.WSchema = kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, o.Entities))
	env.DGraph, env.DSchema = kg.Generate(kg.DefaultGeneratorConfig(kg.DBPediaProfile, o.Entities))

	env.WikidataDS = tabular.GenerateDataset(env.WGraph, env.WSchema, tabular.DefaultDatasetConfig(tabular.STWikidata, o.WikidataTables))
	env.DBPediaDS = tabular.GenerateDataset(env.DGraph, env.DSchema, tabular.DefaultDatasetConfig(tabular.STDBPedia, o.DBPediaTables))
	env.ToughDS = tabular.GenerateDataset(env.WGraph, env.WSchema, tabular.DefaultDatasetConfig(tabular.ToughTables, o.ToughTableCount))
	// Tough Tables ships with heavy noise baked in.
	env.ToughDS = (&tabular.Injector{Fraction: 0.30, Seed: o.NoiseSeed + 1}).Apply(env.ToughDS)
	env.ToughDS.Name = "ToughTables"

	inj := tabular.NewInjector(o.NoiseSeed)
	env.WikidataNoisy = inj.Apply(env.WikidataDS)
	env.DBPediaNoisy = inj.Apply(env.DBPediaDS)
	allNoise := tabular.NewInjector(o.NoiseSeed + 2)
	allNoise.Fraction = 1
	env.WikidataAllNoisy = allNoise.Apply(env.WikidataDS)

	o.Logf("experiments: training EmbLookup on %s", env.WGraph.Name)
	var err error
	env.WEL, err = core.Train(env.WGraph, o.TrainConfig)
	if err != nil {
		return nil, fmt.Errorf("training wikidata model: %w", err)
	}
	env.WELNC, err = env.WEL.WithCompression(false)
	if err != nil {
		return nil, err
	}
	o.Logf("experiments: training EmbLookup on %s", env.DGraph.Name)
	env.DEL, err = core.Train(env.DGraph, o.TrainConfig)
	if err != nil {
		return nil, fmt.Errorf("training dbpedia model: %w", err)
	}
	env.DELNC, err = env.DEL.WithCompression(false)
	if err != nil {
		return nil, err
	}

	env.WBBW = systems.NewBBW(env.WGraph)
	env.WMantis = systems.NewMantisTable(env.WGraph)
	env.WJenTab = systems.NewJenTab(env.WGraph)
	env.DBBW = systems.NewBBW(env.DGraph)
	env.DMantis = systems.NewMantisTable(env.DGraph)
	env.DJenTab = systems.NewJenTab(env.DGraph)
	env.WDoSeR = systems.NewDoSeR(env.WGraph)
	env.DDoSeR = systems.NewDoSeR(env.DGraph)
	env.WKatara = systems.NewKatara(env.WGraph)
	env.DKatara = systems.NewKatara(env.DGraph)
	return env, nil
}

// Run dispatches an experiment by id ("table1".."table8", "figure3"..
// "figure5").
func (env *Env) Run(id string) (*Report, error) {
	switch id {
	case "table1":
		return env.TableI(), nil
	case "table2":
		return env.TableII(), nil
	case "table3":
		return env.TableIII(), nil
	case "table4":
		return env.TableIV(), nil
	case "table5":
		return env.TableV(), nil
	case "table6":
		return env.TableVI(), nil
	case "table7":
		return env.TableVII(), nil
	case "table8":
		return env.TableVIII(), nil
	case "figure3":
		return env.Figure3(), nil
	case "figure4":
		return env.Figure4(), nil
	case "figure5":
		return env.Figure5(), nil
	case "ablations":
		return env.Ablations(), nil
	case "kgembed":
		return env.KGEmbedDemo(), nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, AllIDs())
}

// AllIDs lists every regenerable table and figure.
func AllIDs() []string {
	return []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "figure3", "figure4", "figure5", "ablations", "kgembed"}
}
