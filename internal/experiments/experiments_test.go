package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The suite shares one environment: building it (graph generation + two
// model trainings) dominates the cost of every driver.
var (
	envOnce sync.Once
	testEnv *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		o := TestOptions()
		o.Entities = 300
		o.WikidataTables = 16
		o.DBPediaTables = 8
		o.ToughTableCount = 2
		o.TrainConfig.Epochs = 4
		o.AliasVariants = 1
		testEnv, envErr = NewEnv(o)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return testEnv
}

// cell parses a float cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q", s)
	}
	return v
}

func TestTableIShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.TableI()
	if len(r.Rows) != 4 {
		t.Fatalf("Table I has %d rows", len(r.Rows))
	}
	wikiRows := cell(t, r.Rows[1][1])
	dbpRows := cell(t, r.Rows[1][2])
	toughRows := cell(t, r.Rows[1][3])
	if !(wikiRows < dbpRows && dbpRows < toughRows) {
		t.Fatalf("row-size ordering broken: %v %v %v", wikiRows, dbpRows, toughRows)
	}
}

func TestTableIIShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.TableII()
	if len(r.Rows) != 8 {
		t.Fatalf("Table II has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		system := row[1]
		spCPU := cell(t, row[2])
		fOrig := cell(t, row[6])
		fEL := cell(t, row[7])
		// Remote-backed systems must show the order-of-magnitude speedup
		// the paper reports. Skipped under -race: the detector slows the
		// in-process lookup ~15× while the simulated remote latency stays
		// wall-clock, so the ratio is only meaningful in normal builds.
		if !raceEnabled && (system == "bbw" || system == "JenTab") && spCPU < 50 {
			t.Errorf("%s speedup %v, want >> 1 (remote latency)", system, spCPU)
		}
		// Accuracy must be close to the original (paper: within 0.03; the
		// scaled-down training budget gets a looser bound).
		if fOrig-fEL > 0.25 {
			t.Errorf("%s/%s EL accuracy gap too large: %.2f vs %.2f", row[0], system, fEL, fOrig)
		}
	}
}

func TestTableIVShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.TableIV()
	if len(r.Rows) != 8 {
		t.Fatalf("Table IV has %d rows", len(r.Rows))
	}
	// EmbLookup must stay in the same ballpark as the originals under
	// noise (the paper shows it winning; our baselines are stronger, see
	// EXPERIMENTS.md).
	for _, row := range r.Rows {
		if cell(t, row[2])-cell(t, row[3]) > 0.3 {
			t.Errorf("%s/%s: EL collapsed under noise: %s vs %s", row[0], row[1], row[3], row[2])
		}
	}
}

func TestTableVShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.TableV()
	if len(r.Rows) != 9 {
		t.Fatalf("Table V has %d rows", len(r.Rows))
	}
	byName := map[string][]string{}
	for _, row := range r.Rows {
		byName[row[0]] = row
	}
	// Remote services must be orders of magnitude slower than EmbLookup.
	// Skipped under -race (see TestTableIIShape): the wall-clock remote
	// latency doesn't slow with the detector, so the ratio collapses.
	for _, name := range []string{"wikidata-api", "searx-api"} {
		if sp := cell(t, byName[name][1]); !raceEnabled && sp < 50 {
			t.Errorf("%s speedup = %v, want >> 1", name, sp)
		}
	}
	// FuzzyWuzzy scans are far slower than EmbLookup.
	if sp := cell(t, byName["fuzzywuzzy"][1]); sp < 5 {
		t.Errorf("fuzzywuzzy speedup = %v, want > 5", sp)
	}
}

func TestTableVIShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.TableVI()
	if len(r.Rows) != 8 {
		t.Fatalf("Table VI has %d rows", len(r.Rows))
	}
	// The alias-row variant must dominate the originals in most rows —
	// the semantic-lookup capability the paper demonstrates.
	wins := 0
	for _, row := range r.Rows {
		if cell(t, row[4]) >= cell(t, row[2])-0.05 {
			wins++
		}
	}
	if wins < 5 {
		t.Errorf("EL+A beat originals in only %d/8 rows", wins)
	}
}

func TestTableVIIShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.TableVII()
	if len(r.Rows) != 5 {
		t.Fatalf("Table VII has %d rows", len(r.Rows))
	}
	errF := map[string]float64{}
	for _, row := range r.Rows {
		name := row[0]
		if strings.HasPrefix(name, "emblookup") {
			name = "emblookup"
		}
		errF[name] = cell(t, row[2])
	}
	// word2vec's OOV collapse is the defining result.
	if errF["word2vec"] >= errF["emblookup"] {
		t.Errorf("word2vec (%.2f) should collapse below emblookup (%.2f) under noise",
			errF["word2vec"], errF["emblookup"])
	}
	if errF["word2vec"] >= errF["fasttext"] {
		t.Errorf("word2vec should be far below fasttext under noise")
	}
}

func TestFigure4Shape(t *testing.T) {
	env := sharedEnv(t)
	r := env.Figure4()
	if len(r.Rows) < 5 {
		t.Fatalf("Figure 4 has %d points", len(r.Rows))
	}
	// Recall must recover for large k (the paper's core observation).
	small := cell(t, r.Rows[1][1])             // k=2
	large := cell(t, r.Rows[len(r.Rows)-1][1]) // k=100
	if large < small-0.05 {
		t.Errorf("PQ recall did not recover with k: %.2f@small vs %.2f@large", small, large)
	}
}

func TestFigure5Shape(t *testing.T) {
	env := sharedEnv(t)
	r := env.Figure5()
	if len(r.Rows) < 3 {
		t.Fatalf("Figure 5 has %d points", len(r.Rows))
	}
	// At the smallest byte budget PQ must beat PCA on at least one task —
	// the paper's conclusion that quantization preserves accuracy better
	// than dimensionality reduction at equal storage.
	first := r.Rows[0]
	ceaPQ, ceaPCA := cell(t, first[1]), cell(t, first[2])
	ctaPQ, ctaPCA := cell(t, first[3]), cell(t, first[4])
	if ceaPQ < ceaPCA-0.02 && ctaPQ < ctaPCA-0.02 {
		t.Errorf("PCA beat PQ at the smallest budget on both tasks: CEA %.2f/%.2f CTA %.2f/%.2f",
			ceaPQ, ceaPCA, ctaPQ, ctaPCA)
	}
}

func TestRunDispatch(t *testing.T) {
	env := sharedEnv(t)
	if _, err := env.Run("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Run("nonsense"); err == nil {
		t.Fatal("unknown id should error")
	}
	ids := AllIDs()
	if len(ids) != 13 {
		t.Fatalf("AllIDs = %v", ids)
	}
}

func TestAblationsShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.Ablations()
	if len(r.Rows) < 6 {
		t.Fatalf("Ablations has only %d rows", len(r.Rows))
	}
	byName := map[string][]string{}
	for _, row := range r.Rows {
		byName[row[0]] = row
	}
	// Alias rows must enlarge the index.
	base := cell(t, byName["default (two models)"][3])
	withA := cell(t, byName["alias rows indexed"][3])
	if withA <= base {
		t.Errorf("alias rows should enlarge the index: %v vs %v", withA, base)
	}
}

func TestKGEmbedDemoShape(t *testing.T) {
	env := sharedEnv(t)
	r := env.KGEmbedDemo()
	if len(r.Rows) != 2 {
		t.Fatalf("KGEmbedDemo has %d rows", len(r.Rows))
	}
	transeAlias := cell(t, r.Rows[0][3])
	elAlias := cell(t, r.Rows[1][3])
	// The Section I argument: the KG-embedding pipeline collapses on
	// aliases while EmbLookup resolves many of them.
	if transeAlias >= elAlias {
		t.Errorf("TransE alias F (%.2f) should be far below EmbLookup (%.2f)", transeAlias, elAlias)
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddNote("note %d", 7)
	out := r.String()
	for _, want := range []string{"X — demo", "a", "1", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
