package experiments

import (
	"fmt"
	"time"

	"emblookup/internal/altembed"
	"emblookup/internal/core"
	"emblookup/internal/index"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/mathx"
	"emblookup/internal/quant"
	"emblookup/internal/triplet"
)

// altServices builds the Table VII contestants: EmbLookup plus the four
// alternative embedding generators over the Wikidata graph.
func (env *Env) altServices() []lookup.Service {
	seed := env.Opts.TrainConfig.Seed
	lstmCfg := altembed.DefaultLSTMConfig()
	lstmCfg.Epochs = env.Opts.TrainConfig.Epochs / 2
	if lstmCfg.Epochs < 1 {
		lstmCfg.Epochs = 1
	}
	lstmCfg.TripletsPerEntity = env.Opts.TrainConfig.TripletsPerEntity / 2
	if lstmCfg.TripletsPerEntity < 4 {
		lstmCfg.TripletsPerEntity = 4
	}
	return []lookup.Service{
		env.WELNC, // uncompressed: Table VII compares embeddings, not compression
		altembed.NewService(env.WGraph, altembed.TrainWord2Vec(env.WGraph, altembed.DefaultWord2VecConfig())),
		altembed.NewService(env.WGraph, altembed.TrainRawFastText(env.WGraph, 64, env.Opts.TrainConfig.NgramEpochs, seed+2)),
		altembed.NewService(env.WGraph, altembed.TrainBERTProxy(env.WGraph, 64, seed+3)),
		altembed.NewService(env.WGraph, altembed.TrainLSTM(env.WGraph, lstmCfg)),
	}
}

// Figure3 sweeps the triplet budget per entity and reports the F-score of
// all four tasks plus training time, reproducing the paper's Figure 3
// (accuracy creeps up with more triplets; training time grows linearly).
func (env *Env) Figure3() *Report {
	r := &Report{ID: "Figure 3", Title: "Impact of the number of triplets per entity",
		Header: []string{"Triplets/entity", "CEA-F", "CTA-F", "EA-F", "DR-F", "TrainTime"}}

	ref := env.Opts.TrainConfig.TripletsPerEntity
	budgets := []int{ref / 4, ref / 2, ref, ref * 2}
	for _, b := range budgets {
		if b < 2 {
			continue
		}
		cfg := env.Opts.TrainConfig
		cfg.TripletsPerEntity = b
		mCfg := triplet.DefaultMinerConfig()
		mCfg.PerEntity = b
		ts := triplet.Mine(env.WGraph, mCfg)
		start := time.Now()
		model, err := core.Train(env.WGraph, cfg, core.WithTriplets(ts))
		if err != nil {
			r.AddNote("budget %d failed: %v", b, err)
			continue
		}
		trainTime := time.Since(start)

		ceaRes := env.WMantis.RunCEA(env.WikidataDS, model, 0)
		ctaRes := env.WMantis.RunCTA(env.WikidataDS, model, 0)
		eaRes := env.WDoSeR.Run(env.WikidataDS, model, 0)
		drRes := env.WKatara.Run(env.WikidataDS, model, 0.10, env.Opts.NoiseSeed+7, 0)
		r.AddRow(fmt.Sprint(b),
			f2(ceaRes.F1()), f2(ctaRes.F1()), f2(eaRes.F1()), f2(drRes.F1()),
			trainTime.Round(10*time.Millisecond).String())
	}
	r.AddNote("paper reference budget is 100 triplets/entity; this run scales the sweep around %d (see EXPERIMENTS.md)", ref)
	return r
}

// Figure4 measures the recall of the compressed index against the
// uncompressed one for growing k — low at small k, recovering as k grows,
// the paper's Figure 4 shape.
func (env *Env) Figure4() *Report {
	r := &Report{ID: "Figure 4", Title: "Recall of PQ-compressed lookup vs uncompressed (ground truth)",
		Header: []string{"k", "Recall"}}

	// Query workload: the CEA cells of the clean dataset.
	var queries []string
	for _, tb := range env.WikidataDS.Tables {
		for _, row := range tb.Rows {
			for _, cell := range row {
				if cell.IsEntity() {
					queries = append(queries, cell.Text)
				}
			}
		}
	}
	if len(queries) > 400 {
		queries = queries[:400]
	}
	for _, k := range []int{1, 2, 5, 10, 20, 50, 100} {
		var hit, total int
		for _, q := range queries {
			truth := map[kg.EntityID]bool{}
			for _, c := range env.WELNC.Lookup(q, k) {
				truth[c.ID] = true
			}
			for _, c := range env.WEL.Lookup(q, k) {
				if truth[c.ID] {
					hit++
				}
				total++
			}
		}
		if total == 0 {
			continue
		}
		r.AddRow(fmt.Sprint(k), f2(float64(hit)/float64(total)))
	}
	r.AddNote("recall = overlap between compressed and uncompressed top-k, averaged over %d CEA queries", len(queries))
	return r
}

// pcaService compresses the trained embeddings with PCA instead of PQ —
// the Figure 5 alternative. Both the index rows and the query are
// projected onto the principal components.
type pcaService struct {
	name  string
	model *core.EmbLookup
	pca   *quant.PCA
	ix    *index.Flat
	rows  []kg.EntityID
}

func newPCAService(model *core.EmbLookup, g *kg.Graph, components int) *pcaService {
	labels := make([]string, len(g.Entities))
	rows := make([]kg.EntityID, len(g.Entities))
	for i := range g.Entities {
		labels[i] = g.Entities[i].Label
		rows[i] = g.Entities[i].ID
	}
	full := model.EmbeddingMatrix(labels, 0)
	pca := quant.TrainPCA(full, components)
	proj := mathx.NewMatrix(full.Rows, components)
	for i := 0; i < full.Rows; i++ {
		copy(proj.Row(i), pca.Project(full.Row(i)))
	}
	return &pcaService{
		name:  fmt.Sprintf("emblookup-pca%d", components),
		model: model, pca: pca, ix: index.NewFlat(proj), rows: rows,
	}
}

// Name implements lookup.Service.
func (s *pcaService) Name() string { return s.name }

// Lookup projects the query embedding and searches the reduced space.
func (s *pcaService) Lookup(q string, k int) []lookup.Candidate {
	res := s.ix.Search(s.pca.Project(s.model.Embed(q)), k)
	out := make([]lookup.Candidate, len(res))
	for i, h := range res {
		out[i] = lookup.Candidate{ID: s.rows[h.ID], Score: -float64(h.Dist)}
	}
	return out
}

// Figure5 compares PQ against PCA at equal bytes-per-entity budgets on the
// CEA and CTA tasks (bbw pipeline, as in the paper).
func (env *Env) Figure5() *Report {
	r := &Report{ID: "Figure 5", Title: "Compression schemes at equal storage: PQ vs PCA (bbw)",
		Header: []string{"Bytes/entity", "CEA-PQ", "CEA-PCA", "CTA-PQ", "CTA-PCA"}}

	for _, bytes := range []int{8, 16, 32, 64} {
		pqCfg := env.Opts.TrainConfig.PQ
		pqCfg.M = bytes // one byte per sub-quantizer
		pqModel, err := env.WEL.WithPQ(pqCfg)
		if err != nil {
			r.AddNote("PQ %d bytes failed: %v", bytes, err)
			continue
		}
		components := bytes / 4 // PCA stores float32 per component
		if components < 1 {
			components = 1
		}
		pcaModel := newPCAService(env.WELNC, env.WGraph, components)

		ceaPQ := env.WBBW.RunCEA(env.WikidataAllNoisy, pqModel, 0).F1()
		ceaPCA := env.WBBW.RunCEA(env.WikidataAllNoisy, pcaModel, 0).F1()
		ctaPQ := env.WBBW.RunCTA(env.WikidataAllNoisy, pqModel, 0).F1()
		ctaPCA := env.WBBW.RunCTA(env.WikidataAllNoisy, pcaModel, 0).F1()
		r.AddRow(fmt.Sprint(bytes), f2(ceaPQ), f2(ceaPCA), f2(ctaPQ), f2(ctaPCA))
	}
	r.AddNote("PQ: bytes = number of 1-byte sub-quantizers; PCA: bytes = 4·components; 64-dim uncompressed = 256 bytes")
	r.AddNote("measured on the fully-corrupted workload where compression quality matters most")
	return r
}
