package experiments

import (
	"emblookup/internal/baselines"
	"emblookup/internal/kg"
	"emblookup/internal/kgembed"
	"emblookup/internal/lookup"
	"emblookup/internal/metrics"
	"emblookup/internal/tabular"
)

// kgEmbedService is the best lookup one can build from a knowledge-graph
// embedding model alone: resolve the query string to an entity id (KG
// embeddings have no string input, so this step needs a symbolic index —
// here exact match over labels), then expand to the entities nearest in
// embedding space. Section I of the paper argues this two-step design is
// why KG embeddings "are not directly applicable" to lookup; this service
// makes the argument measurable.
type kgEmbedService struct {
	resolver *baselines.Exact
	model    *kgembed.Model
	graph    *kg.Graph
}

// Name implements lookup.Service.
func (s *kgEmbedService) Name() string { return "kg-embedding (TransE)" }

// Lookup resolves then expands.
func (s *kgEmbedService) Lookup(q string, k int) []lookup.Candidate {
	seed := s.resolver.Lookup(q, 1)
	if len(seed) == 0 {
		return nil // the string never resolved — the failure mode under noise
	}
	anchor := seed[0].ID
	out := []lookup.Candidate{{ID: anchor, Score: 0}}
	type scored struct {
		id  kg.EntityID
		sim float32
	}
	best := make([]scored, 0, k)
	for i := range s.graph.Entities {
		id := kg.EntityID(i)
		if id == anchor {
			continue
		}
		sim := s.model.Similarity(anchor, id)
		pos := len(best)
		for pos > 0 && best[pos-1].sim < sim {
			pos--
		}
		if pos < k-1 {
			if len(best) < k-1 {
				best = append(best, scored{})
			}
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{id: id, sim: sim}
		}
	}
	for _, b := range best {
		out = append(out, lookup.Candidate{ID: b.id, Score: float64(b.sim)})
	}
	return lookup.DedupeTopK(out, k)
}

// KGEmbedDemo quantifies the paper's Section I argument: a TransE model
// over the same graph, wrapped into the only lookup it supports (symbolic
// resolution + neighborhood expansion), collapses on noisy and alias
// queries while EmbLookup does not — even though TransE is good at its own
// job (link prediction hit@20 is reported alongside).
func (env *Env) KGEmbedDemo() *Report {
	r := &Report{ID: "KG-Embed", Title: "Why KG embeddings cannot serve lookup (Section I)",
		Header: []string{"Service", "F(clean)", "F(10% err)", "F(aliases)"}}

	model, err := kgembed.Train(env.WGraph, kgembed.DefaultConfig())
	if err != nil {
		r.AddNote("TransE training failed: %v", err)
		return r
	}
	svc := &kgEmbedService{
		resolver: baselines.NewExact(lookup.CorpusFromGraph(env.WGraph, false)),
		model:    model,
		graph:    env.WGraph,
	}

	measure := func(s lookup.Service, ds *tabular.Dataset) float64 {
		var conf metrics.Confusion
		for _, tb := range ds.Tables {
			for _, row := range tb.Rows {
				for _, cellv := range row {
					if !cellv.IsEntity() {
						continue
					}
					hit := false
					for _, c := range s.Lookup(cellv.Text, 10) {
						if c.ID == cellv.Truth {
							hit = true
							break
						}
					}
					conf.Record(true, hit)
				}
			}
		}
		return conf.F1()
	}

	alias := tabular.SubstituteAliases(env.WikidataDS, env.Opts.NoiseSeed+400)
	for _, s := range []lookup.Service{svc, env.WEL} {
		r.AddRow(s.Name(),
			f2(measure(s, env.WikidataDS)),
			f2(measure(s, env.WikidataNoisy)),
			f2(measure(s, alias)))
	}

	// TransE is competent at its own task: report link-prediction hit@20.
	hits, total := 0, 0
	for _, f := range env.WGraph.Facts {
		if f.Object == kg.NoEntity {
			continue
		}
		total++
		for _, cand := range model.PredictTail(f.Subject, f.Prop, 20) {
			if cand == f.Object {
				hits++
				break
			}
		}
		if total >= 300 {
			break
		}
	}
	if total > 0 {
		r.AddNote("the same TransE model scores hit@20 = %.2f on link prediction — the task it is built for", float64(hits)/float64(total))
	}
	r.AddNote("success = ground-truth entity in top-10; the TransE pipeline must first resolve the string symbolically (exact match), which is what collapses under noise and aliases")
	return r
}
