//go:build race

package experiments

// raceEnabled reports whether the binary was built with the race
// detector. Wall-clock speedup assertions are gated on it: the detector
// slows in-process code by an order of magnitude while the simulated
// remote latencies stay wall-clock, so speedup ratios measured under
// -race say nothing about the unsanitized build.
const raceEnabled = true
