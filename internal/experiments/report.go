// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) over the synthetic substrate: Tables I–VIII and
// Figures 3–5. Each driver prints the same rows/series the paper reports;
// EXPERIMENTS.md records the paper-vs-measured comparison. Absolute numbers
// differ (simulated substrate, laptop scale) but the drivers are written so
// the qualitative shape — who wins, by roughly what factor, where the
// crossovers fall — is directly checkable.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is one rendered experiment: a titled text table plus free-form
// notes (assumptions, substitutions, scale).
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends one note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (r *Report) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// f2 formats an F-score the way the paper prints them.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
