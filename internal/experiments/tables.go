package experiments

import (
	"fmt"
	"time"

	"emblookup/internal/baselines"
	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/metrics"
	"emblookup/internal/remote"
	"emblookup/internal/systems"
	"emblookup/internal/tabular"
	"emblookup/internal/tasks"
)

// TableI reports the statistics of the generated benchmark datasets, in
// the shape of the paper's Table I.
func (env *Env) TableI() *Report {
	r := &Report{ID: "Table I", Title: "Statistics of the tabular datasets",
		Header: []string{"", "ST-Wikidata", "ST-DBPedia", "ToughTables"}}
	w := env.WikidataDS.ComputeStats()
	d := env.DBPediaDS.ComputeStats()
	tt := env.ToughDS.ComputeStats()
	r.AddRow("#Tables", fmt.Sprint(w.Tables), fmt.Sprint(d.Tables), fmt.Sprint(tt.Tables))
	r.AddRow("Avg #Rows", fmt.Sprintf("%.1f", w.AvgRows), fmt.Sprintf("%.1f", d.AvgRows), fmt.Sprintf("%.1f", tt.AvgRows))
	r.AddRow("Avg #Cols", fmt.Sprintf("%.1f", w.AvgCols), fmt.Sprintf("%.1f", d.AvgCols), fmt.Sprintf("%.1f", tt.AvgCols))
	r.AddRow("#Cells to annotate", fmt.Sprint(w.CellsToLabel), fmt.Sprint(d.CellsToLabel), fmt.Sprint(tt.CellsToLabel))
	r.AddNote("paper scale: 109K/14K/180 tables over full Wikidata/DBPedia; this run is scaled to %d entities (see EXPERIMENTS.md)", env.Opts.Entities)
	return r
}

// taskRun abstracts one (system, task) row: it runs the task with a given
// lookup service and parallelism and reports F-score and instrumented
// lookup time.
type taskRun struct {
	task, system string
	run          func(svc lookup.Service, parallelism int) (float64, time.Duration)
}

// systemRows builds the 8 rows of Tables II/III/IV/VI for one graph's
// dataset.
func (env *Env) systemRows(ds *tabular.Dataset, bbw, mantis, jentab *systems.System, doser *systems.DoSeR, katara *systems.Katara) []taskRun {
	cea := func(sys *systems.System) func(lookup.Service, int) (float64, time.Duration) {
		return func(svc lookup.Service, par int) (float64, time.Duration) {
			res := sys.RunCEA(ds, svc, par)
			return res.F1(), res.LookupTime
		}
	}
	cta := func(sys *systems.System) func(lookup.Service, int) (float64, time.Duration) {
		return func(svc lookup.Service, par int) (float64, time.Duration) {
			res := sys.RunCTA(ds, svc, par)
			return res.F1(), res.LookupTime
		}
	}
	return []taskRun{
		{"CEA", "bbw", cea(bbw)},
		{"CEA", "MantisTable", cea(mantis)},
		{"CEA", "JenTab", cea(jentab)},
		{"CTA", "bbw", cta(bbw)},
		{"CTA", "MantisTable", cta(mantis)},
		{"CTA", "JenTab", cta(jentab)},
		{"EA", "DoSeR", func(svc lookup.Service, par int) (float64, time.Duration) {
			res := doser.Run(ds, svc, par)
			return res.F1(), res.LookupTime
		}},
		{"DR", "Katara", func(svc lookup.Service, par int) (float64, time.Duration) {
			res := katara.Run(ds, svc, 0.10, env.Opts.NoiseSeed+7, par)
			return res.F1(), res.LookupTime
		}},
	}
}

func (env *Env) wikidataRows(ds *tabular.Dataset) []taskRun {
	return env.systemRows(ds, env.WBBW, env.WMantis, env.WJenTab, env.WDoSeR, env.WKatara)
}

func (env *Env) dbpediaRows(ds *tabular.Dataset) []taskRun {
	return env.systemRows(ds, env.DBBW, env.DMantis, env.DJenTab, env.DDoSeR, env.DKatara)
}

// speedupTable is the engine of Tables II and III: for each system×task it
// measures the original lookup service and both EmbLookup variants in
// sequential ("CPU") and all-core-batch ("GPU", see DESIGN.md) modes.
func (env *Env) speedupTable(id, title string, rows []taskRun,
	originals []lookup.Service, el, elnc *core.EmbLookup) *Report {

	r := &Report{ID: id, Title: title, Header: []string{
		"Task", "System",
		"SpCPU-EL", "SpCPU-ELNC", "SpGPU-EL", "SpGPU-ELNC",
		"F-Orig", "F-EL", "F-ELNC"}}
	scale := env.Opts.gpuScale()
	for i, row := range rows {
		fOrig, tOrig := row.run(originals[i], 1)
		fEL, tELCPU := row.run(el, 1)
		_, tELGPU := row.run(el, 0)
		fELNC, tELNCCPU := row.run(elnc, 1)
		_, tELNCGPU := row.run(elnc, 0)
		tELGPU = time.Duration(float64(tELGPU) / scale)
		tELNCGPU = time.Duration(float64(tELNCGPU) / scale)
		r.AddRow(row.task, row.system,
			metrics.FormatSpeedup(metrics.Speedup(tOrig, tELCPU)),
			metrics.FormatSpeedup(metrics.Speedup(tOrig, tELNCCPU)),
			metrics.FormatSpeedup(metrics.Speedup(tOrig, tELGPU)),
			metrics.FormatSpeedup(metrics.Speedup(tOrig, tELNCGPU)),
			f2(fOrig), f2(fEL), f2(fELNC))
	}
	r.AddNote("GPU columns = batched lookup across cores, scaled by the simulated %d-way device width (factor %.0f on this host; DESIGN.md §1)",
		env.Opts.SimulatedGPUParallelism, scale)
	r.AddNote("remote originals (bbw/JenTab stages) charge simulated network latency on a virtual clock")
	return r
}

func (env *Env) wikidataOriginals() []lookup.Service {
	return []lookup.Service{
		env.WBBW.Original, env.WMantis.Original, env.WJenTab.Original,
		env.WBBW.Original, env.WMantis.Original, env.WJenTab.Original,
		env.WDoSeR.Original, env.WKatara.Original,
	}
}

func (env *Env) dbpediaOriginals() []lookup.Service {
	return []lookup.Service{
		env.DBBW.Original, env.DMantis.Original, env.DJenTab.Original,
		env.DBBW.Original, env.DMantis.Original, env.DJenTab.Original,
		env.DDoSeR.Original, env.DKatara.Original,
	}
}

// TableII measures speedup and accuracy on the clean ST-Wikidata dataset.
func (env *Env) TableII() *Report {
	return env.speedupTable("Table II", "EmbLookup accelerating lookups, ST-Wikidata (no error)",
		env.wikidataRows(env.WikidataDS), env.wikidataOriginals(), env.WEL, env.WELNC)
}

// TableIII measures speedup and accuracy on the clean ST-DBPedia dataset.
func (env *Env) TableIII() *Report {
	return env.speedupTable("Table III", "EmbLookup accelerating lookups, ST-DBPedia (no error)",
		env.dbpediaRows(env.DBPediaDS), env.dbpediaOriginals(), env.DEL, env.DELNC)
}

// TableIV compares F-scores under noise: the 10%-corrupted variants of
// ST-Wikidata and ST-DBPedia plus the inherently noisy Tough Tables.
func (env *Env) TableIV() *Report {
	r := &Report{ID: "Table IV", Title: "F-scores on noisy tabular datasets (original lookup vs EmbLookup)",
		Header: []string{"Task", "System",
			"Wiki-Orig", "Wiki-EL", "DBP-Orig", "DBP-EL", "Tough-Orig", "Tough-EL"}}

	wRows := env.wikidataRows(env.WikidataNoisy)
	dRows := env.dbpediaRows(env.DBPediaNoisy)
	tRows := env.wikidataRows(env.ToughDS)
	wOrig := env.wikidataOriginals()
	dOrig := env.dbpediaOriginals()
	for i := range wRows {
		fwo, _ := wRows[i].run(wOrig[i], 1)
		fwe, _ := wRows[i].run(env.WEL, 0)
		fdo, _ := dRows[i].run(dOrig[i], 1)
		fde, _ := dRows[i].run(env.DEL, 0)
		fto, _ := tRows[i].run(wOrig[i], 1)
		fte, _ := tRows[i].run(env.WEL, 0)
		r.AddRow(wRows[i].task, wRows[i].system, f2(fwo), f2(fwe), f2(fdo), f2(fde), f2(fto), f2(fte))
	}
	r.AddNote("10%% of entity cells corrupted (drop/insert/transpose letters, token swap, abbreviation); ToughTables is 30%% corrupted + ambiguity-heavy")
	return r
}

// TableV is the head-to-head comparison against the eight lookup services
// on the CEA query workload (top-10 retrieval).
func (env *Env) TableV() *Report {
	r := &Report{ID: "Table V", Title: "EmbLookup vs popular lookup services (ST-Wikidata, CEA top-10)",
		Header: []string{"Approach", "SpCPU", "SpGPU", "F(no err)", "F(err)"}}

	// Query workloads: every entity cell of the clean and noisy datasets.
	var clean, noisy []string
	var truths []kg.EntityID
	for ti, tb := range env.WikidataDS.Tables {
		for ri, row := range tb.Rows {
			for ci, cell := range row {
				if !cell.IsEntity() {
					continue
				}
				clean = append(clean, cell.Text)
				noisy = append(noisy, env.WikidataNoisy.Tables[ti].Rows[ri][ci].Text)
				truths = append(truths, cell.Truth)
			}
		}
	}
	const k = 10
	success := func(svc lookup.Service, queries []string, par int) (float64, time.Duration) {
		if vc, ok := svc.(lookup.VirtualClock); ok {
			vc.ResetVirtual()
		}
		start := time.Now()
		res := lookup.Bulk(svc, queries, k, par)
		elapsed := lookup.TotalDuration(svc, time.Since(start))
		var conf metrics.Confusion
		for i, cands := range res {
			hit := false
			for _, c := range cands {
				if c.ID == truths[i] {
					hit = true
					break
				}
			}
			conf.Record(len(cands) > 0, hit)
		}
		return conf.F1(), elapsed
	}

	labels := lookup.CorpusFromGraph(env.WGraph, false)
	full := lookup.CorpusFromGraph(env.WGraph, true)
	// The three syntactic operations run inside the ElasticSearch engine,
	// as in the paper ("optimized implementations of these operations in
	// Elastic Search").
	services := []lookup.Service{
		baselines.NewFuzzyWuzzy(labels),
		baselines.NewElastic(labels),
		baselines.NewLSH(labels),
		baselines.NewElasticExact(labels),
		baselines.NewElasticQGram(labels),
		baselines.NewElasticLevenshtein(labels),
		remote.New("wikidata-api", baselines.NewExact(full), remote.WikidataAPIConfig()),
		remote.New("searx-api", baselines.NewFuzzyWuzzy(full), remote.SearXConfig()),
	}

	fELClean, tELCPU := success(env.WEL, clean, 1)
	fELErr, _ := success(env.WEL, noisy, 1)
	_, tELGPU := success(env.WEL, clean, 0)
	tELGPU = time.Duration(float64(tELGPU) / env.Opts.gpuScale())
	for _, svc := range services {
		fClean, tSvc := success(svc, clean, 1)
		fErr, _ := success(svc, noisy, 1)
		r.AddRow(svc.Name(),
			metrics.FormatSpeedup(metrics.Speedup(tSvc, tELCPU)),
			metrics.FormatSpeedup(metrics.Speedup(tSvc, tELGPU)),
			f2(fClean), f2(fErr))
	}
	r.AddRow("emblookup", "1.0x", metrics.FormatSpeedup(metrics.Speedup(tELCPU, tELGPU)), f2(fELClean), f2(fELErr))
	r.AddNote("speedups are relative to EmbLookup (compressed); %d queries, k=%d", len(clean), k)
	r.AddNote("local services index labels only (the paper's setup); remote services know the full alias set but pay rate-limited network latency")
	return r
}

// TableVI evaluates semantic lookup: entity cells replaced by randomly
// chosen aliases, averaged over several substitution variants.
func (env *Env) TableVI() *Report {
	r := &Report{ID: "Table VI", Title: "Semantic lookup: cells replaced by aliases (mean F over variants)",
		Header: []string{"Task", "System",
			"Wiki-Orig", "Wiki-EL", "Wiki-EL+A", "DBP-Orig", "DBP-EL", "Tough-Orig", "Tough-EL"}}

	variants := env.Opts.AliasVariants
	if variants <= 0 {
		variants = 2
	}
	welA, err := env.WEL.WithAliasRows()
	if err != nil {
		r.AddNote("alias-row index failed: %v", err)
		welA = env.WEL
	}
	type acc struct{ wo, we, wa, do, de, to, te float64 }
	var sums []acc

	for v := 0; v < variants; v++ {
		seed := env.Opts.NoiseSeed + uint64(100+v)
		wDS := tabular.SubstituteAliases(env.WikidataDS, seed)
		dDS := tabular.SubstituteAliases(env.DBPediaDS, seed)
		tDS := tabular.SubstituteAliases(env.ToughDS, seed)
		wRows := env.wikidataRows(wDS)
		dRows := env.dbpediaRows(dDS)
		tRows := env.wikidataRows(tDS)
		wOrig := env.wikidataOriginals()
		dOrig := env.dbpediaOriginals()
		if sums == nil {
			sums = make([]acc, len(wRows))
		}
		for i := range wRows {
			fwo, _ := wRows[i].run(wOrig[i], 1)
			fwe, _ := wRows[i].run(env.WEL, 0)
			fwa, _ := wRows[i].run(welA, 0)
			fdo, _ := dRows[i].run(dOrig[i], 1)
			fde, _ := dRows[i].run(env.DEL, 0)
			fto, _ := tRows[i].run(wOrig[i], 1)
			fte, _ := tRows[i].run(env.WEL, 0)
			sums[i].wo += fwo
			sums[i].we += fwe
			sums[i].wa += fwa
			sums[i].do += fdo
			sums[i].de += fde
			sums[i].to += fto
			sums[i].te += fte
		}
	}
	rows := env.wikidataRows(env.WikidataDS)
	n := float64(variants)
	for i := range sums {
		r.AddRow(rows[i].task, rows[i].system,
			f2(sums[i].wo/n), f2(sums[i].we/n), f2(sums[i].wa/n),
			f2(sums[i].do/n), f2(sums[i].de/n),
			f2(sums[i].to/n), f2(sums[i].te/n))
	}
	r.AddNote("%d alias-substitution variants averaged (paper: 5); local original services index labels only, so aliases miss", variants)
	r.AddNote("EL resolves aliases through the learned embedding without storing them; EL+A additionally embeds alias rows (the Section III-C storage/accuracy option) — EXPERIMENTS.md discusses where this run diverges from the paper")
	return r
}

// TableVII compares embedding generators on the CEA workload.
func (env *Env) TableVII() *Report {
	r := &Report{ID: "Table VII", Title: "Varying the embedding generation algorithm (CEA)",
		Header: []string{"Embedding", "F(no err)", "F(err)"}}

	cea := func(svc lookup.Service, ds *tabular.Dataset) float64 {
		cfg := tasks.DefaultCEAConfig()
		cfg.Parallelism = 0
		return tasks.CEA(ds, svc, tasks.TopCandidate, cfg).F1()
	}
	for _, svc := range env.altServices() {
		r.AddRow(svc.Name(), f2(cea(svc, env.WikidataDS)), f2(cea(svc, env.WikidataAllNoisy)))
	}
	r.AddNote("word2vec/fastText/BERT rows are the substitutions documented in DESIGN.md §1 (no pre-trained checkpoints offline); each reproduces its baseline's failure mode")
	r.AddNote("error column corrupts every entity cell (the paper corrupts 10%%; at reproduction scale that leaves too little signal to rank the algorithms)")
	return r
}

// TableVIII sweeps the embedding dimension with compression disabled.
func (env *Env) TableVIII() *Report {
	r := &Report{ID: "Table VIII", Title: "Varying the embedding dimension (no compression)",
		Header: []string{"Dimension", "F(no err)", "F(err)"}}
	cea := func(svc lookup.Service, ds *tabular.Dataset) float64 {
		cfg := tasks.DefaultCEAConfig()
		cfg.Parallelism = 0
		return tasks.CEA(ds, svc, tasks.TopCandidate, cfg).F1()
	}
	for _, dim := range []int{32, 64, 128, 256} {
		cfg := env.Opts.TrainConfig
		cfg.Dim = dim
		cfg.Compress = false
		cfg.Seed = cfg.Seed + uint64(dim)
		model, err := core.Train(env.WGraph, cfg)
		if err != nil {
			r.AddNote("dim %d failed: %v", dim, err)
			continue
		}
		label := fmt.Sprint(dim)
		if dim == 64 {
			label += " (default)"
		}
		r.AddRow(label, f2(cea(model, env.WikidataDS)), f2(cea(model, env.WikidataAllNoisy)))
	}
	r.AddNote("error column corrupts every entity cell (see Table VII note)")
	return r
}
