package index

import (
	"context"

	"emblookup/internal/par"
)

// CtxSearcher is implemented by indexes whose single-query scan can be
// cancelled cooperatively: a caller that has given up (deadline passed,
// client disconnected) stops paying for shard scans it will never read.
// With an uncancelled context the results are bit-identical to
// SearchAppendWith; once the context is done the scan returns ctx.Err()
// and no results.
type CtxSearcher interface {
	SearchAppendCtx(ctx context.Context, s *Scratch, q []float32, k int, dst []Result) ([]Result, error)
}

// BatchCtxSearcher is CtxSearcher for batch-scheduling indexes: the batch
// execution checks the context between phases and before each (shard,
// query) task, so a cancelled batch abandons the sweep instead of
// finishing it.
type BatchCtxSearcher interface {
	SearchBatchCtx(ctx context.Context, queries [][]float32, k, parallelism int) ([][]Result, error)
}

// SearchAppendCtx implements CtxSearcher over the sharded fan-out. The
// context is checked before the scan state is built and before each shard's
// range scan — a shard range is the cancellation granularity, so a done
// context wastes at most the ranges already in flight. A context that can
// never be cancelled takes the exact SearchAppendWith path.
func (sh *Sharded) SearchAppendCtx(ctx context.Context, s *Scratch, q []float32, k int, dst []Result) ([]Result, error) {
	if ctx == nil || ctx.Done() == nil {
		return sh.SearchAppendWith(s, q, k, dst), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return dst[:0], nil
	}
	state := sh.inner.prepareScan(s, q)
	ns := sh.Shards()
	if ns == 0 {
		if dst == nil {
			return []Result{}, nil
		}
		return dst[:0], nil
	}
	scratches := make([]*Scratch, ns)
	par.ForEach(ns, sh.parallelism, func(i int) {
		if ctx.Err() != nil {
			return // cancelled: skip the remaining shard ranges
		}
		ss := GetScratch()
		scratches[i] = ss
		t := &ss.res
		t.reset(k)
		sh.inner.scanRange(state, ss, t, sh.bounds[i], sh.bounds[i+1])
	})
	t := &s.res
	t.reset(k)
	for _, ss := range scratches {
		if ss == nil {
			continue
		}
		for _, r := range ss.res.heap {
			t.push(r.ID, r.Dist)
		}
		PutScratch(ss)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.appendSorted(dst), nil
}

// SearchBatchCtx implements BatchCtxSearcher: SearchBatch with the context
// checked before every per-query preparation, every (shard, query) sweep
// task, and every per-query merge. Uncancelled batches return exactly what
// SearchBatch would.
func (sh *Sharded) SearchBatchCtx(ctx context.Context, queries [][]float32, k, parallelism int) ([][]Result, error) {
	if ctx == nil || ctx.Done() == nil {
		return sh.SearchBatch(queries, k, parallelism), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nq := len(queries)
	out := make([][]Result, nq)
	if nq == 0 {
		return out, nil
	}
	if k <= 0 {
		return out, nil
	}
	ns := sh.Shards()
	if ns == 0 {
		for i := range out {
			out[i] = []Result{}
		}
		return out, nil
	}
	prep := make([]*Scratch, nq)
	states := make([][]float32, nq)
	par.ForEach(nq, parallelism, func(i int) {
		if ctx.Err() != nil {
			return
		}
		prep[i] = GetScratch()
		states[i] = sh.inner.prepareScan(prep[i], queries[i])
	})
	heaps := make([]*Scratch, ns*nq)
	if ctx.Err() == nil {
		par.ForEach(ns*nq, parallelism, func(t int) {
			if ctx.Err() != nil {
				return
			}
			si, qi := t/nq, t%nq
			ss := GetScratch()
			heaps[t] = ss
			h := &ss.res
			h.reset(k)
			sh.inner.scanRange(states[qi], ss, h, sh.bounds[si], sh.bounds[si+1])
		})
	}
	if err := ctx.Err(); err == nil {
		flat := make([]Result, nq*k)
		par.ForEach(nq, parallelism, func(qi int) {
			t := &prep[qi].res
			t.reset(k)
			for si := 0; si < ns; si++ {
				for _, r := range heaps[si*nq+qi].res.heap {
					t.push(r.ID, r.Dist)
				}
			}
			out[qi] = t.appendSorted(flat[qi*k : qi*k : (qi+1)*k])
		})
	}
	for _, s := range heaps {
		if s != nil {
			PutScratch(s)
		}
	}
	for _, s := range prep {
		if s != nil {
			PutScratch(s)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
