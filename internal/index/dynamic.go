package index

import (
	"fmt"
	"slices"
	"sync"

	"emblookup/internal/mathx"
)

// appender is implemented by sealed indexes that can absorb one more row at
// the end of their storage (id = Len() before the append). Compaction uses
// it to re-encode the delta segment into the base. The caller must hold
// whatever lock protects concurrent searches.
type appender interface {
	appendRow(vec []float32)
}

// appendRow grows the stored matrix by one row. The matrix is shared with
// the caller of NewFlat; appending may reallocate its backing array.
func (f *Flat) appendRow(vec []float32) {
	f.data.Data = append(f.data.Data, vec...)
	f.data.Rows++
}

// appendRow encodes vec with the trained (sealed) quantizer and appends its
// code — no retraining, exactly how a PQ index absorbs new rows online.
func (ix *PQ) appendRow(vec []float32) {
	m := ix.pq.M
	ix.codes = append(ix.codes, make([]byte, m)...)
	ix.pq.EncodeInto(vec, ix.codes[ix.n*m:])
	ix.n++
}

// appendRow routes vec to its nearest coarse list and stores it there — raw
// for IVF-Flat, as a residual code for IVF-PQ.
func (ix *IVF) appendRow(vec []float32) {
	best, bestD := 0, float32(0)
	for c := 0; c < ix.coarse.Rows; c++ {
		d := mathx.SquaredL2(vec, ix.coarse.Row(c))
		if c == 0 || d < bestD {
			best, bestD = c, d
		}
	}
	id := int32(ix.n)
	ix.lists[best] = append(ix.lists[best], id)
	if ix.pq == nil {
		ix.vectors.Data = append(ix.vectors.Data, vec...)
		ix.vectors.Rows++
	} else {
		res := make([]float32, ix.dim)
		cRow := ix.coarse.Row(best)
		for j := range res {
			res[j] = vec[j] - cRow[j]
		}
		m := ix.pq.M
		buf := ix.codes[best]
		buf = append(buf, make([]byte, m)...)
		ix.pq.EncodeInto(res, buf[len(buf)-m:])
		ix.codes[best] = buf
	}
	ix.n++
}

// DefaultCompactThreshold is the delta size that triggers compaction when
// NewDynamic is given no explicit threshold.
const DefaultCompactThreshold = 4096

// Dynamic makes a sealed index mutable at serve time: the base index stays
// untouched on the hot path while Add appends to a raw float delta segment
// and Delete tombstones ids in either segment. A search scans both segments
// and merges under the canonical (Dist, ID) order, so results are exactly
// the top-k of the live rows. When the delta reaches the compaction
// threshold it is re-encoded into the base with the base's own sealed
// quantizer (no retraining) and tombstoned delta rows vanish physically.
// Row ids are stable across Add, Delete, and compaction: the base rows keep
// ids [0, baseLen) and every Add returns the next id, so an external
// row→entity mapping stays append-only. All methods are safe for concurrent
// use; searches share a read lock and mutations serialize on a write lock.
type Dynamic struct {
	mu       sync.RWMutex
	base     Index
	baseIDs  []int32 // external id of each base row, strictly increasing
	deltaVec []float32
	deltaIDs []int32 // external id of each delta row, strictly increasing
	dead     map[int32]bool
	deadBase int // how many tombstoned ids live in the base segment
	nextID   int32
	dim      int
	maxDelta int
}

// NewDynamic wraps base (retained, not copied) with a mutable delta
// segment. maxDelta is the delta size that triggers compaction (≤0 =
// DefaultCompactThreshold). Bases that cannot absorb appended rows (e.g. a
// Sharded wrapper, whose shard bounds are fixed at construction) are still
// searchable and mutable — their delta is simply never compacted.
func NewDynamic(base Index, maxDelta int) *Dynamic {
	if maxDelta <= 0 {
		maxDelta = DefaultCompactThreshold
	}
	ids := make([]int32, base.Len())
	for i := range ids {
		ids[i] = int32(i)
	}
	return &Dynamic{
		base:     base,
		baseIDs:  ids,
		dead:     make(map[int32]bool),
		nextID:   int32(base.Len()),
		dim:      base.Dim(),
		maxDelta: maxDelta,
	}
}

// Len returns the number of live (non-tombstoned) vectors.
func (d *Dynamic) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base.Len() + len(d.deltaIDs) - len(d.dead)
}

// Dim returns the vector dimensionality.
func (d *Dynamic) Dim() int { return d.dim }

// SizeBytes returns the base payload plus the raw delta segment.
func (d *Dynamic) SizeBytes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base.SizeBytes() + len(d.deltaVec)*4
}

// Add appends a vector and returns its stable row id. Crossing the
// compaction threshold compacts inline (the caller pays for the re-encode,
// keeping concurrent searches readers-only).
func (d *Dynamic) Add(vec []float32) int32 {
	if len(vec) != d.dim {
		panic(fmt.Sprintf("index: Dynamic.Add dimension %d, want %d", len(vec), d.dim))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.deltaVec = append(d.deltaVec, vec...)
	d.deltaIDs = append(d.deltaIDs, id)
	if len(d.deltaIDs) >= d.maxDelta {
		d.compactLocked()
	}
	return id
}

// Delete tombstones the row with the given id. It reports whether the id
// was present and live. The storage is reclaimed at the next compaction for
// delta rows; base rows stay tombstoned (a sealed segment never shrinks).
func (d *Dynamic) Delete(id int32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead[id] {
		return false
	}
	if _, ok := slices.BinarySearch(d.baseIDs, id); ok {
		d.dead[id] = true
		d.deadBase++
		return true
	}
	if _, ok := slices.BinarySearch(d.deltaIDs, id); ok {
		d.dead[id] = true
		return true
	}
	return false
}

// Compact re-encodes the delta segment into the base immediately,
// regardless of the threshold.
func (d *Dynamic) Compact() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.compactLocked()
}

func (d *Dynamic) compactLocked() {
	ap, ok := d.base.(appender)
	if !ok || len(d.deltaIDs) == 0 {
		return
	}
	for j, id := range d.deltaIDs {
		if d.dead[id] {
			// The row never reaches the base: this is the moment a deleted
			// delta row physically disappears.
			delete(d.dead, id)
			continue
		}
		ap.appendRow(d.deltaVec[j*d.dim : (j+1)*d.dim])
		d.baseIDs = append(d.baseIDs, id)
	}
	d.deltaVec = d.deltaVec[:0]
	d.deltaIDs = d.deltaIDs[:0]
}

// Search returns the k nearest live rows, merged across the base and delta
// segments. It is a thin wrapper over SearchWith with pooled scratch.
func (d *Dynamic) Search(q []float32, k int) []Result {
	s := GetScratch()
	defer PutScratch(s)
	return d.SearchWith(s, q, k)
}

// SearchWith implements ScratchSearcher: the merge heap is reused from s
// (the base search pools its own scratch internally).
//
// Correctness of the merge: the base is over-fetched by the number of base
// tombstones, so after filtering the dead ids at least the k best live base
// rows are present; any live base row the over-fetch missed is canonically
// worse than all of them and can never enter the global top-k. Delta rows
// are scanned exhaustively. baseIDs is strictly increasing, so mapping base
// row ids to external ids preserves the canonical (Dist, ID) tie order and
// the merged selection equals a from-scratch scan of the live rows.
func (d *Dynamic) SearchWith(s *Scratch, q []float32, k int) []Result {
	return d.SearchAppendWith(s, q, k, nil)
}

// SearchAppendWith implements AppendSearcher: results land in dst[:0].
func (d *Dynamic) SearchAppendWith(s *Scratch, q []float32, k int, dst []Result) []Result {
	if k <= 0 {
		return dst[:0]
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	base := d.base.Search(q, k+d.deadBase)
	t := &s.res
	t.reset(k)
	for _, r := range base {
		id := d.baseIDs[r.ID]
		if d.dead[id] {
			continue
		}
		t.push(id, r.Dist)
	}
	for j, id := range d.deltaIDs {
		if d.dead[id] {
			continue
		}
		t.push(id, mathx.SquaredL2(q, d.deltaVec[j*d.dim:(j+1)*d.dim]))
	}
	return t.appendSorted(dst)
}

// DynamicStats snapshots the segment sizes for observability.
type DynamicStats struct {
	Base  int `json:"base"`  // rows sealed in the base segment
	Delta int `json:"delta"` // rows in the append-only delta segment
	Dead  int `json:"dead"`  // tombstoned rows still occupying storage
}

// Stats reports the current segment sizes.
func (d *Dynamic) Stats() DynamicStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return DynamicStats{Base: d.base.Len(), Delta: len(d.deltaIDs), Dead: len(d.dead)}
}

// Base exposes the sealed base index (the serializer snapshots a Dynamic
// through its base after compaction).
func (d *Dynamic) Base() Index { return d.base }
