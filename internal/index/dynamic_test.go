package index

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// bruteTopK is the from-scratch reference: exact distances over the live
// rows, canonical (Dist, ID) order.
func bruteTopK(rows map[int32][]float32, q []float32, k int) []Result {
	all := make([]Result, 0, len(rows))
	for id, v := range rows {
		all = append(all, Result{ID: id, Dist: mathx.SquaredL2(q, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func randomQuery(rng *mathx.RNG, d int) []float32 {
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	return q
}

// A Dynamic over an exact base must stay exact through an interleaving of
// adds and deletes in both segments.
func TestDynamicMatchesBruteForce(t *testing.T) {
	const d = 6
	data := randomData(120, d, 31)
	live := map[int32][]float32{}
	for i := 0; i < data.Rows; i++ {
		live[int32(i)] = data.Row(i)
	}
	dyn := NewDynamic(NewFlat(data), 1<<30) // threshold out of reach: delta stays raw
	rng := mathx.NewRNG(32)

	check := func(stage string) {
		t.Helper()
		for trial := 0; trial < 5; trial++ {
			q := randomQuery(rng, d)
			got := dyn.Search(q, 10)
			want := bruteTopK(live, q, 10)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d results, want %d", stage, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: result %d = %+v, want %+v", stage, i, got[i], want[i])
				}
			}
		}
	}

	check("initial")
	// Grow a delta segment.
	added := []int32{}
	for i := 0; i < 40; i++ {
		v := randomQuery(rng, d)
		id := dyn.Add(v)
		live[id] = v
		added = append(added, id)
	}
	check("after adds")
	// Delete from the base segment (tombstones survive forever there)...
	for _, id := range []int32{0, 7, 55, 119} {
		if !dyn.Delete(id) {
			t.Fatalf("base delete %d reported not-live", id)
		}
		delete(live, id)
	}
	// ...and from the delta segment.
	for _, id := range added[:10] {
		if !dyn.Delete(id) {
			t.Fatalf("delta delete %d reported not-live", id)
		}
		delete(live, id)
	}
	check("after deletes")
	if dyn.Delete(0) {
		t.Fatal("double delete should report false")
	}
	if dyn.Delete(1 << 20) {
		t.Fatal("deleting an unknown id should report false")
	}
	if dyn.Len() != len(live) {
		t.Fatalf("Len = %d, want %d live rows", dyn.Len(), len(live))
	}

	// Compaction over a Flat base moves raw vectors verbatim: still exact,
	// deleted delta rows physically gone.
	preStats := dyn.Stats()
	dyn.Compact()
	post := dyn.Stats()
	if post.Delta != 0 {
		t.Fatalf("delta not drained by Compact: %+v", post)
	}
	if post.Dead >= preStats.Dead {
		t.Fatalf("deleted delta rows should leave the dead set at compaction: %+v -> %+v", preStats, post)
	}
	check("after compaction")

	// Ids handed out after compaction continue the same sequence.
	v := randomQuery(rng, d)
	id := dyn.Add(v)
	live[id] = v
	check("after post-compaction add")
}

// Quantized bases absorb compacted rows through their sealed quantizer. The
// representation is lossy, so the invariant is about membership, not
// distances: an exhaustive search returns exactly the live id set before
// and after compaction, and Len tracks it.
func TestDynamicCompactQuantizedBases(t *testing.T) {
	const d = 16
	data := randomData(300, d, 33)
	pqCfg := quant.PQConfig{M: 4, Ks: 16, Iters: 6, Seed: 34}
	bases := map[string]Index{}
	if ix, err := NewPQ(data, pqCfg); err != nil {
		t.Fatal(err)
	} else {
		bases["pq"] = ix
	}
	if ix, err := NewIVF(data, IVFConfig{NList: 8, NProbe: 8, Iters: 5, Seed: 35}); err != nil {
		t.Fatal(err)
	} else {
		bases["ivf-flat"] = ix
	}
	if ix, err := NewIVF(data, IVFConfig{NList: 8, NProbe: 8, PQ: &pqCfg, Iters: 5, Seed: 36}); err != nil {
		t.Fatal(err)
	} else {
		bases["ivf-pq"] = ix
	}
	for name, base := range bases {
		dyn := NewDynamic(base, 1<<30)
		rng := mathx.NewRNG(37)
		liveIDs := map[int32]bool{}
		for i := 0; i < 300; i++ {
			liveIDs[int32(i)] = true
		}
		for i := 0; i < 25; i++ {
			liveIDs[dyn.Add(randomQuery(rng, d))] = true
		}
		for _, id := range []int32{3, 299, 305, 310} {
			if !dyn.Delete(id) {
				t.Fatalf("%s: delete %d failed", name, id)
			}
			delete(liveIDs, id)
		}
		idSet := func(stage string) {
			t.Helper()
			res := dyn.Search(randomQuery(rng, d), dyn.Len())
			if len(res) != len(liveIDs) {
				t.Fatalf("%s/%s: exhaustive search returned %d rows, want %d", name, stage, len(res), len(liveIDs))
			}
			for _, r := range res {
				if !liveIDs[r.ID] {
					t.Fatalf("%s/%s: dead or unknown id %d in results", name, stage, r.ID)
				}
			}
		}
		idSet("pre-compact")
		dyn.Compact()
		if st := dyn.Stats(); st.Delta != 0 {
			t.Fatalf("%s: compaction left delta rows: %+v", name, st)
		}
		idSet("post-compact")
	}
}

// A base that cannot absorb appends (Sharded: fixed shard bounds) never
// compacts — the delta just keeps serving — and results stay exact.
func TestDynamicShardedBaseNeverCompacts(t *testing.T) {
	const d = 4
	data := randomData(90, d, 38)
	live := map[int32][]float32{}
	for i := 0; i < data.Rows; i++ {
		live[int32(i)] = data.Row(i)
	}
	sh, err := NewSharded(NewFlat(data), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamic(sh, 4) // tiny threshold: compaction keeps triggering
	rng := mathx.NewRNG(39)
	for i := 0; i < 20; i++ {
		v := randomQuery(rng, d)
		live[dyn.Add(v)] = v
	}
	if st := dyn.Stats(); st.Delta != 20 {
		t.Fatalf("sharded base should never compact, delta = %d", st.Delta)
	}
	q := randomQuery(rng, d)
	got := dyn.Search(q, 8)
	want := bruteTopK(live, q, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Crossing the threshold compacts inline from Add.
func TestDynamicAutoCompaction(t *testing.T) {
	data := randomData(50, 4, 40)
	dyn := NewDynamic(NewFlat(data), 8)
	rng := mathx.NewRNG(41)
	for i := 0; i < 30; i++ {
		dyn.Add(randomQuery(rng, 4))
	}
	if st := dyn.Stats(); st.Delta >= 8 {
		t.Fatalf("delta %d should stay under the threshold", st.Delta)
	}
	if dyn.Len() != 80 {
		t.Fatalf("Len = %d, want 80", dyn.Len())
	}
}

// Searches, adds, and deletes from many goroutines: run under -race. Each
// search must return well-formed results (sorted canonically, no duplicate
// ids); exact contents are racy by design.
func TestDynamicConcurrentMutation(t *testing.T) {
	const d = 8
	data := randomData(200, d, 42)
	dyn := NewDynamic(NewFlat(data), 64)
	var wg sync.WaitGroup
	errc := make(chan error, 8) // one slot per goroutine: sends never block

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mathx.NewRNG(uint64(100 + w))
			for i := 0; i < 200; i++ {
				id := dyn.Add(randomQuery(rng, d))
				if i%3 == 0 {
					dyn.Delete(id)
				}
				if i%7 == 0 {
					dyn.Delete(int32(rng.Intn(200)))
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mathx.NewRNG(uint64(200 + w))
			for i := 0; i < 200; i++ {
				res := dyn.Search(randomQuery(rng, d), 10)
				seen := map[int32]bool{}
				for j, r := range res {
					if seen[r.ID] {
						errc <- fmt.Errorf("duplicate id %d in search results", r.ID)
						return
					}
					seen[r.ID] = true
					if j > 0 && (res[j-1].Dist > r.Dist ||
						(res[j-1].Dist == r.Dist && res[j-1].ID >= r.ID)) {
						errc <- fmt.Errorf("results not in canonical order at %d", j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
