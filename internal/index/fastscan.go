package index

import (
	"fmt"

	"emblookup/internal/mathx"
	"emblookup/internal/par"
	"emblookup/internal/quant"
)

// FastScan is the 4-bit fast-scan PQ index (DESIGN.md §11): the same
// asymmetric-distance scan as PQ, restructured so the scalar inner loop is
// a tight gather over register/L1-resident integer tables instead of a
// float32 walk of an 8 KB LUT. Three pieces cooperate:
//
//   - 4-bit sub-quantizers (quant.Config4): twice the sub-quantizers at 16
//     centroids each, so a row still costs M4/2 bytes — two nibble codes
//     per byte — while each distance table row shrinks to 16 entries;
//   - a block-interleaved code layout: codes for fsBlock (32) rows are
//     transposed sub-quantizer-pair-major per block, so the kernel sweeps
//     one 256-entry fused LUT over 32 consecutive code bytes at a time;
//   - per-query uint8 quantization of the distance table
//     (quant.QuantizeTableInto): distances accumulate in uint16 registers
//     with a proven no-saturation bound, the early-abandon check is one
//     integer compare per row, and the few surviving candidates are
//     re-ranked with the exact float32 table.
//
// Because the quantized sum is a floor-based lower bound of the float sum,
// the integer prune can only over-admit; the exact re-rank then selects
// under the canonical (Dist, ID) order, so results are bit-identical to a
// plain float32 ADC scan of the same 4-bit codes (fuzz- and
// property-tested, including adversarial all-ties tables).
type FastScan struct {
	pq     *quant.ProductQuantizer // 4-bit: Ks == 16, even M
	blocks []byte                  // ceil(n/32) blocks × (M/2)×32 bytes, pair-major
	n      int
	shared bool // blocks alias memory this index does not own (possibly read-only mmap)
}

// fsBlock is the number of rows one interleaved block covers. 32 rows ×
// one byte per sub-quantizer pair keeps a block's strip for one pair in
// half a cache line and the whole block (at M4=16) in 256 bytes.
const fsBlock = 32

// fsBlockBytes returns the byte size of one interleaved block for an
// m4-sub-quantizer code.
func fsBlockBytes(m4 int) int { return m4 / 2 * fsBlock }

// fsBlocksLen returns the total byte size of the interleaved code array
// for n rows (the last block is padded with zero nibbles).
func fsBlocksLen(m4, n int) int {
	return (n + fsBlock - 1) / fsBlock * fsBlockBytes(m4)
}

// validate4 rejects quantizers the fast-scan layout cannot serve: the
// kernel's LUT stride and nibble packing hard-code Ks4 centroids, pairs of
// sub-quantizers share a byte, and uint16 accumulation must never saturate.
func validate4(q *quant.ProductQuantizer) error {
	if q.Ks != quant.Ks4 {
		return fmt.Errorf("index: fast-scan needs Ks=%d sub-quantizers, got Ks=%d", quant.Ks4, q.Ks)
	}
	if q.M%2 != 0 {
		return fmt.Errorf("index: fast-scan needs an even sub-quantizer count, got M=%d", q.M)
	}
	if q.M > quant.MaxM4 {
		return fmt.Errorf("index: fast-scan M=%d exceeds %d (uint16 accumulation would saturate)", q.M, quant.MaxM4)
	}
	return nil
}

// NewFastScan trains a 4-bit product quantizer on data (use
// quant.Config4 to derive the configuration from an 8-bit one) and encodes
// every row into the block-interleaved layout. Training and encoding fan
// across cfg.Workers; codes are byte-identical at any worker count.
func NewFastScan(data *mathx.Matrix, cfg quant.PQConfig) (*FastScan, error) {
	if cfg.Ks != quant.Ks4 {
		return nil, fmt.Errorf("index: fast-scan config needs Ks=%d, got %d (derive it with quant.Config4)", quant.Ks4, cfg.Ks)
	}
	q, err := quant.TrainPQ(data, cfg)
	if err != nil {
		return nil, err
	}
	if err := validate4(q); err != nil {
		return nil, err
	}
	ix := &FastScan{pq: q, n: data.Rows, blocks: make([]byte, fsBlocksLen(q.M, data.Rows))}
	nibbles := make([][]byte, par.Workers(data.Rows, cfg.Workers))
	par.ForEachWorker(data.Rows, cfg.Workers, func(w, i int) {
		nib := nibbles[w]
		if nib == nil {
			nib = make([]byte, q.M)
			nibbles[w] = nib
		}
		q.EncodeInto(data.Row(i), nib)
		ix.setRow(i, nib)
	})
	return ix, nil
}

// setRow scatters one row's nibble codes into its block (two codes per
// byte, pair-major strips of fsBlock bytes).
func (ix *FastScan) setRow(row int, nib []byte) {
	np := ix.pq.M / 2
	blk := ix.blocks[row/fsBlock*fsBlockBytes(ix.pq.M):]
	r := row % fsBlock
	for p := 0; p < np; p++ {
		blk[p*fsBlock+r] = nib[2*p]&0xf | nib[2*p+1]<<4
	}
}

// rowNibbles gathers one row's nibble codes back out of the interleaved
// layout into nib (length M).
func (ix *FastScan) rowNibbles(row int, nib []byte) {
	np := ix.pq.M / 2
	blk := ix.blocks[row/fsBlock*fsBlockBytes(ix.pq.M):]
	r := row % fsBlock
	for p := 0; p < np; p++ {
		b := blk[p*fsBlock+r]
		nib[2*p] = b & 0xf
		nib[2*p+1] = b >> 4
	}
}

// interleave4 transposes row-major nibble codes (n rows × m4 nibbles, one
// per byte) into the block-interleaved layout; deinterleave4 inverts it.
// They define the layout the fuzz round-trip locks down.
func interleave4(nib []byte, m4, n int) []byte {
	np := m4 / 2
	blocks := make([]byte, fsBlocksLen(m4, n))
	for i := 0; i < n; i++ {
		blk := blocks[i/fsBlock*fsBlockBytes(m4):]
		r := i % fsBlock
		for p := 0; p < np; p++ {
			blk[p*fsBlock+r] = nib[i*m4+2*p]&0xf | nib[i*m4+2*p+1]<<4
		}
	}
	return blocks
}

func deinterleave4(blocks []byte, m4, n int) []byte {
	np := m4 / 2
	nib := make([]byte, n*m4)
	for i := 0; i < n; i++ {
		blk := blocks[i/fsBlock*fsBlockBytes(m4):]
		r := i % fsBlock
		for p := 0; p < np; p++ {
			b := blk[p*fsBlock+r]
			nib[i*m4+2*p] = b & 0xf
			nib[i*m4+2*p+1] = b >> 4
		}
	}
	return nib
}

// Len returns the number of stored codes.
func (ix *FastScan) Len() int { return ix.n }

// Dim returns the original vector dimensionality.
func (ix *FastScan) Dim() int { return ix.pq.D }

// SizeBytes returns the interleaved code storage cost (including the zero
// padding of the final partial block).
func (ix *FastScan) SizeBytes() int { return len(ix.blocks) }

// Quantizer exposes the trained 4-bit product quantizer.
func (ix *FastScan) Quantizer() *quant.ProductQuantizer { return ix.pq }

// Search builds the float ADC table for q once, quantizes it, and scans
// all blocks. It is a thin wrapper over SearchWith with pooled scratch.
func (ix *FastScan) Search(q []float32, k int) []Result {
	s := GetScratch()
	defer PutScratch(s)
	return ix.SearchWith(s, q, k)
}

// SearchWith implements ScratchSearcher.
func (ix *FastScan) SearchWith(s *Scratch, q []float32, k int) []Result {
	return ix.SearchAppendWith(s, q, k, nil)
}

// SearchAppendWith implements AppendSearcher: results land in dst[:0].
func (ix *FastScan) SearchAppendWith(s *Scratch, q []float32, k int, dst []Result) []Result {
	if k <= 0 {
		return dst[:0]
	}
	table := ix.prepareScan(s, q)
	t := &s.res
	t.reset(k)
	ix.scanRange(table, s, t, 0, ix.n)
	return t.appendSorted(dst)
}

// prepareScan implements rangeScanner: the shared per-query state is the
// exact float32 ADC table (M4 rows of 16 entries — at M4=16 a single
// kilobyte). Each range scan derives its integer tables from it, so the
// shared state stays a plain []float32 and sharded scans need no extra
// coordination.
func (ix *FastScan) prepareScan(s *Scratch, q []float32) []float32 {
	s.table = mathx.Resize(s.table, ix.pq.M*ix.pq.Ks)
	ix.pq.ADCTableInto(q, s.table)
	return s.table
}

// scanRange implements rangeScanner: quantize the float table into s's
// integer LUTs, then walk the blocks covering rows [lo, hi).
//
// The fused pair LUT is the scalar replacement for the SIMD shuffle FAISS
// uses: entry b of pair p holds lut8[2p][b&15] + lut8[2p+1][b>>4], so one
// byte load + one uint16 load + one add advance a row by TWO
// sub-quantizers. At M4=16 the fused tables total 4 KB and the hot block
// strip is 32 consecutive bytes — the memory layout, not intrinsics, keeps
// the gather in L1.
func (ix *FastScan) scanRange(table []float32, s *Scratch, t *topK, lo, hi int) {
	if lo >= hi {
		return
	}
	m4 := ix.pq.M
	np := m4 / 2
	s.lut8 = resizeBytes(s.lut8, m4*quant.Ks4)
	bias, delta := ix.pq.QuantizeTableInto(table, s.lut8)
	s.lut2 = resizeU16(s.lut2, np*256)
	for p := 0; p < np; p++ {
		lo8 := s.lut8[2*p*quant.Ks4 : 2*p*quant.Ks4+quant.Ks4]
		hi8 := s.lut8[(2*p+1)*quant.Ks4 : (2*p+1)*quant.Ks4+quant.Ks4]
		fused := s.lut2[p*256 : p*256+256]
		for b := range fused {
			fused[b] = uint16(lo8[b&0xf]) + uint16(hi8[b>>4])
		}
	}
	invDelta := 1 / delta
	slack := uint32(m4) + 1
	qlimit := fsLimit(t.worst(), bias, invDelta, slack)
	bpb := fsBlockBytes(m4)
	var qd [fsBlock]uint16
	for b0 := lo / fsBlock * fsBlock; b0 < hi; b0 += fsBlock {
		blk := ix.blocks[b0/fsBlock*bpb:][:bpb:bpb]
		// Accumulate the quantized distances of all 32 rows, one fused
		// pair LUT swept over one 32-byte code strip at a time. The first
		// pair writes instead of adds, so qd needs no per-block reset.
		fused := s.lut2[:256]
		cb := blk[:fsBlock:fsBlock]
		for r := 0; r < fsBlock; r += 4 {
			qd[r] = fused[cb[r]]
			qd[r+1] = fused[cb[r+1]]
			qd[r+2] = fused[cb[r+2]]
			qd[r+3] = fused[cb[r+3]]
		}
		for p := 1; p < np; p++ {
			fused := s.lut2[p*256 : p*256+256]
			cb := blk[p*fsBlock : p*fsBlock+fsBlock : p*fsBlock+fsBlock]
			for r := 0; r < fsBlock; r += 4 {
				qd[r] += fused[cb[r]]
				qd[r+1] += fused[cb[r+1]]
				qd[r+2] += fused[cb[r+2]]
				qd[r+3] += fused[cb[r+3]]
			}
		}
		// Candidate pass: one integer compare per row; survivors pay the
		// exact float32 re-rank and the heap push.
		rlo, rhi := 0, fsBlock
		if b0 < lo {
			rlo = lo - b0
		}
		if b0+fsBlock > hi {
			rhi = hi - b0
		}
		for r := rlo; r < rhi; r++ {
			if uint32(qd[r]) > qlimit {
				continue
			}
			t.push(int32(b0+r), fsRowDist(table, blk, np, r))
			qlimit = fsLimit(t.worst(), bias, invDelta, slack)
		}
	}
}

// fsLimit converts the current k-th best float distance into the quantized
// early-abandon threshold: rows whose integer sum exceeds it have a float
// lower bound strictly above w and can never enter the heap. The slack of
// M+1 quantization steps absorbs FP rounding in the floor quantization and
// in this division, so the prune can only over-admit (a few extra exact
// re-ranks), never drop a row the exact scan would keep — including exact
// ties, which may still enter on the canonical ID tie-break.
func fsLimit(w, bias, invDelta float32, slack uint32) uint32 {
	v := (w - bias) * invDelta
	if !(v < 65000) { // catches +Inf and the underfull-heap sentinel
		return 1<<32 - 1
	}
	if v < 0 {
		return slack
	}
	return uint32(v) + slack
}

// fsRowDist computes row r's exact float32 ADC distance from its block
// strip, summing sub-quantizers in ascending order — the identical
// association order scanPlain4 uses, so re-ranked distances are
// bit-identical to the reference scan's.
func fsRowDist(table []float32, blk []byte, np, r int) float32 {
	var d float32
	for p := 0; p < np; p++ {
		b := blk[p*fsBlock+r]
		d += table[2*p*quant.Ks4+int(b&0xf)]
		d += table[(2*p+1)*quant.Ks4+int(b>>4)]
	}
	return d
}

// scanPlain4 is the straightforward float32 ADC scan over the 4-bit codes
// — the ground-truth reference the fast-scan kernel is tested against.
func (ix *FastScan) scanPlain4(table []float32, t *topK) {
	np := ix.pq.M / 2
	bpb := fsBlockBytes(ix.pq.M)
	for i := 0; i < ix.n; i++ {
		blk := ix.blocks[i/fsBlock*bpb:]
		t.push(int32(i), fsRowDist(table, blk, np, i%fsBlock))
	}
}

// appendRow encodes vec with the sealed quantizer into the next row slot,
// growing a fresh zero-padded block when the last one is full — how a
// fast-scan index absorbs Dynamic's delta segment at compaction.
func (ix *FastScan) appendRow(vec []float32) {
	// Unlike the other appendRow implementations (pure appends, which Go
	// turns into a reallocation when the backing is capacity-clipped),
	// setRow writes *into* the last partial block. On a shared backing —
	// a zero-copy v4 artifact, possibly a read-only mapping — that write
	// must hit a private copy, taken once at the first append.
	if ix.shared {
		ix.blocks = append([]byte(nil), ix.blocks...)
		ix.shared = false
	}
	if ix.n%fsBlock == 0 {
		ix.blocks = append(ix.blocks, make([]byte, fsBlockBytes(ix.pq.M))...)
	}
	nib := make([]byte, ix.pq.M)
	ix.pq.EncodeInto(vec, nib)
	ix.setRow(ix.n, nib)
	ix.n++
}

// Slice extracts rows [lo, hi) into a new FastScan sharing the quantizer
// but owning re-interleaved blocks (row ids rebase to 0) — the fast-scan
// leg of core.WithPartition. Interleaved blocks cannot be aliased on
// non-block boundaries, so the nibbles are copied; the cost is one pass
// over the slice's codes.
func (ix *FastScan) Slice(lo, hi int) (*FastScan, error) {
	if lo < 0 || hi > ix.n || lo > hi {
		return nil, fmt.Errorf("index: fast-scan slice [%d, %d) outside rows [0, %d)", lo, hi, ix.n)
	}
	out := &FastScan{pq: ix.pq, n: hi - lo, blocks: make([]byte, fsBlocksLen(ix.pq.M, hi-lo))}
	nib := make([]byte, ix.pq.M)
	for i := lo; i < hi; i++ {
		ix.rowNibbles(i, nib)
		out.setRow(i-lo, nib)
	}
	return out, nil
}

// Reconstruct decodes the stored approximation of vector id.
func (ix *FastScan) Reconstruct(id int32) []float32 {
	nib := make([]byte, ix.pq.M)
	ix.rowNibbles(int(id), nib)
	return ix.pq.Decode(nib)
}

// resizeBytes and resizeU16 are mathx.Resize for the integer LUT buffers.
func resizeBytes(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	return buf[:n]
}

func resizeU16(buf []uint16, n int) []uint16 {
	if cap(buf) < n {
		return make([]uint16, n)
	}
	return buf[:n]
}
