package index

import (
	"bytes"
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// buildFastScan trains a small fast-scan index over n random rows, plus a
// PQ index over the same data for comparison.
func buildFastScan(t *testing.T, n, dim int, seed uint64) (*FastScan, *mathx.Matrix) {
	t.Helper()
	data := mathx.NewMatrix(n, dim)
	data.FillRandn(mathx.NewRNG(seed), 1)
	ix, err := NewFastScan(data, quant.Config4(quant.PQConfig{M: dim / 8, Ks: 64, Iters: 4, Seed: seed + 1}))
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

// sameResults fails the test if two result slices are not bit-identical.
func sameResults(t *testing.T, ctx string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d results", ctx, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d diverges: %+v vs %+v", ctx, i, want[i], got[i])
		}
	}
}

// TestFastScanMatchesPlain4 asserts the quantized early-abandoning kernel
// returns bit-identical results to the plain float32 scan of the same 4-bit
// codes, across sizes that exercise partial trailing blocks and k values
// around the block size.
func TestFastScanMatchesPlain4(t *testing.T) {
	for _, n := range []int{1, 7, fsBlock - 1, fsBlock, fsBlock + 1, 5*fsBlock + 13} {
		ix, data := buildFastScan(t, n, 32, uint64(n)+1)
		s := &Scratch{}
		for _, k := range []int{1, 5, n, n + 10} {
			for qi := 0; qi < 5 && qi < n; qi++ {
				q := data.Row(qi)
				table := ix.prepareScan(s, q)

				plain := newTopK(k)
				ix.scanPlain4(table, plain)

				fast := newTopK(k)
				ix.scanRange(table, s, fast, 0, ix.n)

				sameResults(t, "fast-scan", plain.sorted(), fast.sorted())
			}
		}
	}
}

// TestFastScanInterleaveRoundTrip locks the block layout down: setRow and
// rowNibbles invert each other, and interleave4/deinterleave4 agree with
// the incremental layout NewFastScan builds.
func TestFastScanInterleaveRoundTrip(t *testing.T) {
	ix, data := buildFastScan(t, 3*fsBlock+5, 32, 77)
	nib := make([]byte, ix.pq.M)
	want := make([]byte, ix.pq.M)
	flat := make([]byte, ix.n*ix.pq.M)
	for i := 0; i < ix.n; i++ {
		ix.pq.EncodeInto(data.Row(i), want)
		ix.rowNibbles(i, nib)
		for m := range want {
			if nib[m] != want[m] {
				t.Fatalf("row %d sub %d: interleaved code %d, EncodeInto %d", i, m, nib[m], want[m])
			}
		}
		copy(flat[i*ix.pq.M:], want)
	}
	if got := interleave4(flat, ix.pq.M, ix.n); !bytes.Equal(got, ix.blocks) {
		t.Fatal("interleave4 disagrees with NewFastScan's layout")
	}
	if got := deinterleave4(ix.blocks, ix.pq.M, ix.n); !bytes.Equal(got, flat) {
		t.Fatal("deinterleave4 does not invert the layout")
	}
}

// TestFastScanScratchReuse asserts one Scratch reused across many searches
// answers identically to fresh pooled searches.
func TestFastScanScratchReuse(t *testing.T) {
	ix, data := buildFastScan(t, 400, 32, 99)
	s := &Scratch{}
	var dst []Result
	for qi := 0; qi < 20; qi++ {
		q := data.Row(qi)
		want := ix.Search(q, 10)
		sameResults(t, "SearchWith", want, ix.SearchWith(s, q, 10))
		dst = ix.SearchAppendWith(s, q, 10, dst)
		sameResults(t, "SearchAppendWith", want, dst)
	}
}

// TestFastScanSharded asserts the sharded fan-out over a fast-scan index is
// bit-identical to the unsharded search — the per-shard scans re-quantize
// the LUT from the shared float table, so the merge must still agree.
func TestFastScanSharded(t *testing.T) {
	ix, data := buildFastScan(t, 6*fsBlock+9, 32, 123)
	for _, shards := range []int{1, 2, 3, 7} {
		sh, err := NewSharded(ix, shards, 2)
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 8; qi++ {
			q := data.Row(qi)
			sameResults(t, "sharded", ix.Search(q, 10), sh.Search(q, 10))
		}
		batch := make([][]float32, 6)
		for i := range batch {
			batch[i] = data.Row(i)
		}
		res := sh.SearchBatch(batch, 10, 2)
		for i, q := range batch {
			sameResults(t, "sharded batch", ix.Search(q, 10), res[i])
		}
	}
}

// TestFastScanDynamic asserts a fast-scan base absorbs a Dynamic delta.
// The quantizer is lossy, so the pre/post-compaction invariant is
// membership under an exhaustive search (as for PQ bases), while the
// compacted blocks must be byte-identical to encoding the same rows up
// front with the sealed quantizer.
func TestFastScanDynamic(t *testing.T) {
	n, dim := 2*fsBlock+7, 32
	all := mathx.NewMatrix(n+40, dim)
	all.FillRandn(mathx.NewRNG(321), 1)
	base := mathx.NewMatrix(n, dim)
	copy(base.Data, all.Data[:n*dim])
	cfg := quant.Config4(quant.PQConfig{M: dim / 8, Ks: 64, Iters: 4, Seed: 5})
	ix, err := NewFastScan(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(ix, 1000)
	for i := n; i < n+40; i++ {
		d.Add(all.Row(i))
	}
	q := all.Row(0)
	idSet := func(stage string) {
		t.Helper()
		res := d.Search(q, n+40)
		if len(res) != n+40 {
			t.Fatalf("%s: exhaustive search returned %d of %d rows", stage, len(res), n+40)
		}
		seen := map[int32]bool{}
		for _, r := range res {
			if r.ID < 0 || int(r.ID) >= n+40 || seen[r.ID] {
				t.Fatalf("%s: bad or duplicate id %d", stage, r.ID)
			}
			seen[r.ID] = true
		}
	}
	idSet("pre-compact")
	d.Compact()
	idSet("post-compact")
	if ix.Len() != n+40 {
		t.Fatalf("base holds %d rows after compaction, want %d", ix.Len(), n+40)
	}

	// The compacted blocks must match a from-scratch encode of all rows
	// with the same sealed quantizer.
	want := &FastScan{pq: ix.pq, n: 0, blocks: nil}
	for i := 0; i < n+40; i++ {
		want.appendRow(all.Row(i))
	}
	if !bytes.Equal(want.blocks, ix.blocks) {
		t.Fatal("compacted blocks diverge from a from-scratch encode")
	}
}

// TestFastScanSlice asserts Slice extracts rows with rebased ids and
// identical codes.
func TestFastScanSlice(t *testing.T) {
	ix, _ := buildFastScan(t, 4*fsBlock+21, 32, 55)
	for _, bounds := range [][2]int{{0, ix.n}, {0, 10}, {17, 3 * fsBlock}, {fsBlock, fsBlock}, {ix.n - 5, ix.n}} {
		lo, hi := bounds[0], bounds[1]
		sl, err := ix.Slice(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if sl.Len() != hi-lo {
			t.Fatalf("slice [%d,%d) has %d rows", lo, hi, sl.Len())
		}
		nibFull, nibSl := make([]byte, ix.pq.M), make([]byte, ix.pq.M)
		for i := lo; i < hi; i++ {
			ix.rowNibbles(i, nibFull)
			sl.rowNibbles(i-lo, nibSl)
			if !bytes.Equal(nibFull, nibSl) {
				t.Fatalf("slice [%d,%d): row %d codes diverge", lo, hi, i)
			}
		}
	}
	if _, err := ix.Slice(-1, 3); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := ix.Slice(5, ix.n+1); err == nil {
		t.Fatal("hi past n accepted")
	}
}

// TestFastScanFromParts round-trips the persistence seam and asserts the
// validators reject corrupted artifacts.
func TestFastScanFromParts(t *testing.T) {
	ix, data := buildFastScan(t, 3*fsBlock+11, 32, 42)
	re, err := NewFastScanFromParts(ix.Quantizer(), ix.Blocks(), ix.Len())
	if err != nil {
		t.Fatal(err)
	}
	q := data.Row(1)
	sameResults(t, "from-parts", ix.Search(q, 10), re.Search(q, 10))

	if _, err := NewFastScanFromParts(ix.pq, ix.blocks[:len(ix.blocks)-1], ix.n); err == nil {
		t.Fatal("truncated blocks accepted")
	}
	bad := bytes.Clone(ix.blocks)
	bad[len(bad)-1] = 0xff // padding row of the final partial block
	if _, err := NewFastScanFromParts(ix.pq, bad, ix.n); err == nil {
		t.Fatal("non-zero padding accepted")
	}
	odd := *ix.pq
	odd.M = 15
	if _, err := NewFastScanFromParts(&odd, ix.blocks, ix.n); err == nil {
		t.Fatal("odd-M quantizer accepted")
	}
}

// TestFastScanRejectsWrongKs asserts construction refuses 8-bit configs.
func TestFastScanRejectsWrongKs(t *testing.T) {
	data := mathx.NewMatrix(64, 32)
	data.FillRandn(mathx.NewRNG(1), 1)
	if _, err := NewFastScan(data, quant.PQConfig{M: 4, Ks: 64, Iters: 2, Seed: 1}); err == nil {
		t.Fatal("8-bit config accepted")
	}
}
