package index

import (
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// FuzzScanEquivalence asserts that every decomposition of the ADC scan —
// the blocked early-abandoning scan and the sharded per-range scans merged
// in shard order — returns bit-identical results to the plain per-code
// loop, for arbitrary code counts, sub-quantizer shapes, k, and shard
// counts. Distance tables are drawn from a small integer alphabet when
// tieMod is nonzero, so exact distance ties (the hard case for top-k
// equivalence) dominate the search space.
func FuzzScanEquivalence(f *testing.F) {
	f.Add(uint16(1), uint8(1), uint8(1), uint16(1), uint8(1), uint64(0), uint8(0))
	f.Add(uint16(300), uint8(8), uint8(31), uint16(10), uint8(4), uint64(7), uint8(3))
	f.Add(uint16(777), uint8(3), uint8(63), uint16(300), uint8(7), uint64(42), uint8(1))
	f.Add(uint16(512), uint8(12), uint8(15), uint16(5), uint8(2), uint64(99), uint8(0))
	f.Fuzz(func(t *testing.T, nRaw uint16, mRaw, ksRaw uint8, kRaw uint16, shardsRaw uint8, seed uint64, tieMod uint8) {
		n := int(nRaw)%1500 + 1
		m := int(mRaw)%12 + 1
		ks := int(ksRaw)%64 + 1
		k := int(kRaw)%320 + 1
		shards := int(shardsRaw)%9 + 1

		rng := mathx.NewRNG(seed)
		table := make([]float32, m*ks)
		for i := range table {
			if tieMod == 0 {
				// Continuous non-negative distances (ties still possible
				// through summation, just rare).
				table[i] = rng.Float32()
			} else {
				// Tiny integer alphabet: most candidate distances collide.
				table[i] = float32(rng.Intn(int(tieMod)%4 + 1))
			}
		}
		codes := make([]byte, n*m)
		for i := range codes {
			codes[i] = byte(rng.Intn(ks))
		}
		ix := &PQ{pq: &quant.ProductQuantizer{D: m, M: m, Ks: ks, Dsub: 1}, codes: codes, n: n}

		plain := newTopK(k)
		ix.scanPlain(table, plain)
		want := plain.sorted()

		blocked := newTopK(k)
		var dists [scanBlock]float32
		ix.scanBlocked(table, blocked, &dists)
		got := blocked.sorted()
		if len(want) != len(got) {
			t.Fatalf("blocked: %d vs %d results", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("blocked diverges at %d: %+v vs %+v", i, want[i], got[i])
			}
		}

		sh, err := NewSharded(ix, shards, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := GetScratch()
		merged := sh.scanMerged(s, table, k)
		PutScratch(s)
		if len(want) != len(merged) {
			t.Fatalf("sharded: %d vs %d results", len(want), len(merged))
		}
		for i := range want {
			if want[i] != merged[i] {
				t.Fatalf("sharded merge diverges at %d (shards=%d): %+v vs %+v",
					i, shards, want[i], merged[i])
			}
		}
	})
}
