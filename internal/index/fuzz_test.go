package index

import (
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// FuzzScanEquivalence asserts that every decomposition of the ADC scan —
// the blocked early-abandoning scan and the sharded per-range scans merged
// in shard order — returns bit-identical results to the plain per-code
// loop, for arbitrary code counts, sub-quantizer shapes, k, and shard
// counts. Distance tables are drawn from a small integer alphabet when
// tieMod is nonzero, so exact distance ties (the hard case for top-k
// equivalence) dominate the search space.
// syntheticFastScan builds a fast-scan index directly from arbitrary
// nibble codes (n rows × m4 codes, each < ks ≤ 16) with a fake trained
// quantizer of Dsub=1 — no k-means, so fuzzers control the codes exactly.
func syntheticFastScan(nib []byte, m4, ks, n int) *FastScan {
	cbs := make([]*mathx.Matrix, m4)
	for m := range cbs {
		cbs[m] = mathx.NewMatrix(ks, 1)
	}
	pq := &quant.ProductQuantizer{D: m4, M: m4, Ks: quant.Ks4, Dsub: 1, Codebooks: cbs}
	return &FastScan{pq: pq, blocks: interleave4(nib, m4, n), n: n}
}

// FuzzInterleave4RoundTrip locks down the block-interleaved 4-bit layout:
// interleave4 followed by deinterleave4 is the identity on nibble codes,
// and the padding rows of the final partial block stay zero.
func FuzzInterleave4RoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint64(0))
	f.Add(uint8(33), uint8(4), uint64(7))
	f.Add(uint8(96), uint8(8), uint64(42))
	f.Fuzz(func(t *testing.T, nRaw, m4Raw uint8, seed uint64) {
		n := int(nRaw)%200 + 1
		m4 := (int(m4Raw)%8 + 1) * 2
		rng := mathx.NewRNG(seed)
		nib := make([]byte, n*m4)
		for i := range nib {
			nib[i] = byte(rng.Intn(quant.Ks4))
		}
		blocks := interleave4(nib, m4, n)
		if len(blocks) != fsBlocksLen(m4, n) {
			t.Fatalf("interleave4(%d rows, M=%d) = %d bytes, want %d", n, m4, len(blocks), fsBlocksLen(m4, n))
		}
		back := deinterleave4(blocks, m4, n)
		for i := range nib {
			if nib[i] != back[i] {
				t.Fatalf("round trip diverges at nibble %d: %d vs %d", i, nib[i], back[i])
			}
		}
		// Padding rows must read back zero (the layout's persistence
		// validator depends on it).
		padded := (n + fsBlock - 1) / fsBlock * fsBlock
		pad := deinterleave4(blocks, m4, padded)
		for i := n * m4; i < len(pad); i++ {
			if pad[i] != 0 {
				t.Fatalf("padding nibble %d = %d, want 0", i, pad[i])
			}
		}
	})
}

// FuzzFastScanEquivalence asserts the quantized early-abandoning fast-scan
// kernel returns bit-identical results to the plain float32 scan of the
// same 4-bit codes, for arbitrary shapes, k, shard counts, and tie-heavy
// integer distance tables (where the quantized prune must over-admit on
// exact ties, never drop).
func FuzzFastScanEquivalence(f *testing.F) {
	f.Add(uint16(1), uint8(1), uint8(1), uint16(1), uint8(1), uint64(0), uint8(0))
	f.Add(uint16(200), uint8(4), uint8(15), uint16(10), uint8(4), uint64(7), uint8(3))
	f.Add(uint16(700), uint8(2), uint8(7), uint16(250), uint8(7), uint64(42), uint8(1))
	f.Add(uint16(96), uint8(6), uint8(3), uint16(5), uint8(2), uint64(99), uint8(0))
	f.Fuzz(func(t *testing.T, nRaw uint16, m4Raw, ksRaw uint8, kRaw uint16, shardsRaw uint8, seed uint64, tieMod uint8) {
		n := int(nRaw)%1200 + 1
		m4 := (int(m4Raw)%6 + 1) * 2
		ks := int(ksRaw)%quant.Ks4 + 1
		k := int(kRaw)%300 + 1
		shards := int(shardsRaw)%9 + 1

		rng := mathx.NewRNG(seed)
		nib := make([]byte, n*m4)
		for i := range nib {
			nib[i] = byte(rng.Intn(ks))
		}
		ix := syntheticFastScan(nib, m4, ks, n)
		table := make([]float32, m4*quant.Ks4)
		for m := 0; m < m4; m++ {
			for c := 0; c < ks; c++ {
				if tieMod == 0 {
					table[m*quant.Ks4+c] = rng.Float32()
				} else {
					table[m*quant.Ks4+c] = float32(rng.Intn(int(tieMod)%4 + 1))
				}
			}
		}

		plain := newTopK(k)
		ix.scanPlain4(table, plain)
		want := plain.sorted()

		s := GetScratch()
		fast := newTopK(k)
		ix.scanRange(table, s, fast, 0, n)
		got := fast.sorted()
		if len(want) != len(got) {
			t.Fatalf("fast-scan: %d vs %d results", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("fast-scan diverges at %d: %+v vs %+v", i, want[i], got[i])
			}
		}

		sh, err := NewSharded(ix, shards, 2)
		if err != nil {
			t.Fatal(err)
		}
		merged := sh.scanMerged(s, table, k)
		PutScratch(s)
		if len(want) != len(merged) {
			t.Fatalf("sharded: %d vs %d results", len(want), len(merged))
		}
		for i := range want {
			if want[i] != merged[i] {
				t.Fatalf("sharded fast-scan diverges at %d (shards=%d): %+v vs %+v",
					i, shards, want[i], merged[i])
			}
		}
	})
}

func FuzzScanEquivalence(f *testing.F) {
	f.Add(uint16(1), uint8(1), uint8(1), uint16(1), uint8(1), uint64(0), uint8(0))
	f.Add(uint16(300), uint8(8), uint8(31), uint16(10), uint8(4), uint64(7), uint8(3))
	f.Add(uint16(777), uint8(3), uint8(63), uint16(300), uint8(7), uint64(42), uint8(1))
	f.Add(uint16(512), uint8(12), uint8(15), uint16(5), uint8(2), uint64(99), uint8(0))
	f.Fuzz(func(t *testing.T, nRaw uint16, mRaw, ksRaw uint8, kRaw uint16, shardsRaw uint8, seed uint64, tieMod uint8) {
		n := int(nRaw)%1500 + 1
		m := int(mRaw)%12 + 1
		ks := int(ksRaw)%64 + 1
		k := int(kRaw)%320 + 1
		shards := int(shardsRaw)%9 + 1

		rng := mathx.NewRNG(seed)
		table := make([]float32, m*ks)
		for i := range table {
			if tieMod == 0 {
				// Continuous non-negative distances (ties still possible
				// through summation, just rare).
				table[i] = rng.Float32()
			} else {
				// Tiny integer alphabet: most candidate distances collide.
				table[i] = float32(rng.Intn(int(tieMod)%4 + 1))
			}
		}
		codes := make([]byte, n*m)
		for i := range codes {
			codes[i] = byte(rng.Intn(ks))
		}
		ix := &PQ{pq: &quant.ProductQuantizer{D: m, M: m, Ks: ks, Dsub: 1}, codes: codes, n: n}

		plain := newTopK(k)
		ix.scanPlain(table, plain)
		want := plain.sorted()

		blocked := newTopK(k)
		var dists [scanBlock]float32
		ix.scanBlocked(table, blocked, &dists)
		got := blocked.sorted()
		if len(want) != len(got) {
			t.Fatalf("blocked: %d vs %d results", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("blocked diverges at %d: %+v vs %+v", i, want[i], got[i])
			}
		}

		sh, err := NewSharded(ix, shards, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := GetScratch()
		merged := sh.scanMerged(s, table, k)
		PutScratch(s)
		if len(want) != len(merged) {
			t.Fatalf("sharded: %d vs %d results", len(want), len(merged))
		}
		for i := range want {
			if want[i] != merged[i] {
				t.Fatalf("sharded merge diverges at %d (shards=%d): %+v vs %+v",
					i, shards, want[i], merged[i])
			}
		}
	})
}
