// Package index implements the similarity-search substrate of Section
// III-C/D — the reproduction's FAISS: an exact flat index, a
// product-quantized index with ADC scanning, and an IVF (inverted-file)
// variant with a coarse quantizer. BatchSearch fans a query batch across
// all CPU cores; that parallel mode is this reproduction's stand-in for the
// paper's GPU acceleration (a GPU is a data-parallel device, and the GPU
// columns of the paper's tables measure exactly this batched regime).
package index

import (
	"runtime"
	"sort"
	"sync"

	"emblookup/internal/mathx"
)

// Result is one nearest neighbor: the row id of the stored vector and its
// (possibly approximate) squared L2 distance to the query.
type Result struct {
	ID   int32
	Dist float32
}

// Index is a k-nearest-neighbor index over fixed vectors.
type Index interface {
	// Search returns the k nearest stored vectors to q, nearest first.
	Search(q []float32, k int) []Result
	// Len returns the number of stored vectors.
	Len() int
	// Dim returns the vector dimensionality.
	Dim() int
	// SizeBytes returns the approximate storage the index needs for its
	// vector payload (codes or raw floats), excluding codebooks.
	SizeBytes() int
}

// BatchSearch runs Search for every query using `parallelism` goroutines
// (≤0 means GOMAXPROCS). Results align with the query order.
func BatchSearch(ix Index, queries [][]float32, k, parallelism int) [][]Result {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	out := make([][]Result, len(queries))
	if parallelism <= 1 {
		for i, q := range queries {
			out[i] = ix.Search(q, k)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int, len(queries))
	for i := range queries {
		next <- i
	}
	close(next)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = ix.Search(queries[i], k)
			}
		}()
	}
	wg.Wait()
	return out
}

// topK maintains the k smallest distances seen, as a bounded max-heap.
type topK struct {
	k    int
	heap []Result // max-heap on Dist
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) push(id int32, dist float32) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Result{ID: id, Dist: dist})
		t.up(len(t.heap) - 1)
		return
	}
	if dist >= t.heap[0].Dist {
		return
	}
	t.heap[0] = Result{ID: id, Dist: dist}
	t.down(0)
}

// worst returns the current k-th distance, or +inf while underfull.
func (t *topK) worst() float32 {
	if len(t.heap) < t.k {
		return float32(3.4e38)
	}
	return t.heap[0].Dist
}

func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *topK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

// sorted extracts the results nearest-first.
func (t *topK) sorted() []Result {
	out := append([]Result(nil), t.heap...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Flat is the exact brute-force index: it stores the raw vectors and scans
// them all per query. It is the ground truth the approximate indexes are
// measured against (Figure 4).
type Flat struct {
	data *mathx.Matrix
}

// NewFlat builds a flat index over the rows of data. The matrix is retained,
// not copied.
func NewFlat(data *mathx.Matrix) *Flat { return &Flat{data: data} }

// Len returns the number of stored vectors.
func (f *Flat) Len() int { return f.data.Rows }

// Dim returns the vector dimensionality.
func (f *Flat) Dim() int { return f.data.Cols }

// SizeBytes returns the raw float storage cost.
func (f *Flat) SizeBytes() int { return f.data.Rows * f.data.Cols * 4 }

// Search scans every stored vector.
func (f *Flat) Search(q []float32, k int) []Result {
	if k <= 0 {
		return nil
	}
	t := newTopK(k)
	for i := 0; i < f.data.Rows; i++ {
		t.push(int32(i), mathx.SquaredL2(q, f.data.Row(i)))
	}
	return t.sorted()
}

// Reconstruct returns the stored vector for id (shared storage).
func (f *Flat) Reconstruct(id int32) []float32 { return f.data.Row(int(id)) }
