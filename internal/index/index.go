// Package index implements the similarity-search substrate of Section
// III-C/D — the reproduction's FAISS: an exact flat index, a
// product-quantized index with ADC scanning, and an IVF (inverted-file)
// variant with a coarse quantizer. BatchSearch fans a query batch across
// all CPU cores; that parallel mode is this reproduction's stand-in for the
// paper's GPU acceleration (a GPU is a data-parallel device, and the GPU
// columns of the paper's tables measure exactly this batched regime).
package index

import (
	"slices"

	"emblookup/internal/mathx"
	"emblookup/internal/par"
)

// Result is one nearest neighbor: the row id of the stored vector and its
// (possibly approximate) squared L2 distance to the query.
type Result struct {
	ID   int32
	Dist float32
}

// Index is a k-nearest-neighbor index over fixed vectors.
type Index interface {
	// Search returns the k nearest stored vectors to q, nearest first.
	Search(q []float32, k int) []Result
	// Len returns the number of stored vectors.
	Len() int
	// Dim returns the vector dimensionality.
	Dim() int
	// SizeBytes returns the approximate storage the index needs for its
	// vector payload (codes or raw floats), excluding codebooks.
	SizeBytes() int
}

// BatchSearcher is implemented by indexes with a batch execution strategy
// better than query-at-a-time (Sharded scans a batch shard-major for
// locality); BatchSearch delegates to it when present.
type BatchSearcher interface {
	// SearchBatch is BatchSearch with the index's own scheduling. Results
	// align with the query order and are identical to per-query Search.
	SearchBatch(queries [][]float32, k, parallelism int) [][]Result
}

// BatchSearch runs Search for every query using `parallelism` goroutines
// (≤0 means GOMAXPROCS). Results align with the query order. When the index
// supports it, every worker owns one Scratch for the whole batch, so the
// scan's working memory is amortized to zero allocations per query. Indexes
// that implement BatchSearcher take over the whole batch with their own
// scheduling.
func BatchSearch(ix Index, queries [][]float32, k, parallelism int) [][]Result {
	if bs, ok := ix.(BatchSearcher); ok {
		return bs.SearchBatch(queries, k, parallelism)
	}
	out := make([][]Result, len(queries))
	ss, ok := ix.(ScratchSearcher)
	if !ok {
		par.ForEach(len(queries), parallelism, func(i int) {
			out[i] = ix.Search(queries[i], k)
		})
		return out
	}
	as, appendable := ix.(AppendSearcher)
	appendable = appendable && k > 0
	var flat []Result
	if appendable {
		// One flat array backs every query's results: slot i appends into
		// its capacity-clipped cap-k window, so the batch's result slices
		// cost one allocation.
		flat = make([]Result, len(queries)*k)
	}
	scratches := make([]*Scratch, par.Workers(len(queries), parallelism))
	par.ForEachWorker(len(queries), parallelism, func(w, i int) {
		s := scratches[w]
		if s == nil {
			s = GetScratch()
			scratches[w] = s
		}
		if appendable {
			out[i] = as.SearchAppendWith(s, queries[i], k, flat[i*k:i*k:(i+1)*k])
		} else {
			out[i] = ss.SearchWith(s, queries[i], k)
		}
	})
	for _, s := range scratches {
		if s != nil {
			PutScratch(s)
		}
	}
	return out
}

// worse reports whether a ranks strictly after b in the canonical result
// order: larger distance is worse, ties broken toward the larger ID. Because
// this order is total, the top-k selection is a pure function of the
// candidate (Dist, ID) multiset — independent of push order — which is what
// lets the sharded scan merge per-shard heaps and still return bit-identical
// results to the single full scan (see DESIGN.md §7).
func worse(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// topK maintains the k canonically-smallest results seen, as a bounded
// max-heap under the `worse` order.
type topK struct {
	k    int
	heap []Result // max-heap under worse()
}

func newTopK(k int) *topK { return &topK{k: k} }

// reset prepares a reused topK for a fresh search, keeping the heap's
// backing array.
func (t *topK) reset(k int) {
	t.k = k
	t.heap = t.heap[:0]
}

func (t *topK) push(id int32, dist float32) {
	r := Result{ID: id, Dist: dist}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, r)
		t.up(len(t.heap) - 1)
		return
	}
	if !worse(t.heap[0], r) {
		return
	}
	t.heap[0] = r
	t.down(0)
}

// worst returns the current k-th distance, or +inf while underfull. A
// candidate with a strictly larger distance can never enter the heap; one
// with an equal distance still can (it may win the ID tie-break), so
// early-abandon checks against worst must be strict.
func (t *topK) worst() float32 {
	if len(t.heap) < t.k {
		return float32(3.4e38)
	}
	return t.heap[0].Dist
}

func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *topK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse(t.heap[l], t.heap[largest]) {
			largest = l
		}
		if r < n && worse(t.heap[r], t.heap[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

// sorted extracts the results nearest-first into a fresh slice.
func (t *topK) sorted() []Result {
	return t.appendSorted(nil)
}

// appendSorted extracts the results nearest-first into dst[:0], reusing its
// backing array when possible.
func (t *topK) appendSorted(dst []Result) []Result {
	if dst == nil {
		dst = make([]Result, 0, len(t.heap))
	}
	dst = append(dst[:0], t.heap...)
	sortResults(dst)
	return dst
}

func sortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// Flat is the exact brute-force index: it stores the raw vectors and scans
// them all per query. It is the ground truth the approximate indexes are
// measured against (Figure 4).
type Flat struct {
	data *mathx.Matrix
}

// NewFlat builds a flat index over the rows of data. The matrix is retained,
// not copied.
func NewFlat(data *mathx.Matrix) *Flat { return &Flat{data: data} }

// Len returns the number of stored vectors.
func (f *Flat) Len() int { return f.data.Rows }

// Dim returns the vector dimensionality.
func (f *Flat) Dim() int { return f.data.Cols }

// SizeBytes returns the raw float storage cost.
func (f *Flat) SizeBytes() int { return f.data.Rows * f.data.Cols * 4 }

// Search scans every stored vector. It is a thin wrapper over SearchWith
// with pooled scratch, so steady-state calls only allocate the result.
func (f *Flat) Search(q []float32, k int) []Result {
	s := GetScratch()
	defer PutScratch(s)
	return f.SearchWith(s, q, k)
}

// SearchWith implements ScratchSearcher: the top-k heap is reused from s.
func (f *Flat) SearchWith(s *Scratch, q []float32, k int) []Result {
	return f.SearchAppendWith(s, q, k, nil)
}

// SearchAppendWith implements AppendSearcher: results land in dst[:0].
func (f *Flat) SearchAppendWith(s *Scratch, q []float32, k int, dst []Result) []Result {
	if k <= 0 {
		return dst[:0]
	}
	t := &s.res
	t.reset(k)
	f.scanRange(q, s, t, 0, f.data.Rows)
	return t.appendSorted(dst)
}

// prepareScan implements rangeScanner: an exact scan needs no per-query
// precomputation, so the shared state is the query itself.
func (f *Flat) prepareScan(_ *Scratch, q []float32) []float32 { return q }

// scanRange implements rangeScanner: the brute-force scan restricted to
// stored rows [lo, hi).
func (f *Flat) scanRange(q []float32, _ *Scratch, t *topK, lo, hi int) {
	for i := lo; i < hi; i++ {
		t.push(int32(i), mathx.SquaredL2(q, f.data.Row(i)))
	}
}

// Reconstruct returns the stored vector for id (shared storage).
func (f *Flat) Reconstruct(id int32) []float32 { return f.data.Row(int(id)) }
