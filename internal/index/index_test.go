package index

import (
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

func randomData(n, d int, seed uint64) *mathx.Matrix {
	m := mathx.NewMatrix(n, d)
	m.FillRandn(mathx.NewRNG(seed), 1)
	return m
}

func TestFlatExactness(t *testing.T) {
	data := randomData(200, 8, 1)
	ix := NewFlat(data)
	q := data.Row(17)
	res := ix.Search(q, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].ID != 17 || res[0].Dist != 0 {
		t.Fatalf("self not first: %+v", res[0])
	}
	// Distances non-decreasing.
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestFlatMatchesBruteForce(t *testing.T) {
	data := randomData(150, 6, 2)
	ix := NewFlat(data)
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		q := make([]float32, 6)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		res := ix.Search(q, 10)
		// Verify against full scan.
		var bestID int32
		best := float32(3.4e38)
		for i := 0; i < data.Rows; i++ {
			if d := mathx.SquaredL2(q, data.Row(i)); d < best {
				best, bestID = d, int32(i)
			}
		}
		if res[0].ID != bestID {
			t.Fatalf("nearest mismatch: %d vs %d", res[0].ID, bestID)
		}
	}
}

func TestSearchKLargerThanN(t *testing.T) {
	data := randomData(5, 4, 4)
	res := NewFlat(data).Search(data.Row(0), 50)
	if len(res) != 5 {
		t.Fatalf("got %d results for k>n", len(res))
	}
}

func TestSearchKZero(t *testing.T) {
	data := randomData(5, 4, 5)
	if res := NewFlat(data).Search(data.Row(0), 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestPQIndexRecall(t *testing.T) {
	data := randomData(1000, 16, 6)
	flat := NewFlat(data)
	pqIx, err := NewPQ(data, quant.PQConfig{M: 4, Ks: 64, Iters: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if pqIx.SizeBytes() != 1000*4 {
		t.Fatalf("PQ payload = %d bytes", pqIx.SizeBytes())
	}
	// recall@10 against exact search must be reasonable on random data.
	rng := mathx.NewRNG(8)
	hits, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		q := make([]float32, 16)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		truth := map[int32]bool{}
		for _, r := range flat.Search(q, 10) {
			truth[r.ID] = true
		}
		for _, r := range pqIx.Search(q, 10) {
			if truth[r.ID] {
				hits++
			}
			total++
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.3 {
		t.Fatalf("PQ recall@10 = %.2f, too low", recall)
	}
}

func TestPQReconstructApproximates(t *testing.T) {
	data := randomData(300, 8, 9)
	pqIx, err := NewPQ(data, quant.PQConfig{M: 4, Ks: 64, Iters: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	for i := 0; i < 100; i++ {
		rec := pqIx.Reconstruct(int32(i))
		errSum += float64(mathx.SquaredL2(data.Row(i), rec))
	}
	// 8 dims of unit gaussian: per-vector squared norm ≈ 8.
	if errSum/100 > 4 {
		t.Fatalf("PQ reconstruction error %.2f too large", errSum/100)
	}
}

func TestIVFFlatFindsSelf(t *testing.T) {
	data := randomData(500, 8, 11)
	ix, err := NewIVF(data, IVFConfig{NList: 16, NProbe: 16, Iters: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// With nprobe = nlist the search is exhaustive, so self must be found.
	for i := 0; i < 50; i++ {
		res := ix.Search(data.Row(i), 1)
		if len(res) != 1 || res[0].ID != int32(i) {
			t.Fatalf("IVF full-probe missed self for %d: %+v", i, res)
		}
	}
}

func TestIVFProbeTradeoff(t *testing.T) {
	data := randomData(800, 8, 13)
	flat := NewFlat(data)
	recallAt := func(nprobe int) float64 {
		ix, err := NewIVF(data, IVFConfig{NList: 32, NProbe: nprobe, Iters: 8, Seed: 14})
		if err != nil {
			t.Fatal(err)
		}
		rng := mathx.NewRNG(15)
		hits, total := 0, 0
		for trial := 0; trial < 30; trial++ {
			q := make([]float32, 8)
			for i := range q {
				q[i] = float32(rng.NormFloat64())
			}
			truth := map[int32]bool{}
			for _, r := range flat.Search(q, 5) {
				truth[r.ID] = true
			}
			for _, r := range ix.Search(q, 5) {
				if truth[r.ID] {
					hits++
				}
				total++
			}
		}
		return float64(hits) / float64(total)
	}
	low := recallAt(1)
	high := recallAt(32)
	if high < 0.99 {
		t.Fatalf("full-probe IVF recall = %.2f, want ~1", high)
	}
	if low > high {
		t.Fatalf("recall should not decrease with more probes: %.2f vs %.2f", low, high)
	}
}

func TestIVFPQ(t *testing.T) {
	data := randomData(600, 16, 16)
	pqCfg := quant.PQConfig{M: 4, Ks: 32, Iters: 8, Seed: 17}
	ix, err := NewIVF(data, IVFConfig{NList: 16, NProbe: 16, PQ: &pqCfg, Iters: 8, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() != 600*4 {
		t.Fatalf("IVF-PQ payload = %d", ix.SizeBytes())
	}
	// Self should usually be within top-5 under quantization.
	hits := 0
	for i := 0; i < 100; i++ {
		for _, r := range ix.Search(data.Row(i), 5) {
			if r.ID == int32(i) {
				hits++
				break
			}
		}
	}
	if hits < 70 {
		t.Fatalf("IVF-PQ self-recall@5 = %d/100", hits)
	}
}

func TestBatchSearchMatchesSequential(t *testing.T) {
	data := randomData(300, 8, 19)
	ix := NewFlat(data)
	rng := mathx.NewRNG(20)
	queries := make([][]float32, 64)
	for i := range queries {
		q := make([]float32, 8)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		queries[i] = q
	}
	seq := BatchSearch(ix, queries, 5, 1)
	par := BatchSearch(ix, queries, 5, 8)
	for i := range queries {
		if len(seq[i]) != len(par[i]) {
			t.Fatal("result count mismatch")
		}
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("parallel result differs at query %d pos %d", i, j)
			}
		}
	}
}

func TestBatchSearchEmpty(t *testing.T) {
	ix := NewFlat(randomData(10, 4, 21))
	if out := BatchSearch(ix, nil, 3, 4); len(out) != 0 {
		t.Fatal("empty batch should return empty results")
	}
}

func TestTopKTieBreaksByID(t *testing.T) {
	tk := newTopK(3)
	tk.push(5, 1)
	tk.push(2, 1)
	tk.push(9, 1)
	res := tk.sorted()
	if res[0].ID != 2 || res[1].ID != 5 || res[2].ID != 9 {
		t.Fatalf("tie break wrong: %+v", res)
	}
}

func TestTopKWorst(t *testing.T) {
	tk := newTopK(2)
	if tk.worst() < 1e38 {
		t.Fatal("underfull worst should be +inf-ish")
	}
	tk.push(1, 5)
	tk.push(2, 3)
	if tk.worst() != 5 {
		t.Fatalf("worst = %v", tk.worst())
	}
	tk.push(3, 1) // evicts 5
	if tk.worst() != 3 {
		t.Fatalf("worst after evict = %v", tk.worst())
	}
}
