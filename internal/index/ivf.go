package index

import (
	"fmt"

	"emblookup/internal/mathx"
	"emblookup/internal/par"
	"emblookup/internal/quant"
)

// IVFConfig configures the inverted-file index.
type IVFConfig struct {
	// NList is the number of coarse clusters (inverted lists).
	NList int
	// NProbe is how many nearest lists a query scans. Larger values trade
	// speed for recall.
	NProbe int
	// PQ, when non-nil, stores residual codes instead of raw vectors
	// (IVF-PQ); nil keeps raw vectors in the lists (IVF-Flat).
	PQ    *quant.PQConfig
	Iters int
	Seed  uint64
	// Workers bounds construction parallelism (≤0 = GOMAXPROCS); the built
	// index is bit-identical at any worker count.
	Workers int
	// TrainSample caps the rows the coarse k-means (and the residual PQ's
	// sub-quantizers) train on — see quant.KMeansConfig.TrainSample. List
	// assignment and encoding still cover every row. 0 trains on all rows.
	TrainSample int
}

// DefaultIVFConfig sizes the coarse quantizer as ~sqrt(n) lists probing 8.
func DefaultIVFConfig(n int) IVFConfig {
	nlist := 1
	for nlist*nlist < n {
		nlist++
	}
	if nlist < 4 {
		nlist = 4
	}
	return IVFConfig{NList: nlist, NProbe: 8, Iters: 10, Seed: 53}
}

// IVF is an inverted-file index: a coarse k-means quantizer routes each
// vector to one list; a query scans only the NProbe nearest lists. With the
// optional PQ it stores compressed codes (FAISS's IVFPQ).
type IVF struct {
	coarse *mathx.Matrix // NList × D centroids
	nprobe int
	dim    int
	n      int

	// Raw storage (IVF-Flat): per-list vectors.
	lists   [][]int32     // vector ids per list
	vectors *mathx.Matrix // original data, shared

	// Compressed storage (IVF-PQ).
	pq    *quant.ProductQuantizer
	codes [][]byte // per-list codes, parallel to lists

	// Exact re-rank (IVF-PQ only): when rvecs is set, the ADC pass gathers
	// k×rerank candidates and the final top-k is decided by exact distances
	// against the raw vectors — typically an mmap'd view of the embedding
	// matrix, paged in on demand, so the resident cost stays the code book.
	rerank int
	rvecs  *mathx.Matrix
}

// NewIVF builds an inverted-file index over the rows of data. The coarse
// clustering, residual computation, and per-list encoding all fan across
// cfg.Workers goroutines.
func NewIVF(data *mathx.Matrix, cfg IVFConfig) (*IVF, error) {
	if cfg.NList <= 0 {
		workers := cfg.Workers
		cfg = DefaultIVFConfig(data.Rows)
		cfg.Workers = workers
	}
	cents, assign := quant.KMeans(data, quant.KMeansConfig{K: cfg.NList, MaxIters: cfg.Iters, Seed: cfg.Seed, Workers: cfg.Workers, TrainSample: cfg.TrainSample})
	ix := &IVF{
		coarse: cents,
		nprobe: cfg.NProbe,
		dim:    data.Cols,
		n:      data.Rows,
		lists:  make([][]int32, cfg.NList),
	}
	if ix.nprobe <= 0 {
		ix.nprobe = 1
	}
	for i, c := range assign {
		ix.lists[c] = append(ix.lists[c], int32(i))
	}
	if cfg.PQ == nil {
		ix.vectors = data
		return ix, nil
	}
	// IVF-PQ: quantize the residuals (vector − its coarse centroid), the
	// standard FAISS formulation.
	residuals := mathx.NewMatrix(data.Rows, data.Cols)
	par.ForEach(data.Rows, cfg.Workers, func(i int) {
		r := residuals.Row(i)
		copy(r, data.Row(i))
		cRow := cents.Row(assign[i])
		for j := range r {
			r[j] -= cRow[j]
		}
	})
	pqCfg := *cfg.PQ
	if pqCfg.Workers == 0 {
		pqCfg.Workers = cfg.Workers
	}
	if pqCfg.TrainSample == 0 {
		pqCfg.TrainSample = cfg.TrainSample
	}
	pq, err := quant.TrainPQ(residuals, pqCfg)
	if err != nil {
		return nil, err
	}
	ix.pq = pq
	ix.codes = make([][]byte, cfg.NList)
	par.ForEach(cfg.NList, cfg.Workers, func(li int) {
		ids := ix.lists[li]
		buf := make([]byte, len(ids)*pq.M)
		for j, id := range ids {
			pq.EncodeInto(residuals.Row(int(id)), buf[j*pq.M:(j+1)*pq.M])
		}
		ix.codes[li] = buf
	})
	return ix, nil
}

// SetNProbe adjusts how many coarse lists a query scans, clamped to
// [1, NList] — the runtime recall/latency knob of the nprobe sweep in
// BENCH_scale.json. Not safe to call concurrently with Search.
func (ix *IVF) SetNProbe(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(ix.lists) {
		n = len(ix.lists)
	}
	ix.nprobe = n
}

// SetRerank enables (factor > 1) or disables (factor <= 1) exact re-ranking
// for an IVF-PQ index: the ADC scan over-fetches k×factor candidates and the
// final top-k is decided by exact squared-L2 distances against vectors, which
// must hold the original data row-aligned with the index ids (for an mmap'd
// artifact this is the zero-copy "vectors" section — pages fault in only for
// the few candidate rows each query touches). Not safe to call concurrently
// with Search.
func (ix *IVF) SetRerank(factor int, vectors *mathx.Matrix) error {
	if factor <= 1 || vectors == nil {
		ix.rerank, ix.rvecs = 0, nil
		return nil
	}
	if ix.pq == nil {
		return fmt.Errorf("index: rerank requires IVF-PQ (IVF-Flat distances are already exact)")
	}
	if vectors.Rows != ix.n || vectors.Cols != ix.dim {
		return fmt.Errorf("index: rerank vectors are %dx%d, index is %dx%d", vectors.Rows, vectors.Cols, ix.n, ix.dim)
	}
	ix.rerank, ix.rvecs = factor, vectors
	return nil
}

// Rerank returns the re-rank over-fetch factor and raw-vector matrix, or
// (0, nil) when re-ranking is disabled.
func (ix *IVF) Rerank() (int, *mathx.Matrix) { return ix.rerank, ix.rvecs }

// Len returns the number of stored vectors.
func (ix *IVF) Len() int { return ix.n }

// Dim returns the vector dimensionality.
func (ix *IVF) Dim() int { return ix.dim }

// SizeBytes returns the payload storage cost.
func (ix *IVF) SizeBytes() int {
	if ix.pq == nil {
		return ix.n * ix.dim * 4
	}
	return ix.n * ix.pq.M
}

// Search probes the nprobe nearest coarse lists. It is a thin wrapper over
// SearchWith with pooled scratch.
func (ix *IVF) Search(q []float32, k int) []Result {
	s := GetScratch()
	defer PutScratch(s)
	return ix.SearchWith(s, q, k)
}

// SearchWith implements ScratchSearcher: the probe ranking, residual
// vector, ADC table, and top-k heap are all reused from s.
func (ix *IVF) SearchWith(s *Scratch, q []float32, k int) []Result {
	return ix.SearchAppendWith(s, q, k, nil)
}

// SearchAppendWith implements AppendSearcher: results land in dst[:0].
func (ix *IVF) SearchAppendWith(s *Scratch, q []float32, k int, dst []Result) []Result {
	if k <= 0 {
		return dst[:0]
	}
	// Rank coarse centroids.
	probes := &s.probes
	probes.reset(ix.nprobe)
	for c := 0; c < ix.coarse.Rows; c++ {
		probes.push(int32(c), mathx.SquaredL2(q, ix.coarse.Row(c)))
	}
	s.probeBuf = probes.appendSorted(s.probeBuf)
	// With re-ranking on, the ADC pass over-fetches into the probe heap
	// (free once probeBuf holds the ranking) and the exact pass below
	// decides the final order; otherwise ADC order is final.
	rerank := ix.pq != nil && ix.rvecs != nil && ix.rerank > 1
	t := &s.res
	if rerank {
		t = probes
		t.reset(k * ix.rerank)
	} else {
		t.reset(k)
	}
	for _, pr := range s.probeBuf {
		li := int(pr.ID)
		if ix.pq == nil {
			for _, id := range ix.lists[li] {
				t.push(id, mathx.SquaredL2(q, ix.vectors.Row(int(id))))
			}
			continue
		}
		// ADC on residual: table built from (q − centroid).
		res := mathx.Resize(s.residual, ix.dim)
		s.residual = res
		cRow := ix.coarse.Row(li)
		for j := range res {
			res[j] = q[j] - cRow[j]
		}
		s.table = mathx.Resize(s.table, ix.pq.M*ix.pq.Ks)
		ix.pq.ADCTableInto(res, s.table)
		table := s.table
		m, ks := ix.pq.M, ix.pq.Ks
		buf := ix.codes[li]
		for j, id := range ix.lists[li] {
			code := buf[j*m : (j+1)*m]
			var d float32
			for b := 0; b < m; b++ {
				d += table[b*ks+int(code[b])]
			}
			t.push(id, d)
		}
	}
	if !rerank {
		return t.appendSorted(dst)
	}
	// Exact re-rank: true distances over the ADC candidates, pushed through
	// a fresh top-k under the canonical (Dist, ID) order — deterministic
	// regardless of the ADC pass's candidate order.
	final := &s.res
	final.reset(k)
	for _, r := range t.heap {
		final.push(r.ID, mathx.SquaredL2(q, ix.rvecs.Row(int(r.ID))))
	}
	return final.appendSorted(dst)
}
