package index

import (
	"fmt"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// This file is the persistence seam of the package: accessors that
// decompose a built index into plain matrices, code arrays, and list
// structures, and from-parts constructors that reassemble one without
// re-running k-means or re-encoding a single row. The model serializer
// (internal/core) gob-encodes the parts; reassembly validates every shape
// so a truncated or mismatched artifact fails loudly instead of
// mis-indexing. All returned slices and matrices are shared with the
// index, not copied.

// Vectors exposes the stored vector matrix.
func (f *Flat) Vectors() *mathx.Matrix { return f.data }

// Codes exposes the flattened n×M code array.
func (ix *PQ) Codes() []byte { return ix.codes }

// NewPQFromParts reassembles a PQ index from a trained quantizer and a
// previously encoded code array (len(codes) must be a multiple of q.M).
func NewPQFromParts(q *quant.ProductQuantizer, codes []byte) (*PQ, error) {
	if err := validateQuantizer(q); err != nil {
		return nil, err
	}
	if len(codes)%q.M != 0 {
		return nil, fmt.Errorf("index: code array length %d not a multiple of M=%d", len(codes), q.M)
	}
	if err := validateCodes(q, codes); err != nil {
		return nil, err
	}
	return &PQ{pq: q, codes: codes, n: len(codes) / q.M}, nil
}

// Blocks exposes the block-interleaved 4-bit code array.
func (ix *FastScan) Blocks() []byte { return ix.blocks }

// NewFastScanFromParts reassembles a fast-scan index from a trained 4-bit
// quantizer, its block-interleaved code array, and the row count. Every
// nibble is validated: live rows must reference trained centroids and the
// padding rows of the final partial block must be zero.
func NewFastScanFromParts(q *quant.ProductQuantizer, blocks []byte, n int) (*FastScan, error) {
	if err := validateQuantizer(q); err != nil {
		return nil, err
	}
	if err := validate4(q); err != nil {
		return nil, err
	}
	if n < 0 || len(blocks) != fsBlocksLen(q.M, n) {
		return nil, fmt.Errorf("index: fast-scan block array length %d for %d rows (want %d)", len(blocks), n, fsBlocksLen(q.M, n))
	}
	ix := &FastScan{pq: q, blocks: blocks, n: n, shared: true}
	nib := make([]byte, q.M)
	rows := (n + fsBlock - 1) / fsBlock * fsBlock
	for i := 0; i < rows; i++ {
		ix.rowNibbles(i, nib)
		for m, c := range nib {
			if i >= n {
				if c != 0 {
					return nil, fmt.Errorf("index: fast-scan padding row %d holds non-zero nibble %d", i, c)
				}
				continue
			}
			if int(c) >= q.Codebooks[m].Rows {
				return nil, fmt.Errorf("index: fast-scan row %d references centroid %d of codebook %d (trained %d)", i, c, m, q.Codebooks[m].Rows)
			}
		}
	}
	return ix, nil
}

// Coarse exposes the NList×D coarse centroid matrix.
func (ix *IVF) Coarse() *mathx.Matrix { return ix.coarse }

// NProbe returns how many coarse lists a query scans.
func (ix *IVF) NProbe() int { return ix.nprobe }

// Lists exposes the per-list vector ids.
func (ix *IVF) Lists() [][]int32 { return ix.lists }

// ListCodes exposes the per-list residual codes (nil for IVF-Flat).
func (ix *IVF) ListCodes() [][]byte { return ix.codes }

// Quantizer exposes the residual product quantizer (nil for IVF-Flat).
func (ix *IVF) Quantizer() *quant.ProductQuantizer { return ix.pq }

// Vectors exposes the raw vector matrix (nil for IVF-PQ).
func (ix *IVF) Vectors() *mathx.Matrix { return ix.vectors }

// NewIVFFromParts reassembles an inverted-file index. For IVF-Flat pass the
// vector matrix and a nil quantizer; for IVF-PQ pass the trained residual
// quantizer plus per-list codes and a nil matrix.
func NewIVFFromParts(coarse *mathx.Matrix, nprobe int, lists [][]int32, vectors *mathx.Matrix, pq *quant.ProductQuantizer, codes [][]byte) (*IVF, error) {
	if coarse == nil || coarse.Rows == 0 {
		return nil, fmt.Errorf("index: IVF needs a non-empty coarse quantizer")
	}
	if len(lists) != coarse.Rows {
		return nil, fmt.Errorf("index: %d lists for %d coarse centroids", len(lists), coarse.Rows)
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	n := 0
	for _, ids := range lists {
		n += len(ids)
	}
	ix := &IVF{coarse: coarse, nprobe: nprobe, dim: coarse.Cols, n: n, lists: lists}
	if pq == nil {
		if vectors == nil || vectors.Cols != coarse.Cols {
			return nil, fmt.Errorf("index: IVF-Flat needs a vector matrix matching the coarse dimensionality")
		}
		for _, ids := range lists {
			for _, id := range ids {
				if int(id) < 0 || int(id) >= vectors.Rows {
					return nil, fmt.Errorf("index: IVF list id %d outside stored rows [0,%d)", id, vectors.Rows)
				}
			}
		}
		ix.vectors = vectors
		return ix, nil
	}
	if err := validateQuantizer(pq); err != nil {
		return nil, err
	}
	if pq.D != coarse.Cols {
		return nil, fmt.Errorf("index: residual quantizer dimensionality %d != coarse %d", pq.D, coarse.Cols)
	}
	if len(codes) != len(lists) {
		return nil, fmt.Errorf("index: %d code lists for %d id lists", len(codes), len(lists))
	}
	for li, ids := range lists {
		if len(codes[li]) != len(ids)*pq.M {
			return nil, fmt.Errorf("index: list %d holds %d ids but %d code bytes (want %d)", li, len(ids), len(codes[li]), len(ids)*pq.M)
		}
		if err := validateCodes(pq, codes[li]); err != nil {
			return nil, err
		}
	}
	ix.pq = pq
	ix.codes = codes
	return ix, nil
}

// validateCodes rejects code bytes referencing centroids past the trained
// rows of their codebook — decoding such a code would index out of range.
func validateCodes(q *quant.ProductQuantizer, codes []byte) error {
	for i, b := range codes {
		if int(b) >= q.Codebooks[i%q.M].Rows {
			return fmt.Errorf("index: code byte %d references centroid %d of codebook %d (trained %d)", i, b, i%q.M, q.Codebooks[i%q.M].Rows)
		}
	}
	return nil
}

// Inner exposes the wrapped index (the serializer persists the inner index;
// sharding is a per-deployment serving choice, re-applied after load).
func (sh *Sharded) Inner() Index { return sh.inner }

// validateQuantizer checks the internal consistency of a deserialized
// product quantizer before any code is decoded against it.
func validateQuantizer(q *quant.ProductQuantizer) error {
	if q == nil || q.M <= 0 || q.Ks <= 0 || q.Ks > 256 || q.Dsub <= 0 || q.D != q.M*q.Dsub {
		return fmt.Errorf("index: inconsistent quantizer shape")
	}
	if len(q.Codebooks) != q.M {
		return fmt.Errorf("index: quantizer has %d codebooks, want M=%d", len(q.Codebooks), q.M)
	}
	for m, cb := range q.Codebooks {
		if cb == nil || cb.Cols != q.Dsub || cb.Rows == 0 || cb.Rows > q.Ks {
			return fmt.Errorf("index: codebook %d has bad shape", m)
		}
		if len(cb.Data) != cb.Rows*cb.Cols {
			return fmt.Errorf("index: codebook %d data length %d != %dx%d", m, len(cb.Data), cb.Rows, cb.Cols)
		}
	}
	return nil
}
