package index

import (
	"emblookup/internal/mathx"
	"emblookup/internal/par"
	"emblookup/internal/quant"
)

// PQ is the compressed index of Section III-D: every stored vector is an
// M-byte product-quantization code and queries scan the codes with an
// asymmetric-distance table. At the paper's defaults this shrinks the index
// 32× (8 bytes vs 256 per entity).
type PQ struct {
	pq    *quant.ProductQuantizer
	codes []byte // n × M, flattened
	n     int
}

// NewPQ trains a product quantizer on data and encodes every row. cfg.M
// must divide the dimensionality. Training and encoding fan across
// cfg.Workers goroutines; every row's code is an independent exact argmin,
// so the codes are byte-identical at any worker count.
func NewPQ(data *mathx.Matrix, cfg quant.PQConfig) (*PQ, error) {
	q, err := quant.TrainPQ(data, cfg)
	if err != nil {
		return nil, err
	}
	ix := &PQ{pq: q, n: data.Rows, codes: make([]byte, data.Rows*q.M)}
	par.ForEach(data.Rows, cfg.Workers, func(i int) {
		q.EncodeInto(data.Row(i), ix.codes[i*q.M:(i+1)*q.M])
	})
	return ix, nil
}

// Len returns the number of stored codes.
func (ix *PQ) Len() int { return ix.n }

// Dim returns the original vector dimensionality.
func (ix *PQ) Dim() int { return ix.pq.D }

// SizeBytes returns the code storage cost.
func (ix *PQ) SizeBytes() int { return len(ix.codes) }

// Quantizer exposes the trained product quantizer.
func (ix *PQ) Quantizer() *quant.ProductQuantizer { return ix.pq }

// Search builds the ADC table for q once and scans all codes. It is a thin
// wrapper over SearchWith with pooled scratch, so steady-state calls
// allocate nothing but the result slice.
func (ix *PQ) Search(q []float32, k int) []Result {
	s := GetScratch()
	defer PutScratch(s)
	return ix.SearchWith(s, q, k)
}

// SearchWith implements ScratchSearcher: the ADC table, top-k heap, and
// block distance strip are reused from s, and the codes are walked with the
// blocked scan.
func (ix *PQ) SearchWith(s *Scratch, q []float32, k int) []Result {
	return ix.SearchAppendWith(s, q, k, nil)
}

// SearchAppendWith implements AppendSearcher: results land in dst[:0].
func (ix *PQ) SearchAppendWith(s *Scratch, q []float32, k int, dst []Result) []Result {
	if k <= 0 {
		return dst[:0]
	}
	table := ix.prepareScan(s, q)
	t := &s.res
	t.reset(k)
	ix.scanBlocked(table, t, &s.dists)
	return t.appendSorted(dst)
}

// scanBlock is the number of codes one blocked-scan strip covers. At the
// paper's M=8 a strip is 2 KB of codes plus a 1 KB distance buffer — both
// resident in L1 while each sub-quantizer's 256-entry table row is swept
// across the strip.
const scanBlock = 256

// prepareScan implements rangeScanner: the shared per-query scan state is
// the ADC table, built once into s and read-only thereafter.
func (ix *PQ) prepareScan(s *Scratch, q []float32) []float32 {
	s.table = mathx.Resize(s.table, ix.pq.M*ix.pq.Ks)
	ix.pq.ADCTableInto(q, s.table)
	return s.table
}

// scanRange implements rangeScanner: the blocked scan restricted to stored
// rows [lo, hi).
func (ix *PQ) scanRange(table []float32, s *Scratch, t *topK, lo, hi int) {
	ix.scanBlockedRange(table, t, &s.dists, lo, hi)
}

// scanBlocked walks the full code matrix with the blocked scan.
func (ix *PQ) scanBlocked(table []float32, t *topK, dists *[scanBlock]float32) {
	ix.scanBlockedRange(table, t, dists, 0, ix.n)
}

// scanBlockedRange walks the codes of rows [lo, hi) in strips of scanBlock
// codes. Within a strip the first half of the sub-quantizers is accumulated
// column-wise (one table row swept over all codes of the strip, the
// cache-friendly order), then each code finishes row-wise with an
// early-abandon check: a partial distance already strictly above the current
// k-th best can never enter the heap, because table entries are
// non-negative. (The check must be strict: an exact tie can still enter on
// the canonical ID tie-break.) The heap's selection is a pure function of
// the candidate (Dist, ID) multiset, so the strip decomposition — and any
// sharding of [0, n) into ranges — returns bit-identical results to
// scanPlain.
func (ix *PQ) scanBlockedRange(table []float32, t *topK, dists *[scanBlock]float32, lo, hi int) {
	m, ks := ix.pq.M, ix.pq.Ks
	mh := m / 2
	for base := lo; base < hi; base += scanBlock {
		bn := scanBlock
		if base+bn > hi {
			bn = hi - base
		}
		codes := ix.codes[base*m : (base+bn)*m]
		for i := 0; i < bn; i++ {
			dists[i] = 0
		}
		for j := 0; j < mh; j++ {
			row := table[j*ks : (j+1)*ks]
			for i := 0; i < bn; i++ {
				dists[i] += row[codes[i*m+j]]
			}
		}
		// worst only shrinks as pushes land, so an abandon decision made
		// against a stale bound stays valid.
		w := t.worst()
		for i := 0; i < bn; i++ {
			d := dists[i]
			if d > w {
				continue
			}
			code := codes[i*m : (i+1)*m]
			for j := mh; j < m; j++ {
				d += table[j*ks+int(code[j])]
			}
			t.push(int32(base+i), d)
			w = t.worst()
		}
	}
}

// scanPlain is the straightforward one-code-at-a-time ADC scan. It is the
// reference the blocked scan is tested against and the shape of the
// original implementation.
func (ix *PQ) scanPlain(table []float32, t *topK) {
	m, ks := ix.pq.M, ix.pq.Ks
	for i := 0; i < ix.n; i++ {
		code := ix.codes[i*m : (i+1)*m]
		var d float32
		for j := 0; j < m; j++ {
			d += table[j*ks+int(code[j])]
		}
		t.push(int32(i), d)
	}
}

// Reconstruct decodes the stored approximation of vector id.
func (ix *PQ) Reconstruct(id int32) []float32 {
	m := ix.pq.M
	return ix.pq.Decode(ix.codes[int(id)*m : (int(id)+1)*m])
}
