package index

import (
	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// PQ is the compressed index of Section III-D: every stored vector is an
// M-byte product-quantization code and queries scan the codes with an
// asymmetric-distance table. At the paper's defaults this shrinks the index
// 32× (8 bytes vs 256 per entity).
type PQ struct {
	pq    *quant.ProductQuantizer
	codes []byte // n × M, flattened
	n     int
}

// NewPQ trains a product quantizer on data and encodes every row. cfg.M
// must divide the dimensionality.
func NewPQ(data *mathx.Matrix, cfg quant.PQConfig) (*PQ, error) {
	q, err := quant.TrainPQ(data, cfg)
	if err != nil {
		return nil, err
	}
	ix := &PQ{pq: q, n: data.Rows, codes: make([]byte, data.Rows*q.M)}
	for i := 0; i < data.Rows; i++ {
		q.EncodeInto(data.Row(i), ix.codes[i*q.M:(i+1)*q.M])
	}
	return ix, nil
}

// Len returns the number of stored codes.
func (ix *PQ) Len() int { return ix.n }

// Dim returns the original vector dimensionality.
func (ix *PQ) Dim() int { return ix.pq.D }

// SizeBytes returns the code storage cost.
func (ix *PQ) SizeBytes() int { return len(ix.codes) }

// Quantizer exposes the trained product quantizer.
func (ix *PQ) Quantizer() *quant.ProductQuantizer { return ix.pq }

// Search builds the ADC table for q once and scans all codes.
func (ix *PQ) Search(q []float32, k int) []Result {
	if k <= 0 {
		return nil
	}
	table := ix.pq.ADCTable(q)
	t := newTopK(k)
	m := ix.pq.M
	ks := ix.pq.Ks
	for i := 0; i < ix.n; i++ {
		code := ix.codes[i*m : (i+1)*m]
		var d float32
		for j := 0; j < m; j++ {
			d += table[j*ks+int(code[j])]
		}
		t.push(int32(i), d)
	}
	return t.sorted()
}

// Reconstruct decodes the stored approximation of vector id.
func (ix *PQ) Reconstruct(id int32) []float32 {
	m := ix.pq.M
	return ix.pq.Decode(ix.codes[int(id)*m : (int(id)+1)*m])
}
