package index

import (
	"testing"
	"testing/quick"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// Property: for any data and query, Flat.Search returns exactly the k
// smallest distances found by a naive scan, sorted.
func TestFlatMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw)%10 + 1
		rng := mathx.NewRNG(seed)
		data := mathx.NewMatrix(n, 4)
		data.FillRandn(rng, 1)
		q := make([]float32, 4)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		got := NewFlat(data).Search(q, k)

		// Naive: compute all distances, selection-sort the smallest k.
		dists := make([]float32, n)
		for i := 0; i < n; i++ {
			dists[i] = mathx.SquaredL2(q, data.Row(i))
		}
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		// Every returned distance must be correct and the set must be the
		// k smallest (allowing ties).
		prev := float32(-1)
		for _, r := range got {
			if mathx.SquaredL2(q, data.Row(int(r.ID))) != r.Dist {
				return false
			}
			if r.Dist < prev {
				return false
			}
			prev = r.Dist
		}
		// No excluded point may be strictly closer than the worst result.
		worst := got[len(got)-1].Dist
		in := map[int32]bool{}
		for _, r := range got {
			in[r.ID] = true
		}
		for i := 0; i < n; i++ {
			if !in[int32(i)] && dists[i] < worst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: PQ codes always decode to one of the codebook centroid
// combinations, and ADC distance equals the decoded distance.
func TestPQConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		data := mathx.NewMatrix(60, 8)
		data.FillRandn(rng, 1)
		ix, err := NewPQ(data, pqTestConfig(seed))
		if err != nil {
			return false
		}
		q := make([]float32, 8)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		res := ix.Search(q, 5)
		if len(res) != 5 {
			return false
		}
		for _, r := range res {
			rec := ix.Reconstruct(r.ID)
			if d := mathx.SquaredL2(q, rec); !approxEq(d, r.Dist, 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: on adversarial tie-heavy tables (tiny integer alphabet, so
// nearly every distance collides) the fast-scan candidate set is a
// superset of the exact top-k — the floored quantization makes the integer
// sum a lower bound, so the prune may only over-admit — and after the exact
// float32 re-rank the returned top-k is bit-identical to the plain scan's.
// Bit-identity subsumes the superset claim: a dropped exact-top-k row would
// be missing from the output.
func TestFastScanSupersetProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, m4Raw, ksRaw, kRaw, alphaRaw uint8) bool {
		n := int(nRaw)%600 + 1
		m4 := (int(m4Raw)%5 + 1) * 2
		ks := int(ksRaw)%quant.Ks4 + 1
		k := int(kRaw)%40 + 1
		alpha := int(alphaRaw)%3 + 1 // distance alphabet {0..alpha}: all ties at 1

		rng := mathx.NewRNG(seed)
		nib := make([]byte, n*m4)
		for i := range nib {
			nib[i] = byte(rng.Intn(ks))
		}
		ix := syntheticFastScan(nib, m4, ks, n)
		table := make([]float32, m4*quant.Ks4)
		for m := 0; m < m4; m++ {
			for c := 0; c < ks; c++ {
				table[m*quant.Ks4+c] = float32(rng.Intn(alpha + 1))
			}
		}

		plain := newTopK(k)
		ix.scanPlain4(table, plain)
		want := plain.sorted()

		s := GetScratch()
		defer PutScratch(s)
		fast := newTopK(k)
		ix.scanRange(table, s, fast, 0, n)
		got := fast.sorted()

		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		// The exact top-k ids must all be present (the superset property,
		// stated directly).
		in := map[int32]bool{}
		for _, r := range got {
			in[r.ID] = true
		}
		for _, r := range want {
			if !in[r.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func approxEq(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	if scale < 1 {
		scale = 1
	}
	return d <= eps*scale
}

func pqTestConfig(seed uint64) (cfg quant.PQConfig) {
	cfg.M = 4
	cfg.Ks = 16
	cfg.Iters = 5
	cfg.Seed = seed
	return cfg
}
