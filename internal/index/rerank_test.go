package index

import (
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// TestIVFRerankExhaustiveExact pins the re-rank contract at its limit: with
// every list probed and an over-fetch budget covering the whole index, the
// exact re-rank pass must reproduce the flat exact search bit-for-bit —
// IDs, distances, and the canonical (Dist, ID) order.
func TestIVFRerankExhaustiveExact(t *testing.T) {
	data := randomData(400, 16, 21)
	flat := NewFlat(data)
	pqCfg := quant.PQConfig{M: 4, Ks: 32, Iters: 8, Seed: 22}
	ix, err := NewIVF(data, IVFConfig{NList: 8, NProbe: 8, PQ: &pqCfg, Iters: 8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// k=5 × factor 100 ≥ 400 rows: the ADC pass keeps everything, so the
	// re-rank is a full exact search.
	if err := ix.SetRerank(100, data); err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(24)
	q := make([]float32, 16)
	for trial := 0; trial < 30; trial++ {
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		want := flat.Search(q, 5)
		got := ix.Search(q, 5)
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d result %d: %+v vs flat %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestIVFRerankImprovesRecall is the reason the knob exists: at the same
// nprobe, deciding the final top-k by exact distances must beat (or at
// worst match) raw ADC ordering against the flat ground truth.
func TestIVFRerankImprovesRecall(t *testing.T) {
	data := randomData(800, 16, 25)
	flat := NewFlat(data)
	pqCfg := quant.PQConfig{M: 4, Ks: 16, Iters: 6, Seed: 26}
	ix, err := NewIVF(data, IVFConfig{NList: 16, NProbe: 16, PQ: &pqCfg, Iters: 8, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	recall := func() float64 {
		rng := mathx.NewRNG(28)
		q := make([]float32, 16)
		hits, total := 0, 0
		for trial := 0; trial < 50; trial++ {
			for i := range q {
				q[i] = float32(rng.NormFloat64())
			}
			truth := map[int32]bool{}
			for _, r := range flat.Search(q, 10) {
				truth[r.ID] = true
			}
			for _, r := range ix.Search(q, 10) {
				if truth[r.ID] {
					hits++
				}
				total++
			}
		}
		return float64(hits) / float64(total)
	}
	adc := recall()
	if err := ix.SetRerank(8, data); err != nil {
		t.Fatal(err)
	}
	reranked := recall()
	if reranked < adc {
		t.Fatalf("recall dropped with re-rank: %.3f → %.3f", adc, reranked)
	}
	if reranked < 0.9 {
		t.Fatalf("re-ranked recall@10 = %.3f, want ≥ 0.9 at full probe", reranked)
	}
	// Disabling restores the plain ADC behavior.
	if err := ix.SetRerank(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := recall(); got != adc {
		t.Fatalf("disabled re-rank recall %.3f != original ADC %.3f", got, adc)
	}
}

// TestSetRerankValidation pins the guard rails: IVF-Flat refuses (its
// distances are already exact), misaligned vector matrices refuse, and
// factor ≤ 1 clears.
func TestSetRerankValidation(t *testing.T) {
	data := randomData(200, 8, 29)
	flatIVF, err := NewIVF(data, IVFConfig{NList: 4, NProbe: 4, Iters: 4, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := flatIVF.SetRerank(4, data); err == nil {
		t.Fatal("IVF-Flat accepted a re-rank matrix")
	}
	pqCfg := quant.PQConfig{M: 4, Ks: 16, Iters: 4, Seed: 31}
	ix, err := NewIVF(data, IVFConfig{NList: 4, NProbe: 4, PQ: &pqCfg, Iters: 4, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetRerank(4, randomData(200, 4, 33)); err == nil {
		t.Fatal("dimension-mismatched re-rank matrix accepted")
	}
	if err := ix.SetRerank(4, randomData(100, 8, 34)); err == nil {
		t.Fatal("row-mismatched re-rank matrix accepted")
	}
	if err := ix.SetRerank(4, data); err != nil {
		t.Fatal(err)
	}
	if f, v := ix.Rerank(); f != 4 || v == nil {
		t.Fatalf("Rerank() = (%d, %v) after enable", f, v)
	}
	if err := ix.SetRerank(1, data); err != nil {
		t.Fatal(err)
	}
	if f, v := ix.Rerank(); f != 0 || v != nil {
		t.Fatalf("Rerank() = (%d, %v) after clear", f, v)
	}
}
