package index

import (
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// buildPQ trains a small PQ index over n random rows.
func buildPQ(t *testing.T, n, dim int, seed uint64) (*PQ, *mathx.Matrix) {
	t.Helper()
	data := mathx.NewMatrix(n, dim)
	data.FillRandn(mathx.NewRNG(seed), 1)
	ix, err := NewPQ(data, quant.PQConfig{M: 8, Ks: 32, Iters: 4, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

// TestBlockedScanMatchesPlain asserts the blocked, early-abandoning scan
// returns bit-identical results to the straightforward per-code loop, for
// sizes that exercise partial trailing blocks and k values around the
// block size.
func TestBlockedScanMatchesPlain(t *testing.T) {
	for _, n := range []int{1, 7, scanBlock - 1, scanBlock, scanBlock + 1, 3*scanBlock + 17} {
		ix, data := buildPQ(t, n, 32, uint64(n))
		for _, k := range []int{1, 5, n, n + 10} {
			for qi := 0; qi < 5 && qi < n; qi++ {
				q := data.Row(qi)
				table := ix.pq.ADCTable(q)

				plain := newTopK(k)
				ix.scanPlain(table, plain)

				blocked := newTopK(k)
				var dists [scanBlock]float32
				ix.scanBlocked(table, blocked, &dists)

				ps, bs := plain.sorted(), blocked.sorted()
				if len(ps) != len(bs) {
					t.Fatalf("n=%d k=%d: %d plain vs %d blocked results", n, k, len(ps), len(bs))
				}
				for i := range ps {
					if ps[i] != bs[i] {
						t.Fatalf("n=%d k=%d q=%d: result %d diverges: plain %+v blocked %+v",
							n, k, qi, i, ps[i], bs[i])
					}
				}
			}
		}
	}
}

// TestPQSearchScratchReuse asserts that one Scratch reused across many
// searches (the bulk-worker pattern) answers identically to fresh pooled
// searches — guarding against stale state leaking between queries.
func TestPQSearchScratchReuse(t *testing.T) {
	ix, data := buildPQ(t, 500, 32, 99)
	s := &Scratch{}
	for qi := 0; qi < 20; qi++ {
		q := data.Row(qi)
		want := ix.Search(q, 10)
		got := ix.SearchWith(s, q, 10)
		if len(want) != len(got) {
			t.Fatalf("query %d: length mismatch", qi)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", qi, i, want[i], got[i])
			}
		}
	}
}

// TestScratchSharedAcrossIndexKinds reuses one Scratch across PQ, Flat, and
// IVF searches of different dimensionalities, the way the shared pool will.
func TestScratchSharedAcrossIndexKinds(t *testing.T) {
	s := &Scratch{}
	pqIx, pqData := buildPQ(t, 300, 32, 7)

	flatData := mathx.NewMatrix(200, 16)
	flatData.FillRandn(mathx.NewRNG(8), 1)
	flat := NewFlat(flatData)

	ivfCfg := DefaultIVFConfig(flatData.Rows)
	ivfCfg.PQ = &quant.PQConfig{M: 4, Ks: 16, Iters: 3, Seed: 9}
	ivf, err := NewIVF(flatData, ivfCfg)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		for _, check := range []struct {
			name string
			ix   ScratchSearcher
			ref  Index
			q    []float32
		}{
			{"pq", pqIx, pqIx, pqData.Row(round)},
			{"flat", flat, flat, flatData.Row(round)},
			{"ivf", ivf, ivf, flatData.Row(round)},
		} {
			want := check.ref.Search(check.q, 5)
			got := check.ix.SearchWith(s, check.q, 5)
			if len(want) != len(got) {
				t.Fatalf("%s: length mismatch", check.name)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s round %d: result %d diverges", check.name, round, i)
				}
			}
		}
	}
}
