package index

import "sync"

// Scratch is the reusable per-worker working memory of a search: the ADC
// table, the top-k heap, the blocked-scan distance strip, and the IVF probe
// state. All buffers grow on demand and are retained, so a worker that owns
// a Scratch searches without allocating anything but the returned result
// slice. The zero value is ready to use; a Scratch must not be used
// concurrently.
type Scratch struct {
	res      topK
	probes   topK
	table    []float32
	residual []float32
	probeBuf []Result
	dists    [scanBlock]float32
	lut8     []uint8  // fast-scan: uint8-quantized ADC table (M4 × Ks4)
	lut2     []uint16 // fast-scan: fused pair LUTs (M4/2 × 256)
}

// ScratchSearcher is implemented by indexes whose search can reuse a
// caller-owned Scratch. All indexes in this package implement it; Search is
// the allocation-tolerant wrapper that checks a Scratch out of the shared
// pool.
type ScratchSearcher interface {
	// SearchWith is Search with all working memory taken from s. The
	// returned slice is freshly allocated (it outlives the Scratch).
	SearchWith(s *Scratch, q []float32, k int) []Result
}

// AppendSearcher is implemented by indexes whose search can additionally
// reuse a caller-owned result buffer: results are written into dst[:0]
// (grown if needed) and the possibly-reallocated slice returned, so a bulk
// caller that holds one buffer per slot searches with zero per-query
// allocations. All indexes in this package implement it; SearchWith is
// equivalent to SearchAppendWith with a nil dst.
type AppendSearcher interface {
	SearchAppendWith(s *Scratch, q []float32, k int, dst []Result) []Result
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch checks a Scratch out of the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the pool. The caller must not retain any
// slice that aliases it (SearchWith results are safe — they are copies).
func PutScratch(s *Scratch) { scratchPool.Put(s) }
