package index

import (
	"fmt"

	"emblookup/internal/par"
)

// rangeScanner is implemented by indexes whose scan decomposes into
// independent scans of contiguous row ranges sharing one per-query
// preparation: the ADC table for PQ, the query itself for Flat. Because the
// top-k selection is canonical (see `worse`), scanning [0, n) in one pass
// and scanning a partition of it then merging the per-range heaps select
// the same result set.
type rangeScanner interface {
	Index
	// prepareScan computes the state shared read-only by every range scan
	// of one query, using s for any working memory it retains.
	prepareScan(s *Scratch, q []float32) []float32
	// scanRange pushes stored rows [lo, hi) into t, taking per-range
	// working memory (e.g. the blocked-scan distance strip) from s.
	scanRange(state []float32, s *Scratch, t *topK, lo, hi int)
}

// Sharded partitions a PQ or Flat index's stored rows into S contiguous
// shards. A single query builds its scan state once and fans the scan
// across shards via par.ForEach, merging the per-shard top-k heaps; a batch
// runs shard-major (every worker sweeps one shard across all queries), so
// each shard's codes stay cache-resident while the whole batch crosses
// them. Both paths return bit-identical results to the wrapped index.
type Sharded struct {
	inner       rangeScanner
	bounds      []int // len shards+1; shard i scans rows [bounds[i], bounds[i+1])
	parallelism int
}

// NewSharded wraps inner with S-way sharding. Only indexes whose scan
// decomposes by row range are supported (PQ and Flat; IVF already
// partitions by coarse cluster). parallelism bounds the fan-out per
// query/batch (≤0 means GOMAXPROCS). The inner index is retained, not
// copied.
func NewSharded(inner Index, shards, parallelism int) (*Sharded, error) {
	rs, ok := inner.(rangeScanner)
	if !ok {
		return nil, fmt.Errorf("index: %T does not support sharded scans (want *PQ, *FastScan, or *Flat)", inner)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("index: shard count must be positive, got %d", shards)
	}
	return &Sharded{
		inner:       rs,
		bounds:      par.Split(inner.Len(), shards),
		parallelism: parallelism,
	}, nil
}

// Shards returns the number of shards (ranges may be fewer than requested
// when the index holds fewer rows).
func (sh *Sharded) Shards() int { return len(sh.bounds) - 1 }

// Len returns the number of stored vectors.
func (sh *Sharded) Len() int { return sh.inner.Len() }

// Dim returns the vector dimensionality.
func (sh *Sharded) Dim() int { return sh.inner.Dim() }

// SizeBytes returns the wrapped index's payload cost (sharding adds none).
func (sh *Sharded) SizeBytes() int { return sh.inner.SizeBytes() }

// Search fans one query's scan across the shards. It is a thin wrapper
// over SearchWith with pooled scratch.
func (sh *Sharded) Search(q []float32, k int) []Result {
	s := GetScratch()
	defer PutScratch(s)
	return sh.SearchWith(s, q, k)
}

// SearchWith implements ScratchSearcher: the scan state and the merge heap
// are reused from s; every shard checks its own Scratch out of the shared
// pool for the duration of the fan-out.
func (sh *Sharded) SearchWith(s *Scratch, q []float32, k int) []Result {
	return sh.SearchAppendWith(s, q, k, nil)
}

// SearchAppendWith implements AppendSearcher: results land in dst[:0].
func (sh *Sharded) SearchAppendWith(s *Scratch, q []float32, k int, dst []Result) []Result {
	if k <= 0 {
		return dst[:0]
	}
	state := sh.inner.prepareScan(s, q)
	return sh.scanMergedAppend(s, state, k, dst)
}

// scanMerged runs the per-shard scans for one prepared query and merges the
// per-shard heaps in shard order. The merge is single-threaded and the
// per-shard heaps are deterministic, so the output does not depend on how
// the fan-out was scheduled; canonical top-k selection makes it equal to
// the unsharded scan's output.
func (sh *Sharded) scanMerged(s *Scratch, state []float32, k int) []Result {
	return sh.scanMergedAppend(s, state, k, nil)
}

func (sh *Sharded) scanMergedAppend(s *Scratch, state []float32, k int, dst []Result) []Result {
	ns := sh.Shards()
	if ns == 0 {
		if dst == nil {
			return []Result{}
		}
		return dst[:0]
	}
	if ns == 1 {
		t := &s.res
		t.reset(k)
		sh.inner.scanRange(state, s, t, sh.bounds[0], sh.bounds[1])
		return t.appendSorted(dst)
	}
	scratches := make([]*Scratch, ns)
	par.ForEach(ns, sh.parallelism, func(i int) {
		ss := GetScratch()
		scratches[i] = ss
		t := &ss.res
		t.reset(k)
		sh.inner.scanRange(state, ss, t, sh.bounds[i], sh.bounds[i+1])
	})
	t := &s.res
	t.reset(k)
	for _, ss := range scratches {
		for _, r := range ss.res.heap {
			t.push(r.ID, r.Dist)
		}
		PutScratch(ss)
	}
	return t.appendSorted(dst)
}

// SearchBatch implements BatchSearcher: the batch is scanned shard-major.
// Every query's scan state is prepared once (in parallel), then every
// worker picks up (shard, query) pairs grouped by shard, so one shard's
// codes are swept by consecutive tasks while they are cache-hot. Per-query
// per-shard heaps are merged in shard order at the end, which keeps results
// identical to per-query Search regardless of scheduling.
func (sh *Sharded) SearchBatch(queries [][]float32, k, parallelism int) [][]Result {
	nq := len(queries)
	out := make([][]Result, nq)
	if nq == 0 {
		return out
	}
	if k <= 0 {
		for i := range out {
			out[i] = nil
		}
		return out
	}
	ns := sh.Shards()
	if ns == 0 {
		for i := range out {
			out[i] = []Result{}
		}
		return out
	}
	// Phase 1: per-query scan state (ADC tables), one Scratch per query so
	// the state stays alive across the whole batch.
	prep := make([]*Scratch, nq)
	states := make([][]float32, nq)
	par.ForEach(nq, parallelism, func(i int) {
		prep[i] = GetScratch()
		states[i] = sh.inner.prepareScan(prep[i], queries[i])
	})
	// Phase 2: shard-major sweep. Task t = shard t/nq over query t%nq, so
	// consecutive tasks reuse the same shard's codes.
	heaps := make([]*Scratch, ns*nq)
	par.ForEach(ns*nq, parallelism, func(t int) {
		si, qi := t/nq, t%nq
		ss := GetScratch()
		heaps[t] = ss
		h := &ss.res
		h.reset(k)
		sh.inner.scanRange(states[qi], ss, h, sh.bounds[si], sh.bounds[si+1])
	})
	// Phase 3: per-query merge in shard order. One flat array backs every
	// query's results (a merged heap holds at most k), so the batch's
	// result slices cost one allocation.
	flat := make([]Result, nq*k)
	par.ForEach(nq, parallelism, func(qi int) {
		t := &prep[qi].res
		t.reset(k)
		for si := 0; si < ns; si++ {
			for _, r := range heaps[si*nq+qi].res.heap {
				t.push(r.ID, r.Dist)
			}
		}
		out[qi] = t.appendSorted(flat[qi*k : qi*k : (qi+1)*k])
	})
	for _, s := range heaps {
		PutScratch(s)
	}
	for _, s := range prep {
		PutScratch(s)
	}
	return out
}
