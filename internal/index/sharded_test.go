package index

import (
	"testing"

	"emblookup/internal/mathx"
	"emblookup/internal/quant"
)

// tieProneData builds a matrix where every vector appears several times, so
// equal distances (and therefore the canonical ID tie-break) are exercised
// on every query.
func tieProneData(n, d int, seed uint64) *mathx.Matrix {
	distinct := max(1, n/4)
	base := mathx.NewMatrix(distinct, d)
	base.FillRandn(mathx.NewRNG(seed), 1)
	m := mathx.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		copy(m.Row(i), base.Row(i%distinct))
	}
	return m
}

func assertSameResults(t *testing.T, ctx string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d results", ctx, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d diverges: %+v vs %+v", ctx, i, want[i], got[i])
		}
	}
}

// TestShardedMatchesDirect asserts the sharded fan-out returns bit-identical
// results to the wrapped index, for PQ and Flat, across shard counts that
// exercise empty tails and single-row shards, on tie-heavy data.
func TestShardedMatchesDirect(t *testing.T) {
	for _, n := range []int{1, 5, 100, 3*scanBlock + 17} {
		data := tieProneData(n, 16, uint64(n)+1)
		pqIx, err := NewPQ(data, quant.PQConfig{M: 4, Ks: 16, Iters: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, inner := range []Index{pqIx, NewFlat(data)} {
			for _, shards := range []int{1, 2, 3, 7, n, n + 4} {
				sh, err := NewSharded(inner, shards, 2)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{1, 3, n, n + 5} {
					for qi := 0; qi < 4 && qi < n; qi++ {
						q := data.Row(qi)
						want := inner.Search(q, k)
						got := sh.Search(q, k)
						assertSameResults(t, "sharded search", want, got)
					}
				}
			}
		}
	}
}

// TestShardedBatchMatchesSequential asserts the shard-major batch path
// returns exactly what per-query sharded (and direct) search returns, at
// several parallelism levels.
func TestShardedBatchMatchesSequential(t *testing.T) {
	data := tieProneData(400, 16, 77)
	pqIx, err := NewPQ(data, quant.PQConfig{M: 4, Ks: 16, Iters: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(pqIx, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float32, 30)
	for i := range queries {
		queries[i] = data.Row(i * 13 % data.Rows)
	}
	for _, parallelism := range []int{1, 3, 8} {
		batch := sh.SearchBatch(queries, 7, parallelism)
		for i, q := range queries {
			assertSameResults(t, "sharded batch", pqIx.Search(q, 7), batch[i])
		}
	}
	// BatchSearch must route through the shard-major path.
	viaBatchSearch := BatchSearch(sh, queries, 7, 2)
	for i, q := range queries {
		assertSameResults(t, "BatchSearch over Sharded", pqIx.Search(q, 7), viaBatchSearch[i])
	}
}

// TestShardedRejectsUnsupported asserts only range-decomposable indexes can
// be sharded, and invalid shard counts are refused.
func TestShardedRejectsUnsupported(t *testing.T) {
	data := randomData(64, 8, 21)
	ivf, err := NewIVF(data, IVFConfig{NList: 4, NProbe: 2, Iters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharded(ivf, 4, 0); err == nil {
		t.Fatal("sharding an IVF index should fail")
	}
	if _, err := NewSharded(NewFlat(data), 0, 0); err == nil {
		t.Fatal("zero shards should fail")
	}
}

// TestShardedSearchKEdge covers k<=0 and k>n through the sharded paths.
func TestShardedSearchKEdge(t *testing.T) {
	data := randomData(10, 8, 31)
	sh, err := NewSharded(NewFlat(data), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res := sh.Search(data.Row(0), 0); res != nil {
		t.Fatal("k=0 should return nil")
	}
	if res := sh.Search(data.Row(0), 50); len(res) != 10 {
		t.Fatalf("k>n returned %d results", len(res))
	}
	batch := sh.SearchBatch([][]float32{data.Row(0)}, 0, 0)
	if len(batch) != 1 || batch[0] != nil {
		t.Fatalf("batch k=0 = %+v", batch)
	}
}
