package kg

import (
	"strconv"
	"strings"

	"emblookup/internal/mathx"
	"emblookup/internal/strutil"
)

// Profile selects the statistical flavour of a generated knowledge graph.
// The paper evaluates on Wikidata and DBPedia; the two profiles differ in
// label style (DBPedia labels carry disambiguation suffixes more often) and
// alias richness (Wikidata has more skos:altLabel aliases per entity).
type Profile int

const (
	// WikidataProfile mimics Wikidata: alias-rich, clean labels.
	WikidataProfile Profile = iota
	// DBPediaProfile mimics DBPedia: fewer aliases, occasional
	// parenthesized disambiguation suffixes on labels.
	DBPediaProfile
)

// GeneratorConfig controls synthetic graph generation. The zero value is not
// useful; start from DefaultGeneratorConfig.
type GeneratorConfig struct {
	Profile  Profile
	Entities int    // total entity count
	Seed     uint64 // RNG seed; equal configs generate identical graphs

	// AmbiguityRate is the probability that a new entity reuses the label
	// of an existing entity of another type (homonyms such as the many
	// cities named Berlin).
	AmbiguityRate float64

	// FactsPerEntity is the mean number of outgoing relation facts.
	FactsPerEntity int
}

// DefaultGeneratorConfig returns a config for the given profile sized to n
// entities.
func DefaultGeneratorConfig(p Profile, n int) GeneratorConfig {
	return GeneratorConfig{
		Profile:        p,
		Entities:       n,
		Seed:           42,
		AmbiguityRate:  0.02,
		FactsPerEntity: 3,
	}
}

// Schema holds the type and property IDs created by Generate so downstream
// code (table generation, the repair task) can refer to them by name.
type Schema struct {
	Root, Place, Agent, Work                  TypeID
	Country, City, River                      TypeID
	Person, Organization, Company, University TypeID
	Film, Book                                TypeID
	CapitalOf, LocatedIn, FlowsThrough        PropID
	BornIn, CitizenOf, WorksFor, StudiedAt    PropID
	HeadquarteredIn, DirectedBy, AuthoredBy   PropID
	Population, FoundedYear                   PropID
}

// Generate builds a deterministic synthetic knowledge graph. Entities are
// distributed over the type taxonomy with fixed proportions, every entity
// receives aliases in the styles real KGs exhibit (abbreviations,
// cross-lingual names, long and short forms, orthographic variants), and
// relation facts connect entities according to the property schema.
func Generate(cfg GeneratorConfig) (*Graph, *Schema) {
	rng := mathx.NewRNG(cfg.Seed)
	names := &nameGen{rng: rng.Split()}
	name := "synthetic-wikidata"
	if cfg.Profile == DBPediaProfile {
		name = "synthetic-dbpedia"
	}
	g := NewGraph(name)
	// Suspend incremental mention indexing for the duration of generation:
	// AddEntity would grow the map entity by entity only for the final
	// Reindex to throw that work away and rebuild it presized. At a million
	// entities the double build dominated the whole generation profile.
	g.byMention = nil
	s := buildSchema(g)

	// Type mix loosely mirrors the entity classes the SemTab tables draw
	// from: places and people dominate, with organizations and works behind.
	counts := typeCounts(cfg.Entities)

	g.Entities = make([]Entity, 0, cfg.Entities)
	g.Facts = make([]Fact, 0, cfg.Entities*3)
	var countries, cities, rivers, people, companies, universities []EntityID
	usedLabels := make(map[string]EntityID, cfg.Entities)

	addEntity := func(label string, t TypeID, translatable bool) EntityID {
		// Occasionally reuse an existing label on a different type to
		// create the ambiguity that makes disambiguation non-trivial.
		if prev, ok := usedLabels[strings.ToLower(label)]; ok && rng.Bool(0.5) {
			_ = prev // keep the duplicate label: genuine homonym
		} else if rng.Bool(cfg.AmbiguityRate) && len(g.Entities) > 10 {
			donor := g.Entities[rng.Intn(len(g.Entities))]
			if !hasType(donor.Types, t) {
				label = donor.Label
			}
		}
		aliases := makeAliases(label, t, s, cfg.Profile, rng, translatable)
		if cfg.Profile == DBPediaProfile && rng.Bool(0.2) {
			label = label + " (" + g.TypeName(t) + ")"
		}
		id := g.AddEntity(label, aliases, t)
		usedLabels[strings.ToLower(label)] = id
		return id
	}

	for i := 0; i < counts.countries; i++ {
		countries = append(countries, addEntity(names.country(), s.Country, true))
	}
	for i := 0; i < counts.cities; i++ {
		cities = append(cities, addEntity(names.city(), s.City, true))
	}
	for i := 0; i < counts.rivers; i++ {
		rivers = append(rivers, addEntity(names.river(), s.River, false))
	}
	for i := 0; i < counts.people; i++ {
		people = append(people, addEntity(names.person(), s.Person, false))
	}
	for i := 0; i < counts.companies; i++ {
		companies = append(companies, addEntity(names.company(), s.Company, false))
	}
	for i := 0; i < counts.universities; i++ {
		place := names.stem()
		if len(cities) > 0 && rng.Bool(0.5) {
			place = strings.SplitN(g.Label(cities[rng.Intn(len(cities))]), " ", 2)[0]
		}
		universities = append(universities, addEntity(names.university(place), s.University, false))
	}
	for i := 0; i < counts.films; i++ {
		place := names.stem()
		addEntity(names.film(place), s.Film, false)
	}
	for i := 0; i < counts.books; i++ {
		addEntity(names.book(names.stem()), s.Book, false)
	}

	// Relation facts. Each group of facts respects the property schema so
	// that the disambiguation and repair tasks can exploit graph structure.
	pick := func(ids []EntityID) EntityID {
		if len(ids) == 0 {
			return NoEntity
		}
		return ids[rng.Zipf(len(ids), 1.1)]
	}
	for _, c := range cities {
		if co := pick(countries); co != NoEntity {
			g.AddFact(c, s.LocatedIn, co)
		}
	}
	// One capital per country: assign distinct cities round-robin.
	for i, co := range countries {
		if len(cities) == 0 {
			break
		}
		g.AddFact(cities[i%len(cities)], s.CapitalOf, co)
	}
	for _, r := range rivers {
		for k := 0; k < 1+rng.Intn(2); k++ {
			if co := pick(countries); co != NoEntity {
				g.AddFact(r, s.FlowsThrough, co)
			}
		}
	}
	for _, p := range people {
		if c := pick(cities); c != NoEntity {
			g.AddFact(p, s.BornIn, c)
		}
		if co := pick(countries); co != NoEntity {
			g.AddFact(p, s.CitizenOf, co)
		}
		if rng.Bool(0.6) {
			if em := pick(companies); em != NoEntity {
				g.AddFact(p, s.WorksFor, em)
			}
		}
		if rng.Bool(0.4) {
			if u := pick(universities); u != NoEntity {
				g.AddFact(p, s.StudiedAt, u)
			}
		}
	}
	for _, c := range companies {
		if ci := pick(cities); ci != NoEntity {
			g.AddFact(c, s.HeadquarteredIn, ci)
		}
		g.AddLiteralFact(c, s.FoundedYear, strconv.Itoa(1850+rng.Intn(170)))
	}
	for i := range g.Entities {
		id := EntityID(i)
		if hasType(g.Entities[i].Types, s.Film) {
			if d := pick(people); d != NoEntity {
				g.AddFact(id, s.DirectedBy, d)
			}
		}
		if hasType(g.Entities[i].Types, s.Book) {
			if a := pick(people); a != NoEntity {
				g.AddFact(id, s.AuthoredBy, a)
			}
		}
	}
	for _, co := range countries {
		g.AddLiteralFact(co, s.Population, strconv.Itoa(100_000+rng.Intn(90_000_000)))
	}
	for _, ci := range cities {
		g.AddLiteralFact(ci, s.Population, strconv.Itoa(1_000+rng.Intn(9_000_000)))
	}

	g.Reindex()
	return g, s
}

type classCounts struct {
	countries, cities, rivers, people, companies, universities, films, books int
}

func typeCounts(n int) classCounts {
	c := classCounts{
		countries:    n * 4 / 100,
		cities:       n * 22 / 100,
		rivers:       n * 6 / 100,
		people:       n * 34 / 100,
		companies:    n * 12 / 100,
		universities: n * 6 / 100,
		films:        n * 10 / 100,
	}
	c.books = n - c.countries - c.cities - c.rivers - c.people - c.companies - c.universities - c.films
	if c.countries == 0 {
		c.countries = 1
	}
	if c.cities == 0 {
		c.cities = 1
	}
	return c
}

func buildSchema(g *Graph) *Schema {
	s := &Schema{}
	s.Root = g.AddType("entity", NoType)
	s.Place = g.AddType("place", s.Root)
	s.Agent = g.AddType("agent", s.Root)
	s.Work = g.AddType("work", s.Root)
	s.Country = g.AddType("country", s.Place)
	s.City = g.AddType("city", s.Place)
	s.River = g.AddType("river", s.Place)
	s.Person = g.AddType("person", s.Agent)
	s.Organization = g.AddType("organization", s.Agent)
	s.Company = g.AddType("company", s.Organization)
	s.University = g.AddType("university", s.Organization)
	s.Film = g.AddType("film", s.Work)
	s.Book = g.AddType("book", s.Work)

	s.CapitalOf = g.AddProperty("capitalOf", s.City, s.Country)
	s.LocatedIn = g.AddProperty("locatedIn", s.City, s.Country)
	s.FlowsThrough = g.AddProperty("flowsThrough", s.River, s.Country)
	s.BornIn = g.AddProperty("bornIn", s.Person, s.City)
	s.CitizenOf = g.AddProperty("citizenOf", s.Person, s.Country)
	s.WorksFor = g.AddProperty("worksFor", s.Person, s.Company)
	s.StudiedAt = g.AddProperty("studiedAt", s.Person, s.University)
	s.HeadquarteredIn = g.AddProperty("headquarteredIn", s.Company, s.City)
	s.DirectedBy = g.AddProperty("directedBy", s.Film, s.Person)
	s.AuthoredBy = g.AddProperty("authoredBy", s.Book, s.Person)
	s.Population = g.AddProperty("population", s.Place, NoType)
	s.FoundedYear = g.AddProperty("foundedYear", s.Organization, NoType)
	return s
}

// makeAliases builds the alias set for a label. Alias styles follow Section
// III-B of the paper: synonyms from altLabel-like sources (here: long and
// short forms), cross-lingual names, abbreviations, and spelling variants.
// The counts reproduce the statistic the paper relies on in Section IV-E:
// at least 3 aliases for the vast majority of entities, fewer than 50 for
// 95% of them.
func makeAliases(label string, t TypeID, s *Schema, p Profile, rng *mathx.RNG, translatable bool) []string {
	var aliases []string
	add := func(a string) {
		if a == "" || strings.EqualFold(a, label) {
			return
		}
		for _, prev := range aliases {
			if strings.EqualFold(prev, a) {
				return
			}
		}
		aliases = append(aliases, a)
	}

	// Long form (Germany -> Federal Republic of Germany).
	switch t {
	case s.Country:
		forms := []string{"Republic of ", "Kingdom of ", "Federal Republic of ", "United States of "}
		add(forms[rng.Intn(len(forms))] + label)
	case s.City:
		add("City of " + label)
	case s.Company:
		add(strings.TrimSuffix(strings.TrimSuffix(label, " Corp"), " Group") + " Incorporated")
	case s.Person:
		parts := strings.SplitN(label, " ", 2)
		if len(parts) == 2 {
			add(parts[0] + " " + title(strings.ToLower(parts[1][:1])) + ". " + parts[1]) // middle-initial style
		}
	}

	// Abbreviation (European Union -> EU). Short initialisms collide
	// across entities (as they do in real KGs), so only a minority of
	// entities carry one.
	if abbr := strutil.Abbreviate(label); len(abbr) >= 3 && rng.Bool(0.4) {
		add(abbr)
	}

	// Cross-lingual names. Nearly every real Wikidata entity carries
	// labels in other languages that share no surface form with the
	// English label (Germany → Deutschland); places get several, other
	// classes at least one.
	nLang := 1
	if translatable {
		nLang = 1 + rng.Intn(int(numLanguages))
	}
	firstLang := rng.Intn(int(numLanguages))
	for l := 0; l < nLang; l++ {
		add(pseudoTranslate(label, language((firstLang+l)%int(numLanguages))))
	}

	// Short form (drop a token) for multi-token labels.
	toks := strings.Fields(label)
	if len(toks) > 2 {
		add(strings.Join(toks[1:], " "))
	}

	// Orthographic variant.
	if rng.Bool(0.7) {
		add(altSpelling(label, rng))
	}

	// Wikidata is alias-richer than DBPedia.
	extra := 0
	if p == WikidataProfile {
		extra = rng.Intn(3)
	}
	for i := 0; i < extra; i++ {
		add(altSpelling(label, rng))
	}
	return aliases
}

func hasType(types []TypeID, t TypeID) bool {
	for _, x := range types {
		if x == t {
			return true
		}
	}
	return false
}
