// Package kg implements the knowledge-graph substrate of the reproduction:
// the ⟨E, T, P, F⟩ model from Section II of the paper (entities, types,
// properties, facts), fast label/alias lookup indexes, serialization, and a
// deterministic synthetic generator that stands in for the Wikidata and
// DBPedia dumps used by the original evaluation.
package kg

import (
	"fmt"
	"strings"
)

// EntityID identifies an entity within a Graph. IDs are dense indexes into
// Graph.Entities.
type EntityID int32

// TypeID identifies an entity type (class) within a Graph.
type TypeID int32

// PropID identifies a property (relation) within a Graph.
type PropID int32

// NoEntity is returned by lookups that find nothing.
const NoEntity EntityID = -1

// NoType marks the absence of a type (e.g. the root of the type hierarchy).
const NoType TypeID = -1

// Entity is a knowledge-graph entity: a canonical label plus zero or more
// aliases (the paper's "entity mentions", sourced from rdfs:label,
// skos:altLabel, and similar properties), and the set of types it belongs to.
type Entity struct {
	ID      EntityID
	Label   string
	Aliases []string
	Types   []TypeID
}

// Mentions returns the label followed by all aliases.
func (e *Entity) Mentions() []string {
	out := make([]string, 0, 1+len(e.Aliases))
	out = append(out, e.Label)
	out = append(out, e.Aliases...)
	return out
}

// Type is an entity class. Parent links form the type hierarchy used by the
// column-type-annotation task to pick the most specific common type.
type Type struct {
	ID     TypeID
	Name   string
	Parent TypeID
}

// Property is a relation between a subject entity and either an object
// entity or a literal.
type Property struct {
	ID     PropID
	Name   string
	Domain TypeID // expected subject type, NoType if unconstrained
	Range  TypeID // expected object type, NoType for literal-valued props
}

// Fact is a single ⟨subject, property, object⟩ triple. Exactly one of
// Object/Literal is meaningful: entity-valued facts set Object and leave
// Literal empty; literal-valued facts set Object to NoEntity.
type Fact struct {
	Subject EntityID
	Prop    PropID
	Object  EntityID
	Literal string
}

// Graph is an in-memory knowledge graph with lookup indexes. Build the
// indexes with Reindex after mutating the raw slices directly.
type Graph struct {
	Name     string
	Entities []Entity
	Types    []Type
	Props    []Property
	Facts    []Fact

	byMention map[string][]EntityID // lowercased label/alias -> entities
	out       [][]int32             // entity -> fact indexes where it is subject
	in        [][]int32             // entity -> fact indexes where it is object
}

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byMention: make(map[string][]EntityID)}
}

// Clone returns an independently growable copy of the graph: appending
// entities or facts to the clone never reallocates into (or reads from)
// the original's slices, and the clone gets its own lookup indexes. The
// per-entity alias and type slices are shared read-only — AddEntity only
// ever appends new Entity values, so both sides stay safe as long as
// callers never mutate an existing entity in place. Replicated serving
// uses this to give every node (and the router's control plane) a graph
// it can grow through ingest without coordinating with its siblings.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Name:     g.Name,
		Entities: append([]Entity(nil), g.Entities...),
		Types:    append([]Type(nil), g.Types...),
		Props:    append([]Property(nil), g.Props...),
		Facts:    append([]Fact(nil), g.Facts...),
	}
	ng.Reindex()
	return ng
}

// AddType appends a type and returns its ID.
func (g *Graph) AddType(name string, parent TypeID) TypeID {
	id := TypeID(len(g.Types))
	g.Types = append(g.Types, Type{ID: id, Name: name, Parent: parent})
	return id
}

// AddProperty appends a property and returns its ID.
func (g *Graph) AddProperty(name string, domain, rng TypeID) PropID {
	id := PropID(len(g.Props))
	g.Props = append(g.Props, Property{ID: id, Name: name, Domain: domain, Range: rng})
	return id
}

// AddEntity appends an entity and returns its ID. Reindex (or AddEntity for
// every entity before the first query) keeps the mention index current.
func (g *Graph) AddEntity(label string, aliases []string, types ...TypeID) EntityID {
	id := EntityID(len(g.Entities))
	g.Entities = append(g.Entities, Entity{ID: id, Label: label, Aliases: aliases, Types: types})
	if g.byMention != nil {
		g.indexMentions(id)
	}
	return id
}

// AddFact appends an entity-valued fact.
func (g *Graph) AddFact(s EntityID, p PropID, o EntityID) {
	g.Facts = append(g.Facts, Fact{Subject: s, Prop: p, Object: o})
}

// AddLiteralFact appends a literal-valued fact.
func (g *Graph) AddLiteralFact(s EntityID, p PropID, lit string) {
	g.Facts = append(g.Facts, Fact{Subject: s, Prop: p, Object: NoEntity, Literal: lit})
}

// Entity returns the entity with the given ID, or nil when out of range.
func (g *Graph) Entity(id EntityID) *Entity {
	if id < 0 || int(id) >= len(g.Entities) {
		return nil
	}
	return &g.Entities[id]
}

// Label returns the canonical label for id, or "" when out of range.
func (g *Graph) Label(id EntityID) string {
	if e := g.Entity(id); e != nil {
		return e.Label
	}
	return ""
}

// TypeName returns the name of type id, or "" when out of range.
func (g *Graph) TypeName(id TypeID) string {
	if id < 0 || int(id) >= len(g.Types) {
		return ""
	}
	return g.Types[id].Name
}

// PropName returns the name of property id, or "" when out of range.
func (g *Graph) PropName(id PropID) string {
	if id < 0 || int(id) >= len(g.Props) {
		return ""
	}
	return g.Props[id].Name
}

// Reindex rebuilds the mention and adjacency indexes from the raw slices.
// It is sized for million-entity graphs: the mention map is presized to the
// exact mention count (one growth-free build instead of log₂(n) rehashes)
// and the adjacency lists are laid out CSR-style over two shared backing
// arrays — a constant number of allocations instead of two per entity.
func (g *Graph) Reindex() {
	mentions := 0
	for i := range g.Entities {
		mentions += 1 + len(g.Entities[i].Aliases)
	}
	g.byMention = make(map[string][]EntityID, mentions)
	for i := range g.Entities {
		g.indexMentions(EntityID(i))
	}
	n := len(g.Entities)
	g.out = make([][]int32, n)
	g.in = make([][]int32, n)
	if len(g.Facts) == 0 {
		return
	}
	// Prefix-sum the degrees, then cursor-fill: fact indexes stay ascending
	// within each list, exactly as the old append loop produced them.
	outOff := make([]int, n+1)
	inOff := make([]int, n+1)
	for _, f := range g.Facts {
		outOff[f.Subject+1]++
		if f.Object != NoEntity {
			inOff[f.Object+1]++
		}
	}
	for i := 0; i < n; i++ {
		outOff[i+1] += outOff[i]
		inOff[i+1] += inOff[i]
	}
	outBack := make([]int32, outOff[n])
	inBack := make([]int32, inOff[n])
	outCur := make([]int, n)
	inCur := make([]int, n)
	copy(outCur, outOff[:n])
	copy(inCur, inOff[:n])
	for i, f := range g.Facts {
		outBack[outCur[f.Subject]] = int32(i)
		outCur[f.Subject]++
		if f.Object != NoEntity {
			inBack[inCur[f.Object]] = int32(i)
			inCur[f.Object]++
		}
	}
	// The per-entity views are capacity-clipped so an append to one list
	// could never spill into its neighbor's backing.
	for i := 0; i < n; i++ {
		g.out[i] = outBack[outOff[i]:outOff[i+1]:outOff[i+1]]
		g.in[i] = inBack[inOff[i]:inOff[i+1]:inOff[i+1]]
	}
}

func (g *Graph) indexMentions(id EntityID) {
	e := &g.Entities[id]
	for _, m := range e.Mentions() {
		key := strings.ToLower(m)
		g.byMention[key] = append(g.byMention[key], id)
	}
}

// ExactMatch returns the entities whose label or alias equals q
// (case-insensitively). The returned slice is shared; callers must not
// modify it.
func (g *Graph) ExactMatch(q string) []EntityID {
	return g.byMention[strings.ToLower(q)]
}

// FactsFrom returns the facts whose subject is id.
func (g *Graph) FactsFrom(id EntityID) []Fact {
	if g.out == nil || int(id) >= len(g.out) || id < 0 {
		return nil
	}
	idx := g.out[id]
	out := make([]Fact, len(idx))
	for i, fi := range idx {
		out[i] = g.Facts[fi]
	}
	return out
}

// FactsTo returns the facts whose object is id.
func (g *Graph) FactsTo(id EntityID) []Fact {
	if g.in == nil || int(id) >= len(g.in) || id < 0 {
		return nil
	}
	idx := g.in[id]
	out := make([]Fact, len(idx))
	for i, fi := range idx {
		out[i] = g.Facts[fi]
	}
	return out
}

// Neighbors returns the distinct entities connected to id by any fact, in
// either direction.
func (g *Graph) Neighbors(id EntityID) []EntityID {
	seen := make(map[EntityID]bool)
	var out []EntityID
	for _, f := range g.FactsFrom(id) {
		if f.Object != NoEntity && !seen[f.Object] {
			seen[f.Object] = true
			out = append(out, f.Object)
		}
	}
	for _, f := range g.FactsTo(id) {
		if !seen[f.Subject] {
			seen[f.Subject] = true
			out = append(out, f.Subject)
		}
	}
	return out
}

// HasType reports whether entity id has type t, directly or through the
// type hierarchy.
func (g *Graph) HasType(id EntityID, t TypeID) bool {
	e := g.Entity(id)
	if e == nil {
		return false
	}
	for _, et := range e.Types {
		for cur := et; cur != NoType; cur = g.Types[cur].Parent {
			if cur == t {
				return true
			}
		}
	}
	return false
}

// TypeDepth returns the depth of t in the hierarchy (root types have depth 0).
func (g *Graph) TypeDepth(t TypeID) int {
	d := 0
	for cur := t; cur != NoType && int(cur) < len(g.Types); cur = g.Types[cur].Parent {
		if g.Types[cur].Parent == NoType {
			break
		}
		d++
	}
	return d
}

// Stats summarizes the graph for logging and Table I style reporting.
func (g *Graph) Stats() string {
	aliases := 0
	for i := range g.Entities {
		aliases += len(g.Entities[i].Aliases)
	}
	return fmt.Sprintf("%s: %d entities, %d aliases, %d types, %d props, %d facts",
		g.Name, len(g.Entities), aliases, len(g.Types), len(g.Props), len(g.Facts))
}
