package kg

import (
	"bytes"
	"strings"
	"testing"
)

func smallGraph(t *testing.T) (*Graph, *Schema) {
	t.Helper()
	g, s := Generate(DefaultGeneratorConfig(WikidataProfile, 500))
	if len(g.Entities) == 0 {
		t.Fatal("generator produced no entities")
	}
	return g, s
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig(WikidataProfile, 300)
	g1, _ := Generate(cfg)
	g2, _ := Generate(cfg)
	if len(g1.Entities) != len(g2.Entities) || len(g1.Facts) != len(g2.Facts) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(g1.Entities), len(g1.Facts), len(g2.Entities), len(g2.Facts))
	}
	for i := range g1.Entities {
		if g1.Entities[i].Label != g2.Entities[i].Label {
			t.Fatalf("entity %d label differs: %q vs %q", i, g1.Entities[i].Label, g2.Entities[i].Label)
		}
		if len(g1.Entities[i].Aliases) != len(g2.Entities[i].Aliases) {
			t.Fatalf("entity %d alias count differs", i)
		}
	}
}

func TestGenerateEntityCount(t *testing.T) {
	g, _ := Generate(DefaultGeneratorConfig(WikidataProfile, 1000))
	if n := len(g.Entities); n < 950 || n > 1050 {
		t.Fatalf("entity count %d far from requested 1000", n)
	}
}

func TestAliasStatisticsMatchPaper(t *testing.T) {
	// Section IV-E: "the number of synonyms is less than 50 for at least
	// 95% of the KG entities" and "for the vast majority of the entities,
	// there were at least 3 aliases/synonyms".
	g, _ := Generate(DefaultGeneratorConfig(WikidataProfile, 2000))
	atLeast3, under50 := 0, 0
	for i := range g.Entities {
		n := len(g.Entities[i].Aliases)
		if n >= 3 {
			atLeast3++
		}
		if n < 50 {
			under50++
		}
	}
	total := len(g.Entities)
	if frac := float64(atLeast3) / float64(total); frac < 0.60 {
		t.Fatalf("only %.0f%% of entities have >=3 aliases", frac*100)
	}
	if frac := float64(under50) / float64(total); frac < 0.95 {
		t.Fatalf("only %.0f%% of entities have <50 aliases", frac*100)
	}
}

func TestExactMatchFindsLabelAndAlias(t *testing.T) {
	g, _ := smallGraph(t)
	e := &g.Entities[0]
	found := false
	for _, id := range g.ExactMatch(strings.ToUpper(e.Label)) {
		if id == e.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("ExactMatch missed own label %q", e.Label)
	}
	if len(e.Aliases) > 0 {
		found = false
		for _, id := range g.ExactMatch(e.Aliases[0]) {
			if id == e.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("ExactMatch missed alias %q", e.Aliases[0])
		}
	}
}

func TestFactsRespectSchema(t *testing.T) {
	g, s := smallGraph(t)
	for _, f := range g.Facts {
		p := g.Props[f.Prop]
		if f.Object == NoEntity {
			if p.Range != NoType {
				t.Fatalf("literal fact on entity-valued property %s", p.Name)
			}
			if f.Literal == "" {
				t.Fatalf("literal fact with empty literal on %s", p.Name)
			}
			continue
		}
		if p.Range != NoType && !g.HasType(f.Object, p.Range) {
			t.Fatalf("fact %s: object %q lacks range type %s",
				p.Name, g.Label(f.Object), g.TypeName(p.Range))
		}
		if p.Domain != NoType && !g.HasType(f.Subject, p.Domain) {
			t.Fatalf("fact %s: subject %q lacks domain type %s",
				p.Name, g.Label(f.Subject), g.TypeName(p.Domain))
		}
	}
	_ = s
}

func TestNeighborsSymmetric(t *testing.T) {
	g, _ := smallGraph(t)
	// For a sample of entities: if b in Neighbors(a) then a in Neighbors(b).
	for i := 0; i < 50 && i < len(g.Entities); i++ {
		a := EntityID(i)
		for _, b := range g.Neighbors(a) {
			found := false
			for _, back := range g.Neighbors(b) {
				if back == a {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor asymmetry: %d -> %d", a, b)
			}
		}
	}
}

func TestHasTypeHierarchy(t *testing.T) {
	g, s := smallGraph(t)
	// Find a city; it must also be a place and an entity via the hierarchy.
	for i := range g.Entities {
		if hasType(g.Entities[i].Types, s.City) {
			id := g.Entities[i].ID
			if !g.HasType(id, s.City) || !g.HasType(id, s.Place) || !g.HasType(id, s.Root) {
				t.Fatal("type hierarchy walk broken for city")
			}
			if g.HasType(id, s.Person) {
				t.Fatal("city must not be a person")
			}
			return
		}
	}
	t.Fatal("no city generated")
}

func TestTypeDepth(t *testing.T) {
	g, s := smallGraph(t)
	if g.TypeDepth(s.Root) != 0 {
		t.Fatalf("root depth = %d", g.TypeDepth(s.Root))
	}
	if g.TypeDepth(s.City) <= g.TypeDepth(s.Place) {
		t.Fatal("city should be deeper than place")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g, _ := smallGraph(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Entities) != len(g.Entities) || len(g2.Facts) != len(g.Facts) {
		t.Fatal("round trip lost data")
	}
	// Indexes must be rebuilt: exact match still works.
	e := &g.Entities[0]
	if len(g2.ExactMatch(e.Label)) == 0 {
		t.Fatal("round-tripped graph lost mention index")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g, _ := smallGraph(t)
	path := t.TempDir() + "/graph.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name != g.Name || len(g2.Entities) != len(g.Entities) {
		t.Fatal("file round trip mismatch")
	}
}

func TestDBPediaProfileDiffers(t *testing.T) {
	gw, _ := Generate(DefaultGeneratorConfig(WikidataProfile, 1000))
	gd, _ := Generate(DefaultGeneratorConfig(DBPediaProfile, 1000))
	// DBPedia labels sometimes carry parenthesized suffixes.
	parens := 0
	for i := range gd.Entities {
		if strings.Contains(gd.Entities[i].Label, "(") {
			parens++
		}
	}
	if parens == 0 {
		t.Fatal("DBPedia profile produced no disambiguation suffixes")
	}
	// Wikidata should be alias-richer on average.
	avg := func(g *Graph) float64 {
		n := 0
		for i := range g.Entities {
			n += len(g.Entities[i].Aliases)
		}
		return float64(n) / float64(len(g.Entities))
	}
	if avg(gw) <= avg(gd) {
		t.Fatalf("expected Wikidata profile alias-richer: %.2f vs %.2f", avg(gw), avg(gd))
	}
}

func TestPseudoTranslateDeterministic(t *testing.T) {
	a := pseudoTranslate("Germany", langDe)
	b := pseudoTranslate("Germany", langDe)
	if a != b {
		t.Fatal("pseudoTranslate not deterministic")
	}
	if a == "Germany" {
		t.Fatal("pseudoTranslate must change the label")
	}
	// Different languages give different surface forms.
	if pseudoTranslate("Germany", langFr) == a {
		t.Fatal("languages should differ")
	}
}

func TestEntityAccessorsOutOfRange(t *testing.T) {
	g := NewGraph("x")
	if g.Entity(0) != nil || g.Entity(-1) != nil {
		t.Fatal("out-of-range entity should be nil")
	}
	if g.Label(5) != "" || g.TypeName(5) != "" || g.PropName(5) != "" {
		t.Fatal("out-of-range accessors should return empty")
	}
	if g.FactsFrom(3) != nil || g.FactsTo(3) != nil {
		t.Fatal("facts on empty graph should be nil")
	}
}

func TestStatsString(t *testing.T) {
	g, _ := smallGraph(t)
	s := g.Stats()
	if !strings.Contains(s, "entities") {
		t.Fatalf("Stats = %q", s)
	}
}
