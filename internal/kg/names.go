package kg

import (
	"strings"

	"emblookup/internal/mathx"
)

// nameGen builds pronounceable synthetic labels from syllable inventories so
// that generated knowledge graphs contain realistic, diverse entity mentions
// with natural character statistics (rather than random letter soup, which
// would make the syntactic-similarity learning problem artificially easy).
type nameGen struct {
	rng *mathx.RNG
}

var (
	onsets          = []string{"b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "qu", "r", "s", "st", "sh", "t", "tr", "v", "w", "z", ""}
	vowels          = []string{"a", "e", "i", "o", "u", "ai", "ea", "ia", "io", "ou"}
	codas           = []string{"", "", "l", "n", "r", "s", "t", "m", "nd", "rk", "st", "ss"}
	countrySuffixes = []string{"ia", "land", "stan", "burg", "mark", "onia"}
	citySuffixes    = []string{"ton", "ville", "burg", "grad", "port", "ford", "ham", "wick"}
	riverSuffixes   = []string{" River", " Stream", ""}
	firstNames      = []string{"Alan", "Bela", "Carla", "Dmitri", "Elena", "Farid", "Greta", "Hiro", "Ines", "Jonas", "Karin", "Luca", "Mara", "Nadia", "Omar", "Petra", "Quentin", "Rosa", "Sven", "Talia", "Viktor", "Wanda", "Yusuf", "Zara"}
	companySuffixes = []string{" Corp", " Systems", " Group", " Industries", " Labs", " Holdings"}
	universityForms = []string{"University of %s", "%s Institute", "%s Technical University", "%s College"}
	filmPatterns    = []string{"The %s of %s", "%s Rising", "Return to %s", "%s at Midnight", "The Last %s"}
	filmNouns       = []string{"Shadow", "Garden", "Voyage", "Empire", "Silence", "Harvest", "Signal", "Winter"}
	bookPatterns    = []string{"A History of %s", "Letters from %s", "The %s Chronicles", "On %s"}
)

func (n *nameGen) syllable() string {
	return onsets[n.rng.Intn(len(onsets))] + vowels[n.rng.Intn(len(vowels))] + codas[n.rng.Intn(len(codas))]
}

// stem produces a capitalized pronounceable stem of 2-3 syllables.
func (n *nameGen) stem() string {
	k := 2 + n.rng.Intn(2)
	var b strings.Builder
	for i := 0; i < k; i++ {
		b.WriteString(n.syllable())
	}
	s := b.String()
	if s == "" {
		s = "xen"
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func (n *nameGen) country() string {
	return n.stem() + countrySuffixes[n.rng.Intn(len(countrySuffixes))]
}

func (n *nameGen) city() string {
	return n.stem() + citySuffixes[n.rng.Intn(len(citySuffixes))]
}

func (n *nameGen) river() string {
	return n.stem() + riverSuffixes[n.rng.Intn(len(riverSuffixes))]
}

func (n *nameGen) person() string {
	first := firstNames[n.rng.Intn(len(firstNames))]
	return first + " " + n.stem()
}

func (n *nameGen) company() string {
	return n.stem() + companySuffixes[n.rng.Intn(len(companySuffixes))]
}

func (n *nameGen) university(place string) string {
	form := universityForms[n.rng.Intn(len(universityForms))]
	return sprintf1(form, place)
}

func (n *nameGen) film(place string) string {
	p := filmPatterns[n.rng.Intn(len(filmPatterns))]
	noun := filmNouns[n.rng.Intn(len(filmNouns))]
	switch strings.Count(p, "%s") {
	case 2:
		return sprintf2(p, noun, place)
	default:
		return sprintf1(p, noun)
	}
}

func (n *nameGen) book(topic string) string {
	p := bookPatterns[n.rng.Intn(len(bookPatterns))]
	return sprintf1(p, topic)
}

// sprintf1/sprintf2 avoid pulling fmt into the hot generation path.
func sprintf1(pattern, a string) string {
	return strings.Replace(pattern, "%s", a, 1)
}

func sprintf2(pattern, a, b string) string {
	return strings.Replace(strings.Replace(pattern, "%s", a, 1), "%s", b, 1)
}

// pseudoTranslate deterministically maps a label into one of several
// synthetic "languages". Like real cross-lingual aliases (Germany →
// Deutschland), the output shares essentially no surface form with the
// input: a fresh name is synthesized from language-specific syllables
// seeded by the label's hash, so the mapping is deterministic but
// syntactically unrelated — which is what makes it a *semantic* rather
// than syntactic lookup challenge.
type language int

const (
	langDe language = iota
	langFr
	langEs
	numLanguages
)

var langSyllables = [numLanguages][]string{
	langDe: {"schwarz", "hof", "berg", "stein", "wald", "bach", "feld", "dorf", "heim", "muen", "gruen", "burg", "tal", "see", "kirch", "haus"},
	langFr: {"beau", "mont", "ville", "chateau", "riviere", "clair", "fleur", "noir", "sur", "lac", "grand", "petit", "port", "roche", "val", "bois"},
	langEs: {"villa", "sierra", "rio", "santa", "monte", "del", "puerto", "casa", "alta", "sol", "verde", "cruz", "isla", "campo", "luna", "mar"},
}

var langSuffix = [numLanguages]string{langDe: "en", langFr: "", langEs: "o"}

func pseudoTranslate(label string, lang language) string {
	syll := langSyllables[lang]
	h := hashLabel(strings.ToLower(label)) ^ (uint64(lang)+1)*0x9e3779b97f4a7c15
	var b strings.Builder
	// Four syllables from a 16-way inventory give a 65536-name space per
	// language, so distinct labels essentially never collide.
	for i := 0; i < 4; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		b.WriteString(syll[h%uint64(len(syll))])
	}
	b.WriteString(langSuffix[lang])
	out := title(b.String())
	if lang == langFr {
		out = "Le " + out
	}
	return out
}

func hashLabel(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// altSpelling produces a plausible orthographic variant (doubling a
// consonant or swapping a vowel) — a *syntactically close* alias like
// colour/color.
func altSpelling(label string, rng *mathx.RNG) string {
	r := []rune(label)
	if len(r) < 3 {
		return label + "e"
	}
	i := 1 + rng.Intn(len(r)-2)
	switch rng.Intn(3) {
	case 0: // double a letter
		out := make([]rune, 0, len(r)+1)
		out = append(out, r[:i]...)
		out = append(out, r[i])
		out = append(out, r[i:]...)
		return string(out)
	case 1: // swap a vowel
		vs := []rune("aeiou")
		for j := i; j < len(r); j++ {
			if strings.ContainsRune("aeiou", r[j]) {
				r[j] = vs[rng.Intn(len(vs))]
				return string(r)
			}
		}
		return string(r) + "e"
	default: // drop a silent-ish letter
		out := make([]rune, 0, len(r)-1)
		out = append(out, r[:i]...)
		out = append(out, r[i+1:]...)
		return string(out)
	}
}
