package kg

import "fmt"

// Triple-pattern queries: a small SPARQL-like matcher over the fact set,
// the local stand-in for the SPARQL-based Wikidata Query Service the paper
// lists among remote lookup backends. Patterns are conjunctive (a basic
// graph pattern); evaluation is a nested-loop join that picks the most
// selective access path available per pattern (subject index, object
// index, or full scan).

// Term is one position of a triple pattern: a variable, a bound entity, a
// bound property, or a bound literal.
type Term struct {
	Var     string
	Entity  EntityID
	Prop    PropID
	Literal string
	kind    termKind
}

type termKind int

const (
	termVar termKind = iota
	termEntity
	termProp
	termLiteral
)

// V makes a variable term (names are arbitrary, "?x"-style prefixes not
// required).
func V(name string) Term { return Term{Var: name, kind: termVar} }

// E makes a bound entity term.
func E(id EntityID) Term { return Term{Entity: id, kind: termEntity} }

// P makes a bound property term.
func P(id PropID) Term { return Term{Prop: id, kind: termProp} }

// L makes a bound literal term.
func L(lit string) Term { return Term{Literal: lit, kind: termLiteral} }

// TriplePattern is one ⟨subject, property, object⟩ pattern. The subject
// must be an entity or variable, the property a property or variable, and
// the object an entity, literal, or variable.
type TriplePattern struct {
	S, P, O Term
}

// Binding maps variable names to matched values. Entity and property
// variables bind IDs; object variables over literal facts bind the literal
// text.
type Binding struct {
	Entities map[string]EntityID
	Props    map[string]PropID
	Literals map[string]string
}

func newBinding() *Binding {
	return &Binding{
		Entities: map[string]EntityID{},
		Props:    map[string]PropID{},
		Literals: map[string]string{},
	}
}

func (b *Binding) clone() *Binding {
	nb := newBinding()
	for k, v := range b.Entities {
		nb.Entities[k] = v
	}
	for k, v := range b.Props {
		nb.Props[k] = v
	}
	for k, v := range b.Literals {
		nb.Literals[k] = v
	}
	return nb
}

// Query evaluates a conjunction of triple patterns and returns every
// consistent binding of the variables. Patterns are joined left to right;
// each step uses the subject or object adjacency index when that position
// is already bound. The result is deterministic (fact order).
func (g *Graph) Query(patterns []TriplePattern) ([]*Binding, error) {
	for i, p := range patterns {
		if p.S.kind == termLiteral || p.S.kind == termProp {
			return nil, fmt.Errorf("kg: pattern %d: subject must be an entity or variable", i)
		}
		if p.P.kind == termLiteral || p.P.kind == termEntity {
			return nil, fmt.Errorf("kg: pattern %d: property must be a property or variable", i)
		}
		if p.O.kind == termProp {
			return nil, fmt.Errorf("kg: pattern %d: object cannot be a property", i)
		}
	}
	results := []*Binding{newBinding()}
	for _, p := range patterns {
		var next []*Binding
		for _, b := range results {
			next = append(next, g.matchPattern(p, b)...)
		}
		results = next
		if len(results) == 0 {
			break
		}
	}
	return results, nil
}

// resolve returns the concrete subject for a pattern under a binding, and
// whether it is bound.
func (t Term) resolveEntity(b *Binding) (EntityID, bool) {
	switch t.kind {
	case termEntity:
		return t.Entity, true
	case termVar:
		id, ok := b.Entities[t.Var]
		return id, ok
	}
	return NoEntity, false
}

func (t Term) resolveProp(b *Binding) (PropID, bool) {
	switch t.kind {
	case termProp:
		return t.Prop, true
	case termVar:
		id, ok := b.Props[t.Var]
		return id, ok
	}
	return -1, false
}

// matchPattern extends binding b with every fact matching p.
func (g *Graph) matchPattern(p TriplePattern, b *Binding) []*Binding {
	// Choose the cheapest access path.
	var facts []Fact
	if s, ok := p.S.resolveEntity(b); ok {
		facts = g.FactsFrom(s)
	} else if o, ok := p.O.resolveEntity(b); ok && p.O.kind != termLiteral {
		facts = g.FactsTo(o)
	} else {
		facts = g.Facts
	}

	var out []*Binding
	for _, f := range facts {
		nb := g.tryBind(p, b, f)
		if nb != nil {
			out = append(out, nb)
		}
	}
	return out
}

// tryBind checks fact f against pattern p under binding b, returning the
// extended binding or nil.
func (g *Graph) tryBind(p TriplePattern, b *Binding, f Fact) *Binding {
	// Subject.
	if s, ok := p.S.resolveEntity(b); ok {
		if f.Subject != s {
			return nil
		}
	}
	// Property.
	if pr, ok := p.P.resolveProp(b); ok {
		if f.Prop != pr {
			return nil
		}
	}
	// Object.
	switch p.O.kind {
	case termEntity:
		if f.Object != p.O.Entity {
			return nil
		}
	case termLiteral:
		if f.Object != NoEntity || f.Literal != p.O.Literal {
			return nil
		}
	case termVar:
		if f.Object != NoEntity {
			if id, ok := b.Entities[p.O.Var]; ok && id != f.Object {
				return nil
			}
			if _, ok := b.Literals[p.O.Var]; ok {
				return nil // previously bound to a literal
			}
		} else {
			if lit, ok := b.Literals[p.O.Var]; ok && lit != f.Literal {
				return nil
			}
			if _, ok := b.Entities[p.O.Var]; ok {
				return nil
			}
		}
	}

	nb := b.clone()
	if p.S.kind == termVar {
		nb.Entities[p.S.Var] = f.Subject
	}
	if p.P.kind == termVar {
		nb.Props[p.P.Var] = f.Prop
	}
	if p.O.kind == termVar {
		if f.Object != NoEntity {
			nb.Entities[p.O.Var] = f.Object
		} else {
			nb.Literals[p.O.Var] = f.Literal
		}
	}
	return nb
}
