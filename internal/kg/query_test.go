package kg

import "testing"

// queryGraph builds a small fixed graph:
//
//	alice  bornIn   berlin
//	alice  worksFor acme
//	bob    bornIn   berlin
//	bob    worksFor globex
//	berlin locatedIn germany
//	acme   population "10" (literal, reusing a prop slot for simplicity)
func queryGraph(t *testing.T) (*Graph, map[string]EntityID, map[string]PropID) {
	t.Helper()
	g := NewGraph("q")
	root := g.AddType("entity", NoType)
	person := g.AddType("person", root)
	city := g.AddType("city", root)
	country := g.AddType("country", root)
	company := g.AddType("company", root)

	ents := map[string]EntityID{}
	ents["alice"] = g.AddEntity("Alice", nil, person)
	ents["bob"] = g.AddEntity("Bob", nil, person)
	ents["berlin"] = g.AddEntity("Berlin", nil, city)
	ents["germany"] = g.AddEntity("Germany", nil, country)
	ents["acme"] = g.AddEntity("Acme", nil, company)
	ents["globex"] = g.AddEntity("Globex", nil, company)

	props := map[string]PropID{}
	props["bornIn"] = g.AddProperty("bornIn", person, city)
	props["worksFor"] = g.AddProperty("worksFor", person, company)
	props["locatedIn"] = g.AddProperty("locatedIn", city, country)
	props["size"] = g.AddProperty("size", company, NoType)

	g.AddFact(ents["alice"], props["bornIn"], ents["berlin"])
	g.AddFact(ents["alice"], props["worksFor"], ents["acme"])
	g.AddFact(ents["bob"], props["bornIn"], ents["berlin"])
	g.AddFact(ents["bob"], props["worksFor"], ents["globex"])
	g.AddFact(ents["berlin"], props["locatedIn"], ents["germany"])
	g.AddLiteralFact(ents["acme"], props["size"], "10")
	g.Reindex()
	return g, ents, props
}

func TestQuerySingleBoundSubject(t *testing.T) {
	g, ents, props := queryGraph(t)
	res, err := g.Query([]TriplePattern{
		{S: E(ents["alice"]), P: P(props["bornIn"]), O: V("city")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Entities["city"] != ents["berlin"] {
		t.Fatalf("bindings = %+v", res)
	}
}

func TestQueryVariableSubject(t *testing.T) {
	g, ents, props := queryGraph(t)
	res, err := g.Query([]TriplePattern{
		{S: V("who"), P: P(props["bornIn"]), O: E(ents["berlin"])},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("want alice and bob, got %d bindings", len(res))
	}
	found := map[EntityID]bool{}
	for _, b := range res {
		found[b.Entities["who"]] = true
	}
	if !found[ents["alice"]] || !found[ents["bob"]] {
		t.Fatal("missing expected subjects")
	}
}

func TestQueryJoinAcrossPatterns(t *testing.T) {
	g, ents, props := queryGraph(t)
	// Who was born in a city located in Germany, and where do they work?
	res, err := g.Query([]TriplePattern{
		{S: V("who"), P: P(props["bornIn"]), O: V("city")},
		{S: V("city"), P: P(props["locatedIn"]), O: E(ents["germany"])},
		{S: V("who"), P: P(props["worksFor"]), O: V("employer")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("want 2 joined bindings, got %d", len(res))
	}
	for _, b := range res {
		if b.Entities["city"] != ents["berlin"] {
			t.Fatal("join leaked a wrong city")
		}
		who := b.Entities["who"]
		emp := b.Entities["employer"]
		if who == ents["alice"] && emp != ents["acme"] {
			t.Fatal("alice's employer wrong")
		}
		if who == ents["bob"] && emp != ents["globex"] {
			t.Fatal("bob's employer wrong")
		}
	}
}

func TestQueryLiteralObject(t *testing.T) {
	g, ents, props := queryGraph(t)
	res, err := g.Query([]TriplePattern{
		{S: V("co"), P: P(props["size"]), O: L("10")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Entities["co"] != ents["acme"] {
		t.Fatalf("literal match = %+v", res)
	}
	// Variable object over a literal fact binds the literal.
	res, err = g.Query([]TriplePattern{
		{S: E(ents["acme"]), P: P(props["size"]), O: V("n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Literals["n"] != "10" {
		t.Fatalf("literal binding = %+v", res)
	}
}

func TestQueryVariableProperty(t *testing.T) {
	g, ents, _ := queryGraph(t)
	res, err := g.Query([]TriplePattern{
		{S: E(ents["alice"]), P: V("p"), O: V("o")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("alice has 2 facts, got %d bindings", len(res))
	}
}

func TestQueryNoMatch(t *testing.T) {
	g, ents, props := queryGraph(t)
	res, err := g.Query([]TriplePattern{
		{S: E(ents["germany"]), P: P(props["bornIn"]), O: V("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expected no bindings, got %d", len(res))
	}
}

func TestQueryInvalidPatterns(t *testing.T) {
	g, _, props := queryGraph(t)
	if _, err := g.Query([]TriplePattern{{S: L("x"), P: P(props["bornIn"]), O: V("o")}}); err == nil {
		t.Fatal("literal subject should error")
	}
	if _, err := g.Query([]TriplePattern{{S: V("s"), P: L("x"), O: V("o")}}); err == nil {
		t.Fatal("literal property should error")
	}
	if _, err := g.Query([]TriplePattern{{S: V("s"), P: V("p"), O: P(props["bornIn"])}}); err == nil {
		t.Fatal("property object should error")
	}
}

func TestQuerySharedVariableConsistency(t *testing.T) {
	g, ents, props := queryGraph(t)
	// ?x bornIn ?c AND ?x worksFor acme — only alice satisfies both.
	res, err := g.Query([]TriplePattern{
		{S: V("x"), P: P(props["bornIn"]), O: V("c")},
		{S: V("x"), P: P(props["worksFor"]), O: E(ents["acme"])},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Entities["x"] != ents["alice"] {
		t.Fatalf("shared-variable join = %+v", res)
	}
}

func TestQueryOnGeneratedGraph(t *testing.T) {
	g, s := Generate(DefaultGeneratorConfig(WikidataProfile, 300))
	// Every person's birthplace must be a city (schema invariant checked
	// through the query engine).
	res, err := g.Query([]TriplePattern{
		{S: V("p"), P: P(s.BornIn), O: V("c")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no bornIn facts matched")
	}
	for _, b := range res {
		if !g.HasType(b.Entities["c"], s.City) {
			t.Fatal("bornIn object is not a city")
		}
	}
}
