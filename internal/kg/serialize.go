package kg

import (
	"bufio"
	"encoding/gob"
	"io"
	"os"
)

// graphWire is the serialized form of a Graph: the derived indexes are
// rebuilt on load rather than stored.
type graphWire struct {
	Name     string
	Entities []Entity
	Types    []Type
	Props    []Property
	Facts    []Fact
}

// Write serializes g to w in a compact binary format.
func (g *Graph) Write(w io.Writer) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(graphWire{
		Name:     g.Name,
		Entities: g.Entities,
		Types:    g.Types,
		Props:    g.Props,
		Facts:    g.Facts,
	})
}

// Read deserializes a Graph written by Write and rebuilds its indexes.
func Read(r io.Reader) (*Graph, error) {
	var wire graphWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	g := &Graph{
		Name:     wire.Name,
		Entities: wire.Entities,
		Types:    wire.Types,
		Props:    wire.Props,
		Facts:    wire.Facts,
	}
	g.Reindex()
	return g, nil
}

// SaveFile writes g to path, creating or truncating the file.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := g.Write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph previously written with SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
