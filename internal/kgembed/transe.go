// Package kgembed implements a classical knowledge-graph embedding model
// (TransE) over the fact set ⟨s, p, o⟩. The paper's introduction argues
// that such embeddings are *not* usable for the lookup operation — they
// embed entity IDs, not mention strings, so retrieving an embedding
// requires already knowing the entity — and its conclusion proposes
// bootstrapping lookup embeddings from them as future work. This package
// exists for both: the "KG embeddings cannot lookup" demonstration
// (experiments.KGEmbedDemo) and the bootstrap extension
// (core.Config.KGBootstrap), and as a coherence signal for collective
// disambiguation.
package kgembed

import (
	"fmt"

	"emblookup/internal/kg"
	"emblookup/internal/mathx"
)

// Model holds TransE embeddings: one vector per entity and one per
// property, trained so that s + p ≈ o for true facts.
type Model struct {
	Dim      int
	Entities *mathx.Matrix // |E| × Dim
	Props    *mathx.Matrix // |P| × Dim
}

// Config controls TransE training.
type Config struct {
	Dim       int
	Epochs    int
	LR        float32
	Margin    float32
	Negatives int
	Seed      uint64
}

// DefaultConfig returns standard small-graph settings.
func DefaultConfig() Config {
	return Config{Dim: 32, Epochs: 30, LR: 0.05, Margin: 1.0, Negatives: 2, Seed: 61}
}

// Train fits TransE on g's entity-valued facts with margin-based ranking
// loss and random entity corruption, the original TransE recipe.
func Train(g *kg.Graph, cfg Config) (*Model, error) {
	if cfg.Dim <= 0 {
		cfg = DefaultConfig()
	}
	if len(g.Entities) == 0 {
		return nil, fmt.Errorf("kgembed: empty graph")
	}
	rng := mathx.NewRNG(cfg.Seed)
	m := &Model{
		Dim:      cfg.Dim,
		Entities: mathx.NewMatrix(len(g.Entities), cfg.Dim),
		Props:    mathx.NewMatrix(len(g.Props), cfg.Dim),
	}
	m.Entities.FillRandn(rng, 0.5)
	m.Props.FillRandn(rng, 0.5)
	for i := 0; i < m.Entities.Rows; i++ {
		mathx.Normalize(m.Entities.Row(i))
	}

	// Entity-valued facts only.
	var facts []kg.Fact
	for _, f := range g.Facts {
		if f.Object != kg.NoEntity {
			facts = append(facts, f)
		}
	}
	if len(facts) == 0 {
		return m, nil
	}

	order := make([]int, len(facts))
	for i := range order {
		order[i] = i
	}
	n := len(g.Entities)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.ShuffleInts(order)
		for _, fi := range order {
			f := facts[fi]
			for neg := 0; neg < cfg.Negatives; neg++ {
				// Corrupt head or tail.
				cs, co := f.Subject, f.Object
				if rng.Bool(0.5) {
					cs = kg.EntityID(rng.Intn(n))
				} else {
					co = kg.EntityID(rng.Intn(n))
				}
				if cs == f.Subject && co == f.Object {
					continue
				}
				m.step(f.Subject, f.Prop, f.Object, cs, co, cfg)
			}
		}
		// Re-normalize entities each epoch (TransE's constraint).
		for i := 0; i < m.Entities.Rows; i++ {
			mathx.Normalize(m.Entities.Row(i))
		}
	}
	return m, nil
}

// step applies one margin-ranking update: push the true triple's score
// ‖s+p−o‖² below the corrupted one's by the margin.
func (m *Model) step(s kg.EntityID, p kg.PropID, o, cs, co kg.EntityID, cfg Config) {
	pos := m.Score(s, p, o)
	neg := m.Score(cs, p, co)
	if pos+cfg.Margin <= neg {
		return
	}
	// Gradients of ‖s+p−o‖²: d/ds = 2(s+p−o), d/do = −2(s+p−o), d/dp = 2(s+p−o).
	grad := make([]float32, m.Dim)
	sv, pv, ov := m.Entities.Row(int(s)), m.Props.Row(int(p)), m.Entities.Row(int(o))
	for i := range grad {
		grad[i] = 2 * (sv[i] + pv[i] - ov[i])
	}
	mathx.Axpy(-cfg.LR, grad, sv)
	mathx.Axpy(-cfg.LR, grad, pv)
	mathx.Axpy(cfg.LR, grad, ov)
	// Ascent on the corrupted triple.
	csv, cov := m.Entities.Row(int(cs)), m.Entities.Row(int(co))
	for i := range grad {
		grad[i] = 2 * (csv[i] + pv[i] - cov[i])
	}
	mathx.Axpy(cfg.LR, grad, csv)
	mathx.Axpy(cfg.LR, grad, pv)
	mathx.Axpy(-cfg.LR, grad, cov)
}

// Score returns ‖s + p − o‖², lower for more plausible facts.
func (m *Model) Score(s kg.EntityID, p kg.PropID, o kg.EntityID) float32 {
	sv := m.Entities.Row(int(s))
	pv := m.Props.Row(int(p))
	ov := m.Entities.Row(int(o))
	var sum float32
	for i := 0; i < m.Dim; i++ {
		d := sv[i] + pv[i] - ov[i]
		sum += d * d
	}
	return sum
}

// Entity returns the embedding of entity id (shared storage).
func (m *Model) Entity(id kg.EntityID) []float32 { return m.Entities.Row(int(id)) }

// PredictTail ranks all entities as tail candidates for (s, p) and returns
// the ids of the k best — the link-prediction task KG embeddings are
// actually built for.
func (m *Model) PredictTail(s kg.EntityID, p kg.PropID, k int) []kg.EntityID {
	type scored struct {
		id kg.EntityID
		d  float32
	}
	best := make([]scored, 0, k)
	for o := 0; o < m.Entities.Rows; o++ {
		d := m.Score(s, p, kg.EntityID(o))
		if len(best) == k && d >= best[k-1].d {
			continue
		}
		pos := len(best)
		for pos > 0 && best[pos-1].d > d {
			pos--
		}
		if len(best) < k {
			best = append(best, scored{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = scored{id: kg.EntityID(o), d: d}
	}
	out := make([]kg.EntityID, len(best))
	for i, b := range best {
		out[i] = b.id
	}
	return out
}

// Similarity returns −‖e1 − e2‖², a relatedness score between entities
// (higher = more related), the signal joint-disambiguation systems use.
func (m *Model) Similarity(a, b kg.EntityID) float32 {
	return -mathx.SquaredL2(m.Entity(a), m.Entity(b))
}
