package kgembed

import (
	"testing"

	"emblookup/internal/kg"
	"emblookup/internal/mathx"
)

func trainSmall(t *testing.T) (*kg.Graph, *kg.Schema, *Model) {
	t.Helper()
	g, s := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 400))
	m, err := Train(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, s, m
}

func TestTrainShapes(t *testing.T) {
	g, _, m := trainSmall(t)
	if m.Entities.Rows != len(g.Entities) || m.Props.Rows != len(g.Props) {
		t.Fatal("embedding table shapes wrong")
	}
	if len(m.Entity(0)) != m.Dim {
		t.Fatal("entity dim wrong")
	}
}

func TestTrueFactsScoreBetterThanCorrupted(t *testing.T) {
	g, _, m := trainSmall(t)
	rng := mathx.NewRNG(9)
	better, total := 0, 0
	for _, f := range g.Facts {
		if f.Object == kg.NoEntity {
			continue
		}
		total++
		corrupt := kg.EntityID(rng.Intn(len(g.Entities)))
		if m.Score(f.Subject, f.Prop, f.Object) < m.Score(f.Subject, f.Prop, corrupt) {
			better++
		}
		if total >= 500 {
			break
		}
	}
	if frac := float64(better) / float64(total); frac < 0.8 {
		t.Fatalf("true facts outscored corrupted only %.2f of the time", frac)
	}
}

func TestPredictTailRanksTruth(t *testing.T) {
	g, _, m := trainSmall(t)
	hits, total := 0, 0
	for _, f := range g.Facts {
		if f.Object == kg.NoEntity {
			continue
		}
		total++
		for _, cand := range m.PredictTail(f.Subject, f.Prop, 20) {
			if cand == f.Object {
				hits++
				break
			}
		}
		if total >= 200 {
			break
		}
	}
	// Link prediction on a small sparse graph is hard; require clearly
	// better than chance (20/400 = 5%).
	if frac := float64(hits) / float64(total); frac < 0.25 {
		t.Fatalf("hit@20 = %.2f, want >= 0.25", frac)
	}
}

func TestSimilarityPrefersNeighbors(t *testing.T) {
	g, _, m := trainSmall(t)
	rng := mathx.NewRNG(3)
	wins, total := 0, 0
	for i := 0; i < 300; i++ {
		id := kg.EntityID(rng.Intn(len(g.Entities)))
		nbrs := g.Neighbors(id)
		if len(nbrs) == 0 {
			continue
		}
		nb := nbrs[rng.Intn(len(nbrs))]
		rand := kg.EntityID(rng.Intn(len(g.Entities)))
		if rand == id || rand == nb {
			continue
		}
		total++
		if m.Similarity(id, nb) > m.Similarity(id, rand) {
			wins++
		}
	}
	if total == 0 {
		t.Skip("no connected samples")
	}
	if frac := float64(wins) / float64(total); frac < 0.6 {
		t.Fatalf("neighbors preferred only %.2f of the time", frac)
	}
}

func TestTrainEmptyGraph(t *testing.T) {
	g := kg.NewGraph("empty")
	if _, err := Train(g, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestTrainDeterministic(t *testing.T) {
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 150))
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m1, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Entities.Data {
		if m1.Entities.Data[i] != m2.Entities.Data[i] {
			t.Fatal("TransE training not deterministic")
		}
	}
}

func TestEntitiesStayNormalized(t *testing.T) {
	_, _, m := trainSmall(t)
	for i := 0; i < m.Entities.Rows; i++ {
		n := mathx.Norm(m.Entities.Row(i))
		if n < 0.9 || n > 1.1 {
			t.Fatalf("entity %d norm %v, want ~1", i, n)
		}
	}
}
