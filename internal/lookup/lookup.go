// Package lookup defines the lookup operation of Section II — the
// fundamental primitive every semantic-annotation system in the paper is
// built on: given a query string q and a budget k, return the k knowledge
// graph entities most relevant to q. EmbLookup and every baseline service
// implement the same Service interface so the downstream systems can swap
// their lookup component transparently, which is precisely the experiment
// design of Section IV.
package lookup

import (
	"time"

	"emblookup/internal/kg"
	"emblookup/internal/par"
)

// Candidate is one retrieved entity with a service-specific relevance score
// (higher is better).
type Candidate struct {
	ID    kg.EntityID
	Score float64
}

// Service is the lookup operation. Implementations must be safe for
// concurrent Lookup calls once constructed.
type Service interface {
	// Name identifies the service in experiment reports.
	Name() string
	// Lookup returns up to k candidates for q, best first.
	Lookup(q string, k int) []Candidate
}

// Bulk looks up every query with `parallelism` goroutines (≤0 means
// GOMAXPROCS — the "GPU mode" of the reproduction; 1 reproduces the
// sequential CPU mode). Results align with the query order.
func Bulk(s Service, queries []string, k, parallelism int) [][]Candidate {
	out := make([][]Candidate, len(queries))
	par.ForEach(len(queries), parallelism, func(i int) {
		out[i] = s.Lookup(queries[i], k)
	})
	return out
}

// Timed measures the wall-clock duration of a bulk lookup. Services that
// simulate remote latency additionally expose virtual time via the
// VirtualClock interface; TotalDuration combines both.
func Timed(s Service, queries []string, k, parallelism int) ([][]Candidate, time.Duration) {
	start := time.Now()
	res := Bulk(s, queries, k, parallelism)
	return res, time.Since(start)
}

// VirtualClock is implemented by simulated remote services whose dominant
// cost (network latency under rate limits) is accounted on a virtual clock
// rather than actually slept.
type VirtualClock interface {
	// VirtualElapsed returns the simulated time consumed so far.
	VirtualElapsed() time.Duration
	// ResetVirtual clears the simulated time.
	ResetVirtual()
}

// TotalDuration returns wall time plus any virtual time s accumulated
// during the measured run. Call ResetVirtual (when available) before the
// run being measured.
func TotalDuration(s Service, wall time.Duration) time.Duration {
	if vc, ok := s.(VirtualClock); ok {
		return wall + vc.VirtualElapsed()
	}
	return wall
}

// Mention is one indexable string with the entity it refers to.
type Mention struct {
	Text   string
	Entity kg.EntityID
}

// Corpus is the set of mentions a local lookup service indexes. The paper's
// baselines index only entity labels ("titles"); including aliases blows up
// the index (790 MB vs 63 MB for ST-Wikidata in the paper) which is why the
// corpus makes alias inclusion explicit.
type Corpus struct {
	Mentions []Mention
}

// CorpusFromGraph extracts the mention corpus from g. With includeAliases
// false only canonical labels are indexed.
func CorpusFromGraph(g *kg.Graph, includeAliases bool) *Corpus {
	c := &Corpus{}
	for i := range g.Entities {
		e := &g.Entities[i]
		c.Mentions = append(c.Mentions, Mention{Text: e.Label, Entity: e.ID})
		if includeAliases {
			for _, a := range e.Aliases {
				c.Mentions = append(c.Mentions, Mention{Text: a, Entity: e.ID})
			}
		}
	}
	return c
}

// SizeBytes approximates the raw text payload of the corpus, used to report
// index-size comparisons.
func (c *Corpus) SizeBytes() int {
	n := 0
	for _, m := range c.Mentions {
		n += len(m.Text) + 4
	}
	return n
}

// DedupeTopK collapses duplicate entities in a ranked candidate list
// (multiple mentions can map to one entity), keeping the best-scored
// occurrence and truncating to k.
func DedupeTopK(cands []Candidate, k int) []Candidate {
	seen := make(map[kg.EntityID]bool, len(cands))
	out := make([]Candidate, 0, k)
	for _, c := range cands {
		if seen[c.ID] {
			continue
		}
		seen[c.ID] = true
		out = append(out, c)
		if len(out) == k {
			break
		}
	}
	return out
}
