package lookup

import (
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"emblookup/internal/kg"
)

// echoService returns one candidate whose ID encodes the query, and counts
// concurrent callers to verify Bulk's parallelism.
type echoService struct {
	calls     atomic.Int64
	inFlight  atomic.Int64
	maxFlight atomic.Int64
	delay     time.Duration
}

func (e *echoService) Name() string { return "echo" }

func (e *echoService) Lookup(q string, k int) []Candidate {
	e.calls.Add(1)
	cur := e.inFlight.Add(1)
	for {
		max := e.maxFlight.Load()
		if cur <= max || e.maxFlight.CompareAndSwap(max, cur) {
			break
		}
	}
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	e.inFlight.Add(-1)
	n, _ := strconv.Atoi(q)
	return []Candidate{{ID: kg.EntityID(n), Score: 1}}
}

func queries(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}

func TestBulkPreservesOrder(t *testing.T) {
	svc := &echoService{}
	res := Bulk(svc, queries(100), 1, 8)
	for i, cands := range res {
		if len(cands) != 1 || cands[0].ID != kg.EntityID(i) {
			t.Fatalf("result %d misaligned: %+v", i, cands)
		}
	}
	if svc.calls.Load() != 100 {
		t.Fatalf("calls = %d", svc.calls.Load())
	}
}

func TestBulkSequentialWhenParallelismOne(t *testing.T) {
	svc := &echoService{delay: time.Millisecond}
	Bulk(svc, queries(8), 1, 1)
	if svc.maxFlight.Load() != 1 {
		t.Fatalf("max in-flight = %d, want 1", svc.maxFlight.Load())
	}
}

func TestBulkEmpty(t *testing.T) {
	svc := &echoService{}
	if out := Bulk(svc, nil, 1, 4); len(out) != 0 {
		t.Fatal("empty bulk should return empty")
	}
}

func TestTimedReturnsDuration(t *testing.T) {
	svc := &echoService{delay: 2 * time.Millisecond}
	_, d := Timed(svc, queries(4), 1, 1)
	if d < 8*time.Millisecond {
		t.Fatalf("Timed duration %v too small", d)
	}
}

func TestDedupeTopK(t *testing.T) {
	in := []Candidate{{ID: 1, Score: 5}, {ID: 2, Score: 4}, {ID: 1, Score: 3}, {ID: 3, Score: 2}}
	out := DedupeTopK(in, 2)
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 2 {
		t.Fatalf("DedupeTopK = %+v", out)
	}
	if out[0].Score != 5 {
		t.Fatal("should keep the best-scored occurrence")
	}
	if got := DedupeTopK(in, 10); len(got) != 3 {
		t.Fatalf("k beyond distinct = %+v", got)
	}
	if got := DedupeTopK(nil, 3); len(got) != 0 {
		t.Fatal("nil input should yield empty")
	}
}

func TestCorpusFromGraph(t *testing.T) {
	g := kg.NewGraph("t")
	root := g.AddType("entity", kg.NoType)
	g.AddEntity("Germany", []string{"Deutschland", "FRG"}, root)
	g.AddEntity("France", nil, root)
	g.Reindex()

	labels := CorpusFromGraph(g, false)
	if len(labels.Mentions) != 2 {
		t.Fatalf("labels corpus = %d mentions", len(labels.Mentions))
	}
	full := CorpusFromGraph(g, true)
	if len(full.Mentions) != 4 {
		t.Fatalf("full corpus = %d mentions", len(full.Mentions))
	}
	if full.SizeBytes() <= labels.SizeBytes() {
		t.Fatal("alias corpus should cost more")
	}
}

type fakeClock struct {
	echoService
	virtual time.Duration
}

func (f *fakeClock) VirtualElapsed() time.Duration { return f.virtual }
func (f *fakeClock) ResetVirtual()                 { f.virtual = 0 }

func TestTotalDuration(t *testing.T) {
	f := &fakeClock{virtual: time.Second}
	if got := TotalDuration(f, time.Millisecond); got != time.Second+time.Millisecond {
		t.Fatalf("TotalDuration = %v", got)
	}
	plain := &echoService{}
	if got := TotalDuration(plain, time.Millisecond); got != time.Millisecond {
		t.Fatalf("plain TotalDuration = %v", got)
	}
}
