package mathx

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// Atomic float32 access for hogwild-style lock-free training (DESIGN.md
// §13). Go's race detector — and the Go memory model — forbid plain
// concurrent writes even when the algorithm tolerates lost updates, so the
// shared parameter arrays are touched through these helpers: the *values*
// race (an add may overwrite a concurrent add, which hogwild SGD absorbs as
// gradient noise), but every *memory access* is a properly ordered atomic
// on the float's bit pattern.

// bits reinterprets a float32 cell as its uint32 storage. The cast is legal
// because float32 and uint32 share size and alignment.
func bits(p *float32) *uint32 {
	return (*uint32)(unsafe.Pointer(p))
}

// AtomicLoadFloat32 atomically reads *p.
func AtomicLoadFloat32(p *float32) float32 {
	return math.Float32frombits(atomic.LoadUint32(bits(p)))
}

// AtomicStoreFloat32 atomically writes v to *p.
func AtomicStoreFloat32(p *float32, v float32) {
	atomic.StoreUint32(bits(p), math.Float32bits(v))
}

// AtomicAddFloat32 atomically adds delta to *p via a CAS loop. Under
// contention a few iterations retry; training updates are sparse enough
// that the loop almost always succeeds first try.
func AtomicAddFloat32(p *float32, delta float32) {
	for {
		old := atomic.LoadUint32(bits(p))
		next := math.Float32bits(math.Float32frombits(old) + delta)
		if atomic.CompareAndSwapUint32(bits(p), old, next) {
			return
		}
	}
}
