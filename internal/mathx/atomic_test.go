package mathx

import (
	"sync"
	"testing"
)

func TestAtomicFloat32LoadStore(t *testing.T) {
	var x float32
	AtomicStoreFloat32(&x, 3.25)
	if got := AtomicLoadFloat32(&x); got != 3.25 {
		t.Fatalf("load after store = %v, want 3.25", got)
	}
}

// TestAtomicAddFloat32Concurrent hammers one cell from many goroutines with
// a value exactly representable in float32, so no update may be lost: the
// CAS loop must account for every add (run under -race this also proves the
// access pattern is data-race-free).
func TestAtomicAddFloat32Concurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2048
	)
	var x float32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				AtomicAddFloat32(&x, 0.5)
			}
		}()
	}
	wg.Wait()
	if want := float32(goroutines * perG / 2); x != want {
		t.Fatalf("sum = %v, want %v", x, want)
	}
}
