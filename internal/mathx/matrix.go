package mathx

import "fmt"

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use NewMatrix to allocate one with a shape.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 {
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) {
	m.Data[i*m.Cols+j] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatVec computes out = m · x for a vector x of length m.Cols, returning a
// vector of length m.Rows.
func (m *Matrix) MatVec(x []float32) []float32 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mathx: MatVec shape mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// MatVecInto computes out = m · x into the provided out (length m.Rows),
// avoiding the per-call allocation of MatVec.
func (m *Matrix) MatVecInto(x, out []float32) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("mathx: MatVecInto shape mismatch %d,%d vs %dx%d", len(x), len(out), m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
}

// MatVecT computes out = mᵀ · x for a vector x of length m.Rows, returning a
// vector of length m.Cols.
func (m *Matrix) MatVecT(x []float32) []float32 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mathx: MatVecT shape mismatch %d vs %d", len(x), m.Rows))
	}
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), out)
	}
	return out
}

// MatMul returns a·b. Panics on a shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			Axpy(arow[k], b.Row(k), orow)
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// FillRandn fills m with normally distributed values scaled by std.
func (m *Matrix) FillRandn(r *RNG, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64() * std)
	}
}
