// Package mathx provides the small numeric substrate shared by every other
// package in the repository: float32 vector and matrix helpers tuned for the
// embedding workloads, and a deterministic splitmix64-based random number
// generator so that datasets, model initialization, and experiments are
// reproducible bit-for-bit.
package mathx

import "math"

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. It is intentionally not safe for concurrent use; create one
// RNG per goroutine (Split derives independent streams).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r. The
// derived stream depends only on r's current state, so the derivation is
// itself deterministic.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0,1] to avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Zipf returns a value in [0, n) drawn from a truncated Zipf distribution
// with exponent s. Small indices are exponentially more likely, mimicking
// the popularity skew of knowledge-graph entity references.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-transform sampling on the (approximated) continuous Zipf CDF.
	u := r.Float64()
	if s == 1 {
		s = 1.0001
	}
	x := math.Pow(1-u*(1-math.Pow(float64(n), 1-s)), 1/(1-s))
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}
