package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(1)
	s := a.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collides with parent %d/100 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := NewRNG(17)
	n := 1000
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(n, 1.2)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Head must be much more popular than the tail.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[n-1] + counts[n-2] + counts[n-3]
	if head <= tail*5 {
		t.Fatalf("Zipf not skewed: head=%d tail=%d", head, tail)
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := NewRNG(1)
	if v := r.Zipf(1, 1.1); v != 0 {
		t.Fatalf("Zipf(1) = %d, want 0", v)
	}
	if v := r.Zipf(0, 1.1); v != 0 {
		t.Fatalf("Zipf(0) = %d, want 0", v)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(23)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) fired %.3f of the time", frac)
	}
}
