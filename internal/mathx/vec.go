package mathx

import "math"

// Dot returns the dot product of a and b. The slices must have equal length.
func Dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2(a, b))))
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	var s float32
	for _, v := range a {
		s += v * v
	}
	return float32(math.Sqrt(float64(s)))
}

// Normalize scales a in place to unit Euclidean norm. A zero vector is left
// unchanged.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float32, x, y []float32) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies a by alpha in place.
func Scale(alpha float32, a []float32) {
	for i := range a {
		a[i] *= alpha
	}
}

// Add returns a new vector a+b.
func Add(a, b []float32) []float32 {
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector a-b.
func Sub(a, b []float32) []float32 {
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Mean returns the element-wise mean of the vectors in vs. All vectors must
// share a length; Mean of no vectors returns nil.
func Mean(vs [][]float32) []float32 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float32, len(vs[0]))
	for _, v := range vs {
		for i := range v {
			out[i] += v[i]
		}
	}
	inv := 1 / float32(len(vs))
	Scale(inv, out)
	return out
}

// Resize returns a length-n slice, reusing buf's backing array when its
// capacity allows. The contents are unspecified; callers overwrite them.
func Resize(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Cosine returns the cosine similarity of a and b, or 0 if either is a zero
// vector.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// ArgMin returns the index of the smallest element of a, or -1 for empty a.
func ArgMin(a []float32) int {
	if len(a) == 0 {
		return -1
	}
	best, idx := a[0], 0
	for i, v := range a[1:] {
		if v < best {
			best, idx = v, i+1
		}
	}
	return idx
}

// ArgMax returns the index of the largest element of a, or -1 for empty a.
func ArgMax(a []float32) int {
	if len(a) == 0 {
		return -1
	}
	best, idx := a[0], 0
	for i, v := range a[1:] {
		if v > best {
			best, idx = v, i+1
		}
	}
	return idx
}
