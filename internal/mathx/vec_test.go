package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestSquaredL2AndL2(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := SquaredL2(a, b); got != 25 {
		t.Fatalf("SquaredL2 = %v, want 25", got)
	}
	if got := L2(a, b); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if !approx(Norm(v), 1, 1e-6) {
		t.Fatalf("norm after Normalize = %v", Norm(v))
	}
	zero := []float32{0, 0}
	Normalize(zero) // must not NaN
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("zero vector changed: %v", zero)
	}
}

func TestAxpyScaleAddSub(t *testing.T) {
	y := []float32{1, 1}
	Axpy(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale = %v", y)
	}
	s := Add([]float32{1, 2}, []float32{3, 4})
	if s[0] != 4 || s[1] != 6 {
		t.Fatalf("Add = %v", s)
	}
	d := Sub([]float32{1, 2}, []float32{3, 4})
	if d[0] != -2 || d[1] != -2 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float32{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil) != nil {
		t.Fatal("Mean(nil) should be nil")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float32{1, 0}, []float32{1, 0}); !approx(got, 1, 1e-6) {
		t.Fatalf("Cosine identical = %v", got)
	}
	if got := Cosine([]float32{1, 0}, []float32{0, 1}); !approx(got, 0, 1e-6) {
		t.Fatalf("Cosine orthogonal = %v", got)
	}
	if got := Cosine([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Fatalf("Cosine zero vector = %v", got)
	}
}

func TestArgMinArgMax(t *testing.T) {
	v := []float32{3, 1, 2}
	if ArgMin(v) != 1 {
		t.Fatalf("ArgMin = %d", ArgMin(v))
	}
	if ArgMax(v) != 0 {
		t.Fatalf("ArgMax = %d", ArgMax(v))
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty Arg should be -1")
	}
}

// Property: squared L2 distance is symmetric and non-negative, and zero iff
// the vectors coincide (up to float representation).
func TestSquaredL2Properties(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:half*2]
		for i := range a {
			// Keep values finite and modest to avoid inf arithmetic.
			if math.IsNaN(float64(a[i])) || math.IsInf(float64(a[i]), 0) ||
				math.IsNaN(float64(b[i])) || math.IsInf(float64(b[i]), 0) {
				return true
			}
		}
		d1 := SquaredL2(a, b)
		d2 := SquaredL2(b, a)
		return d1 == d2 && d1 >= 0 && SquaredL2(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixOps(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	m.Set(1, 0, 4)
	m.Set(1, 1, 5)
	m.Set(1, 2, 6)

	v := m.MatVec([]float32{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Fatalf("MatVec = %v", v)
	}
	vt := m.MatVecT([]float32{1, 1})
	if vt[0] != 5 || vt[1] != 7 || vt[2] != 9 {
		t.Fatalf("MatVecT = %v", vt)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Fatalf("Transpose wrong: %+v", tr)
	}
}

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float32{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float32{5, 6, 7, 8})
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for small random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	r := NewRNG(42)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := NewMatrix(m, k)
		a.FillRandn(r, 1)
		b := NewMatrix(k, n)
		b.FillRandn(r, 1)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		for i := range left.Data {
			if !approx(left.Data[i], right.Data[i], 1e-4) {
				t.Fatalf("transpose property violated at trial %d", trial)
			}
		}
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}
