// Package metrics provides the evaluation bookkeeping of Section IV:
// precision/recall/F-score accounting for the annotation tasks, speedup
// ratios, and simple timing helpers.
package metrics

import (
	"fmt"
	"time"
)

// Confusion accumulates true positives, false positives, and false
// negatives for a task. The zero value is ready to use.
type Confusion struct {
	TP, FP, FN int
}

// Add merges another confusion into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// Record registers one prediction outcome: predicted reports whether the
// system produced an answer, correct whether it matched the ground truth.
func (c *Confusion) Record(predicted, correct bool) {
	switch {
	case predicted && correct:
		c.TP++
	case predicted && !correct:
		c.FP++
		c.FN++ // the true answer was missed as well
	default:
		c.FN++
	}
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the confusion compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F=%.3f (tp=%d fp=%d fn=%d)",
		c.Precision(), c.Recall(), c.F1(), c.TP, c.FP, c.FN)
}

// Speedup returns how many times faster `mine` is than `baseline` (≥1 means
// faster). A zero or negative own time degrades gracefully to a large
// ratio rather than Inf so reports stay printable.
func Speedup(baseline, mine time.Duration) float64 {
	if mine <= 0 {
		mine = time.Nanosecond
	}
	return float64(baseline) / float64(mine)
}

// FormatSpeedup renders a ratio the way the paper's tables do ("20x").
func FormatSpeedup(ratio float64) string {
	if ratio >= 10 {
		return fmt.Sprintf("%.0fx", ratio)
	}
	return fmt.Sprintf("%.1fx", ratio)
}

// Stopwatch accumulates durations across code regions, used to instrument
// the lookup fraction of each annotation system.
type Stopwatch struct {
	total time.Duration
}

// Time runs fn and adds its duration to the stopwatch.
func (s *Stopwatch) Time(fn func()) {
	start := time.Now()
	fn()
	s.total += time.Since(start)
}

// AddDuration adds d directly (for virtual-clock components).
func (s *Stopwatch) AddDuration(d time.Duration) { s.total += d }

// Total returns the accumulated duration.
func (s *Stopwatch) Total() time.Duration { return s.total }

// Reset clears the stopwatch.
func (s *Stopwatch) Reset() { s.total = 0 }
