package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestConfusionRecord(t *testing.T) {
	var c Confusion
	c.Record(true, true)   // TP
	c.Record(true, false)  // FP + FN
	c.Record(false, false) // FN
	if c.TP != 1 || c.FP != 1 || c.FN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2}
	if p := c.Precision(); p != 0.8 {
		t.Fatalf("precision = %v", p)
	}
	if r := c.Recall(); r != 0.8 {
		t.Fatalf("recall = %v", r)
	}
	if f := c.F1(); f < 0.8-1e-9 || f > 0.8+1e-9 {
		t.Fatalf("f1 = %v", f)
	}
}

func TestZeroConfusionSafe(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should score 0 without dividing by zero")
	}
}

func TestAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3}
	a.Add(Confusion{TP: 10, FP: 20, FN: 30})
	if a.TP != 11 || a.FP != 22 || a.FN != 33 {
		t.Fatalf("add = %+v", a)
	}
}

func TestConfusionString(t *testing.T) {
	s := Confusion{TP: 1}.String()
	if !strings.Contains(s, "F=") {
		t.Fatalf("String = %q", s)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(100*time.Millisecond, 10*time.Millisecond); s != 10 {
		t.Fatalf("speedup = %v", s)
	}
	// Zero own time must not produce Inf.
	if s := Speedup(time.Second, 0); s <= 0 || s != s {
		t.Fatalf("degenerate speedup = %v", s)
	}
}

func TestFormatSpeedup(t *testing.T) {
	if got := FormatSpeedup(19.7); got != "20x" {
		t.Fatalf("FormatSpeedup = %q", got)
	}
	if got := FormatSpeedup(2.34); got != "2.3x" {
		t.Fatalf("FormatSpeedup = %q", got)
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	sw.Time(func() { time.Sleep(time.Millisecond) })
	if sw.Total() < time.Millisecond {
		t.Fatalf("stopwatch too small: %v", sw.Total())
	}
	sw.AddDuration(time.Second)
	if sw.Total() < time.Second {
		t.Fatal("AddDuration ignored")
	}
	sw.Reset()
	if sw.Total() != 0 {
		t.Fatal("Reset failed")
	}
}
