package ngram

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"emblookup/internal/mathx"
)

// Hogwild trainer (DESIGN.md §13). The synonym-pair list is split into one
// contiguous range per worker; every worker runs the full epoch schedule
// over its own range and updates the shared bucket table through the
// mathx atomic-float32 helpers — no locks, no gradient buffers, no merge
// barrier. Updates are sparse (a pair touches a few dozen of the 2^14+
// bucket rows), so concurrent writers rarely collide; when they do, hogwild
// SGD absorbs the lost update as gradient noise (Recht et al., and the
// word2vec implementation this mirrors). Three things are shared read-only
// after a sequential setup pass: the memoized feature lists, a unigram^0.75
// negative-sampling table, and the pair ranges. The only cross-worker
// mutable scalar besides the bucket table is an atomic progress counter,
// which drives the linear learning-rate decay (floor 5%) and the optional
// OnProgress callback.

// hwChunk is how many pairs a worker processes between progress-counter
// flushes — the granularity of LR decay and OnProgress.
const hwChunk = 1024

// hwCorpus is the read-only state shared by all hogwild workers, built
// sequentially before any goroutine starts.
type hwCorpus struct {
	pairFeats [][2][]int // aligned with pairs: {label feats, synonym feats}
	labels    []string   // aligned with pairs: the label (own-negative skip)
	negFeats  [][]int    // aligned with negatives
	negStr    []string
	unigram   []int32 // indexes into negFeats, unigram^0.75-weighted
}

// trainHogwild is Train's lock-free multi-worker path.
func (m *Model) trainHogwild(pairs []Pair, negatives []string, cfg TrainConfig) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	negs := cfg.Negatives
	if negs < 1 {
		negs = 1
	}
	c := buildHWCorpus(m, pairs, negatives)
	total := int64(cfg.Epochs) * int64(len(pairs))
	if total == 0 {
		return
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		lo := wi * len(pairs) / workers
		hi := (wi + 1) * len(pairs) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			seed := cfg.Seed ^ uint64(wi+1)*0x9e3779b97f4a7c15
			m.hwWorker(c, cfg, negs, lo, hi, seed, total, &done)
		}(wi, lo, hi)
	}
	wg.Wait()
	if cfg.OnProgress != nil {
		cfg.OnProgress(total, total)
	}
}

// buildHWCorpus memoizes feature extraction for every training string and
// builds the negative-sampling table. Runs on one goroutine; the result is
// never written again.
func buildHWCorpus(m *Model, pairs []Pair, negatives []string) *hwCorpus {
	c := &hwCorpus{
		pairFeats: make([][2][]int, len(pairs)),
		labels:    make([]string, len(pairs)),
		negFeats:  make([][]int, len(negatives)),
		negStr:    negatives,
	}
	featCache := make(map[string][]int, 2*len(pairs)+len(negatives))
	feats := func(s string) []int {
		if f, ok := featCache[s]; ok {
			return f
		}
		f := m.Features(s)
		featCache[s] = f
		return f
	}
	for i, p := range pairs {
		c.pairFeats[i] = [2][]int{feats(p.Label), feats(p.Synonym)}
		c.labels[i] = p.Label
	}
	negIndex := make(map[string]int, len(negatives))
	for i, n := range negatives {
		c.negFeats[i] = feats(n)
		negIndex[n] = i
	}
	// Unigram^0.75 sampling weights: a label's frequency is how often it
	// appears across the synonym pairs (+1 smoothing so every label is
	// sampleable) — the word2vec negative-sampling distribution adapted to
	// the synonym corpus.
	counts := make([]int, len(negatives))
	for _, p := range pairs {
		if i, ok := negIndex[p.Label]; ok {
			counts[i]++
		}
	}
	weights := make([]float64, len(negatives))
	var wsum float64
	for i, n := range counts {
		w := math.Pow(float64(n+1), 0.75)
		weights[i] = w
		wsum += w
	}
	size := 8 * len(negatives)
	if size < 1024 {
		size = 1024
	}
	if size > 1<<18 {
		size = 1 << 18
	}
	c.unigram = make([]int32, size)
	wi, cum := 0, weights[0]/wsum
	for i := range c.unigram {
		c.unigram[i] = int32(wi)
		if float64(i+1)/float64(size) > cum && wi < len(weights)-1 {
			wi++
			cum += weights[wi] / wsum
		}
	}
	return c
}

// hwWorker runs the full epoch schedule over pairs[lo:hi), mirroring the
// sequential trainer's per-pair logic (attract, hardest-of-12 negative,
// uniform negatives) with every bucket-table access atomic. The learning
// rate decays linearly with global progress to a 5% floor, re-read every
// hwChunk pairs.
func (m *Model) hwWorker(c *hwCorpus, cfg TrainConfig, negs, lo, hi int, seed uint64, total int64, done *atomic.Int64) {
	rng := mathx.NewRNG(seed)
	sc := newTrainScratch(m.Dim)
	order := make([]int, hi-lo)
	for i := range order {
		order[i] = lo + i
	}
	const hardSample = 12
	lr := cfg.LR
	var pending int64
	flush := func() {
		if pending == 0 {
			return
		}
		d := done.Add(pending)
		pending = 0
		frac := 1 - float64(d)/float64(total)
		if frac < 0.05 {
			frac = 0.05
		}
		lr = cfg.LR * float32(frac)
		if cfg.OnProgress != nil {
			cfg.OnProgress(d, total)
		}
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.ShuffleInts(order)
		for _, pi := range order {
			fl, fs := c.pairFeats[pi][0], c.pairFeats[pi][1]
			own := c.labels[pi]
			if pending++; pending >= hwChunk {
				flush()
			}
			if len(fl) == 0 || len(fs) == 0 {
				continue
			}
			m.attractAtomic(sc, fl, fs, lr)
			es := m.embedFeaturesAtomicInto(sc.es, fs)
			for n := 0; n < negs; n++ {
				var fn []int
				if n == 0 {
					fn = m.hardestNegativeAtomic(sc, es, own, c, hardSample, rng)
				} else {
					ni := int(c.unigram[rng.Intn(len(c.unigram))])
					if c.negStr[ni] == own {
						continue
					}
					fn = c.negFeats[ni]
				}
				if len(fn) == 0 {
					continue
				}
				m.repelAtomic(sc, fs, fn, cfg.Margin, lr)
				m.repelAtomic(sc, fl, fn, cfg.Margin, lr*0.5)
			}
		}
	}
	flush()
}

// hardestNegativeAtomic mirrors hardestNegative over the precomputed corpus
// with atomic table reads. The 12-candidate sample stays uniform — hard
// negatives want coverage of the label space, not the popularity skew the
// unigram table encodes.
func (m *Model) hardestNegativeAtomic(sc *trainScratch, es []float32, own string, c *hwCorpus, sample int, rng *mathx.RNG) []int {
	var best []int
	bestD := float32(3.4e38)
	for i := 0; i < sample; i++ {
		ni := rng.Intn(len(c.negStr))
		if c.negStr[ni] == own {
			continue
		}
		fn := c.negFeats[ni]
		if len(fn) == 0 {
			continue
		}
		if d := mathx.SquaredL2(es, m.embedFeaturesAtomicInto(sc.eb, fn)); d < bestD {
			best, bestD = fn, d
		}
	}
	return best
}

// embedFeaturesAtomicInto is embedFeaturesInto with atomic row loads: the
// accumulator is private, only the shared table reads are ordered.
func (m *Model) embedFeaturesAtomicInto(out []float32, feats []int) []float32 {
	for i := range out {
		out[i] = 0
	}
	if len(feats) == 0 {
		return out
	}
	for _, f := range feats {
		row := m.Table.Row(f)
		for i := range out {
			out[i] += mathx.AtomicLoadFloat32(&row[i])
		}
	}
	mathx.Scale(1/float32(len(feats)), out)
	return out
}

// attractAtomic is attract with atomic reads and CAS-add writes.
func (m *Model) attractAtomic(sc *trainScratch, fa, fb []int, lr float32) {
	ea := m.embedFeaturesAtomicInto(sc.ea, fa)
	eb := m.embedFeaturesAtomicInto(sc.eb, fb)
	grad := sc.grad
	for i := range grad {
		grad[i] = 2 * (ea[i] - eb[i])
	}
	m.stepAtomic(fa, grad, lr)
	mathx.Scale(-1, grad)
	m.stepAtomic(fb, grad, lr)
}

// repelAtomic is repel with atomic reads and CAS-add writes.
func (m *Model) repelAtomic(sc *trainScratch, fa, fn []int, margin, lr float32) {
	ea := m.embedFeaturesAtomicInto(sc.ea, fa)
	en := m.embedFeaturesAtomicInto(sc.eb, fn)
	if mathx.SquaredL2(ea, en) >= margin {
		return
	}
	grad := sc.grad
	for i := range grad {
		grad[i] = -2 * (ea[i] - en[i])
	}
	m.stepAtomic(fa, grad, lr)
	mathx.Scale(-1, grad)
	m.stepAtomic(fn, grad, lr)
}

// stepAtomic is step via AtomicAddFloat32 on every touched cell.
func (m *Model) stepAtomic(feats []int, grad []float32, lr float32) {
	scale := -lr / float32(len(feats))
	for _, f := range feats {
		row := m.Table.Row(f)
		for i := range grad {
			mathx.AtomicAddFloat32(&row[i], scale*grad[i])
		}
	}
}
