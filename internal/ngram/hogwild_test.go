package ngram

import (
	"sync/atomic"
	"testing"

	"emblookup/internal/mathx"
)

// hwTestCorpus is a synonym corpus with enough pairs to exercise several
// workers and the unigram table's frequency weighting (alphaville appears
// in two pairs).
func hwTestCorpus() (pairs []Pair, negatives []string) {
	pairs = []Pair{
		{"alphaville", "kronstad"},
		{"alphaville", "alfaville"},
		{"betatown", "murdok"},
		{"gammaport", "velizar"},
		{"deltaburg", "quorim"},
		{"omegagrad", "siluria"},
		{"epsilonfield", "tarnopol"},
		{"zetahaven", "brindisi"},
	}
	negatives = []string{
		"alphaville", "betatown", "gammaport", "deltaburg",
		"omegagrad", "epsilonfield", "zetahaven", "thetacity",
	}
	return pairs, negatives
}

// TestTrainDeterministicBitEqualAcrossWorkers pins the contract that
// Deterministic mode ignores Workers entirely: the table must be
// bit-identical at worker counts 1, 2 and 4.
func TestTrainDeterministicBitEqualAcrossWorkers(t *testing.T) {
	pairs, negs := hwTestCorpus()
	var ref []float32
	for _, workers := range []int{1, 2, 4} {
		m := NewModel(16, 4096, 9)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 8
		cfg.Workers = workers
		if !cfg.Deterministic {
			t.Fatal("DefaultTrainConfig must be deterministic")
		}
		m.Train(pairs, negs, cfg)
		if ref == nil {
			ref = append(ref, m.Table.Data...)
			continue
		}
		for i := range ref {
			if m.Table.Data[i] != ref[i] {
				t.Fatalf("workers=%d: table differs from workers=1 at cell %d", workers, i)
			}
		}
	}
}

// TestTrainHogwildRace runs a hogwild epoch with several workers; under
// `go test -race` this proves every shared-table access is data-race-free.
func TestTrainHogwildRace(t *testing.T) {
	pairs, negs := hwTestCorpus()
	m := NewModel(16, 4096, 9)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	cfg.Workers = 4
	cfg.Deterministic = false
	var calls, last atomic.Int64
	cfg.OnProgress = func(done, total int64) {
		calls.Add(1)
		last.Store(done)
	}
	m.Train(pairs, negs, cfg)
	if calls.Load() == 0 {
		t.Fatal("OnProgress never called")
	}
	if got, want := last.Load(), int64(cfg.Epochs*len(pairs)); got != want {
		t.Fatalf("final progress = %d, want %d", got, want)
	}
}

// meanPairDist is the convergence metric: mean squared distance between the
// embeddings of each (label, synonym) pair — the attract term of the loss.
func meanPairDist(m *Model, pairs []Pair) float32 {
	var sum float32
	for _, p := range pairs {
		sum += mathx.SquaredL2(m.Embed(p.Label), m.Embed(p.Synonym))
	}
	return sum / float32(len(pairs))
}

// TestTrainHogwildConverges asserts hogwild reaches the same optimization
// quality as the sequential trainer on a fixed seed: final mean pair
// distance within ε, and the trained model ranks each synonym closest to
// its own label (the property lookups depend on).
func TestTrainHogwildConverges(t *testing.T) {
	pairs, negs := hwTestCorpus()

	seq := NewModel(32, 1<<14, 7)
	cfgSeq := DefaultTrainConfig()
	cfgSeq.Epochs = 60
	seq.Train(pairs, negs, cfgSeq)

	hw := NewModel(32, 1<<14, 7)
	cfgHW := cfgSeq
	cfgHW.Deterministic = false
	cfgHW.Workers = 4
	hw.Train(pairs, negs, cfgHW)

	dSeq := meanPairDist(seq, pairs)
	dHW := meanPairDist(hw, pairs)
	const eps = 0.25
	if diff := dHW - dSeq; diff > eps && dHW > 2*dSeq {
		t.Fatalf("hogwild pair distance %.4f vs sequential %.4f: outside ε=%.2f", dHW, dSeq, eps)
	}

	dist := func(a, b string) float32 {
		return mathx.SquaredL2(hw.Embed(a), hw.Embed(b))
	}
	for _, p := range pairs {
		dSyn := dist(p.Label, p.Synonym)
		for _, q := range pairs {
			if q == p || q.Label == p.Label {
				continue
			}
			if dSyn >= dist(p.Label, q.Synonym) {
				t.Fatalf("hogwild: synonym %q not closest to %q", p.Synonym, p.Label)
			}
		}
	}
}

// TestTrainHogwildSingleWorker checks the degenerate workers=1 hogwild run
// still trains (it shares no code path with the deterministic trainer's
// RNG schedule, so outputs differ — but the retrieval property must hold).
func TestTrainHogwildSingleWorker(t *testing.T) {
	pairs, negs := hwTestCorpus()
	m := NewModel(32, 1<<14, 7)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	cfg.Workers = 1
	cfg.Deterministic = false
	m.Train(pairs, negs, cfg)
	dist := func(a, b string) float32 {
		return mathx.SquaredL2(m.Embed(a), m.Embed(b))
	}
	for _, p := range pairs {
		dSyn := dist(p.Label, p.Synonym)
		for _, q := range pairs {
			if q == p || q.Label == p.Label {
				continue
			}
			if dSyn >= dist(p.Label, q.Synonym) {
				t.Fatalf("hogwild(workers=1): synonym %q not closest to %q", p.Synonym, p.Label)
			}
		}
	}
}
