// Package ngram implements the semantic embedding model of Section III-B —
// the reproduction's substitute for fastText. Like fastText, a string is
// represented as the bag of its hashed character n-grams (3–6) plus word
// tokens, each mapped to a learned vector, and the string embedding is their
// mean. Training pulls the embeddings of entity labels and their synonyms
// together (and pushes random labels apart) with the same triplet objective
// the paper uses, so the model delivers fastText's one property EmbLookup
// relies on: semantically equivalent mentions embed nearby.
package ngram

import (
	"strings"
	"unicode/utf8"

	"emblookup/internal/mathx"
	"emblookup/internal/strutil"
)

// Scratch holds the reusable buffers of one feature extraction: the bucket
// list and the padded-token rune buffer. A worker that owns a Scratch runs
// EmbedPartsInto without allocating. The zero value is ready to use; a
// Scratch must not be used concurrently.
type Scratch struct {
	feats []int
	runes []rune
}

// Model is a hashed bag-of-subwords embedding model. Embed is safe for
// concurrent use once training has finished.
type Model struct {
	Dim     int
	Buckets int
	MinN    int
	MaxN    int
	// WordWeight replicates the whole-word feature this many times in the
	// bag. Character n-grams are shared across many strings (that is what
	// makes the model robust to typos), so without extra weight the
	// string-specific word feature is diluted ~30:1 and distinct aliases
	// built from common subwords blur together.
	WordWeight int
	// MentionHalf, when set, adds a whole-mention feature carrying half of
	// the embedding mass — but only for mentions seen during training.
	// Shared subwords pull the embeddings of distinct mentions together
	// (the typo-robustness mechanism); the mention feature gives
	// contrastive training a dedicated slot to attach each *known* mention
	// — e.g. a cross-lingual alias — to its entity, the role pre-training
	// on real text plays for the original fastText. Unknown strings (typos,
	// novel queries) fall back to the pure subword bag, so the feature
	// never injects untrained noise.
	MentionHalf bool
	Table       *mathx.Matrix // Buckets × Dim

	// The known-mention set has two representations. known holds buckets
	// registered in-process (training, RegisterMention). knownView is a
	// sorted, read-only slice attached straight from a v4 artifact's
	// known_mentions section — binary-searched instead of rebuilt into a
	// map, so a million-entity attach pays O(1) for it, not O(n)
	// (DESIGN.md §12). isKnown consults both.
	known     map[int]struct{}
	knownView []int64
}

// NewModel allocates a model with small random initial vectors.
func NewModel(dim, buckets int, seed uint64) *Model {
	m := NewModelForLoad(dim, buckets)
	m.Table = mathx.NewMatrix(buckets, dim)
	m.Table.FillRandn(mathx.NewRNG(seed), 0.1)
	return m
}

// NewModelForLoad allocates a model shell for deserialization: the same
// defaults as NewModel but no table — the loader attaches the trained one,
// so initializing (and for zero-copy artifacts, even allocating) a random
// Buckets×Dim matrix here would be pure cold-start waste.
func NewModelForLoad(dim, buckets int) *Model {
	return &Model{Dim: dim, Buckets: buckets, MinN: 3, MaxN: 6, WordWeight: 2, MentionHalf: true}
}

// fnv1a hashes s into a bucket index.
func (m *Model) fnv1a(s string) int {
	return int(fnv1aBytes(fnvOffset, s) % uint64(m.Buckets))
}

// fnv1aTagged hashes tag+s without materializing the concatenation,
// producing the same bucket as fnv1a(tag + s).
func (m *Model) fnv1aTagged(tag, s string) int {
	return int(fnv1aBytes(fnv1aBytes(fnvOffset, tag), s) % uint64(m.Buckets))
}

// fnv1aRunes hashes the UTF-8 encoding of rs, producing the same bucket as
// fnv1a(string(rs)) without allocating the string.
func (m *Model) fnv1aRunes(rs []rune) int {
	h := uint64(fnvOffset)
	var buf [utf8.UTFMax]byte
	for _, r := range rs {
		n := utf8.EncodeRune(buf[:], r)
		for i := 0; i < n; i++ {
			h ^= uint64(buf[i])
			h *= fnvPrime
		}
	}
	return int(h % uint64(m.Buckets))
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnv1aBytes(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Features returns the bucket indexes of every subword feature of s: padded
// character n-grams of lengths MinN..MaxN plus whole word tokens.
func (m *Model) Features(s string) []int {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return nil
	}
	feats := m.subwordFeatures(s)
	if m.MentionHalf {
		mf := m.fnv1aTagged("MENTION:", s)
		if m.isKnown(mf) {
			n := len(feats)
			for i := 0; i < n; i++ {
				feats = append(feats, mf)
			}
		}
	}
	return feats
}

// EmbedParts returns the two components of the semantic representation
// separately: the pure subword-bag mean (always defined, robust to typos)
// and the dedicated mention vector (the trained memorization slot, zero for
// mentions never seen in training). Downstream models that consume the two
// parts as separate inputs can learn to rely on the mention slot when it is
// present and fall back to subwords when it is zero — which a blended mean
// cannot offer.
func (m *Model) EmbedParts(s string) (subword, mention []float32) {
	subword = make([]float32, m.Dim)
	mention = make([]float32, m.Dim)
	var sc Scratch
	m.EmbedPartsInto(&sc, s, subword, mention)
	return subword, mention
}

// EmbedPartsInto is EmbedParts writing into the caller's sub and mention
// buffers (each of length Dim) with all intermediate state taken from sc —
// the steady-state query path runs it without allocating.
func (m *Model) EmbedPartsInto(sc *Scratch, s string, sub, mention []float32) {
	norm := strings.ToLower(strings.TrimSpace(s))
	for i := range mention {
		mention[i] = 0
	}
	if m.MentionHalf && norm != "" {
		mf := m.fnv1aTagged("MENTION:", norm)
		if m.isKnown(mf) {
			copy(mention, m.Table.Row(mf))
		}
	}
	// Subword-only bag: computed without the mention half.
	for i := range sub {
		sub[i] = 0
	}
	feats := m.subwordFeaturesInto(sc, norm)
	if len(feats) == 0 {
		return
	}
	for _, f := range feats {
		mathx.Axpy(1, m.Table.Row(f), sub)
	}
	mathx.Scale(1/float32(len(feats)), sub)
}

// subwordFeatures is Features without the mention half (s must already be
// normalized).
func (m *Model) subwordFeatures(s string) []int {
	var sc Scratch
	return m.subwordFeaturesInto(&sc, s)
}

// subwordFeaturesInto extracts the subword bucket list into sc.feats. The
// padded token is built in sc.runes and every n-gram is hashed directly
// from the rune window, so a reused Scratch makes extraction
// allocation-free (buckets are identical to the string-hashing path).
func (m *Model) subwordFeaturesInto(sc *Scratch, s string) []int {
	feats := sc.feats[:0]
	if s == "" {
		sc.feats = feats
		return nil
	}
	for ts, te := strutil.NextToken(s, 0); ts >= 0; ts, te = strutil.NextToken(s, te) {
		tok := s[ts:te]
		r := sc.runes[:0]
		r = append(r, '<')
		for _, c := range tok {
			r = append(r, c)
		}
		r = append(r, '>')
		sc.runes = r
		for n := m.MinN; n <= m.MaxN; n++ {
			for i := 0; i+n <= len(r); i++ {
				feats = append(feats, m.fnv1aRunes(r[i:i+n]))
			}
		}
		w := m.WordWeight
		if w < 1 {
			w = 1
		}
		wf := m.fnv1aTagged("WORD:", tok)
		for i := 0; i < w; i++ {
			feats = append(feats, wf)
		}
	}
	if len(feats) == 0 {
		feats = append(feats, m.fnv1a(s))
	}
	sc.feats = feats
	return feats
}

// isKnown reports whether bucket h is a trained mention feature: in the
// in-process set, or in the sorted on-disk view (binary search — no
// allocation, no map build on load).
func (m *Model) isKnown(h int) bool {
	if _, ok := m.known[h]; ok {
		return true
	}
	v := m.knownView
	if len(v) == 0 {
		return false
	}
	t := int64(h)
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(v) && v[lo] == t
}

// KnownMentionHashes returns the trained mention-feature buckets (for
// serialization) — the union of the in-process set and the attached view,
// deduplicated, in no particular order (writers sort).
func (m *Model) KnownMentionHashes() []int {
	out := make([]int, 0, len(m.known)+len(m.knownView))
	for h := range m.known {
		out = append(out, h)
	}
	for _, h := range m.knownView {
		if _, ok := m.known[int(h)]; !ok {
			out = append(out, int(h))
		}
	}
	return out
}

// SetKnownMentionHashes restores a serialized known-mention set into the
// in-process map (the gob compatibility path).
func (m *Model) SetKnownMentionHashes(hs []int) {
	m.known = make(map[int]struct{}, len(hs))
	m.knownView = nil
	for _, h := range hs {
		m.known[h] = struct{}{}
	}
}

// SetKnownMentionView attaches a sorted (ascending) known-mention list as a
// read-only view — typically a v4 artifact section aliasing an mmap, which
// must stay alive as long as the model. Nothing is copied and no map is
// built; membership tests binary-search the view. Later RegisterMention
// calls layer on top in the in-process set and never mutate the view.
func (m *Model) SetKnownMentionView(hs []int64) {
	m.known = nil
	m.knownView = hs
}

// RegisterMention marks s as a known mention so its whole-mention feature
// participates in the bag. Train registers every string it sees; callers
// indexing additional mentions may register them explicitly before
// training.
func (m *Model) RegisterMention(s string) {
	if !m.MentionHalf {
		return
	}
	if m.known == nil {
		m.known = make(map[int]struct{})
	}
	s = strings.ToLower(strings.TrimSpace(s))
	m.known[m.fnv1aTagged("MENTION:", s)] = struct{}{}
}

// Embed returns the mean of the feature vectors of s — a Dim-length vector.
// Unknown text still embeds (hashing never misses), which is exactly the
// property that lets the downstream model process arbitrary queries.
func (m *Model) Embed(s string) []float32 {
	feats := m.Features(s)
	out := make([]float32, m.Dim)
	if len(feats) == 0 {
		return out
	}
	for _, f := range feats {
		mathx.Axpy(1, m.Table.Row(f), out)
	}
	mathx.Scale(1/float32(len(feats)), out)
	return out
}

// TrainConfig controls synonym training.
type TrainConfig struct {
	Epochs int
	LR     float32
	Margin float32
	// Negatives is how many random negatives each (label, synonym) pair is
	// contrasted against per epoch. Retrieval needs the synonym to be
	// closer to its label than to *every* other label, and one negative
	// per epoch explores that space too slowly for surface-dissimilar
	// synonyms.
	Negatives int
	Seed      uint64
	// Workers is the hogwild thread count (0 = GOMAXPROCS). Ignored when
	// Deterministic is set: the deterministic path is single-threaded by
	// construction, so its output is bit-identical at every worker count.
	Workers int
	// Deterministic selects the sequential trainer: one goroutine, one RNG
	// stream, bit-exact against every earlier release. With it off, Train
	// runs hogwild (hogwild.go): per-worker pair ranges updating the shared
	// bucket table lock-free, a shared unigram negative-sampling table, and
	// an atomic progress counter decaying the learning rate.
	Deterministic bool
	// OnProgress, when set, is called periodically during hogwild training
	// with (pairs processed, total pairs across all epochs). It may be
	// invoked concurrently from several workers and must be cheap.
	OnProgress func(done, total int64)
}

// DefaultTrainConfig returns the settings used by the pipeline. It is
// deterministic: hogwild is strictly opt-in (clear Deterministic and set
// Workers).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 5, LR: 0.05, Margin: 1.0, Negatives: 5, Seed: 17, Deterministic: true}
}

// Pair is one (label, synonym) training example.
type Pair struct {
	Label, Synonym string
}

// Train fits the table so that each pair embeds nearby while negatives
// embed farther away. The objective is a contrastive hinge: the synonym is
// always attracted to its label, and both are repelled (up to the margin)
// from sampled negatives — including *hard* negatives, the closest of a
// random sample of labels, without which surface-dissimilar synonyms stay
// closer to some foreign label than to their own. Gradients are sparse:
// only the buckets touched by an update move. Feature extraction is
// memoized across epochs (the string set is fixed).
func (m *Model) Train(pairs []Pair, negatives []string, cfg TrainConfig) {
	if len(pairs) == 0 || len(negatives) == 0 {
		return
	}
	// Every training string becomes a known mention (its dedicated feature
	// joins the bag) before features are cached.
	for _, p := range pairs {
		m.RegisterMention(p.Label)
		m.RegisterMention(p.Synonym)
	}
	for _, n := range negatives {
		m.RegisterMention(n)
	}
	if cfg.Deterministic {
		m.trainSeq(pairs, negatives, cfg)
		return
	}
	m.trainHogwild(pairs, negatives, cfg)
}

// trainSeq is the deterministic single-threaded trainer — the original
// training loop, bit-exact against every earlier release. The per-pair
// working buffers (feature embeddings and the gradient) live in one
// trainScratch reused across the whole run, so the epoch loop allocates
// nothing once the feature cache is warm (asserted in alloc_test.go).
func (m *Model) trainSeq(pairs []Pair, negatives []string, cfg TrainConfig) {
	rng := mathx.NewRNG(cfg.Seed)
	featCache := make(map[string][]int)
	feats := func(s string) []int {
		if f, ok := featCache[s]; ok {
			return f
		}
		f := m.Features(s)
		featCache[s] = f
		return f
	}
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	negs := cfg.Negatives
	if negs < 1 {
		negs = 1
	}
	sc := newTrainScratch(m.Dim)
	const hardSample = 12
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.ShuffleInts(order)
		for _, pi := range order {
			p := pairs[pi]
			fl, fs := feats(p.Label), feats(p.Synonym)
			if len(fl) == 0 || len(fs) == 0 {
				continue
			}
			// Attract synonym and label.
			m.attract(sc, fl, fs, cfg.LR)
			// Repel from negatives: uniform ones plus the hardest of a
			// random sample (the label currently nearest the synonym).
			es := m.embedFeaturesInto(sc.es, fs)
			for n := 0; n < negs; n++ {
				var fn []int
				if n == 0 {
					fn = m.hardestNegative(sc, es, p.Label, negatives, hardSample, feats, rng)
				} else {
					neg := negatives[rng.Intn(len(negatives))]
					if neg == p.Label {
						continue
					}
					fn = feats(neg)
				}
				if len(fn) == 0 {
					continue
				}
				m.repel(sc, fs, fn, cfg.Margin, cfg.LR)
				m.repel(sc, fl, fn, cfg.Margin, cfg.LR*0.5)
			}
		}
	}
}

// trainScratch holds the per-step working buffers of one training
// goroutine: two embedding accumulators, the persistent synonym embedding
// of the current pair, and the gradient. One scratch serves a whole
// training run; it must not be shared across goroutines.
type trainScratch struct {
	ea, eb, es, grad []float32
}

func newTrainScratch(dim int) *trainScratch {
	return &trainScratch{
		ea:   make([]float32, dim),
		eb:   make([]float32, dim),
		es:   make([]float32, dim),
		grad: make([]float32, dim),
	}
}

// hardestNegative returns the features of the closest label to es among a
// random sample, excluding the true label.
func (m *Model) hardestNegative(sc *trainScratch, es []float32, ownLabel string, negatives []string, sample int, feats func(string) []int, rng *mathx.RNG) []int {
	var best []int
	bestD := float32(3.4e38)
	for i := 0; i < sample; i++ {
		neg := negatives[rng.Intn(len(negatives))]
		if neg == ownLabel {
			continue
		}
		fn := feats(neg)
		if len(fn) == 0 {
			continue
		}
		if d := mathx.SquaredL2(es, m.embedFeaturesInto(sc.eb, fn)); d < bestD {
			best, bestD = fn, d
		}
	}
	return best
}

// embedFeaturesInto is Embed over a precomputed feature list, written into
// out (length Dim), which is also returned.
func (m *Model) embedFeaturesInto(out []float32, feats []int) []float32 {
	for i := range out {
		out[i] = 0
	}
	if len(feats) == 0 {
		return out
	}
	for _, f := range feats {
		mathx.Axpy(1, m.Table.Row(f), out)
	}
	mathx.Scale(1/float32(len(feats)), out)
	return out
}

// attract moves the two embeddings toward each other: loss = d(a,b)².
func (m *Model) attract(sc *trainScratch, fa, fb []int, lr float32) {
	ea := m.embedFeaturesInto(sc.ea, fa)
	eb := m.embedFeaturesInto(sc.eb, fb)
	// dL/dea = 2(ea-eb); dL/deb = -2(ea-eb).
	grad := sc.grad
	for i := range grad {
		grad[i] = 2 * (ea[i] - eb[i])
	}
	m.step(fa, grad, lr)
	mathx.Scale(-1, grad)
	m.step(fb, grad, lr)
}

// repel pushes the two embeddings apart while their squared distance is
// below the margin: loss = max(0, margin − d(a,b)²).
func (m *Model) repel(sc *trainScratch, fa, fn []int, margin, lr float32) {
	ea := m.embedFeaturesInto(sc.ea, fa)
	en := m.embedFeaturesInto(sc.eb, fn)
	if mathx.SquaredL2(ea, en) >= margin {
		return
	}
	// dL/dea = -2(ea-en); dL/den = 2(ea-en).
	grad := sc.grad
	for i := range grad {
		grad[i] = -2 * (ea[i] - en[i])
	}
	m.step(fa, grad, lr)
	mathx.Scale(-1, grad)
	m.step(fn, grad, lr)
}

// step applies -lr·grad/len(feats) to every feature row (the embedding is
// the mean of its rows).
func (m *Model) step(feats []int, grad []float32, lr float32) {
	scale := -lr / float32(len(feats))
	for _, f := range feats {
		mathx.Axpy(scale, grad, m.Table.Row(f))
	}
}
