package ngram

import (
	"testing"

	"emblookup/internal/mathx"
)

func TestFeaturesStable(t *testing.T) {
	m := NewModel(16, 1024, 1)
	a := m.Features("Germany")
	b := m.Features("germany") // case-insensitive
	if len(a) != len(b) {
		t.Fatalf("feature counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features not case-insensitive")
		}
	}
	if len(m.Features("")) != 0 {
		t.Fatal("empty string should have no features")
	}
}

func TestFeaturesShareSubwords(t *testing.T) {
	m := NewModel(16, 1<<16, 1)
	set := func(feats []int) map[int]bool {
		s := make(map[int]bool)
		for _, f := range feats {
			s[f] = true
		}
		return s
	}
	a := set(m.Features("germany"))
	b := set(m.Features("germanic"))
	c := set(m.Features("xqzzw"))
	shared := func(x, y map[int]bool) int {
		n := 0
		for f := range x {
			if y[f] {
				n++
			}
		}
		return n
	}
	if shared(a, b) <= shared(a, c) {
		t.Fatal("related words should share more subword features")
	}
}

func TestEmbedDimAndDeterminism(t *testing.T) {
	m := NewModel(32, 2048, 5)
	e1 := m.Embed("East Berlin")
	e2 := m.Embed("East Berlin")
	if len(e1) != 32 {
		t.Fatalf("dim = %d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Embed not deterministic")
		}
	}
}

func TestEmbedEmptyString(t *testing.T) {
	m := NewModel(8, 128, 2)
	e := m.Embed("")
	for _, v := range e {
		if v != 0 {
			t.Fatal("empty embed should be zero vector")
		}
	}
}

func TestTrainPullsSynonymsTogether(t *testing.T) {
	m := NewModel(32, 1<<14, 7)
	// Synthetic synonym structure: three entities, each with one alias
	// that shares no characters with its label.
	pairs := []Pair{
		{"alphaville", "kronstad"},
		{"betatown", "murdok"},
		{"gammaport", "velizar"},
	}
	negatives := []string{"alphaville", "betatown", "gammaport", "deltaburg", "omegagrad"}

	dist := func(a, b string) float32 {
		return mathx.SquaredL2(m.Embed(a), m.Embed(b))
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 60
	m.Train(pairs, negatives, cfg)

	for _, p := range pairs {
		dSyn := dist(p.Label, p.Synonym)
		// The synonym must be closer to its label than the other labels are.
		for _, q := range pairs {
			if q == p {
				continue
			}
			if dSyn >= dist(p.Label, q.Synonym) {
				t.Fatalf("synonym %q not closest to %q after training", p.Synonym, p.Label)
			}
		}
	}
}

func TestTrainNoopOnEmptyInput(t *testing.T) {
	m := NewModel(8, 128, 3)
	before := append([]float32(nil), m.Table.Data...)
	m.Train(nil, nil, DefaultTrainConfig())
	m.Train([]Pair{{"a", "b"}}, nil, DefaultTrainConfig())
	for i := range before {
		if m.Table.Data[i] != before[i] {
			t.Fatal("training with empty input must not modify the table")
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	pairs := []Pair{{"germany", "deutschland"}, {"france", "lafrance"}}
	negs := []string{"spain", "poland", "italy"}
	m1 := NewModel(16, 4096, 9)
	m2 := NewModel(16, 4096, 9)
	m1.Train(pairs, negs, DefaultTrainConfig())
	m2.Train(pairs, negs, DefaultTrainConfig())
	for i := range m1.Table.Data {
		if m1.Table.Data[i] != m2.Table.Data[i] {
			t.Fatal("training not deterministic")
		}
	}
}
