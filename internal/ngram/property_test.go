package ngram

import (
	"testing"
	"testing/quick"
)

// Property: Embed is deterministic, dimension-stable, and invariant to
// leading/trailing whitespace and case.
func TestEmbedInvariantsProperty(t *testing.T) {
	m := NewModel(16, 1024, 7)
	f := func(s string) bool {
		if len(s) > 60 {
			return true
		}
		a := m.Embed(s)
		b := m.Embed(s)
		if len(a) != 16 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		c := m.Embed("  " + s + "  ")
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: feature indexes always fall inside the bucket table.
func TestFeaturesInRangeProperty(t *testing.T) {
	m := NewModel(8, 512, 3)
	f := func(s string) bool {
		for _, idx := range m.Features(s) {
			if idx < 0 || idx >= 512 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedPartsMentionZeroForUnknown(t *testing.T) {
	m := NewModel(8, 512, 5)
	m.RegisterMention("Germany")
	sub, mention := m.EmbedParts("Germany")
	if len(sub) != 8 || len(mention) != 8 {
		t.Fatal("part dims wrong")
	}
	nonZero := false
	for _, v := range mention {
		if v != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("registered mention should have a non-zero slot")
	}
	_, unknown := m.EmbedParts("NeverSeenBefore")
	for _, v := range unknown {
		if v != 0 {
			t.Fatal("unknown mention slot must be zero")
		}
	}
}

func TestKnownMentionRoundTrip(t *testing.T) {
	m := NewModel(8, 512, 5)
	m.RegisterMention("alpha")
	m.RegisterMention("beta")
	hs := m.KnownMentionHashes()
	if len(hs) != 2 {
		t.Fatalf("hashes = %v", hs)
	}
	m2 := NewModel(8, 512, 5)
	m2.SetKnownMentionHashes(hs)
	_, a := m2.EmbedParts("alpha")
	zero := true
	for _, v := range a {
		if v != 0 {
			zero = false
		}
	}
	// Tables differ (random init), but the slot must be *recognized* —
	// i.e. copied from the table rather than forced to zero. Verify by
	// comparing against the table row directly.
	if zero {
		// The random row could be all zeros only with probability ~0.
		t.Fatal("restored known mention not recognized")
	}
}
