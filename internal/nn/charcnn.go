package nn

import "emblookup/internal/mathx"

// CharCNN is the syntactic embedding model of Section III-B: a stack of 1-D
// convolutions with ReLU activations over the one-hot character matrix,
// aggregated by global max-pooling. The paper uses 5 layers of 8 kernels of
// size 3; both are configurable.
type CharCNN struct {
	Convs []*Conv1D
}

// NewCharCNN builds a CNN over inChannels (the alphabet size) with `layers`
// convolutions of `channels` kernels of size `kernel`.
func NewCharCNN(r *mathx.RNG, inChannels, channels, kernel, layers int) *CharCNN {
	m := &CharCNN{}
	in := inChannels
	for i := 0; i < layers; i++ {
		m.Convs = append(m.Convs, NewConv1D(r, in, channels, kernel))
		in = channels
	}
	return m
}

// OutDim returns the dimensionality of the pooled output.
func (m *CharCNN) OutDim() int {
	if len(m.Convs) == 0 {
		return 0
	}
	return m.Convs[len(m.Convs)-1].Out
}

// Params returns all learnable parameters.
func (m *CharCNN) Params() []*Param {
	var ps []*Param
	for _, c := range m.Convs {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// CharCNNCache stores per-layer caches plus pooling bookkeeping. idx is
// set only on the sparse ForwardIdx path.
type CharCNNCache struct {
	convCaches []*ConvCache
	masks      [][]bool
	arg        []int
	rows, cols int
	idx        []int
}

// Forward computes the pooled embedding and the backward cache.
func (m *CharCNN) Forward(x *mathx.Matrix) ([]float32, *CharCNNCache) {
	cache := &CharCNNCache{}
	h := x
	for _, c := range m.Convs {
		var cc *ConvCache
		h, cc = c.Forward(h)
		cache.convCaches = append(cache.convCaches, cc)
		cache.masks = append(cache.masks, ReLUInPlace(h))
	}
	out, arg := GlobalMaxPool(h)
	cache.arg = arg
	cache.rows, cache.cols = h.Rows, h.Cols
	return out, cache
}

// Backward accumulates parameter gradients. The gradient with respect to the
// one-hot input is discarded (the input is not learned).
func (m *CharCNN) Backward(cache *CharCNNCache, dy []float32) {
	g := GlobalMaxPoolBackward(dy, cache.arg, cache.rows, cache.cols)
	for i := len(m.Convs) - 1; i >= 0; i-- {
		ReLUBackward(g, cache.masks[i])
		g = m.Convs[i].Backward(cache.convCaches[i], g)
	}
}

// TripletLoss computes the squared-L2 triplet loss of Equation 3,
// max(‖a−p‖² − ‖a−n‖² + margin, 0), and the gradients with respect to the
// three embeddings. For an inactive triplet (loss 0) the gradients are nil.
func TripletLoss(a, p, n []float32, margin float32) (loss float32, da, dp, dn []float32) {
	dap := mathx.SquaredL2(a, p)
	dan := mathx.SquaredL2(a, n)
	loss = dap - dan + margin
	if loss <= 0 {
		return 0, nil, nil, nil
	}
	da = make([]float32, len(a))
	dp = make([]float32, len(a))
	dn = make([]float32, len(a))
	for i := range a {
		// d/da (‖a−p‖² − ‖a−n‖²) = 2(a−p) − 2(a−n) = 2(n−p)
		da[i] = 2 * (n[i] - p[i])
		dp[i] = -2 * (a[i] - p[i])
		dn[i] = 2 * (a[i] - n[i])
	}
	return loss, da, dp, dn
}

// TripletDistances returns ‖a−p‖² and ‖a−n‖², used by the online mining
// phase to classify triplets as easy / semi-hard / hard.
func TripletDistances(a, p, n []float32) (dap, dan float32) {
	return mathx.SquaredL2(a, p), mathx.SquaredL2(a, n)
}

// ContrastiveLoss is the alternative training objective the paper's
// conclusion proposes evaluating: instead of the relative triplet
// constraint, it penalizes the positive pair's distance absolutely and
// hinges the negative pair below the margin,
// L = ‖a−p‖² + max(0, margin − ‖a−n‖²). Gradients are nil only when both
// terms vanish.
func ContrastiveLoss(a, p, n []float32, margin float32) (loss float32, da, dp, dn []float32) {
	dap := mathx.SquaredL2(a, p)
	dan := mathx.SquaredL2(a, n)
	hinge := margin - dan
	if hinge < 0 {
		hinge = 0
	}
	loss = dap + hinge
	if loss == 0 {
		return 0, nil, nil, nil
	}
	da = make([]float32, len(a))
	dp = make([]float32, len(a))
	dn = make([]float32, len(a))
	for i := range a {
		// d/da ‖a−p‖² = 2(a−p); hinge active adds d/da −‖a−n‖² = −2(a−n).
		da[i] = 2 * (a[i] - p[i])
		dp[i] = -2 * (a[i] - p[i])
		if hinge > 0 {
			da[i] += -2 * (a[i] - n[i])
			dn[i] = 2 * (a[i] - n[i])
		}
	}
	return loss, da, dp, dn
}
