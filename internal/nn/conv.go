package nn

import "emblookup/internal/mathx"

// Conv1D is a 1-D convolution over a channels×length matrix with "same"
// zero padding, the building block of the paper's syntactic CNN (5 layers of
// 8 kernels of size 3).
type Conv1D struct {
	In, Out, K int
	Weight     *Param // Out × (In*K)
	Bias       *Param // Out × 1
}

// NewConv1D builds a convolution layer with Kaiming initialization.
func NewConv1D(r *mathx.RNG, in, out, k int) *Conv1D {
	c := &Conv1D{In: in, Out: out, K: k,
		Weight: NewParam(out, in*k),
		Bias:   NewParam(out, 1),
	}
	c.Weight.InitKaiming(r, in*k)
	return c
}

// Params returns the layer's learnable parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// ConvCache holds the forward activations needed by Backward.
type ConvCache struct {
	x *mathx.Matrix
}

// Forward computes y[o][t] = b[o] + Σ_{i,k} W[o][i,k]·x[i][t+k-pad] with
// zero padding so the output length equals the input length.
func (c *Conv1D) Forward(x *mathx.Matrix) (*mathx.Matrix, *ConvCache) {
	y := c.Apply(x)
	return y, &ConvCache{x: x}
}

// Apply is the inference-only forward pass; it reads parameters without
// mutating any state and is safe for concurrent use.
func (c *Conv1D) Apply(x *mathx.Matrix) *mathx.Matrix {
	y := mathx.NewMatrix(c.Out, x.Cols)
	c.ApplyInto(x, y)
	return y
}

// ApplyInto computes the convolution into y, which must be Out×x.Cols; every
// element of y is overwritten, so a reused scratch matrix needs no zeroing.
// The loops run over contiguous slices (per input channel and kernel tap) so
// the hot inner loop is a strided multiply-add the compiler keeps in
// registers.
func (c *Conv1D) ApplyInto(x, y *mathx.Matrix) {
	L := x.Cols
	pad := (c.K - 1) / 2
	for o := 0; o < c.Out; o++ {
		yr := y.Row(o)
		b := c.Bias.W.Data[o]
		for t := range yr {
			yr[t] = b
		}
		w := c.Weight.W.Row(o)
		for i := 0; i < c.In; i++ {
			xr := x.Row(i)
			wBase := i * c.K
			for k := 0; k < c.K; k++ {
				wv := w[wBase+k]
				if wv == 0 {
					continue
				}
				off := k - pad
				lo, hi := 0, L
				if off < 0 {
					lo = -off
				} else if off > 0 {
					hi = L - off
				}
				xs := xr[lo+off : hi+off]
				ys := yr[lo:hi]
				for t := range ys {
					ys[t] += wv * xs[t]
				}
			}
		}
	}
}

// Backward accumulates dWeight/dBias and returns dL/dx, with the same
// contiguous-slice loop structure as Apply.
func (c *Conv1D) Backward(cache *ConvCache, dy *mathx.Matrix) *mathx.Matrix {
	x := cache.x
	L := x.Cols
	pad := (c.K - 1) / 2
	dx := mathx.NewMatrix(x.Rows, L)
	for o := 0; o < c.Out; o++ {
		w := c.Weight.W.Row(o)
		gw := c.Weight.Grad.Row(o)
		dyr := dy.Row(o)
		var gb float32
		for t := 0; t < L; t++ {
			gb += dyr[t]
		}
		c.Bias.Grad.Data[o] += gb
		for i := 0; i < c.In; i++ {
			xr := x.Row(i)
			dxr := dx.Row(i)
			wBase := i * c.K
			for k := 0; k < c.K; k++ {
				off := k - pad
				lo, hi := 0, L
				if off < 0 {
					lo = -off
				} else if off > 0 {
					hi = L - off
				}
				xs := xr[lo+off : hi+off]
				dxs := dxr[lo+off : hi+off]
				ds := dyr[lo:hi]
				var gwAcc float32
				wv := w[wBase+k]
				for t := range ds {
					g := ds[t]
					gwAcc += g * xs[t]
					dxs[t] += g * wv
				}
				gw[wBase+k] += gwAcc
			}
		}
	}
	return dx
}

// ReLUInPlace applies max(0,·) to m and returns a mask cache for backward.
func ReLUInPlace(m *mathx.Matrix) []bool {
	mask := make([]bool, len(m.Data))
	for i, v := range m.Data {
		if v > 0 {
			mask[i] = true
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}

// ReLUBackward zeroes gradient entries where the forward activation was
// clamped.
func ReLUBackward(dy *mathx.Matrix, mask []bool) {
	for i := range dy.Data {
		if !mask[i] {
			dy.Data[i] = 0
		}
	}
}

// GlobalMaxPool reduces a channels×length matrix to a per-channel max
// vector, returning the argmax positions for backward.
func GlobalMaxPool(x *mathx.Matrix) ([]float32, []int) {
	out := make([]float32, x.Rows)
	arg := make([]int, x.Rows)
	for c := 0; c < x.Rows; c++ {
		row := x.Row(c)
		best, idx := row[0], 0
		for t := 1; t < len(row); t++ {
			if row[t] > best {
				best, idx = row[t], t
			}
		}
		out[c] = best
		arg[c] = idx
	}
	return out, arg
}

// GlobalMaxPoolInto writes the per-channel max into out (length x.Rows)
// without the argmax bookkeeping — the inference-only variant.
func GlobalMaxPoolInto(x *mathx.Matrix, out []float32) {
	for c := 0; c < x.Rows; c++ {
		row := x.Row(c)
		best := row[0]
		for t := 1; t < len(row); t++ {
			if row[t] > best {
				best = row[t]
			}
		}
		out[c] = best
	}
}

// GlobalMaxPoolBackward scatters the pooled gradient back to the argmax
// positions, producing dL/dx of the given shape.
func GlobalMaxPoolBackward(dy []float32, arg []int, rows, cols int) *mathx.Matrix {
	dx := mathx.NewMatrix(rows, cols)
	for c := range dy {
		dx.Set(c, arg[c], dy[c])
	}
	return dx
}
