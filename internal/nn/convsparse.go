package nn

import "emblookup/internal/mathx"

// Sparse one-hot fast path. The first convolution layer of the syntactic
// CNN always consumes a one-hot character matrix: each input column has at
// most a single 1. Exploiting that drops the first layer's cost from
// O(|A|·L·Out·K) to O(L·Out·K) in both directions — the dominant term of a
// training step, since the alphabet is several times wider than the hidden
// channels.

// ApplySparseOneHot computes the convolution over a one-hot input given the
// per-position alphabet indexes (-1 marks padding), matching Apply on the
// equivalent dense matrix.
func (c *Conv1D) ApplySparseOneHot(idx []int) *mathx.Matrix {
	y := mathx.NewMatrix(c.Out, len(idx))
	c.ApplySparseOneHotInto(idx, y)
	return y
}

// ApplySparseOneHotInto is ApplySparseOneHot into y, which must be
// Out×len(idx); every element is overwritten.
func (c *Conv1D) ApplySparseOneHotInto(idx []int, y *mathx.Matrix) {
	L := len(idx)
	pad := (c.K - 1) / 2
	for o := 0; o < c.Out; o++ {
		w := c.Weight.W.Row(o)
		b := c.Bias.W.Data[o]
		yr := y.Row(o)
		for t := 0; t < L; t++ {
			s := b
			for k := 0; k < c.K; k++ {
				src := t + k - pad
				if src < 0 || src >= L {
					continue
				}
				ch := idx[src]
				if ch < 0 {
					continue
				}
				s += w[ch*c.K+k]
			}
			yr[t] = s
		}
	}
}

// BackwardSparseOneHot accumulates dWeight/dBias for a forward pass done
// with ApplySparseOneHot. The input gradient is not computed (the one-hot
// encoding is not learned).
func (c *Conv1D) BackwardSparseOneHot(idx []int, dy *mathx.Matrix) {
	L := len(idx)
	pad := (c.K - 1) / 2
	for o := 0; o < c.Out; o++ {
		gw := c.Weight.Grad.Row(o)
		dyr := dy.Row(o)
		var gb float32
		for t := 0; t < L; t++ {
			g := dyr[t]
			if g == 0 {
				continue
			}
			gb += g
			for k := 0; k < c.K; k++ {
				src := t + k - pad
				if src < 0 || src >= L {
					continue
				}
				ch := idx[src]
				if ch < 0 {
					continue
				}
				gw[ch*c.K+k] += g
			}
		}
		c.Bias.Grad.Data[o] += gb
	}
}

// ForwardIdx is the CharCNN training pass over sparse one-hot indexes. The
// returned cache must be passed to BackwardIdx.
func (m *CharCNN) ForwardIdx(idx []int) ([]float32, *CharCNNCache) {
	cache := &CharCNNCache{idx: idx}
	h := m.Convs[0].ApplySparseOneHot(idx)
	cache.masks = append(cache.masks, ReLUInPlace(h))
	for _, c := range m.Convs[1:] {
		var cc *ConvCache
		h, cc = c.Forward(h)
		cache.convCaches = append(cache.convCaches, cc)
		cache.masks = append(cache.masks, ReLUInPlace(h))
	}
	out, arg := GlobalMaxPool(h)
	cache.arg = arg
	cache.rows, cache.cols = h.Rows, h.Cols
	return out, cache
}

// BackwardIdx accumulates gradients for a ForwardIdx pass.
func (m *CharCNN) BackwardIdx(cache *CharCNNCache, dy []float32) {
	g := GlobalMaxPoolBackward(dy, cache.arg, cache.rows, cache.cols)
	for i := len(m.Convs) - 1; i >= 1; i-- {
		ReLUBackward(g, cache.masks[i])
		g = m.Convs[i].Backward(cache.convCaches[i-1], g)
	}
	ReLUBackward(g, cache.masks[0])
	m.Convs[0].BackwardSparseOneHot(cache.idx, g)
}
