package nn

import (
	"math"

	"emblookup/internal/mathx"
)

// Hogwild support for the combiner phase (DESIGN.md §13). The replica path
// (replica.go) shares master weights and serializes on a per-batch
// MergeGrads barrier; the hogwild path removes the barrier entirely.
// Each worker owns a *detached* copy of the layers — private W and Grad —
// refreshed from the master parameters via atomic loads at the start of
// every micro-batch (Pull), then pushes its Adam-preconditioned deltas
// back with CAS adds (Step). The master therefore drifts under all workers
// at once; a worker computes on a slightly stale snapshot, which is exactly
// the staleness hogwild SGD tolerates. Every shared access is an atomic on
// the master's cells, so the race detector is satisfied even though the
// values race.

// Detach returns a linear layer with deep-copied weights and fresh
// gradients — no storage shared with l.
func (l *Linear) Detach() *Linear {
	return &Linear{In: l.In, Out: l.Out,
		Weight: detachParam(l.Weight), Bias: detachParam(l.Bias)}
}

// Detach returns a conv layer with deep-copied weights and fresh gradients.
func (c *Conv1D) Detach() *Conv1D {
	return &Conv1D{In: c.In, Out: c.Out, K: c.K,
		Weight: detachParam(c.Weight), Bias: detachParam(c.Bias)}
}

// Detach returns an MLP with deep-copied weights and fresh gradients.
func (m *MLP) Detach() *MLP {
	return &MLP{L1: m.L1.Detach(), L2: m.L2.Detach()}
}

// Detach returns a CharCNN with deep-copied weights and fresh gradients.
func (m *CharCNN) Detach() *CharCNN {
	out := &CharCNN{Convs: make([]*Conv1D, len(m.Convs))}
	for i, c := range m.Convs {
		out.Convs[i] = c.Detach()
	}
	return out
}

func detachParam(p *Param) *Param {
	return &Param{W: p.W.Clone(), Grad: mathx.NewMatrix(p.W.Rows, p.W.Cols)}
}

// HogwildAdam is a per-worker lazy Adam over a detached parameter set. The
// worker's local params carry the weights it computes with and the
// gradients it accumulates; master holds the shared cells all workers
// update. Moment estimates (m, v) are private to the worker — per-worker
// moment shards — so the only contended state is the master weights
// themselves.
type HogwildAdam struct {
	LR    float32
	Beta1 float32
	Beta2 float32
	Eps   float32

	t      int
	master []*Param // shared; W touched only through atomics
	local  []*Param // this worker's detached params, aligned with master
	m, v   []*mathx.Matrix
}

// NewHogwildAdam pairs a worker's detached parameters with the master set.
// The slices must align (same order, same shapes) — the same contract as
// MergeGrads.
func NewHogwildAdam(lr float32, master, local []*Param) *HogwildAdam {
	if len(master) != len(local) {
		panic("nn: hogwild master/local parameter count mismatch")
	}
	return &HogwildAdam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		master: master, local: local,
		m: make([]*mathx.Matrix, len(master)),
		v: make([]*mathx.Matrix, len(master)),
	}
}

// Pull refreshes the worker's local weights from the master via atomic
// loads — the start-of-micro-batch snapshot.
func (a *HogwildAdam) Pull() {
	for i, mp := range a.local {
		src := a.master[i].W.Data
		dst := mp.W.Data
		for j := range dst {
			dst[j] = mathx.AtomicLoadFloat32(&src[j])
		}
	}
}

// Step applies one lazy Adam update from the local gradients and pushes
// each resulting weight delta onto the master with a CAS add, then clears
// the local gradients. scale divides the gradients first (1/microBatch for
// mean loss). Cells with zero gradient are skipped entirely — their
// moments stay frozen — which keeps the push sparse and cheap; that is the
// "lazy" in lazy Adam, and the standard hogwild trade (ParaGraphE makes
// the same one).
func (a *HogwildAdam) Step(scale float32) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for pi, lp := range a.local {
		if a.m[pi] == nil {
			a.m[pi] = mathx.NewMatrix(lp.W.Rows, lp.W.Cols)
			a.v[pi] = mathx.NewMatrix(lp.W.Rows, lp.W.Cols)
		}
		mo, vo := a.m[pi].Data, a.v[pi].Data
		masterW := a.master[pi].W.Data
		for i, g := range lp.Grad.Data {
			if g == 0 {
				continue
			}
			g *= scale
			mo[i] = a.Beta1*mo[i] + (1-a.Beta1)*g
			vo[i] = a.Beta2*vo[i] + (1-a.Beta2)*g*g
			mHat := mo[i] / c1
			vHat := vo[i] / c2
			delta := -a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
			mathx.AtomicAddFloat32(&masterW[i], delta)
		}
		lp.ZeroGrad()
	}
}
