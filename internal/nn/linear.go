package nn

import "emblookup/internal/mathx"

// Linear is a fully connected layer y = Wx + b over float32 vectors.
type Linear struct {
	In, Out int
	Weight  *Param // Out × In
	Bias    *Param // Out × 1
}

// NewLinear builds a linear layer with Kaiming initialization (suited to
// the ReLU combiner of Section III-B).
func NewLinear(r *mathx.RNG, in, out int) *Linear {
	l := &Linear{In: in, Out: out, Weight: NewParam(out, in), Bias: NewParam(out, 1)}
	l.Weight.InitKaiming(r, in)
	return l
}

// Params returns the layer's learnable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Apply is the inference forward pass (concurrent-safe).
func (l *Linear) Apply(x []float32) []float32 {
	y := make([]float32, l.Out)
	l.ApplyInto(x, y)
	return y
}

// ApplyInto computes y = Wx + b into y (length Out), avoiding the per-call
// allocation of Apply.
func (l *Linear) ApplyInto(x, y []float32) {
	l.Weight.W.MatVecInto(x, y)
	for i := range y {
		y[i] += l.Bias.W.Data[i]
	}
}

// Forward computes y and returns x as the backward cache.
func (l *Linear) Forward(x []float32) ([]float32, []float32) {
	return l.Apply(x), x
}

// Backward accumulates gradients and returns dL/dx.
func (l *Linear) Backward(x, dy []float32) []float32 {
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		l.Bias.Grad.Data[o] += g
		mathx.Axpy(g, x, l.Weight.Grad.Row(o))
	}
	return l.Weight.W.MatVecT(dy)
}

// ReLUVec applies max(0,·) in place to a vector and returns the mask.
func ReLUVec(v []float32) []bool {
	mask := make([]bool, len(v))
	for i, x := range v {
		if x > 0 {
			mask[i] = true
		} else {
			v[i] = 0
		}
	}
	return mask
}

// ReLUVecBackward masks dy in place.
func ReLUVecBackward(dy []float32, mask []bool) {
	for i := range dy {
		if !mask[i] {
			dy[i] = 0
		}
	}
}

// MLP is the paper's combiner: two linear layers with a ReLU between them,
// aggregating the concatenated CNN and fastText embeddings into the final
// 64-dimensional embedding.
type MLP struct {
	L1, L2 *Linear
}

// NewMLP builds a two-layer perceptron in→hidden→out.
func NewMLP(r *mathx.RNG, in, hidden, out int) *MLP {
	return &MLP{L1: NewLinear(r, in, hidden), L2: NewLinear(r, hidden, out)}
}

// Params returns all learnable parameters.
func (m *MLP) Params() []*Param {
	return append(m.L1.Params(), m.L2.Params()...)
}

// MLPCache holds forward activations for Backward.
type MLPCache struct {
	x, h []float32
	mask []bool
}

// Apply is the inference forward pass (concurrent-safe). The result is
// freshly allocated; hot paths use ApplyInto with a worker-owned Scratch.
func (m *MLP) Apply(x []float32) []float32 {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return append([]float32(nil), m.ApplyInto(x, s)...)
}

// Forward computes the output and a cache for Backward.
func (m *MLP) Forward(x []float32) ([]float32, *MLPCache) {
	h, _ := m.L1.Forward(x)
	mask := ReLUVec(h)
	y := m.L2.Apply(h)
	return y, &MLPCache{x: x, h: h, mask: mask}
}

// Backward accumulates gradients and returns dL/dx.
func (m *MLP) Backward(cache *MLPCache, dy []float32) []float32 {
	dh := m.L2.Backward(cache.h, dy)
	ReLUVecBackward(dh, cache.mask)
	return m.L1.Backward(cache.x, dh)
}
