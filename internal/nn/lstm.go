package nn

import (
	"math"

	"emblookup/internal/mathx"
)

// LSTM is a single-layer long short-term memory network over character
// sequences. It exists for the Table VII baseline: the paper compares
// EmbLookup's CNN against "an LSTM model trained over the labels and aliases
// of the KG entities".
type LSTM struct {
	In, Hidden int
	Wx         *Param // 4H × In, gate order [i f g o]
	Wh         *Param // 4H × H
	B          *Param // 4H × 1
}

// NewLSTM builds an LSTM with Xavier-initialized weights and forget-gate
// bias 1 (the usual trick to ease gradient flow early in training).
func NewLSTM(r *mathx.RNG, in, hidden int) *LSTM {
	l := &LSTM{In: in, Hidden: hidden,
		Wx: NewParam(4*hidden, in),
		Wh: NewParam(4*hidden, hidden),
		B:  NewParam(4*hidden, 1),
	}
	l.Wx.InitXavier(r, in, hidden)
	l.Wh.InitXavier(r, hidden, hidden)
	for i := hidden; i < 2*hidden; i++ {
		l.B.W.Data[i] = 1
	}
	return l
}

// Params returns the learnable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

type lstmStep struct {
	x          []float32
	i, f, g, o []float32
	c, h       []float32
	cPrev      []float32
	hPrev      []float32
	tanhC      []float32
}

// LSTMCache stores the per-timestep activations for BPTT.
type LSTMCache struct {
	steps []*lstmStep
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func tanhf(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// step runs one LSTM cell update.
func (l *LSTM) step(x, hPrev, cPrev []float32) *lstmStep {
	H := l.Hidden
	z := l.Wx.W.MatVec(x)
	zh := l.Wh.W.MatVec(hPrev)
	for i := range z {
		z[i] += zh[i] + l.B.W.Data[i]
	}
	st := &lstmStep{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: make([]float32, H), f: make([]float32, H),
		g: make([]float32, H), o: make([]float32, H),
		c: make([]float32, H), h: make([]float32, H),
		tanhC: make([]float32, H),
	}
	for j := 0; j < H; j++ {
		st.i[j] = sigmoid(z[j])
		st.f[j] = sigmoid(z[H+j])
		st.g[j] = tanhf(z[2*H+j])
		st.o[j] = sigmoid(z[3*H+j])
		st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
		st.tanhC[j] = tanhf(st.c[j])
		st.h[j] = st.o[j] * st.tanhC[j]
	}
	return st
}

// columns extracts the first seqLen columns of x as dense vectors.
func columns(x *mathx.Matrix, seqLen int) [][]float32 {
	if seqLen <= 0 || seqLen > x.Cols {
		seqLen = x.Cols
	}
	cols := make([][]float32, seqLen)
	for t := 0; t < seqLen; t++ {
		v := make([]float32, x.Rows)
		for r := 0; r < x.Rows; r++ {
			v[r] = x.At(r, t)
		}
		cols[t] = v
	}
	return cols
}

// Apply runs the sequence and returns the final hidden state
// (inference-only, concurrent-safe).
func (l *LSTM) Apply(x *mathx.Matrix, seqLen int) []float32 {
	h := make([]float32, l.Hidden)
	c := make([]float32, l.Hidden)
	for _, xt := range columns(x, seqLen) {
		st := l.step(xt, h, c)
		h, c = st.h, st.c
	}
	return h
}

// Forward runs the sequence keeping the activations needed for Backward and
// returns the final hidden state.
func (l *LSTM) Forward(x *mathx.Matrix, seqLen int) ([]float32, *LSTMCache) {
	cache := &LSTMCache{}
	h := make([]float32, l.Hidden)
	c := make([]float32, l.Hidden)
	for _, xt := range columns(x, seqLen) {
		st := l.step(xt, h, c)
		cache.steps = append(cache.steps, st)
		h, c = st.h, st.c
	}
	return h, cache
}

// Backward back-propagates dL/dh_final through time, accumulating parameter
// gradients. The gradient with respect to the input is discarded.
func (l *LSTM) Backward(cache *LSTMCache, dhFinal []float32) {
	H := l.Hidden
	dh := append([]float32(nil), dhFinal...)
	dc := make([]float32, H)
	dz := make([]float32, 4*H)
	for t := len(cache.steps) - 1; t >= 0; t-- {
		st := cache.steps[t]
		for j := 0; j < H; j++ {
			do := dh[j] * st.tanhC[j]
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tanhC[j]*st.tanhC[j])
			di := dcj * st.g[j]
			df := dcj * st.cPrev[j]
			dg := dcj * st.i[j]
			dz[j] = di * st.i[j] * (1 - st.i[j])
			dz[H+j] = df * st.f[j] * (1 - st.f[j])
			dz[2*H+j] = dg * (1 - st.g[j]*st.g[j])
			dz[3*H+j] = do * st.o[j] * (1 - st.o[j])
			dc[j] = dcj * st.f[j]
		}
		// Accumulate parameter gradients: dWx += dz·xᵀ, dWh += dz·hPrevᵀ.
		for r := 0; r < 4*H; r++ {
			g := dz[r]
			if g == 0 {
				continue
			}
			l.B.Grad.Data[r] += g
			mathx.Axpy(g, st.x, l.Wx.Grad.Row(r))
			mathx.Axpy(g, st.hPrev, l.Wh.Grad.Row(r))
		}
		// dh for the previous step: Whᵀ·dz.
		dh = l.Wh.W.MatVecT(dz)
	}
}

// Dropout zeroes each element of v with probability p during training and
// scales survivors by 1/(1-p) (inverted dropout). It returns the keep mask.
func Dropout(v []float32, p float64, r *mathx.RNG) []bool {
	mask := make([]bool, len(v))
	scale := float32(1 / (1 - p))
	for i := range v {
		if r.Float64() < p {
			v[i] = 0
		} else {
			mask[i] = true
			v[i] *= scale
		}
	}
	return mask
}

// DropoutBackward masks and rescales the gradient to match Dropout.
func DropoutBackward(dy []float32, mask []bool, p float64) {
	scale := float32(1 / (1 - p))
	for i := range dy {
		if mask[i] {
			dy[i] *= scale
		} else {
			dy[i] = 0
		}
	}
}
