package nn

import (
	"math"
	"testing"

	"emblookup/internal/mathx"
)

// numericalGrad estimates dLoss/dw for every weight in p by central
// differences, where loss() recomputes the full forward pass.
func numericalGrad(p *Param, loss func() float32) []float32 {
	const eps = 1e-3
	out := make([]float32, len(p.W.Data))
	for i := range p.W.Data {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + eps
		up := loss()
		p.W.Data[i] = orig - eps
		down := loss()
		p.W.Data[i] = orig
		out[i] = (up - down) / (2 * eps)
	}
	return out
}

func maxRelErr(analytic, numeric []float32) float64 {
	worst := 0.0
	for i := range analytic {
		a, n := float64(analytic[i]), float64(numeric[i])
		if math.Abs(a-n) < 5e-3 {
			// Central differences in float32 are too noisy to grade
			// near-zero gradients on a relative scale.
			continue
		}
		denom := math.Max(math.Abs(a)+math.Abs(n), 1e-4)
		if e := math.Abs(a-n) / denom; e > worst {
			worst = e
		}
	}
	return worst
}

func TestConv1DForwardKnownValues(t *testing.T) {
	r := mathx.NewRNG(1)
	c := NewConv1D(r, 1, 1, 3)
	// Identity-ish kernel: w = [0,1,0], bias 0 -> output equals input.
	copy(c.Weight.W.Data, []float32{0, 1, 0})
	c.Bias.W.Data[0] = 0
	x := mathx.NewMatrix(1, 4)
	copy(x.Data, []float32{1, 2, 3, 4})
	y := c.Apply(x)
	for i, want := range []float32{1, 2, 3, 4} {
		if y.Data[i] != want {
			t.Fatalf("identity conv output %v", y.Data)
		}
	}
	// Shift kernel w = [1,0,0] looks one step left (with zero pad).
	copy(c.Weight.W.Data, []float32{1, 0, 0})
	y = c.Apply(x)
	for i, want := range []float32{0, 1, 2, 3} {
		if y.Data[i] != want {
			t.Fatalf("shift conv output %v", y.Data)
		}
	}
}

func TestConv1DGradCheck(t *testing.T) {
	r := mathx.NewRNG(2)
	c := NewConv1D(r, 3, 2, 3)
	x := mathx.NewMatrix(3, 5)
	x.FillRandn(r, 1)

	// Loss = sum of squares of outputs.
	loss := func() float32 {
		y := c.Apply(x)
		var s float32
		for _, v := range y.Data {
			s += v * v
		}
		return s
	}
	y, cache := c.Forward(x)
	dy := mathx.NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		dy.Data[i] = 2 * v
	}
	dx := c.Backward(cache, dy)

	for _, p := range c.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.Grad.Data, num); e > 0.02 {
			t.Fatalf("conv param grad mismatch: %v", e)
		}
	}
	// Input gradient check.
	const eps = 1e-3
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := loss()
		x.Data[i] = orig - eps
		down := loss()
		x.Data[i] = orig
		num := (up - down) / (2 * eps)
		a, n := float64(dx.Data[i]), float64(num)
		if math.Abs(a-n)/math.Max(math.Abs(a)+math.Abs(n), 1e-4) > 0.02 {
			t.Fatalf("conv input grad mismatch at %d: %v vs %v", i, a, n)
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	r := mathx.NewRNG(3)
	l := NewLinear(r, 4, 3)
	x := []float32{0.5, -1, 2, 0.1}
	loss := func() float32 {
		y := l.Apply(x)
		var s float32
		for _, v := range y {
			s += v * v
		}
		return s
	}
	y, cache := l.Forward(x)
	dy := make([]float32, len(y))
	for i, v := range y {
		dy[i] = 2 * v
	}
	dx := l.Backward(cache, dy)
	for _, p := range l.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.Grad.Data, num); e > 0.02 {
			t.Fatalf("linear grad mismatch: %v", e)
		}
	}
	if len(dx) != 4 {
		t.Fatalf("dx length %d", len(dx))
	}
}

func TestMLPGradCheck(t *testing.T) {
	r := mathx.NewRNG(4)
	m := NewMLP(r, 5, 7, 3)
	x := make([]float32, 5)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	loss := func() float32 {
		y := m.Apply(x)
		var s float32
		for _, v := range y {
			s += v * v
		}
		return s
	}
	y, cache := m.Forward(x)
	dy := make([]float32, len(y))
	for i, v := range y {
		dy[i] = 2 * v
	}
	m.Backward(cache, dy)
	for _, p := range m.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.Grad.Data, num); e > 0.03 {
			t.Fatalf("mlp grad mismatch: %v", e)
		}
	}
}

func TestCharCNNGradCheck(t *testing.T) {
	r := mathx.NewRNG(5)
	m := NewCharCNN(r, 4, 3, 3, 2)
	x := mathx.NewMatrix(4, 6)
	x.FillRandn(r, 1)
	loss := func() float32 {
		y := m.Apply(x)
		var s float32
		for _, v := range y {
			s += v * v
		}
		return s
	}
	y, cache := m.Forward(x)
	dy := make([]float32, len(y))
	for i, v := range y {
		dy[i] = 2 * v
	}
	m.Backward(cache, dy)
	for _, p := range m.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.Grad.Data, num); e > 0.05 {
			t.Fatalf("charcnn grad mismatch: %v", e)
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	r := mathx.NewRNG(6)
	l := NewLSTM(r, 3, 4)
	x := mathx.NewMatrix(3, 5)
	x.FillRandn(r, 1)
	loss := func() float32 {
		h := l.Apply(x, 5)
		var s float32
		for _, v := range h {
			s += v * v
		}
		return s
	}
	h, cache := l.Forward(x, 5)
	dh := make([]float32, len(h))
	for i, v := range h {
		dh[i] = 2 * v
	}
	l.Backward(cache, dh)
	for _, p := range l.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.Grad.Data, num); e > 0.05 {
			t.Fatalf("lstm grad mismatch: %v", e)
		}
	}
}

func TestCharCNNApplyMatchesForward(t *testing.T) {
	r := mathx.NewRNG(7)
	m := NewCharCNN(r, 5, 4, 3, 3)
	x := mathx.NewMatrix(5, 8)
	x.FillRandn(r, 1)
	a := m.Apply(x.Clone())
	f, _ := m.Forward(x.Clone())
	for i := range a {
		if a[i] != f[i] {
			t.Fatalf("Apply and Forward diverge: %v vs %v", a, f)
		}
	}
}

func TestTripletLossValues(t *testing.T) {
	a := []float32{0, 0}
	p := []float32{1, 0} // d(a,p)² = 1
	n := []float32{3, 0} // d(a,n)² = 9
	// Easy triplet with margin 1: 1 - 9 + 1 < 0 -> loss 0, nil grads.
	loss, da, dp, dn := TripletLoss(a, p, n, 1)
	if loss != 0 || da != nil || dp != nil || dn != nil {
		t.Fatalf("easy triplet: loss=%v", loss)
	}
	// Hard triplet: n closer than p.
	loss, da, dp, dn = TripletLoss(a, n, p, 1) // dap=9, dan=1, margin 1 -> 9
	if loss != 9 {
		t.Fatalf("hard triplet loss = %v, want 9", loss)
	}
	if da == nil || dp == nil || dn == nil {
		t.Fatal("active triplet must return grads")
	}
}

func TestTripletLossGradCheck(t *testing.T) {
	r := mathx.NewRNG(8)
	dim := 4
	vecs := make([][]float32, 3)
	for i := range vecs {
		vecs[i] = make([]float32, dim)
		for j := range vecs[i] {
			vecs[i][j] = float32(r.NormFloat64())
		}
	}
	a, p, n := vecs[0], vecs[1], vecs[2]
	loss, da, dp, dn := TripletLoss(a, p, n, 5) // large margin keeps it active
	if loss <= 0 {
		t.Skip("triplet inactive for this draw")
	}
	const eps = 1e-3
	check := func(v []float32, g []float32) {
		for i := range v {
			orig := v[i]
			v[i] = orig + eps
			up, _, _, _ := TripletLoss(a, p, n, 5)
			v[i] = orig - eps
			down, _, _, _ := TripletLoss(a, p, n, 5)
			v[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(float64(g[i]-num)) > 0.01 {
				t.Fatalf("triplet grad mismatch: %v vs %v", g[i], num)
			}
		}
	}
	check(a, da)
	check(p, dp)
	check(n, dn)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = sum (w_i - target_i)^2.
	p := NewParam(1, 5)
	target := []float32{1, -2, 3, 0.5, -0.25}
	opt := NewAdam(0.05, []*Param{p})
	for step := 0; step < 2000; step++ {
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step(1)
	}
	for i := range target {
		if math.Abs(float64(p.W.Data[i]-target[i])) > 1e-2 {
			t.Fatalf("Adam did not converge: %v vs %v", p.W.Data, target)
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := NewParam(1, 3)
	target := []float32{2, -1, 0.5}
	opt := NewSGD(0.1, []*Param{p})
	for step := 0; step < 500; step++ {
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step(1)
	}
	for i := range target {
		if math.Abs(float64(p.W.Data[i]-target[i])) > 1e-3 {
			t.Fatalf("SGD did not converge: %v", p.W.Data)
		}
	}
}

func TestGlobalMaxPool(t *testing.T) {
	x := mathx.NewMatrix(2, 3)
	copy(x.Data, []float32{1, 5, 2, -1, -3, -2})
	out, arg := GlobalMaxPool(x)
	if out[0] != 5 || arg[0] != 1 {
		t.Fatalf("pool row0 = %v@%d", out[0], arg[0])
	}
	if out[1] != -1 || arg[1] != 0 {
		t.Fatalf("pool row1 = %v@%d", out[1], arg[1])
	}
	dx := GlobalMaxPoolBackward([]float32{10, 20}, arg, 2, 3)
	if dx.At(0, 1) != 10 || dx.At(1, 0) != 20 || dx.At(0, 0) != 0 {
		t.Fatalf("pool backward wrong: %v", dx.Data)
	}
}

func TestReLU(t *testing.T) {
	m := mathx.NewMatrix(1, 4)
	copy(m.Data, []float32{-1, 2, 0, 3})
	mask := ReLUInPlace(m)
	if m.Data[0] != 0 || m.Data[1] != 2 {
		t.Fatalf("relu = %v", m.Data)
	}
	dy := mathx.NewMatrix(1, 4)
	copy(dy.Data, []float32{1, 1, 1, 1})
	ReLUBackward(dy, mask)
	if dy.Data[0] != 0 || dy.Data[1] != 1 || dy.Data[2] != 0 || dy.Data[3] != 1 {
		t.Fatalf("relu backward = %v", dy.Data)
	}
}

func TestDropout(t *testing.T) {
	r := mathx.NewRNG(9)
	v := make([]float32, 1000)
	for i := range v {
		v[i] = 1
	}
	mask := Dropout(v, 0.5, r)
	kept := 0
	for i := range v {
		if mask[i] {
			kept++
			if v[i] != 2 { // scaled by 1/(1-0.5)
				t.Fatalf("kept element not rescaled: %v", v[i])
			}
		} else if v[i] != 0 {
			t.Fatal("dropped element not zeroed")
		}
	}
	if kept < 400 || kept > 600 {
		t.Fatalf("dropout kept %d of 1000 at p=0.5", kept)
	}
}

func TestLSTMSeqLenTruncation(t *testing.T) {
	r := mathx.NewRNG(10)
	l := NewLSTM(r, 2, 3)
	x := mathx.NewMatrix(2, 6)
	x.FillRandn(r, 1)
	h3 := l.Apply(x, 3)
	// Zero out columns 3..5; running full length over the zero-padded tail
	// differs from stopping at 3, so verify truncation actually stops.
	full := l.Apply(x, 6)
	same := true
	for i := range h3 {
		if h3[i] != full[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seqLen truncation appears to be ignored")
	}
}

func TestAdamStepClearsGrads(t *testing.T) {
	p := NewParam(1, 2)
	p.Grad.Data[0] = 1
	NewAdam(0.01, []*Param{p}).Step(1)
	if p.Grad.Data[0] != 0 {
		t.Fatal("Step must clear gradients")
	}
}

func TestContrastiveLossValues(t *testing.T) {
	a := []float32{0, 0}
	p := []float32{1, 0} // dap = 1
	n := []float32{3, 0} // dan = 9
	// margin 4: hinge inactive -> loss = dap = 1.
	loss, da, dp, dn := ContrastiveLoss(a, p, n, 4)
	if loss != 1 {
		t.Fatalf("loss = %v, want 1", loss)
	}
	if da == nil || dp == nil || dn == nil {
		t.Fatal("active contrastive loss must return grads")
	}
	if dn[0] != 0 {
		t.Fatal("inactive hinge should not push the negative")
	}
	// margin 16: hinge active -> loss = 1 + (16-9) = 8.
	loss, _, _, dn = ContrastiveLoss(a, p, n, 16)
	if loss != 8 {
		t.Fatalf("loss = %v, want 8", loss)
	}
	if dn[0] == 0 {
		t.Fatal("active hinge must push the negative")
	}
	// Identical pair, far negative: zero loss, nil grads.
	loss, da, _, _ = ContrastiveLoss(a, a, n, 4)
	if loss != 0 || da != nil {
		t.Fatalf("zero-loss case returned %v", loss)
	}
}

func TestContrastiveLossGradCheck(t *testing.T) {
	r := mathx.NewRNG(21)
	dim := 4
	vecs := make([][]float32, 3)
	for i := range vecs {
		vecs[i] = make([]float32, dim)
		for j := range vecs[i] {
			vecs[i][j] = float32(r.NormFloat64())
		}
	}
	a, p, n := vecs[0], vecs[1], vecs[2]
	loss, da, dp, dn := ContrastiveLoss(a, p, n, 30) // big margin keeps hinge active
	if loss <= 0 {
		t.Skip("inactive draw")
	}
	const eps = 1e-3
	check := func(v []float32, g []float32) {
		for i := range v {
			orig := v[i]
			v[i] = orig + eps
			up, _, _, _ := ContrastiveLoss(a, p, n, 30)
			v[i] = orig - eps
			down, _, _, _ := ContrastiveLoss(a, p, n, 30)
			v[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(float64(g[i]-num)) > 0.01 {
				t.Fatalf("contrastive grad mismatch: %v vs %v", g[i], num)
			}
		}
	}
	check(a, da)
	check(p, dp)
	check(n, dn)
}
