// Package nn is a from-scratch neural-network substrate standing in for the
// PyTorch stack the paper trained EmbLookup with. It provides exactly the
// operators Section III-B needs — 1-D convolutions over one-hot character
// matrices, max-pooling, linear layers with ReLU, an LSTM (for the Table VII
// baseline), the Adam optimizer, and the triplet loss — implemented with
// explicit forward/backward passes on float32 data.
//
// Training is single-goroutine per model (gradients accumulate directly into
// the parameters); inference paths are pure functions over read-only
// parameters and are safe for concurrent use, which is what the parallel
// "GPU-mode" batch lookup relies on.
package nn

import (
	"math"

	"emblookup/internal/mathx"
)

// Param is one learnable tensor with its gradient accumulator and Adam
// moment estimates.
type Param struct {
	W    *mathx.Matrix
	Grad *mathx.Matrix
	m, v *mathx.Matrix // Adam first/second moments, lazily allocated
}

// NewParam allocates a zeroed parameter of the given shape.
func NewParam(rows, cols int) *Param {
	return &Param{
		W:    mathx.NewMatrix(rows, cols),
		Grad: mathx.NewMatrix(rows, cols),
	}
}

// InitKaiming fills the parameter with Kaiming-normal values for fanIn
// inputs — the standard initialization for ReLU networks.
func (p *Param) InitKaiming(r *mathx.RNG, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	p.W.FillRandn(r, std)
}

// InitXavier fills the parameter with Xavier/Glorot-normal values.
func (p *Param) InitXavier(r *mathx.RNG, fanIn, fanOut int) {
	std := math.Sqrt(2.0 / float64(fanIn+fanOut))
	p.W.FillRandn(r, std)
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	p.Grad.Zero()
}

// NumValues returns the number of scalar weights in p.
func (p *Param) NumValues() int { return len(p.W.Data) }

// Adam implements the Adam optimizer (Kingma & Ba) over a set of
// parameters. The paper trains EmbLookup with Adam and batch size 128.
type Adam struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32

	t      int
	params []*Param
}

// NewAdam returns an optimizer with the standard defaults (lr as given,
// β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float32, params []*Param) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
}

// Step applies one Adam update using the accumulated gradients, then clears
// them. scale divides the gradients first (use 1/batchSize for mean loss).
func (a *Adam) Step(scale float32) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range a.params {
		if p.m == nil {
			p.m = mathx.NewMatrix(p.W.Rows, p.W.Cols)
			p.v = mathx.NewMatrix(p.W.Rows, p.W.Cols)
		}
		for i, g := range p.Grad.Data {
			g *= scale
			if a.WeightDecay > 0 {
				g += a.WeightDecay * p.W.Data[i]
			}
			p.m.Data[i] = a.Beta1*p.m.Data[i] + (1-a.Beta1)*g
			p.v.Data[i] = a.Beta2*p.v.Data[i] + (1-a.Beta2)*g*g
			mHat := p.m.Data[i] / c1
			vHat := p.v.Data[i] / c2
			p.W.Data[i] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// SGD is a plain stochastic-gradient-descent optimizer, provided for the
// optimizer ablation.
type SGD struct {
	LR     float32
	params []*Param
}

// NewSGD returns a plain SGD optimizer.
func NewSGD(lr float32, params []*Param) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies one SGD update with the gradient scaled by scale, then clears
// the gradients.
func (s *SGD) Step(scale float32) {
	for _, p := range s.params {
		for i, g := range p.Grad.Data {
			p.W.Data[i] -= s.LR * g * scale
		}
		p.ZeroGrad()
	}
}

// Optimizer is satisfied by Adam and SGD.
type Optimizer interface {
	Step(scale float32)
}
