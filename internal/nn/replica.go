package nn

import "emblookup/internal/mathx"

// Replicas enable data-parallel training: a replica layer shares the weight
// matrices of its source (reads are safe while the optimizer is idle) but
// owns a private gradient buffer, so several goroutines can run
// forward/backward on shards of a batch without synchronization. After the
// shards finish, MergeGrads folds the replica gradients into the master
// parameters and the optimizer steps as usual.

// replicaParam derives a Param sharing W but owning a fresh Grad.
func replicaParam(p *Param) *Param {
	return &Param{W: p.W, Grad: mathx.NewMatrix(p.W.Rows, p.W.Cols)}
}

// MergeGrads adds each replica parameter's gradient into the matching
// master parameter and zeroes the replica gradient. The two slices must
// align (same order, same shapes).
func MergeGrads(master, replica []*Param) {
	for i, mp := range master {
		rp := replica[i]
		for j, g := range rp.Grad.Data {
			if g != 0 {
				mp.Grad.Data[j] += g
			}
		}
		rp.ZeroGrad()
	}
}

// Replica returns a conv layer sharing c's weights with private gradients.
func (c *Conv1D) Replica() *Conv1D {
	return &Conv1D{In: c.In, Out: c.Out, K: c.K,
		Weight: replicaParam(c.Weight), Bias: replicaParam(c.Bias)}
}

// Replica returns a linear layer sharing l's weights with private
// gradients.
func (l *Linear) Replica() *Linear {
	return &Linear{In: l.In, Out: l.Out,
		Weight: replicaParam(l.Weight), Bias: replicaParam(l.Bias)}
}

// Replica returns an MLP sharing m's weights with private gradients.
func (m *MLP) Replica() *MLP {
	return &MLP{L1: m.L1.Replica(), L2: m.L2.Replica()}
}

// Replica returns a CharCNN sharing m's weights with private gradients.
func (m *CharCNN) Replica() *CharCNN {
	out := &CharCNN{Convs: make([]*Conv1D, len(m.Convs))}
	for i, c := range m.Convs {
		out.Convs[i] = c.Replica()
	}
	return out
}

// Replica returns an LSTM sharing l's weights with private gradients.
func (l *LSTM) Replica() *LSTM {
	return &LSTM{In: l.In, Hidden: l.Hidden,
		Wx: replicaParam(l.Wx), Wh: replicaParam(l.Wh), B: replicaParam(l.B)}
}
