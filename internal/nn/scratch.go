package nn

import (
	"sync"

	"emblookup/internal/mathx"
)

// Scratch is the reusable working memory of one inference pass through the
// CharCNN and MLP: two ping-pong activation matrices (each conv layer reads
// one and writes the other), the pooled CNN output, and the MLP's hidden
// and output vectors. All buffers grow on demand and are retained between
// calls, so a worker that owns a Scratch runs the whole forward pass
// without allocating. The zero value is ready to use. A Scratch must not be
// used concurrently; slices returned by *Into methods alias it and are only
// valid until the next call with the same Scratch.
type Scratch struct {
	h      [2]mathx.Matrix
	pooled []float32
	hidden []float32
	out    []float32
}

// mat shapes ping-pong slot i to rows×cols, reusing its backing array.
func (s *Scratch) mat(i, rows, cols int) *mathx.Matrix {
	m := &s.h[i]
	m.Data = mathx.Resize(m.Data, rows*cols)
	m.Rows, m.Cols = rows, cols
	return m
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Apply is the inference forward pass (concurrent-safe). The result is
// freshly allocated; hot paths use ApplyInto with a worker-owned Scratch.
func (m *CharCNN) Apply(x *mathx.Matrix) []float32 {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return append([]float32(nil), m.ApplyInto(x, s)...)
}

// ApplyInto is Apply with all intermediate activations taken from s. The
// returned slice is owned by s.
func (m *CharCNN) ApplyInto(x *mathx.Matrix, s *Scratch) []float32 {
	h := s.mat(0, m.Convs[0].Out, x.Cols)
	m.Convs[0].ApplyInto(x, h)
	reluMat(h)
	return m.applyRest(h, s)
}

// ApplyIdx is the CharCNN inference pass over sparse one-hot indexes. The
// result is freshly allocated; hot paths use ApplyIdxInto.
func (m *CharCNN) ApplyIdx(idx []int) []float32 {
	s := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(s)
	return append([]float32(nil), m.ApplyIdxInto(idx, s)...)
}

// ApplyIdxInto is ApplyIdx with all intermediate activations taken from s.
// The returned slice is owned by s.
func (m *CharCNN) ApplyIdxInto(idx []int, s *Scratch) []float32 {
	h := s.mat(0, m.Convs[0].Out, len(idx))
	m.Convs[0].ApplySparseOneHotInto(idx, h)
	reluMat(h)
	return m.applyRest(h, s)
}

// applyRest runs the remaining conv layers over the first-layer activations
// in h (ping-pong slot 0) and pools.
func (m *CharCNN) applyRest(h *mathx.Matrix, s *Scratch) []float32 {
	slot := 1
	for _, c := range m.Convs[1:] {
		y := s.mat(slot, c.Out, h.Cols)
		c.ApplyInto(h, y)
		reluMat(y)
		h = y
		slot ^= 1
	}
	s.pooled = mathx.Resize(s.pooled, h.Rows)
	GlobalMaxPoolInto(h, s.pooled)
	return s.pooled
}

func reluMat(m *mathx.Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// ApplyInto is the MLP inference pass with the hidden and output vectors
// taken from s. The returned slice is owned by s.
func (m *MLP) ApplyInto(x []float32, s *Scratch) []float32 {
	s.hidden = mathx.Resize(s.hidden, m.L1.Out)
	m.L1.ApplyInto(x, s.hidden)
	for i, v := range s.hidden {
		if v < 0 {
			s.hidden[i] = 0
		}
	}
	s.out = mathx.Resize(s.out, m.L2.Out)
	m.L2.ApplyInto(s.hidden, s.out)
	return s.out
}
