package nn

import (
	"math"
	"testing"

	"emblookup/internal/mathx"
)

// onehotFromIdx builds the dense matrix equivalent of a sparse index
// sequence.
func onehotFromIdx(idx []int, alphabet int) *mathx.Matrix {
	m := mathx.NewMatrix(alphabet, len(idx))
	for t, ch := range idx {
		if ch >= 0 {
			m.Set(ch, t, 1)
		}
	}
	return m
}

func TestSparseOneHotMatchesDense(t *testing.T) {
	r := mathx.NewRNG(31)
	c := NewConv1D(r, 6, 4, 3)
	idx := []int{2, 0, 5, -1, 3, 1}
	dense := c.Apply(onehotFromIdx(idx, 6))
	sparse := c.ApplySparseOneHot(idx)
	if dense.Rows != sparse.Rows || dense.Cols != sparse.Cols {
		t.Fatal("shape mismatch")
	}
	for i := range dense.Data {
		if dense.Data[i] != sparse.Data[i] {
			t.Fatalf("sparse/dense diverge at %d: %v vs %v", i, sparse.Data[i], dense.Data[i])
		}
	}
}

func TestCharCNNIdxMatchesDense(t *testing.T) {
	r := mathx.NewRNG(32)
	m := NewCharCNN(r, 6, 4, 3, 3)
	idx := []int{1, 4, 4, 0, -1, 2, 3}
	dense := m.Apply(onehotFromIdx(idx, 6))
	sparse := m.ApplyIdx(idx)
	for i := range dense {
		// Accumulation order differs between the two paths, so allow
		// float32 rounding slack.
		if math.Abs(float64(dense[i]-sparse[i])) > 1e-5 {
			t.Fatalf("ApplyIdx diverges from dense Apply: %v vs %v", sparse, dense)
		}
	}
	// Training path agrees with inference path.
	fwd, _ := m.ForwardIdx(idx)
	for i := range fwd {
		if fwd[i] != sparse[i] {
			t.Fatal("ForwardIdx diverges from ApplyIdx")
		}
	}
}

func TestSparseBackwardGradCheck(t *testing.T) {
	r := mathx.NewRNG(33)
	m := NewCharCNN(r, 5, 3, 3, 2)
	idx := []int{0, 3, 2, 4, 1}
	loss := func() float32 {
		y := m.ApplyIdx(idx)
		var s float32
		for _, v := range y {
			s += v * v
		}
		return s
	}
	y, cache := m.ForwardIdx(idx)
	dy := make([]float32, len(y))
	for i, v := range y {
		dy[i] = 2 * v
	}
	m.BackwardIdx(cache, dy)
	for _, p := range m.Params() {
		num := numericalGrad(p, loss)
		if e := maxRelErr(p.Grad.Data, num); e > 0.05 {
			t.Fatalf("sparse grad mismatch: %v", e)
		}
	}
}

func TestReplicaSharesWeightsOwnsGrads(t *testing.T) {
	r := mathx.NewRNG(34)
	master := NewCharCNN(r, 4, 3, 3, 2)
	rep := master.Replica()

	// Same forward output (shared weights).
	idx := []int{1, 2, 0, 3}
	a := master.ApplyIdx(idx)
	b := rep.ApplyIdx(idx)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replica forward differs")
		}
	}

	// Backward on the replica must not touch master grads.
	y, cache := rep.ForwardIdx(idx)
	dy := make([]float32, len(y))
	for i := range dy {
		dy[i] = 1
	}
	rep.BackwardIdx(cache, dy)
	for _, p := range master.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("replica backward leaked into master grads")
			}
		}
	}
	// MergeGrads moves them over and clears the replica.
	MergeGrads(master.Params(), rep.Params())
	total := float32(0)
	for _, p := range master.Params() {
		for _, g := range p.Grad.Data {
			total += float32(math.Abs(float64(g)))
		}
	}
	if total == 0 {
		t.Fatal("MergeGrads moved nothing")
	}
	for _, p := range rep.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("replica grads not cleared after merge")
			}
		}
	}
}

func TestMergeGradsEquivalentToSequential(t *testing.T) {
	// Two samples processed on two replicas must produce the same merged
	// gradient as both processed on the master.
	r1 := mathx.NewRNG(35)
	master := NewMLP(r1, 3, 5, 2)
	repA := master.Replica()
	repB := master.Replica()

	xA := []float32{1, -0.5, 2}
	xB := []float32{-1, 0.25, 0.5}
	dy := []float32{1, -1}

	run := func(m *MLP, x []float32) {
		_, cache := m.Forward(x)
		m.Backward(cache, dy)
	}
	run(repA, xA)
	run(repB, xB)
	MergeGrads(master.Params(), repA.Params())
	MergeGrads(master.Params(), repB.Params())
	merged := make([][]float32, len(master.Params()))
	for i, p := range master.Params() {
		merged[i] = append([]float32(nil), p.Grad.Data...)
		p.ZeroGrad()
	}

	run(master, xA)
	run(master, xB)
	for i, p := range master.Params() {
		for j := range p.Grad.Data {
			if d := p.Grad.Data[j] - merged[i][j]; d > 1e-6 || d < -1e-6 {
				t.Fatalf("merged grads differ from sequential at param %d[%d]", i, j)
			}
		}
	}
}

func TestAdamWeightDecay(t *testing.T) {
	p := NewParam(1, 1)
	p.W.Data[0] = 10
	opt := NewAdam(0.1, []*Param{p})
	opt.WeightDecay = 0.1
	// Zero task gradient: only decay should shrink the weight.
	for i := 0; i < 50; i++ {
		opt.Step(1)
	}
	if p.W.Data[0] >= 10 {
		t.Fatalf("weight decay had no effect: %v", p.W.Data[0])
	}
}
