package obs

import (
	"testing"
	"time"
)

// BenchmarkMetricsOverhead measures the per-record cost of each primitive —
// the numbers the overhead budget in DESIGN.md §10 quotes. Run by
// scripts/verify.sh; every sub-benchmark must report 0 allocs/op.
func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		c := New().Counter("bench_total")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-parallel", func(b *testing.B) {
		c := New().Counter("bench_total")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram", func(b *testing.B) {
		h := New().Histogram("bench_seconds")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveVal(int64(i))
		}
	})
	b.Run("histogram-since", func(b *testing.B) {
		h := New().Histogram("bench_seconds")
		t0 := time.Now()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Since(t0)
		}
	})
	b.Run("histogram-parallel", func(b *testing.B) {
		h := New().Histogram("bench_seconds")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var v int64
			for pb.Next() {
				v++
				h.ObserveVal(v)
			}
		})
	})
	b.Run("disabled", func(b *testing.B) {
		r := New()
		c := r.Counter("bench_total")
		h := r.Histogram("bench_seconds")
		r.SetEnabled(false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.ObserveVal(int64(i))
		}
	})
	b.Run("nil-recorders", func(b *testing.B) {
		var c *Counter
		var h *Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.ObserveVal(int64(i))
		}
	})
	b.Run("nil-trace-span", func(b *testing.B) {
		var tr *Trace
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("stage")
			sp.End()
		}
	})
}
