package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (HDR-style): values below 2^histSubBits get
// an exact bucket each; every power-of-two octave above that is split into
// 2^histSubBits equal sub-buckets. With 3 sub-bucket bits a bucket is at
// most 12.5% wide relative to its lower bound, so any quantile read off the
// bucket midpoints is within ~6% of the exact sorted-sample quantile — no
// sampling, no locks, no per-observation allocation, and a fixed ~4KB
// footprint covering 1ns to ~100s of nanosecond-valued observations (or
// any other int64-valued measurement, e.g. batch sizes).
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets is bucketIndex(max int64) + 1.
	histBuckets = (63-histSubBits)*histSub + histSub
)

// bucketIndex maps a non-negative value to its bucket. Negative values
// clamp to bucket 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	h := bits.Len64(uint64(v)) - 1 // v ∈ [2^h, 2^(h+1)), h ≥ histSubBits
	return (h-histSubBits)<<histSubBits + int((v>>(uint(h)-histSubBits))&(histSub-1)) + histSub
}

// bucketBounds returns the [lower, upper) value range of bucket i.
func bucketBounds(i int) (lower, upper int64) {
	if i < histSub {
		return int64(i), int64(i) + 1
	}
	j := i - histSub
	h := uint(j>>histSubBits) + histSubBits
	sub := int64(j & (histSub - 1))
	width := int64(1) << (h - histSubBits)
	lower = int64(1)<<h + sub*width
	upper = lower + width
	if upper < lower { // top bucket: lower+width overflows, saturate
		upper = math.MaxInt64
	}
	return lower, upper
}

// Histogram accumulates an int64-valued distribution in log-spaced atomic
// buckets. Observe costs two atomic adds behind an enabled check; quantiles
// are computed from a bucket snapshot at read time. A nil Histogram is a
// valid no-op recorder.
type Histogram struct {
	off     *atomic.Bool
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram builds a standalone histogram not attached to any registry —
// always enabled, for instance-local measurement. Registry.Histogram is the
// normal constructor.
func NewHistogram() *Histogram {
	return &Histogram{off: new(atomic.Bool)}
}

// Observe records one duration (stored as nanoseconds).
func (h *Histogram) Observe(d time.Duration) { h.ObserveVal(int64(d)) }

// Since records the time elapsed from t0 — the one-liner for stage timing:
// defer-free, two clock reads per stage.
func (h *Histogram) Since(t0 time.Time) {
	if h == nil || h.off.Load() {
		return
	}
	h.ObserveVal(int64(time.Since(t0)))
}

// ObserveVal records one raw value (a batch size, a byte count).
func (h *Histogram) ObserveVal(v int64) {
	if h == nil || h.off.Load() {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// HistSnapshot is a point-in-time copy of a histogram's buckets, from which
// quantiles and the Prometheus exposition are computed consistently.
type HistSnapshot struct {
	Counts [histBuckets]int64
	Sum    int64
	Total  int64
}

// Snapshot copies the bucket counts. Concurrent observations may land
// between bucket reads; each observation is still counted exactly once
// across successive snapshots.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	return s
}

// Quantile returns the estimated p-quantile (p in [0,1]) of the recorded
// values: the midpoint of the bucket holding the rank-p observation, which
// is within the bucket's ≤12.5% relative width of the exact value. Returns
// 0 when nothing was observed.
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// The rank-th observation in ascending order, 1-based.
	rank := int64(p*float64(s.Total-1)) + 1
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			lower, upper := bucketBounds(i)
			return lower + (upper-lower)/2
		}
	}
	return 0
}

// Quantile is Snapshot().Quantile for callers needing a single value.
func (h *Histogram) Quantile(p float64) int64 {
	return h.Snapshot().Quantile(p)
}

// LatencySummary is the JSON shape latency histograms surface under /stats:
// observation count plus p50/p95/p99 and mean in microseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"meanUs"`
	P50Us  float64 `json:"p50Us"`
	P95Us  float64 `json:"p95Us"`
	P99Us  float64 `json:"p99Us"`
}

// Summary computes the latency summary of a nanosecond-valued histogram.
func (h *Histogram) Summary() LatencySummary {
	s := h.Snapshot()
	out := LatencySummary{Count: s.Total}
	if s.Total == 0 {
		return out
	}
	out.MeanUs = float64(s.Sum) / float64(s.Total) / 1e3
	out.P50Us = float64(s.Quantile(0.50)) / 1e3
	out.P95Us = float64(s.Quantile(0.95)) / 1e3
	out.P99Us = float64(s.Quantile(0.99)) / 1e3
	return out
}
