// Package obs is the observability substrate of the serving stack: a
// metrics registry whose recording primitives are cheap enough for the
// allocation-free lookup hot path (DESIGN.md §6), per-request tracing that
// decomposes a lookup into its pipeline stages and follows it across
// cluster hops, Prometheus text exposition, and a ring-buffer slow-query
// log. Every serving layer (internal/core, serve, server, cluster, remote)
// records into it; /metrics and /debug/slowlog expose it (DESIGN.md §10).
//
// Three recording primitives, all safe for concurrent use and all
// allocation-free on the record path:
//
//   - Counter: a monotone count sharded across padded cache lines, so
//     concurrent recorders don't serialize on one hot word
//   - Gauge: a last-written float64 (set, not accumulated)
//   - Histogram: log-bucketed atomic bucket counts yielding p50/p95/p99
//     without sampling or locks (histogram.go)
//
// Metrics are named in Prometheus style, constant labels rendered into the
// name at registration time (`Labels("x_total", "stage", "embed")` →
// `x_total{stage="embed"}`) so the hot path never formats strings.
// Registration is get-or-create: two callers asking for the same name share
// one metric, which is exactly the Prometheus process-wide semantics.
// Recording costs ~ns (an atomic add behind an enabled check); a disabled
// registry (SetEnabled(false), `emblookup serve -metrics=false`) reduces
// every record to a single atomic load.
package obs

import (
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterShards spreads concurrent Add calls across this many padded
// slots — a power of two so the shard pick is a mask, not a modulo.
const counterShards = 8

// paddedInt64 occupies a full cache line so neighboring shards don't
// false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing count. Add picks a shard with the
// runtime's per-thread cheap RNG (wait-free, no allocation), so 16
// goroutines hammering one counter touch 8 independent cache lines instead
// of serializing on one. A nil Counter is a valid no-op recorder.
type Counter struct {
	off    *atomic.Bool
	shards [counterShards]paddedInt64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil || c.off.Load() {
		return
	}
	c.shards[rand.Uint32()&(counterShards-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the summed count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a last-written value (queue depth, healthy-node count). A nil
// Gauge is a valid no-op recorder.
type Gauge struct {
	off *atomic.Bool
	v   atomic.Uint64 // float64 bits
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || g.off.Load() {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// metricKind discriminates what one registered name holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// entry is one registered metric: exactly one of the typed fields is set.
type entry struct {
	family string // name with the {label} suffix stripped
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	f      func() float64
}

// Registry holds named metrics and renders them in Prometheus text format
// (prometheus.go). Registration takes a lock; recording through the
// returned handles never does. The zero value is not usable — construct
// with New or use the process-wide Default.
type Registry struct {
	off     atomic.Bool
	mu      sync.Mutex
	entries map[string]*entry
}

// New builds an empty, enabled registry.
func New() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

var defaultRegistry = New()

// Default returns the process-wide registry: the one the core lookup
// stages, the CLI serving modes, and every component that is not handed an
// explicit registry record into.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns recording on or off for every metric created from this
// registry. Disabled metrics keep their accumulated values; they just stop
// moving.
func (r *Registry) SetEnabled(on bool) { r.off.Store(!on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return !r.off.Load() }

// family strips the constant-label suffix from a full metric name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// get returns the entry for name, creating it with mk on first use and
// panicking when the name is already registered as a different kind —
// always a programming error, never a runtime condition.
func (r *Registry) get(name string, kind metricKind, mk func(*entry)) *entry {
	if name == "" || family(name) == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic("obs: metric " + name + " re-registered as a different kind")
		}
		return e
	}
	e := &entry{family: family(name), kind: kind}
	mk(e)
	r.entries[name] = e
	return e
}

// Counter returns the counter registered under name, creating it on first
// use. The name may carry constant labels: `hits_total{cache="mention"}`.
func (r *Registry) Counter(name string) *Counter {
	return r.get(name, kindCounter, func(e *entry) {
		e.c = &Counter{off: &r.off}
	}).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.get(name, kindGauge, func(e *entry) {
		e.g = &Gauge{off: &r.off}
	}).g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Names ending in `_seconds` are exposed with nanosecond
// observations scaled to seconds; anything else is exposed raw (sizes,
// counts).
func (r *Registry) Histogram(name string) *Histogram {
	return r.get(name, kindHistogram, func(e *entry) {
		e.h = &Histogram{off: &r.off}
	}).h
}

// CounterFunc registers a counter whose value is pulled from f at
// exposition time — the bridge for components that already keep their own
// exact instance-local counters (the mention cache, the coalescer).
// Re-registering the same name swaps in the new function: the latest
// instance wins, matching the one-serving-stack-per-process deployment.
func (r *Registry) CounterFunc(name string, f func() float64) {
	r.registerFunc(name, kindCounterFunc, f)
}

// GaugeFunc registers a gauge pulled from f at exposition time.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.registerFunc(name, kindGaugeFunc, f)
}

func (r *Registry) registerFunc(name string, kind metricKind, f func() float64) {
	if name == "" || family(name) == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic("obs: metric " + name + " re-registered as a different kind")
		}
		e.f = f
		return
	}
	r.entries[name] = &entry{family: family(name), kind: kind, f: f}
}

// snapshot returns the registered names in sorted order plus their entries,
// under the lock — the exposition path.
func (r *Registry) snapshot() ([]string, map[string]*entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	entries := make(map[string]*entry, len(r.entries))
	for n, e := range r.entries {
		names = append(names, n)
		entries[n] = e
	}
	sort.Strings(names)
	return names, entries
}

// Labels renders a family name plus constant key/value label pairs into the
// full metric name: Labels("x_total", "stage", "embed") →
// `x_total{stage="embed"}`. Call it at registration time, never on a hot
// path.
func Labels(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	if len(kv)%2 != 0 {
		panic("obs: Labels needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}
