package obs

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterExactUnderConcurrency(t *testing.T) {
	r := New()
	c := r.Counter("test_total")
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterGetOrCreateShares(t *testing.T) {
	r := New()
	a := r.Counter("shared_total")
	b := r.Counter("shared_total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", b.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Histogram("x_total")
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := New()
	c := r.Counter("c_total")
	h := r.Histogram("h_seconds")
	g := r.Gauge("g")
	r.SetEnabled(false)
	c.Add(5)
	h.Observe(time.Millisecond)
	g.Set(7)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Fatalf("disabled registry recorded: c=%d h=%d g=%v", c.Value(), h.Count(), g.Value())
	}
	r.SetEnabled(true)
	c.Add(5)
	if c.Value() != 5 {
		t.Fatalf("re-enabled counter = %d, want 5", c.Value())
	}
}

func TestNilRecordersAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(time.Second)
	h.ObserveVal(3)
	h.Since(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil recorders must read as zero")
	}
}

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 99, 1<<63 - 1} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		// The saturated top bucket is closed at MaxInt64.
		if v < lo || (v >= hi && hi != 1<<63-1) {
			t.Fatalf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
		prev = i
	}
}

// TestHistogramQuantileAccuracy checks the log-bucketed quantile estimate
// against an exact sort on random workloads: the bucket midpoint must land
// within the bucket's ≤12.5% relative width of the true order statistic.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	workloads := map[string]func() int64{
		// Uniform micro-to-milli latencies.
		"uniform": func() int64 { return 1_000 + rng.Int64N(5_000_000) },
		// Log-normal-ish: the shape real serving latency takes.
		"lognormal": func() int64 {
			v := 50_000.0
			for i := 0; i < 4; i++ {
				v *= 0.5 + rng.Float64()
			}
			return int64(v) + 1
		},
		// Bimodal: cache hits vs misses.
		"bimodal": func() int64 {
			if rng.IntN(2) == 0 {
				return 200 + rng.Int64N(400)
			}
			return 80_000 + rng.Int64N(40_000)
		},
	}
	for name, gen := range workloads {
		h := NewHistogram()
		const n = 20000
		exact := make([]int64, n)
		for i := range exact {
			v := gen()
			exact[i] = v
			h.ObserveVal(v)
		}
		sort.Slice(exact, func(a, b int) bool { return exact[a] < exact[b] })
		snap := h.Snapshot()
		if snap.Total != n {
			t.Fatalf("%s: total = %d, want %d", name, snap.Total, n)
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			got := snap.Quantile(p)
			want := exact[int(p*float64(n-1))]
			relErr := float64(got-want) / float64(want)
			if relErr < 0 {
				relErr = -relErr
			}
			if relErr > 0.125 {
				t.Errorf("%s p%g: estimate %d vs exact %d (rel err %.3f)", name, p*100, got, want, relErr)
			}
		}
	}
}

// TestRegistryHammer drives one registry from 16 goroutines mixing every
// recording primitive with concurrent expositions — the -race test the
// verify gate runs (scripts/verify.sh).
func TestRegistryHammer(t *testing.T) {
	r := New()
	c := r.Counter("hammer_total")
	h := r.Histogram("hammer_seconds")
	g := r.Gauge("hammer_gauge")
	r.CounterFunc("hammer_func_total", func() float64 { return float64(c.Value()) })
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.ObserveVal(int64(i + 1))
				g.Set(float64(i))
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != goroutines*perG {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter(Labels("kg_lookups_total", "kind", "pq")).Add(7)
	r.Counter(Labels("kg_lookups_total", "kind", "flat")).Add(3)
	r.Gauge("kg_nodes").Set(2)
	r.GaugeFunc("kg_entries", func() float64 { return 42 })
	h := r.Histogram("kg_lookup_seconds")
	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	h.Observe(50 * time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE kg_lookups_total counter\n",
		`kg_lookups_total{kind="pq"} 7` + "\n",
		`kg_lookups_total{kind="flat"} 3` + "\n",
		"# TYPE kg_nodes gauge\n",
		"kg_nodes 2\n",
		"kg_entries 42\n",
		"# TYPE kg_lookup_seconds histogram\n",
		`kg_lookup_seconds_bucket{le="+Inf"} 3` + "\n",
		"kg_lookup_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE kg_lookups_total") != 1 {
		t.Error("TYPE line emitted more than once per family")
	}
	// Family samples must be contiguous under their TYPE line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	seenDone := map[string]bool{}
	last := ""
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# TYPE ") {
			fam := strings.Fields(ln)[2]
			if seenDone[fam] {
				t.Fatalf("family %s split across the exposition:\n%s", fam, out)
			}
			if last != "" {
				seenDone[last] = true
			}
			last = fam
		}
	}
	// Histogram buckets must be cumulative and end at the total.
	var cum []int
	for _, ln := range lines {
		if strings.HasPrefix(ln, "kg_lookup_seconds_bucket") {
			var v int
			if _, err := fmt.Sscanf(ln[strings.LastIndexByte(ln, ' ')+1:], "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", ln, err)
			}
			cum = append(cum, v)
		}
	}
	if !sort.IntsAreSorted(cum) || cum[len(cum)-1] != 3 {
		t.Fatalf("buckets not cumulative to total: %v", cum)
	}
}

func TestSecondsScaling(t *testing.T) {
	r := New()
	h := r.Histogram("scaled_seconds")
	h.Observe(1500 * time.Millisecond)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "scaled_seconds_sum 1.5\n") {
		t.Fatalf("duration sum not scaled to seconds:\n%s", sb.String())
	}
	r2 := New()
	raw := r2.Histogram("batch_size")
	raw.ObserveVal(32)
	sb.Reset()
	r2.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "batch_size_sum 32\n") {
		t.Fatalf("raw histogram unexpectedly scaled:\n%s", sb.String())
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	if s := h.Summary(); s.Count != 0 || s.P99Us != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Us < 400 || s.P50Us > 600 {
		t.Fatalf("p50 = %vus, want ~500", s.P50Us)
	}
	if s.P99Us < 850 || s.P99Us > 1150 {
		t.Fatalf("p99 = %vus, want ~990", s.P99Us)
	}
}

func TestLabels(t *testing.T) {
	if got := Labels("f_total"); got != "f_total" {
		t.Fatal(got)
	}
	if got := Labels("f_total", "a", "1", "b", "2"); got != `f_total{a="1",b="2"}` {
		t.Fatal(got)
	}
}
