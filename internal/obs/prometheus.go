package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` line per family, counters
// and gauges as single samples, histograms as cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Histograms whose family ends in
// `_seconds` hold nanosecond observations and are scaled to seconds on the
// way out; other histograms (sizes, counts) are exposed raw. Empty buckets
// are skipped — the cumulative series stays valid and the output stays
// readable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, entries := r.snapshot()
	// Samples of one family must stay contiguous under their TYPE line, so
	// order by family before full name (`f` sorts after `f_x` but before
	// `f{...}` byte-wise, which would otherwise split a family).
	sort.SliceStable(names, func(a, b int) bool {
		fa, fb := entries[names[a]].family, entries[names[b]].family
		if fa != fb {
			return fa < fb
		}
		return names[a] < names[b]
	})
	bw := bufio.NewWriter(w)
	typed := make(map[string]bool, len(names))
	for _, name := range names {
		e := entries[name]
		if !typed[e.family] {
			typed[e.family] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.family, promType(e.kind))
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", name, e.c.Value())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", name, formatFloat(e.f()))
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", name, formatFloat(e.g.Value()))
		case kindHistogram:
			writeHistogram(bw, name, e)
		}
	}
	return bw.Flush()
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// formatFloat renders a sample value the way Prometheus expects: integral
// values without an exponent, everything else in compact scientific form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// seriesName splices extra labels into a full metric name:
// seriesName(`x{a="b"}`, "_bucket", `le="0.1"`) → `x_bucket{a="b",le="0.1"}`.
func seriesName(name, suffix, extraLabel string) string {
	fam := name
	labels := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		fam = name[:i]
		labels = name[i+1 : len(name)-1]
	}
	switch {
	case labels == "" && extraLabel == "":
		return fam + suffix
	case labels == "":
		return fam + suffix + "{" + extraLabel + "}"
	case extraLabel == "":
		return fam + suffix + "{" + labels + "}"
	default:
		return fam + suffix + "{" + labels + "," + extraLabel + "}"
	}
}

func writeHistogram(bw *bufio.Writer, name string, e *entry) {
	s := e.h.Snapshot()
	// Nanosecond-valued duration histograms expose second-valued buckets.
	scale := 1.0
	if strings.HasSuffix(e.family, "_seconds") {
		scale = 1e-9
	}
	var cum int64
	for i := range s.Counts {
		if s.Counts[i] == 0 {
			continue
		}
		cum += s.Counts[i]
		_, upper := bucketBounds(i)
		le := fmt.Sprintf(`le="%g"`, float64(upper)*scale)
		fmt.Fprintf(bw, "%s %d\n", seriesName(name, "_bucket", le), cum)
	}
	fmt.Fprintf(bw, "%s %d\n", seriesName(name, "_bucket", `le="+Inf"`), s.Total)
	fmt.Fprintf(bw, "%s %s\n", seriesName(name, "_sum", ""), formatFloat(float64(s.Sum)*scale))
	fmt.Fprintf(bw, "%s %d\n", seriesName(name, "_count", ""), s.Total)
}

// Handler serves the registry in Prometheus text format — mounted as
// GET /metrics by the single-node server and the cluster router.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
