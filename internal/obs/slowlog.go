package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// SlowEntry is one logged slow query.
type SlowEntry struct {
	Time    time.Time    `json:"time"`
	Route   string       `json:"route"`
	Query   string       `json:"query"`
	K       int          `json:"k,omitempty"`
	DurUs   int64        `json:"durUs"`
	TraceID string       `json:"traceId,omitempty"`
	Partial bool         `json:"partial,omitempty"`
	Spans   []SpanRecord `json:"spans,omitempty"`
}

// SlowLog is a fixed-size ring buffer of the most recent queries that
// crossed a latency threshold — the `-slowlog-ms` flag of every serving
// command. Recording is threshold-gated before any lock is taken, so the
// fast path of a healthy deployment pays one comparison. Entries are
// copied in; the ring never retains request-scoped memory beyond its
// capacity. A nil SlowLog never records. Dumped by GET /debug/slowlog.
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	ring      []SlowEntry
	next      int
	total     int64
}

// NewSlowLog builds a slow-query log keeping the last `capacity` entries
// at or above threshold (capacity ≤ 0 defaults to 128).
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, 0, capacity)}
}

// Threshold returns the gating latency (0 for a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Slow reports whether a duration crosses the threshold — the cheap guard
// callers use before assembling an entry (span snapshots cost something).
func (l *SlowLog) Slow(d time.Duration) bool {
	return l != nil && d >= l.threshold
}

// Record logs the entry if its duration crosses the threshold. Time is
// stamped here when the caller left it zero.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil || time.Duration(e.DurUs)*time.Microsecond < l.threshold {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
		l.next = len(l.ring) % cap(l.ring)
		return
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % cap(l.ring)
}

// Total returns how many slow queries were recorded since start (including
// ones the ring has since overwritten).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained entries, newest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.ring))
	for i := 1; i <= len(l.ring); i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// slowLogDump is the /debug/slowlog JSON shape.
type slowLogDump struct {
	ThresholdMs float64     `json:"thresholdMs"`
	Recorded    int64       `json:"recorded"`
	Retained    int         `json:"retained"`
	Entries     []SlowEntry `json:"entries"`
}

// Handler serves the slow-query dump — mounted as GET /debug/slowlog.
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entries := l.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(slowLogDump{
			ThresholdMs: float64(l.Threshold()) / float64(time.Millisecond),
			Recorded:    l.Total(),
			Retained:    len(entries),
			Entries:     entries,
		})
	})
}
