package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSlowLogThresholdGating(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 4)
	l.Record(SlowEntry{Route: "fast", DurUs: 500})
	l.Record(SlowEntry{Route: "slow", DurUs: 50_000})
	if l.Total() != 1 {
		t.Fatalf("recorded = %d, want 1", l.Total())
	}
	got := l.Snapshot()
	if len(got) != 1 || got[0].Route != "slow" {
		t.Fatalf("snapshot = %+v", got)
	}
	if got[0].Time.IsZero() {
		t.Fatal("Record did not stamp Time")
	}
	if !l.Slow(11*time.Millisecond) || l.Slow(9*time.Millisecond) {
		t.Fatal("Slow guard disagrees with threshold")
	}
}

func TestSlowLogRingWraparoundNewestFirst(t *testing.T) {
	l := NewSlowLog(0, 3)
	for i := 1; i <= 5; i++ {
		l.Record(SlowEntry{K: i, DurUs: int64(i)})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, want := range []int{5, 4, 3} {
		if got[i].K != want {
			t.Fatalf("snapshot[%d].K = %d, want %d (newest first)", i, got[i].K, want)
		}
	}
}

func TestNilSlowLog(t *testing.T) {
	var l *SlowLog
	l.Record(SlowEntry{DurUs: 1 << 40})
	if l.Total() != 0 || l.Snapshot() != nil || l.Slow(time.Hour) || l.Threshold() != 0 {
		t.Fatal("nil slow log must be inert")
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 8)
	l.Record(SlowEntry{Route: "/lookup", Query: "marie curie", DurUs: 2_000, TraceID: "abc",
		Spans: []SpanRecord{{Name: "embed", DurUs: 900}}})
	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var dump struct {
		ThresholdMs float64     `json:"thresholdMs"`
		Recorded    int64       `json:"recorded"`
		Retained    int         `json:"retained"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.ThresholdMs != 1 || dump.Recorded != 1 || dump.Retained != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	e := dump.Entries[0]
	if e.Query != "marie curie" || e.TraceID != "abc" || len(e.Spans) != 1 {
		t.Fatalf("entry = %+v", e)
	}
}
