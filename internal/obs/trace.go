package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// TraceHeader carries a trace id across cluster hops: the router stamps it
// on POST /partition/search, the node opens a trace under the same id and
// returns its spans in the response, and the router grafts them under the
// node's leg — one coherent timeline for a scattered query (DESIGN.md §10).
const TraceHeader = "X-Emblookup-Trace"

// SpanRecord is one completed span of a trace: a named interval positioned
// relative to the trace start. Hedged marks the duplicate request of a
// hedge race; Retry is the 0-based retry attempt that produced the span.
type SpanRecord struct {
	Name    string `json:"name"`
	StartUs int64  `json:"startUs"`
	DurUs   int64  `json:"durUs"`
	Hedged  bool   `json:"hedged,omitempty"`
	Retry   int    `json:"retry,omitempty"`
}

// Trace collects the spans of one request. It is cheap enough to create
// per HTTP request but deliberately kept off the allocation-free lookup
// hot path: every instrumentation point takes a *Trace and a nil trace
// records nothing at zero cost, so untraced lookups keep their PR-1
// allocation counts. Safe for concurrent use — hedged duplicates and
// scatter legs append from their own goroutines.
type Trace struct {
	id    string
	start time.Time
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTraceID returns a fresh 16-hex-digit trace id.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// NewTrace opens a trace with a fresh id, starting now.
func NewTrace() *Trace { return NewTraceWith(NewTraceID()) }

// NewTraceWith opens a trace under an existing id — the receiving side of
// cross-hop propagation (a node adopting the router's TraceHeader).
func NewTraceWith(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace id ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanTimer is an open span. It is a value, not a pointer: starting a span
// on a nil trace costs nothing and allocates nothing.
type SpanTimer struct {
	tr     *Trace
	name   string
	t0     time.Time
	hedged bool
	retry  int
}

// Start opens a span. On a nil trace it returns an inert timer.
func (t *Trace) Start(name string) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{tr: t, name: name, t0: time.Now()}
}

// StartAttempt opens a span annotated as one request attempt: hedged marks
// the duplicate of a hedge race, retry the 0-based retry number.
func (t *Trace) StartAttempt(name string, hedged bool, retry int) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{tr: t, name: name, t0: time.Now(), hedged: hedged, retry: retry}
}

// End closes the span and appends its record to the trace.
func (s SpanTimer) End() {
	if s.tr == nil {
		return
	}
	end := time.Now()
	s.tr.add(SpanRecord{
		Name:    s.name,
		StartUs: s.t0.Sub(s.tr.start).Microseconds(),
		DurUs:   end.Sub(s.t0).Microseconds(),
		Hedged:  s.hedged,
		Retry:   s.retry,
	})
}

func (t *Trace) add(rec SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Graft appends spans produced by another process (a partition node),
// prefixing their names and shifting them by baseUs — the local start of
// the hop that produced them — so the remote timeline nests under the
// local one. A nil trace ignores the graft.
func (t *Trace) Graft(prefix string, baseUs int64, spans []SpanRecord) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, sp := range spans {
		sp.Name = prefix + sp.Name
		sp.StartUs += baseUs
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// SinceUs returns how far into the trace the given instant is — the base
// offset handed to Graft.
func (t *Trace) SinceUs(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return at.Sub(t.start).Microseconds()
}

// Spans returns a copy of the recorded spans ordered by start time.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool { return out[a].StartUs < out[b].StartUs })
	return out
}

// ctxKey keys the trace in a context.Context.
type ctxKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — callers pass the result
// straight to Start, which is nil-safe.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
