package obs

import (
	"context"
	"testing"
	"time"
)

func TestNilTraceIsFreeAndAllocFree(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Spans() != nil || tr.SinceUs(time.Now()) != 0 {
		t.Fatal("nil trace must read as empty")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("lookup")
		sp.End()
		at := tr.StartAttempt("rpc", true, 1)
		at.End()
		tr.Graft("node0/", 10, nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-trace span cycle allocates %v times", allocs)
	}
}

func TestTraceSpansRecorded(t *testing.T) {
	tr := NewTrace()
	if len(tr.ID()) != 16 {
		t.Fatalf("trace id %q, want 16 hex digits", tr.ID())
	}
	s1 := tr.Start("embed")
	time.Sleep(2 * time.Millisecond)
	s1.End()
	s2 := tr.StartAttempt("rpc", true, 2)
	s2.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "embed" || spans[0].DurUs < 1000 {
		t.Fatalf("embed span = %+v", spans[0])
	}
	if !spans[1].Hedged || spans[1].Retry != 2 {
		t.Fatalf("attempt span missing annotations: %+v", spans[1])
	}
	if spans[1].StartUs < spans[0].StartUs {
		t.Fatal("spans not ordered by start")
	}
}

func TestTraceWithAdoptsID(t *testing.T) {
	tr := NewTraceWith("deadbeefcafe0123")
	if tr.ID() != "deadbeefcafe0123" {
		t.Fatalf("id = %q", tr.ID())
	}
}

func TestGraftRebasesRemoteSpans(t *testing.T) {
	tr := NewTrace()
	remote := []SpanRecord{
		{Name: "search", StartUs: 5, DurUs: 40},
		{Name: "merge", StartUs: 50, DurUs: 10, Hedged: true},
	}
	tr.Graft("node1/", 1000, remote)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "node1/search" || spans[0].StartUs != 1005 || spans[0].DurUs != 40 {
		t.Fatalf("grafted span = %+v", spans[0])
	}
	if spans[1].Name != "node1/merge" || spans[1].StartUs != 1050 || !spans[1].Hedged {
		t.Fatalf("grafted span = %+v", spans[1])
	}
	// The originals must not be mutated.
	if remote[0].Name != "search" || remote[0].StartUs != 5 {
		t.Fatalf("graft mutated caller slice: %+v", remote[0])
	}
}

func TestTraceContextCarry(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost through context")
	}
}

func TestTraceConcurrentAppend(t *testing.T) {
	tr := NewTrace()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sp := tr.Start("leg")
				sp.End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := len(tr.Spans()); got != 1600 {
		t.Fatalf("got %d spans, want 1600", got)
	}
}
