// Package par is the shared parallel-for substrate behind every bulk
// operation in the repository (index.BatchSearch, lookup.Bulk,
// core.BulkLookup, core.EmbedAll). It replaces the hand-rolled
// channel+WaitGroup fan-outs those call sites used to copy-paste, and it
// exposes the worker identity so callers can give each worker long-lived
// scratch memory: a worker owns its scratch for the whole loop, which is
// what amortizes per-query working memory to zero allocations in bulk mode.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the number of goroutines ForEach/ForEachWorker will use
// for n items at the requested parallelism: ≤0 means GOMAXPROCS, and the
// result never exceeds n.
func Workers(n, parallelism int) int {
	if n <= 0 {
		return 0
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	return parallelism
}

// ForEach runs fn(i) for every i in [0, n) using Workers(n, parallelism)
// goroutines and returns when all calls have finished. With one worker the
// calls run inline in index order. fn must be safe for concurrent use when
// more than one worker runs.
func ForEach(n, parallelism int, fn func(i int)) {
	ForEachWorker(n, parallelism, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker identity exposed: fn(w, i) is
// called with w in [0, Workers(n, parallelism)), and all calls with the same
// w happen sequentially on one goroutine. Callers exploit this to hand each
// worker exclusive scratch memory for the lifetime of the loop.
func ForEachWorker(n, parallelism int, fn func(worker, i int)) {
	w := Workers(n, parallelism)
	if w == 0 {
		return
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
}
