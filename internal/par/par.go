// Package par is the shared parallel-for substrate behind every bulk
// operation in the repository (index.BatchSearch, lookup.Bulk,
// core.BulkLookup, core.EmbedAll). It replaces the hand-rolled
// channel+WaitGroup fan-outs those call sites used to copy-paste, and it
// exposes the worker identity so callers can give each worker long-lived
// scratch memory: a worker owns its scratch for the whole loop, which is
// what amortizes per-query working memory to zero allocations in bulk mode.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Split partitions [0, n) into at most `parts` contiguous, near-equal
// ranges and returns the boundaries: range i is [b[i], b[i+1]). The first
// n%parts ranges are one element longer, so sizes differ by at most one.
// With n < parts only n single-element ranges are produced; parts ≤ 0 is
// treated as 1. Sharded index scans use this to carve the stored rows into
// per-shard ranges.
func Split(n, parts int) []int {
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	b := make([]int, parts+1)
	size, rem := n/parts, n%parts
	for i := 1; i <= parts; i++ {
		b[i] = b[i-1] + size
		if i <= rem {
			b[i]++
		}
	}
	return b
}

// Workers returns the number of goroutines ForEach/ForEachWorker will use
// for n items at the requested parallelism: ≤0 means GOMAXPROCS, and the
// result never exceeds n.
func Workers(n, parallelism int) int {
	if n <= 0 {
		return 0
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	return parallelism
}

// ForEach runs fn(i) for every i in [0, n) using Workers(n, parallelism)
// goroutines and returns when all calls have finished. With one worker the
// calls run inline in index order. fn must be safe for concurrent use when
// more than one worker runs.
func ForEach(n, parallelism int, fn func(i int)) {
	ForEachWorker(n, parallelism, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker identity exposed: fn(w, i) is
// called with w in [0, Workers(n, parallelism)), and all calls with the same
// w happen sequentially on one goroutine. Callers exploit this to hand each
// worker exclusive scratch memory for the lifetime of the loop.
func ForEachWorker(n, parallelism int, fn func(worker, i int)) {
	w := Workers(n, parallelism)
	if w == 0 {
		return
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
}
