package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamping(t *testing.T) {
	cases := []struct {
		n, parallelism, want int
	}{
		{0, 8, 0},
		{-3, 8, 0},
		{10, 1, 1},
		{10, 4, 4},
		{3, 8, 3},                             // parallelism > n clamps to n
		{5, 0, min(5, runtime.GOMAXPROCS(0))}, // ≤0 means GOMAXPROCS
		{5, -1, min(5, runtime.GOMAXPROCS(0))},
	}
	for _, c := range cases {
		if got := Workers(c.n, c.parallelism); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.n, c.parallelism, got, c.want)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 3, 100} {
		const n = 57
		var counts [n]atomic.Int32
		ForEach(n, p, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("parallelism %d: index %d visited %d times", p, i, c)
			}
		}
	}
}

func TestForEachOrderPreservation(t *testing.T) {
	// Writing out[i] from fn(i) must yield the same result at any
	// parallelism — the contract every bulk call site relies on.
	const n = 200
	want := make([]int, n)
	ForEach(n, 1, func(i int) { want[i] = 3 * i })
	for _, p := range []int{0, 2, 8, n + 5} {
		got := make([]int, n)
		ForEach(n, p, func(i int) { got[i] = 3 * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestForEachWorkerIdentity(t *testing.T) {
	const n, p = 64, 4
	workerOf := make([]int32, n)
	var active [p]atomic.Int32
	ForEachWorker(n, p, func(w, i int) {
		if w < 0 || w >= p {
			t.Errorf("worker id %d out of range [0,%d)", w, p)
		}
		// The same worker id never runs concurrently with itself.
		if active[w].Add(1) != 1 {
			t.Errorf("worker %d ran concurrently with itself", w)
		}
		workerOf[i] = int32(w)
		active[w].Add(-1)
	})
	for i, w := range workerOf {
		if w < 0 || w >= p {
			t.Fatalf("index %d assigned to worker %d", i, w)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEachWorker(-1, 4, func(int, int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestSplit(t *testing.T) {
	for _, tc := range []struct {
		n, parts int
		want     []int
	}{
		{10, 3, []int{0, 4, 7, 10}},
		{10, 1, []int{0, 10}},
		{3, 8, []int{0, 1, 2, 3}},
		{0, 4, []int{0, 0}},
		{7, 0, []int{0, 7}},
		{6, 3, []int{0, 2, 4, 6}},
	} {
		got := Split(tc.n, tc.parts)
		if len(got) != len(tc.want) {
			t.Fatalf("Split(%d,%d) = %v, want %v", tc.n, tc.parts, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Split(%d,%d) = %v, want %v", tc.n, tc.parts, got, tc.want)
			}
		}
	}
}
