package quant

import "fmt"

// This file is the quantization layer of the fast-scan ADC path (DESIGN.md
// §11): 4-bit sub-quantizers whose codes pack two per byte, and per-query
// uint8 quantization of the ADC distance table so the table a scan gathers
// from shrinks from Ks float32s per sub-quantizer to 16 bytes — small enough
// to stay L1-resident (and, fused pairwise by the scan kernel, to stay in a
// few cache lines) while distances accumulate in integer registers.

// Ks4 is the centroid count of a 4-bit sub-quantizer: every code is a
// nibble.
const Ks4 = 16

// MaxM4 bounds the sub-quantizer count of the 4-bit path. A scanned
// distance is a sum of M uint8 table entries accumulated in uint16, so
// M*255 must not exceed 65535: M ≤ 257 guarantees the accumulator can
// never saturate. (In practice M = Dim/Dsub is far smaller.)
const MaxM4 = 257

// Config4 derives the 4-bit twin of an 8-bit PQ configuration: twice the
// sub-quantizers at 16 centroids each, so the bytes-per-code storage cost
// is unchanged (two nibble codes pack into each byte) while each sub-space
// is half as wide — the FAISS fast-scan trade: coarser codebooks, finer
// splits, and a distance table 16× smaller per sub-quantizer.
func Config4(cfg PQConfig) PQConfig {
	cfg.M *= 2
	cfg.Ks = Ks4
	return cfg
}

// Pack4 packs nibble codes two per byte: code 2j lands in the low nibble of
// packed[j], code 2j+1 in the high nibble. len(nibbles) must be even and
// len(packed) = len(nibbles)/2; every nibble must be < 16.
func Pack4(nibbles, packed []byte) {
	if len(nibbles) != 2*len(packed) {
		panic(fmt.Sprintf("quant: Pack4 of %d nibbles into %d bytes", len(nibbles), len(packed)))
	}
	for j := range packed {
		packed[j] = nibbles[2*j]&0xf | nibbles[2*j+1]<<4
	}
}

// Unpack4 is the inverse of Pack4.
func Unpack4(packed, nibbles []byte) {
	if len(nibbles) != 2*len(packed) {
		panic(fmt.Sprintf("quant: Unpack4 of %d bytes into %d nibbles", len(packed), len(nibbles)))
	}
	for j, b := range packed {
		nibbles[2*j] = b & 0xf
		nibbles[2*j+1] = b >> 4
	}
}

// Encode4Into quantizes vec into its packed 4-bit code: M/2 bytes, two
// sub-quantizer codes per byte in Pack4 order. The quantizer must be 4-bit
// (Ks ≤ 16) with an even M. nibbles is caller scratch of length M (reused
// across calls); pass nil to allocate.
func (pq *ProductQuantizer) Encode4Into(vec []float32, packed, nibbles []byte) {
	if pq.Ks > Ks4 || pq.M%2 != 0 {
		panic(fmt.Sprintf("quant: Encode4Into on a non-4-bit quantizer (M=%d Ks=%d)", pq.M, pq.Ks))
	}
	if nibbles == nil {
		nibbles = make([]byte, pq.M)
	}
	pq.EncodeInto(vec, nibbles[:pq.M])
	Pack4(nibbles[:pq.M], packed)
}

// Decode4 reconstructs the approximate vector for a packed 4-bit code.
func (pq *ProductQuantizer) Decode4(packed []byte) []float32 {
	nibbles := make([]byte, pq.M)
	Unpack4(packed, nibbles)
	return pq.Decode(nibbles)
}

// QuantizeTableInto quantizes the float32 ADC table (laid out as
// ADCTableInto: M rows of Ks entries) to uint8 with one shared scale:
//
//	lut8[m*Ks+c] = floor((table[m*Ks+c] - min_m) / delta)
//	bias  = Σ_m min_m
//	delta = max_{m,c} (table[m*Ks+c] - min_m) / 255
//
// where min_m/max range over each sub-quantizer's *trained* centroids
// (entries past Codebooks[m].Rows are zero-filled padding no code ever
// references; they are written as 0). Because the quantization floors,
// every quantized sum is a lower bound of its float sum:
//
//	bias + delta·Σ_m lut8[m][c_m]  ≤  Σ_m table[m][c_m]
//	                               <  bias + delta·(Σ_m lut8[m][c_m] + M)
//
// so a scan can early-abandon on the integer sum without ever dropping a
// row the exact table would keep, and the quantization error of any
// distance is below M·delta. Saturation: the integer sum of M uint8
// entries is at most M·255, which fits uint16 for M ≤ MaxM4 — the scan
// kernels accumulate in uint16 without overflow checks on that guarantee.
//
// When the table is constant per sub-quantizer (delta would be 0), delta is
// forced to 1 and every entry quantizes to 0; the bounds above still hold.
func (pq *ProductQuantizer) QuantizeTableInto(table []float32, lut8 []uint8) (bias, delta float32) {
	if len(table) != pq.M*pq.Ks || len(lut8) != pq.M*pq.Ks {
		panic(fmt.Sprintf("quant: QuantizeTableInto length %d/%d, want %d", len(table), len(lut8), pq.M*pq.Ks))
	}
	if pq.M > MaxM4 {
		panic(fmt.Sprintf("quant: M=%d exceeds MaxM4=%d (uint16 accumulation would saturate)", pq.M, MaxM4))
	}
	var spread float32
	for m := 0; m < pq.M; m++ {
		rows := pq.Codebooks[m].Rows
		base := m * pq.Ks
		mn, mx := table[base], table[base]
		for c := 1; c < rows; c++ {
			if v := table[base+c]; v < mn {
				mn = v
			} else if v > mx {
				mx = v
			}
		}
		bias += mn
		if s := mx - mn; s > spread {
			spread = s
		}
	}
	delta = spread / 255
	if delta <= 0 {
		delta = 1
	}
	inv := 1 / delta
	for m := 0; m < pq.M; m++ {
		rows := pq.Codebooks[m].Rows
		base := m * pq.Ks
		mn := table[base]
		for c := 1; c < rows; c++ {
			if v := table[base+c]; v < mn {
				mn = v
			}
		}
		for c := 0; c < rows; c++ {
			q := int32((table[base+c] - mn) * inv)
			if q > 255 {
				q = 255
			}
			if q < 0 {
				q = 0
			}
			lut8[base+c] = uint8(q)
		}
		for c := rows; c < pq.Ks; c++ {
			lut8[base+c] = 0
		}
	}
	return bias, delta
}
