package quant

import (
	"testing"

	"emblookup/internal/mathx"
)

func TestConfig4KeepsBytesPerCode(t *testing.T) {
	cfg := DefaultPQConfig() // M=8, Ks=256
	c4 := Config4(cfg)
	if c4.M != 2*cfg.M || c4.Ks != Ks4 {
		t.Fatalf("Config4(%+v) = %+v", cfg, c4)
	}
	// Two nibbles per byte: same storage as M 8-bit codes.
	if c4.M/2 != cfg.M {
		t.Fatalf("4-bit bytes per code %d != 8-bit %d", c4.M/2, cfg.M)
	}
}

func TestPack4RoundTrip(t *testing.T) {
	nib := []byte{0, 15, 7, 8, 1, 14, 3, 12}
	packed := make([]byte, 4)
	Pack4(nib, packed)
	if packed[0] != 0xf0 || packed[1] != 0x87 {
		t.Fatalf("Pack4 = %x", packed)
	}
	back := make([]byte, 8)
	Unpack4(packed, back)
	for i := range nib {
		if nib[i] != back[i] {
			t.Fatalf("round trip diverges at %d: %d vs %d", i, nib[i], back[i])
		}
	}
}

// train4 trains a small 4-bit quantizer over random data.
func train4(t *testing.T, n, d int, seed uint64) (*ProductQuantizer, *mathx.Matrix) {
	t.Helper()
	data := mathx.NewMatrix(n, d)
	data.FillRandn(mathx.NewRNG(seed), 1)
	cfg := Config4(PQConfig{M: d / 8, Ks: 64, Iters: 5, Seed: seed + 1})
	pq, err := TrainPQ(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pq, data
}

func TestEncode4MatchesEncode(t *testing.T) {
	pq, data := train4(t, 300, 32, 11)
	packed := make([]byte, pq.M/2)
	nib := make([]byte, pq.M)
	want := make([]byte, pq.M)
	for i := 0; i < 20; i++ {
		pq.Encode4Into(data.Row(i), packed, nil)
		pq.EncodeInto(data.Row(i), want)
		Unpack4(packed, nib)
		for m := range want {
			if nib[m] != want[m] {
				t.Fatalf("row %d sub %d: packed code %d, EncodeInto %d", i, m, nib[m], want[m])
			}
		}
		// Decode4 must agree with Decode of the unpacked code.
		d4 := pq.Decode4(packed)
		d8 := pq.Decode(want)
		for j := range d4 {
			if d4[j] != d8[j] {
				t.Fatalf("row %d dim %d: Decode4 %v vs Decode %v", i, j, d4[j], d8[j])
			}
		}
	}
}

// TestQuantizeTableBounds asserts the two inequalities QuantizeTableInto
// documents: the quantized sum is a lower bound of the float sum, and the
// error is below M·delta (both with a small FP-rounding slack).
func TestQuantizeTableBounds(t *testing.T) {
	pq, data := train4(t, 400, 32, 23)
	table := make([]float32, pq.M*pq.Ks)
	lut8 := make([]uint8, pq.M*pq.Ks)
	code := make([]byte, pq.M)
	for qi := 0; qi < 10; qi++ {
		q := data.Row(qi)
		pq.ADCTableInto(q, table)
		bias, delta := pq.QuantizeTableInto(table, lut8)
		if delta <= 0 {
			t.Fatalf("query %d: non-positive delta %v", qi, delta)
		}
		for ri := 0; ri < 50; ri++ {
			pq.EncodeInto(data.Row(ri), code)
			var exact float32
			var qsum int
			for m := 0; m < pq.M; m++ {
				exact += table[m*pq.Ks+int(code[m])]
				qsum += int(lut8[m*pq.Ks+int(code[m])])
			}
			lo := bias + delta*float32(qsum)
			hi := bias + delta*float32(qsum+pq.M)
			slack := delta * float32(pq.M) * 1e-4
			if lo > exact+slack {
				t.Fatalf("query %d row %d: lower bound %v above exact %v", qi, ri, lo, exact)
			}
			if exact > hi+slack {
				t.Fatalf("query %d row %d: exact %v above upper bound %v", qi, ri, exact, hi)
			}
		}
	}
}

// TestQuantizeTableConstant covers the delta=0 degenerate case: a table
// that is constant per sub-quantizer must quantize to all-zero entries with
// bias carrying the whole distance.
func TestQuantizeTableConstant(t *testing.T) {
	pq, _ := train4(t, 100, 16, 31)
	table := make([]float32, pq.M*pq.Ks)
	for m := 0; m < pq.M; m++ {
		for c := 0; c < pq.Ks; c++ {
			table[m*pq.Ks+c] = float32(m + 1)
		}
	}
	lut8 := make([]uint8, len(table))
	bias, delta := pq.QuantizeTableInto(table, lut8)
	if delta != 1 {
		t.Fatalf("constant table: delta %v, want forced 1", delta)
	}
	wantBias := float32(0)
	for m := 0; m < pq.M; m++ {
		wantBias += float32(m + 1)
	}
	if bias != wantBias {
		t.Fatalf("constant table: bias %v, want %v", bias, wantBias)
	}
	for i, v := range lut8 {
		if v != 0 {
			t.Fatalf("constant table: lut8[%d] = %d, want 0", i, v)
		}
	}
}
