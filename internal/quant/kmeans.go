// Package quant implements the embedding-compression substrate of Section
// III-D: k-means clustering, product quantization with asymmetric-distance
// (ADC) lookup tables, and PCA (the alternate compression scheme of the
// Figure 5 ablation).
package quant

import (
	"emblookup/internal/mathx"
	"emblookup/internal/par"
)

// KMeansConfig controls Lloyd's algorithm.
type KMeansConfig struct {
	K        int
	MaxIters int
	Seed     uint64
	// Workers bounds construction parallelism (≤0 = GOMAXPROCS). The result
	// is bit-identical for every worker count at a fixed seed: all
	// floating-point reductions run over a fixed partition of the rows and
	// merge in partition order, so only wall-clock time depends on Workers.
	Workers int
	// TrainSample, when positive and smaller than the row count, trains the
	// centroids on a deterministic evenly-strided sample of that many rows
	// and then runs one exact assignment pass over all rows — the standard
	// large-corpus k-means shortcut (training cost stops scaling with n; the
	// assignment stays exact). 0 trains on every row, bit-identical to
	// builds predating this knob.
	TrainSample int
}

// kmeansParts is the fixed number of row partitions every parallel reduction
// in KMeans uses. It is a constant — not the worker count — so the
// floating-point summation tree is the same no matter how many goroutines
// execute the partitions, which is what makes the parallel build
// deterministic across worker counts.
const kmeansParts = 64

// kmeansState holds the preallocated per-partition reduction buffers of one
// KMeans run: partial centroid sums and counts for the update step, partial
// distance-total decrements for the seeding step, and the per-partition
// changed flags of the assignment step.
type kmeansState struct {
	bounds  []int // len parts+1, partition p covers rows [bounds[p], bounds[p+1])
	sums    []*mathx.Matrix
	counts  [][]int
	deltas  []float64
	changed []bool
	workers int
}

func newKMeansState(n, k, d, workers int) *kmeansState {
	bounds := par.Split(n, kmeansParts)
	parts := len(bounds) - 1
	st := &kmeansState{
		bounds:  bounds,
		sums:    make([]*mathx.Matrix, parts),
		counts:  make([][]int, parts),
		deltas:  make([]float64, parts),
		changed: make([]bool, parts),
		workers: workers,
	}
	for p := range st.sums {
		st.sums[p] = mathx.NewMatrix(k, d)
		st.counts[p] = make([]int, k)
	}
	return st
}

func (st *kmeansState) parts() int { return len(st.bounds) - 1 }

// KMeans runs Lloyd's algorithm with k-means++ seeding on the rows of data
// and returns the K×D centroid matrix together with each row's assignment.
// If data has fewer rows than K, surplus centroids repeat existing rows.
// The assignment and update steps fan across cfg.Workers goroutines over a
// fixed row partition; see KMeansConfig for the determinism contract.
func KMeans(data *mathx.Matrix, cfg KMeansConfig) (*mathx.Matrix, []int) {
	n, d := data.Rows, data.Cols
	k := cfg.K
	if k <= 0 {
		k = 1
	}
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 15
	}
	rng := mathx.NewRNG(cfg.Seed)
	centroids := mathx.NewMatrix(k, d)
	assign := make([]int, n)
	if n == 0 {
		return centroids, assign
	}
	if cfg.TrainSample > 0 && cfg.TrainSample < n {
		// Train on an evenly-strided sample (deterministic: no RNG draw
		// decides membership), then assign every row exactly once.
		sub := mathx.NewMatrix(cfg.TrainSample, d)
		for i := 0; i < cfg.TrainSample; i++ {
			copy(sub.Row(i), data.Row(i*n/cfg.TrainSample))
		}
		subCfg := cfg
		subCfg.TrainSample = 0
		centroids, _ = KMeans(sub, subCfg)
		st := newKMeansState(n, k, d, cfg.Workers)
		assignStep(data, centroids, assign, st)
		return centroids, assign
	}
	st := newKMeansState(n, k, d, cfg.Workers)

	seedPlusPlus(data, centroids, rng, st)

	// Lloyd iterations. After an assignment pass the assignments are exact
	// for the current centroids; after an update pass they are stale. The
	// loop breaks right after an assignment pass when nothing moved, so on
	// the convergence exit no final re-assignment is needed — recomputing
	// all N×K distances there would reproduce assign bit for bit.
	converged := false
	for iter := 0; iter < iters; iter++ {
		changed := assignStep(data, centroids, assign, st)
		if !changed && iter > 0 {
			converged = true
			break
		}
		updateStep(data, centroids, assign, rng, st)
	}
	if !converged {
		// The loop exhausted MaxIters with an update as its last step, so
		// the assignments lag the final centroids by one pass.
		assignStep(data, centroids, assign, st)
	}
	return centroids, assign
}

// seedPlusPlus runs k-means++ seeding: first centroid uniform, then
// proportional to the squared distance to the closest chosen centroid. The
// running distance total is maintained incrementally — each new centroid
// subtracts the per-partition sum of distance decrements instead of
// re-summing all N distances — and the distance updates fan across workers.
func seedPlusPlus(data, centroids *mathx.Matrix, rng *mathx.RNG, st *kmeansState) {
	n, k := data.Rows, centroids.Rows
	copy(centroids.Row(0), data.Row(rng.Intn(n)))
	dist := make([]float64, n)
	var total float64
	par.ForEach(st.parts(), st.workers, func(p int) {
		var sum float64
		for i := st.bounds[p]; i < st.bounds[p+1]; i++ {
			dist[i] = float64(mathx.SquaredL2(data.Row(i), centroids.Row(0)))
			sum += dist[i]
		}
		st.deltas[p] = sum
	})
	for p := 0; p < st.parts(); p++ {
		total += st.deltas[p]
	}
	for c := 1; c < k; c++ {
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			chosen = n - 1
			for i, v := range dist {
				acc += v
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		copy(centroids.Row(c), data.Row(chosen))
		par.ForEach(st.parts(), st.workers, func(p int) {
			var dec float64
			for i := st.bounds[p]; i < st.bounds[p+1]; i++ {
				if nd := float64(mathx.SquaredL2(data.Row(i), centroids.Row(c))); nd < dist[i] {
					dec += dist[i] - nd
					dist[i] = nd
				}
			}
			st.deltas[p] = dec
		})
		// Merge decrements in partition order so total is worker-count
		// independent.
		for p := 0; p < st.parts(); p++ {
			total -= st.deltas[p]
		}
	}
}

// assignStep reassigns every row to its nearest centroid in parallel and
// reports whether any assignment moved. Each row's nearest centroid is an
// exact argmin, so the result is independent of scheduling.
func assignStep(data, centroids *mathx.Matrix, assign []int, st *kmeansState) bool {
	k := centroids.Rows
	par.ForEach(st.parts(), st.workers, func(p int) {
		moved := false
		for i := st.bounds[p]; i < st.bounds[p+1]; i++ {
			best, bestD := 0, float32(0)
			for c := 0; c < k; c++ {
				d := mathx.SquaredL2(data.Row(i), centroids.Row(c))
				if c == 0 || d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				moved = true
			}
		}
		st.changed[p] = moved
	})
	changed := false
	for _, m := range st.changed {
		changed = changed || m
	}
	return changed
}

// updateStep recomputes the centroids from the current assignments: every
// partition accumulates its rows into private sums/counts, then the partials
// merge in partition order. The merged sum for a centroid adds its rows in
// global row order with a parenthesization fixed by the partition bounds, so
// the centroids are bit-identical for every worker count.
func updateStep(data, centroids *mathx.Matrix, assign []int, rng *mathx.RNG, st *kmeansState) {
	n, k := data.Rows, centroids.Rows
	par.ForEach(st.parts(), st.workers, func(p int) {
		sums, counts := st.sums[p], st.counts[p]
		sums.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := st.bounds[p]; i < st.bounds[p+1]; i++ {
			mathx.Axpy(1, data.Row(i), sums.Row(assign[i]))
			counts[assign[i]]++
		}
	})
	centroids.Zero()
	totals := make([]int, k)
	for p := 0; p < st.parts(); p++ {
		for c := 0; c < k; c++ {
			if st.counts[p][c] == 0 {
				continue
			}
			mathx.Axpy(1, st.sums[p].Row(c), centroids.Row(c))
			totals[c] += st.counts[p][c]
		}
	}
	for c := 0; c < k; c++ {
		if totals[c] == 0 {
			// Re-seed an empty cluster from a random point.
			if n > 0 {
				copy(centroids.Row(c), data.Row(rng.Intn(n)))
			}
			continue
		}
		mathx.Scale(1/float32(totals[c]), centroids.Row(c))
	}
}

// Inertia returns the sum of squared distances of each row to its assigned
// centroid — the k-means objective, exposed for testing convergence.
func Inertia(data, centroids *mathx.Matrix, assign []int) float64 {
	var s float64
	for i := 0; i < data.Rows; i++ {
		s += float64(mathx.SquaredL2(data.Row(i), centroids.Row(assign[i])))
	}
	return s
}
