// Package quant implements the embedding-compression substrate of Section
// III-D: k-means clustering, product quantization with asymmetric-distance
// (ADC) lookup tables, and PCA (the alternate compression scheme of the
// Figure 5 ablation).
package quant

import (
	"emblookup/internal/mathx"
)

// KMeansConfig controls Lloyd's algorithm.
type KMeansConfig struct {
	K        int
	MaxIters int
	Seed     uint64
}

// KMeans runs Lloyd's algorithm with k-means++ seeding on the rows of data
// and returns the K×D centroid matrix together with each row's assignment.
// If data has fewer rows than K, surplus centroids repeat existing rows.
func KMeans(data *mathx.Matrix, cfg KMeansConfig) (*mathx.Matrix, []int) {
	n, d := data.Rows, data.Cols
	k := cfg.K
	if k <= 0 {
		k = 1
	}
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 15
	}
	rng := mathx.NewRNG(cfg.Seed)
	centroids := mathx.NewMatrix(k, d)

	// k-means++ seeding: first centroid uniform, then proportional to the
	// squared distance to the closest chosen centroid.
	if n > 0 {
		copy(centroids.Row(0), data.Row(rng.Intn(n)))
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = float64(mathx.SquaredL2(data.Row(i), centroids.Row(0)))
		}
		for c := 1; c < k; c++ {
			var total float64
			for _, v := range dist {
				total += v
			}
			var chosen int
			if total <= 0 {
				chosen = rng.Intn(n)
			} else {
				target := rng.Float64() * total
				acc := 0.0
				chosen = n - 1
				for i, v := range dist {
					acc += v
					if acc >= target {
						chosen = i
						break
					}
				}
			}
			copy(centroids.Row(c), data.Row(chosen))
			for i := range dist {
				if nd := float64(mathx.SquaredL2(data.Row(i), centroids.Row(c))); nd < dist[i] {
					dist[i] = nd
				}
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < iters; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, float32(0)
			for c := 0; c < k; c++ {
				d := mathx.SquaredL2(data.Row(i), centroids.Row(c))
				if c == 0 || d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		centroids.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			mathx.Axpy(1, data.Row(i), centroids.Row(assign[i]))
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster from a random point.
				if n > 0 {
					copy(centroids.Row(c), data.Row(rng.Intn(n)))
				}
				continue
			}
			mathx.Scale(1/float32(counts[c]), centroids.Row(c))
		}
	}
	// Final assignment against the last centroids.
	for i := 0; i < n; i++ {
		best, bestD := 0, float32(0)
		for c := 0; c < k; c++ {
			d := mathx.SquaredL2(data.Row(i), centroids.Row(c))
			if c == 0 || d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return centroids, assign
}

// Inertia returns the sum of squared distances of each row to its assigned
// centroid — the k-means objective, exposed for testing convergence.
func Inertia(data, centroids *mathx.Matrix, assign []int) float64 {
	var s float64
	for i := 0; i < data.Rows; i++ {
		s += float64(mathx.SquaredL2(data.Row(i), centroids.Row(assign[i])))
	}
	return s
}
