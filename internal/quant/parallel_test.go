package quant

import "testing"

// The parallel k-means reduces per-partition partial sums over a fixed
// partition grid and merges them in partition order, so centroids must be
// bit-identical at every worker count — not merely close.
func TestKMeansParallelMatchesSequential(t *testing.T) {
	data, _ := clusteredData(700, 8, 5, 21)
	ref, refAssign := KMeans(data, KMeansConfig{K: 5, MaxIters: 20, Seed: 22, Workers: 1})
	for _, workers := range []int{2, 3, 5, 8} {
		cents, assign := KMeans(data, KMeansConfig{K: 5, MaxIters: 20, Seed: 22, Workers: workers})
		for i := range refAssign {
			if assign[i] != refAssign[i] {
				t.Fatalf("workers=%d: assignment %d differs (%d vs %d)", workers, i, assign[i], refAssign[i])
			}
		}
		for i := range ref.Data {
			if cents.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: centroid value %d differs bitwise (%v vs %v)",
					workers, i, cents.Data[i], ref.Data[i])
			}
		}
	}
}

// The M sub-codebooks train concurrently but each sub-problem is seeded
// independently, so the trained quantizer must not depend on the worker
// count either.
func TestTrainPQParallelMatchesSequential(t *testing.T) {
	data, _ := clusteredData(400, 16, 6, 23)
	ref, err := TrainPQ(data, PQConfig{M: 4, Ks: 16, Iters: 12, Seed: 24, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		pq, err := TrainPQ(data, PQConfig{M: 4, Ks: 16, Iters: 12, Seed: 24, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for m := range ref.Codebooks {
			for i := range ref.Codebooks[m].Data {
				if pq.Codebooks[m].Data[i] != ref.Codebooks[m].Data[i] {
					t.Fatalf("workers=%d: codebook %d value %d differs bitwise", workers, m, i)
				}
			}
		}
		// Encoding flows through the codebooks, so codes must agree too.
		for i := 0; i < 50; i++ {
			a, b := ref.Encode(data.Row(i)), pq.Encode(data.Row(i))
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("workers=%d: code for row %d differs", workers, i)
				}
			}
		}
	}
}

// Lloyd's algorithm never increases the objective, so running longer can
// only help (float32 accumulation noise aside — hence the tiny slack).
func TestKMeansInertiaNonIncreasing(t *testing.T) {
	data, _ := clusteredData(500, 6, 4, 25)
	prev := -1.0
	for iters := 1; iters <= 10; iters++ {
		cents, assign := KMeans(data, KMeansConfig{K: 4, MaxIters: iters, Seed: 26, Workers: 3})
		in := Inertia(data, cents, assign)
		if prev >= 0 && in > prev*(1+1e-6)+1e-9 {
			t.Fatalf("inertia increased from %.6f (iters=%d) to %.6f (iters=%d)", prev, iters-1, in, iters)
		}
		prev = in
	}
}

// Once assignments stop changing the loop exits without the redundant final
// assignment pass, so any larger iteration budget must give the exact same
// answer as a budget past convergence.
func TestKMeansConvergedStableAcrossBudgets(t *testing.T) {
	data, _ := clusteredData(300, 4, 3, 27)
	c1, a1 := KMeans(data, KMeansConfig{K: 3, MaxIters: 50, Seed: 28, Workers: 2})
	c2, a2 := KMeans(data, KMeansConfig{K: 3, MaxIters: 500, Seed: 28, Workers: 2})
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("assignments changed past convergence")
		}
	}
	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatal("centroids changed past convergence")
		}
	}
}
