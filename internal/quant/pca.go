package quant

import (
	"math"
	"sort"

	"emblookup/internal/mathx"
)

// PCA is a principal-component projection learned from data, the
// dimensionality-reduction alternative to product quantization evaluated in
// Figure 5 of the paper. Each reduced dimension costs 4 bytes (float32), so
// a PCA compressed to c components matches a PQ code of 4·c bytes.
type PCA struct {
	Mean       []float32
	Components *mathx.Matrix // nComponents × D, rows are principal axes
}

// TrainPCA fits nComponents principal axes to the rows of data using the
// Jacobi eigenvalue decomposition of the covariance matrix (exact for the
// embedding sizes used here, D ≤ 256).
func TrainPCA(data *mathx.Matrix, nComponents int) *PCA {
	n, d := data.Rows, data.Cols
	if nComponents <= 0 || nComponents > d {
		nComponents = d
	}
	mean := make([]float32, d)
	for i := 0; i < n; i++ {
		mathx.Axpy(1, data.Row(i), mean)
	}
	if n > 0 {
		mathx.Scale(1/float32(n), mean)
	}
	// Covariance in float64 for numerical stability.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for r := 0; r < n; r++ {
		row := data.Row(r)
		for i := 0; i < d; i++ {
			xi := float64(row[i] - mean[i])
			if xi == 0 {
				continue
			}
			for j := i; j < d; j++ {
				cov[i][j] += xi * float64(row[j]-mean[j])
			}
		}
	}
	denom := float64(n - 1)
	if denom < 1 {
		denom = 1
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= denom
			cov[j][i] = cov[i][j]
		}
	}

	vals, vecs := jacobiEigen(cov)
	// Sort by descending eigenvalue.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	comp := mathx.NewMatrix(nComponents, d)
	for c := 0; c < nComponents; c++ {
		col := idx[c]
		for j := 0; j < d; j++ {
			comp.Set(c, j, float32(vecs[j][col]))
		}
	}
	return &PCA{Mean: mean, Components: comp}
}

// Project maps vec onto the principal axes, returning an nComponents-length
// vector.
func (p *PCA) Project(vec []float32) []float32 {
	centered := mathx.Sub(vec, p.Mean)
	return p.Components.MatVec(centered)
}

// Reconstruct maps a projected vector back into the original space.
func (p *PCA) Reconstruct(proj []float32) []float32 {
	out := p.Components.MatVecT(proj)
	for i := range out {
		out[i] += p.Mean[i]
	}
	return out
}

// jacobiEigen computes all eigenvalues and eigenvectors of a symmetric
// matrix by cyclic Jacobi rotations. vecs columns are eigenvectors.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	vecs = make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		vecs[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := vecs[k][p], vecs[k][q]
					vecs[k][p] = c*vkp - s*vkq
					vecs[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, vecs
}
