package quant

import (
	"fmt"
	"runtime"

	"emblookup/internal/mathx"
	"emblookup/internal/par"
)

// ProductQuantizer compresses D-dimensional vectors into M bytes, exactly
// as Section III-D describes: the vector is split into M groups of D/M
// dimensions, each group is k-means-clustered into Ks (≤256) centroids, and
// a vector is stored as the M centroid ids of its groups. With the paper's
// defaults (D=64, M=8, Ks=256) each embedding costs 8 bytes instead of 256.
type ProductQuantizer struct {
	D, M, Ks, Dsub int
	// Codebooks[m] is a Ks×Dsub matrix of centroids for group m.
	Codebooks []*mathx.Matrix
}

// PQConfig configures training.
type PQConfig struct {
	M     int // number of sub-quantizers (= bytes per code)
	Ks    int // centroids per sub-quantizer, at most 256
	Iters int
	Seed  uint64
	// Workers bounds training parallelism (≤0 = GOMAXPROCS). The M
	// sub-codebooks are independent k-means problems and train
	// concurrently; each inherits KMeans's worker-count-invariant
	// reductions, so the codebooks are bit-identical at any Workers.
	Workers int
	// TrainSample caps the rows each sub-quantizer's k-means trains on
	// (see quant.KMeansConfig.TrainSample); encoding still covers every
	// row. 0 trains on all rows.
	TrainSample int
}

// DefaultPQConfig returns the paper's 8-byte configuration.
func DefaultPQConfig() PQConfig { return PQConfig{M: 8, Ks: 256, Iters: 15, Seed: 31} }

// TrainPQ learns the codebooks from the rows of data (N×D). D must be
// divisible by cfg.M.
func TrainPQ(data *mathx.Matrix, cfg PQConfig) (*ProductQuantizer, error) {
	if cfg.M <= 0 || cfg.Ks <= 0 || cfg.Ks > 256 {
		return nil, fmt.Errorf("quant: invalid PQ config M=%d Ks=%d", cfg.M, cfg.Ks)
	}
	if data.Cols%cfg.M != 0 {
		return nil, fmt.Errorf("quant: dimension %d not divisible by M=%d", data.Cols, cfg.M)
	}
	pq := &ProductQuantizer{D: data.Cols, M: cfg.M, Ks: cfg.Ks, Dsub: data.Cols / cfg.M}
	pq.Codebooks = make([]*mathx.Matrix, cfg.M)
	// Each sub-codebook is an independent clustering of its own column
	// group with its own seed, so the groups fan across workers; leftover
	// workers fold into each group's KMeans (whose result is worker-count
	// invariant, so this split only affects wall-clock time).
	effective := cfg.Workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	inner := effective / cfg.M
	if inner < 1 {
		inner = 1
	}
	par.ForEach(cfg.M, cfg.Workers, func(m int) {
		sub := mathx.NewMatrix(data.Rows, pq.Dsub)
		for i := 0; i < data.Rows; i++ {
			copy(sub.Row(i), data.Row(i)[m*pq.Dsub:(m+1)*pq.Dsub])
		}
		cents, _ := KMeans(sub, KMeansConfig{K: cfg.Ks, MaxIters: cfg.Iters, Seed: cfg.Seed + uint64(m), Workers: inner, TrainSample: cfg.TrainSample})
		pq.Codebooks[m] = cents
	})
	return pq, nil
}

// Encode quantizes vec into its M-byte code.
func (pq *ProductQuantizer) Encode(vec []float32) []byte {
	code := make([]byte, pq.M)
	pq.EncodeInto(vec, code)
	return code
}

// EncodeInto quantizes vec into code, which must have length M.
func (pq *ProductQuantizer) EncodeInto(vec []float32, code []byte) {
	for m := 0; m < pq.M; m++ {
		sub := vec[m*pq.Dsub : (m+1)*pq.Dsub]
		cb := pq.Codebooks[m]
		best, bestD := 0, float32(0)
		for c := 0; c < cb.Rows; c++ {
			d := mathx.SquaredL2(sub, cb.Row(c))
			if c == 0 || d < bestD {
				best, bestD = c, d
			}
		}
		code[m] = byte(best)
	}
}

// Decode reconstructs the approximate vector for a code.
func (pq *ProductQuantizer) Decode(code []byte) []float32 {
	out := make([]float32, pq.D)
	for m := 0; m < pq.M; m++ {
		copy(out[m*pq.Dsub:(m+1)*pq.Dsub], pq.Codebooks[m].Row(int(code[m])))
	}
	return out
}

// ADCTable precomputes, for a query, the squared distance from each query
// sub-vector to every centroid of every sub-quantizer. With the table, the
// distance to any stored code is M table lookups — the asymmetric distance
// computation that makes PQ search fast.
func (pq *ProductQuantizer) ADCTable(query []float32) []float32 {
	table := make([]float32, pq.M*pq.Ks)
	pq.ADCTableInto(query, table)
	return table
}

// ADCTableInto writes the ADC table into table, which must have length
// M*Ks. Query paths that reuse a scratch table avoid the per-query
// allocation that otherwise dominates compressed search.
func (pq *ProductQuantizer) ADCTableInto(query, table []float32) {
	if len(table) != pq.M*pq.Ks {
		panic(fmt.Sprintf("quant: ADC table length %d, want %d", len(table), pq.M*pq.Ks))
	}
	for m := 0; m < pq.M; m++ {
		sub := query[m*pq.Dsub : (m+1)*pq.Dsub]
		cb := pq.Codebooks[m]
		base := m * pq.Ks
		for c := 0; c < cb.Rows; c++ {
			table[base+c] = mathx.SquaredL2(sub, cb.Row(c))
		}
		// A reused table may hold stale values past the trained centroids;
		// codes never reference them, but keep the table well-defined.
		for c := cb.Rows; c < pq.Ks; c++ {
			table[base+c] = 0
		}
	}
}

// ADCDistance returns the approximate squared distance between the query
// that produced table and the stored code.
func (pq *ProductQuantizer) ADCDistance(table []float32, code []byte) float32 {
	var s float32
	for m := 0; m < pq.M; m++ {
		s += table[m*pq.Ks+int(code[m])]
	}
	return s
}

// BytesPerCode returns the storage cost per vector (= M).
func (pq *ProductQuantizer) BytesPerCode() int { return pq.M }
