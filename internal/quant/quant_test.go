package quant

import (
	"math"
	"testing"

	"emblookup/internal/mathx"
)

// clusteredData builds n points around k well-separated centers.
func clusteredData(n, d, k int, seed uint64) (*mathx.Matrix, []int) {
	rng := mathx.NewRNG(seed)
	centers := mathx.NewMatrix(k, d)
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			centers.Set(c, j, float32(c*10)+float32(rng.NormFloat64()))
		}
	}
	data := mathx.NewMatrix(n, d)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		row := data.Row(i)
		for j := 0; j < d; j++ {
			row[j] = centers.At(c, j) + float32(rng.NormFloat64()*0.1)
		}
	}
	return data, truth
}

func TestKMeansRecoversClusters(t *testing.T) {
	data, truth := clusteredData(300, 4, 3, 1)
	_, assign := KMeans(data, KMeansConfig{K: 3, MaxIters: 25, Seed: 2})
	// Assignments must be consistent with the ground truth partition: two
	// points in the same true cluster share an assigned cluster.
	repr := map[int]int{}
	for i, a := range assign {
		tc := truth[i]
		if r, ok := repr[tc]; ok {
			if r != a {
				t.Fatalf("true cluster %d split across kmeans clusters", tc)
			}
		} else {
			repr[tc] = a
		}
	}
	if len(repr) != 3 {
		t.Fatalf("found %d clusters, want 3", len(repr))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	data, _ := clusteredData(200, 6, 4, 3)
	c1, a1 := KMeans(data, KMeansConfig{K: 1, MaxIters: 10, Seed: 4})
	c4, a4 := KMeans(data, KMeansConfig{K: 4, MaxIters: 25, Seed: 4})
	if Inertia(data, c4, a4) >= Inertia(data, c1, a1) {
		t.Fatal("k=4 inertia should be below k=1")
	}
}

func TestKMeansFewerPointsThanK(t *testing.T) {
	data := mathx.NewMatrix(3, 2)
	cents, assign := KMeans(data, KMeansConfig{K: 8, MaxIters: 5, Seed: 5})
	if cents.Rows != 8 || len(assign) != 3 {
		t.Fatalf("degenerate kmeans output %d/%d", cents.Rows, len(assign))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	data, _ := clusteredData(100, 4, 2, 6)
	_, a1 := KMeans(data, KMeansConfig{K: 2, MaxIters: 20, Seed: 7})
	_, a2 := KMeans(data, KMeansConfig{K: 2, MaxIters: 20, Seed: 7})
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("kmeans not deterministic")
		}
	}
}

func TestPQRoundTripError(t *testing.T) {
	data, _ := clusteredData(500, 16, 4, 8)
	pq, err := TrainPQ(data, PQConfig{M: 4, Ks: 16, Iters: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction error must be far below the data's own variance.
	var errSum, varSum float64
	mean := make([]float32, data.Cols)
	for i := 0; i < data.Rows; i++ {
		mathx.Axpy(1, data.Row(i), mean)
	}
	mathx.Scale(1/float32(data.Rows), mean)
	for i := 0; i < data.Rows; i++ {
		rec := pq.Decode(pq.Encode(data.Row(i)))
		errSum += float64(mathx.SquaredL2(data.Row(i), rec))
		varSum += float64(mathx.SquaredL2(data.Row(i), mean))
	}
	if errSum >= varSum*0.1 {
		t.Fatalf("PQ reconstruction error too large: %.3f vs variance %.3f", errSum, varSum)
	}
}

func TestPQADCMatchesDecodedDistance(t *testing.T) {
	data, _ := clusteredData(200, 8, 3, 11)
	pq, err := TrainPQ(data, PQConfig{M: 2, Ks: 8, Iters: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(13)
	q := make([]float32, 8)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	table := pq.ADCTable(q)
	for i := 0; i < 50; i++ {
		code := pq.Encode(data.Row(i))
		adc := pq.ADCDistance(table, code)
		direct := mathx.SquaredL2(q, pq.Decode(code))
		if math.Abs(float64(adc-direct)) > 1e-3*math.Max(1, float64(direct)) {
			t.Fatalf("ADC %v != decoded distance %v", adc, direct)
		}
	}
}

func TestPQInvalidConfigs(t *testing.T) {
	data := mathx.NewMatrix(10, 7)
	if _, err := TrainPQ(data, PQConfig{M: 2, Ks: 4}); err == nil {
		t.Fatal("expected error: 7 not divisible by 2")
	}
	if _, err := TrainPQ(data, PQConfig{M: 0, Ks: 4}); err == nil {
		t.Fatal("expected error: M=0")
	}
	if _, err := TrainPQ(data, PQConfig{M: 7, Ks: 300}); err == nil {
		t.Fatal("expected error: Ks>256")
	}
}

func TestPQBytesPerCode(t *testing.T) {
	data, _ := clusteredData(50, 8, 2, 14)
	pq, err := TrainPQ(data, PQConfig{M: 8, Ks: 4, Iters: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if pq.BytesPerCode() != 8 {
		t.Fatalf("BytesPerCode = %d", pq.BytesPerCode())
	}
	if len(pq.Encode(data.Row(0))) != 8 {
		t.Fatal("code length != M")
	}
}

func TestPCAReconstructionImprovesWithComponents(t *testing.T) {
	data, _ := clusteredData(300, 12, 4, 16)
	errAt := func(nc int) float64 {
		p := TrainPCA(data, nc)
		var e float64
		for i := 0; i < data.Rows; i++ {
			rec := p.Reconstruct(p.Project(data.Row(i)))
			e += float64(mathx.SquaredL2(data.Row(i), rec))
		}
		return e
	}
	e2, e6, e12 := errAt(2), errAt(6), errAt(12)
	if !(e2 >= e6 && e6 >= e12) {
		t.Fatalf("PCA error not monotone: %v %v %v", e2, e6, e12)
	}
	if e12 > 1e-3*float64(data.Rows) {
		t.Fatalf("full-rank PCA should reconstruct near-exactly, err=%v", e12)
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	data, _ := clusteredData(200, 8, 3, 18)
	p := TrainPCA(data, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dot := mathx.Dot(p.Components.Row(i), p.Components.Row(j))
			want := float32(0)
			if i == j {
				want = 1
			}
			if math.Abs(float64(dot-want)) > 1e-3 {
				t.Fatalf("components not orthonormal: <%d,%d> = %v", i, j, dot)
			}
		}
	}
}

func TestPCAProjectDim(t *testing.T) {
	data, _ := clusteredData(50, 6, 2, 19)
	p := TrainPCA(data, 3)
	if got := len(p.Project(data.Row(0))); got != 3 {
		t.Fatalf("projected dim = %d", got)
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// Symmetric matrix with known eigenvalues {3, 1}: [[2,1],[1,2]].
	vals, vecs := jacobiEigen([][]float64{{2, 1}, {1, 2}})
	got := []float64{vals[0], vals[1]}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-3) > 1e-9 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Eigenvector columns must be unit length.
	for c := 0; c < 2; c++ {
		n := vecs[0][c]*vecs[0][c] + vecs[1][c]*vecs[1][c]
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("eigenvector %d not unit: %v", c, n)
		}
	}
}
