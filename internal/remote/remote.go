// Package remote simulates the remote lookup services of Table V — the
// Wikidata API endpoint and the SearX metasearch engine. A real benchmark
// cannot hammer those services (and this environment is offline), so the
// dominant cost of remote lookup — per-request network latency under a
// parallelism cap (Wikidata allows five parallel queries per IP) — is
// accounted on a virtual clock instead of being slept. The result semantics
// come from local indexes that, like the real services, know the full alias
// set of every entity.
package remote

import (
	"sync/atomic"
	"time"

	"emblookup/internal/lookup"
)

// Config describes one simulated endpoint.
type Config struct {
	// Latency is the round-trip cost of one request.
	Latency time.Duration
	// MaxParallel is the endpoint's per-client parallelism cap.
	MaxParallel int
}

// WikidataAPIConfig models the Wikidata search endpoint: moderate latency,
// five parallel queries per IP (the limit the paper cites).
func WikidataAPIConfig() Config {
	return Config{Latency: 80 * time.Millisecond, MaxParallel: 5}
}

// SearXConfig models a metasearch engine that fans out to ~70 engines:
// higher latency, modest parallelism.
func SearXConfig() Config {
	return Config{Latency: 250 * time.Millisecond, MaxParallel: 4}
}

// Service wraps a result backend with virtual latency accounting. It
// implements both lookup.Service and lookup.VirtualClock.
type Service struct {
	name     string
	backend  lookup.Service
	cfg      Config
	requests atomic.Int64
}

// New wraps backend as a simulated remote endpoint.
func New(name string, backend lookup.Service, cfg Config) *Service {
	if cfg.MaxParallel <= 0 {
		cfg.MaxParallel = 1
	}
	return &Service{name: name, backend: backend, cfg: cfg}
}

// Name implements lookup.Service.
func (s *Service) Name() string { return s.name }

// Lookup performs the backend lookup and charges one request of virtual
// latency.
func (s *Service) Lookup(q string, k int) []lookup.Candidate {
	s.requests.Add(1)
	return s.backend.Lookup(q, k)
}

// VirtualElapsed returns the simulated network time: with MaxParallel
// requests in flight, n requests take ceil(n/MaxParallel) round trips.
func (s *Service) VirtualElapsed() time.Duration {
	n := s.requests.Load()
	if n == 0 {
		return 0
	}
	rounds := (n + int64(s.cfg.MaxParallel) - 1) / int64(s.cfg.MaxParallel)
	return time.Duration(rounds) * s.cfg.Latency
}

// ResetVirtual clears the request counter.
func (s *Service) ResetVirtual() { s.requests.Store(0) }

// Requests returns how many lookups were issued since the last reset.
func (s *Service) Requests() int64 { return s.requests.Load() }
