// Package remote simulates the remote lookup services of Table V — the
// Wikidata API endpoint and the SearX metasearch engine. A real benchmark
// cannot hammer those services (and this environment is offline), so the
// dominant cost of remote lookup — per-request network latency under a
// parallelism cap (Wikidata allows five parallel queries per IP) — is
// accounted on a virtual clock instead of being slept. The result semantics
// come from local indexes that, like the real services, know the full alias
// set of every entity.
//
// Request discipline is the cluster router's (internal/cluster): the same
// RetryPolicy drives retries against transient failures, and the
// parallelism-cap accounting lives in cluster.Gate — backoff between
// virtual attempts charges the virtual clock exactly where a live
// deployment would sleep, so simulated and real networking share one code
// path.
package remote

import (
	"errors"
	"sync/atomic"
	"time"

	"emblookup/internal/cluster"
	"emblookup/internal/lookup"
	"emblookup/internal/obs"
)

// Config describes one simulated endpoint.
type Config struct {
	// Latency is the round-trip cost of one request.
	Latency time.Duration
	// MaxParallel is the endpoint's per-client parallelism cap.
	MaxParallel int
	// Retry is the client-side retry/backoff policy applied when the
	// endpoint fails a request (zero value = single attempt).
	Retry cluster.RetryPolicy
	// TransientFailures makes the endpoint drop its first N requests —
	// the rate-limit hiccups and 5xx bursts a real endpoint serves. Each
	// dropped request still costs a round trip and flows through Retry.
	TransientFailures int
}

// WikidataAPIConfig models the Wikidata search endpoint: moderate latency,
// five parallel queries per IP (the limit the paper cites).
func WikidataAPIConfig() Config {
	return Config{Latency: 80 * time.Millisecond, MaxParallel: 5}
}

// SearXConfig models a metasearch engine that fans out to ~70 engines:
// higher latency, modest parallelism.
func SearXConfig() Config {
	return Config{Latency: 250 * time.Millisecond, MaxParallel: 4}
}

// errTransient is the simulated endpoint's failure mode.
var errTransient = errors.New("remote: simulated transient failure")

// Service wraps a result backend with virtual latency accounting. It
// implements both lookup.Service and lookup.VirtualClock.
type Service struct {
	name    string
	backend lookup.Service
	cfg     Config
	gate    *cluster.Gate
	dropped atomic.Int64

	// Process-wide counters labeled by service name; simulated services
	// surface on /metrics like any live dependency would.
	reqTotal  *obs.Counter
	failTotal *obs.Counter
}

// New wraps backend as a simulated remote endpoint.
func New(name string, backend lookup.Service, cfg Config) *Service {
	if cfg.MaxParallel <= 0 {
		cfg.MaxParallel = 1
	}
	return &Service{
		name:      name,
		backend:   backend,
		cfg:       cfg,
		gate:      cluster.NewGate(cfg.MaxParallel, cfg.Latency),
		reqTotal:  obs.Default().Counter(obs.Labels("emblookup_remote_requests_total", "service", name)),
		failTotal: obs.Default().Counter(obs.Labels("emblookup_remote_failures_total", "service", name)),
	}
}

// Name implements lookup.Service.
func (s *Service) Name() string { return s.name }

// Lookup performs the backend lookup under the shared request discipline:
// every attempt (including dropped ones) is admitted through the gate and
// charges a round trip; retry backoff charges the virtual clock through the
// same Sleeper seam a live client would sleep on.
func (s *Service) Lookup(q string, k int) []lookup.Candidate {
	var res []lookup.Candidate
	// Ignore the final error: a service that exhausts its retry budget
	// returns no candidates, which is what a downstream annotation system
	// sees from a dead endpoint.
	_ = s.cfg.Retry.Do(s.gate, func(int) error {
		s.gate.Admit()
		s.reqTotal.Inc()
		if s.dropped.Add(1) <= int64(s.cfg.TransientFailures) {
			s.failTotal.Inc()
			return errTransient
		}
		res = s.backend.Lookup(q, k)
		return nil
	})
	return res
}

// VirtualElapsed returns the simulated network time: with MaxParallel
// requests in flight, n requests take ceil(n/MaxParallel) round trips, plus
// any retry backoff charged by the shared policy.
func (s *Service) VirtualElapsed() time.Duration { return s.gate.Elapsed() }

// ResetVirtual clears the request counter and charged backoff.
func (s *Service) ResetVirtual() { s.gate.Reset() }

// Requests returns how many requests were issued since the last reset.
func (s *Service) Requests() int64 { return s.gate.Requests() }
