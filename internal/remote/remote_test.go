package remote

import (
	"testing"
	"time"

	"emblookup/internal/baselines"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
)

func backend() lookup.Service {
	c := &lookup.Corpus{Mentions: []lookup.Mention{
		{Text: "Germany", Entity: 1},
		{Text: "France", Entity: 2},
	}}
	return baselines.NewExact(c)
}

func TestVirtualLatencyAccounting(t *testing.T) {
	s := New("wikidata-api", backend(), Config{Latency: 100 * time.Millisecond, MaxParallel: 5})
	for i := 0; i < 10; i++ {
		s.Lookup("Germany", 5)
	}
	// 10 requests at 5 parallel = 2 rounds of 100ms.
	if got := s.VirtualElapsed(); got != 200*time.Millisecond {
		t.Fatalf("VirtualElapsed = %v, want 200ms", got)
	}
	if s.Requests() != 10 {
		t.Fatalf("Requests = %d", s.Requests())
	}
	s.ResetVirtual()
	if s.VirtualElapsed() != 0 {
		t.Fatal("reset did not clear virtual time")
	}
}

func TestVirtualElapsedZeroRequests(t *testing.T) {
	s := New("x", backend(), WikidataAPIConfig())
	if s.VirtualElapsed() != 0 {
		t.Fatal("no requests should mean zero virtual time")
	}
}

func TestResultsPassThrough(t *testing.T) {
	s := New("x", backend(), WikidataAPIConfig())
	res := s.Lookup("Germany", 5)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("passthrough results wrong: %+v", res)
	}
}

func TestMaxParallelDefaults(t *testing.T) {
	s := New("x", backend(), Config{Latency: time.Millisecond})
	s.Lookup("Germany", 1)
	if s.VirtualElapsed() != time.Millisecond {
		t.Fatalf("MaxParallel 0 should default to 1: %v", s.VirtualElapsed())
	}
}

func TestTotalDurationCombinesClocks(t *testing.T) {
	s := New("x", backend(), Config{Latency: 50 * time.Millisecond, MaxParallel: 1})
	s.Lookup("Germany", 1)
	total := lookup.TotalDuration(s, 10*time.Millisecond)
	if total != 60*time.Millisecond {
		t.Fatalf("TotalDuration = %v", total)
	}
	// A plain local service contributes no virtual time.
	local := backend()
	if lookup.TotalDuration(local, 10*time.Millisecond) != 10*time.Millisecond {
		t.Fatal("local service should add nothing")
	}
}

func TestSearXSlowerThanWikidata(t *testing.T) {
	w := WikidataAPIConfig()
	x := SearXConfig()
	if x.Latency <= w.Latency {
		t.Fatal("SearX should model higher latency")
	}
}

func TestRemoteKnowsAliases(t *testing.T) {
	// A remote endpoint indexes the full alias set, unlike the local
	// baselines' label-only corpora — that asymmetry drives Table VI.
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
	full := lookup.CorpusFromGraph(g, true)
	s := New("wikidata-api", baselines.NewExact(full), WikidataAPIConfig())
	var target *kg.Entity
	for i := range g.Entities {
		if len(g.Entities[i].Aliases) > 0 {
			target = &g.Entities[i]
			break
		}
	}
	if target == nil {
		t.Fatal("no aliased entity")
	}
	res := s.Lookup(target.Aliases[0], 10)
	found := false
	for _, r := range res {
		if r.ID == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("remote service should resolve alias %q", target.Aliases[0])
	}
}
