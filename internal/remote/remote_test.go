package remote

import (
	"testing"
	"time"

	"emblookup/internal/baselines"
	"emblookup/internal/cluster"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
)

func backend() lookup.Service {
	c := &lookup.Corpus{Mentions: []lookup.Mention{
		{Text: "Germany", Entity: 1},
		{Text: "France", Entity: 2},
	}}
	return baselines.NewExact(c)
}

func TestVirtualLatencyAccounting(t *testing.T) {
	s := New("wikidata-api", backend(), Config{Latency: 100 * time.Millisecond, MaxParallel: 5})
	for i := 0; i < 10; i++ {
		s.Lookup("Germany", 5)
	}
	// 10 requests at 5 parallel = 2 rounds of 100ms.
	if got := s.VirtualElapsed(); got != 200*time.Millisecond {
		t.Fatalf("VirtualElapsed = %v, want 200ms", got)
	}
	if s.Requests() != 10 {
		t.Fatalf("Requests = %d", s.Requests())
	}
	s.ResetVirtual()
	if s.VirtualElapsed() != 0 {
		t.Fatal("reset did not clear virtual time")
	}
}

func TestVirtualElapsedZeroRequests(t *testing.T) {
	s := New("x", backend(), WikidataAPIConfig())
	if s.VirtualElapsed() != 0 {
		t.Fatal("no requests should mean zero virtual time")
	}
}

func TestResultsPassThrough(t *testing.T) {
	s := New("x", backend(), WikidataAPIConfig())
	res := s.Lookup("Germany", 5)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("passthrough results wrong: %+v", res)
	}
}

func TestMaxParallelDefaults(t *testing.T) {
	s := New("x", backend(), Config{Latency: time.Millisecond})
	s.Lookup("Germany", 1)
	if s.VirtualElapsed() != time.Millisecond {
		t.Fatalf("MaxParallel 0 should default to 1: %v", s.VirtualElapsed())
	}
}

func TestTotalDurationCombinesClocks(t *testing.T) {
	s := New("x", backend(), Config{Latency: 50 * time.Millisecond, MaxParallel: 1})
	s.Lookup("Germany", 1)
	total := lookup.TotalDuration(s, 10*time.Millisecond)
	if total != 60*time.Millisecond {
		t.Fatalf("TotalDuration = %v", total)
	}
	// A plain local service contributes no virtual time.
	local := backend()
	if lookup.TotalDuration(local, 10*time.Millisecond) != 10*time.Millisecond {
		t.Fatal("local service should add nothing")
	}
}

// TestRetryChargesVirtualBackoff pins the shared request discipline: a
// transient failure burns a request (one round trip each, serialized at
// MaxParallel 1) and the retry backoff is charged to the virtual clock
// through the same cluster.RetryPolicy code path live networking uses.
func TestRetryChargesVirtualBackoff(t *testing.T) {
	s := New("flaky", backend(), Config{
		Latency:           100 * time.Millisecond,
		MaxParallel:       1,
		TransientFailures: 2,
		Retry:             cluster.RetryPolicy{Attempts: 3, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second},
	})
	res := s.Lookup("Germany", 5)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("retried lookup lost results: %+v", res)
	}
	if s.Requests() != 3 {
		t.Fatalf("Requests = %d, want 3 (2 failures + 1 success)", s.Requests())
	}
	// 3 serialized round trips (300ms) + backoff 10ms and 20ms.
	if got := s.VirtualElapsed(); got != 330*time.Millisecond {
		t.Fatalf("VirtualElapsed = %v, want 330ms", got)
	}
}

// TestRetryBudgetExhausted: an endpoint that stays down yields no
// candidates, but every attempt and its backoff still cost virtual time.
func TestRetryBudgetExhausted(t *testing.T) {
	s := New("dead", backend(), Config{
		Latency:           100 * time.Millisecond,
		MaxParallel:       1,
		TransientFailures: 10,
		Retry:             cluster.RetryPolicy{Attempts: 2, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second},
	})
	if res := s.Lookup("Germany", 5); len(res) != 0 {
		t.Fatalf("dead endpoint returned results: %+v", res)
	}
	if got := s.VirtualElapsed(); got != 210*time.Millisecond {
		t.Fatalf("VirtualElapsed = %v, want 210ms (2 round trips + 10ms backoff)", got)
	}
}

func TestSearXSlowerThanWikidata(t *testing.T) {
	w := WikidataAPIConfig()
	x := SearXConfig()
	if x.Latency <= w.Latency {
		t.Fatal("SearX should model higher latency")
	}
}

func TestRemoteKnowsAliases(t *testing.T) {
	// A remote endpoint indexes the full alias set, unlike the local
	// baselines' label-only corpora — that asymmetry drives Table VI.
	g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
	full := lookup.CorpusFromGraph(g, true)
	s := New("wikidata-api", baselines.NewExact(full), WikidataAPIConfig())
	var target *kg.Entity
	for i := range g.Entities {
		if len(g.Entities[i].Aliases) > 0 {
			target = &g.Entities[i]
			break
		}
	}
	if target == nil {
		t.Fatal("no aliased entity")
	}
	res := s.Lookup(target.Aliases[0], 10)
	found := false
	for _, r := range res {
		if r.ID == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("remote service should resolve alias %q", target.Aliases[0])
	}
}
