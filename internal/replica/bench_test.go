package replica

import (
	"fmt"
	"testing"

	"emblookup/internal/obs"
)

// BenchmarkReplicaLookup times the routed lookup through replicated local
// clusters: P=2 with one replica per partition (the PR-4 shape) against
// P=2 with a replica pair, so the per-lookup cost of replica selection —
// health filter plus EWMA scoring — shows up next to the plain scatter.
// The full replica scenarios (degraded-replica hedging, failover,
// rebalance under load) are snapshotted by `benchkg -bench-replica` into
// BENCH_replica.json and diffed by `make bench-compare`.
func BenchmarkReplicaLookup(b *testing.B) {
	g, m := testModel(b)
	qs := testQueries(g, 64)
	for _, shape := range []struct{ p, r int }{{2, 1}, {2, 2}} {
		b.Run(fmt.Sprintf("P%dR%d", shape.p, shape.r), func(b *testing.B) {
			opts := fastOptions()
			opts.Replicas = shape.r
			opts.Router.Registry = obs.New()
			c, err := Start(m, shape.p, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			c.Router.Lookup(qs[0], 10) // warm connections
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := c.Router.Lookup(qs[i%len(qs)], 10); r.Partial {
					b.Fatal("partial response from a fully healthy cluster")
				}
			}
		})
	}
}
