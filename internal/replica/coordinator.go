// Package replica is the replication and rebalancing control plane over
// the scatter-gather cluster (DESIGN.md §14): a coordinator that owns the
// versioned partition→replica-set assignment, pollers that gossip it to
// routers, and a local harness that runs replicated clusters through live
// partition moves and rolling restarts with zero dropped queries.
//
// The division of labor: internal/cluster is the data plane (a router
// serves whatever map it holds, drains the old assignment on a swap, and
// keeps per-URL health/latency history); this package is the control plane
// (who serves what, and the choreography — drain, stop, restart, replay,
// rejoin — that moves a cluster between assignments while it serves).
package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"emblookup/internal/cluster"
)

// Coordinator owns the cluster map and its epoch counter. Every change
// goes through Publish, which bumps the epoch — routers only ever move to
// strictly newer epochs, so however a map reaches a router (poll, direct
// apply, or both racing) the routing state converges forward.
type Coordinator struct {
	mu sync.Mutex
	m  cluster.Map
}

// NewCoordinator seeds the control plane with the cluster's first map.
func NewCoordinator(m cluster.Map) (*Coordinator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Coordinator{m: m.Clone()}, nil
}

// Map returns the currently published map.
func (c *Coordinator) Map() cluster.Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Clone()
}

// Epoch returns the current map epoch.
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Epoch
}

// Publish validates and installs a new assignment at the next epoch and
// returns the published map. totalRows and bounds pin the row split the
// assignment serves (they change on a rebalance, not on a membership
// change).
func (c *Coordinator) Publish(replicas [][]string, totalRows int, bounds []int) (cluster.Map, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := cluster.Map{
		Epoch:     c.m.Epoch + 1,
		TotalRows: totalRows,
		Bounds:    append([]int(nil), bounds...),
		Replicas:  make([][]string, len(replicas)),
	}
	for i, urls := range replicas {
		m.Replicas[i] = append([]string(nil), urls...)
	}
	if err := m.Validate(); err != nil {
		return cluster.Map{}, err
	}
	c.m = m
	return m.Clone(), nil
}

// Install adopts a map a control plane already applied out-of-band (e.g.
// directly to a co-located router) so gossip observers converge to it.
// The epoch must move strictly forward.
func (c *Coordinator) Install(m cluster.Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Epoch <= c.m.Epoch {
		return fmt.Errorf("replica: installing epoch %d over %d", m.Epoch, c.m.Epoch)
	}
	c.m = m.Clone()
	return nil
}

// Handler serves the map to polling routers: GET /cluster/map returns the
// current assignment as JSON.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/map", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Map())
	})
	return mux
}

// FetchMap retrieves a coordinator's current map over HTTP — what a router
// process does at startup and on every poll tick.
func FetchMap(ctx context.Context, client *http.Client, mapURL string) (cluster.Map, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, mapURL, nil)
	if err != nil {
		return cluster.Map{}, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return cluster.Map{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return cluster.Map{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return cluster.Map{}, fmt.Errorf("replica: %s returned %s", mapURL, resp.Status)
	}
	var m cluster.Map
	if err := json.Unmarshal(body, &m); err != nil {
		return cluster.Map{}, fmt.Errorf("replica: decoding map from %s: %w", mapURL, err)
	}
	if err := m.Validate(); err != nil {
		return cluster.Map{}, err
	}
	return m, nil
}

// Poller gossips the coordinator's map to one router by polling
// GET /cluster/map and applying any strictly newer epoch. Polling is the
// fallback propagation path — a control plane co-located with the router
// (the local harness, `emblookup serve -replicas`) applies maps directly
// and the poller's redundant apply of the same epoch is rejected as stale,
// which is the point: epochs make the two paths commute.
type Poller struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartPoller begins polling mapURL every interval (≤0 = 1s), steering r.
func StartPoller(r *cluster.Router, mapURL string, interval time.Duration) *Poller {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Poller{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		client := &http.Client{Timeout: 2 * interval}
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				m, err := FetchMap(context.Background(), client, mapURL)
				if err != nil || m.Epoch <= r.Epoch() {
					continue
				}
				// A concurrent direct apply can win the race; "not newer"
				// (cluster.ErrStaleEpoch) is success by another path, not a
				// poller failure.
				r.ApplyMap(m)
			}
		}
	}()
	return p
}

// Close stops the poller and waits for its goroutine to exit.
func (p *Poller) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}
