package replica

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"emblookup/internal/cluster"
	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/server"
)

// Options configures a replicated in-process cluster.
type Options struct {
	// Replicas is R, the replica count per partition (≤0 = 1).
	Replicas int
	// Router tunes the data plane.
	Router cluster.RouterOptions
	// Dir is where partition artifacts are written (empty = a fresh temp
	// directory, removed on Close).
	Dir string
	// MaxDelta bounds each node's dynamic delta index (≤0 = 4096 rows).
	MaxDelta int
	// Queue bounds each node's ingest buffer (≤0 = 256).
	Queue int
	// PollInterval is the router's map-gossip poll period (≤0 = 250ms).
	// The harness also applies maps directly after publishing — the poller
	// is the convergence backstop and the proof the gossip path works.
	PollInterval time.Duration
	// Wrap, when set, wraps node (partition, replica)'s HTTP handler — the
	// fault-injection hook of the tests and benchmarks.
	Wrap func(partition, replica int, h http.Handler) http.Handler
}

func (o *Options) fill() {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.MaxDelta <= 0 {
		o.MaxDelta = 4096
	}
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 250 * time.Millisecond
	}
}

// Node is one running replica: partition p's artifact mmap-attached under a
// dynamic delta index, with its own graph copy and ingest worker, served
// over loopback HTTP. Replicas of one partition are fully independent
// processes-in-miniature — they share no state, only the artifact file.
type Node struct {
	Partition int
	Replica   int
	URL       string

	model  *core.EmbLookup
	ingest *core.Ingestor
	srv    *server.Server
	hsrv   *http.Server
	killed bool
}

// Cluster is a replicated local cluster: P×R nodes, a coordinator serving
// the map, a poller gossiping it, and a router over it all. It is the
// substrate of the rolling-restart and rebalance tests and of
// `emblookup serve -cluster P -replicas R`.
type Cluster struct {
	Router   *cluster.Router
	Coord    *Coordinator
	Manifest cluster.Manifest
	// MapURL is the coordinator's gossip endpoint (GET returns the map).
	MapURL string

	opts    Options
	graph   *kg.Graph       // pristine base graph; every node clones it
	full    *core.EmbLookup // full model, kept for rebalance re-splits
	dir     string
	nodeDir string // directory of the artifacts current nodes loaded
	ownDir  bool
	poller  *Poller
	coordLn net.Listener
	crdSrv  *http.Server
	nodes   [][]*Node // [partition][replica]
}

// Start saves model's P-way partition artifacts, boots R replicas per
// partition (each mmap-attaching its slice), publishes epoch 1, and wires a
// router over the set. The router gets its own graph copy, so routed
// ingest can grow it without racing the nodes' graphs.
func Start(model *core.EmbLookup, partitions int, opts Options) (*Cluster, error) {
	opts.fill()
	c := &Cluster{opts: opts, graph: model.Graph(), full: model}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "emblookup-replica-")
		if err != nil {
			return nil, err
		}
		c.dir, c.ownDir = dir, true
	} else {
		c.dir = opts.Dir
	}
	c.nodeDir = filepath.Join(c.dir, "split-0")
	man, err := cluster.SavePartitions(c.nodeDir, model, partitions)
	if err != nil {
		c.cleanup()
		return nil, err
	}
	c.Manifest = man

	c.nodes = make([][]*Node, man.Partitions)
	for p := 0; p < man.Partitions; p++ {
		for j := 0; j < opts.Replicas; j++ {
			n, err := c.startNode(c.nodeDir, man, p, j, 1)
			if err != nil {
				c.cleanup()
				return nil, err
			}
			c.nodes[p] = append(c.nodes[p], n)
		}
	}

	m := cluster.Map{Epoch: 1, TotalRows: man.TotalRows, Bounds: man.Bounds, Replicas: c.urls()}
	c.Coord, err = NewCoordinator(m)
	if err != nil {
		c.cleanup()
		return nil, err
	}
	c.coordLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.cleanup()
		return nil, err
	}
	c.crdSrv = server.NewHTTPServer("", c.Coord.Handler())
	go c.crdSrv.Serve(c.coordLn)
	c.MapURL = "http://" + c.coordLn.Addr().String() + "/cluster/map"

	rmodel := model.WithGraph(model.Graph().Clone())
	rt, err := cluster.NewRouterWithMap(rmodel, m, opts.Router)
	if err != nil {
		c.cleanup()
		return nil, err
	}
	c.Router = rt
	c.poller = StartPoller(rt, c.MapURL, opts.PollInterval)
	return c, nil
}

// startNode boots one replica of partition p from the artifacts in dir.
func (c *Cluster) startNode(dir string, man cluster.Manifest, p, j int, epoch int64) (*Node, error) {
	g := c.graph.Clone()
	m, _, err := cluster.LoadNodeModel(dir, p, g)
	if err != nil {
		return nil, err
	}
	dm := m.WithDynamicIndex(c.opts.MaxDelta)
	ing, err := dm.NewIngestor(c.opts.Queue)
	if err != nil {
		m.Close()
		return nil, err
	}
	info := server.PartitionInfo{ID: p, Count: man.Partitions, RowLo: man.Bounds[p], RowHi: man.Bounds[p+1]}
	s := server.New(g, dm, server.WithPartition(info), server.WithIngest(ing))
	s.SetEpoch(epoch)
	h := http.Handler(s.Handler())
	if c.opts.Wrap != nil {
		h = c.opts.Wrap(p, j, h)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ing.Close()
		m.Close()
		return nil, fmt.Errorf("replica: listening for node %d/%d: %w", p, j, err)
	}
	hsrv := server.NewHTTPServer("", h)
	go hsrv.Serve(ln)
	return &Node{
		Partition: p, Replica: j,
		URL:   "http://" + ln.Addr().String(),
		model: dm, ingest: ing, srv: s, hsrv: hsrv,
	}, nil
}

// stopNode tears one replica down: listener, ingest worker, mmap. Callers
// must have drained router traffic off the node first (ApplyMap of a map
// without it); the graceful Shutdown then waits out handlers the drain
// cannot see — hedge losers and canceled attempts whose clients already
// gave up but whose goroutines are still mid-search — before the mmap
// goes away under them. A node already severed by KillReplica has no
// tracked connections left, so Shutdown returns immediately.
func (n *Node) stop() {
	if n.hsrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		n.hsrv.Shutdown(ctx)
		cancel()
		n.hsrv.Close()
	}
	if n.ingest != nil {
		n.ingest.Close()
	}
	if n.model != nil {
		n.model.Close()
	}
}

// urls snapshots the current assignment as Replicas-shaped URL lists.
func (c *Cluster) urls() [][]string {
	out := make([][]string, len(c.nodes))
	for p, reps := range c.nodes {
		for _, n := range reps {
			out[p] = append(out[p], n.URL)
		}
	}
	return out
}

// setEpochs pushes the published epoch into every live node's /healthz.
func (c *Cluster) setEpochs(e int64) {
	for _, reps := range c.nodes {
		for _, n := range reps {
			if !n.killed {
				n.srv.SetEpoch(e)
			}
		}
	}
}

// publish installs the current membership at the next epoch: directly into
// the router first — ApplyMap returns only after queries on the old
// assignment drained — then into the coordinator for gossip observers.
// Router-first closes the race with the harness's own poller: were the
// coordinator updated first, the poller could apply the epoch concurrently
// and this call could return before that apply's drain finished.
func (c *Cluster) publish() error {
	m := cluster.Map{
		Epoch:     c.Coord.Epoch() + 1,
		TotalRows: c.Manifest.TotalRows,
		Bounds:    c.Manifest.Bounds,
		Replicas:  c.urls(),
	}
	if err := c.Router.ApplyMap(m); err != nil {
		return err
	}
	if err := c.Coord.Install(m); err != nil {
		return err
	}
	c.setEpochs(m.Epoch)
	return nil
}

// NodeURL returns replica j of partition p's base URL.
func (c *Cluster) NodeURL(p, j int) string { return c.nodes[p][j].URL }

// owner returns the partition routed ingest lands on — the last one, whose
// row range ends at TotalRows, so delta rows get the same global ids the
// single-process dynamic index assigns.
func (c *Cluster) owner() int { return len(c.nodes) - 1 }

// replay catches a fresh node up from the router's ingest log, in original
// order. Called under the router's ingest lock, so no batch can slip in
// between the replay and the map publish that readmits the node.
func (n *Node) replay(log []core.IngestItem) error {
	for _, it := range log {
		if err := n.ingest.Enqueue(it); err != nil {
			return err
		}
	}
	n.ingest.Flush()
	return nil
}

// KillReplica severs replica j of partition p — the listener dies
// mid-flight, exactly like a crashed process — without touching the map.
// The router's health machinery must absorb it: mark down, fail over to the
// surviving replicas, readmit nothing until a probe passes (it won't — the
// node is gone until RestartReplica).
func (c *Cluster) KillReplica(p, j int) {
	n := c.nodes[p][j]
	if !n.killed {
		n.hsrv.Close()
		n.killed = true
	}
}

// RestartReplica rolls one replica: drain it out of the map, stop it, boot
// a fresh node from the artifact, replay routed ingest onto it (owner
// partition only — other partitions never receive deltas), and publish it
// back in. Requires R ≥ 2 — with a lone replica the partition would have
// no coverage during the roll and queries would degrade to partial, which
// is exactly what the zero-dropped contract forbids.
func (c *Cluster) RestartReplica(p, j int) error {
	if len(c.nodes[p]) < 2 {
		return fmt.Errorf("replica: partition %d has %d replica(s); a zero-downtime roll needs at least 2", p, len(c.nodes[p]))
	}
	old := c.nodes[p][j]
	// 1. Publish the map without the node. ApplyMap returns after every
	// in-flight query on the old assignment finished, so nothing is dropped
	// when the node stops.
	c.nodes[p] = append(append([]*Node(nil), c.nodes[p][:j]...), c.nodes[p][j+1:]...)
	if err := c.publish(); err != nil {
		c.nodes[p] = insertNode(c.nodes[p], j, old)
		return err
	}
	// 2. Stop it — a real process exit: listener, worker, mmap all go.
	old.stop()
	// 3. Boot the replacement from the same artifact (fresh URL, fresh
	// delta index, fresh graph clone).
	fresh, err := c.startNode(c.nodeDir, c.Manifest, p, j, c.Coord.Epoch())
	if err != nil {
		return err
	}
	// 4. Catch up and rejoin atomically with respect to routed ingest: the
	// lock closes the window where a batch lands after the replay but
	// before the node is in the map (it would miss the fan-out).
	var perr error
	c.Router.WithIngestLock(func(log []core.IngestItem) {
		if p == c.owner() {
			if perr = fresh.replay(log); perr != nil {
				return
			}
		}
		c.nodes[p] = insertNode(c.nodes[p], j, fresh)
		perr = c.publish()
	})
	return perr
}

func insertNode(reps []*Node, j int, n *Node) []*Node {
	out := append([]*Node(nil), reps[:j]...)
	out = append(out, n)
	return append(out, reps[j:]...)
}

// RollingRestart restarts every node of the cluster in sequence — the
// zero-downtime deploy. Under concurrent traffic no query is dropped and
// none turns partial: each roll drains the node out of the assignment
// before stopping it, and readmits it only caught-up.
func (c *Cluster) RollingRestart() error {
	for p := range c.nodes {
		for j := range c.nodes[p] {
			if err := c.RestartReplica(p, j); err != nil {
				return fmt.Errorf("replica: rolling restart at node %d/%d: %w", p, j, err)
			}
		}
	}
	return nil
}

// Rebalance moves the cluster to a new partition count live: re-split the
// model's artifacts P'-ways, boot a full fresh node set over them, replay
// routed ingest onto the new owner set, publish the new assignment — new
// queries land on the new split immediately, in-flight queries drain on the
// old one — and only then stop the old nodes. Both splits cover the exact
// same rows, so results are bit-identical across the move.
func (c *Cluster) Rebalance(partitions int) error {
	dir := filepath.Join(c.dir, fmt.Sprintf("split-%d", c.Coord.Epoch()))
	man, err := cluster.SavePartitions(dir, c.full, partitions)
	if err != nil {
		return err
	}
	fresh := make([][]*Node, man.Partitions)
	for p := 0; p < man.Partitions; p++ {
		for j := 0; j < c.opts.Replicas; j++ {
			n, err := c.startNode(dir, man, p, j, c.Coord.Epoch())
			if err != nil {
				for _, reps := range fresh {
					for _, fn := range reps {
						fn.stop()
					}
				}
				return err
			}
			fresh[p] = append(fresh[p], n)
		}
	}
	oldNodes := c.nodes
	var perr error
	c.Router.WithIngestLock(func(log []core.IngestItem) {
		for _, n := range fresh[len(fresh)-1] {
			if perr = n.replay(log); perr != nil {
				return
			}
		}
		c.nodes = fresh
		c.nodeDir = dir
		c.Manifest = man
		perr = c.publish()
	})
	if perr != nil {
		for _, reps := range fresh {
			for _, n := range reps {
				n.stop()
			}
		}
		c.nodes = oldNodes
		return perr
	}
	for _, reps := range oldNodes {
		for _, n := range reps {
			n.stop()
		}
	}
	return nil
}

// Close stops the poller, router, coordinator, and every node; a temp
// artifact directory is removed.
func (c *Cluster) Close() {
	if c.poller != nil {
		c.poller.Close()
	}
	if c.Router != nil {
		c.Router.Close()
	}
	c.cleanup()
}

func (c *Cluster) cleanup() {
	if c.crdSrv != nil {
		c.crdSrv.Close()
	}
	for _, reps := range c.nodes {
		for _, n := range reps {
			n.stop()
		}
	}
	if c.ownDir {
		os.RemoveAll(c.dir)
	}
}
