package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"emblookup/internal/cluster"
	"emblookup/internal/core"
	"emblookup/internal/kg"
	"emblookup/internal/lookup"
	"emblookup/internal/server"
)

var (
	once   sync.Once
	tGr    *kg.Graph
	tModel *core.EmbLookup
	tErr   error
)

// testModel trains one small model for the whole package. Tests never
// mutate it or its graph — anything that ingests works on clones.
func testModel(t testing.TB) (*kg.Graph, *core.EmbLookup) {
	t.Helper()
	once.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 200))
		cfg := core.FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 8
		m, err := core.Train(g, cfg)
		if err != nil {
			tErr = err
			return
		}
		tGr, tModel = g, m
	})
	if tErr != nil {
		t.Fatal(tErr)
	}
	return tGr, tModel
}

func fastOptions() Options {
	return Options{
		Router: cluster.RouterOptions{
			Timeout:       5 * time.Second,
			Retry:         cluster.RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
			HedgeAfter:    -1,
			FailThreshold: 1,
			ProbeInterval: 10 * time.Millisecond,
			ProbeTimeout:  time.Second,
		},
		PollInterval: 20 * time.Millisecond,
	}
}

func sameCandidates(t *testing.T, ctx string, want, got []lookup.Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d candidates", ctx, len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			t.Fatalf("%s: candidate %d diverges: %+v vs %+v", ctx, i, want[i], got[i])
		}
	}
}

func testQueries(g *kg.Graph, n int) []string {
	qs := []string{}
	for i := 0; i < n && i < len(g.Entities); i++ {
		qs = append(qs, g.Entities[i].Label)
	}
	return qs
}

// TestReplicatedBitIdentical is the tentpole property extended to replica
// sets: for P ∈ {1, 2, 4} × R ∈ {1, 2, 3}, a replicated cluster returns
// bit-identical candidates to the single-process model — replication is
// invisible to results.
func TestReplicatedBitIdentical(t *testing.T) {
	g, m := testModel(t)
	queries := testQueries(g, 10)
	for _, p := range []int{1, 2, 4} {
		for _, r := range []int{1, 2, 3} {
			opts := fastOptions()
			opts.Replicas = r
			c, err := Start(m, p, opts)
			if err != nil {
				t.Fatalf("P=%d R=%d: %v", p, r, err)
			}
			for _, k := range []int{1, 10} {
				for _, q := range queries {
					want := m.Lookup(q, k)
					got := c.Router.Lookup(q, k)
					if got.Partial || len(got.Failed) != 0 {
						t.Fatalf("P=%d R=%d q=%q: unexpected degradation: %+v", p, r, q, got)
					}
					sameCandidates(t, fmt.Sprintf("P=%d R=%d k=%d q=%q", p, r, k, q), want, got.Candidates)
				}
			}
			c.Close()
		}
	}
}

// TestReplicaFailover kills one replica of every partition under concurrent
// traffic and requires zero degradation: every response stays full
// (partial: false) and bit-identical — surviving replicas absorb the loss
// invisibly. Run under -race this doubles as the health-machinery race test.
func TestReplicaFailover(t *testing.T) {
	g, m := testModel(t)
	const p, r = 2, 2
	opts := fastOptions()
	opts.Replicas = r
	c, err := Start(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := testQueries(g, 8)
	const k = 5
	wants := make([][]lookup.Candidate, len(queries))
	for i, q := range queries {
		wants[i] = m.Lookup(q, k)
	}

	for pi := 0; pi < p; pi++ {
		c.KillReplica(pi, 0)
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				for i, q := range queries {
					res := c.Router.Lookup(q, k)
					if res.Partial || len(res.Failed) != 0 {
						failures.Add(1)
						return
					}
					for j := range wants[i] {
						if res.Candidates[j].ID != wants[i][j].ID || res.Candidates[j].Score != wants[i][j].Score {
							failures.Add(1)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d responses degraded or diverged with one replica down per partition", failures.Load())
	}
	st := c.Router.Stats()
	if st.HealthyPartitions != p {
		t.Fatalf("HealthyPartitions = %d, want %d", st.HealthyPartitions, p)
	}
	if st.Healthy != p*(r-1) {
		t.Fatalf("Healthy = %d, want %d (one dead replica per partition)", st.Healthy, p*(r-1))
	}
}

// TestReplicaDistinctHedge pins the tail-latency win replication buys: when
// a replica straggles, the hedged duplicate goes to a *different* replica
// and wins — the straggler is not its own insurance.
func TestReplicaDistinctHedge(t *testing.T) {
	g, m := testModel(t)
	var firstSearch atomic.Int64
	opts := fastOptions()
	opts.Replicas = 2
	opts.Router.HedgeAfter = 10 * time.Millisecond
	opts.Router.Retry = cluster.RetryPolicy{Attempts: 1}
	opts.Wrap = func(p, j int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Replica 0's first search stalls well past the hedge delay.
			if j == 0 && r.URL.Path == "/partition/search" && firstSearch.Add(1) == 1 {
				time.Sleep(300 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	}
	c, err := Start(m, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := g.Entities[1].Label
	res := c.Router.Lookup(q, 5)
	if res.Partial {
		t.Fatalf("hedged lookup went partial: %+v", res.Failed)
	}
	sameCandidates(t, "hedged", m.Lookup(q, 5), res.Candidates)
	st := c.Router.Stats()
	if st.Nodes[0].Hedges == 0 {
		t.Fatalf("straggling primary not hedged: %+v", st.Nodes)
	}
	if st.Nodes[1].HedgeWins == 0 {
		t.Fatalf("hedge win not credited to the distinct replica: %+v", st.Nodes)
	}
}

func ingestItems() []core.IngestItem {
	return []core.IngestItem{
		{NewEntity: true, Label: "Zorblatt Industries", Aliases: []string{"Zorblatt"}},
		{NewEntity: true, Label: "Quuxium Refinery"},
		{NewEntity: true, Label: "Vexatron Dynamics", Aliases: []string{"Vexatron", "VXD"}},
	}
}

// comparator builds the single-process ground truth for routed ingest: the
// full model with its own graph copy and a dynamic delta index, with the
// same items applied in the same order.
func comparator(t *testing.T, m *core.EmbLookup, items []core.IngestItem) *core.EmbLookup {
	t.Helper()
	cm := m.WithGraph(m.Graph().Clone()).WithDynamicIndex(4096)
	ing, err := cm.NewIngestor(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := ing.Enqueue(it); err != nil {
			t.Fatal(err)
		}
	}
	ing.Flush()
	if st := ing.Stats(); st.Failed != 0 || st.Applied != int64(len(items)) {
		t.Fatalf("comparator ingest: %+v", st)
	}
	return cm
}

func getHealthz(t *testing.T, url string) server.HealthzResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var hz server.HealthzResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz %s: %v (%q)", url, err, body)
	}
	return hz
}

// TestRoutedIngest routes deltas through the cluster front-end and checks
// the full read-your-writes story: the batch lands on the owning (last)
// partition's primary, fans to its replicas, and a lookup through the
// router returns the ingested entities bit-identically to the
// single-process dynamic model — global delta row ids and all.
func TestRoutedIngest(t *testing.T) {
	g, m := testModel(t)
	const p, r = 2, 2
	opts := fastOptions()
	opts.Replicas = r
	c, err := Start(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	items := ingestItems()
	if err := c.Router.Ingest(t.Context(), items, true); err != nil {
		t.Fatal(err)
	}
	cm := comparator(t, m, items)

	// Every replica of the owning partition applied the batch.
	owner := p - 1
	for j := 0; j < r; j++ {
		hz := getHealthz(t, c.NodeURL(owner, j))
		if hz.IngestApplied != int64(len(items)) {
			t.Fatalf("owner replica %d applied %d items, want %d", j, hz.IngestApplied, len(items))
		}
	}
	// Non-owning partitions never see deltas.
	if hz := getHealthz(t, c.NodeURL(0, 0)); hz.IngestApplied != 0 {
		t.Fatalf("non-owner partition applied %d deltas", hz.IngestApplied)
	}

	for _, it := range items {
		want := cm.Lookup(it.Label, 3)
		got := c.Router.Lookup(it.Label, 3)
		if got.Partial {
			t.Fatalf("ingested lookup partial: %+v", got.Failed)
		}
		sameCandidates(t, fmt.Sprintf("ingested q=%q", it.Label), want, got.Candidates)
		if len(got.Candidates) == 0 {
			t.Fatalf("ingested entity %q not found", it.Label)
		}
		// The router resolves the ingested entity's label from its own
		// grown graph copy.
		id := got.Candidates[0].ID
		if lbl := cm.Graph().Label(id); lbl != it.Label {
			t.Fatalf("ingested candidate resolves to %q, want %q", lbl, it.Label)
		}
	}

	// Pre-existing entities still answer bit-identically post-ingest.
	for _, q := range testQueries(g, 6) {
		sameCandidates(t, fmt.Sprintf("post-ingest q=%q", q), cm.Lookup(q, 5), c.Router.Lookup(q, 5).Candidates)
	}
}

// TestRollingRestart is the acceptance gate: restart every node of a 2P×2R
// cluster under continuous traffic — zero dropped queries, zero partial
// responses, bit-identical results at every point — and ingested entities
// stay visible on every replica of the owning partition afterwards.
func TestRollingRestart(t *testing.T) {
	g, m := testModel(t)
	const p, r = 2, 2
	opts := fastOptions()
	opts.Replicas = r
	c, err := Start(m, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	items := ingestItems()
	if err := c.Router.Ingest(t.Context(), items, true); err != nil {
		t.Fatal(err)
	}
	cm := comparator(t, m, items)

	queries := append(testQueries(g, 8), items[0].Label, items[2].Label)
	const k = 5
	wants := make([][]lookup.Candidate, len(queries))
	for i, q := range queries {
		wants[i] = cm.Lookup(q, k)
	}

	startEpoch := c.Router.Epoch()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sent, bad atomic.Int64
	var firstErr atomic.Value
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i = (i + 1) % len(queries) {
				select {
				case <-stop:
					return
				default:
				}
				res := c.Router.Lookup(queries[i], k)
				sent.Add(1)
				if res.Partial || len(res.Failed) != 0 {
					bad.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("q=%q partial=%v failed=%v", queries[i], res.Partial, res.Failed))
					return
				}
				if len(res.Candidates) != len(wants[i]) {
					bad.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("q=%q: %d vs %d candidates", queries[i], len(res.Candidates), len(wants[i])))
					return
				}
				for j := range wants[i] {
					if res.Candidates[j].ID != wants[i][j].ID || res.Candidates[j].Score != wants[i][j].Score {
						bad.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Sprintf("q=%q candidate %d: %+v vs %+v", queries[i], j, res.Candidates[j], wants[i][j]))
						return
					}
				}
			}
		}()
	}

	if err := c.RollingRestart(); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if bad.Load() != 0 {
		t.Fatalf("%d of %d responses dropped, partial, or diverged during the rolling restart: %v",
			bad.Load(), sent.Load(), firstErr.Load())
	}
	if sent.Load() == 0 {
		t.Fatal("no traffic flowed during the restart")
	}
	// Every node rolled: 2 epochs per restart (drain-out + rejoin), P×R nodes.
	if got := c.Router.Epoch(); got < startEpoch+2*int64(p*r) {
		t.Fatalf("epoch advanced to %d, want ≥ %d", got, startEpoch+2*int64(p*r))
	}

	// The restarted owner replicas were replayed: deltas visible on each.
	owner := p - 1
	for j := 0; j < r; j++ {
		hz := getHealthz(t, c.NodeURL(owner, j))
		if hz.IngestApplied != int64(len(items)) {
			t.Fatalf("restarted owner replica %d applied %d items, want %d", j, hz.IngestApplied, len(items))
		}
		if hz.Partition == nil || hz.Partition.ID != owner {
			t.Fatalf("restarted owner replica %d reports partition %+v", j, hz.Partition)
		}
	}
	for i, q := range queries {
		sameCandidates(t, fmt.Sprintf("post-restart q=%q", q), wants[i], c.Router.Lookup(q, k).Candidates)
	}
}

// TestRebalanceUnderLoad moves a live cluster from 2 to 3 partitions under
// traffic: zero dropped, zero partial, bit-identical throughout — both
// splits cover the same rows, and routed deltas follow the owning partition
// across the move.
func TestRebalanceUnderLoad(t *testing.T) {
	g, m := testModel(t)
	opts := fastOptions()
	opts.Replicas = 2
	c, err := Start(m, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	items := ingestItems()
	if err := c.Router.Ingest(t.Context(), items, true); err != nil {
		t.Fatal(err)
	}
	cm := comparator(t, m, items)

	queries := append(testQueries(g, 8), items[1].Label)
	const k = 5
	wants := make([][]lookup.Candidate, len(queries))
	for i, q := range queries {
		wants[i] = cm.Lookup(q, k)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sent, bad atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i = (i + 1) % len(queries) {
				select {
				case <-stop:
					return
				default:
				}
				res := c.Router.Lookup(queries[i], k)
				sent.Add(1)
				if res.Partial || len(res.Candidates) != len(wants[i]) {
					bad.Add(1)
					return
				}
				for j := range wants[i] {
					if res.Candidates[j].ID != wants[i][j].ID || res.Candidates[j].Score != wants[i][j].Score {
						bad.Add(1)
						return
					}
				}
			}
		}()
	}

	rerr := c.Rebalance(3)
	close(stop)
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d of %d responses degraded during the rebalance", bad.Load(), sent.Load())
	}
	if c.Router.Partitions() != 3 {
		t.Fatalf("router serves %d partitions, want 3", c.Router.Partitions())
	}

	// Deltas moved with the owning partition: the new last partition's
	// replicas carry them, and results are still exact.
	for j := 0; j < 2; j++ {
		if hz := getHealthz(t, c.NodeURL(2, j)); hz.IngestApplied != int64(len(items)) {
			t.Fatalf("new owner replica %d applied %d items, want %d", j, hz.IngestApplied, len(items))
		}
	}
	for i, q := range queries {
		sameCandidates(t, fmt.Sprintf("post-rebalance q=%q", q), wants[i], c.Router.Lookup(q, k).Candidates)
	}
	// Ingest keeps flowing on the new layout.
	extra := core.IngestItem{NewEntity: true, Label: "Post-Rebalance Corp"}
	if err := c.Router.Ingest(t.Context(), []core.IngestItem{extra}, true); err != nil {
		t.Fatal(err)
	}
	if res := c.Router.Lookup(extra.Label, 1); res.Partial || len(res.Candidates) == 0 {
		t.Fatalf("post-rebalance ingest not visible: %+v", res)
	}
}

// TestPollerGossip publishes a map only through the coordinator and waits
// for the router's poller to pick it up — the gossip propagation path.
func TestPollerGossip(t *testing.T) {
	_, m := testModel(t)
	opts := fastOptions()
	opts.Replicas = 2
	c, err := Start(m, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := c.Router.Epoch()
	urls := [][]string{
		{c.NodeURL(0, 0), c.NodeURL(0, 1)},
		{c.NodeURL(1, 0), c.NodeURL(1, 1)},
	}
	pub, err := c.Coord.Publish(urls, c.Manifest.TotalRows, c.Manifest.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Epoch != before+1 {
		t.Fatalf("published epoch %d, want %d", pub.Epoch, before+1)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Router.Epoch() != pub.Epoch {
		if time.Now().After(deadline) {
			t.Fatalf("poller never applied epoch %d (router at %d)", pub.Epoch, c.Router.Epoch())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stale maps can never roll the router back.
	old := c.Router.Map()
	old.Epoch = before
	if err := c.Router.ApplyMap(old); !errors.Is(err, cluster.ErrStaleEpoch) {
		t.Fatalf("stale ApplyMap returned %v, want ErrStaleEpoch", err)
	}
}

// TestHealthzReportsAssignment pins the /healthz satellite: nodes report
// their partition assignment and the epoch they were started under, and the
// router front-end reports its serving epoch — what external probes use to
// detect stale assignments.
func TestHealthzReportsAssignment(t *testing.T) {
	_, m := testModel(t)
	opts := fastOptions()
	opts.Replicas = 2
	c, err := Start(m, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for p := 0; p < 2; p++ {
		for j := 0; j < 2; j++ {
			hz := getHealthz(t, c.NodeURL(p, j))
			if hz.Status != "ok" {
				t.Fatalf("node %d/%d status %q", p, j, hz.Status)
			}
			if hz.Partition == nil || hz.Partition.ID != p || hz.Partition.Count != 2 {
				t.Fatalf("node %d/%d reports partition %+v", p, j, hz.Partition)
			}
			if hz.Epoch != c.Router.Epoch() {
				t.Fatalf("node %d/%d reports epoch %d, router serves %d", p, j, hz.Epoch, c.Router.Epoch())
			}
		}
	}
}

// TestCoordinatorValidation pins Publish's gate: invalid assignments (a URL
// serving two partitions) never become an epoch.
func TestCoordinatorValidation(t *testing.T) {
	crd, err := NewCoordinator(cluster.SingleMap([]string{"http://a", "http://b"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crd.Publish([][]string{{"http://a"}, {"http://a"}}, 0, nil); err == nil {
		t.Fatal("duplicate URL across partitions accepted")
	}
	if crd.Epoch() != 1 {
		t.Fatalf("failed publish bumped the epoch to %d", crd.Epoch())
	}
	m, err := crd.Publish([][]string{{"http://a"}, {"http://c"}}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || crd.Epoch() != 2 {
		t.Fatalf("publish epoch %d, coordinator %d", m.Epoch, crd.Epoch())
	}
}
