package serve

import (
	"sync"
	"testing"
	"time"

	"emblookup/internal/core"
	"emblookup/internal/kg"
)

var (
	benchOnce  sync.Once
	benchGraph *kg.Graph
	benchModel *core.EmbLookup
	benchErr   error
)

func benchSetup(b *testing.B) (*kg.Graph, *core.EmbLookup) {
	b.Helper()
	benchOnce.Do(func() {
		g, _ := kg.Generate(kg.DefaultGeneratorConfig(kg.WikidataProfile, 300))
		cfg := core.FastConfig()
		cfg.Epochs = 2
		cfg.TripletsPerEntity = 8
		m, err := core.Train(g, cfg)
		if err != nil {
			benchErr = err
			return
		}
		benchGraph, benchModel = g, m
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchGraph, benchModel
}

// BenchmarkServeCacheHit measures the cache-warm lookup path — the cost a
// repeated mention pays. Guarded by `make verify` (short mode) so cache
// regressions surface pre-merge.
func BenchmarkServeCacheHit(b *testing.B) {
	g, m := benchSetup(b)
	sv, err := New(m, Options{Shards: 1, MaxBatch: -1, CacheSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	q := g.Entities[0].Label
	sv.Lookup(q, 10) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.Lookup(q, 10)
	}
}

// BenchmarkServeCacheMiss measures the cache-cold serving path (sharded
// scan, no coalescer) by rotating through more mentions than the cache
// holds.
func BenchmarkServeCacheMiss(b *testing.B) {
	g, m := benchSetup(b)
	sv, err := New(m, Options{Shards: 2, MaxBatch: -1, CacheSize: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = g.Entities[i%len(g.Entities)].Label
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.Lookup(queries[i%len(queries)], 10)
	}
}

// BenchmarkServeCoalesced measures concurrent lookups flowing through the
// micro-batcher (cache disabled so every query reaches the model), the
// serving regime the coalescer exists for.
func BenchmarkServeCoalesced(b *testing.B) {
	g, m := benchSetup(b)
	sv, err := New(m, Options{Shards: 2, MaxBatch: 16, Window: 100 * time.Microsecond, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer sv.Close()
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = g.Entities[i%len(g.Entities)].Label
	}
	b.ReportAllocs()
	b.SetParallelism(16) // 16 concurrent clients per GOMAXPROCS: batches fill
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(time.Now().UnixNano()) % len(queries)
		for pb.Next() {
			sv.Lookup(queries[i%len(queries)], 10)
			i++
		}
	})
}
