package serve

import (
	"container/list"
	"sync"

	"emblookup/internal/lookup"
	"emblookup/internal/obs"
)

// cacheKey identifies one cached lookup: the normalized mention (see
// core.NormalizeMention) and the candidate budget. Different k values cache
// separately — a truncated larger result is not guaranteed bit-identical to
// a direct smaller-k lookup once alias dedupe is involved.
type cacheKey struct {
	mention string
	k       int
}

// cacheEntry is one LRU node payload.
type cacheEntry struct {
	key cacheKey
	val []lookup.Candidate
}

// cacheShard is one independently-locked LRU segment.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recent
	items    map[cacheKey]*list.Element

	hits, misses, evictions uint64
}

// MentionCache is a fixed-capacity LRU over lookup results, sharded across
// a power-of-two number of independently-locked segments so concurrent
// requests contend only when they hash to the same segment. Cached slices
// are shared between callers and must be treated as read-only.
type MentionCache struct {
	shards []cacheShard
	mask   uint64
}

// maxCacheShards bounds the segment count; capacities below it get one
// entry per shard rather than more shards than entries.
const maxCacheShards = 16

// NewMentionCache builds a cache holding at most `capacity` entries in
// total. Capacity must be positive; it is rounded up to a multiple of the
// shard count (the largest power of two ≤ min(maxCacheShards, capacity)).
func NewMentionCache(capacity int) *MentionCache {
	if capacity <= 0 {
		capacity = 1
	}
	shards := 1
	for shards*2 <= capacity && shards*2 <= maxCacheShards {
		shards *= 2
	}
	c := &MentionCache{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[cacheKey]*list.Element, per),
		}
	}
	return c
}

// shardFor hashes (mention, k) with FNV-1a and selects a segment.
func (c *MentionCache) shardFor(key cacheKey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.mention); i++ {
		h ^= uint64(key.mention[i])
		h *= prime64
	}
	h ^= uint64(key.k)
	h *= prime64
	return &c.shards[h&c.mask]
}

// Get returns the cached candidates for (mention, k) and whether they were
// present, promoting the entry to most-recently-used. The returned slice is
// shared: callers must not modify it.
func (c *MentionCache) Get(mention string, k int) ([]lookup.Candidate, bool) {
	key := cacheKey{mention: mention, k: k}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return el.Value.(*cacheEntry).val, true
	}
	s.misses++
	return nil, false
}

// Put stores the candidates for (mention, k), evicting the segment's
// least-recently-used entry when it is full. The cache takes shared
// ownership of val: it must not be modified after insertion.
func (c *MentionCache) Put(mention string, k int, val []lookup.Candidate) {
	key := cacheKey{mention: mention, k: k}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the cache counters, summed
// across segments.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Shards    int    `json:"shards"`
}

// HitRate returns hits / (hits + misses), or 0 before any probe.
func (cs CacheStats) HitRate() float64 {
	total := cs.Hits + cs.Misses
	if total == 0 {
		return 0
	}
	return float64(cs.Hits) / float64(total)
}

// Observe bridges the cache's exact instance-local counters into a metrics
// registry as pull-time collectors: the per-instance Stats stay the source
// of truth (tests assert exact values on them) and /metrics reads them at
// scrape time without any double counting on the hot path.
func (c *MentionCache) Observe(r *obs.Registry) {
	r.CounterFunc("emblookup_cache_hits_total", func() float64 { return float64(c.Stats().Hits) })
	r.CounterFunc("emblookup_cache_misses_total", func() float64 { return float64(c.Stats().Misses) })
	r.CounterFunc("emblookup_cache_evictions_total", func() float64 { return float64(c.Stats().Evictions) })
	r.GaugeFunc("emblookup_cache_entries", func() float64 { return float64(c.Stats().Entries) })
}

// Stats snapshots the counters across all segments.
func (c *MentionCache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += s.ll.Len()
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}
