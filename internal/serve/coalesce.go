package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"emblookup/internal/lookup"
	"emblookup/internal/obs"
)

// BulkFunc answers a query batch at one k — core.EmbLookup.BulkLookup with
// the parallelism bound applied. Each result must equal what a solo lookup
// of that query would return.
type BulkFunc func(queries []string, k int) [][]lookup.Candidate

// BulkCtxFunc is BulkFunc with cooperative cancellation —
// core.EmbLookup.BulkLookupCtx. The coalescer calls it with the latest
// deadline of the batch's live callers, so no caller's work is cut short
// and a batch whose every caller has given up is never computed at all.
type BulkCtxFunc func(ctx context.Context, queries []string, k int) ([][]lookup.Candidate, error)

// coalOut is what a waiter receives: its candidates, or the batch's error
// (only ever a context error — the bulk deadline passed mid-dispatch).
type coalOut struct {
	res []lookup.Candidate
	err error
}

// coalReq is one caller blocked on the micro-batcher. t0 is its arrival
// time, from which the coalescing-wait histogram is fed at dispatch. ctx is
// nil for deadline-less callers. A caller that stops waiting (its context
// fired) sets abandoned; dispatch drops abandoned requests before the bulk
// call — their channel is buffered, so a lost race (result computed anyway)
// just gets discarded.
type coalReq struct {
	ctx       context.Context
	q         string
	k         int
	t0        time.Time
	ch        chan coalOut
	abandoned atomic.Bool
}

// Coalescer is the query micro-batcher: concurrent Lookup calls collect
// into a pending batch that is dispatched as one bulk call when it reaches
// MaxBatch queries or when the oldest pending query has waited Window,
// whichever comes first. A pending query with a deadline sooner than the
// window flushes the batch early, so tight deadlines spend their budget on
// the scan, not on the coalescing wait. One bulk dispatch amortizes
// per-query overheads — scratch checkout, scheduling, and (through the
// sharded index's batch path) shard-major code locality — across every
// caller in the batch, while each caller still receives exactly the result
// a solo Lookup would have produced.
type Coalescer struct {
	bulk     BulkFunc
	bulkCtx  BulkCtxFunc // optional; set via WithBulkCtx before serving
	maxBatch int
	window   time.Duration

	mu      sync.Mutex
	pending []*coalReq
	timer   *time.Timer
	timerAt time.Time // when the armed timer fires (zero = no timer)
	closed  bool

	// Counters, guarded by mu (abandoned is touched off-lock at dispatch).
	batches    uint64
	dispatched uint64
	abandoned  atomic.Uint64

	// Registry histograms, set by Observe; nil handles record nothing.
	batchSize *obs.Histogram // queries per dispatched batch
	wait      *obs.Histogram // per-query time from arrival to dispatch
}

// NewCoalescer builds a micro-batcher over bulk. maxBatch ≤ 0 defaults to
// 32 queries; window ≤ 0 defaults to 200µs.
func NewCoalescer(bulk BulkFunc, maxBatch int, window time.Duration) *Coalescer {
	if maxBatch <= 0 {
		maxBatch = 32
	}
	if window <= 0 {
		window = 200 * time.Microsecond
	}
	return &Coalescer{bulk: bulk, maxBatch: maxBatch, window: window}
}

// WithBulkCtx installs the cancellable bulk path used for batches whose
// callers carry deadlines. Call before the coalescer starts serving.
func (c *Coalescer) WithBulkCtx(fn BulkCtxFunc) *Coalescer {
	c.bulkCtx = fn
	return c
}

// Lookup enqueues one query and blocks until its batch is dispatched and
// answered. It is safe for concurrent use.
func (c *Coalescer) Lookup(q string, k int) []lookup.Candidate {
	r, batch := c.enqueue(nil, q, k)
	if r == nil {
		return c.bulk([]string{q}, k)[0]
	}
	if batch != nil {
		c.dispatch(batch)
	}
	return (<-r.ch).res
}

// LookupCtx is Lookup with a deadline: the request flushes its batch no
// later than its deadline, the caller stops waiting the moment ctx fires
// (marking the request abandoned so dispatch can skip it), and the bulk
// call itself runs under the batch's combined deadline. A context that can
// never be cancelled takes the exact Lookup path.
func (c *Coalescer) LookupCtx(ctx context.Context, q string, k int) ([]lookup.Candidate, error) {
	if ctx == nil || ctx.Done() == nil {
		return c.Lookup(q, k), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, batch := c.enqueue(ctx, q, k)
	if r == nil {
		if c.bulkCtx != nil {
			res, err := c.bulkCtx(ctx, []string{q}, k)
			if err != nil {
				return nil, err
			}
			return res[0], nil
		}
		return c.bulk([]string{q}, k)[0], nil
	}
	if batch != nil {
		c.dispatch(batch)
	}
	select {
	case out := <-r.ch:
		if out.err != nil {
			return nil, out.err
		}
		return out.res, nil
	case <-ctx.Done():
		r.abandoned.Store(true)
		c.abandoned.Add(1)
		return nil, ctx.Err()
	}
}

// enqueue adds one request to the pending batch. A nil request means the
// coalescer is closed (the caller goes solo); a non-nil batch means this
// caller filled it and must dispatch inline — its own result is in the
// batch, so it was going to wait anyway.
func (c *Coalescer) enqueue(ctx context.Context, q string, k int) (*coalReq, []*coalReq) {
	now := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil
	}
	r := &coalReq{ctx: ctx, q: q, k: k, t0: now, ch: make(chan coalOut, 1)}
	c.pending = append(c.pending, r)
	if len(c.pending) >= c.maxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		return r, batch
	}
	fireAt := now.Add(c.window)
	if ctx != nil {
		// A deadline tighter than the window flushes early — at half the
		// caller's remaining budget, so the other half is left for the scan
		// instead of arming the flush at the deadline itself, when the bulk
		// call would start with nothing left to spend.
		if d, ok := ctx.Deadline(); ok {
			if half := d.Sub(now) / 2; half < c.window {
				fireAt = now.Add(half)
			}
		}
	}
	c.armLocked(fireAt)
	c.mu.Unlock()
	return r, nil
}

// armLocked makes sure the flush timer fires no later than at. The caller
// must hold mu. Re-arming stops the old timer; a stop that loses the race
// with an in-flight firing just means flushOnTimer runs against an empty
// (already-taken) pending list — a no-op.
func (c *Coalescer) armLocked(at time.Time) {
	if c.timer != nil && !c.timerAt.After(at) {
		return
	}
	if c.timer != nil {
		c.timer.Stop()
	}
	d := time.Until(at)
	if d < 0 {
		d = 0
	}
	c.timer = time.AfterFunc(d, c.flushOnTimer)
	c.timerAt = at
}

// takeLocked detaches the pending batch and stops the flush timer. The
// caller must hold mu.
func (c *Coalescer) takeLocked() []*coalReq {
	batch := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.timerAt = time.Time{}
	if len(batch) > 0 {
		c.batches++
		c.dispatched += uint64(len(batch))
	}
	return batch
}

// flushOnTimer dispatches whatever collected during the window. A batch
// that already flushed on MaxBatch leaves nothing pending, making this a
// no-op.
func (c *Coalescer) flushOnTimer() {
	c.mu.Lock()
	batch := c.takeLocked()
	c.mu.Unlock()
	c.dispatch(batch)
}

// dispatch answers every live request in the batch with one bulk call per
// distinct k (one call total in the common uniform-k case) and unblocks
// the callers. Requests whose caller already gave up are dropped here —
// a batch with no live requests costs nothing.
func (c *Coalescer) dispatch(batch []*coalReq) {
	live := batch[:0]
	for _, r := range batch {
		if r.abandoned.Load() {
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	c.batchSize.ObserveVal(int64(len(live)))
	for _, r := range live {
		c.wait.Since(r.t0)
	}
	// Group by k preserving arrival order within each group. Almost every
	// batch has a single k, so scan for that case first.
	uniform := true
	for i := 1; i < len(live); i++ {
		if live[i].k != live[0].k {
			uniform = false
			break
		}
	}
	if uniform {
		c.answer(live, live[0].k)
		return
	}
	groups := make(map[int][]*coalReq)
	for _, r := range live {
		groups[r.k] = append(groups[r.k], r)
	}
	for k, group := range groups {
		c.answer(group, k)
	}
}

// groupCtx derives the bulk call's context from a same-k group: the latest
// deadline across the group's callers, so the shared computation is never
// cut short while any caller still wants it. Any deadline-less caller
// makes the bulk call deadline-less.
func groupCtx(group []*coalReq) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, r := range group {
		if r.ctx == nil {
			return context.Background(), nil
		}
		d, ok := r.ctx.Deadline()
		if !ok {
			return context.Background(), nil
		}
		if d.After(latest) {
			latest = d
		}
	}
	if latest.IsZero() {
		return context.Background(), nil
	}
	return context.WithDeadline(context.Background(), latest)
}

// answer runs one bulk call for a same-k group and delivers the results.
func (c *Coalescer) answer(group []*coalReq, k int) {
	queries := make([]string, len(group))
	for i, r := range group {
		queries[i] = r.q
	}
	var results [][]lookup.Candidate
	var err error
	if c.bulkCtx != nil {
		gctx, cancel := groupCtx(group)
		results, err = c.bulkCtx(gctx, queries, k)
		if cancel != nil {
			cancel()
		}
	} else {
		results = c.bulk(queries, k)
	}
	for i, r := range group {
		if err != nil {
			r.ch <- coalOut{err: err}
		} else {
			r.ch <- coalOut{res: results[i]}
		}
	}
}

// Observe wires the coalescer into a metrics registry: flush-size and wait
// histograms recorded at dispatch, plus pull-time collectors over the exact
// instance-local batch counters. Call it before the coalescer starts
// serving — the histogram handles are read without the lock on dispatch.
func (c *Coalescer) Observe(r *obs.Registry) {
	c.mu.Lock()
	c.batchSize = r.Histogram("emblookup_coalescer_batch_size")
	c.wait = r.Histogram("emblookup_coalescer_wait_seconds")
	c.mu.Unlock()
	r.CounterFunc("emblookup_coalescer_batches_total", func() float64 { return float64(c.Stats().Batches) })
	r.CounterFunc("emblookup_coalescer_queries_total", func() float64 { return float64(c.Stats().Queries) })
	r.CounterFunc("emblookup_coalescer_abandoned_total", func() float64 { return float64(c.abandoned.Load()) })
}

// CoalescerStats is a point-in-time snapshot of the batching counters.
type CoalescerStats struct {
	Batches      uint64  `json:"batches"`
	Queries      uint64  `json:"queries"`
	Abandoned    uint64  `json:"abandoned,omitempty"`
	AvgBatchSize float64 `json:"avgBatchSize"`
	MaxBatch     int     `json:"maxBatch"`
	WindowUs     int64   `json:"windowUs"`
}

// Stats snapshots the batching counters.
func (c *Coalescer) Stats() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoalescerStats{
		Batches:   c.batches,
		Queries:   c.dispatched,
		Abandoned: c.abandoned.Load(),
		MaxBatch:  c.maxBatch,
		WindowUs:  c.window.Microseconds(),
	}
	if st.Batches > 0 {
		st.AvgBatchSize = float64(st.Queries) / float64(st.Batches)
	}
	return st
}

// Close flushes any pending batch and makes subsequent Lookup calls bypass
// batching (solo bulk calls), so no caller can block on a window that will
// never fill.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	batch := c.takeLocked()
	c.mu.Unlock()
	c.dispatch(batch)
}
