package serve

import (
	"sync"
	"time"

	"emblookup/internal/lookup"
	"emblookup/internal/obs"
)

// BulkFunc answers a query batch at one k — core.EmbLookup.BulkLookup with
// the parallelism bound applied. Each result must equal what a solo lookup
// of that query would return.
type BulkFunc func(queries []string, k int) [][]lookup.Candidate

// coalReq is one caller blocked on the micro-batcher. t0 is its arrival
// time, from which the coalescing-wait histogram is fed at dispatch.
type coalReq struct {
	q  string
	k  int
	t0 time.Time
	ch chan []lookup.Candidate
}

// Coalescer is the query micro-batcher: concurrent Lookup calls collect
// into a pending batch that is dispatched as one bulk call when it reaches
// MaxBatch queries or when the oldest pending query has waited Window,
// whichever comes first. One bulk dispatch amortizes per-query overheads —
// scratch checkout, scheduling, and (through the sharded index's batch
// path) shard-major code locality — across every caller in the batch, while
// each caller still receives exactly the result a solo Lookup would have
// produced.
type Coalescer struct {
	bulk     BulkFunc
	maxBatch int
	window   time.Duration

	mu      sync.Mutex
	pending []coalReq
	timer   *time.Timer
	closed  bool

	// Counters, guarded by mu.
	batches    uint64
	dispatched uint64

	// Registry histograms, set by Observe; nil handles record nothing.
	batchSize *obs.Histogram // queries per dispatched batch
	wait      *obs.Histogram // per-query time from arrival to dispatch
}

// NewCoalescer builds a micro-batcher over bulk. maxBatch ≤ 0 defaults to
// 32 queries; window ≤ 0 defaults to 200µs.
func NewCoalescer(bulk BulkFunc, maxBatch int, window time.Duration) *Coalescer {
	if maxBatch <= 0 {
		maxBatch = 32
	}
	if window <= 0 {
		window = 200 * time.Microsecond
	}
	return &Coalescer{bulk: bulk, maxBatch: maxBatch, window: window}
}

// Lookup enqueues one query and blocks until its batch is dispatched and
// answered. It is safe for concurrent use.
func (c *Coalescer) Lookup(q string, k int) []lookup.Candidate {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.bulk([]string{q}, k)[0]
	}
	ch := make(chan []lookup.Candidate, 1)
	c.pending = append(c.pending, coalReq{q: q, k: k, t0: time.Now(), ch: ch})
	if len(c.pending) >= c.maxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		// The caller that filled the batch dispatches it inline: its own
		// result is in the batch, so it was going to wait anyway.
		c.dispatch(batch)
	} else {
		if len(c.pending) == 1 {
			c.timer = time.AfterFunc(c.window, c.flushOnTimer)
		}
		c.mu.Unlock()
	}
	return <-ch
}

// takeLocked detaches the pending batch and stops the window timer. The
// caller must hold mu.
func (c *Coalescer) takeLocked() []coalReq {
	batch := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if len(batch) > 0 {
		c.batches++
		c.dispatched += uint64(len(batch))
	}
	return batch
}

// flushOnTimer dispatches whatever collected during the window. A batch
// that already flushed on MaxBatch leaves nothing pending, making this a
// no-op.
func (c *Coalescer) flushOnTimer() {
	c.mu.Lock()
	batch := c.takeLocked()
	c.mu.Unlock()
	c.dispatch(batch)
}

// dispatch answers every request in the batch with one bulk call per
// distinct k (one call total in the common uniform-k case) and unblocks the
// callers.
func (c *Coalescer) dispatch(batch []coalReq) {
	if len(batch) == 0 {
		return
	}
	c.batchSize.ObserveVal(int64(len(batch)))
	for _, r := range batch {
		c.wait.Since(r.t0)
	}
	// Group by k preserving arrival order within each group. Almost every
	// batch has a single k, so scan for that case first.
	uniform := true
	for i := 1; i < len(batch); i++ {
		if batch[i].k != batch[0].k {
			uniform = false
			break
		}
	}
	if uniform {
		c.answer(batch, batch[0].k)
		return
	}
	groups := make(map[int][]coalReq)
	for _, r := range batch {
		groups[r.k] = append(groups[r.k], r)
	}
	for k, group := range groups {
		c.answer(group, k)
	}
}

// answer runs one bulk call for a same-k group and delivers the results.
func (c *Coalescer) answer(group []coalReq, k int) {
	queries := make([]string, len(group))
	for i, r := range group {
		queries[i] = r.q
	}
	results := c.bulk(queries, k)
	for i, r := range group {
		r.ch <- results[i]
	}
}

// Observe wires the coalescer into a metrics registry: flush-size and wait
// histograms recorded at dispatch, plus pull-time collectors over the exact
// instance-local batch counters. Call it before the coalescer starts
// serving — the histogram handles are read without the lock on dispatch.
func (c *Coalescer) Observe(r *obs.Registry) {
	c.mu.Lock()
	c.batchSize = r.Histogram("emblookup_coalescer_batch_size")
	c.wait = r.Histogram("emblookup_coalescer_wait_seconds")
	c.mu.Unlock()
	r.CounterFunc("emblookup_coalescer_batches_total", func() float64 { return float64(c.Stats().Batches) })
	r.CounterFunc("emblookup_coalescer_queries_total", func() float64 { return float64(c.Stats().Queries) })
}

// CoalescerStats is a point-in-time snapshot of the batching counters.
type CoalescerStats struct {
	Batches      uint64  `json:"batches"`
	Queries      uint64  `json:"queries"`
	AvgBatchSize float64 `json:"avgBatchSize"`
	MaxBatch     int     `json:"maxBatch"`
	WindowUs     int64   `json:"windowUs"`
}

// Stats snapshots the batching counters.
func (c *Coalescer) Stats() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoalescerStats{
		Batches:  c.batches,
		Queries:  c.dispatched,
		MaxBatch: c.maxBatch,
		WindowUs: c.window.Microseconds(),
	}
	if st.Batches > 0 {
		st.AvgBatchSize = float64(st.Queries) / float64(st.Batches)
	}
	return st
}

// Close flushes any pending batch and makes subsequent Lookup calls bypass
// batching (solo bulk calls), so no caller can block on a window that will
// never fill.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	batch := c.takeLocked()
	c.mu.Unlock()
	c.dispatch(batch)
}
